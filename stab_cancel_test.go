package hex

import (
	"context"
	"errors"
	"testing"
	"time"
)

// stabCfg returns a stabilization run big enough that it cannot complete
// within a millisecond of wall time, with ample margin: the engine has
// gotten faster PR over PR, and a grid a fast core can finish inside the
// deadline turns the expiry test into a coin flip.
func stabCfg(t *testing.T, ctx context.Context) StabilizationConfig {
	t.Helper()
	g, err := NewGrid(200, 80)
	if err != nil {
		t.Fatal(err)
	}
	return StabilizationConfig{
		Grid:     g,
		Scenario: ScenarioUniformDPlus,
		Timeouts: Condition2(4*PaperBounds.Max, PaperBounds, g.L, 0, PaperDrift),
		Seed:     7,
		Context:  ctx,
	}
}

// TestRunStabilizationDeadlineExpiry verifies that a deadline expiring
// mid-run stops the multi-pulse simulation early and surfaces
// context.DeadlineExceeded (ROADMAP item: only single-pulse paths were
// cancellable before).
func TestRunStabilizationDeadlineExpiry(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	rep, err := RunStabilization(stabCfg(t, ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if rep != nil {
		t.Fatalf("expired run returned a report: %+v", rep)
	}
}

// TestRunStabilizationPreCancelled verifies an already-done context stops
// the run before any simulation work happens.
func TestRunStabilizationPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunStabilization(stabCfg(t, ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunStabilizationContextDeterministic verifies that threading a
// context that never fires does not perturb the simulated outcome.
func TestRunStabilizationContextDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full stabilization run")
	}
	base, err := RunStabilization(stabCfg(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := RunStabilization(stabCfg(t, context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.Events != withCtx.Result.Events {
		t.Fatalf("events differ with context: %d vs %d", base.Result.Events, withCtx.Result.Events)
	}
	if base.StabilizedAt != withCtx.StabilizedAt {
		t.Fatalf("stabilization pulse differs: %d vs %d", base.StabilizedAt, withCtx.StabilizedAt)
	}
}
