// BenchmarkCampaign measures the campaign pipeline end to end: a sweep of
// many tiny runs through the real jobs manager (WFQ scheduling, unit
// retry, result fan-out) and a real durable store. Two arms share the
// workload — L20_W12, one seed axis — and differ only in execution mode:
//
//   - mode=unbatched is the per-unit path: every seed pays its own
//     grid construction (DisableGridCache, matching the pre-campaign
//     baseline), scheduler dispatch, worker round trip, full stats
//     record, and 2-fsync store commit.
//   - mode=batched-agg is the campaign fast path: 256-seed batches on one
//     worker with the shared grid and a hot arena, aggregate-only HXA1
//     records, one group commit per batch.
//
// Both arms report runs/s (the headline campaign throughput) and
// fsyncs/run (the durability amortization). Every iteration uses a fresh
// store directory and a globally advancing seed range so neither the
// result LRU nor the durable store can serve a prior iteration's work.
package hex

import (
	"fmt"
	"io"
	"log/slog"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/service"
	"repro/internal/store"
)

// campaignSeedBase advances across all arms and iterations so every
// simulated run is distinct work.
var campaignSeedBase uint64 = 1

func BenchmarkCampaign(b *testing.B) {
	const l, w, seedCount = 20, 12, 10000
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	arms := []struct {
		name    string
		batch   int
		output  string
		nocache bool
	}{
		// The unbatched arm is the pre-campaign baseline, which predates
		// the process-wide grid cache: DisableGridCache keeps it honest
		// by charging every seed its own topology construction.
		{"mode=unbatched", 1, "stats", true},
		{"mode=batched-agg", 1024, "agg", false},
	}
	for _, arm := range arms {
		b.Run(fmt.Sprintf("L%d_W%d/%s", l, w, arm.name), func(b *testing.B) {
			var runs, fsyncs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("it%d", i))
				st, err := store.Open(dir, 1<<30)
				if err != nil {
					b.Fatal(err)
				}
				svc := service.New(service.Options{Store: st, Logger: quiet, DisableGridCache: arm.nocache})
				mgr := jobs.NewManager(jobs.Options{Runner: svc, Service: svc.Options(), Logger: quiet})
				spec := jobs.SweepSpec{
					L: l, W: w,
					SeedStart: campaignSeedBase, SeedCount: seedCount,
					Batch: arm.batch, Output: arm.output,
				}
				campaignSeedBase += seedCount
				base := st.Fsyncs()
				b.StartTimer()

				j, existing, err := mgr.Submit(spec)
				if err != nil || existing {
					b.Fatalf("submit: existing=%v err=%v", existing, err)
				}
				for !j.Done() {
					time.Sleep(2 * time.Millisecond)
				}

				b.StopTimer()
				if _, _, done, failed := j.Counts(); done != seedCount || failed != 0 {
					b.Fatalf("done=%d failed=%d, want %d/0", done, failed, seedCount)
				}
				runs += seedCount
				fsyncs += st.Fsyncs() - base
				mgr.Close()
				svc.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
			b.ReportMetric(float64(fsyncs)/float64(runs), "fsyncs/run")
		})
	}
}
