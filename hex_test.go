package hex

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/delay"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
)

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(0, 20); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestRunPulseDefaults(t *testing.T) {
	g, _ := NewGrid(10, 8)
	rep, err := RunPulse(PulseConfig{Grid: g, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IntraSummary.N == 0 || rep.InterSummary.N == 0 {
		t.Error("no skews collected")
	}
	if !rep.Wave.AllForwardersTriggered() {
		t.Error("incomplete wave")
	}
}

func TestRunPulseExplicitOffsets(t *testing.T) {
	g, _ := NewGrid(5, 6)
	off := make([]Time, 6)
	off[3] = 20 * Nanosecond
	rep, err := RunPulse(PulseConfig{Grid: g, Offsets: off, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wave.T[g.NodeID(0, 3)] != 20*Nanosecond {
		t.Error("explicit offsets ignored")
	}
}

func TestRunPulseDeterministic(t *testing.T) {
	g, _ := NewGrid(8, 6)
	a, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.IntraSummary != b.IntraSummary || a.InterSummary != b.InterSummary {
		t.Error("facade runs not deterministic")
	}
}

func TestPlaceRandomFaultsFacade(t *testing.T) {
	g, _ := NewGrid(12, 10)
	plan := NewFaultPlan(g)
	placed, err := PlaceRandomFaults(g, plan, 3, Byzantine, NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 3 || plan.NumFaulty() != 3 {
		t.Error("placement failed")
	}
	rep, err := RunPulse(PulseConfig{Grid: g, Faults: plan, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range placed {
		if rep.Wave.Valid(n) {
			t.Error("faulty node counted in wave")
		}
	}
}

// TestTheorem1HoldsOnRandomRuns is the library's headline property test:
// for random seeds and scenarios with Δ0 = 0, the measured intra-layer
// skews never exceed Theorem 1's uniform bound.
func TestTheorem1HoldsOnRandomRuns(t *testing.T) {
	g, _ := NewGrid(20, 12)
	bound := Theorem1Bound(20, 12, PaperBounds, 0).Nanoseconds()
	f := func(seed uint64, scen uint8) bool {
		sc := []Scenario{ScenarioZero, ScenarioUniformDMinus}[scen%2]
		rep, err := RunPulse(PulseConfig{Grid: g, Scenario: sc, Seed: seed})
		if err != nil {
			return false
		}
		return rep.IntraSummary.Max <= bound+0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLemma3SkewPotentialOnRandomRuns checks Δℓ ≤ 2(W−2)ε for layers
// ℓ ≥ W−2, for arbitrary (even ramped) layer-0 skews.
func TestLemma3SkewPotentialOnRandomRuns(t *testing.T) {
	const L, W = 20, 8
	g, _ := NewGrid(L, W)
	bound := theory.Lemma3SkewPotential(W, PaperBounds)
	f := func(seed uint64) bool {
		rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioRamp, Seed: seed})
		if err != nil {
			return false
		}
		for l := W - 2; l <= L; l++ {
			if analysis.SkewPotential(rep.Wave, g, l, PaperBounds.Min) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestLemma5WindowsUnderFaults checks the triggering-time windows of
// Lemma 5 on random fault configurations satisfying Condition 1.
func TestLemma5WindowsUnderFaults(t *testing.T) {
	const L, W = 15, 10
	g, _ := NewGrid(L, W)
	f := func(seed uint64, fc uint8) bool {
		faults := int(fc % 4)
		plan := NewFaultPlan(g)
		if faults > 0 {
			if _, err := PlaceRandomFaults(g, plan, faults, Byzantine, NewRNG(seed)); err != nil {
				return false
			}
		}
		rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioZero, Faults: plan, Seed: seed})
		if err != nil {
			return false
		}
		for n := 0; n < g.NumNodes(); n++ {
			if !rep.Wave.Valid(n) {
				continue
			}
			l := g.LayerOf(n)
			// Count layers below l with a fault (the fl of Lemma 5).
			fl := 0
			for lay := 0; lay < l; lay++ {
				for _, m := range g.Layer(lay) {
					if plan.IsFaulty(m) {
						fl++
						break
					}
				}
			}
			lo, hi := theory.Lemma5TriggerWindow(0, 0, l, fl, PaperBounds)
			if rep.Wave.T[n] < lo || rep.Wave.T[n] > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInterLayerWindowTheorem1 checks Theorem 1's inter-layer relation on
// a random run: t_{ℓ,i} ∈ [t_{ℓ−1,·} − σ_{ℓ−1} + d−, t_{ℓ−1,·} + σ_{ℓ−1} + d+]
// with σ the measured per-layer intra skew.
func TestInterLayerWindowTheorem1(t *testing.T) {
	g, _ := NewGrid(15, 10)
	rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Wave
	// Layer 0 carries no intra-layer links; its neighbor skew comes from
	// the schedule offsets directly.
	sigmaLayer := func(l int) Time {
		if l > 0 {
			if s := w.MaxIntraSkewLayer(l); s >= 0 {
				return s
			}
			return 0
		}
		var max Time
		for i := 0; i < g.W; i++ {
			d := w.T[g.NodeID(0, i)] - w.T[g.NodeID(0, (i+1)%g.W)]
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
		return max
	}
	for l := 1; l <= g.L; l++ {
		lo, hi := theory.Theorem1InterWindow(sigmaLayer(l-1), PaperBounds)
		for _, n := range g.Layer(l) {
			for _, lower := range []func(int) (int, bool){g.LowerLeftNeighbor, g.LowerRightNeighbor} {
				ln, ok := lower(n)
				if !ok {
					continue
				}
				d := w.T[n] - w.T[ln]
				if d < lo || d > hi {
					t.Fatalf("layer %d: inter skew %v outside [%v, %v] (σ_{ℓ−1}=%v)", l, d, lo, hi, sigmaLayer(l-1))
				}
			}
		}
	}
}

func TestRunStabilizationFacade(t *testing.T) {
	g, _ := NewGrid(10, 8)
	to := Condition2(3*PaperBounds.Max, PaperBounds, g.L, 0, PaperDrift)
	rep, err := RunStabilization(StabilizationConfig{
		Grid:     g,
		Scenario: ScenarioUniformDPlus,
		Pulses:   8,
		Timeouts: to,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StabilizedAt == 0 {
		t.Fatal("did not stabilize")
	}
	if rep.StabilizedAt > theory.Theorem2StabilizationPulses(g.L) {
		t.Errorf("stabilized at %d, beyond Theorem 2's bound", rep.StabilizedAt)
	}
	if len(rep.Assignment.Waves) != 8 {
		t.Error("assignment wave count wrong")
	}
}

func TestRunStabilizationWithFaults(t *testing.T) {
	g, _ := NewGrid(10, 8)
	plan := NewFaultPlan(g)
	if _, err := PlaceRandomFaults(g, plan, 2, FailSilent, NewRNG(8)); err != nil {
		t.Fatal(err)
	}
	to := Condition2(4*PaperBounds.Max, PaperBounds, g.L, 2, PaperDrift)
	rep, err := RunStabilization(StabilizationConfig{
		Grid:     g,
		Scenario: ScenarioZero,
		Timeouts: to,
		Faults:   plan,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With fail-silent faults the fixed 2d+ facade threshold may or may
	// not hold; the run must at least complete and assign pulses.
	if len(rep.Assignment.Waves) != 10 {
		t.Error("default pulse count wrong")
	}
}

func TestFacadeBoundHelpers(t *testing.T) {
	if Theorem1Bound(50, 20, PaperBounds, 0) != theory.Theorem1IntraBound(50, 20, delay.Paper, 0) {
		t.Error("Theorem1Bound disagrees with theory package")
	}
	if Lemma5Bound(100, 50, 3, PaperBounds) != theory.Lemma5PulseSkewBound(100, 50, 3, delay.Paper) {
		t.Error("Lemma5Bound disagrees")
	}
	to := Condition2(30*Nanosecond, PaperBounds, 50, 5, PaperDrift)
	if to != theory.Condition2(30*sim.Nanosecond, delay.Paper, 50, 5, theory.PaperDrift) {
		t.Error("Condition2 disagrees")
	}
}

func TestScenarioConstantsMatch(t *testing.T) {
	if ScenarioZero != source.Zero || ScenarioRamp != source.Ramp {
		t.Error("scenario constants drifted")
	}
}

// TestScenarioOrderingAcrossRuns reproduces Table 1's qualitative ordering
// at small scale: ramp skews dominate, scenario (i) is the calmest.
func TestScenarioOrderingAcrossRuns(t *testing.T) {
	g, _ := NewGrid(15, 10)
	avg := func(sc Scenario) float64 {
		var total float64
		const runs = 10
		for seed := uint64(0); seed < runs; seed++ {
			rep, err := RunPulse(PulseConfig{Grid: g, Scenario: sc, Seed: 100 + seed})
			if err != nil {
				t.Fatal(err)
			}
			total += rep.IntraSummary.Avg
		}
		return total / runs
	}
	zero, ramp := avg(ScenarioZero), avg(ScenarioRamp)
	if ramp <= zero {
		t.Errorf("ramp avg %.3f not above zero-scenario avg %.3f", ramp, zero)
	}
}

func TestRunPulseNilGrid(t *testing.T) {
	if _, err := RunPulse(PulseConfig{}); err == nil {
		t.Error("nil grid accepted by RunPulse")
	}
}

func TestRunStabilizationValidation(t *testing.T) {
	if _, err := RunStabilization(StabilizationConfig{}); err == nil {
		t.Error("nil grid accepted by RunStabilization")
	}
	g, _ := NewGrid(5, 5)
	if _, err := RunStabilization(StabilizationConfig{Grid: g}); err == nil {
		t.Error("missing timeouts accepted by RunStabilization")
	}
}
