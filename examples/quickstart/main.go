// Quickstart: build the paper's 50×20 HEX grid, propagate one clock pulse
// with the average-case layer-0 skews (scenario (iii)), and print the
// neighbor skew statistics next to Theorem 1's worst-case bound.
package main

import (
	"fmt"
	"log"

	hex "repro"
)

func main() {
	// The paper's evaluation grid: 50 forwarding layers, 20 columns,
	// link delays in [7.161, 8.197] ns.
	g, err := hex.NewGrid(50, 20)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := hex.RunPulse(hex.PulseConfig{
		Grid:     g,
		Scenario: hex.ScenarioUniformDPlus, // layer-0 offsets uniform in [0, d+]
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HEX quickstart — one pulse through a 50x20 grid")
	fmt.Printf("  delays d ∈ %v (ε = %v)\n", hex.PaperBounds, hex.PaperBounds.Epsilon())
	fmt.Printf("  nodes triggered: %d of %d\n", rep.Wave.TriggeredCount(), g.NumNodes())
	fmt.Printf("  intra-layer skew [ns]: %v\n", rep.IntraSummary)
	fmt.Printf("  inter-layer skew [ns]: %v\n", rep.InterSummary)

	bound := hex.Theorem1Bound(g.L, g.W, hex.PaperBounds, hex.PaperBounds.Epsilon())
	fmt.Printf("  Theorem 1 worst-case neighbor skew bound: %v\n", bound)
	fmt.Printf("  measured max / bound = %.2f%%\n",
		100*rep.IntraSummary.Max/bound.Nanoseconds())
}
