// Frequency multiplication (Section 5 / Fig. 20): HEX pulses are
// comparatively slow (the pulse separation S exceeds 100 ns), so each node
// locks a local start/stoppable oscillator to the pulses and emits M fast
// ticks per pulse. The tick train must fit the minimal pulse separation
// Λmin so the oscillator restarts cleanly; the fast skew is the HEX skew
// plus a drift-accumulation term.
package main

import (
	"fmt"
	"log"

	hex "repro"
	"repro/internal/analysis"
	"repro/internal/freqmult"
	"repro/internal/theory"
)

func main() {
	g, err := hex.NewGrid(50, 20)
	if err != nil {
		log.Fatal(err)
	}
	sigma := 4 * hex.PaperBounds.Max
	to := hex.Condition2(sigma, hex.PaperBounds, g.L, 0, hex.PaperDrift)

	rep, err := hex.RunStabilization(hex.StabilizationConfig{
		Grid: g, Scenario: hex.ScenarioUniformDPlus, Pulses: 10, Timeouts: to, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Λmin: smallest pulse-to-pulse gap any node experienced.
	lambdaMin := hex.Time(1) << 62
	var hexSkew hex.Time
	for n := 0; n < g.NumNodes(); n++ {
		var prev hex.Time = analysis.Missing
		for _, w := range rep.Assignment.Waves {
			t := w.T[n]
			if t == analysis.Missing {
				continue
			}
			if prev != analysis.Missing && t-prev < lambdaMin {
				lambdaMin = t - prev
			}
			prev = t
		}
	}
	for _, w := range rep.Assignment.Waves[1:] {
		for _, v := range w.IntraSkews() {
			if s := hex.Time(v * 1000); s > hexSkew {
				hexSkew = s
			}
		}
	}

	fmt.Println("HEX frequency multiplication")
	fmt.Printf("  pulse separation S = %v, measured Λmin = %v\n", to.Separation, lambdaMin)
	fmt.Printf("  measured HEX neighbor skew = %v, oscillator drift ϑ = %.2f\n\n",
		hexSkew, theory.PaperDrift.Float())
	fmt.Println("  osc period   M     window      eff. freq   fast-skew bound")
	for _, period := range []hex.Time{500 * hex.Picosecond, hex.Nanosecond, 2 * hex.Nanosecond} {
		m := freqmult.MaxMultiplier(lambdaMin, period, theory.PaperDrift)
		p := freqmult.Params{NominalPeriod: period, Multiplier: m, Drift: theory.PaperDrift}
		fmt.Printf("  %-10v %4d   %-10v  %5.3f GHz   %v\n",
			period, m, p.WindowRequired(),
			freqmult.EffectiveFrequencyGHz(p, to.Separation),
			freqmult.SkewBound(hexSkew, p))
	}
	fmt.Println("\nshorter oscillator periods buy more ticks per pulse (higher effective")
	fmt.Println("frequency) at unchanged fast-skew bounds dominated by the HEX skew.")
}
