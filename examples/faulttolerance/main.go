// Fault tolerance: inject Byzantine nodes (random per-link stuck-at
// behavior, placed under the paper's fault-separation Condition 1) and show
// HEX's fault locality — skews grow near the faults and are back to normal
// one hop away (the h-hop exclusion of the paper's Figs. 15–16).
package main

import (
	"fmt"
	"log"

	hex "repro"
	"repro/internal/render"
	"repro/internal/stats"
)

func main() {
	g, err := hex.NewGrid(50, 20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HEX under Byzantine faults (scenario (iii), 40 runs per f)")
	fmt.Println("f  h=0: avg/max [ns]      h=1: avg/max [ns]")
	for f := 0; f <= 5; f++ {
		var all0, all1 []float64
		for seed := uint64(0); seed < 40; seed++ {
			plan := hex.NewFaultPlan(g)
			if f > 0 {
				if _, err := hex.PlaceRandomFaults(g, plan, f, hex.Byzantine, hex.NewRNG(1000*uint64(f)+seed)); err != nil {
					log.Fatal(err)
				}
			}
			rep, err := hex.RunPulse(hex.PulseConfig{
				Grid: g, Scenario: hex.ScenarioUniformDPlus, Faults: plan, Seed: seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			all0 = append(all0, rep.Wave.IntraSkews()...)
			// Discard the faults' outgoing 1-hop neighborhoods and
			// re-measure: the fault effects should disappear.
			rep.Wave.ExcludeFaultyNeighborhood(plan, 1)
			all1 = append(all1, rep.Wave.IntraSkews()...)
		}
		s0, s1 := stats.Summarize(all0), stats.Summarize(all1)
		fmt.Printf("%d  %s / %s            %s / %s\n", f,
			render.Ns(s0.Avg), render.Ns(s0.Max), render.Ns(s1.Avg), render.Ns(s1.Max))
	}

	// A concrete wave with one crafted Byzantine node, as in Fig. 13.
	plan := hex.NewFaultPlan(g)
	placed, err := hex.PlaceRandomFaults(g, plan, 1, hex.Byzantine, hex.NewRNG(99))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hex.RunPulse(hex.PulseConfig{Grid: g, Scenario: hex.ScenarioZero, Faults: plan, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwave with a Byzantine node at %s (X in the map, first 12 layers):\n",
		render.Mark(g, placed))
	fmt.Print(render.WaveHeat(rep.Wave, 12))
}
