// End to end: the full system the paper envisions. A Byzantine
// fault-tolerant pulse generation network (the role the paper assigns to
// DARTS/FATAL+) synchronizes the layer-0 clock sources by message passing;
// the HEX grid forwards the pulses upward — with Byzantine faults injected
// among both the sources and the forwarding nodes.
package main

import (
	"fmt"
	"log"

	hex "repro"
	"repro/internal/analysis"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/pulsegen"
	"repro/internal/stats"
	"repro/internal/theory"
)

func main() {
	const L, W = 50, 20
	g, err := hex.NewGrid(L, W)
	if err != nil {
		log.Fatal(err)
	}
	b := hex.PaperBounds
	to := hex.Condition2(4*b.Max, b, L, 2, hex.PaperDrift)

	// 1. Generate pulses with a Srikanth–Toueg-style source network:
	//    two Byzantine sources actively spamming votes.
	faultySources := []int{4, 13}
	gen, err := pulsegen.Run(pulsegen.Config{
		N:              W,
		Faulty:         faultySources,
		AssumedFaults:  2,
		Period:         to.Separation + 4*b.Max,
		Pulses:         8,
		Bounds:         b,
		Drift:          theory.Drift{Num: 1001, Den: 1000}, // 1000 ppm oscillators
		Seed:           7,
		ByzantineEager: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layer-0 pulse generation (20 sources, 2 Byzantine, eager):")
	fmt.Printf("  max source skew %v, min pulse separation %v\n", gen.MaxSkew(), gen.MinSeparation())

	// 2. Forward through the HEX grid with two more Byzantine forwarders.
	plan := hex.NewFaultPlan(g)
	for _, c := range faultySources {
		plan.SetBehavior(g.NodeID(0, c), hex.FailSilent)
	}
	rng := hex.NewRNG(7)
	var candidates []int
	for l := 1; l <= L; l++ {
		candidates = append(candidates, g.Layer(l)...)
	}
	placed, err := fault.PlaceRandom(g.Graph, 2, candidates, rng, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range placed {
		plan.SetBehavior(n, hex.Byzantine)
	}
	plan.RandomizeByzantine(g.Graph, rng)

	res, err := hex.RunPulseTrain(g, plan, gen.Schedule(), to, 7)
	if err != nil {
		log.Fatal(err)
	}
	pa := analysis.AssignPulses(g.Graph, res, plan, gen.Schedule(), delay.Paper)

	fmt.Println("\nHEX forwarding (2 Byzantine forwarders on top):")
	for k, w := range pa.Waves {
		s := stats.Summarize(w.IntraSkews())
		fmt.Printf("  pulse %d: intra skew avg %.3f / q95 %.3f / max %.3f ns, %d nodes\n",
			k+1, s.Avg, s.Q95, s.Max, w.TriggeredCount())
	}
	fmt.Println("\nevery correct node forwarded every pulse; faults cost only local skew.")
}
