// Tree comparison: the experiment behind the paper's title. For matched
// system sizes, compare a balanced buffered H-tree against a HEX grid on
// neighbor wire length, measured neighbor skew, and the number of
// functional units losing their clock after a single fault.
package main

import (
	"fmt"
	"log"

	hex "repro"
	"repro/internal/clocktree"
	"repro/internal/stats"
)

func main() {
	fmt.Println("Scaling honeycombs vs. scaling clock trees")
	fmt.Println("n       tree: wire  skew max  dead(1 fault)   hex: wire  skew max  dead")
	b := hex.PaperBounds
	treeDelays := clocktree.Delays{
		// Matched delay quality: one leaf-pitch unit of tree wire has the
		// same mean delay and relative jitter as one HEX link.
		UnitWire:   (b.Min + b.Max) / 2,
		WireJitter: float64(b.Epsilon()) / float64(b.Min+b.Max),
		BufMin:     161 * hex.Picosecond,
		BufMax:     197 * hex.Picosecond,
	}
	const runs = 30
	for _, depth := range []int{3, 4, 5} {
		tree := clocktree.MustNew(depth)
		n := tree.NumLeaves()
		rng := hex.NewRNG(uint64(depth))

		var treeSkews, dead []float64
		for r := 0; r < runs; r++ {
			run := tree.Simulate(treeDelays, nil, rng)
			treeSkews = append(treeSkews, run.NeighborSkews()...)
			faulty := tree.Simulate(treeDelays, []clocktree.NodeRef{tree.RandomBuffer(rng)}, rng)
			dead = append(dead, float64(faulty.DeadLeaves()))
		}

		g, err := hex.NewGrid(tree.Side-1, tree.Side)
		if err != nil {
			log.Fatal(err)
		}
		var hexSkews []float64
		for seed := uint64(0); seed < runs; seed++ {
			rep, err := hex.RunPulse(hex.PulseConfig{Grid: g, Scenario: hex.ScenarioZero, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			hexSkews = append(hexSkews, rep.IntraSummary.Max)
		}

		fmt.Printf("%-7d %9.0f  %7.3fns  %5.0f..%-5.0f    %9d  %7.3fns  0\n",
			n,
			tree.WorstNeighborWireLength(), stats.Max(treeSkews),
			stats.Min(dead), stats.Max(dead),
			1, stats.Max(hexSkews))
	}
	fmt.Println("\nwire in leaf-pitch units (tree worst adjacent pair crosses the die: Θ(√n));")
	fmt.Println("a single HEX fault costs no functional unit its clock — only local skew.")
}
