// Self-stabilization: start every node in an arbitrary state of its state
// machines (random memory flags with residual link timers, random residual
// sleep), feed a pulse train with Condition 2 timeouts, and report when the
// grid's skews settle — the experiment behind the paper's Figs. 18–19.
package main

import (
	"fmt"
	"log"

	hex "repro"
)

func main() {
	g, err := hex.NewGrid(50, 20)
	if err != nil {
		log.Fatal(err)
	}

	// Condition 2 timeouts for a stable skew of σ = 4d+ (a comfortable
	// bound per Table 2) with up to 2 Byzantine faults.
	sigma := 4 * hex.PaperBounds.Max
	to := hex.Condition2(sigma, hex.PaperBounds, g.L, 2, hex.PaperDrift)
	fmt.Println("HEX self-stabilization from arbitrary initial states")
	fmt.Printf("  Condition 2: T-link=[%v, %v]  T-sleep=[%v, %v]  S=%v\n",
		to.TLinkMin, to.TLinkMax, to.TSleepMin, to.TSleepMax, to.Separation)
	fmt.Printf("  worst-case bound (Theorem 2): stable within %d pulses\n\n", g.L+1)

	for _, faults := range []int{0, 2} {
		stabilizedAt := map[int]int{}
		const runs = 25
		for seed := uint64(0); seed < runs; seed++ {
			plan := hex.NewFaultPlan(g)
			if faults > 0 {
				if _, err := hex.PlaceRandomFaults(g, plan, faults, hex.Byzantine, hex.NewRNG(seed)); err != nil {
					log.Fatal(err)
				}
			}
			rep, err := hex.RunStabilization(hex.StabilizationConfig{
				Grid:     g,
				Scenario: hex.ScenarioUniformDPlus,
				Pulses:   10,
				Timeouts: to,
				Faults:   plan,
				Seed:     seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			stabilizedAt[rep.StabilizedAt]++
		}
		fmt.Printf("f=%d Byzantine faults, %d runs, stabilization pulse histogram:\n", faults, runs)
		for pulse := 1; pulse <= 10; pulse++ {
			if c := stabilizedAt[pulse]; c > 0 {
				fmt.Printf("  pulse %2d: %d runs\n", pulse, c)
			}
		}
		if c := stabilizedAt[0]; c > 0 {
			fmt.Printf("  not stabilized within 10 pulses: %d runs\n", c)
		}
		fmt.Println()
	}
	fmt.Println("(pulse 1 starts amid the initial chaos; settling by pulse 2 matches")
	fmt.Println(" the paper's 'reliably stabilizes within two clock pulses'.)")
}
