# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race race-parallel bench bench-json bench-compare obs-overhead fuzz fuzz-parallel fuzz-sweeps fuzz-traceparent prof-parallel vet fmt cover cluster-smoke jobs-smoke campaign-smoke otlp-smoke repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-record the committed performance baseline: the two core benchmarks,
# the wedge-scaling matrix (1/2/4/8 wedges on L1000_W500), and the
# campaign pipeline (unbatched vs batched-agg on L20_W12 × 10k seeds).
# The JSON header records GOMAXPROCS and the wedge counts, so a baseline
# measured on a small machine is legible as such.
BENCH_BASELINE ?= BENCH_8.json
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPulsePropagation$$|BenchmarkMultiPulseStabilization$$|BenchmarkWedgeScaling$$|BenchmarkCampaign$$' \
		-benchmem -count=6 . | $(GO) run ./cmd/benchjson -out $(BENCH_BASELINE)

# Compare the current baseline against the previous one: a per-benchmark
# delta table on ns/op, events/s, B/op, allocs/op. The fail gate applies
# only to the serial path (everything except multi-wedge sub-benchmarks):
# wedge scaling depends on the recording machine's core count, so the
# parallel rows inform but do not gate.
#
# The threshold is 15%, not 5%: the two baselines were recorded in
# different sessions on a shared 1-CPU VM, and an interleaved A/B of the
# two code revisions showed the *machine* drifts 6-12% between recording
# days while the code-level delta is ~5% worst case (see EXPERIMENTS.md).
# 15% still catches algorithmic regressions — the calendar bucket-width
# bug this PR fixed during development was a +30% hit on L20.
BENCH_OLD ?= BENCH_6.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare -fail-above 15 \
		-gate-filter '^Benchmark(PulsePropagation|MultiPulseStabilization|WedgeScaling/.*/wedges=1$$)' \
		$(BENCH_OLD) $(BENCH_BASELINE)

# Observability-overhead gate: with no tracer armed, the per-event nil
# check in the engine must be free. Runs the largest pulse benchmark
# (tracing disabled — the default) and fails if it regresses more than 3%
# against the committed baseline on ns/op or events/s. The OTLP exporter
# is compiled into the same binary but disabled (nil *Exporter, the
# -otlp-endpoint-unset configuration); the sim core touches neither the
# exporter nor the arm policy, so this gate is exactly the "exporter
# compiled in but disabled costs <3%" check.
obs-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkPulsePropagation$$/L100_W40$$' \
		-benchmem -count=6 . | $(GO) run ./cmd/benchjson -out obs_overhead.json
	$(GO) run ./cmd/benchjson -compare -fail-above 3 $(BENCH_BASELINE) obs_overhead.json

# Differential-fuzz the event queues (calendar vs 4-ary heap vs
# container/heap) beyond the committed seed corpus, then the W3C
# traceparent parser/formatter round trip.
fuzz: fuzz-traceparent
	$(GO) test -fuzz FuzzEventQueue -fuzztime 30s ./internal/sim

# Fuzz the W3C traceparent codec the fleet stitches traces with:
# malformed headers must be rejected, accepted headers must round-trip
# through FormatTraceparent without losing ids.
fuzz-traceparent:
	$(GO) test -fuzz FuzzTraceparent -fuzztime 30s ./internal/obs
	$(GO) test -fuzz FuzzFormatTraceparent -fuzztime 30s ./internal/obs

# Differential-fuzz the three engine arms (serial calendar vs forced 4-ary
# heap vs P-wedge parallel, P in {2,3,8}) beyond the committed seed corpus.
fuzz-parallel:
	$(GO) test -fuzz FuzzParallelDifferential -fuzztime 30s ./internal/core

race:
	$(GO) test -race -short ./...

# Race-run the wedge-parallel engine's tests at full depth: the sim-layer
# frontier protocol and ring tests plus the core serial-vs-parallel
# differential (including the committed fuzz corpus).
race-parallel:
	$(GO) test -race -count=1 -run 'TestWedge|TestSPSC' ./internal/sim
	$(GO) test -race -count=1 -run 'TestParallel|FuzzParallelDifferential' ./internal/core

# CPU-profile the wedge-parallel engine on the scaling workload; inspect
# with `go tool pprof parallel.prof` (top, then list sim.(*Wedge).run).
PROF_WEDGES ?= 8
prof-parallel:
	$(GO) run ./cmd/hexsim -L 1000 -W 500 -wedges $(PROF_WEDGES) -heat=false \
		-cpuprofile parallel.prof > /dev/null
	@echo "wrote parallel.prof (wedges=$(PROF_WEDGES)); view with: go tool pprof parallel.prof"

# Race-run the serving layer and the durable store with coverage; fail if
# internal/store (the crash-recovery code) drops below 85%.
cover:
	$(GO) test -race -coverprofile=cover_service.out ./internal/service/...
	$(GO) test -race -coverprofile=cover_store.out ./internal/store/...
	@$(GO) tool cover -func=cover_service.out | awk '$$1=="total:"{print "internal/service coverage:", $$3}'
	@$(GO) tool cover -func=cover_store.out | awk '$$1=="total:"{sub(/%/,"",$$3); \
		printf "internal/store coverage: %s%%\n", $$3; \
		if ($$3+0 < 85) { print "FAIL: internal/store coverage below 85%"; exit 1 }}'

# Fleet smoke: boot a 3-node in-process fleet behind the router, spray
# concurrent requests, and assert single fleet-wide execution, node-loss
# re-homing with zero corrupt results, and a clean drain — all under the
# race detector.
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/coalesce/

# Sweep-jobs smoke: decomposition key equivalence (incl. the committed
# fuzz corpus), WFQ fairness/starvation properties, SSE streaming with
# Last-Event-ID reconnect, and the randomized kill-and-resume scenario
# (restart over the same store dir, only the gap recomputes) — all under
# the race detector.
jobs-smoke:
	$(GO) test -race -count=1 ./internal/jobs/

# Fuzz the sweep decomposition beyond the committed seed corpus: unit
# keys must equal single-run keys byte-for-byte, with stable order and
# no collisions.
fuzz-sweeps:
	$(GO) test -fuzz FuzzSweepDecompose -fuzztime 30s ./internal/jobs

# Campaign-pipeline smoke: every layer of the batched fast path under the
# race detector — grid-cache sharing across concurrent requests, batched
# units vs the unbatched oracle, aggregate HXA1 round trip and corruption
# rejection, group commit (incl. crash/torn-tail fault injection), and
# sweep cancellation.
campaign-smoke:
	$(GO) test -race -count=1 -run 'TestGridCache' ./internal/service/
	$(GO) test -race -count=1 -run 'TestSweepBatched|TestSweepCancellation|TestCancelFinishedJobIsNoOp|TestWFQBatchFairness' ./internal/jobs/
	$(GO) test -race -count=1 -run 'TestAggregate|TestPutGroup|TestKillBeforeSegmentRename|TestSegment' ./internal/store/

# OTLP-export smoke: the in-process fake collector proves a router-hop
# sweep exports one stitched trace (job root → unit spans → backend
# request spans with correct traceparent parentage), that a
# skew-envelope-violating unit is auto-re-run with the flight recorder
# armed and its dump attached to the exported span, and that a hung or
# dead collector only ever drops spans — the serving path never blocks.
otlp-smoke:
	$(GO) test -race -count=1 ./internal/obs/ ./internal/obs/export/
	$(GO) test -race -count=1 -run 'TestFleetStitchedTraceAndArmRerun|TestProxyHopStitching|TestRouterMetricsPrometheusLint' ./internal/cluster/

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Full-scale reproduction of every table and figure (≈ minutes).
repro:
	$(GO) run ./cmd/hexpaper -exp all -runs 250 | tee paper_results.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfstabilization
	$(GO) run ./examples/treecompare
	$(GO) run ./examples/freqmult
	$(GO) run ./examples/endtoend

clean:
	rm -f test_output.txt bench_output.txt cover_service.out cover_store.out obs_overhead.json parallel.prof
