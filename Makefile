# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json vet fmt cover repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-record the committed performance baseline from the two core benchmarks.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPulsePropagation$$|BenchmarkMultiPulseStabilization$$' \
		-benchmem -count=6 . | $(GO) run ./cmd/benchjson -out BENCH_2.json

race:
	$(GO) test -race -short ./...

# Race-run the serving layer and the durable store with coverage; fail if
# internal/store (the crash-recovery code) drops below 85%.
cover:
	$(GO) test -race -coverprofile=cover_service.out ./internal/service/...
	$(GO) test -race -coverprofile=cover_store.out ./internal/store/...
	@$(GO) tool cover -func=cover_service.out | awk '$$1=="total:"{print "internal/service coverage:", $$3}'
	@$(GO) tool cover -func=cover_store.out | awk '$$1=="total:"{sub(/%/,"",$$3); \
		printf "internal/store coverage: %s%%\n", $$3; \
		if ($$3+0 < 85) { print "FAIL: internal/store coverage below 85%"; exit 1 }}'

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Full-scale reproduction of every table and figure (≈ minutes).
repro:
	$(GO) run ./cmd/hexpaper -exp all -runs 250 | tee paper_results.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfstabilization
	$(GO) run ./examples/treecompare
	$(GO) run ./examples/freqmult
	$(GO) run ./examples/endtoend

clean:
	rm -f test_output.txt bench_output.txt cover_service.out cover_store.out
