# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race bench bench-json bench-compare obs-overhead fuzz vet fmt cover cluster-smoke repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-record the committed performance baseline from the two core benchmarks.
BENCH_BASELINE ?= BENCH_4.json
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkPulsePropagation$$|BenchmarkMultiPulseStabilization$$' \
		-benchmem -count=6 . | $(GO) run ./cmd/benchjson -out $(BENCH_BASELINE)

# Compare the current baseline against the previous one: a per-benchmark
# delta table on ns/op, events/s, B/op, allocs/op, failing if any timing
# metric regresses more than 5%.
BENCH_OLD ?= BENCH_2.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare -fail-above 5 $(BENCH_OLD) $(BENCH_BASELINE)

# Observability-overhead gate: with no tracer armed, the per-event nil
# check in the engine must be free. Runs the largest pulse benchmark
# (tracing disabled — the default) and fails if it regresses more than 3%
# against the committed baseline on ns/op or events/s.
obs-overhead:
	$(GO) test -run '^$$' -bench 'BenchmarkPulsePropagation$$/L100_W40$$' \
		-benchmem -count=6 . | $(GO) run ./cmd/benchjson -out obs_overhead.json
	$(GO) run ./cmd/benchjson -compare -fail-above 3 $(BENCH_BASELINE) obs_overhead.json

# Differential-fuzz the event queues (calendar vs 4-ary heap vs
# container/heap) beyond the committed seed corpus.
fuzz:
	$(GO) test -fuzz FuzzEventQueue -fuzztime 30s ./internal/sim

race:
	$(GO) test -race -short ./...

# Race-run the serving layer and the durable store with coverage; fail if
# internal/store (the crash-recovery code) drops below 85%.
cover:
	$(GO) test -race -coverprofile=cover_service.out ./internal/service/...
	$(GO) test -race -coverprofile=cover_store.out ./internal/store/...
	@$(GO) tool cover -func=cover_service.out | awk '$$1=="total:"{print "internal/service coverage:", $$3}'
	@$(GO) tool cover -func=cover_store.out | awk '$$1=="total:"{sub(/%/,"",$$3); \
		printf "internal/store coverage: %s%%\n", $$3; \
		if ($$3+0 < 85) { print "FAIL: internal/store coverage below 85%"; exit 1 }}'

# Fleet smoke: boot a 3-node in-process fleet behind the router, spray
# concurrent requests, and assert single fleet-wide execution, node-loss
# re-homing with zero corrupt results, and a clean drain — all under the
# race detector.
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/coalesce/

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

# Full-scale reproduction of every table and figure (≈ minutes).
repro:
	$(GO) run ./cmd/hexpaper -exp all -runs 250 | tee paper_results.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/faulttolerance
	$(GO) run ./examples/selfstabilization
	$(GO) run ./examples/treecompare
	$(GO) run ./examples/freqmult
	$(GO) run ./examples/endtoend

clean:
	rm -f test_output.txt bench_output.txt cover_service.out cover_store.out obs_overhead.json
