// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment, at reduced run counts so the full suite stays fast) plus
// micro-benchmarks of the simulation core. Use cmd/hexpaper for full-scale
// reproductions.
package hex

import (
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/pulsegen"
	"repro/internal/sim"
)

// benchOpts returns reduced-scale options sized for benchmarking.
func benchOpts() experiment.Options {
	return experiment.Options{L: 20, W: 12, Runs: 10, Seed: 1}
}

func reportFig(b *testing.B, fig *experiment.FigResult, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := fig.Data[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// --- Table and figure reproductions (Section 4) ---

func BenchmarkTable1FaultFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2OneByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Timeouts(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Table3(o, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5WorstCase(b *testing.B) {
	o := experiment.Options{L: 30, W: 20, Runs: 1, Seed: 1}
	var last *experiment.FigResult
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	reportFig(b, last, "skew_cols_8_9_max_ns", "lemma4_bound_ns")
}

func BenchmarkFig8Wave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Wave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Histograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Histograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12PerLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig12(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13ByzantineWave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig13(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14FiveByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig14(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15FaultSweep(b *testing.B) {
	o := benchOpts()
	o.Runs = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig15(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16FaultSweep(b *testing.B) {
	o := benchOpts()
	o.Runs = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig16(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17WorstByzantine(b *testing.B) {
	o := experiment.Options{Runs: 1, Seed: 1}
	var last *experiment.FigResult
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig17(o)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	reportFig(b, last, "worst_upper_skew_dplus")
}

func BenchmarkFig18Stabilization(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig18(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Stabilization(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig19(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20FreqMult(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig20(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21AltTopology(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig21(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeCompare(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TreeCompare(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

func BenchmarkAblationLinkTimeouts(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationLinkTimeouts(o, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGuard(b *testing.B) {
	o := benchOpts()
	o.Runs = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationGuard(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEpsilon(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationEpsilon(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulation core micro-benchmarks ---

// BenchmarkPulsePropagation measures raw simulator throughput: one pulse
// through grids of growing size, reporting events per second.
func BenchmarkPulsePropagation(b *testing.B) {
	for _, size := range []struct{ L, W int }{{20, 12}, {50, 20}, {100, 40}} {
		b.Run(fmt.Sprintf("L%d_W%d", size.L, size.W), func(b *testing.B) {
			g, err := NewGrid(size.L, size.W)
			if err != nil {
				b.Fatal(err)
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				events += rep.Result.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkWedgeScaling measures the wedge-parallel engine on one large
// pulse (the ISSUE-7 scaling workload): the same L1000_W500 grid at 1, 2,
// 4, and 8 wedges. The wedges=1 sub-benchmark runs the serial engine and
// doubles as the regression gate for the keyed-scheduling refactor; the
// others only show real scaling when GOMAXPROCS (recorded in the JSON
// header by benchjson) provides that many cores.
func BenchmarkWedgeScaling(b *testing.B) {
	g, err := NewGrid(1000, 500)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("L1000_W500/wedges=%d", p), func(b *testing.B) {
			// One untimed pulse first: at ~1s/op the harness runs b.N=1,
			// so without a warmup the first sub-benchmark alone pays the
			// arena page-faulting and looks slower than its successors.
			if _, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: ^uint64(0), Wedges: p}); err != nil {
				b.Fatal(err)
			}
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunPulse(PulseConfig{Grid: g, Scenario: ScenarioUniformDPlus, Seed: uint64(i), Wedges: p})
				if err != nil {
					b.Fatal(err)
				}
				events += rep.Result.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkMultiPulseStabilization measures a full 10-pulse run from
// arbitrary initial states, the workload behind Figs. 18–19.
func BenchmarkMultiPulseStabilization(b *testing.B) {
	g, err := NewGrid(50, 20)
	if err != nil {
		b.Fatal(err)
	}
	to := Condition2(4*PaperBounds.Max, PaperBounds, g.L, 0, PaperDrift)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStabilization(StabilizationConfig{
			Grid: g, Scenario: ScenarioUniformDPlus, Timeouts: to, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEventThroughput isolates the event queue + dispatch loop.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.ScheduleAfter(1, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(0, tick)
	e.RunAll()
}

// BenchmarkRNG measures the generator feeding all delay draws.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink Time
	for i := 0; i < b.N; i++ {
		sink += r.TimeIn(PaperBounds.Min, PaperBounds.Max)
	}
	_ = sink
}

// --- Extension benches ---

func BenchmarkExtensionHexPlus(b *testing.B) {
	o := benchOpts()
	o.Runs = 6
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ExtensionHexPlus(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradientSkew(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.GradientSkew(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbeddingComparison(b *testing.B) {
	o := experiment.Options{L: 15, W: 12, Runs: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EmbeddingComparison(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEnd(b *testing.B) {
	o := benchOpts()
	o.Runs = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EndToEnd(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRingOscCompare(b *testing.B) {
	o := experiment.Options{Runs: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RingOscCompare(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPulseGeneration measures the layer-0 source network substrate.
func BenchmarkPulseGeneration(b *testing.B) {
	cfg := pulsegen.Config{
		N:      20,
		Period: 300 * Nanosecond,
		Pulses: 10,
		Bounds: PaperBounds,
		Drift:  Drift{Num: 1001, Den: 1000},
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := pulsegen.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaling(b *testing.B) {
	o := experiment.Options{Runs: 10, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Scaling(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGALS(b *testing.B) {
	o := experiment.Options{L: 10, W: 8, Runs: 5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.GALS(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrokenWires(b *testing.B) {
	o := experiment.Options{L: 12, W: 8, Runs: 5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BrokenWires(o); err != nil {
			b.Fatal(err)
		}
	}
}
