package hex

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
	"repro/internal/trace"
)

// TestSoakLongPulseTrainAudited runs a long (60-pulse) train with Byzantine
// faults on a mid-size grid, records every internal event, and replays the
// whole run through the independent trace auditor plus the per-pulse
// assignment checks. This is the closest thing to a production burn-in the
// repository has; it executes roughly half a million events.
func TestSoakLongPulseTrainAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const pulses = 60
	h := grid.MustHex(20, 12)
	b := delay.Paper
	to := theory.Condition2(4*b.Max, b, h.L, 2, theory.PaperDrift)

	plan := fault.NewPlan(h.NumNodes())
	rng := sim.NewRNG(99)
	placed, err := fault.PlaceRandom(h.Graph, 2, nil, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range placed {
		plan.SetBehavior(n, fault.Byzantine)
	}
	plan.RandomizeByzantine(h.Graph, rng)

	sched := source.NewSchedule(source.UniformDPlus, h.W, pulses, b,
		to.Separation, sim.NewRNG(7))
	rec := &trace.Recorder{}
	params := core.Params{
		Bounds:    b,
		TLinkMin:  to.TLinkMin,
		TLinkMax:  to.TLinkMax,
		TSleepMin: to.TSleepMin,
		TSleepMax: to.TSleepMax,
	}
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   params,
		Delay:    delay.Uniform{Bounds: b},
		Faults:   plan,
		Schedule: sched,
		Seed:     123,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("events: %d, trace entries: %d", res.Events, len(rec.Events))

	// Independent semantic replay of the full run.
	aud := &trace.Auditor{G: h.Graph, Plan: plan, Params: params}
	if err := aud.AuditAll(rec); err != nil {
		t.Fatal(err)
	}
	if err := aud.AuditFireCounts(rec, pulses); err != nil {
		t.Fatal(err)
	}

	// Every pulse assigned cleanly; skews bounded by the σ that sized the
	// timeouts (4d+ intra) for every single pulse.
	pa := analysis.AssignPulses(h.Graph, res, plan, sched, b)
	th := analysis.ThresholdsFromSigma(analysis.ConstantSigma(4*b.Max), b)
	for k := 0; k < pulses; k++ {
		if !pa.PulseStable(k, th) {
			// Faults may push isolated pulses past the threshold; require
			// clean assignment at minimum.
			for n := 0; n < h.NumNodes(); n++ {
				if h.LayerOf(n) == 0 || pa.Waves[k].Excluded[n] {
					continue
				}
				if !pa.Clean[k][n] {
					t.Fatalf("pulse %d: node %d not cleanly assigned", k, n)
				}
			}
		}
	}
	// No skew drift over the train: the last ten pulses are no worse than
	// pulses 10–20.
	maxIn := func(from, to int) float64 {
		worst := 0.0
		for k := from; k < to; k++ {
			for _, v := range pa.Waves[k].IntraSkews() {
				if v > worst {
					worst = v
				}
			}
		}
		return worst
	}
	early, late := maxIn(10, 20), maxIn(pulses-10, pulses)
	if late > 2*early+1 {
		t.Errorf("skew drifted over the train: early max %.3f, late max %.3f", early, late)
	}
}
