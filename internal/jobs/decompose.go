package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/service"
)

// MaxWeight bounds a sweep's WFQ weight. The range is deliberately
// narrow: weights express ratios between tenants, not absolute
// priorities, and a 1:64 ratio is already effectively "everything mine".
const MaxWeight = 64

// maxTenantLen bounds accepted tenant names.
const maxTenantLen = 64

// SweepSpec is the body of POST /v1/sweeps: the cross product of the
// scenario, fault-count, and seed axes over one grid shape. Every
// combination decomposes into exactly the RunRequest a client could have
// sent as its own POST /v1/run, and its canonical key is byte-identical
// to that request's key — which is what lets the LRU, the durable store,
// and the rendezvous-hashed fleet dedupe sweep units against interactive
// traffic and against other sweeps.
type SweepSpec struct {
	// L, W are the grid dimensions shared by every unit (defaults 50, 20).
	L int `json:"l,omitempty"`
	W int `json:"w,omitempty"`
	// Scenarios lists layer-0 skew scenarios (any alias source.Parse
	// accepts; default ["zero"]). Order is preserved in decomposition.
	Scenarios []string `json:"scenarios,omitempty"`
	// Faults lists fault counts (default [0]).
	Faults []int `json:"faults,omitempty"`
	// FaultType is "byzantine" (default when a unit has faults) or
	// "fail-silent", shared by every faulty unit.
	FaultType string `json:"fault_type,omitempty"`
	// HexPlus selects the Section 5 augmented topology.
	HexPlus bool `json:"hex_plus,omitempty"`
	// Seeds lists explicit seeds; SeedStart/SeedCount appends the range
	// [SeedStart, SeedStart+SeedCount). When both are empty the sweep
	// runs seed 1. A seed of 0 normalizes to 1, like /v1/run.
	Seeds     []uint64 `json:"seeds,omitempty"`
	SeedStart uint64   `json:"seed_start,omitempty"`
	SeedCount int      `json:"seed_count,omitempty"`
	// Output is each unit's output format — any format POST /v1/run
	// accepts ("stats" default, "csv", "svg", or the compact binary
	// "agg"). Campaigns that only need skew statistics run "agg": the
	// simulation skips the full per-node trigger snapshot and each unit's
	// record shrinks to a fixed-size HXA1 frame.
	Output string `json:"output,omitempty"`
	// Batch packs this many consecutive units into one scheduled batch
	// (default 1 = per-unit scheduling). A batch occupies one scheduler
	// dispatch, one worker, one trace, and one store group commit, so
	// per-unit fixed costs amortize Batch-fold; the WFQ scheduler charges
	// the tenant for the batch's full unit count, so batching never buys
	// extra scheduler share. Each unit keeps its canonical per-run key and
	// fans out its own result event. Ignored (per-unit scheduling) when
	// the runner cannot execute batches, e.g. the cluster router.
	Batch int `json:"batch,omitempty"`
	// Tenant names the client for weighted fair queueing (default
	// "default"). Units of all jobs submitted under one tenant share that
	// tenant's scheduler queue.
	Tenant string `json:"tenant,omitempty"`
	// Weight is the tenant's WFQ weight (default 1, max MaxWeight). The
	// most recent submission's weight governs the tenant's queue.
	Weight int `json:"weight,omitempty"`
	// TimeoutMs is the per-unit deadline in milliseconds; 0 uses the
	// server default, larger values are clamped to the server maximum.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Unit is one work item of a decomposed sweep: a normalized single-run
// request plus its canonical key.
type Unit struct {
	// Index is the unit's position in decomposition order (0-based).
	Index int
	// Req is the normalized equivalent single-run request.
	Req service.RunRequest
	// Key is Req's canonical key — byte-identical to what the same
	// request would be cached, stored, and sharded under if POSTed to
	// /v1/run directly.
	Key string
}

// Normalize fills the spec's defaults and validates its scheduling
// fields. Unit-level validation (grid dimensions, scenario names, fault
// feasibility) happens in Decompose, where each unit runs through the
// same RunRequest.Normalize as a real /v1/run.
func (sp *SweepSpec) Normalize(maxUnits int) error {
	if len(sp.Scenarios) == 0 {
		sp.Scenarios = []string{"zero"}
	}
	if len(sp.Faults) == 0 {
		sp.Faults = []int{0}
	}
	if sp.SeedCount < 0 {
		return fmt.Errorf("seed_count must be >= 0; got %d", sp.SeedCount)
	}
	if len(sp.Seeds) == 0 && sp.SeedCount == 0 {
		sp.SeedCount = 1
	}
	if sp.SeedCount > 0 && sp.SeedStart == 0 {
		// Seed 0 is an alias of seed 1 (RunRequest.Normalize maps it), so
		// a range from 0 would collide with its own second element; start
		// ranges at the first distinct seed instead.
		sp.SeedStart = 1
	}
	if sp.Batch == 0 {
		sp.Batch = 1
	}
	if sp.Batch < 1 || sp.Batch > maxUnits {
		return fmt.Errorf("batch must be in [1, %d]; got %d", maxUnits, sp.Batch)
	}
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if len(sp.Tenant) > maxTenantLen || !printable(sp.Tenant) {
		return fmt.Errorf("tenant must be printable and at most %d bytes", maxTenantLen)
	}
	if sp.Weight == 0 {
		sp.Weight = 1
	}
	if sp.Weight < 1 || sp.Weight > MaxWeight {
		return fmt.Errorf("weight must be in [1, %d]; got %d", MaxWeight, sp.Weight)
	}
	// Bound each axis before multiplying so the unit-count product cannot
	// overflow: every axis is individually capped by maxUnits.
	for _, n := range []int{len(sp.Scenarios), len(sp.Faults), len(sp.Seeds) + sp.SeedCount} {
		if n > maxUnits {
			return fmt.Errorf("sweep of %d+ units exceeds the limit of %d", n, maxUnits)
		}
	}
	units := len(sp.Scenarios) * len(sp.Faults) * (len(sp.Seeds) + sp.SeedCount)
	if units > maxUnits {
		return fmt.Errorf("sweep of %d units exceeds the limit of %d", units, maxUnits)
	}
	return nil
}

// printable mirrors obs.RequestID's notion of header-safe strings.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// Decompose expands the normalized spec into its work units, in a stable
// order: scenarios (as given) outermost, then fault counts, then seeds
// (explicit list first, then the range ascending). Each unit is
// normalized with the same admission limits as a single /v1/run, so an
// infeasible unit rejects the whole sweep up front rather than failing
// mid-job. Two units with the same canonical key (duplicate seeds, alias
// scenarios) are an error: a job's units must be distinct work.
func (sp *SweepSpec) Decompose(opts service.Options) ([]Unit, error) {
	seeds := make([]uint64, 0, len(sp.Seeds)+sp.SeedCount)
	seeds = append(seeds, sp.Seeds...)
	for i := 0; i < sp.SeedCount; i++ {
		seeds = append(seeds, sp.SeedStart+uint64(i))
	}
	units := make([]Unit, 0, len(sp.Scenarios)*len(sp.Faults)*len(seeds))
	byKey := make(map[string]int, cap(units))
	for _, sc := range sp.Scenarios {
		for _, faults := range sp.Faults {
			for _, seed := range seeds {
				req := service.RunRequest{
					L: sp.L, W: sp.W,
					Scenario:  sc,
					Faults:    faults,
					FaultType: sp.FaultType,
					Seed:      seed,
					HexPlus:   sp.HexPlus,
					Output:    sp.Output,
					TimeoutMs: sp.TimeoutMs,
				}
				if err := req.Normalize(opts); err != nil {
					return nil, fmt.Errorf("unit %d (scenario=%q faults=%d seed=%d): %w",
						len(units), sc, faults, seed, err)
				}
				u := Unit{Index: len(units), Req: req, Key: req.CanonicalKey()}
				if prev, dup := byKey[u.Key]; dup {
					return nil, fmt.Errorf("units %d and %d are identical work (key %s); deduplicate the spec",
						prev, u.Index, u.Key)
				}
				byKey[u.Key] = u.Index
				units = append(units, u)
			}
		}
	}
	return units, nil
}

// jobKeyPrefix prefixes the durable store records holding sweep-job
// specs, keeping them disjoint from result records ("run:…", "spec:…").
const jobKeyPrefix = "job:"

// JobID derives the job's identity from exactly what the job is: the
// ordered unit key list plus the scheduling envelope. The derivation is
// deterministic, so a restart re-derives the same ID from the persisted
// spec (clients' event-stream URLs survive the restart), and an
// identical re-submission lands on the existing job instead of running
// the sweep twice. Batch is deliberately excluded: like core wedge
// parallelism, it changes how the work executes, never what the work is
// (unit keys already capture Output), and excluding it keeps IDs of
// records persisted before the field existed re-derivable.
func JobID(sp SweepSpec, units []Unit) string {
	h := sha256.New()
	fmt.Fprintf(h, "sweep|v1|tenant=%s|w=%d|to=%d|", sp.Tenant, sp.Weight, sp.TimeoutMs)
	for _, u := range units {
		h.Write([]byte(u.Key))
		h.Write([]byte{'|'})
	}
	var sum [sha256.Size]byte
	return "sweep:" + hex.EncodeToString(h.Sum(sum[:0])[:16])
}

// storeKey returns the durable store key holding the job's spec record.
func storeKey(jobID string) string { return jobKeyPrefix + jobID }

// marshalSpec / unmarshalSpec encode the spec for its durable job record.
// JSON keeps the record human-inspectable (hexctl can dump it) and lets
// fields be added compatibly; integrity comes from the store's own
// checksummed framing around the body.
func marshalSpec(sp SweepSpec) ([]byte, error)         { return json.Marshal(sp) }
func unmarshalSpec(b []byte) (sp SweepSpec, err error) { return sp, json.Unmarshal(b, &sp) }

// jobIDFromStoreKey inverts storeKey; ok is false for foreign keys.
func jobIDFromStoreKey(key string) (string, bool) {
	id, found := strings.CutPrefix(key, jobKeyPrefix)
	return id, found && strings.HasPrefix(id, "sweep:")
}
