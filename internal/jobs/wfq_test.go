package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// plugged starts a scheduler whose single dispatch slot is occupied by a
// blocking plug task, so a test can enqueue a full workload before any
// of it dispatches. Release the returned gate to start dispatching.
func plugged(t *testing.T) (*scheduler, chan struct{}) {
	t.Helper()
	s := newScheduler(1)
	gate := make(chan struct{})
	s.enqueue("~plug", 1, func(ctx context.Context) { <-gate })
	// Wait until the plug holds the slot; everything enqueued after this
	// point sits queued behind it.
	waitFor(t, func() bool { return s.pendingCount() == 0 })
	return s, gate
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWFQExactProportionalShares pins the SFQ arithmetic deterministically:
// one dispatch slot, all work enqueued before dispatch begins, so the
// dispatch order is a pure function of the virtual tags. With weights 3:1
// every consecutive window of 4 dispatches must contain exactly 3 of the
// heavy tenant and 1 of the light one — proportional share AND bounded
// delay (no starvation window longer than one round).
func TestWFQExactProportionalShares(t *testing.T) {
	s, gate := plugged(t)
	defer s.close()

	var mu sync.Mutex
	var order []string
	record := func(name string) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}
	const rounds = 25
	for i := 0; i < 3*rounds; i++ {
		s.enqueue("heavy", 3, record("heavy"))
	}
	for i := 0; i < rounds; i++ {
		s.enqueue("light", 1, record("light"))
	}
	close(gate)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 4*rounds
	})

	mu.Lock()
	defer mu.Unlock()
	for w := 0; w+4 <= len(order); w += 4 {
		heavy := 0
		for _, name := range order[w : w+4] {
			if name == "heavy" {
				heavy++
			}
		}
		if heavy != 3 {
			t.Fatalf("window [%d,%d) dispatched %d heavy tasks, want exactly 3 (order %v)",
				w, w+4, heavy, order[w:w+4])
		}
	}
}

// TestWFQNoStarvationUnderSkew is the concurrent fairness property test:
// a hog tenant floods the scheduler with far more work than a light
// tenant, tasks run concurrently with real (jittery) durations, and the
// light tenant must neither starve nor fall materially below its weighted
// share of dispatches. Run with -race, this also exercises the
// scheduler's locking under contention.
func TestWFQNoStarvationUnderSkew(t *testing.T) {
	s, gate := plugged(t)
	defer s.close()

	type stamp struct {
		tenant string
		seq    int
	}
	var mu sync.Mutex
	var dispatches []stamp
	n := 0
	record := func(tenant string) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			n++
			dispatches = append(dispatches, stamp{tenant, n})
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}
	// Skewed submission: the hog enqueues 10x the light tenant's work,
	// at equal weight. Fair queueing must still interleave them 1:1
	// while both are backlogged.
	const hogTasks, lightTasks = 300, 30
	for i := 0; i < hogTasks; i++ {
		s.enqueue("hog", 1, record("hog"))
	}
	for i := 0; i < lightTasks; i++ {
		s.enqueue("light", 1, record("light"))
	}
	close(gate)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dispatches) == hogTasks+lightTasks
	})

	mu.Lock()
	defer mu.Unlock()
	// No starvation: the light tenant's first dispatch happens almost
	// immediately (within the first few dispatches), not after the hog's
	// backlog drains.
	first := -1
	for i, d := range dispatches {
		if d.tenant == "light" {
			first = i
			break
		}
	}
	if first < 0 || first > 4 {
		t.Fatalf("light tenant first dispatched at position %d, want <= 4", first)
	}
	// Weighted share: while both tenants are backlogged (the first
	// 2*lightTasks dispatches), the light tenant must hold its 50%% share
	// within tolerance. The single dispatch slot makes the order nearly
	// deterministic, but keep a margin for the plug transition.
	window := dispatches[:2*lightTasks]
	light := 0
	for _, d := range window {
		if d.tenant == "light" {
			light++
		}
	}
	share := float64(light) / float64(len(window))
	if share < 0.4 || share > 0.6 {
		t.Fatalf("light tenant share over contended window = %.2f, want 0.5±0.1", share)
	}
	// All of the light tenant's work completes well before the hog's
	// backlog does: its last dispatch sits inside the contended window.
	last := -1
	for i, d := range dispatches {
		if d.tenant == "light" {
			last = i
		}
	}
	if last >= 2*lightTasks+4 {
		t.Fatalf("light tenant's last dispatch at position %d, want inside the 1:1 window (< %d)",
			last, 2*lightTasks+4)
	}
}

// TestWFQIdleTenantReentersAtVirtualTime: a tenant that was idle while
// others consumed service re-enters at the current virtual clock rather
// than being owed (or charged for) the idle period — the defining
// difference between fair queueing and strict round-robin accounting.
func TestWFQIdleTenantReentersAtVirtualTime(t *testing.T) {
	s := newScheduler(1)
	defer s.close()

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 64)
	record := func(name string) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			done <- struct{}{}
		}
	}
	// Busy tenant consumes 50 slots while "late" is idle.
	for i := 0; i < 50; i++ {
		s.enqueue("busy", 1, record("busy"))
	}
	for i := 0; i < 50; i++ {
		<-done
	}
	// Now both enqueue one task each. If the idle period were credited,
	// "late" would owe nothing and "busy" would owe 50 units of virtual
	// time — but SFQ restamps both at the current clock, so the two tasks
	// dispatch in tag order with no historical debt: both run promptly.
	s.enqueue("busy", 1, record("busy2"))
	s.enqueue("late", 1, record("late"))
	<-done
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 52 {
		t.Fatalf("ran %d tasks, want 52", len(order))
	}
	got := map[string]bool{order[50]: true, order[51]: true}
	if !got["busy2"] || !got["late"] {
		t.Fatalf("final two dispatches = %v, want {busy2, late}", order[50:])
	}
}

// TestSchedulerCloseCancelsRunning: close cancels the context handed to
// running tasks and discards queued ones, and returns only after running
// tasks exit.
func TestSchedulerCloseCancelsRunning(t *testing.T) {
	s := newScheduler(1)
	started := make(chan struct{})
	cancelled := make(chan struct{})
	s.enqueue("a", 1, func(ctx context.Context) {
		close(started)
		<-ctx.Done()
		close(cancelled)
	})
	ran := false
	s.enqueue("a", 1, func(ctx context.Context) { ran = true })
	<-started
	s.close()
	select {
	case <-cancelled:
	default:
		t.Fatal("close returned before the running task observed cancellation")
	}
	if ran {
		t.Fatal("queued task ran after close")
	}
	// Enqueue after close is a silent no-op, not a panic.
	s.enqueue("a", 1, func(ctx context.Context) {})
}

// TestWFQBatchFairness pins enqueueN's accounting: a task representing k
// units advances its tenant's virtual time by k/weight, so a tenant that
// batches gets exactly the same long-run unit share as one submitting
// singles — batching amortizes dispatch overhead, never buys bandwidth.
// With one dispatch slot and all work enqueued up front, the order is a
// pure function of the tags: at no prefix may the unit imbalance between
// the two equal-weight tenants exceed one batch.
func TestWFQBatchFairness(t *testing.T) {
	s, gate := plugged(t)
	defer s.close()

	const batchSize, batches = 4, 8
	const units = batchSize * batches
	var mu sync.Mutex
	type step struct {
		tenant string
		units  int
	}
	var order []step
	record := func(tenant string, k int) func(context.Context) {
		return func(ctx context.Context) {
			mu.Lock()
			order = append(order, step{tenant, k})
			mu.Unlock()
		}
	}
	for i := 0; i < batches; i++ {
		s.enqueueN("batch", 1, batchSize, record("batch", batchSize))
	}
	for i := 0; i < units; i++ {
		s.enqueue("solo", 1, record("solo", 1))
	}
	close(gate)
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == batches+units
	})

	mu.Lock()
	defer mu.Unlock()
	batchUnits, soloUnits := 0, 0
	for i, st := range order {
		if st.tenant == "batch" {
			batchUnits += st.units
		} else {
			soloUnits += st.units
		}
		if diff := batchUnits - soloUnits; diff > batchSize || diff < -batchSize {
			t.Fatalf("after dispatch %d unit shares diverged: batch=%d solo=%d", i, batchUnits, soloUnits)
		}
	}
	if batchUnits != units || soloUnits != units {
		t.Fatalf("drained %d batch units and %d solo units, want %d each", batchUnits, soloUnits, units)
	}
}
