// Package jobs promotes parameter sweeps from one synchronous HTTP
// request to first-class, durable, fairly scheduled jobs (DESIGN.md
// §14). POST /v1/sweeps decomposes a sweep spec into per-run work units
// whose canonical keys are byte-identical to the equivalent single
// /v1/run requests, so every layer that dedupes single runs — the
// memory LRU, the durable store, the rendezvous-hashed fleet — dedupes
// sweep units for free. A weighted-fair-queueing scheduler (wfq.go)
// feeds units across client tenants into the existing execution path,
// and progress streams to clients over server-sent events with
// Last-Event-ID reconnection (http.go).
//
// Jobs survive restarts without any resume bookkeeping of their own:
// the spec is persisted to the durable store under "job:<id>" when the
// job is accepted, and on boot Recover re-decomposes it and simply
// re-runs every unit through the pipeline. Units whose results already
// sit in the store come back as store hits (zero simulation work);
// only the gap recomputes. Determinism makes the resumed results
// byte-identical to an uninterrupted run.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/service"
	"repro/internal/store"
)

// ErrShuttingDown is returned by Submit after Close has begun.
var ErrShuttingDown = errors.New("jobs: shutting down")

// Runner executes one normalized single-run request through a serving
// pipeline. A backend's *service.Service implements it by running the
// unit on its local worker pool; the cluster router implements it by
// forwarding the unit to the shard that owns its canonical key — either
// way the unit dedupes against all other traffic for the same key.
type Runner interface {
	RunUnit(ctx context.Context, timeout time.Duration, req service.RunRequest) (*coalesce.Value, error)
}

// BatchRunner is the optional batched extension of Runner: executing k
// units as one scheduled job so their fixed costs (queue round-trip,
// trace, store fsyncs) are paid once. A backend's *service.Service
// implements it (RunUnits); the cluster router does not — its units
// scatter across shards — so the manager falls back to per-unit
// scheduling when the Runner lacks this interface.
type BatchRunner interface {
	RunUnits(ctx context.Context, timeout time.Duration, reqs []service.RunRequest) ([]*coalesce.Value, []error)
}

// Options configure a Manager. Runner is required; the zero value of
// every other field selects a sane default.
type Options struct {
	// Runner executes units.
	Runner Runner
	// Service carries the admission limits units are normalized against.
	// It should be the same resolved Options the single-run endpoints
	// enforce, so a sweep can never smuggle in a request that POST
	// /v1/run would reject.
	Service service.Options
	// Store, when non-nil, persists accepted job specs and enables
	// Recover. Unit results are NOT written here by the manager — they
	// flow through the Runner's own write-behind path, which is exactly
	// what makes resume recompute only the gap.
	Store *store.Store
	// MaxUnits bounds one sweep's unit count (default 10000).
	MaxUnits int
	// MaxInFlight bounds concurrently dispatched units (default
	// 2×GOMAXPROCS). Dispatch concurrency is deliberately modest: it is
	// the window the WFQ scheduler reorders within, and the worker pool
	// behind the Runner applies its own backpressure.
	MaxInFlight int
	// MaxJobs bounds retained job states, evicting the oldest finished
	// jobs first (default 256). Running jobs are never evicted.
	MaxJobs int
	// Logger receives the manager's structured log (default slog.Default()).
	Logger *slog.Logger
	// Trace, when non-nil, receives each unit's completed trace — wire
	// the service's ring here so sweep units appear in GET
	// /v1/debug/requests next to interactive requests.
	Trace *obs.Ring
	// Retryable classifies errors the unit retry loop absorbs with
	// backoff instead of failing the unit. The default retries the
	// service's queue-full rejection; a router-backed manager adds the
	// router's own busy sentinel.
	Retryable func(error) bool
	// Exporter, when non-nil, receives the completed traces of sweep
	// units, batches, and the per-job root span for OTLP export. Every
	// unit of a job shares the job's trace-id and parents under its root
	// span, so a whole sweep renders as one tree in the collector — and,
	// through the router, so do the backend hops each unit caused.
	Exporter *export.Exporter
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	o.Service = o.Service.Resolved()
	if o.MaxUnits <= 0 {
		o.MaxUnits = 10000
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 256
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.Retryable == nil {
		o.Retryable = func(err error) bool { return errors.Is(err, service.ErrQueueFull) }
	}
	return o
}

// unitState tracks one unit through its lifetime.
type unitState uint8

const (
	unitPending unitState = iota
	unitRunning
	unitDone
	unitFailed
	unitCancelled
)

// Event is one completed unit, in completion order. It is both the SSE
// payload (data: is its JSON) and the in-memory replay log entry.
type Event struct {
	// Seq is the event's 1-based position in the job's completion order.
	// SSE ids are "<epoch>-<seq>"; see Job.Epoch.
	Seq int `json:"seq"`
	// Unit is the unit's decomposition index; Key its canonical key.
	Unit int    `json:"unit"`
	Key  string `json:"key"`
	// Status is "done" or "failed"; Error carries the failure.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Events is the unit's simulation event count (from the serving
	// pipeline, so a cache or store hit replays the original count).
	Events uint64 `json:"events,omitempty"`
	// Record is the unit's result framed with the durable store's
	// checksummed record codec (store.EncodeEntry; JSON carries it
	// base64-encoded). Decoding with store.DecodeEntry yields the exact
	// response body a POST /v1/run for the unit's request returns, plus
	// its content type — and verifies the CRC, so a client detects
	// payload corruption in transit the same way the store detects it on
	// disk.
	Record []byte `json:"record,omitempty"`
}

// Job is one accepted sweep. All fields set at creation are immutable;
// mutable state is guarded by mu.
type Job struct {
	// ID is the deterministic job identity (see JobID).
	ID string
	// Epoch distinguishes this in-memory materialization of the job from
	// pre-restart ones: SSE event ids are "<epoch>-<seq>", and a
	// reconnect quoting a foreign epoch replays the log from the start
	// (at-least-once across restarts) instead of resuming a sequence
	// numbering that a different completion order may have reshuffled.
	Epoch string
	// Spec is the normalized sweep spec; Units its stable decomposition.
	Spec  SweepSpec
	Units []Unit
	// Resumed reports the job was re-materialized by Recover.
	Resumed bool

	// root is the job's own trace: it mints the W3C trace-id every unit
	// of the job shares, and its span is the parent of every unit span,
	// so one sweep exports as one tree. Finished (and exported) exactly
	// once, when the last unit lands.
	root       *obs.Trace
	finishOnce sync.Once

	// cancelCtx is done once the job is cancelled; in-flight unit
	// contexts are derived-from-or-bridged-to it so DELETE interrupts
	// simulations mid-run, not just queued units.
	cancelCtx context.Context
	cancelFn  context.CancelFunc

	mu         sync.Mutex
	state      []unitState
	events     []Event
	done       bool
	cancelled  bool
	failed     int
	nCancelled int           // units cancelled before running (no event)
	hits       int           // units answered without simulation (cache/store)
	change     chan struct{} // closed and replaced on every append/finish
	created    time.Time
	finishedAt time.Time
}

// newJob materializes a job with every unit pending.
func newJob(id string, spec SweepSpec, units []Unit, resumed bool) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	root := obs.NewTrace(obs.NewRequestID(), "sweep-job")
	root.SetTraceID(obs.NewTraceID())
	root.SetAttr("job", id)
	root.SetAttr("tenant", spec.Tenant)
	root.SetAttr("units", fmt.Sprintf("%d", len(units)))
	return &Job{
		ID:        id,
		root:      root,
		Epoch:     obs.NewRequestID(),
		Spec:      spec,
		Units:     units,
		Resumed:   resumed,
		cancelCtx: ctx,
		cancelFn:  cancel,
		state:     make([]unitState, len(units)),
		change:    make(chan struct{}),
		created:   time.Now(),
	}
}

// Done reports whether every unit reached a terminal state.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// Counts returns the job's unit-state tally.
func (j *Job) Counts() (pending, running, done, failed int) {
	p, r, d, f, _ := j.CountsWithCancelled()
	return p, r, d, f
}

// CountsWithCancelled returns the tally including cancelled units.
func (j *Job) CountsWithCancelled() (pending, running, done, failed, cancelled int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, st := range j.state {
		switch st {
		case unitPending:
			pending++
		case unitRunning:
			running++
		case unitDone:
			done++
		case unitFailed:
			failed++
		case unitCancelled:
			cancelled++
		}
	}
	return
}

// Cancelled reports whether the job was cancelled.
func (j *Job) Cancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// cancelNow flips the job to cancelled: every still-pending unit is
// terminally cancelled without an event (its scheduler dispatch becomes a
// no-op), the job's cancel context fires so in-flight unit contexts
// collapse, and subscribers wake. It reports false when the job already
// finished or was already cancelled (idempotent DELETE). In-flight units
// stay "running" until their cancelled contexts surface — the job turns
// done when the last of them completes, or immediately when none are in
// flight.
func (j *Job) cancelNow() bool {
	j.mu.Lock()
	if j.done || j.cancelled {
		j.mu.Unlock()
		return false
	}
	j.cancelled = true
	running := 0
	for i, st := range j.state {
		switch st {
		case unitPending:
			j.state[i] = unitCancelled
			j.nCancelled++
		case unitRunning:
			running++
		}
	}
	if running == 0 {
		j.done = true
		j.finishedAt = time.Now()
	}
	close(j.change)
	j.change = make(chan struct{})
	j.mu.Unlock()
	j.cancelFn()
	return true
}

// eventsAfter snapshots the completion log past seq, plus the current
// change channel (closed on the next append) and the done flag. The
// returned slice aliases the immutable prefix of the log — events are
// append-only and never mutated in place.
func (j *Job) eventsAfter(seq int) (evs []Event, change chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	if seq < len(j.events) {
		evs = j.events[seq:len(j.events):len(j.events)]
	}
	return evs, j.change, j.done
}

// markRunning flips a pending unit to running; it reports false when the
// unit is no longer pending (a duplicate dispatch after resume races).
func (j *Job) markRunning(unit int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state[unit] != unitPending {
		return false
	}
	j.state[unit] = unitRunning
	return true
}

// complete appends the unit's terminal event and wakes subscribers.
// hit marks a unit answered without fresh simulation work.
func (j *Job) complete(unit int, val *coalesce.Value, hit bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{Seq: len(j.events) + 1, Unit: unit, Key: j.Units[unit].Key, Status: "done"}
	switch {
	case err != nil && j.cancelled && errors.Is(err, context.Canceled):
		// An in-flight unit interrupted by DELETE is cancelled, not
		// failed: it carries no defect, and a later re-submission of the
		// same spec should re-run it.
		j.state[unit] = unitCancelled
		ev.Status = "cancelled"
	case err != nil:
		j.state[unit] = unitFailed
		j.failed++
		ev.Status = "failed"
		ev.Error = err.Error()
	default:
		j.state[unit] = unitDone
		if hit {
			j.hits++
		}
		ev.Events = val.Events
		ev.Record = store.EncodeEntry(store.Entry{
			Key:         j.Units[unit].Key,
			ContentType: val.ContentType,
			Events:      val.Events,
			Body:        val.Body,
		})
	}
	j.events = append(j.events, ev)
	// Cancelled-before-running units produce no event, so the job is done
	// when events plus those units cover the decomposition.
	if len(j.events)+j.nCancelled == len(j.Units) {
		j.done = true
		j.finishedAt = time.Now()
	}
	close(j.change)
	j.change = make(chan struct{})
}

// Manager owns the accepted jobs, the WFQ scheduler, and the sweep HTTP
// surface. Construct with NewManager; all methods are safe for
// concurrent use.
type Manager struct {
	opts    Options
	Metrics *Metrics
	sched   *scheduler

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for MaxJobs eviction
	closed bool
}

// NewManager starts a Manager and its dispatch loop.
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	if opts.Runner == nil {
		panic("jobs: Options.Runner is required")
	}
	return &Manager{
		opts:    opts,
		Metrics: NewMetrics(),
		sched:   newScheduler(opts.MaxInFlight),
		jobs:    make(map[string]*Job),
	}
}

// Close stops the scheduler (cancelling running units) and wakes every
// event-stream subscriber so their responses end. Queued units are
// dropped; durable job specs remain, so the next boot's Recover resumes
// unfinished jobs.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	m.sched.close()
	for _, j := range jobs {
		// Wake subscribers; they observe the manager closed and return.
		j.mu.Lock()
		close(j.change)
		j.change = make(chan struct{})
		j.mu.Unlock()
	}
}

// isClosed reports whether Close has begun.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Job returns the job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Submit validates, decomposes, persists, and schedules a sweep. The
// returned bool reports whether the job already existed (identical
// re-submission or an already-recovered job): submission is idempotent
// by construction, because the job ID is a deterministic function of the
// work.
func (m *Manager) Submit(spec SweepSpec) (*Job, bool, error) {
	return m.submit(spec, false)
}

func (m *Manager) submit(spec SweepSpec, resumed bool) (*Job, bool, error) {
	if err := spec.Normalize(m.opts.MaxUnits); err != nil {
		return nil, false, errBadSpec{err}
	}
	units, err := spec.Decompose(m.opts.Service)
	if err != nil {
		return nil, false, errBadSpec{err}
	}
	id := JobID(spec, units)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		return j, true, nil
	}
	j := newJob(id, spec, units, resumed)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.mu.Unlock()

	m.persist(j)
	m.Metrics.JobsSubmitted.Inc()
	if resumed {
		m.Metrics.JobsResumed.Inc()
	}
	m.Metrics.UnitsPlanned.Add(uint64(len(units)))
	if br, ok := m.opts.Runner.(BatchRunner); ok && spec.Batch > 1 {
		// Batched dispatch: consecutive decomposition slices become one
		// scheduler task each, charged for their full unit count (see
		// enqueueN) so batching amortizes overhead without buying share.
		for lo := 0; lo < len(units); lo += spec.Batch {
			lo, hi := lo, min(lo+spec.Batch, len(units))
			m.sched.enqueueN(spec.Tenant, spec.Weight, hi-lo, func(ctx context.Context) {
				m.runBatch(ctx, j, lo, hi, br)
			})
		}
	} else {
		for i := range units {
			unit := i
			m.sched.enqueue(spec.Tenant, spec.Weight, func(ctx context.Context) {
				m.runUnit(ctx, j, unit)
			})
		}
	}
	m.opts.Logger.Info("sweep accepted", "job", id, "units", len(units),
		"tenant", spec.Tenant, "weight", spec.Weight, "batch", spec.Batch, "resumed", resumed)
	return j, false, nil
}

// Cancel terminates the job: queued units are cancelled in place, the
// job's cancel context interrupts in-flight simulations, the durable job
// record is deleted so the next boot does not resume it, and every event
// stream ends with a terminal "cancelled" frame. found reports whether
// the job exists; cancelled whether this call did the cancelling (false
// on repeat DELETEs and on already-finished jobs — the operation is
// idempotent).
func (m *Manager) Cancel(id string) (j *Job, found, cancelled bool) {
	j, found = m.Job(id)
	if !found {
		return nil, false, false
	}
	if !j.cancelNow() {
		return j, true, false
	}
	m.Metrics.JobsCancelled.Inc()
	j.mu.Lock()
	queued := j.nCancelled
	j.mu.Unlock()
	m.Metrics.UnitsCancelled.Add(uint64(queued))
	if m.opts.Store != nil {
		m.opts.Store.Delete(storeKey(id))
	}
	// A cancel with nothing in flight finishes the job on the spot; the
	// root span must still close and export (no unit completion will).
	m.finishIfDone(j)
	m.opts.Logger.Info("sweep cancelled", "job", id, "queued_units", queued)
	return j, true, true
}

// evictLocked drops the oldest finished jobs beyond MaxJobs. Callers
// hold m.mu.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.opts.MaxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if len(m.jobs) > m.opts.MaxJobs && m.jobs[id].Done() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// persist writes the job's spec record so a restart can resume it.
func (m *Manager) persist(j *Job) {
	if m.opts.Store == nil {
		return
	}
	body, err := marshalSpec(j.Spec)
	if err == nil {
		err = m.opts.Store.Put(store.Entry{
			Key:         storeKey(j.ID),
			ContentType: "application/json",
			Body:        body,
		})
	}
	if err != nil {
		// Losing durability of the spec only costs restart resume for
		// this job; the job itself still runs.
		m.opts.Logger.Warn("persist job spec failed", "job", j.ID, "err", err.Error())
	}
}

// retire deletes the job's durable spec record once every unit
// succeeded: each unit's result is in the store, so resuming the job
// would only replay store hits. A job with failures keeps its record —
// the next boot retries the failed units.
func (m *Manager) retire(j *Job) {
	if m.opts.Store == nil {
		return
	}
	j.mu.Lock()
	failed := j.failed
	j.mu.Unlock()
	if failed == 0 {
		m.opts.Store.Delete(storeKey(j.ID))
	}
}

// Recover re-materializes every persisted job from the durable store:
// specs are re-decomposed (deterministically, to the same units and job
// ID) and every unit re-runs through the pipeline, where finished units
// come back as store hits and only the gap actually simulates. Call it
// once, after the store is open and before serving traffic.
func (m *Manager) Recover() (int, error) {
	if m.opts.Store == nil {
		return 0, nil
	}
	n := 0
	for _, key := range m.opts.Store.Keys(jobKeyPrefix) {
		id, ok := jobIDFromStoreKey(key)
		if !ok {
			continue
		}
		e, found, err := m.opts.Store.Get(key)
		if err != nil || !found {
			continue // corrupt record: quarantined by the store
		}
		spec, err := unmarshalSpec(e.Body)
		if err != nil {
			m.opts.Logger.Warn("dropping undecodable job record", "key", key, "err", err.Error())
			m.opts.Store.Delete(key)
			continue
		}
		j, existing, err := m.submit(spec, true)
		if err != nil {
			// A spec that no longer passes admission (limits tightened
			// across the restart) cannot run; keep the record for the
			// operator but don't retry it every boot hereafter.
			m.opts.Logger.Warn("persisted job no longer admissible", "key", key, "err", err.Error())
			continue
		}
		if j.ID != id {
			// The derivation drifted — a bug worth failing loudly over,
			// since clients hold URLs containing the old ID.
			return n, fmt.Errorf("jobs: recovered job re-derived as %s, record says %s", j.ID, id)
		}
		if !existing {
			n++
		}
	}
	return n, nil
}

// runUnit executes one unit: per-unit trace, retry-on-queue-full, and
// completion bookkeeping. It runs on a scheduler dispatch slot.
func (m *Manager) runUnit(ctx context.Context, j *Job, unit int) {
	if !j.markRunning(unit) {
		return
	}
	u := j.Units[unit]
	timeout := service.RequestTimeout(u.Req.TimeoutMs, m.opts.Service)
	tr := obs.NewTrace(obs.NewRequestID(), "sweep-unit")
	tr.SetTraceID(j.root.TraceID())
	tr.SetParentSpanID(j.root.SpanID())
	tr.SetAttr("job", j.ID)
	tr.SetAttr("unit", fmt.Sprintf("%d", unit))
	tr.SetAttr("tenant", j.Spec.Tenant)
	m.Metrics.UnitsInFlight.Add(1)
	defer m.Metrics.UnitsInFlight.Add(-1)

	uctx, cancel := context.WithTimeout(obs.WithTrace(ctx, tr), timeout)
	defer cancel()
	// Bridge the job's DELETE cancellation into this unit's context so an
	// in-flight simulation stops mid-run instead of running to completion.
	stop := context.AfterFunc(j.cancelCtx, cancel)
	defer stop()
	val, err := m.runWithRetry(uctx, timeout, u.Req)
	hit := err == nil && val != nil && traceSawHit(tr)
	j.complete(unit, val, hit, err)
	status := 200
	switch {
	case err != nil && j.Cancelled() && errors.Is(err, context.Canceled):
		status = 499 // client closed request; nobody is waiting for this unit
		m.Metrics.UnitsCancelled.Inc()
	case err != nil:
		status = 500
		m.Metrics.UnitsFailed.Inc()
		m.opts.Logger.Warn("sweep unit failed", "job", j.ID, "unit", unit,
			"key", u.Key, "err", err.Error())
	default:
		m.Metrics.UnitsDone.Inc()
	}
	tr.Finish(status, err)
	if m.opts.Trace != nil {
		m.opts.Trace.Add(tr)
	}
	m.opts.Exporter.Export(tr)
	m.finishIfDone(j)
}

// runBatch executes units [lo, hi) of the job as ONE runner batch: one
// scheduler dispatch, one trace, one worker occupation, one store group
// commit — the per-unit fixed costs that dominate campaigns of small
// runs, paid once and amortized across the slice. Each unit still
// completes individually (own event, own canonical key). It runs on a
// scheduler dispatch slot.
func (m *Manager) runBatch(ctx context.Context, j *Job, lo, hi int, br BatchRunner) {
	reqs := make([]service.RunRequest, 0, hi-lo)
	idx := make([]int, 0, hi-lo)
	for u := lo; u < hi; u++ {
		if j.markRunning(u) {
			reqs = append(reqs, j.Units[u].Req)
			idx = append(idx, u)
		}
	}
	if len(reqs) == 0 {
		return
	}
	// The batch's deadline scales with its size — each unit keeps its
	// per-unit time budget — clamped to the same ceiling as any request.
	unitTimeout := service.RequestTimeout(reqs[0].TimeoutMs, m.opts.Service)
	timeout := unitTimeout * time.Duration(len(reqs))
	if timeout > m.opts.Service.MaxTimeout {
		timeout = m.opts.Service.MaxTimeout
	}
	tr := obs.NewTrace(obs.NewRequestID(), "sweep-batch")
	tr.SetTraceID(j.root.TraceID())
	tr.SetParentSpanID(j.root.SpanID())
	tr.SetAttr("job", j.ID)
	tr.SetAttr("units", fmt.Sprintf("%d-%d", lo, hi-1))
	tr.SetAttr("tenant", j.Spec.Tenant)
	m.Metrics.UnitsInFlight.Add(int64(len(reqs)))
	defer m.Metrics.UnitsInFlight.Add(-int64(len(reqs)))

	bctx, cancel := context.WithTimeout(obs.WithTrace(ctx, tr), timeout)
	defer cancel()
	stop := context.AfterFunc(j.cancelCtx, cancel)
	defer stop()
	vals, errs := m.runBatchWithRetry(bctx, timeout, reqs, br)
	failed := 0
	for i, u := range idx {
		j.complete(u, vals[i], false, errs[i])
		switch {
		case errs[i] != nil && j.Cancelled() && errors.Is(errs[i], context.Canceled):
			m.Metrics.UnitsCancelled.Inc()
		case errs[i] != nil:
			failed++
			m.Metrics.UnitsFailed.Inc()
			m.opts.Logger.Warn("sweep unit failed", "job", j.ID, "unit", u,
				"key", j.Units[u].Key, "err", errs[i].Error())
		default:
			m.Metrics.UnitsDone.Inc()
		}
	}
	status := 200
	var err error
	if failed > 0 {
		status = 500
		err = fmt.Errorf("%d of %d batch units failed", failed, len(idx))
	}
	tr.Finish(status, err)
	if m.opts.Trace != nil {
		m.opts.Trace.Add(tr)
	}
	m.opts.Exporter.Export(tr)
	m.finishIfDone(j)
}

// runBatchWithRetry runs the batch, absorbing whole-batch retryable
// rejections (a full worker queue fails submission for every unit alike)
// with the same backoff loop as single units. Partial outcomes — any
// unit succeeded or failed terminally — are returned as-is.
func (m *Manager) runBatchWithRetry(ctx context.Context, timeout time.Duration, reqs []service.RunRequest, br BatchRunner) ([]*coalesce.Value, []error) {
	backoff := 2 * time.Millisecond
	for {
		vals, errs := br.RunUnits(ctx, timeout, reqs)
		allRetryable := true
		for _, err := range errs {
			if err == nil || !m.opts.Retryable(err) {
				allRetryable = false
				break
			}
		}
		if !allRetryable || ctx.Err() != nil {
			return vals, errs
		}
		m.Metrics.UnitRetries.Add(uint64(len(reqs)))
		select {
		case <-ctx.Done():
			return vals, errs
		case <-time.After(backoff):
		}
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// finishIfDone runs the end-of-job bookkeeping once the last unit lands.
func (m *Manager) finishIfDone(j *Job) {
	if !j.Done() {
		return
	}
	_, _, done, failed, cancelled := j.CountsWithCancelled()
	// Close and export the job's root span exactly once: two units landing
	// near-simultaneously can both observe Done(), so the root bookkeeping
	// sits behind its own Once.
	j.finishOnce.Do(func() {
		status := 200
		var err error
		switch {
		case j.Cancelled():
			status = 499
		case failed > 0:
			status = 500
			err = fmt.Errorf("%d of %d units failed", failed, len(j.Units))
		}
		j.root.SetAttr("done", fmt.Sprintf("%d", done))
		j.root.Finish(status, err)
		if m.opts.Trace != nil {
			m.opts.Trace.Add(j.root)
		}
		m.opts.Exporter.Export(j.root)
	})
	if j.Cancelled() {
		// Cancel already counted the job and deleted its record; the last
		// in-flight unit only closes the books.
		m.opts.Logger.Info("sweep cancelled units drained", "job", j.ID,
			"done", done, "failed", failed, "cancelled", cancelled)
		return
	}
	m.Metrics.JobsCompleted.Inc()
	m.retire(j)
	m.opts.Logger.Info("sweep finished", "job", j.ID,
		"done", done, "failed", failed, "cancelled", cancelled)
}

// runWithRetry runs the unit, absorbing queue-full rejections with
// exponential backoff until the unit's own deadline: the whole point of
// a job is that the client handed us the retry loop.
func (m *Manager) runWithRetry(ctx context.Context, timeout time.Duration, req service.RunRequest) (*coalesce.Value, error) {
	backoff := 2 * time.Millisecond
	for {
		val, err := m.opts.Runner.RunUnit(ctx, timeout, req)
		if err == nil || !m.opts.Retryable(err) || ctx.Err() != nil {
			return val, err
		}
		m.Metrics.UnitRetries.Inc()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// traceSawHit reports whether the unit's trace recorded a cache or
// store hit (i.e., the pipeline answered without fresh simulation).
func traceSawHit(tr *obs.Trace) bool {
	for _, note := range tr.Snapshot().Notes {
		if note == "cache-hit" || note == "store-hit" {
			return true
		}
	}
	return false
}

// errBadSpec wraps spec validation failures (HTTP 400).
type errBadSpec struct{ err error }

func (e errBadSpec) Error() string { return e.err.Error() }
func (e errBadSpec) Unwrap() error { return e.err }
