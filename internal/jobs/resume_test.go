package jobs

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/service"
	"repro/internal/store"
)

// openStore opens the durable tier over dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// doneBodies collects key → decoded result body for every successfully
// completed unit in the job's event log.
func doneBodies(t *testing.T, j *Job) map[string][]byte {
	t.Helper()
	events, _, _ := j.eventsAfter(0)
	out := make(map[string][]byte, len(events))
	for _, ev := range events {
		if ev.Status != "done" {
			continue
		}
		entry, err := store.DecodeEntry(ev.Record)
		if err != nil {
			t.Fatalf("seq %d record: %v", ev.Seq, err)
		}
		out[ev.Key] = entry.Body
	}
	return out
}

// cutRunner passes its first cut units through to the real service and
// parks every later unit on its context: the deterministic stand-in for
// a process dying mid-sweep with work still queued.
type cutRunner struct {
	inner Runner
	mu    sync.Mutex
	n     int
	cut   int
}

func (c *cutRunner) RunUnit(ctx context.Context, timeout time.Duration, req service.RunRequest) (*coalesce.Value, error) {
	c.mu.Lock()
	idx := c.n
	c.n++
	c.mu.Unlock()
	if idx >= c.cut {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return c.inner.RunUnit(ctx, timeout, req)
}

// TestSweepCrashRestartRecomputesOnlyTheGap is the acceptance scenario
// for durable jobs: kill the process at a randomized point mid-sweep,
// restart over the same store directory, and prove — through the
// store_hits and sim-run counters alone — that only the unfinished units
// recompute, while every result is byte-identical to the first life's.
func TestSweepCrashRestartRecomputesOnlyTheGap(t *testing.T) {
	dir := t.TempDir()
	spec := SweepSpec{
		L: 12, W: 6,
		Scenarios: []string{"iii", "zero"},
		SeedCount: 4,
	}
	const units = 2 * 4

	// First life: kill at a randomized point strictly inside the sweep.
	// The cut is enforced by the runner itself — units past it park on
	// their context until Close cancels them — because enforcing it by
	// timing is hopeless: cached-grid units finish in microseconds, so a
	// whole small sweep can complete between a poll observing `cut` done
	// units and the Close landing.
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	cut := 1 + rng.Intn(units-2)
	t.Logf("killing after %d of %d units", cut, units)
	st1 := openStore(t, dir)
	svc1 := service.New(service.Options{Workers: 2, Store: st1, Logger: quiet()})
	mgr1 := NewManager(Options{
		Runner: &cutRunner{inner: svc1, cut: cut}, Service: svc1.Options(), Store: st1,
		MaxInFlight: 1, Logger: quiet(),
	})
	j1, existing, err := mgr1.Submit(spec)
	if err != nil || existing {
		t.Fatalf("submit: %v (existing=%v)", err, existing)
	}
	waitFor(t, func() bool { _, _, done, _ := j1.Counts(); return done >= cut })
	mgr1.Close()

	// Ground truth after the "crash": whatever managed to finish. Wait
	// for its write-behind to land, as a real drain would.
	_, _, finished, _ := j1.Counts()
	if finished >= units {
		t.Fatalf("job finished (%d units) before the kill landed", finished)
	}
	waitFor(t, func() bool { return svc1.Metrics.StoreWrites.Value() >= uint64(finished) })
	firstBodies := doneBodies(t, j1)
	svc1.Close()

	// Second life: fresh store, service, and manager over the same dir.
	st2 := openStore(t, dir)
	svc2 := service.New(service.Options{Workers: 2, Store: st2, Logger: quiet()})
	defer svc2.Close()
	mgr2 := NewManager(Options{
		Runner: svc2, Service: svc2.Options(), Store: st2,
		MaxInFlight: 1, Logger: quiet(),
	})
	defer mgr2.Close()
	n, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Recover resumed %d jobs, want 1", n)
	}
	j2, ok := mgr2.Job(j1.ID)
	if !ok {
		t.Fatalf("recovered manager does not know job %s (same spec must re-derive the same ID)", j1.ID)
	}
	if !j2.Resumed {
		t.Fatal("recovered job not marked resumed")
	}
	waitFor(t, j2.Done)
	if _, _, done2, failed2 := j2.Counts(); done2 != units || failed2 != 0 {
		t.Fatalf("resumed job finished with done=%d failed=%d, want %d/0", done2, failed2, units)
	}

	// The counters are the proof: every unit that survived the crash is
	// answered from the durable store, and only the gap simulates.
	if got, want := svc2.Metrics.SimRuns.Value(), uint64(units-finished); got != want {
		t.Fatalf("second life ran %d simulations, want exactly the gap %d", got, want)
	}
	if got, want := svc2.Metrics.StoreHits.Value(), uint64(finished); got != want {
		t.Fatalf("second life store hits = %d, want %d (the finished units)", got, want)
	}

	// Determinism: results the first life produced match the second
	// life's byte for byte.
	secondBodies := doneBodies(t, j2)
	if len(secondBodies) != units {
		t.Fatalf("second life has %d result bodies, want %d", len(secondBodies), units)
	}
	for key, body := range firstBodies {
		if !bytes.Equal(body, secondBodies[key]) {
			t.Fatalf("key %s: resumed result differs from pre-crash result", key)
		}
	}

	// The completed job retires its durable spec record, so a third boot
	// has nothing to resume.
	waitFor(t, func() bool { return len(st2.Keys(jobKeyPrefix)) == 0 })
	mgr3 := NewManager(Options{
		Runner: svc2, Service: svc2.Options(), Store: st2, Logger: quiet(),
	})
	defer mgr3.Close()
	if n, err := mgr3.Recover(); err != nil || n != 0 {
		t.Fatalf("third boot recovered %d jobs (%v), want 0", n, err)
	}
}

// TestSweepRecoverSkipsGarbageRecords: a job record that no longer
// decodes is dropped (and deleted) rather than wedging every boot.
func TestSweepRecoverSkipsGarbageRecords(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.Put(store.Entry{
		Key:         storeKey("sweep:deadbeef"),
		ContentType: "application/json",
		Body:        []byte("not a spec"),
	}); err != nil {
		t.Fatal(err)
	}
	mgr, _ := newTestManager(t, st)
	if n, err := mgr.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover = %d, %v; want 0, nil", n, err)
	}
	if keys := st.Keys(jobKeyPrefix); len(keys) != 0 {
		t.Fatalf("undecodable job record survived recovery: %v", keys)
	}
}
