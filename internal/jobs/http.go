package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// heartbeatEvery is the SSE keepalive comment interval: frequent enough
// that idle proxies keep the stream open, rare enough to be free.
const heartbeatEvery = 15 * time.Second

// Register wires the sweep endpoints onto mux. Patterns use Go 1.22
// method+wildcard routing, so they compose with the service's own
// handler on one mux without path-prefix gymnastics.
func (m *Manager) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sweeps", m.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", m.handleStatus)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", m.handleCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", m.handleEvents)
}

// jobsError mirrors the service's error envelope shape.
type jobsError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(jobsError{Error: msg, RequestID: rid})
}

func reqID(w http.ResponseWriter, r *http.Request) string {
	rid := obs.RequestID(r.Header.Get("X-Request-ID"))
	w.Header().Set("X-Request-ID", rid)
	return rid
}

// submitResponse is the POST /v1/sweeps reply.
type submitResponse struct {
	ID string `json:"id"`
	// Existing reports an idempotent re-submission: the identical job was
	// already accepted (possibly resumed from a previous process life).
	Existing bool `json:"existing"`
	Units    int  `json:"units"`
	// EventsURL is where to stream the job's results from.
	EventsURL string `json:"events_url"`
	RequestID string `json:"request_id"`
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rid := reqID(w, r)
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep spec: "+err.Error(), rid)
		return
	}
	job, existing, err := m.Submit(spec)
	if err != nil {
		code := http.StatusInternalServerError
		var bad errBadSpec
		switch {
		case errors.As(err, &bad):
			code = http.StatusBadRequest
		case errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err.Error(), rid)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/sweeps/"+job.ID)
	if existing {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	json.NewEncoder(w).Encode(submitResponse{
		ID:        job.ID,
		Existing:  existing,
		Units:     len(job.Units),
		EventsURL: "/v1/sweeps/" + job.ID + "/events",
		RequestID: rid,
	})
}

// statusResponse is the GET /v1/sweeps/{id} reply.
type statusResponse struct {
	ID      string `json:"id"`
	Epoch   string `json:"epoch"`
	Tenant  string `json:"tenant"`
	Weight  int    `json:"weight"`
	Units   int    `json:"units"`
	Pending int    `json:"pending"`
	Running int    `json:"running"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	// Cancelled counts units terminated by DELETE before they ran.
	Cancelled int `json:"cancelled,omitempty"`
	// Resumed reports the job was re-materialized from the durable store
	// after a restart; finished units then complete as store hits.
	Resumed bool `json:"resumed,omitempty"`
	// JobCancelled reports the job was terminated by DELETE.
	JobCancelled bool   `json:"job_cancelled,omitempty"`
	Complete     bool   `json:"complete"`
	RequestID    string `json:"request_id"`
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	rid := reqID(w, r)
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep job", rid)
		return
	}
	pending, running, done, failed, cancelled := job.CountsWithCancelled()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(statusResponse{
		ID:           job.ID,
		Epoch:        job.Epoch,
		Tenant:       job.Spec.Tenant,
		Weight:       job.Spec.Weight,
		Units:        len(job.Units),
		Pending:      pending,
		Running:      running,
		Done:         done,
		Failed:       failed,
		Cancelled:    cancelled,
		Resumed:      job.Resumed,
		JobCancelled: job.Cancelled(),
		Complete:     job.Done(),
		RequestID:    rid,
	})
}

// cancelResponse is the DELETE /v1/sweeps/{id} reply.
type cancelResponse struct {
	ID string `json:"id"`
	// Cancelled reports this request did the cancelling; false means the
	// job had already finished or was already cancelled (the DELETE is
	// idempotent either way).
	Cancelled bool   `json:"cancelled"`
	RequestID string `json:"request_id"`
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	rid := reqID(w, r)
	job, found, cancelled := m.Cancel(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, "unknown sweep job", rid)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(cancelResponse{ID: job.ID, Cancelled: cancelled, RequestID: rid})
}

// resumeSeq decides where an event stream starts: at the event after the
// client's Last-Event-ID when its epoch matches this materialization of
// the job, and at the beginning otherwise. A stale epoch means the job
// was re-run (restart) and completion order may differ, so per-seq resume
// would silently skip results; the full replay trades duplicates for a
// no-gaps guarantee, and events are idempotent to apply (keyed results).
func resumeSeq(job *Job, lastEventID string) int {
	epoch, seqStr, ok := strings.Cut(lastEventID, "-")
	if !ok || epoch != job.Epoch {
		return 0
	}
	seq, err := strconv.Atoi(seqStr)
	if err != nil || seq < 0 {
		return 0
	}
	return seq
}

func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	rid := reqID(w, r)
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep job", rid)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported", rid)
		return
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		// EventSource polyfills and curl-based clients can't always set the
		// header; accept the query form too.
		lastID = r.URL.Query().Get("last_event_id")
	}
	seq := resumeSeq(job, lastID)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	// An immediate comment frame carries the epoch and commits the headers
	// so the client knows the stream is live before the first result.
	fmt.Fprintf(w, ": epoch %s\n\n", job.Epoch)
	flusher.Flush()

	heartbeat := time.NewTicker(heartbeatEvery)
	defer heartbeat.Stop()
	for {
		evs, change, done := job.eventsAfter(seq)
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return // cannot happen for Event; bail rather than corrupt the stream
			}
			fmt.Fprintf(w, "id: %s-%d\nevent: result\ndata: %s\n\n", job.Epoch, ev.Seq, data)
			seq = ev.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			_, _, doneN, failed, cancelled := job.CountsWithCancelled()
			if job.Cancelled() {
				fmt.Fprintf(w, "event: cancelled\ndata: {\"done\":%d,\"failed\":%d,\"cancelled\":%d}\n\n",
					doneN, failed, cancelled)
			} else {
				fmt.Fprintf(w, "event: done\ndata: {\"done\":%d,\"failed\":%d}\n\n", doneN, failed)
			}
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-change:
			if m.isClosed() {
				// Shutdown: end cleanly; the client's Last-Event-ID resumes
				// against the recovered job after restart.
				return
			}
		}
	}
}
