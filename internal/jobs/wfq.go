package jobs

import (
	"context"
	"sync"
)

// This file is the jobs scheduler: start-time weighted fair queueing
// (SFQ) across tenants, feeding a bounded number of concurrently
// dispatched units into the Runner (on a backend, the service's worker
// pool; on a router, forwards to the units' owning shards).
//
// Each tenant is one flow with a FIFO of pending units. A unit arriving
// for tenant T is stamped with a virtual start tag S = max(V, T's last
// finish tag) and a finish tag F = S + 1/weight(T); dispatch always
// picks the queued unit with the smallest F and advances the virtual
// clock V to that unit's S. The classic SFQ properties follow: a
// backlogged tenant's long-run dispatch share is proportional to its
// weight, and a tenant that went idle re-enters at the current virtual
// time — it is neither starved by backlogged tenants nor owed the
// service it declined to use while idle. TestWFQ* pin both properties.

// task is one schedulable unit: an opaque closure plus its fair-queueing
// tags. The scheduler runs closures; it knows nothing about jobs.
type task struct {
	run           func(ctx context.Context)
	start, finish float64 // SFQ virtual tags
}

// tenantQ is one flow: a FIFO of stamped tasks.
type tenantQ struct {
	weight     int
	queue      []task
	lastFinish float64
}

// scheduler dispatches enqueued tasks with SFQ ordering, at most
// maxInflight concurrently. Construct with newScheduler; enqueue and
// close are safe for concurrent use.
type scheduler struct {
	ctx    context.Context // base context of every dispatched task
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenantQ
	vtime    float64
	pending  int
	inflight int
	max      int
	closed   bool

	wg sync.WaitGroup // dispatch loop + running tasks
}

// newScheduler starts a scheduler dispatching at most maxInflight tasks
// concurrently. Tasks receive a context cancelled by close.
func newScheduler(maxInflight int) *scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		ctx:     ctx,
		cancel:  cancel,
		tenants: make(map[string]*tenantQ),
		max:     maxInflight,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.loop()
	return s
}

// enqueue stamps the task with the tenant's next SFQ tags and queues it.
// weight updates the tenant's weight for this and subsequent tasks
// (latest submission wins). Enqueueing on a closed scheduler drops the
// task silently — the manager is shutting down and its jobs are about to
// lose their unit contexts anyway.
func (s *scheduler) enqueue(tenant string, weight int, run func(ctx context.Context)) {
	s.enqueueN(tenant, weight, 1, run)
}

// enqueueN enqueues one task that represents k units of work: its finish
// tag advances the tenant's virtual time by k/weight instead of 1/weight,
// so a tenant submitting batches of k is charged exactly as if it had
// enqueued k singles — batching amortizes dispatch overhead without
// buying extra scheduler share. TestWFQBatchFairness pins this.
func (s *scheduler) enqueueN(tenant string, weight, k int, run func(ctx context.Context)) {
	if weight < 1 {
		weight = 1
	}
	if k < 1 {
		k = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQ{}
		s.tenants[tenant] = tq
	}
	tq.weight = weight
	start := max(s.vtime, tq.lastFinish)
	finish := start + float64(k)/float64(weight)
	tq.lastFinish = finish
	tq.queue = append(tq.queue, task{run: run, start: start, finish: finish})
	s.pending++
	s.cond.Signal()
}

// pendingCount returns the number of queued-but-not-dispatched tasks.
func (s *scheduler) pendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// loop is the dispatch goroutine: pick the minimum-finish-tag head task
// across tenants whenever a concurrency slot is free.
func (s *scheduler) loop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.pending == 0 || s.inflight >= s.max) {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		var best *tenantQ
		var bestName string
		for name, tq := range s.tenants {
			if len(tq.queue) == 0 {
				continue
			}
			// Ties broken by tenant name so dispatch order is
			// deterministic regardless of map iteration order.
			if best == nil || tq.queue[0].finish < best.queue[0].finish ||
				(tq.queue[0].finish == best.queue[0].finish && name < bestName) {
				best, bestName = tq, name
			}
		}
		t := best.queue[0]
		best.queue = best.queue[1:]
		if len(best.queue) == 0 {
			// Drop idle flows: lastFinish must not haunt a tenant that
			// resubmits much later (it re-enters at the virtual clock).
			delete(s.tenants, bestName)
		}
		if t.start > s.vtime {
			s.vtime = t.start
		}
		s.pending--
		s.inflight++
		s.wg.Add(1)
		s.mu.Unlock()

		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				s.inflight--
				s.cond.Signal()
				s.mu.Unlock()
			}()
			t.run(s.ctx)
		}()
	}
}

// close stops dispatching, cancels the context of every running task,
// and waits for them to return. Queued tasks are discarded.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}
