package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/store"
)

// quiet is a logger that keeps manager chatter out of test output.
func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// newTestManager builds a service (optionally store-backed) and a jobs
// manager over it, with cleanup in dependency order.
func newTestManager(t *testing.T, st *store.Store) (*Manager, *service.Service) {
	t.Helper()
	svc := service.New(service.Options{Workers: 2, Store: st, Logger: quiet()})
	t.Cleanup(svc.Close)
	mgr := NewManager(Options{
		Runner:  svc,
		Service: svc.Options(),
		Store:   st,
		Logger:  quiet(),
	})
	t.Cleanup(mgr.Close)
	return mgr, svc
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id, event string
	data      []byte
}

// readSSE consumes events from body until done-event, n result events,
// or EOF — whichever comes first.
func readSSE(t *testing.T, body io.Reader, n int) (events []sseEvent, sawDone bool) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != nil {
				if cur.event == "done" {
					return events, true
				}
				events = append(events, cur)
				if n > 0 && len(events) >= n {
					return events, false
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(line[len("data: "):])
		case strings.HasPrefix(line, ":"):
			// comment frame (epoch banner, heartbeat)
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
	return events, false
}

// openStream GETs the job's event stream with an optional Last-Event-ID.
func openStream(t *testing.T, base, jobID, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/sweeps/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("event stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("event stream content type = %q", ct)
	}
	return resp
}

func submitSweep(t *testing.T, base, body string, wantStatus int) submitResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/sweeps = %d, want %d (body %s)", resp.StatusCode, wantStatus, raw)
	}
	var sr submitResponse
	if wantStatus < 300 {
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("decoding submit response %s: %v", raw, err)
		}
	}
	return sr
}

func TestSweepHTTPLifecycle(t *testing.T) {
	mgr, svc := newTestManager(t, nil)
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mgr.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	const spec = `{"l":12,"w":6,"scenarios":["iii"],"seed_count":4}`
	sub := submitSweep(t, srv.URL, spec, http.StatusAccepted)
	if sub.Units != 4 || sub.Existing {
		t.Fatalf("submit = %+v, want 4 fresh units", sub)
	}

	// The stream replays every result and terminates with a done event.
	resp := openStream(t, srv.URL, sub.ID, "")
	events, sawDone := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	if len(events) != 4 {
		t.Fatalf("streamed %d results, want 4", len(events))
	}
	job, _ := mgr.Job(sub.ID)
	keys := make(map[string]bool)
	for i, ev := range events {
		if ev.event != "result" {
			t.Fatalf("event %d type %q, want result", i, ev.event)
		}
		var e Event
		if err := json.Unmarshal(ev.data, &e); err != nil {
			t.Fatalf("event %d data: %v", i, err)
		}
		// Monotonic ids: seq is the 1-based completion index, and the SSE
		// id is epoch-qualified so reconnects can detect restarts.
		if e.Seq != i+1 {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
		if want := fmt.Sprintf("%s-%d", job.Epoch, e.Seq); ev.id != want {
			t.Fatalf("event %d id = %q, want %q", i, ev.id, want)
		}
		if e.Status != "done" || keys[e.Key] {
			t.Fatalf("event %d: status %q, key %q (dup=%v)", i, e.Status, e.Key, keys[e.Key])
		}
		keys[e.Key] = true
		// The payload is a checksummed store-codec record whose body is
		// byte-identical to what POST /v1/run answers for the same unit.
		entry, err := store.DecodeEntry(e.Record)
		if err != nil {
			t.Fatalf("event %d record: %v", i, err)
		}
		if entry.Key != e.Key || entry.Events != e.Events {
			t.Fatalf("event %d record header (%s, %d) != event (%s, %d)",
				i, entry.Key, entry.Events, e.Key, e.Events)
		}
		var runBody bytes.Buffer
		runReq := job.Units[slotByKey(t, job, e.Key)].Req
		raw, _ := json.Marshal(runReq)
		rr, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(&runBody, rr.Body)
		rr.Body.Close()
		if !bytes.Equal(runBody.Bytes(), entry.Body) {
			t.Fatalf("event %d body differs from direct /v1/run for key %s", i, e.Key)
		}
	}

	// Status endpoint agrees.
	st, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var status statusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if !status.Complete || status.Done != 4 || status.Failed != 0 {
		t.Fatalf("status = %+v, want complete with 4 done", status)
	}

	// Idempotent resubmission: same spec, same job, 200 + existing.
	again := submitSweep(t, srv.URL, spec, http.StatusOK)
	if !again.Existing || again.ID != sub.ID {
		t.Fatalf("resubmission = %+v, want existing job %s", again, sub.ID)
	}

	// Rejections: invalid scheduling envelope, unknown field, unknown job.
	submitSweep(t, srv.URL, `{"weight":1000}`, http.StatusBadRequest)
	submitSweep(t, srv.URL, `{"bogus":1}`, http.StatusBadRequest)
	if r, err := http.Get(srv.URL + "/v1/sweeps/sweep:nope"); err != nil || r.StatusCode != 404 {
		t.Fatalf("unknown job status = %v, %v (want 404)", r.StatusCode, err)
	} else {
		r.Body.Close()
	}
}

// slotByKey finds the unit index owning key.
func slotByKey(t *testing.T, j *Job, key string) int {
	t.Helper()
	for _, u := range j.Units {
		if u.Key == key {
			return u.Index
		}
	}
	t.Fatalf("no unit with key %s", key)
	return -1
}

// seqSet extracts the set of seqs from parsed result events.
func seqSet(t *testing.T, events []sseEvent) map[int]bool {
	t.Helper()
	set := make(map[int]bool, len(events))
	for _, ev := range events {
		var e Event
		if err := json.Unmarshal(ev.data, &e); err != nil {
			t.Fatal(err)
		}
		if set[e.Seq] {
			t.Fatalf("seq %d delivered twice in one stream", e.Seq)
		}
		set[e.Seq] = true
	}
	return set
}

func TestSweepSSEReconnect(t *testing.T) {
	mgr, svc := newTestManager(t, nil)
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mgr.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sub := submitSweep(t, srv.URL, `{"l":12,"w":6,"scenarios":["iii","zero"],"seed_count":3}`, http.StatusAccepted)
	if sub.Units != 6 {
		t.Fatalf("units = %d, want 6", sub.Units)
	}

	// Read the first two results, then drop the connection mid-stream.
	resp := openStream(t, srv.URL, sub.ID, "")
	head, _ := readSSE(t, resp.Body, 2)
	resp.Body.Close()
	if len(head) != 2 {
		t.Fatalf("first connection read %d events, want 2", len(head))
	}

	// Reconnect quoting the last delivered id: the stream resumes exactly
	// after it — every remaining seq once, no duplicates, no gaps.
	resp = openStream(t, srv.URL, sub.ID, head[len(head)-1].id)
	tail, sawDone := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if !sawDone {
		t.Fatal("reconnected stream ended without done")
	}
	got := seqSet(t, tail)
	for _, ev := range head {
		var e Event
		if err := json.Unmarshal(ev.data, &e); err != nil {
			t.Fatal(err)
		}
		if got[e.Seq] {
			t.Fatalf("seq %d delivered on both connections despite Last-Event-ID", e.Seq)
		}
		got[e.Seq] = true
	}
	for seq := 1; seq <= 6; seq++ {
		if !got[seq] {
			t.Fatalf("seq %d never delivered across the two connections", seq)
		}
	}

	// A Last-Event-ID from a different epoch (a pre-restart stream, a
	// typo) cannot be trusted for positional resume: the server replays
	// the whole log, trading duplicates for a no-gaps guarantee.
	resp = openStream(t, srv.URL, sub.ID, "ffffffffffffffff-4")
	replay, sawDone := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if !sawDone || len(replay) != 6 {
		t.Fatalf("stale-epoch reconnect streamed %d events (done=%v), want full replay of 6", len(replay), sawDone)
	}

	// The query-parameter fallback behaves like the header.
	job, _ := mgr.Job(sub.ID)
	r, err := http.Get(srv.URL + "/v1/sweeps/" + sub.ID + "/events?last_event_id=" + job.Epoch + "-4")
	if err != nil {
		t.Fatal(err)
	}
	rest, sawDone := readSSE(t, r.Body, 0)
	r.Body.Close()
	if !sawDone || len(rest) != 2 {
		t.Fatalf("query-param resume streamed %d events (done=%v), want 2", len(rest), sawDone)
	}
}
