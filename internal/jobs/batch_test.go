package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/service"
)

// gateRunner runs its first unit through the real service, then parks
// every later unit on its context until DELETE cancels it. That pins the
// cancellation test's "mid-flight" state deterministically: however the
// scheduler interleaves, exactly one unit finishes and the rest are
// queued or parked when the DELETE lands.
type gateRunner struct {
	inner Runner
	mu    sync.Mutex
	n     int
}

func (g *gateRunner) RunUnit(ctx context.Context, timeout time.Duration, req service.RunRequest) (*coalesce.Value, error) {
	g.mu.Lock()
	first := g.n == 0
	g.n++
	g.mu.Unlock()
	if !first {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return g.inner.RunUnit(ctx, timeout, req)
}

// TestSweepBatchedMatchesUnbatched is the jobs-layer batching
// differential: one spec run twice — per-unit scheduling on one fresh
// service, Batch=4 on another — must produce byte-identical result
// records for every canonical key, with identical unit counts. Batching
// changes the execution economics (one dispatch, one worker, one group
// commit per slice), never the results.
func TestSweepBatchedMatchesUnbatched(t *testing.T) {
	single, _ := newTestManager(t, nil)
	j1, existing, err := single.Submit(SweepSpec{L: 10, W: 6, Scenarios: []string{"i", "iii"}, SeedCount: 4})
	if err != nil || existing {
		t.Fatalf("unbatched submit: existing=%v err=%v", existing, err)
	}
	waitFor(t, j1.Done)

	batched, _ := newTestManager(t, nil)
	j2, existing, err := batched.Submit(SweepSpec{L: 10, W: 6, Scenarios: []string{"i", "iii"}, SeedCount: 4, Batch: 3})
	if err != nil || existing {
		t.Fatalf("batched submit: existing=%v err=%v", existing, err)
	}
	waitFor(t, j2.Done)

	if j1.ID != j2.ID {
		t.Fatalf("batch changed the job identity: %s vs %s", j1.ID, j2.ID)
	}
	want, got := doneBodies(t, j1), doneBodies(t, j2)
	if len(want) != 8 || len(got) != 8 {
		t.Fatalf("unbatched finished %d units, batched %d; want 8 each", len(want), len(got))
	}
	for key, body := range want {
		if !bytes.Equal(got[key], body) {
			t.Fatalf("key %s: batched record differs from unbatched", key)
		}
	}
}

// TestSweepBatchedAggGroupCommit runs a batched aggregate-output sweep
// over a store-backed service and pins the whole campaign pipeline's
// fixed-cost amortization: each batch costs one group commit, so the
// sweep's total fsyncs are bounded by (batches + job bookkeeping), not
// by 2×units.
func TestSweepBatchedAggGroupCommit(t *testing.T) {
	st := openStore(t, t.TempDir())
	mgr, _ := newTestManager(t, st)
	base := st.Fsyncs()
	j, _, err := mgr.Submit(SweepSpec{L: 10, W: 6, SeedCount: 16, Batch: 8, Output: "agg"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, j.Done)
	_, _, done, failed := j.Counts()
	if done != 16 || failed != 0 {
		t.Fatalf("done=%d failed=%d, want 16/0", done, failed)
	}
	// Budget: 2 batches × 2 fsyncs, job-spec persist 2, retire deletion
	// path 0–2. Unbatched, results alone would cost 32 fsyncs.
	if delta := st.Fsyncs() - base; delta > 8 {
		t.Fatalf("batched sweep of 16 units cost %d fsyncs, want <= 8", delta)
	}
	// Every unit's record is individually retrievable by canonical key.
	for _, u := range j.Units {
		if _, ok, err := st.Get(u.Key); err != nil || !ok {
			t.Fatalf("unit %d (%s) not in store: ok=%v err=%v", u.Index, u.Key, ok, err)
		}
	}
}

// TestSweepCancellation drives DELETE /v1/sweeps/{id} end to end over a
// slow sweep: queued units are cancelled in place, the event stream ends
// with a terminal "cancelled" frame, cancellation metrics move, the
// durable job record is deleted (no resurrection on the next boot), and
// a second DELETE is an idempotent no-op.
func TestSweepCancellation(t *testing.T) {
	st := openStore(t, t.TempDir())
	svc := service.New(service.Options{Workers: 1, Store: st, Logger: quiet()})
	t.Cleanup(svc.Close)
	mgr := NewManager(Options{
		Runner:      &gateRunner{inner: svc},
		Service:     svc.Options(),
		Store:       st,
		MaxInFlight: 1,
		Logger:      quiet(),
	})
	t.Cleanup(mgr.Close)
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mgr.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// One unit completes for real; the gate parks the second in flight
	// and leaves the other 62 queued, so the job is deterministically
	// mid-flight when the DELETE lands — it can never win the race and
	// finish first.
	sub := submitSweep(t, srv.URL, `{"l":40,"w":12,"seed_count":64}`, http.StatusAccepted)
	job, ok := mgr.Job(sub.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	if _, found, _ := st.Get(storeKey(job.ID)); !found {
		t.Fatal("job record not persisted")
	}
	// Let at least one unit complete so the job is genuinely mid-flight.
	waitFor(t, func() bool { evs, _, _ := job.eventsAfter(0); return len(evs) >= 1 })

	del := func() cancelResponse {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+sub.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
		}
		var cr cancelResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}
	if cr := del(); !cr.Cancelled {
		t.Fatal("first DELETE reported cancelled=false")
	}
	if cr := del(); cr.Cancelled {
		t.Fatal("second DELETE reported cancelled=true; want idempotent no-op")
	}

	// In-flight units drain (their contexts are cancelled), then the job
	// is terminally done with most units cancelled.
	waitFor(t, job.Done)
	if !job.Cancelled() {
		t.Fatal("job not marked cancelled")
	}
	_, _, done, failed, cancelled := job.CountsWithCancelled()
	if cancelled == 0 {
		t.Fatalf("no units cancelled (done=%d failed=%d)", done, failed)
	}
	if failed != 0 {
		t.Fatalf("%d units marked failed; interrupted units must count as cancelled", failed)
	}
	if done+cancelled != 64 {
		t.Fatalf("done=%d + cancelled=%d != 64", done, cancelled)
	}

	// The event stream of a cancelled job terminates with event:cancelled.
	resp := openStream(t, srv.URL, sub.ID, "")
	events, sawDone := readSSE(t, resp.Body, 0)
	resp.Body.Close()
	if sawDone {
		t.Fatal("cancelled job stream ended with event:done")
	}
	terminal := events[len(events)-1]
	if terminal.event != "cancelled" {
		t.Fatalf("terminal event %q, want cancelled", terminal.event)
	}

	if got := mgr.Metrics.JobsCancelled.Load(); got != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", got)
	}
	if got := mgr.Metrics.UnitsCancelled.Load(); got < uint64(cancelled) {
		t.Fatalf("units_cancelled = %d, want >= %d", got, cancelled)
	}
	// The durable record is gone: a restart must not resurrect the job.
	if _, found, _ := st.Get(storeKey(job.ID)); found {
		t.Fatal("cancelled job record still in store")
	}

	// DELETE of an unknown job 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/sweep:nope", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", resp2.StatusCode)
	}
}

// TestCancelFinishedJobIsNoOp: DELETE after completion reports
// cancelled=false and leaves the finished state untouched.
func TestCancelFinishedJobIsNoOp(t *testing.T) {
	mgr, _ := newTestManager(t, nil)
	j, _, err := mgr.Submit(SweepSpec{L: 8, W: 6, SeedCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, j.Done)
	if _, found, cancelled := mgr.Cancel(j.ID); !found || cancelled {
		t.Fatalf("cancel finished job: found=%v cancelled=%v, want true/false", found, cancelled)
	}
	if j.Cancelled() {
		t.Fatal("finished job flipped to cancelled")
	}
	_, _, done, failed := j.Counts()
	if done != 2 || failed != 0 {
		t.Fatalf("finished counts disturbed: done=%d failed=%d", done, failed)
	}
	if got := mgr.Metrics.JobsCancelled.Load(); got != 0 {
		t.Fatalf("jobs_cancelled = %d, want 0", got)
	}
}
