package jobs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics are the sweep-job counters, exported on the service's /metrics
// endpoint through service.Metrics.AddExtra — one exposition writer, so
// operators get the job families next to the serving families without a
// second scrape target.
type Metrics struct {
	// JobsSubmitted counts accepted sweeps (including resumed ones);
	// JobsResumed the subset re-materialized by Recover after a restart;
	// JobsCompleted sweeps whose every unit reached a terminal state.
	JobsSubmitted Counter
	JobsResumed   Counter
	JobsCompleted Counter
	// JobsCancelled counts jobs terminated by DELETE /v1/sweeps/{id}.
	JobsCancelled Counter
	// UnitsPlanned counts decomposed units across all accepted jobs;
	// UnitsDone/UnitsFailed their terminal outcomes; UnitsCancelled units
	// terminated by job cancellation (queued or in-flight); UnitRetries
	// queue-full rejections absorbed by the unit retry loop.
	UnitsPlanned   Counter
	UnitsDone      Counter
	UnitsFailed    Counter
	UnitsCancelled Counter
	UnitRetries    Counter
	// UnitsInFlight gauges units currently dispatched into the Runner.
	UnitsInFlight Gauge
}

// NewMetrics returns a zeroed Metrics.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one; Add adds n; Load reads the current value.
func (c *Counter) Inc()         { c.v.Add(1) }
func (c *Counter) Add(n uint64) { c.v.Add(n) }
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic up/down gauge.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease); Load reads it.
func (g *Gauge) Add(n int64) { g.v.Add(n) }
func (g *Gauge) Load() int64 { return g.v.Load() }

// WriteText emits the job metric families in Prometheus exposition
// format. Its signature matches service.Metrics.AddExtra.
func (m *Metrics) WriteText(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hexd_sweep_jobs_submitted_total", "Sweep jobs accepted (including resumed).", m.JobsSubmitted.Load())
	counter("hexd_sweep_jobs_resumed_total", "Sweep jobs re-materialized from the durable store on boot.", m.JobsResumed.Load())
	counter("hexd_sweep_jobs_completed_total", "Sweep jobs whose every unit reached a terminal state.", m.JobsCompleted.Load())
	counter("hexd_sweep_jobs_cancelled_total", "Sweep jobs terminated by DELETE /v1/sweeps/{id}.", m.JobsCancelled.Load())
	counter("hexd_sweep_units_planned_total", "Work units decomposed across all accepted sweep jobs.", m.UnitsPlanned.Load())
	counter("hexd_sweep_units_done_total", "Sweep units completed successfully.", m.UnitsDone.Load())
	counter("hexd_sweep_units_failed_total", "Sweep units that reached a terminal failure.", m.UnitsFailed.Load())
	counter("hexd_sweep_units_cancelled_total", "Sweep units terminated by job cancellation (queued or in-flight).", m.UnitsCancelled.Load())
	counter("hexd_sweep_unit_retries_total", "Queue-full rejections absorbed by the sweep unit retry loop.", m.UnitRetries.Load())
	fmt.Fprintf(w, "# HELP hexd_sweep_units_inflight Sweep units currently dispatched into the runner.\n"+
		"# TYPE hexd_sweep_units_inflight gauge\nhexd_sweep_units_inflight %d\n", m.UnitsInFlight.Load())
}
