package jobs

import (
	"strings"
	"testing"

	"repro/internal/service"
)

// testOpts are the admission limits used throughout the jobs tests —
// resolved once, like a real daemon resolves its flags once.
func testOpts() service.Options {
	return service.Options{}.Resolved()
}

func TestSweepNormalizeDefaults(t *testing.T) {
	var sp SweepSpec
	if err := sp.Normalize(1000); err != nil {
		t.Fatal(err)
	}
	if len(sp.Scenarios) != 1 || sp.Scenarios[0] != "zero" {
		t.Fatalf("default scenarios = %v, want [zero]", sp.Scenarios)
	}
	if len(sp.Faults) != 1 || sp.Faults[0] != 0 {
		t.Fatalf("default faults = %v, want [0]", sp.Faults)
	}
	if sp.SeedStart != 1 || sp.SeedCount != 1 {
		t.Fatalf("default seeds = start %d count %d, want 1/1", sp.SeedStart, sp.SeedCount)
	}
	if sp.Tenant != "default" || sp.Weight != 1 {
		t.Fatalf("default tenant/weight = %q/%d, want default/1", sp.Tenant, sp.Weight)
	}
	units, err := sp.Decompose(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("default spec decomposed to %d units, want 1", len(units))
	}
	// The default sweep's one unit is exactly the default single run.
	def := service.RunRequest{}
	if err := def.Normalize(testOpts()); err != nil {
		t.Fatal(err)
	}
	if units[0].Key != def.CanonicalKey() {
		t.Fatalf("default unit key %q != default run key %q", units[0].Key, def.CanonicalKey())
	}
}

func TestSweepNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec SweepSpec
		want string
	}{
		{"weight too big", SweepSpec{Weight: MaxWeight + 1}, "weight"},
		{"negative weight", SweepSpec{Weight: -1}, "weight"},
		{"unprintable tenant", SweepSpec{Tenant: "a\nb"}, "tenant"},
		{"tenant too long", SweepSpec{Tenant: strings.Repeat("x", maxTenantLen+1)}, "tenant"},
		{"negative seed count", SweepSpec{SeedCount: -1}, "seed_count"},
		{"too many units", SweepSpec{SeedCount: 11}, "exceeds"},
		{"axis overflow", SweepSpec{Scenarios: []string{"a", "b", "c", "d"}, Faults: []int{0, 1, 2}, SeedCount: 1}, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Normalize(10)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Normalize = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestDecomposeOrderAndKeyEquivalence(t *testing.T) {
	sp := SweepSpec{
		L: 14, W: 8,
		Scenarios: []string{"iii", "zero"},
		Faults:    []int{0, 2},
		Seeds:     []uint64{42},
		SeedStart: 7, SeedCount: 2,
	}
	if err := sp.Normalize(1000); err != nil {
		t.Fatal(err)
	}
	units, err := sp.Decompose(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Stable nesting: scenarios outermost, then faults, then seeds
	// (explicit list before the range).
	wantSeeds := []uint64{42, 7, 8}
	if len(units) != 2*2*3 {
		t.Fatalf("decomposed to %d units, want 12", len(units))
	}
	i := 0
	for _, sc := range []string{"iii", "zero"} {
		for _, f := range []int{0, 2} {
			for _, seed := range wantSeeds {
				u := units[i]
				if u.Index != i {
					t.Fatalf("unit %d has Index %d", i, u.Index)
				}
				// The proof the whole design rests on: the unit's key is
				// byte-identical to the key of an independently built,
				// independently normalized single /v1/run request.
				single := service.RunRequest{L: 14, W: 8, Scenario: sc, Faults: f, Seed: seed}
				if err := single.Normalize(testOpts()); err != nil {
					t.Fatal(err)
				}
				if u.Key != single.CanonicalKey() {
					t.Fatalf("unit %d key %q != single-run key %q", i, u.Key, single.CanonicalKey())
				}
				i++
			}
		}
	}
}

func TestDecomposeRejectsDuplicateWork(t *testing.T) {
	sp := SweepSpec{Seeds: []uint64{5, 5}}
	if err := sp.Normalize(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Decompose(testOpts()); err == nil || !strings.Contains(err.Error(), "identical work") {
		t.Fatalf("duplicate seeds decomposed without error (got %v)", err)
	}
	// Seed 0 normalizes to seed 1 exactly like /v1/run does, so 0 and 1
	// are the same work too — the collision must be caught post-normalize.
	sp = SweepSpec{Seeds: []uint64{0, 1}}
	if err := sp.Normalize(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Decompose(testOpts()); err == nil {
		t.Fatal("seeds 0 and 1 (aliases post-normalize) decomposed without error")
	}
}

func TestJobIDDeterminismAndSensitivity(t *testing.T) {
	sp := SweepSpec{Scenarios: []string{"iii"}, SeedCount: 3, Tenant: "team-a", Weight: 2}
	if err := sp.Normalize(1000); err != nil {
		t.Fatal(err)
	}
	units, err := sp.Decompose(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	id1 := JobID(sp, units)

	sp2 := sp // identical spec, fresh decomposition
	units2, err := sp2.Decompose(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if id2 := JobID(sp2, units2); id2 != id1 {
		t.Fatalf("identical spec re-derived different job ID: %s vs %s", id2, id1)
	}

	sp3 := sp
	sp3.Weight = 3 // same work, different scheduling envelope
	if id3 := JobID(sp3, units); id3 == id1 {
		t.Fatal("different weight produced the same job ID")
	}

	key := storeKey(id1)
	back, ok := jobIDFromStoreKey(key)
	if !ok || back != id1 {
		t.Fatalf("jobIDFromStoreKey(%q) = %q, %v", key, back, ok)
	}
	if _, ok := jobIDFromStoreKey("run:abc"); ok {
		t.Fatal("foreign store key accepted as a job key")
	}
}

// FuzzSweepDecompose is the acceptance-gating property harness for the
// decomposition: for arbitrary specs, every unit's canonical key must be
// byte-for-byte the key of the equivalent independently-normalized
// single-run request, keys must be collision-free, and the decomposition
// (plus the job ID derived from it) must be stable across repeated runs.
func FuzzSweepDecompose(f *testing.F) {
	f.Add(0, 0, uint8(0), 0, 0, uint64(0), 0, uint64(0), false, int64(0))
	f.Add(14, 8, uint8(1), 0, 2, uint64(7), 2, uint64(42), true, int64(500))
	f.Add(20, 10, uint8(3), 1, 3, uint64(1<<60), 4, uint64(9), false, int64(-5))
	scenarioPool := []string{"zero", "iii", "ramp", "udminus"}
	opts := testOpts()
	f.Fuzz(func(t *testing.T, l, w int, scPick uint8, f1, f2 int, seedStart uint64, seedCount int, extraSeed uint64, hexPlus bool, timeoutMs int64) {
		sp := SweepSpec{
			L: l, W: w,
			Scenarios: scenarioPool[:1+int(scPick)%len(scenarioPool)],
			Faults:    []int{f1, f2},
			SeedStart: seedStart, SeedCount: seedCount % 8,
			Seeds:     []uint64{extraSeed},
			HexPlus:   hexPlus,
			TimeoutMs: timeoutMs,
		}
		if err := sp.Normalize(256); err != nil {
			t.Skip() // invalid scheduling envelope: rejection is the contract
		}
		units, err := sp.Decompose(opts)
		if err != nil {
			return // infeasible unit or duplicate work: rejection, not corruption
		}
		seen := make(map[string]int, len(units))
		for i, u := range units {
			if u.Index != i {
				t.Fatalf("unit %d carries Index %d", i, u.Index)
			}
			if prev, dup := seen[u.Key]; dup {
				t.Fatalf("units %d and %d share key %s", prev, i, u.Key)
			}
			seen[u.Key] = i
			// Rebuild the equivalent single-run request from the unit's own
			// pre-normalization coordinates and demand the identical key.
			single := service.RunRequest{
				L: l, W: w,
				Scenario:  u.Req.Scenario,
				Faults:    u.Req.Faults,
				FaultType: sp.FaultType,
				Seed:      u.Req.Seed,
				HexPlus:   hexPlus,
				TimeoutMs: timeoutMs,
			}
			if err := single.Normalize(opts); err != nil {
				t.Fatalf("unit %d admissible in sweep but not alone: %v", i, err)
			}
			if got, want := u.Key, single.CanonicalKey(); got != want {
				t.Fatalf("unit %d key %q != single-run key %q", i, got, want)
			}
		}
		// Stability: a second decomposition yields the same units in the
		// same order, and the same job ID.
		sp2 := sp
		units2, err := sp2.Decompose(opts)
		if err != nil {
			t.Fatalf("second decomposition failed: %v", err)
		}
		if len(units2) != len(units) {
			t.Fatalf("decomposition size changed: %d vs %d", len(units2), len(units))
		}
		for i := range units {
			if units[i].Key != units2[i].Key {
				t.Fatalf("unit %d key unstable: %q vs %q", i, units[i].Key, units2[i].Key)
			}
		}
		if JobID(sp, units) != JobID(sp2, units2) {
			t.Fatal("job ID unstable across identical decompositions")
		}
	})
}
