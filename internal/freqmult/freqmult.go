// Package freqmult implements the frequency multiplication extension of
// Section 5 (Fig. 20): each HEX node synchronizes a local start/stoppable
// high-frequency oscillator to the (comparatively infrequent) HEX pulses,
// emitting a fixed number of fast clock ticks per pulse inside a window
// shorter than the minimal pulse separation Λmin, so the oscillator restarts
// metastability-free with the next pulse.
package freqmult

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/theory"
)

// Params describe one node's fast clock.
type Params struct {
	// NominalPeriod is the oscillator's nominal tick period.
	NominalPeriod sim.Time
	// Multiplier M is the number of fast ticks emitted per HEX pulse.
	Multiplier int
	// Drift ϑ bounds the oscillator's rate error: the actual period lies
	// in [NominalPeriod, ϑ·NominalPeriod].
	Drift theory.Drift
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.NominalPeriod <= 0 {
		return fmt.Errorf("freqmult: nominal period must be positive, got %v", p.NominalPeriod)
	}
	if p.Multiplier < 1 {
		return fmt.Errorf("freqmult: multiplier must be at least 1, got %d", p.Multiplier)
	}
	if p.Drift.Num < p.Drift.Den || p.Drift.Den <= 0 {
		return fmt.Errorf("freqmult: drift must be a rational ≥ 1")
	}
	return nil
}

// WindowRequired returns the worst-case time span of the M ticks,
// M·ϑ·NominalPeriod, which must not exceed the minimal pulse separation
// Λmin at the node (Fig. 20).
func (p Params) WindowRequired() sim.Time {
	return p.Drift.Stretch(sim.Time(p.Multiplier) * p.NominalPeriod)
}

// FitsWindow reports whether the tick train fits into a pulse separation of
// lambdaMin.
func (p Params) FitsWindow(lambdaMin sim.Time) bool {
	return p.WindowRequired() <= lambdaMin
}

// MaxMultiplier returns the largest M such that M·ϑ·period ≤ lambdaMin.
func MaxMultiplier(lambdaMin, period sim.Time, drift theory.Drift) int {
	if period <= 0 {
		panic("freqmult: non-positive period")
	}
	worst := drift.Stretch(period)
	if worst <= 0 {
		return 0
	}
	return int(lambdaMin / worst)
}

// SkewBound returns the worst-case fast-clock skew between neighbors: the
// HEX pulse skew plus the drift-accumulation term ρ·window ≈ (ϑ−1)·M·period
// (Section 5: "the achievable worst-case skew of the fast clock ... equal
// to the HEX clock skew plus an additive term of roughly ρΛmin").
func SkewBound(hexSkew sim.Time, p Params) sim.Time {
	window := sim.Time(p.Multiplier) * p.NominalPeriod
	return hexSkew + (p.Drift.Stretch(window) - window)
}

// EffectiveFrequencyGHz returns the amortized fast clock frequency in GHz
// for pulses separated by `separation`: M ticks per separation.
func EffectiveFrequencyGHz(p Params, separation sim.Time) float64 {
	if separation <= 0 {
		return 0
	}
	return float64(p.Multiplier) / separation.Nanoseconds()
}

// Ticks generates the fast tick times of one node for one pulse arriving at
// pulseTime. The oscillator restarts at the pulse and runs with a random
// rate in [1, ϑ], fixed for the train (a slowly drifting oscillator).
func Ticks(pulseTime sim.Time, p Params, rng *sim.RNG) []sim.Time {
	// Draw the actual period uniformly in [nominal, ϑ·nominal].
	actual := rng.TimeIn(p.NominalPeriod, p.Drift.Stretch(p.NominalPeriod))
	out := make([]sim.Time, p.Multiplier)
	for j := 0; j < p.Multiplier; j++ {
		out[j] = pulseTime + sim.Time(j+1)*actual
	}
	return out
}

// MeasureSkew returns the maximum |a[j] − b[j]| over two equally long tick
// trains — the fast-clock skew between two neighbors for one pulse.
func MeasureSkew(a, b []sim.Time) sim.Time {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var max sim.Time
	for j := 0; j < n; j++ {
		if s := sim.AbsTime(a[j] - b[j]); s > max {
			max = s
		}
	}
	return max
}
