package freqmult

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/theory"
)

func TestValidate(t *testing.T) {
	good := Params{NominalPeriod: sim.Nanosecond, Multiplier: 8, Drift: theory.PaperDrift}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.NominalPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero period accepted")
	}
	bad = good
	bad.Multiplier = 0
	if bad.Validate() == nil {
		t.Error("zero multiplier accepted")
	}
	bad = good
	bad.Drift = theory.Drift{Num: 99, Den: 100} // < 1
	if bad.Validate() == nil {
		t.Error("drift < 1 accepted")
	}
}

func TestWindowRequired(t *testing.T) {
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: 10, Drift: theory.PaperDrift}
	// 10ns · 1.05 = 10.5ns.
	if got := p.WindowRequired(); got != 10500*sim.Picosecond {
		t.Errorf("window = %v", got)
	}
	if !p.FitsWindow(10500 * sim.Picosecond) {
		t.Error("exact fit rejected")
	}
	if p.FitsWindow(10499 * sim.Picosecond) {
		t.Error("overfull window accepted")
	}
}

func TestMaxMultiplier(t *testing.T) {
	// Λmin = 100ns, period 1ns, ϑ = 1.05 → worst tick 1.05ns → M = 95.
	m := MaxMultiplier(100*sim.Nanosecond, sim.Nanosecond, theory.PaperDrift)
	if m != 95 {
		t.Errorf("MaxMultiplier = %d, want 95", m)
	}
	// The resulting params must fit.
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: m, Drift: theory.PaperDrift}
	if !p.FitsWindow(100 * sim.Nanosecond) {
		t.Error("MaxMultiplier result does not fit its window")
	}
	p.Multiplier = m + 1
	if p.FitsWindow(100 * sim.Nanosecond) {
		t.Error("M+1 should not fit")
	}
}

func TestSkewBound(t *testing.T) {
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: 100, Drift: theory.PaperDrift}
	// Drift term: 100ns·0.05 = 5ns on top of the HEX skew.
	if got := SkewBound(8197, p); got != 8197+5000 {
		t.Errorf("SkewBound = %v", got)
	}
}

func TestEffectiveFrequency(t *testing.T) {
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: 250, Drift: theory.PaperDrift}
	f := EffectiveFrequencyGHz(p, 250*sim.Nanosecond)
	if f != 1.0 {
		t.Errorf("freq = %v GHz, want 1.0", f)
	}
	if EffectiveFrequencyGHz(p, 0) != 0 {
		t.Error("zero separation should yield 0")
	}
}

func TestTicks(t *testing.T) {
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: 16, Drift: theory.PaperDrift}
	rng := sim.NewRNG(3)
	base := sim.Time(1000000)
	ticks := Ticks(base, p, rng)
	if len(ticks) != 16 {
		t.Fatalf("got %d ticks", len(ticks))
	}
	// Strictly increasing, equally spaced, period within [nominal, ϑ·nominal].
	period := ticks[0] - base
	if period < p.NominalPeriod || period > theory.PaperDrift.Stretch(p.NominalPeriod) {
		t.Errorf("period %v out of drift range", period)
	}
	for j := 1; j < len(ticks); j++ {
		if ticks[j]-ticks[j-1] != period {
			t.Fatalf("unequal tick spacing at %d", j)
		}
	}
	// Entire train inside the worst-case window.
	if ticks[len(ticks)-1]-base > p.WindowRequired() {
		t.Error("tick train exceeds WindowRequired")
	}
}

func TestMeasureSkew(t *testing.T) {
	a := []sim.Time{10, 20, 30}
	b := []sim.Time{12, 19, 35}
	if got := MeasureSkew(a, b); got != 5 {
		t.Errorf("MeasureSkew = %v", got)
	}
	if MeasureSkew(nil, b) != 0 {
		t.Error("empty train should measure 0")
	}
	// Unequal lengths use the common prefix.
	if got := MeasureSkew(a[:2], b); got != 2 {
		t.Errorf("prefix skew = %v", got)
	}
}

func TestMeasuredSkewWithinBound(t *testing.T) {
	// Two neighbors whose pulses differ by the HEX skew: the measured fast
	// skew never exceeds SkewBound.
	p := Params{NominalPeriod: sim.Nanosecond, Multiplier: 50, Drift: theory.PaperDrift}
	rng := sim.NewRNG(9)
	hexSkew := sim.Time(3000)
	bound := SkewBound(hexSkew, p)
	for i := 0; i < 200; i++ {
		a := Ticks(0, p, rng)
		b := Ticks(hexSkew, p, rng)
		if got := MeasureSkew(a, b); got > bound {
			t.Fatalf("measured %v exceeds bound %v", got, bound)
		}
	}
}
