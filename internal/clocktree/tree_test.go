package clocktree

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := New(16); err == nil {
		t.Error("depth 16 accepted")
	}
	tr, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Side != 8 || tr.NumLeaves() != 64 {
		t.Errorf("side=%d leaves=%d", tr.Side, tr.NumLeaves())
	}
}

func TestLeafCoordRoundTrip(t *testing.T) {
	tr := MustNew(4)
	for id := 0; id < tr.NumLeaves(); id++ {
		r, c := tr.LeafCoord(id)
		if tr.LeafID(r, c) != id {
			t.Fatalf("round trip broken at %d", id)
		}
	}
}

func TestLCALevel(t *testing.T) {
	tr := MustNew(3) // 8×8 leaves
	// Adjacent leaves within the same 2×2 block meet at level 2.
	if l := tr.LCALevel(tr.LeafID(0, 0), tr.LeafID(0, 1)); l != 2 {
		t.Errorf("same-block LCA level = %d, want 2", l)
	}
	// Leaves across the central bisector meet only at the root.
	if l := tr.LCALevel(tr.LeafID(0, 3), tr.LeafID(0, 4)); l != 0 {
		t.Errorf("bisector LCA level = %d, want 0", l)
	}
	// Same leaf: LCA is its immediate parent level.
	if l := tr.LCALevel(tr.LeafID(2, 2), tr.LeafID(2, 2)); l != 2 {
		t.Errorf("self LCA = %d", l)
	}
}

func TestPathWireLengthScalesWithBisector(t *testing.T) {
	tr := MustNew(5) // 32×32
	near := tr.PathWireLength(tr.LeafID(0, 0), tr.LeafID(0, 1))
	far := tr.PathWireLength(tr.LeafID(0, 15), tr.LeafID(0, 16))
	if far <= near {
		t.Errorf("bisector path %v not longer than local path %v", far, near)
	}
	if tr.WorstNeighborWireLength() != far {
		t.Errorf("WorstNeighborWireLength = %v, want %v", tr.WorstNeighborWireLength(), far)
	}
	// Θ(√n): doubling the depth quadruples leaves and doubles the length.
	small := MustNew(3).WorstNeighborWireLength()
	large := MustNew(4).WorstNeighborWireLength()
	if math.Abs(large/small-2) > 0.2 {
		t.Errorf("worst wire ratio %v, want ≈2", large/small)
	}
}

func TestSimulateZeroJitterZeroSkew(t *testing.T) {
	tr := MustNew(4)
	d := Delays{UnitWire: 100 * sim.Picosecond, WireJitter: 0, BufMin: 50, BufMax: 50}
	run := tr.Simulate(d, nil, sim.NewRNG(1))
	first := run.Arrival[0]
	for id, a := range run.Arrival {
		if a != first {
			t.Fatalf("leaf %d arrival %v differs from %v despite zero jitter", id, a, first)
		}
	}
	for _, v := range run.NeighborSkews() {
		if v != 0 {
			t.Fatal("nonzero skew with zero jitter")
		}
	}
	if run.DeadLeaves() != 0 {
		t.Error("dead leaves without faults")
	}
}

func TestSimulateJitterGrowsWithLCA(t *testing.T) {
	// Pairs meeting at the root accumulate more independent jitter than
	// pairs sharing all but the last segment; check average skews.
	tr := MustNew(5)
	d := Delays{UnitWire: 500 * sim.Picosecond, WireJitter: 0.06, BufMin: 161, BufMax: 197}
	rng := sim.NewRNG(7)
	var rootPairs, localPairs []float64
	for i := 0; i < 50; i++ {
		run := tr.Simulate(d, nil, rng)
		mid := tr.Side / 2
		rootPairs = append(rootPairs,
			sim.AbsTime(run.Arrival[tr.LeafID(0, mid-1)]-run.Arrival[tr.LeafID(0, mid)]).Nanoseconds())
		localPairs = append(localPairs,
			sim.AbsTime(run.Arrival[tr.LeafID(0, 0)]-run.Arrival[tr.LeafID(0, 1)]).Nanoseconds())
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(rootPairs) <= avg(localPairs) {
		t.Errorf("root-pair skew %v not larger than local-pair skew %v", avg(rootPairs), avg(localPairs))
	}
}

func TestDeadBufferKillsExactSubtree(t *testing.T) {
	tr := MustNew(4)
	d := Delays{UnitWire: 100, WireJitter: 0, BufMin: 0, BufMax: 0}
	// Kill a level-2 node: 4^(4−2) = 16 leaves die.
	dead := NodeRef{Level: 2, Row: 1, Col: 2}
	run := tr.Simulate(d, []NodeRef{dead}, sim.NewRNG(1))
	if got := run.DeadLeaves(); got != tr.SubtreeLeaves(2) {
		t.Errorf("dead leaves = %d, want %d", got, tr.SubtreeLeaves(2))
	}
	// Exactly the leaves under (2, 1, 2): rows 4..7, cols 8..11.
	for r := 0; r < tr.Side; r++ {
		for c := 0; c < tr.Side; c++ {
			want := r >= 4 && r < 8 && c >= 8 && c < 12
			if run.Dead[tr.LeafID(r, c)] != want {
				t.Fatalf("leaf (%d,%d) dead=%v want %v", r, c, run.Dead[tr.LeafID(r, c)], want)
			}
		}
	}
}

func TestDeadRootKillsEverything(t *testing.T) {
	tr := MustNew(3)
	run := tr.Simulate(Delays{UnitWire: 100}, []NodeRef{{0, 0, 0}}, sim.NewRNG(1))
	if run.DeadLeaves() != tr.NumLeaves() {
		t.Errorf("dead root left %d live leaves", tr.NumLeaves()-run.DeadLeaves())
	}
	if len(run.NeighborSkews()) != 0 {
		t.Error("skews measured on dead leaves")
	}
}

func TestSubtreeLeaves(t *testing.T) {
	tr := MustNew(5)
	if tr.SubtreeLeaves(0) != 1024 || tr.SubtreeLeaves(5) != 1 || tr.SubtreeLeaves(3) != 16 {
		t.Error("SubtreeLeaves wrong")
	}
}

func TestRandomBufferInRange(t *testing.T) {
	tr := MustNew(4)
	rng := sim.NewRNG(9)
	levels := map[int]int{}
	for i := 0; i < 1000; i++ {
		n := tr.RandomBuffer(rng)
		if n.Level < 0 || n.Level >= tr.Depth {
			t.Fatalf("buffer level %d out of range", n.Level)
		}
		side := 1 << uint(n.Level)
		if n.Row < 0 || n.Row >= side || n.Col < 0 || n.Col >= side {
			t.Fatalf("buffer coords out of range: %+v", n)
		}
		levels[n.Level]++
	}
	// Deeper levels have more nodes and must be sampled more often.
	if levels[3] <= levels[0] {
		t.Errorf("sampling not weighted by node count: %v", levels)
	}
}

func TestNeighborSkewCount(t *testing.T) {
	tr := MustNew(3)
	run := tr.Simulate(Delays{UnitWire: 100, WireJitter: 0.01, BufMin: 1, BufMax: 2}, nil, sim.NewRNG(2))
	// 8×8 grid: 2·8·7 = 112 adjacent pairs.
	if got := len(run.NeighborSkews()); got != 112 {
		t.Errorf("neighbor pairs = %d, want 112", got)
	}
}
