// Package clocktree implements the baseline HEX is compared against in the
// paper's title and introduction: a buffered H-tree clock distribution
// network. The paper argues (Section 1) that trees force Θ(√n) wire between
// some physically adjacent functional units and that a single broken buffer
// silences an entire subtree; this package makes those claims measurable
// next to HEX simulations.
//
// The tree is the idealized balanced H-tree: a 4-ary tree of depth k whose
// 4^k leaves tile a 2^k × 2^k die. All root-to-leaf paths have equal
// nominal delay; skew comes only from per-segment delay jitter and buffer
// delay spread, so the comparison is charitable to the tree.
package clocktree

import (
	"fmt"

	"repro/internal/sim"
)

// Tree is a balanced H-tree over a 2^Depth × 2^Depth leaf grid.
type Tree struct {
	// Depth k: internal levels 0 (root) … k−1; leaves at level k.
	Depth int
	// Side is 2^Depth, the leaf grid side length.
	Side int
}

// New returns an H-tree of the given depth (≥ 1).
func New(depth int) (*Tree, error) {
	if depth < 1 || depth > 15 {
		return nil, fmt.Errorf("clocktree: depth must be in [1, 15], got %d", depth)
	}
	return &Tree{Depth: depth, Side: 1 << depth}, nil
}

// MustNew is New that panics on invalid depth.
func MustNew(depth int) *Tree {
	t, err := New(depth)
	if err != nil {
		panic(err)
	}
	return t
}

// NumLeaves returns 4^Depth.
func (t *Tree) NumLeaves() int { return t.Side * t.Side }

// LeafID returns the id of the leaf at (row, col) of the leaf grid.
func (t *Tree) LeafID(row, col int) int { return row*t.Side + col }

// LeafCoord returns the (row, col) of leaf id.
func (t *Tree) LeafCoord(id int) (row, col int) { return id / t.Side, id % t.Side }

// NodeRef identifies an internal tree node: the node at `Level` covering the
// 2^(Depth−Level) × 2^(Depth−Level) block whose block coordinates are
// (Row, Col) in the 2^Level × 2^Level block grid. Level 0, (0,0) is the root.
type NodeRef struct {
	Level, Row, Col int
}

// parent returns the parent of an internal node (undefined for the root).
func (n NodeRef) parent() NodeRef {
	return NodeRef{Level: n.Level - 1, Row: n.Row / 2, Col: n.Col / 2}
}

// LeafAncestor returns the ancestor of leaf (row, col) at the given level.
func (t *Tree) LeafAncestor(row, col, level int) NodeRef {
	shift := uint(t.Depth - level)
	return NodeRef{Level: level, Row: row >> shift, Col: col >> shift}
}

// LCALevel returns the level of the lowest common ancestor of two leaves;
// 0 means they meet only at the root.
func (t *Tree) LCALevel(a, b int) int {
	ar, ac := t.LeafCoord(a)
	br, bc := t.LeafCoord(b)
	for level := t.Depth - 1; level >= 0; level-- {
		if t.LeafAncestor(ar, ac, level) == t.LeafAncestor(br, bc, level) {
			return level
		}
	}
	return 0
}

// SegmentLength returns the nominal wire length (in leaf-pitch units) of
// the segment feeding a node at the given level from its parent: half the
// parent block's side, so deeper segments are shorter, as in a real H-tree.
func (t *Tree) SegmentLength(level int) float64 {
	// A node at level m sits in a block of side 2^(Depth−m+1) at its
	// parent; the connecting wire spans half of it.
	return float64(int(1) << uint(t.Depth-level))
}

// PathWireLength returns the total wire length between two leaves through
// the tree: the sum of segment lengths from each leaf up to their LCA. For
// physically adjacent leaves across the top-level bisector this is Θ(√n).
func (t *Tree) PathWireLength(a, b int) float64 {
	lca := t.LCALevel(a, b)
	var sum float64
	for level := lca + 1; level <= t.Depth; level++ {
		sum += 2 * t.SegmentLength(level)
	}
	return sum
}

// WorstNeighborWireLength returns the largest PathWireLength over all
// grid-adjacent leaf pairs; for an H-tree this is the pair straddling the
// die's central bisector, with length Θ(√n).
func (t *Tree) WorstNeighborWireLength() float64 {
	mid := t.Side / 2
	return t.PathWireLength(t.LeafID(0, mid-1), t.LeafID(0, mid))
}

// Delays parameterizes the tree's timing.
type Delays struct {
	// UnitWire is the delay per leaf-pitch unit of wire.
	UnitWire sim.Time
	// WireJitter is the relative jitter of each segment's wire delay:
	// actual = nominal · (1 + U[−WireJitter, +WireJitter]).
	WireJitter float64
	// BufMin/BufMax bound the delay of the regeneration buffer at each
	// internal node.
	BufMin, BufMax sim.Time
}

// Run is the outcome of one tree simulation.
type Run struct {
	Tree *Tree
	// Arrival[leaf] is the clock arrival time; meaningless if Dead[leaf].
	Arrival []sim.Time
	// Dead[leaf] marks leaves cut off by a failed buffer.
	Dead []bool
}

// Simulate computes leaf arrival times under d, with every internal node in
// deadBuffers failed (its whole subtree receives no clock). rng drives the
// jitter draws; the traversal order is deterministic.
func (t *Tree) Simulate(d Delays, deadBuffers []NodeRef, rng *sim.RNG) *Run {
	run := &Run{
		Tree:    t,
		Arrival: make([]sim.Time, t.NumLeaves()),
		Dead:    make([]bool, t.NumLeaves()),
	}
	dead := make(map[NodeRef]bool, len(deadBuffers))
	for _, n := range deadBuffers {
		dead[n] = true
	}
	// arrival[level] holds the partial arrival times of the current level's
	// block grid, row-major.
	cur := []sim.Time{0}
	curDead := []bool{dead[NodeRef{0, 0, 0}]}
	for level := 1; level <= t.Depth; level++ {
		side := 1 << uint(level)
		next := make([]sim.Time, side*side)
		nextDead := make([]bool, side*side)
		nominal := sim.Time(float64(d.UnitWire) * t.SegmentLength(level))
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				idx := r*side + c
				pidx := (r/2)*(side/2) + c/2
				if curDead[pidx] {
					nextDead[idx] = true
					continue
				}
				jit := 1 + (2*rng.Float64()-1)*d.WireJitter
				wire := sim.Time(float64(nominal) * jit)
				buf := rng.TimeIn(d.BufMin, d.BufMax)
				next[idx] = cur[pidx] + wire + buf
				if level < t.Depth && dead[NodeRef{level, r, c}] {
					nextDead[idx] = true
				}
			}
		}
		cur, curDead = next, nextDead
	}
	copy(run.Arrival, cur)
	copy(run.Dead, curDead)
	return run
}

// NeighborSkews returns |arrival(a) − arrival(b)| in nanoseconds for every
// grid-adjacent live leaf pair, the tree-side analogue of HEX's neighbor
// skews.
func (r *Run) NeighborSkews() []float64 {
	t := r.Tree
	var out []float64
	add := func(a, b int) {
		if r.Dead[a] || r.Dead[b] {
			return
		}
		out = append(out, sim.AbsTime(r.Arrival[a]-r.Arrival[b]).Nanoseconds())
	}
	for row := 0; row < t.Side; row++ {
		for col := 0; col < t.Side; col++ {
			id := t.LeafID(row, col)
			if col+1 < t.Side {
				add(id, t.LeafID(row, col+1))
			}
			if row+1 < t.Side {
				add(id, t.LeafID(row+1, col))
			}
		}
	}
	return out
}

// DeadLeaves counts leaves without a clock.
func (r *Run) DeadLeaves() int {
	n := 0
	for _, d := range r.Dead {
		if d {
			n++
		}
	}
	return n
}

// SubtreeLeaves returns the number of leaves below an internal node at the
// given level: 4^(Depth−level).
func (t *Tree) SubtreeLeaves(level int) int {
	return 1 << uint(2*(t.Depth-level))
}

// RandomBuffer returns a uniformly random internal node reference.
func (t *Tree) RandomBuffer(rng *sim.RNG) NodeRef {
	// Levels 0..Depth−1 are internal; weight by node count per level.
	total := 0
	for level := 0; level < t.Depth; level++ {
		total += 1 << uint(2*level)
	}
	pick := rng.Intn(total)
	for level := 0; level < t.Depth; level++ {
		count := 1 << uint(2*level)
		if pick < count {
			side := 1 << uint(level)
			return NodeRef{Level: level, Row: pick / side, Col: pick % side}
		}
		pick -= count
	}
	panic("clocktree: unreachable")
}
