package pulsegen

import (
	"testing"
	"testing/quick"

	"repro/internal/delay"
	"repro/internal/sim"
	"repro/internal/theory"
)

// ppmDrift is a realistic oscillator drift bound (1000 ppm).
var ppmDrift = theory.Drift{Num: 1001, Den: 1000}

func baseConfig() Config {
	return Config{
		N:      20,
		Period: 300 * sim.Nanosecond,
		Pulses: 10,
		Bounds: delay.Paper,
		Drift:  ppmDrift,
		Seed:   1,
	}
}

func TestValidation(t *testing.T) {
	bad := baseConfig()
	bad.N = 2
	if _, err := Run(bad); err == nil {
		t.Error("N=2 accepted")
	}
	bad = baseConfig()
	bad.Faulty = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := Run(bad); err == nil {
		t.Error("f ≥ n/2 accepted")
	}
	bad = baseConfig()
	bad.Period = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero period accepted")
	}
	bad = baseConfig()
	bad.Faulty = []int{25}
	if _, err := Run(bad); err == nil {
		t.Error("out-of-range faulty index accepted")
	}
	bad = baseConfig()
	bad.AssumedFaults = 1
	bad.Faulty = []int{0, 1}
	if _, err := Run(bad); err == nil {
		t.Error("actual faults above assumed bound accepted")
	}
}

func TestFaultFreeSkewBounded(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 10 {
		t.Fatalf("pulses = %d", len(res.Times))
	}
	// All correct sources fire every pulse within roughly one message
	// delay plus drift of each other; no accumulation across pulses.
	for k, s := range res.Skew {
		if s > 2*delay.Paper.Max {
			t.Errorf("pulse %d skew %v exceeds 2d+", k, s)
		}
	}
	if res.Skew[9] > res.Skew[1]+delay.Paper.Max {
		t.Errorf("skew accumulates: pulse 1 %v → pulse 9 %v", res.Skew[1], res.Skew[9])
	}
}

func TestSeparationNearPeriod(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minSep := res.MinSeparation()
	// Separation stays close to the nominal period (within skew+drift).
	if minSep < cfg.Period-2*delay.Paper.Max || minSep > cfg.Period+2*delay.Paper.Max {
		t.Errorf("min separation %v far from period %v", minSep, cfg.Period)
	}
}

func TestSilentByzantineTolerated(t *testing.T) {
	cfg := baseConfig()
	cfg.Faulty = []int{3, 11, 17}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		for _, i := range cfg.Faulty {
			if res.Times[k][i] != Missing {
				t.Fatalf("faulty source %d fired pulse %d", i, k)
			}
		}
		if res.Skew[k] > 3*delay.Paper.Max {
			t.Errorf("pulse %d skew %v with silent faults", k, res.Skew[k])
		}
	}
}

func TestEagerByzantineCannotForgePulses(t *testing.T) {
	cfg := baseConfig()
	cfg.Faulty = []int{0, 1}
	cfg.AssumedFaults = 2
	cfg.ByzantineEager = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Even with f Byzantine sources voting for every pulse at time 0, the
	// f+1 threshold means no correct source fires pulse k before roughly
	// k periods have elapsed.
	for k := range res.Times {
		lo := sim.MaxTime
		for i, tt := range res.Times[k] {
			if cfg.Faulty[0] == i || cfg.Faulty[1] == i {
				continue
			}
			lo = sim.MinTime(lo, tt)
		}
		floor := sim.Time(k) * (cfg.Period / 2) // generous causal floor
		if lo < floor {
			t.Errorf("pulse %d fired at %v, before causal floor %v (Byzantine forged a pulse?)", k, lo, floor)
		}
	}
}

func TestEagerByzantinePullForwardBounded(t *testing.T) {
	// Eager faults may legitimately accelerate pulses a little (their
	// votes count toward f+1 once one correct source fired), but skew must
	// stay bounded.
	cfg := baseConfig()
	cfg.Faulty = []int{5}
	cfg.AssumedFaults = 1
	cfg.ByzantineEager = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.MaxSkew(); s > 3*delay.Paper.Max {
		t.Errorf("max skew %v with eager Byzantine source", s)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Times {
		for i := range a.Times[k] {
			if a.Times[k][i] != b.Times[k][i] {
				t.Fatalf("nondeterministic at pulse %d source %d", k, i)
			}
		}
	}
}

func TestScheduleConversion(t *testing.T) {
	cfg := baseConfig()
	cfg.Faulty = []int{4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := res.Schedule()
	if sched.Pulses() != cfg.Pulses {
		t.Fatalf("schedule pulses = %d", sched.Pulses())
	}
	correct := func(c int) bool { return c != 4 }
	for k := 0; k < cfg.Pulses; k++ {
		if sched.PulseMin(k, correct) == sim.MaxTime {
			t.Fatalf("pulse %d has no correct firing time", k)
		}
		// The faulty slot holds the sentinel.
		if sched.Times[k][4] < sim.MaxTime/2 {
			t.Error("faulty slot not sentinel")
		}
	}
}

func TestHigherDriftStillBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.Drift = theory.PaperDrift // ϑ = 1.05, very coarse oscillators
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Skew bound ≈ P·(ϑ−1) + d+: with P = 300 ns and ϑ = 1.05 that is
	// ≈ 23 ns; allow slack.
	limit := sim.Scale(cfg.Period, 5, 100) + 2*delay.Paper.Max
	if s := res.MaxSkew(); s > limit {
		t.Errorf("max skew %v exceeds drift-derived bound %v", s, limit)
	}
}

// TestSkewBoundProperty fuzzes seeds and fault sets: the per-pulse skew of
// correct sources never exceeds the drift+delay envelope.
func TestSkewBoundProperty(t *testing.T) {
	f := func(seed uint64, faultPick uint8, eager bool) bool {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.ByzantineEager = eager
		nf := int(faultPick % 4)
		for i := 0; i < nf; i++ {
			cfg.Faulty = append(cfg.Faulty, (int(faultPick)+i*5)%cfg.N)
		}
		cfg.AssumedFaults = 4
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		limit := sim.Scale(cfg.Period, cfg.Drift.Num-cfg.Drift.Den, cfg.Drift.Den) + 3*delay.Paper.Max
		return res.MaxSkew() <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
