// Package pulsegen implements the substrate the paper assumes at layer 0:
// a Byzantine fault-tolerant pulse generation algorithm over a fully
// connected network of clock sources. The paper delegates this role to
// DARTS [29,30] or FATAL+ [31] ("rather suitable candidates for the clock
// sources required by our HEX grid") and only requires that correct sources
// emit well-separated pulses with bounded skew.
//
// We implement Srikanth–Toueg-style pulse synchronization, simplified to
// the non-stabilizing steady-state case (FATAL's self-stabilization
// machinery is out of scope here, as it is in the paper):
//
//   - every source runs a local clock with drift at most ϑ; its timer for
//     pulse k+1 expires one nominal period P of local time after it
//     *accepted* pulse k;
//   - a source fires pulse k (emits it to the HEX grid and broadcasts
//     ⟨fire k⟩ to the other sources) when its timer expires or when it has
//     collected f+1 distinct ⟨fire k⟩ votes — at least one of them from a
//     correct source, so Byzantine sources alone can never cause a pulse;
//   - a source accepts pulse k, resynchronizing its clock, once it has
//     collected f+1 votes including its own.
//
// With at most f Byzantine sources among n ≥ 2f+1, all correct sources
// fire each pulse within one message delay of each other and the skew does
// not accumulate across pulses: acceptance is driven by the same set of
// broadcasts at every correct source. This provides exactly the
// "synchronized and well-separated initial trigger messages" Section 2
// postulates.
package pulsegen

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
)

// Config parameterizes a source-network simulation.
type Config struct {
	// N is the number of sources (the HEX grid width W).
	N int
	// Faulty lists Byzantine source indices; the precision guarantee
	// needs N ≥ 2·|Faulty|+1.
	Faulty []int
	// Period is the nominal pulse period P (it must exceed the HEX pulse
	// separation S of Condition 2 plus the achieved source skew).
	Period sim.Time
	// Pulses is the number of pulses to generate.
	Pulses int
	// Bounds is the delay interval of the fully connected source links.
	Bounds delay.Bounds
	// Drift bounds each source's local clock rate error (ϑ).
	Drift theory.Drift
	// Seed drives clock rates, initial offsets and message delays.
	Seed uint64
	// ByzantineEager makes faulty sources broadcast ⟨fire k⟩ for every
	// pulse at time 0, trying to drag correct sources forward; otherwise
	// faulty sources are silent (the crash-like case).
	ByzantineEager bool
	// AssumedFaults is the resilience parameter f of the join threshold
	// f+1; 0 defaults to len(Faulty). Deployments would fix it to the
	// design margin ⌊(N−1)/2⌋ independent of the actual fault count.
	AssumedFaults int
}

// threshold returns the join/accept vote threshold f+1.
func (c Config) threshold() int {
	f := c.AssumedFaults
	if f == 0 {
		f = len(c.Faulty)
	}
	return f + 1
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 3 {
		return fmt.Errorf("pulsegen: need at least 3 sources, got %d", c.N)
	}
	f := c.AssumedFaults
	if f < len(c.Faulty) {
		f = len(c.Faulty)
	}
	if 2*f+1 > c.N {
		return fmt.Errorf("pulsegen: f = %d Byzantine sources exceed the f < n/2 bound for n = %d", f, c.N)
	}
	if c.AssumedFaults > 0 && len(c.Faulty) > c.AssumedFaults {
		return fmt.Errorf("pulsegen: %d actual faults exceed the assumed bound %d", len(c.Faulty), c.AssumedFaults)
	}
	if c.Period <= 0 || c.Pulses < 1 {
		return fmt.Errorf("pulsegen: need positive period and at least one pulse")
	}
	return c.Bounds.Validate()
}

// Missing marks a source that did not fire a pulse.
const Missing = sim.Time(-1)

// Result is the outcome of a source-network simulation.
type Result struct {
	// Times[k][i] is source i's firing time for pulse k, or Missing.
	Times [][]sim.Time
	// Skew[k] is the max difference between correct sources' pulse-k
	// firing times.
	Skew   []sim.Time
	faulty []bool
}

// node is one source's runtime state.
type node struct {
	faulty bool
	// rate is the local clock's real-time cost of one local time unit,
	// scaled by Drift.Den: a value of Drift.Num means the slowest clock.
	rate     int64
	fired    []bool
	accepted []bool
	votes    []map[int]bool
}

type network struct {
	cfg   Config
	eng   *sim.Engine
	rng   *sim.RNG
	rngD  *sim.RNG
	nodes []*node
	res   *Result
}

// Run simulates the source network.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nw := &network{
		cfg:  cfg,
		eng:  sim.NewEngine(),
		rng:  sim.NewRNG(sim.DeriveSeed(cfg.Seed, "pulsegen")),
		rngD: sim.NewRNG(sim.DeriveSeed(cfg.Seed, "pulsegen-delay")),
	}
	isFaulty := make([]bool, cfg.N)
	for _, i := range cfg.Faulty {
		if i < 0 || i >= cfg.N {
			return nil, fmt.Errorf("pulsegen: faulty index %d out of range", i)
		}
		isFaulty[i] = true
	}
	nw.res = &Result{
		Times:  make([][]sim.Time, cfg.Pulses),
		Skew:   make([]sim.Time, cfg.Pulses),
		faulty: isFaulty,
	}
	for k := range nw.res.Times {
		nw.res.Times[k] = make([]sim.Time, cfg.N)
		for i := range nw.res.Times[k] {
			nw.res.Times[k][i] = Missing
		}
	}
	nw.nodes = make([]*node, cfg.N)
	for i := range nw.nodes {
		nd := &node{
			faulty:   isFaulty[i],
			rate:     int64(nw.rng.TimeIn(sim.Time(cfg.Drift.Den), sim.Time(cfg.Drift.Num))),
			fired:    make([]bool, cfg.Pulses),
			accepted: make([]bool, cfg.Pulses),
			votes:    make([]map[int]bool, cfg.Pulses),
		}
		for k := range nd.votes {
			nd.votes[k] = make(map[int]bool)
		}
		nw.nodes[i] = nd
	}

	// Initial timers for pulse 0: steady-state assumption, sources start
	// within one message delay of each other.
	for i, nd := range nw.nodes {
		if nd.faulty {
			continue
		}
		i := i
		start := nw.rng.TimeIn(0, cfg.Bounds.Max)
		nw.eng.Schedule(start+nw.localDur(nd, cfg.Period), func() { nw.fire(i, 0) })
	}
	// Eager Byzantine sources spam votes for every pulse at time 0.
	if cfg.ByzantineEager {
		for _, i := range cfg.Faulty {
			for k := 0; k < cfg.Pulses; k++ {
				i, k := i, k
				nw.eng.Schedule(0, func() { nw.broadcast(i, k) })
			}
		}
	}

	nw.eng.RunAll()

	for k := 0; k < cfg.Pulses; k++ {
		lo, hi := sim.MaxTime, sim.Time(-1)
		for i, t := range nw.res.Times[k] {
			if isFaulty[i] {
				continue
			}
			if t == Missing {
				return nil, fmt.Errorf("pulsegen: correct source %d never fired pulse %d", i, k)
			}
			lo, hi = sim.MinTime(lo, t), sim.MaxOf(hi, t)
		}
		nw.res.Skew[k] = hi - lo
	}
	return nw.res, nil
}

// localDur converts a local-time span to real time for a node: a slow
// clock (rate > Den) stretches real time.
func (nw *network) localDur(nd *node, local sim.Time) sim.Time {
	return sim.Scale(local, nd.rate, nw.cfg.Drift.Den)
}

// fire emits pulse k at source i: record, broadcast, and count the node's
// own vote toward acceptance.
func (nw *network) fire(i, k int) {
	nd := nw.nodes[i]
	if nd.faulty || nd.fired[k] {
		return
	}
	nd.fired[k] = true
	nw.res.Times[k][i] = nw.eng.Now()
	nw.broadcast(i, k)
	nw.vote(i, i, k)
}

// broadcast sends ⟨fire k⟩ from i to every other source.
func (nw *network) broadcast(i, k int) {
	for j := 0; j < nw.cfg.N; j++ {
		if j == i {
			continue
		}
		j := j
		d := nw.rngD.TimeIn(nw.cfg.Bounds.Min, nw.cfg.Bounds.Max)
		nw.eng.Schedule(nw.eng.Now()+d, func() { nw.vote(j, i, k) })
	}
}

// vote records a ⟨fire k⟩ vote from `from` at node i. f+1 distinct votes
// make the node fire (join) and accept; acceptance resynchronizes the
// local clock: the timer for pulse k+1 starts here.
func (nw *network) vote(i, from, k int) {
	nd := nw.nodes[i]
	if nd.faulty || nd.accepted[k] {
		return
	}
	nd.votes[k][from] = true
	if len(nd.votes[k]) < nw.cfg.threshold() {
		return
	}
	nd.accepted[k] = true
	nw.fire(i, k) // join if the own timer has not expired yet
	if k+1 < nw.cfg.Pulses {
		i := i
		nw.eng.Schedule(nw.eng.Now()+nw.localDur(nd, nw.cfg.Period), func() { nw.fire(i, k+1) })
	}
}

// Schedule converts the result into a layer-0 schedule for core.Run.
// Faulty sources keep their slots with a far-future sentinel; the HEX fault
// plan must mark them faulty so core ignores them.
func (r *Result) Schedule() *source.Schedule {
	times := make([][]sim.Time, len(r.Times))
	for k := range r.Times {
		times[k] = make([]sim.Time, len(r.Times[k]))
		for i, t := range r.Times[k] {
			if t == Missing {
				times[k][i] = sim.MaxTime / 2
			} else {
				times[k][i] = t
			}
		}
	}
	return &source.Schedule{Times: times}
}

// MaxSkew returns the largest per-pulse skew between correct sources.
func (r *Result) MaxSkew() sim.Time {
	var m sim.Time
	for _, s := range r.Skew {
		if s > m {
			m = s
		}
	}
	return m
}

// MinSeparation returns the smallest separation between consecutive pulses
// at any correct source.
func (r *Result) MinSeparation() sim.Time {
	min := sim.MaxTime
	for k := 1; k < len(r.Times); k++ {
		for i := range r.Times[k] {
			if r.faulty != nil && r.faulty[i] {
				continue
			}
			a, b := r.Times[k-1][i], r.Times[k][i]
			if a == Missing || b == Missing {
				continue
			}
			if b-a < min {
				min = b - a
			}
		}
	}
	return min
}
