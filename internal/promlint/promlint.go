// Package promlint lints the Prometheus text exposition format our
// /metrics endpoints emit. It is a test helper shared by the service,
// cluster, and jobs scrape tests: one strict parser and one generic
// conformance pass (families declared, HELP present, counters end in
// _total, histogram buckets cumulative with +Inf == _count), so every
// metrics page in the repo is held to the same bar.
package promlint

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Sample is one parsed exposition sample line.
type Sample struct {
	Name   string
	Labels string // raw label block without braces, "" when unlabeled
	Value  float64
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)

// Parse parses the text exposition format strictly enough to lint our
// own output: it returns the TYPE declarations, the HELP declarations,
// and the samples in emission order, failing the test on any line it
// cannot account for.
func Parse(t *testing.T, text string) (types, helps map[string]string, samples []Sample) {
	t.Helper()
	types = make(map[string]string)
	helps = make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line, " ", 4)
			if len(f) != 4 || f[3] == "" {
				t.Fatalf("malformed or empty HELP line: %q", line)
			}
			helps[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			samples = append(samples, Sample{Name: m[1], Labels: m[2], Value: v})
		}
	}
	return types, helps, samples
}

// FamilyOf resolves a sample name to its declared family, accounting for
// the _bucket/_sum/_count series of histograms.
func FamilyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, true
		}
	}
	return "", false
}

// StripLE removes the le label from a bucket's label block, yielding the
// label set shared with the family's _sum and _count series.
func StripLE(labels string) string {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return labels
	}
	return strings.TrimSuffix(labels[:i], ",")
}

// Lint parses text and applies the conformance checks every hexd metrics
// page must pass: each sample belongs to a declared family, each family
// has HELP text, a known type, and at least one sample, counters follow
// the _total convention, and histogram buckets are cumulative with a
// +Inf bucket equal to _count. It returns the parse results so callers
// can add page-specific assertions (which families must exist, which
// histograms must have observations).
func Lint(t *testing.T, text string) (types map[string]string, samples []Sample) {
	t.Helper()
	types, helps, samples := Parse(t, text)

	seen := make(map[string]bool)
	for _, smp := range samples {
		fam, ok := FamilyOf(smp.Name, types)
		if !ok {
			t.Errorf("sample %s has no TYPE declaration", smp.Name)
			continue
		}
		seen[fam] = true
	}
	for fam, typ := range types {
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			t.Errorf("family %s has unknown type %q", fam, typ)
		}
		if helps[fam] == "" {
			t.Errorf("family %s has no HELP text", fam)
		}
		if !seen[fam] {
			t.Errorf("family %s declared but never sampled", fam)
		}
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			t.Errorf("counter %s does not end in _total", fam)
		}
	}

	type key struct{ fam, labels string }
	lastBucket := make(map[key]float64)
	infBucket := make(map[key]float64)
	counts := make(map[key]float64)
	for _, smp := range samples {
		fam, _ := FamilyOf(smp.Name, types)
		if types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(smp.Name, "_bucket"):
			k := key{fam, StripLE(smp.Labels)}
			if smp.Value < lastBucket[k] {
				t.Errorf("%s{%s}: bucket counts not cumulative", fam, smp.Labels)
			}
			lastBucket[k] = smp.Value
			if strings.Contains(smp.Labels, `le="+Inf"`) {
				infBucket[k] = smp.Value
			}
		case strings.HasSuffix(smp.Name, "_count"):
			counts[key{fam, smp.Labels}] = smp.Value
		}
	}
	for k, c := range counts {
		inf, ok := infBucket[k]
		if !ok {
			t.Errorf("%s{%s}: no +Inf bucket", k.fam, k.labels)
			continue
		}
		if inf != c {
			t.Errorf("%s{%s}: +Inf bucket %v != count %v", k.fam, k.labels, inf, c)
		}
	}
	return types, samples
}

// RequireFamilies asserts that each named family is declared on the page
// with the given type ("counter", "gauge", "histogram").
func RequireFamilies(t *testing.T, types map[string]string, want map[string]string) {
	t.Helper()
	for fam, typ := range want {
		if got, ok := types[fam]; !ok {
			t.Errorf("family %s missing from metrics page", fam)
		} else if got != typ {
			t.Errorf("family %s has type %q, want %q", fam, got, typ)
		}
	}
}
