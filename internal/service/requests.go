package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

// aggregateContentType labels HXA1 aggregate bodies; clients decode them
// with store.DecodeAggregate.
const aggregateContentType = "application/vnd.hex.aggregate"

// flightTracer adapts a possibly-nil recorder to core.Config.Trace without
// wrapping a nil pointer in a non-nil interface.
func flightTracer(fr *obs.FlightRecorder) core.Tracer {
	if fr == nil {
		return nil
	}
	return fr
}

// RunRequest is the body of POST /v1/run: one single-pulse simulation.
type RunRequest struct {
	// L, W are the grid dimensions (defaults 50, 20).
	L int `json:"l,omitempty"`
	W int `json:"w,omitempty"`
	// Scenario is a layer-0 skew scenario name accepted by source.Parse
	// ("zero"/"i", "udminus"/"ii", "udplus"/"iii", "ramp"/"iv"; default
	// "zero"). Aliases canonicalize to the same cache key.
	Scenario string `json:"scenario,omitempty"`
	// Faults places this many random faulty nodes under Condition 1.
	Faults int `json:"faults,omitempty"`
	// FaultType is "byzantine" (default when Faults > 0) or "fail-silent".
	FaultType string `json:"fault_type,omitempty"`
	// Seed drives all randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// HexPlus selects the Section 5 augmented topology.
	HexPlus bool `json:"hex_plus,omitempty"`
	// Output is "stats" (JSON, default), "csv" (wave CSV), "svg" (wave
	// heat map), or "agg" (binary HXA1 aggregate record: skew summaries,
	// event count, and elapsed time only — the campaign mode that skips
	// the full per-node trigger snapshot).
	Output string `json:"output,omitempty"`
	// TimeoutMs is the per-request deadline in milliseconds; 0 uses the
	// server default, larger values are clamped to the server maximum.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// Resolved by normalize; excluded from JSON and from the cache key
	// string (the parsed values are what the key uses).
	scenario source.Scenario `json:"-"`
	behavior fault.Behavior  `json:"-"`
	// flightArm, set by the HTTP layer from ?trace=1, arms the sim flight
	// recorder for this computation. Deliberately excluded from the cache
	// key: a traced request whose result is already cached (or in flight
	// under an unarmed leader) replays that result without a dump — the
	// trace's notes say which path it took.
	flightArm bool `json:"-"`
}

// Normalize fills defaults and parses enum fields; it must be called
// before CanonicalKey or compute. It is exported for the cluster router,
// which canonicalizes requests the same way before hashing them to a
// shard.
func (r *RunRequest) Normalize(opts Options) error {
	if r.L == 0 {
		r.L = 50
	}
	if r.W == 0 {
		r.W = 20
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Output == "" {
		r.Output = "stats"
	}
	if r.Output != "stats" && r.Output != "csv" && r.Output != "svg" && r.Output != "agg" {
		return fmt.Errorf("output must be one of stats, csv, svg, agg; got %q", r.Output)
	}
	sc, err := source.Parse(orDefault(r.Scenario, "zero"))
	if err != nil {
		return err
	}
	r.scenario = sc
	r.Scenario = sc.Name()
	r.behavior, err = parseBehavior(r.FaultType, r.Faults)
	if err != nil {
		return err
	}
	r.FaultType = r.behavior.String()
	return validateGridDims(r.L, r.W, r.Faults, opts)
}

// CanonicalKey returns the canonical cache key. Requests that differ
// only in deadline share a key; requests that differ in output format do
// not (they cache different serialized bodies). The derivation is pinned
// byte-for-byte by TestCanonicalKeysPinned: the same key partitions the
// fleet, names durable store records, and keys both cache tiers, so it
// must never drift between releases running side by side.
func (r *RunRequest) CanonicalKey() string {
	return cacheKey("run", fmt.Sprintf("L=%d|W=%d|sc=%d|f=%d|ft=%d|seed=%d|plus=%t|out=%s",
		r.L, r.W, int(r.scenario), r.Faults, int(r.behavior), r.Seed, r.HexPlus, r.Output))
}

// RequestTimeout resolves the effective deadline for a request: ms when
// positive, opts.DefaultTimeout otherwise, clamped to opts.MaxTimeout.
func RequestTimeout(ms int64, opts Options) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = opts.DefaultTimeout
	}
	if d > opts.MaxTimeout {
		d = opts.MaxTimeout
	}
	return d
}

// RunResponse is the JSON body of a successful stats-output /v1/run.
type RunResponse struct {
	L           int         `json:"l"`
	W           int         `json:"w"`
	Scenario    string      `json:"scenario"`
	Faults      int         `json:"faults"`
	FaultType   string      `json:"fault_type,omitempty"`
	Seed        uint64      `json:"seed"`
	HexPlus     bool        `json:"hex_plus,omitempty"`
	FaultyNodes []int       `json:"faulty_nodes,omitempty"`
	Triggered   int         `json:"triggered"`
	Events      uint64      `json:"events"`
	HorizonNs   float64     `json:"horizon_ns"`
	IntraSkewNs SummaryJSON `json:"intra_skew_ns"`
	InterSkewNs SummaryJSON `json:"inter_skew_ns"`
}

// SummaryJSON mirrors stats.Summary for serialization.
type SummaryJSON struct {
	Min float64 `json:"min"`
	Q5  float64 `json:"q5"`
	Avg float64 `json:"avg"`
	Q95 float64 `json:"q95"`
	Max float64 `json:"max"`
	N   int     `json:"n"`
}

func summaryJSON(s stats.Summary) SummaryJSON {
	return SummaryJSON{Min: s.Min, Q5: s.Q5, Avg: s.Avg, Q95: s.Q95, Max: s.Max, N: s.N}
}

// computeRun executes one single-pulse simulation. Cancelled runs still
// report their partial event counts to the metrics registry before the
// error propagates, and — when the flight recorder is armed — still attach
// their audited event-stream tail to the request trace.
func (s *Service) computeRun(ctx context.Context, r RunRequest) (*coalesce.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr := obs.FromContext(ctx)
	endBuild := tr.StartSpan("grid-build")
	h, err := s.buildGrid(r.L, r.W, r.HexPlus)
	if err != nil {
		endBuild()
		return nil, errBadRequest{err}
	}
	plan := fault.NewPlan(h.NumNodes())
	var placed []int
	if r.Faults > 0 {
		rngF := sim.NewRNG(sim.DeriveSeed(r.Seed, "faults"))
		placed, err = fault.PlaceRandom(h.Graph, r.Faults, nil, rngF, 0)
		if err != nil {
			endBuild()
			return nil, errBadRequest{err}
		}
		for _, n := range placed {
			plan.SetBehavior(n, r.behavior)
		}
		if r.behavior == fault.Byzantine {
			plan.RandomizeByzantine(h.Graph, rngF)
		}
	}
	params := core.DefaultParams()
	offsets := source.Offsets(r.scenario, r.W, params.Bounds,
		sim.NewRNG(sim.DeriveSeed(r.Seed, "offsets")))
	endBuild()
	var fr *obs.FlightRecorder
	if r.flightArm {
		fr = obs.NewFlightRecorder(s.opts.FlightEvents)
		tr.Note("flight-armed")
	}
	start := time.Now()
	endSim := tr.StartSpan("sim")
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   params,
		Delay:    delay.Uniform{Bounds: params.Bounds},
		Faults:   plan,
		Schedule: source.SinglePulse(offsets),
		Seed:     r.Seed,
		Wedges:   s.opts.Wedges,
		Context:  ctx,
		Trace:    flightTracer(fr),
		// Aggregate output needs only each node's first trigger; the
		// compact snapshot skips the per-node trigger slices entirely.
		FirstTriggerOnly: r.Output == "agg",
	})
	endSim()
	elapsed := time.Since(start)
	s.Metrics.SimRuns.Inc()
	s.Metrics.SimRunSeconds.ObserveDuration(time.Since(start))
	if res != nil {
		s.Metrics.SimEvents.Add(res.Events)
		s.Metrics.SimRunEvents.Observe(float64(res.Events))
		s.Metrics.RecordThroughput(res.Events, time.Since(start))
	}
	var dump *obs.FlightDump
	if fr != nil {
		// Audit the captured window against this run's own topology and
		// fault plan; embed the raw events only for failed runs (they are
		// the post-mortem payload) or when the audit itself failed.
		aud := &trace.Auditor{G: h.Graph, Plan: plan, Params: params}
		dump = obs.NewFlightDump(fr, aud, err != nil)
		tr.SetFlight(dump)
		if !dump.AuditOK {
			s.opts.Logger.Warn("flight-recorder audit failed",
				"request_id", tr.ID(),
				"audit_error", dump.AuditError,
				"captured", dump.Captured,
				"dropped", dump.Dropped)
		}
	}
	// The wave serves both the output encoders below and the arm policy's
	// skew predicate; reconstruct it once. Failed runs have no wave (the
	// policy can still arm on the error itself).
	var wave *analysis.Wave
	if err == nil {
		if r.Output == "agg" {
			wave = analysis.WaveFromFirstTriggers(h.Graph, res, plan)
		} else {
			wave = analysis.WaveFromResult(h.Graph, res, plan, 0)
		}
	}
	s.evaluateArm(ctx, tr, r, h, plan, params, offsets, wave, fr, dump, err, elapsed)
	if err != nil {
		return nil, err
	}
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	if r.Output == "agg" {
		// One scratch buffer serves both skew vectors: SummarizeScaled
		// sorts in place and is done with the memory when it returns.
		// Integer sort + streamed conversion is bit-identical to
		// Summarize(IntraSkews()) but cheaper, which matters at campaign
		// rates where these two summaries are a double-digit share of a
		// small run.
		skews := make([]sim.Time, 0, 3*h.Graph.NumNodes())
		intra := stats.SummarizeScaled(wave.AppendIntraSkewTimes(skews), float64(sim.Nanosecond))
		inter := stats.SummarizeScaled(wave.AppendInterSkewTimes(skews), float64(sim.Nanosecond))
		agg := &store.Aggregate{
			Triggered: uint32(wave.TriggeredCount()),
			Events:    res.Events,
			Horizon:   res.Horizon,
			ElapsedNs: uint64(elapsed.Nanoseconds()),
			IntraSkew: intra,
			InterSkew: inter,
		}
		return &coalesce.Value{Body: store.EncodeAggregate(agg),
			ContentType: aggregateContentType, Events: res.Events}, nil
	}
	switch r.Output {
	case "csv":
		return &coalesce.Value{Body: []byte(render.WaveCSV(wave, h)),
			ContentType: "text/csv; charset=utf-8", Events: res.Events}, nil
	case "svg":
		return &coalesce.Value{Body: []byte(render.WaveSVG(wave, h, 10)),
			ContentType: "image/svg+xml", Events: res.Events}, nil
	}
	resp := RunResponse{
		L: r.L, W: r.W, Scenario: r.Scenario, Faults: r.Faults,
		Seed: r.Seed, HexPlus: r.HexPlus,
		FaultyNodes: placed,
		Triggered:   wave.TriggeredCount(),
		Events:      res.Events,
		HorizonNs:   res.Horizon.Nanoseconds(),
		IntraSkewNs: summaryJSON(stats.SummarizeScaled(wave.AppendIntraSkewTimes(nil), float64(sim.Nanosecond))),
		InterSkewNs: summaryJSON(stats.SummarizeScaled(wave.AppendInterSkewTimes(nil), float64(sim.Nanosecond))),
	}
	if r.Faults > 0 {
		resp.FaultType = r.FaultType
	}
	return marshalCached(resp, res.Events)
}

// SpecRequest is the body of POST /v1/spec: a multi-run experiment in the
// shape of experiment.Spec, answered with aggregate skew statistics.
type SpecRequest struct {
	L         int    `json:"l,omitempty"`
	W         int    `json:"w,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	Faults    int    `json:"faults,omitempty"`
	FaultType string `json:"fault_type,omitempty"`
	// Runs is the number of independent runs (default 250).
	Runs int    `json:"runs,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// HexPlus selects the Section 5 augmented topology.
	HexPlus bool `json:"hex_plus,omitempty"`
	// ExcludeHops excludes the h-hop neighborhoods of faulty nodes from
	// the statistics, as in the paper's fault-local tables.
	ExcludeHops int   `json:"exclude_hops,omitempty"`
	TimeoutMs   int64 `json:"timeout_ms,omitempty"`

	scenario source.Scenario `json:"-"`
	behavior fault.Behavior  `json:"-"`
}

// Normalize fills defaults, parses enums, and enforces limits.
func (r *SpecRequest) Normalize(opts Options) error {
	if r.L == 0 {
		r.L = 50
	}
	if r.W == 0 {
		r.W = 20
	}
	if r.Runs == 0 {
		r.Runs = 250
	}
	if r.Runs < 0 || r.Runs > opts.MaxRuns {
		return fmt.Errorf("runs must be in [1, %d]; got %d", opts.MaxRuns, r.Runs)
	}
	if r.ExcludeHops < 0 {
		return fmt.Errorf("exclude_hops must be >= 0; got %d", r.ExcludeHops)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	sc, err := source.Parse(orDefault(r.Scenario, "zero"))
	if err != nil {
		return err
	}
	r.scenario = sc
	r.Scenario = sc.Name()
	r.behavior, err = parseBehavior(r.FaultType, r.Faults)
	if err != nil {
		return err
	}
	r.FaultType = r.behavior.String()
	return validateGridDims(r.L, r.W, r.Faults, opts)
}

// CanonicalKey returns the canonical cache key of the spec request.
func (r *SpecRequest) CanonicalKey() string {
	return cacheKey("spec", fmt.Sprintf("L=%d|W=%d|sc=%d|f=%d|ft=%d|runs=%d|seed=%d|plus=%t|hops=%d",
		r.L, r.W, int(r.scenario), r.Faults, int(r.behavior), r.Runs, r.Seed, r.HexPlus, r.ExcludeHops))
}

// SpecResponse is the JSON body of a successful /v1/spec.
type SpecResponse struct {
	L           int         `json:"l"`
	W           int         `json:"w"`
	Scenario    string      `json:"scenario"`
	Faults      int         `json:"faults"`
	FaultType   string      `json:"fault_type,omitempty"`
	Runs        int         `json:"runs"`
	Seed        uint64      `json:"seed"`
	HexPlus     bool        `json:"hex_plus,omitempty"`
	ExcludeHops int         `json:"exclude_hops,omitempty"`
	Events      uint64      `json:"events"`
	IntraSkewNs SummaryJSON `json:"intra_skew_ns"`
	InterSkewNs SummaryJSON `json:"inter_skew_ns"`
}

// computeSpec executes all runs of the spec on the caller's context.
func (s *Service) computeSpec(ctx context.Context, r SpecRequest) (*coalesce.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spec := experiment.Spec{
		L: r.L, W: r.W,
		Scenario:  r.scenario,
		Faults:    r.Faults,
		FaultType: r.behavior,
		Runs:      r.Runs,
		Seed:      r.Seed,
		HexPlus:   r.HexPlus,
		Wedges:    s.opts.Wedges,
	}
	tr := obs.FromContext(ctx)
	endSweep := tr.StartSpan("experiment-sweep")
	start := time.Now()
	outs, err := experiment.RunManyCtx(ctx, spec)
	// Wall clock of the whole sweep: RecordThroughput aggregates across
	// the sweep's worker goroutines (and any wedge workers inside each
	// run), so hexd_events_per_sec reports process-level throughput rather
	// than one goroutine's share.
	wall := time.Since(start)
	endSweep()
	s.Metrics.SimRuns.Add(uint64(len(outs)))
	if err != nil {
		return nil, err
	}
	var events uint64
	for _, o := range outs {
		events += o.Res.Events
		// Per-run wall time was previously invisible inside sweeps: the
		// endpoint histogram sees one aggregate latency for all Runs.
		s.Metrics.SimRunSeconds.ObserveDuration(o.Elapsed)
	}
	s.Metrics.SimEvents.Add(events)
	s.Metrics.SimRunEvents.Observe(float64(events))
	s.Metrics.RecordThroughput(events, wall)
	endEncode := tr.StartSpan("encode")
	defer endEncode()
	intra, inter := experiment.CollectSkews(outs, r.ExcludeHops)
	resp := SpecResponse{
		L: r.L, W: r.W, Scenario: r.Scenario, Faults: r.Faults,
		Runs: r.Runs, Seed: r.Seed, HexPlus: r.HexPlus, ExcludeHops: r.ExcludeHops,
		Events:      events,
		IntraSkewNs: summaryJSON(stats.Summarize(intra)),
		InterSkewNs: summaryJSON(stats.Summarize(inter)),
	}
	if r.Faults > 0 {
		resp.FaultType = r.FaultType
	}
	return marshalCached(resp, events)
}

// buildGrid returns the requested topology from the process-wide grid
// cache: every request, sweep unit, and router-fanned unit that agrees on
// (topology, L, W) shares one immutable grid, built once. Pointer-stable
// grids also keep the pooled arenas warm (core.Arena keys storage reuse on
// the topology pointer). It is a variable so the differential test can
// substitute fresh construction and pin that caching is invisible in the
// results.
var buildGrid = func(l, w int, plus bool) (*grid.Hex, error) {
	return grid.Shared.Build(l, w, plus)
}

// buildGrid resolves a topology for this service: through the shared cache
// normally, or freshly constructed when Options.DisableGridCache asks for
// the uncached baseline cost.
func (s *Service) buildGrid(l, w int, plus bool) (*grid.Hex, error) {
	if s.opts.DisableGridCache {
		if plus {
			return grid.NewHexPlus(l, w)
		}
		return grid.NewHex(l, w)
	}
	return buildGrid(l, w, plus)
}

// validateGridDims enforces the service-level admission limits.
func validateGridDims(l, w, faults int, opts Options) error {
	if l < 1 || w < 1 {
		return fmt.Errorf("grid dimensions must be positive; got L=%d W=%d", l, w)
	}
	if nodes := (l + 1) * w; nodes > opts.MaxNodes {
		return fmt.Errorf("grid of %d nodes exceeds the limit of %d", nodes, opts.MaxNodes)
	}
	if faults < 0 {
		return fmt.Errorf("faults must be >= 0; got %d", faults)
	}
	return nil
}

// parseBehavior maps a request's fault_type string to a fault.Behavior,
// defaulting to Byzantine when faults are requested.
func parseBehavior(name string, faults int) (fault.Behavior, error) {
	switch name {
	case "":
		if faults > 0 {
			return fault.Byzantine, nil
		}
		return fault.Correct, nil
	case "correct":
		// Accepted so a normalized request (whose FaultType is the
		// canonical behavior string) round-trips through re-submission.
		if faults > 0 {
			return 0, fmt.Errorf("fault type %q is incompatible with faults=%d", name, faults)
		}
		return fault.Correct, nil
	case "byzantine":
		return fault.Byzantine, nil
	case "fail-silent", "failsilent", "crash":
		return fault.FailSilent, nil
	}
	return 0, fmt.Errorf("unknown fault type %q (want byzantine or fail-silent)", name)
}

// cacheKey hashes a canonical field string into a stable hex key.
func cacheKey(kind, fields string) string {
	sum := sha256.Sum256([]byte(kind + "|v1|" + fields))
	return kind + ":" + hex.EncodeToString(sum[:16])
}

// marshalCached serializes a JSON response body into a cache entry.
func marshalCached(v any, events uint64) (*coalesce.Value, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return &coalesce.Value{Body: buf.Bytes(), ContentType: "application/json", Events: events}, nil
}

// orDefault returns s, or def when s is empty.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
