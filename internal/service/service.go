// Package service turns the HEX simulator into an embeddable backend: a
// bounded worker pool with admission control, a deterministic result cache
// with in-flight request deduplication, per-request deadlines that cancel
// simulations mid-run, and a metrics registry. cmd/hexd wraps it in an
// HTTP daemon.
//
// The package is split along the canonicalize/execute seam: request
// canonicalization (normalization, canonical key derivation) lives here
// in requests.go, coalescing (result cache + in-flight singleflight) is
// the shared internal/coalesce package, and this file owns local
// execution — the bounded worker pool that actually runs simulations.
// internal/cluster composes the same canonicalization and coalescing
// with a forwarding executor to run hexd as a sharded fleet.
//
// Concurrency model: requests are canonicalized into a stable key; a
// cache hit replays the stored body, a miss either joins an identical
// in-flight computation or enqueues one job on a channel bounded by
// QueueDepth. Workers (GOMAXPROCS by default) drain the channel; when it
// is full, submission fails immediately with ErrQueueFull so the HTTP
// layer can shed load with 429 instead of accumulating goroutines.
package service

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/store"
)

// ErrQueueFull is returned when the job queue has no room; callers should
// retry after backing off (HTTP 429).
var ErrQueueFull = errors.New("service: job queue full")

// ErrShuttingDown is returned for submissions after Close has begun.
var ErrShuttingDown = errors.New("service: shutting down")

// errBadRequest wraps request-dependent failures (infeasible fault count,
// invalid grid) that map to HTTP 400 rather than 500.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

// Options configure a Service. The zero value selects sane defaults.
type Options struct {
	// Workers is the number of simulation workers (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 4×Workers). When full, submissions fail with ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 512); negative disables
	// caching.
	CacheEntries int
	// DefaultTimeout applies when a request carries no deadline
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines (default 2m).
	MaxTimeout time.Duration
	// MaxNodes bounds the grid size (L+1)·W of a request (default 250000).
	MaxNodes int
	// MaxRuns bounds the Runs field of a /v1/spec request (default 2000).
	MaxRuns int
	// Store, when non-nil, is the durable second cache tier: a memory
	// miss probes it before computing (read-through) and completed
	// computations are persisted after waiters are released
	// (write-behind). Results are deterministic functions of their
	// canonical key, so a disk hit is byte-identical to a recompute.
	Store *store.Store
	// Logger receives the service's structured request log (one line per
	// completed request, Warn for rejections and failures). Default
	// slog.Default().
	Logger *slog.Logger
	// TraceRing bounds the ring of completed request traces served by
	// GET /v1/debug/requests (default 64); negative disables the ring.
	TraceRing int
	// FlightEvents bounds the sim flight recorder armed per-request with
	// /v1/run?trace=1: the recorder retains the last FlightEvents events
	// of the run (default 4096); negative disables flight recording.
	FlightEvents int
	// Wedges selects the wedge-parallel engine for each simulation (see
	// core.Config.Wedges; core.AutoWedges sizes it from GOMAXPROCS).
	// Results are bit-identical to serial, so Wedges is deliberately NOT
	// part of any canonical cache key. Default 0 keeps the serial engine:
	// sweeps already saturate cores across runs, so per-run wedges pay off
	// mainly on large single /v1/run grids.
	Wedges int
	// Exporter, when non-nil, receives every completed request trace for
	// OTLP export (hexd -otlp-endpoint). A nil exporter is a valid no-op,
	// so the serving path is identical with exporting disabled.
	Exporter *export.Exporter
	// Arm evaluates post-run capture predicates (obs.ArmPolicy): when a
	// run's outcome trips one — skew outside the Theorem-1 envelope, an
	// error, a failed audit, an outlier wall time — the unit is re-run
	// with the flight recorder armed and the dump attached to its trace.
	// nil (the default) disables predicate-armed capture.
	Arm *obs.Armer
	// DisableGridCache builds a fresh topology per request instead of
	// resolving through the process-wide grid cache. It exists as a
	// fidelity knob for baseline benchmarks that need to measure the
	// pre-memoization cost of a run, and as an escape hatch should a
	// cached grid ever be suspected of corruption. Results are identical
	// either way (the differential test pins this); only cost changes.
	DisableGridCache bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 250000
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 2000
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.TraceRing == 0 {
		o.TraceRing = 64
	}
	if o.FlightEvents == 0 {
		o.FlightEvents = 4096
	}
	return o
}

// Resolved returns o with unset fields filled with their defaults. The
// cluster router uses it to share the service's admission limits
// (MaxNodes, MaxRuns, deadline clamps) without re-stating the defaults.
func (o Options) Resolved() Options { return o.withDefaults() }

// Service executes canonicalized simulation requests through a bounded
// worker pool with caching and deduplication. Construct with New; all
// methods are safe for concurrent use.
type Service struct {
	opts    Options
	Metrics *Metrics
	coal    *coalesce.Coalescer
	store   *store.Store // nil when the durable tier is disabled
	ring    *obs.Ring    // completed request traces (/v1/debug/requests)

	jobs      chan func()
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts a Service with opts.Workers worker goroutines.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:    opts,
		Metrics: NewMetrics("run", "spec"),
		store:   opts.Store,
		ring:    obs.NewRing(opts.TraceRing),
		jobs:    make(chan func(), opts.QueueDepth),
	}
	s.coal = coalesce.New(opts.CacheEntries, coalesce.Hooks{
		Submit:     s.submit,
		SecondTier: s.storeGet,
		Persist:    s.storePut,
		OnHit:      s.Metrics.CacheHits.Inc,
		OnMiss:     s.Metrics.CacheMisses.Inc,
		OnJoin:     s.Metrics.DedupJoins.Inc,
	})
	if s.store != nil {
		s.Metrics.StoreBytes.Set(s.store.Bytes())
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				s.Metrics.QueueDepth.Set(int64(len(s.jobs)))
				s.Metrics.InFlight.Add(1)
				job()
				s.Metrics.InFlight.Add(-1)
			}
		}()
	}
	return s
}

// submit is the coalescer's executor hook: a non-blocking enqueue on the
// bounded worker-pool channel. It is called with the coalescer's lock
// held, which makes the closed-check/enqueue pair atomic with respect to
// Close — a job can never be sent on a closed channel.
func (s *Service) submit(run func()) error {
	// Sample the queue occupancy seen by this submission (including the
	// full-queue case below) so load headroom is visible between scrapes.
	s.Metrics.QueueDepthSamples.Observe(float64(len(s.jobs)))
	select {
	case s.jobs <- run:
		s.Metrics.QueueDepth.Set(int64(len(s.jobs)))
		return nil
	default:
		s.Metrics.QueueRejects.Inc()
		return ErrQueueFull
	}
}

// Options returns the resolved configuration.
func (s *Service) Options() Options { return s.opts }

// Closed reports whether Close has begun.
func (s *Service) Closed() bool { return s.coal.Closed() }

// Close drains the service: no new jobs are accepted, already queued and
// running jobs finish (their waiters get results), then the workers exit.
// It is idempotent and safe to call concurrently with requests.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		// Coalescer first: once it reports closed, no submit can race the
		// channel close below (submit runs under the coalescer's lock).
		s.coal.Close()
		close(s.jobs)
	})
	s.wg.Wait()
}

// result returns the response for the canonical key: from the cache, the
// durable store, by joining an identical in-flight computation, or by
// enqueueing compute on the worker pool. See coalesce.Coalescer.Do for
// the lifetime rules; failures specific to local execution are
// ErrQueueFull (bounded queue) and ErrShuttingDown (after Close).
func (s *Service) result(ctx context.Context, timeout time.Duration, key string, compute func(context.Context) (*coalesce.Value, error)) (*coalesce.Value, error) {
	v, err := s.coal.Do(ctx, timeout, key, compute)
	if errors.Is(err, coalesce.ErrShuttingDown) {
		return nil, ErrShuttingDown
	}
	return v, err
}

// RunUnit executes one normalized RunRequest through the full serving
// pipeline — memory cache, durable store read-through, in-flight dedup,
// bounded worker pool, write-behind persist — exactly as if it had
// arrived as its own POST /v1/run. The request must already be
// Normalized; its canonical key is byte-identical to the equivalent
// single-run HTTP request, so sweep-job units dedupe against interactive
// traffic and against each other across the LRU, the store, and the
// fleet. ctx bounds how long the caller waits; timeout is the detached
// computation's own deadline.
//
// internal/jobs is the intended caller: it is the seam that lets a sweep
// job's scheduler feed units into the same worker pool that serves
// single-run traffic, and it is what makes job resume free — a unit
// whose result already sits in the durable store comes back as a store
// hit with zero simulation work.
func (s *Service) RunUnit(ctx context.Context, timeout time.Duration, r RunRequest) (*coalesce.Value, error) {
	return s.result(ctx, timeout, r.CanonicalKey(),
		func(fctx context.Context) (*coalesce.Value, error) { return s.computeRun(fctx, r) })
}

// RunUnits executes a batch of normalized RunRequests as ONE scheduled
// job: one queue slot, one worker, one trace, one store flush. Each unit
// keeps its canonical per-run key — it hits the memory cache, joins
// in-flight singles, and reads through the durable store exactly like
// RunUnit — but units that actually compute run back-to-back on the
// batch worker's goroutine, so consecutive same-shape runs reuse one hot
// arena and the shared grid, and their results are persisted in a single
// group commit (one segment, one fsync window) instead of per-record
// writes. This is the campaign fast path: per-run fixed costs — queue
// round-trip, scheduler accounting, trace allocation, two fsyncs — are
// paid once per batch and amortized k-fold.
//
// The returned slices are index-aligned with reqs. A unit failure (bad
// request, cancellation) is reported in errs[i] without aborting the
// rest of the batch; once the batch deadline or ctx expires, remaining
// units fail fast with the context error.
func (s *Service) RunUnits(ctx context.Context, timeout time.Duration, reqs []RunRequest) ([]*coalesce.Value, []error) {
	vals := make([]*coalesce.Value, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return vals, errs
	}
	tr := obs.FromContext(ctx)
	done := make(chan struct{})
	enqueued := time.Now()
	job := func() {
		defer close(done)
		tr.AddSpan("queue-wait", enqueued, time.Now())
		// The batch computes on a context detached from the caller (same
		// lifetime rule as a coalesced flight): it carries the batch
		// deadline and the caller's trace, but survives the caller
		// disconnecting so joiners of individual units still get answers.
		fctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		fctx = obs.WithTrace(fctx, tr)
		var group []store.Entry
		for i := range reqs {
			r := reqs[i]
			if err := fctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			v, fresh, err := s.coal.DoInline(fctx, r.CanonicalKey(),
				func(c context.Context) (*coalesce.Value, error) { return s.computeRun(c, r) })
			vals[i], errs[i] = v, err
			if fresh && err == nil {
				group = append(group, store.Entry{
					Key:         r.CanonicalKey(),
					ContentType: v.ContentType,
					Events:      v.Events,
					Body:        v.Body,
				})
			}
		}
		s.storePutGroup(group)
	}
	if err := s.coal.SubmitDetached(job); err != nil {
		if errors.Is(err, coalesce.ErrShuttingDown) {
			err = ErrShuttingDown
		}
		for i := range errs {
			errs[i] = err
		}
		return vals, errs
	}
	select {
	case <-done:
		return vals, errs
	case <-ctx.Done():
		// The batch keeps running detached (its results are still
		// published to the cache and store); this caller stops waiting.
		// vals/errs stay with the running job — return fresh slices so
		// the caller never reads memory the batch is still writing.
		abandoned := make([]error, len(reqs))
		for i := range abandoned {
			abandoned[i] = ctx.Err()
		}
		return make([]*coalesce.Value, len(reqs)), abandoned
	}
}

// Ring returns the service's completed-request trace ring (the one
// behind GET /v1/debug/requests). The jobs manager adds its per-unit
// traces here so sweep units are debuggable alongside HTTP requests.
func (s *Service) Ring() *obs.Ring { return s.ring }
