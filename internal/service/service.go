// Package service turns the HEX simulator into an embeddable backend: a
// bounded worker pool with admission control, a deterministic result cache
// with in-flight request deduplication, per-request deadlines that cancel
// simulations mid-run, and a metrics registry. cmd/hexd wraps it in an
// HTTP daemon.
//
// Concurrency model: requests are canonicalized into a stable key; a
// cache hit replays the stored body, a miss either joins an identical
// in-flight computation or enqueues one job on a channel bounded by
// QueueDepth. Workers (GOMAXPROCS by default) drain the channel; when it
// is full, submission fails immediately with ErrQueueFull so the HTTP
// layer can shed load with 429 instead of accumulating goroutines.
package service

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ErrQueueFull is returned when the job queue has no room; callers should
// retry after backing off (HTTP 429).
var ErrQueueFull = errors.New("service: job queue full")

// ErrShuttingDown is returned for submissions after Close has begun.
var ErrShuttingDown = errors.New("service: shutting down")

// errBadRequest wraps request-dependent failures (infeasible fault count,
// invalid grid) that map to HTTP 400 rather than 500.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

// Options configure a Service. The zero value selects sane defaults.
type Options struct {
	// Workers is the number of simulation workers (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 4×Workers). When full, submissions fail with ErrQueueFull.
	QueueDepth int
	// CacheEntries bounds the result LRU (default 512); negative disables
	// caching.
	CacheEntries int
	// DefaultTimeout applies when a request carries no deadline
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines (default 2m).
	MaxTimeout time.Duration
	// MaxNodes bounds the grid size (L+1)·W of a request (default 250000).
	MaxNodes int
	// MaxRuns bounds the Runs field of a /v1/spec request (default 2000).
	MaxRuns int
	// Store, when non-nil, is the durable second cache tier: a memory
	// miss probes it before computing (read-through) and completed
	// computations are persisted after waiters are released
	// (write-behind). Results are deterministic functions of their
	// canonical key, so a disk hit is byte-identical to a recompute.
	Store *store.Store
	// Logger receives the service's structured request log (one line per
	// completed request, Warn for rejections and failures). Default
	// slog.Default().
	Logger *slog.Logger
	// TraceRing bounds the ring of completed request traces served by
	// GET /v1/debug/requests (default 64); negative disables the ring.
	TraceRing int
	// FlightEvents bounds the sim flight recorder armed per-request with
	// /v1/run?trace=1: the recorder retains the last FlightEvents events
	// of the run (default 4096); negative disables flight recording.
	FlightEvents int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 250000
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 2000
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.TraceRing == 0 {
		o.TraceRing = 64
	}
	if o.FlightEvents == 0 {
		o.FlightEvents = 4096
	}
	return o
}

// flight is one in-progress computation that any number of identical
// requests may wait on. Its computation runs on a context detached from
// the leader request (with the leader's timeout), so a coalesced flight
// survives the leader disconnecting; it is cancelled only when the last
// waiter leaves (waiters, guarded by Service.mu, tracks membership).
type flight struct {
	done    chan struct{} // closed when val/err are final
	val     *cached
	err     error
	cancel  context.CancelFunc // cancels the flight's detached context
	waiters int                // guarded by Service.mu
}

// Service executes canonicalized simulation requests through a bounded
// worker pool with caching and deduplication. Construct with New; all
// methods are safe for concurrent use.
type Service struct {
	opts    Options
	Metrics *Metrics
	cache   *lruCache
	store   *store.Store // nil when the durable tier is disabled
	ring    *obs.Ring    // completed request traces (/v1/debug/requests)

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool

	jobs chan func()
	wg   sync.WaitGroup
}

// New starts a Service with opts.Workers worker goroutines.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:     opts,
		Metrics:  NewMetrics("run", "spec"),
		cache:    newLRUCache(opts.CacheEntries),
		store:    opts.Store,
		ring:     obs.NewRing(opts.TraceRing),
		inflight: make(map[string]*flight),
		jobs:     make(chan func(), opts.QueueDepth),
	}
	if s.store != nil {
		s.Metrics.StoreBytes.Set(s.store.Bytes())
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				s.Metrics.QueueDepth.Set(int64(len(s.jobs)))
				s.Metrics.InFlight.Add(1)
				job()
				s.Metrics.InFlight.Add(-1)
			}
		}()
	}
	return s
}

// Options returns the resolved configuration.
func (s *Service) Options() Options { return s.opts }

// Closed reports whether Close has begun.
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close drains the service: no new jobs are accepted, already queued and
// running jobs finish (their waiters get results), then the workers exit.
// It is idempotent and safe to call concurrently with requests.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// result returns the response for the canonical key: from the cache, by
// joining an identical in-flight computation, or by enqueueing compute on
// the worker pool. The computation runs on a context detached from the
// caller's: it carries timeout as its deadline but is not cancelled by the
// leader request going away — only by the last interested waiter leaving.
// ctx governs only how long this caller waits.
func (s *Service) result(ctx context.Context, timeout time.Duration, key string, compute func(context.Context) (*cached, error)) (*cached, error) {
	tr := obs.FromContext(ctx)
	endLookup := tr.StartSpan("cache-lookup")
	if v, ok := s.cache.Get(key); ok {
		endLookup()
		tr.Note("cache-hit")
		s.Metrics.CacheHits.Inc()
		return v, nil
	}
	s.Metrics.CacheMisses.Inc()
	if v, ok := s.storeGet(key); ok {
		endLookup()
		tr.Note("store-hit")
		// Promote the disk hit so repeats stay in memory. Read-through
		// does not write back: the record is already durable.
		s.cache.Put(key, v)
		return v, nil
	}
	endLookup()

	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		f.waiters++
		s.mu.Unlock()
		s.Metrics.DedupJoins.Inc()
		tr.Note("join-inflight")
		return s.wait(ctx, f)
	}
	// Re-check the cache with the in-flight map locked: a flight that
	// finished between the fast-path lookup and here published its result
	// to the cache *before* deregistering, so one of the two checks always
	// sees it and no identical simulation ever runs twice.
	if v, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		tr.Note("cache-hit")
		s.Metrics.CacheHits.Inc()
		return v, nil
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	fctx, cancel := context.WithTimeout(context.Background(), timeout)
	// The leader's trace rides on the detached context so the computation
	// keeps reporting spans (and a late flight dump) into it even after
	// the leader's own HTTP context is gone.
	fctx = obs.WithTrace(fctx, tr)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	enqueued := time.Now()
	job := func() {
		tr.AddSpan("queue-wait", enqueued, time.Now())
		f.val, f.err = compute(fctx)
		cancel() // release the deadline timer; the flight is decided
		if f.err == nil {
			s.cache.Put(key, f.val)
		}
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(f.done)
		if f.err == nil {
			// Write-behind: waiters are already released via f.done; the
			// worker persists the record before taking its next job, so
			// Close (which drains workers) doubles as a store flush
			// barrier and in-flight dedup guarantees one disk write per
			// key even under a stampede.
			s.storePut(key, f.val)
		}
	}
	// Sample the queue occupancy seen by this submission (including the
	// full-queue case below) so load headroom is visible between scrapes.
	s.Metrics.QueueDepthSamples.Observe(float64(len(s.jobs)))
	select {
	case s.jobs <- job:
		s.inflight[key] = f
		s.mu.Unlock()
		s.Metrics.QueueDepth.Set(int64(len(s.jobs)))
	default:
		s.mu.Unlock()
		cancel()
		s.Metrics.QueueRejects.Inc()
		return nil, ErrQueueFull
	}
	return s.wait(ctx, f)
}

// wait blocks until the flight completes or ctx is done, whichever is
// first. A waiter abandoning a flight does not cancel it for the others;
// when the *last* waiter leaves an unfinished flight, its detached context
// is cancelled so abandoned simulations stop consuming workers.
func (s *Service) wait(ctx context.Context, f *flight) (*cached, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		s.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		s.mu.Unlock()
		if last {
			select {
			case <-f.done:
				// The flight finished while this waiter was leaving; its
				// result is already cached. Nothing to cancel.
			default:
				f.cancel()
			}
		}
		return nil, ctx.Err()
	}
}
