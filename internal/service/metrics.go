package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by a delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets, plus a
// running sum and count, in the style of a Prometheus histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing
	counts []uint64  // per-bucket (non-cumulative); len(bounds)+1 with +Inf
	sum    float64
	count  uint64
}

// newHistogram returns a histogram over the given upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// defLatencyBounds covers 100µs .. ~100s in roughly 4x steps, in seconds.
var defLatencyBounds = []float64{0.0001, 0.0005, 0.002, 0.01, 0.05, 0.25, 1, 5, 25, 100}

// defEventBounds covers the events-per-run range from a trivial grid (a few
// hundred events) to the largest sweeps, in 1-3-10 steps.
var defEventBounds = []float64{100, 300, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7}

// defDepthBounds covers queue occupancy in powers of two up to the default
// queue capacity.
var defDepthBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// defRunSecondsBounds covers a single simulation run's wall time, from a
// sub-millisecond toy grid to a deadline-bounded multi-minute run, in
// roughly 4x steps (seconds).
var defRunSecondsBounds = []float64{0.0002, 0.001, 0.004, 0.016, 0.064, 0.25, 1, 4, 16, 64}

// NewHistogram returns a histogram over the given upper bounds, for
// registries (the jobs manager's, the cluster router's) that extend the
// service's metric surface with their own families.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Metrics is the service's metric registry. All fields are safe for
// concurrent use; the zero value is not usable, construct with NewMetrics.
type Metrics struct {
	// Requests counts HTTP requests per endpoint.
	Requests map[string]*Counter
	// Latency tracks per-endpoint request latency in seconds.
	Latency map[string]*Histogram
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits, CacheMisses *Counter
	// DedupJoins counts requests coalesced onto an in-flight computation.
	DedupJoins *Counter
	// QueueRejects counts submissions rejected because the queue was full.
	QueueRejects *Counter
	// DeadlineExceeded counts requests that missed their deadline.
	DeadlineExceeded *Counter
	// SimRuns counts simulations actually executed (post-cache, post-dedup).
	SimRuns *Counter
	// SimEvents accumulates sim.Engine.Executed over all runs, including
	// the partial event counts of cancelled runs.
	SimEvents *Counter
	// ArmTriggered counts runs whose outcome tripped the arm policy;
	// ArmReruns counts the deterministic recorder-armed re-runs it caused
	// (a pre-armed run trips without a re-run, as can an expired deadline).
	ArmTriggered, ArmReruns *Counter
	// StoreHits counts memory-cache misses answered from the durable
	// store; StoreWrites counts records persisted; StoreErrors counts
	// failed store reads/writes (corrupt records quarantined at read
	// time, IO failures) — each error degrades to a recompute, never an
	// outage.
	StoreHits, StoreWrites, StoreErrors *Counter
	// QueueDepth and InFlight are instantaneous occupancy gauges;
	// StoreBytes tracks the on-disk size of live store records.
	QueueDepth, InFlight, StoreBytes *Gauge
	// SimRunEvents distributes the executed-event count of each completed
	// computation (a sweep counts as one observation of its total), so the
	// workload mix — toy grids vs. large sweeps — is visible per scrape.
	SimRunEvents *Histogram
	// SimRunSeconds distributes the wall time of each individual
	// simulation run — one observation per run even inside a /v1/spec
	// sweep, where per-run timing was previously invisible behind the
	// sweep's aggregate latency. Sweep-job units land here too, since
	// each unit executes as its own run.
	SimRunSeconds *Histogram
	// QueueDepthSamples distributes the queue occupancy observed at each
	// submission, which, unlike the instantaneous QueueDepth gauge,
	// survives between scrapes and shows how close the service runs to the
	// 429 threshold.
	QueueDepthSamples *Histogram
	// EventsPerSec is the simulation throughput (events per second of
	// wall time) as an exponentially weighted moving average over roughly
	// the last minute, decaying toward zero across idle scrapes. It is a
	// health signal for the simulation hot loop: a sustained drop flags a
	// performance regression even while request latencies hide it behind
	// caching.
	EventsPerSec *obs.RateEWMA

	endpoints []string

	// extraMu guards extra, the registered auxiliary writers appended to
	// WriteText output (the jobs manager's sweep families ride along on
	// the same /metrics scrape).
	extraMu sync.Mutex
	extra   []func(io.Writer)
}

// NewMetrics returns an empty registry for the given endpoint labels.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{
		Requests:          make(map[string]*Counter, len(endpoints)),
		Latency:           make(map[string]*Histogram, len(endpoints)),
		CacheHits:         &Counter{},
		CacheMisses:       &Counter{},
		DedupJoins:        &Counter{},
		QueueRejects:      &Counter{},
		DeadlineExceeded:  &Counter{},
		SimRuns:           &Counter{},
		SimEvents:         &Counter{},
		ArmTriggered:      &Counter{},
		ArmReruns:         &Counter{},
		StoreHits:         &Counter{},
		StoreWrites:       &Counter{},
		StoreErrors:       &Counter{},
		QueueDepth:        &Gauge{},
		InFlight:          &Gauge{},
		StoreBytes:        &Gauge{},
		SimRunEvents:      newHistogram(defEventBounds),
		SimRunSeconds:     newHistogram(defRunSecondsBounds),
		QueueDepthSamples: newHistogram(defDepthBounds),
		EventsPerSec:      obs.NewRateEWMA(0),
		endpoints:         append([]string(nil), endpoints...),
	}
	sort.Strings(m.endpoints)
	for _, ep := range m.endpoints {
		m.Requests[ep] = &Counter{}
		m.Latency[ep] = newHistogram(defLatencyBounds)
	}
	return m
}

// RecordThroughput feeds EventsPerSec from an executed-event count and the
// WALL time that produced it — for sweeps the sweep's wall clock, not the
// sum of per-run elapsed times, and for wedge-parallel runs the run's wall
// clock, not any per-worker accounting. The gauge therefore reads as the
// process's aggregate simulation throughput: N workers (sweep goroutines
// or wedge workers) each executing at rate r report ≈ N·r, matching what
// capacity planning actually needs. (It previously summed per-run elapsed
// times, which divided away sweep parallelism and would have reported one
// wedge worker's share of a parallel run.) Zero-event or sub-resolution
// measurements are dropped rather than recorded as zero.
func (m *Metrics) RecordThroughput(events uint64, elapsed time.Duration) {
	m.EventsPerSec.Observe(events, elapsed)
}

// metricHeader emits the # HELP and # TYPE comment lines for one family.
func metricHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeCounter emits one unlabeled counter family.
func writeCounter(w io.Writer, name, help string, c *Counter) {
	metricHeader(w, name, "counter", help)
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// writeGauge emits one unlabeled gauge family.
func writeGauge(w io.Writer, name, help string, v int64) {
	metricHeader(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// writeHistogram emits one histogram's series with an optional fixed label.
// Prometheus requires the cumulative bucket counts, a "+Inf" bucket equal to
// _count, and the le label last in each bucket line; label order within a
// family must not drift between scrapes, which is guaranteed here by
// constructing each line from the same format string.
func writeHistogram(w io.Writer, name, label, value string, h *Histogram) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sel := ""
	if label != "" {
		sel = fmt.Sprintf("%s=%q,", label, value)
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sel, trimFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sel, h.count)
	if label != "" {
		sel = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sel, h.sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, sel, h.count)
}

// WriteText renders the registry in the Prometheus text exposition format:
// every family is announced with # HELP and # TYPE lines, counters carry the
// _total suffix, and histogram buckets are cumulative with a trailing +Inf.
// The output is stable across scrapes (fixed family order, fixed label
// order) so diff-based scrape tests stay meaningful.
func (m *Metrics) WriteText(w io.Writer) {
	metricHeader(w, "hexd_requests_total", "counter", "HTTP requests served, by endpoint.")
	for _, ep := range m.endpoints {
		fmt.Fprintf(w, "hexd_requests_total{endpoint=%q} %d\n", ep, m.Requests[ep].Value())
	}
	writeCounter(w, "hexd_cache_hits_total", "Result-cache lookups answered from memory.", m.CacheHits)
	writeCounter(w, "hexd_cache_misses_total", "Result-cache lookups that missed memory.", m.CacheMisses)
	writeCounter(w, "hexd_dedup_joins_total", "Requests coalesced onto an in-flight computation.", m.DedupJoins)
	writeCounter(w, "hexd_queue_rejects_total", "Submissions rejected because the job queue was full.", m.QueueRejects)
	writeCounter(w, "hexd_deadline_exceeded_total", "Requests that missed their deadline.", m.DeadlineExceeded)
	writeCounter(w, "hexd_sim_runs_total", "Simulations actually executed (post-cache, post-dedup).", m.SimRuns)
	writeCounter(w, "hexd_sim_events_total", "Simulation events executed, including cancelled runs.", m.SimEvents)
	writeCounter(w, "hexd_arm_triggered_total", "Runs whose outcome tripped the flight-recorder arm policy.", m.ArmTriggered)
	writeCounter(w, "hexd_arm_reruns_total", "Recorder-armed deterministic re-runs caused by the arm policy.", m.ArmReruns)
	writeGauge(w, "hexd_events_per_sec", "Simulation hot-loop throughput, EWMA over ~1 minute.", m.EventsPerSec.Value())
	writeCounter(w, "hexd_store_hits_total", "Cache misses answered from the durable store.", m.StoreHits)
	writeCounter(w, "hexd_store_writes_total", "Records persisted to the durable store.", m.StoreWrites)
	writeCounter(w, "hexd_store_errors_total", "Failed durable-store reads or writes.", m.StoreErrors)
	writeGauge(w, "hexd_store_bytes", "On-disk size of live store records.", m.StoreBytes.Value())
	writeGauge(w, "hexd_queue_depth", "Jobs currently queued.", m.QueueDepth.Value())
	writeGauge(w, "hexd_in_flight", "Computations currently executing.", m.InFlight.Value())
	metricHeader(w, "hexd_request_seconds", "histogram", "Request latency in seconds, by endpoint.")
	for _, ep := range m.endpoints {
		writeHistogram(w, "hexd_request_seconds", "endpoint", ep, m.Latency[ep])
	}
	metricHeader(w, "hexd_sim_run_events", "histogram", "Executed events per completed computation.")
	writeHistogram(w, "hexd_sim_run_events", "", "", m.SimRunEvents)
	metricHeader(w, "hexd_sim_run_seconds", "histogram", "Wall time of each individual simulation run, including runs inside sweeps.")
	writeHistogram(w, "hexd_sim_run_seconds", "", "", m.SimRunSeconds)
	metricHeader(w, "hexd_queue_depth_samples", "histogram", "Queue occupancy observed at each submission.")
	writeHistogram(w, "hexd_queue_depth_samples", "", "", m.QueueDepthSamples)
	m.extraMu.Lock()
	extra := make([]func(io.Writer), len(m.extra))
	copy(extra, m.extra)
	m.extraMu.Unlock()
	for _, f := range extra {
		f(w)
	}
}

// AddExtra registers an auxiliary metric writer appended after the
// service's own families on every scrape. Writers must emit well-formed
// exposition text (# HELP/# TYPE per family, stable order).
func (m *Metrics) AddExtra(f func(io.Writer)) {
	m.extraMu.Lock()
	defer m.extraMu.Unlock()
	m.extra = append(m.extra, f)
}

// trimFloat formats a bucket bound without trailing zeros.
func trimFloat(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
