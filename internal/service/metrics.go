package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by a delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets, plus a
// running sum and count, in the style of a Prometheus histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing
	counts []uint64  // per-bucket (non-cumulative); len(bounds)+1 with +Inf
	sum    float64
	count  uint64
}

// newHistogram returns a histogram over the given upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// defLatencyBounds covers 100µs .. ~100s in roughly 4x steps, in seconds.
var defLatencyBounds = []float64{0.0001, 0.0005, 0.002, 0.01, 0.05, 0.25, 1, 5, 25, 100}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Metrics is the service's metric registry. All fields are safe for
// concurrent use; the zero value is not usable, construct with NewMetrics.
type Metrics struct {
	// Requests counts HTTP requests per endpoint.
	Requests map[string]*Counter
	// Latency tracks per-endpoint request latency in seconds.
	Latency map[string]*Histogram
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits, CacheMisses *Counter
	// DedupJoins counts requests coalesced onto an in-flight computation.
	DedupJoins *Counter
	// QueueRejects counts submissions rejected because the queue was full.
	QueueRejects *Counter
	// DeadlineExceeded counts requests that missed their deadline.
	DeadlineExceeded *Counter
	// SimRuns counts simulations actually executed (post-cache, post-dedup).
	SimRuns *Counter
	// SimEvents accumulates sim.Engine.Executed over all runs, including
	// the partial event counts of cancelled runs.
	SimEvents *Counter
	// StoreHits counts memory-cache misses answered from the durable
	// store; StoreWrites counts records persisted; StoreErrors counts
	// failed store reads/writes (corrupt records quarantined at read
	// time, IO failures) — each error degrades to a recompute, never an
	// outage.
	StoreHits, StoreWrites, StoreErrors *Counter
	// QueueDepth and InFlight are instantaneous occupancy gauges;
	// StoreBytes tracks the on-disk size of live store records.
	QueueDepth, InFlight, StoreBytes *Gauge
	// EventsPerSec is the simulation throughput (events per second of
	// wall time) of the most recent completed computation — a sweep
	// reports the aggregate across its runs. It is a health signal for
	// the simulation hot loop: a sustained drop flags a performance
	// regression even while request latencies hide it behind caching.
	EventsPerSec *Gauge

	endpoints []string
}

// NewMetrics returns an empty registry for the given endpoint labels.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{
		Requests:         make(map[string]*Counter, len(endpoints)),
		Latency:          make(map[string]*Histogram, len(endpoints)),
		CacheHits:        &Counter{},
		CacheMisses:      &Counter{},
		DedupJoins:       &Counter{},
		QueueRejects:     &Counter{},
		DeadlineExceeded: &Counter{},
		SimRuns:          &Counter{},
		SimEvents:        &Counter{},
		StoreHits:        &Counter{},
		StoreWrites:      &Counter{},
		StoreErrors:      &Counter{},
		QueueDepth:       &Gauge{},
		InFlight:         &Gauge{},
		StoreBytes:       &Gauge{},
		EventsPerSec:     &Gauge{},
		endpoints:        append([]string(nil), endpoints...),
	}
	sort.Strings(m.endpoints)
	for _, ep := range m.endpoints {
		m.Requests[ep] = &Counter{}
		m.Latency[ep] = newHistogram(defLatencyBounds)
	}
	return m
}

// RecordThroughput sets EventsPerSec from an executed-event count and the
// simulation wall time that produced it. For sweeps, pass the sum of the
// per-run elapsed times rather than the sweep's wall time, so the gauge
// reads as per-worker hot-loop throughput regardless of parallelism.
// Zero-event or sub-resolution measurements are dropped rather than
// recorded as zero.
func (m *Metrics) RecordThroughput(events uint64, elapsed time.Duration) {
	if events == 0 || elapsed <= 0 {
		return
	}
	m.EventsPerSec.Set(int64(float64(events) / elapsed.Seconds()))
}

// WriteText renders the registry in the Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer) {
	for _, ep := range m.endpoints {
		fmt.Fprintf(w, "hexd_requests_total{endpoint=%q} %d\n", ep, m.Requests[ep].Value())
	}
	fmt.Fprintf(w, "hexd_cache_hits_total %d\n", m.CacheHits.Value())
	fmt.Fprintf(w, "hexd_cache_misses_total %d\n", m.CacheMisses.Value())
	fmt.Fprintf(w, "hexd_dedup_joins_total %d\n", m.DedupJoins.Value())
	fmt.Fprintf(w, "hexd_queue_rejects_total %d\n", m.QueueRejects.Value())
	fmt.Fprintf(w, "hexd_deadline_exceeded_total %d\n", m.DeadlineExceeded.Value())
	fmt.Fprintf(w, "hexd_sim_runs_total %d\n", m.SimRuns.Value())
	fmt.Fprintf(w, "hexd_sim_events_total %d\n", m.SimEvents.Value())
	fmt.Fprintf(w, "hexd_events_per_sec %d\n", m.EventsPerSec.Value())
	fmt.Fprintf(w, "hexd_store_hits_total %d\n", m.StoreHits.Value())
	fmt.Fprintf(w, "hexd_store_writes_total %d\n", m.StoreWrites.Value())
	fmt.Fprintf(w, "hexd_store_errors_total %d\n", m.StoreErrors.Value())
	fmt.Fprintf(w, "hexd_store_bytes %d\n", m.StoreBytes.Value())
	fmt.Fprintf(w, "hexd_queue_depth %d\n", m.QueueDepth.Value())
	fmt.Fprintf(w, "hexd_in_flight %d\n", m.InFlight.Value())
	for _, ep := range m.endpoints {
		h := m.Latency[ep]
		h.mu.Lock()
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "hexd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, trimFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)]
		fmt.Fprintf(w, "hexd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "hexd_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "hexd_request_seconds_count{endpoint=%q} %d\n", ep, h.count)
		h.mu.Unlock()
	}
}

// trimFloat formats a bucket bound without trailing zeros.
func trimFloat(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
