package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/store"
)

// batchReqs builds a campaign-shaped batch: one spec, k seeds.
func batchReqs(t *testing.T, opts Options, k int, output string) []RunRequest {
	t.Helper()
	reqs := make([]RunRequest, k)
	for i := range reqs {
		reqs[i] = RunRequest{L: 10, W: 6, Seed: uint64(100 + i), Output: output}
		if err := reqs[i].Normalize(opts); err != nil {
			t.Fatal(err)
		}
	}
	return reqs
}

// TestRunUnitsMatchesRunUnit is the batching differential test: the
// batched path must produce, for every unit, a body byte-identical to
// the per-run RunUnit path on an independent service. Batching amortizes
// fixed costs; it must never touch the numbers.
func TestRunUnitsMatchesRunUnit(t *testing.T) {
	const k = 12
	single := newTestService(t, Options{Workers: 2, CacheEntries: 1})
	want := make([][]byte, k)
	for i, r := range batchReqs(t, single.Options(), k, "stats") {
		v, err := single.RunUnit(context.Background(), 30*time.Second, r)
		if err != nil {
			t.Fatalf("single unit %d: %v", i, err)
		}
		want[i] = v.Body
	}

	batched := newTestService(t, Options{Workers: 2, CacheEntries: 1})
	vals, errs := batched.RunUnits(context.Background(), 30*time.Second, batchReqs(t, batched.Options(), k, "stats"))
	for i := range vals {
		if errs[i] != nil {
			t.Fatalf("batched unit %d: %v", i, errs[i])
		}
		if !bytes.Equal(vals[i].Body, want[i]) {
			t.Fatalf("unit %d: batched body differs from per-run body", i)
		}
	}
}

// TestRunUnitsAggMatchesRunUnit repeats the differential for aggregate
// output. ElapsedNs is a wall-clock measurement and legitimately varies
// between executions, so the comparison decodes both records and pins
// every simulation-derived field instead of raw bytes.
func TestRunUnitsAggMatchesRunUnit(t *testing.T) {
	const k = 8
	single := newTestService(t, Options{Workers: 2, CacheEntries: 1})
	want := make([]*store.Aggregate, k)
	for i, r := range batchReqs(t, single.Options(), k, "agg") {
		v, err := single.RunUnit(context.Background(), 30*time.Second, r)
		if err != nil {
			t.Fatalf("single unit %d: %v", i, err)
		}
		if want[i], err = store.DecodeAggregate(v.Body); err != nil {
			t.Fatal(err)
		}
	}

	batched := newTestService(t, Options{Workers: 2, CacheEntries: 1})
	vals, errs := batched.RunUnits(context.Background(), 30*time.Second, batchReqs(t, batched.Options(), k, "agg"))
	for i := range vals {
		if errs[i] != nil {
			t.Fatalf("batched unit %d: %v", i, errs[i])
		}
		got, err := store.DecodeAggregate(vals[i].Body)
		if err != nil {
			t.Fatal(err)
		}
		got.ElapsedNs = want[i].ElapsedNs
		if *got != *want[i] {
			t.Fatalf("unit %d: batched aggregate %+v differs from per-run %+v", i, got, want[i])
		}
	}
}

// TestRunUnitsGroupCommit pins the amortization contract: one batch of k
// fresh units costs one group commit (two fsyncs — segment + directory)
// instead of 2k, and every unit is individually readable from the store
// under its canonical key afterwards.
func TestRunUnitsGroupCommit(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Options{Workers: 2, CacheEntries: 1, Store: st})
	const k = 16
	reqs := batchReqs(t, s.Options(), k, "agg")
	vals, errs := s.RunUnits(context.Background(), 30*time.Second, reqs)
	for i := range vals {
		if errs[i] != nil {
			t.Fatalf("unit %d: %v", i, errs[i])
		}
	}
	if got := st.Fsyncs(); got > 2 {
		t.Fatalf("batch of %d units cost %d fsyncs, want <= 2", k, got)
	}
	if got := s.Metrics.StoreWrites.Value(); got != k {
		t.Fatalf("StoreWrites = %d, want %d", got, k)
	}
	for i, r := range reqs {
		e, ok, err := st.Get(r.CanonicalKey())
		if err != nil || !ok {
			t.Fatalf("unit %d not durable: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(e.Body, vals[i].Body) {
			t.Fatalf("unit %d: stored body differs from returned body", i)
		}
	}

	// A second identical batch answers from the memory cache (or store):
	// zero fresh units, zero additional fsyncs.
	before := st.Fsyncs()
	if _, errs := s.RunUnits(context.Background(), 30*time.Second, reqs); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if got := st.Fsyncs(); got != before {
		t.Fatalf("repeat batch cost %d extra fsyncs", got-before)
	}
}

// TestRunUnitsEmptyAndShutdown covers the edges: an empty batch is a
// no-op, and a batch after Close fails every unit with ErrShuttingDown.
func TestRunUnitsEmptyAndShutdown(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	vals, errs := s.RunUnits(context.Background(), time.Second, nil)
	if len(vals) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch returned %d vals, %d errs", len(vals), len(errs))
	}
	reqs := batchReqs(t, s.Options(), 2, "stats")
	s.Close()
	_, errs = s.RunUnits(context.Background(), time.Second, reqs)
	for i, err := range errs {
		if err != ErrShuttingDown {
			t.Fatalf("unit %d after Close: %v, want ErrShuttingDown", i, err)
		}
	}
}
