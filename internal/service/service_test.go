package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIdenticalRequestsRunOnce fires N identical requests at
// once and proves exactly one simulation executes: the first request
// computes, the rest either join the in-flight computation or hit the
// cache, and every response body is identical.
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 16
	// A mid-sized grid keeps the computation in flight long enough that
	// most requests coalesce rather than hit the finished cache entry;
	// either path must avoid a second simulation.
	const body = `{"l":120,"w":30,"scenario":"udplus","seed":11}`

	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies = make(map[string]int)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status = %d (body %q)", resp.StatusCode, b)
				return
			}
			mu.Lock()
			bodies[b]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if got := s.Metrics.SimRuns.Value(); got != 1 {
		t.Fatalf("sim runs = %d, want exactly 1 for %d identical requests", got, n)
	}
	if len(bodies) != 1 {
		t.Fatalf("got %d distinct response bodies, want 1", len(bodies))
	}
	joined := s.Metrics.DedupJoins.Value() + s.Metrics.CacheHits.Value()
	if joined != n-1 {
		t.Fatalf("dedup joins + cache hits = %d, want %d", joined, n-1)
	}
}

// TestDeadlineStopsEngineMidRun sends a request whose deadline expires
// while the simulation is running and checks (a) the client gets 504 and
// (b) the engine actually stopped early: the events metric stays strictly
// below the event count of the same request run to completion.
func TestDeadlineStopsEngineMidRun(t *testing.T) {
	// A ~100k-node grid needs several hundred thousand events — far more
	// than any machine simulates in 1ms — so the deadline reliably lands
	// mid-run.
	const body = `{"l":999,"w":100,"seed":3,"timeout_ms":1}`
	const fullBody = `{"l":999,"w":100,"seed":3}`

	// Baseline: same simulation, no deadline pressure.
	base := newTestService(t, Options{Workers: 2})
	baseSrv := httptest.NewServer(base.Handler())
	defer baseSrv.Close()
	doRun(t, baseSrv, fullBody, http.StatusOK)
	fullEvents := base.Metrics.SimEvents.Value()
	if fullEvents == 0 {
		t.Fatal("baseline run reported zero events")
	}

	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %q)", resp.StatusCode, readAll(t, resp))
	}
	if got := s.Metrics.DeadlineExceeded.Value(); got != 1 {
		t.Fatalf("deadline metric = %d, want 1", got)
	}
	// The worker may still be tearing the run down when the 504 lands;
	// wait for it to finish recording before reading the counter.
	waitFor(t, func() bool { return s.Metrics.InFlight.Value() == 0 })
	partial := s.Metrics.SimEvents.Value()
	if partial >= fullEvents {
		t.Fatalf("cancelled run recorded %d events, baseline %d; engine did not stop early",
			partial, fullEvents)
	}
}

// TestGracefulShutdownUnderLoad closes the service while requests are in
// flight: queued work finishes and is answered, later submissions get
// 503, and nothing panics or leaks.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	s := New(Options{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 6
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct seeds so the requests do not coalesce.
			body := fmt.Sprintf(`{"l":60,"w":20,"seed":%d}`, i+1)
			resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			readAll(t, resp)
			codes <- resp.StatusCode
		}()
	}

	// Let the load reach the pool (or, on a fast machine, already pass
	// through it), then drain.
	waitFor(t, func() bool {
		return s.Metrics.InFlight.Value() > 0 || s.Metrics.QueueDepth.Value() > 0 ||
			s.Metrics.SimRuns.Value() > 0
	})
	s.Close()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("got status %d during drain, want 200 or 503", code)
		}
	}

	// After the drain: new work refused, health reports draining.
	doRun(t, srv, `{"l":5,"w":8}`, http.StatusServiceUnavailable)
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close = %d, want 503", resp.StatusCode)
	}
	// Close is idempotent.
	s.Close()
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
