package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	return s
}

// TestHandlerValidation drives the handlers through malformed and
// out-of-policy requests.
func TestHandlerValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 2, MaxNodes: 5000, MaxRuns: 10})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		wantSub  string // substring of the response body
	}{
		{"run bad json", "POST", "/v1/run", `{"l":`, http.StatusBadRequest, "invalid JSON"},
		{"run unknown field", "POST", "/v1/run", `{"length":50}`, http.StatusBadRequest, "unknown field"},
		{"run unknown scenario", "POST", "/v1/run", `{"scenario":"v"}`, http.StatusBadRequest, "unknown scenario"},
		{"run bad output", "POST", "/v1/run", `{"output":"pdf"}`, http.StatusBadRequest, "output must be one of"},
		{"run bad fault type", "POST", "/v1/run", `{"faults":1,"fault_type":"sleepy"}`, http.StatusBadRequest, "unknown fault type"},
		{"run grid too large", "POST", "/v1/run", `{"l":1000,"w":100}`, http.StatusBadRequest, "exceeds the limit"},
		{"run negative dims", "POST", "/v1/run", `{"l":-3,"w":5}`, http.StatusBadRequest, "must be positive"},
		{"run infeasible faults", "POST", "/v1/run", `{"l":10,"w":8,"faults":50}`, http.StatusBadRequest, ""},
		{"run wrong method", "GET", "/v1/run", "", http.StatusMethodNotAllowed, "POST only"},
		{"spec bad json", "POST", "/v1/spec", `no`, http.StatusBadRequest, "invalid JSON"},
		{"spec too many runs", "POST", "/v1/spec", `{"runs":100}`, http.StatusBadRequest, "runs must be in"},
		{"spec negative hops", "POST", "/v1/spec", `{"runs":2,"exclude_hops":-1}`, http.StatusBadRequest, "exclude_hops"},
		{"spec wrong method", "GET", "/v1/spec", "", http.StatusMethodNotAllowed, "POST only"},
		{"run ok small", "POST", "/v1/run", `{"l":5,"w":8,"seed":3}`, http.StatusOK, `"triggered"`},
		{"spec ok small", "POST", "/v1/spec", `{"l":5,"w":8,"runs":2}`, http.StatusOK, `"intra_skew_ns"`},
		{"run csv", "POST", "/v1/run", `{"l":5,"w":8,"output":"csv"}`, http.StatusOK, "layer,"},
		{"run svg", "POST", "/v1/run", `{"l":5,"w":8,"output":"svg"}`, http.StatusOK, "<svg"},
	}
	client := srv.Client()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body := readAll(t, resp)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tc.wantCode, body)
			}
			if tc.wantSub != "" && !strings.Contains(body, tc.wantSub) {
				t.Fatalf("body %q does not contain %q", body, tc.wantSub)
			}
		})
	}
}

// TestHealthzAndMetrics checks the observability endpoints round-trip.
func TestHealthzAndMetrics(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body: %v, %v", health, err)
	}

	doRun(t, srv, `{"l":5,"w":8}`, http.StatusOK)
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics := readAll(t, mresp)
	for _, want := range []string{
		`hexd_requests_total{endpoint="run"} 1`,
		"hexd_sim_runs_total 1",
		"hexd_cache_misses_total 1",
		"hexd_request_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q:\n%s", want, metrics)
		}
	}
}

// TestCacheHitServesStoredBody verifies that an identical request replays
// the cached body without a second simulation.
func TestCacheHitServesStoredBody(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	first := doRun(t, srv, `{"l":6,"w":8,"seed":9}`, http.StatusOK)
	// A scenario alias must canonicalize onto the same key.
	second := doRun(t, srv, `{"l":6,"w":8,"seed":9,"scenario":"i"}`, http.StatusOK)
	if first != second {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", first, second)
	}
	if got := s.Metrics.SimRuns.Value(); got != 1 {
		t.Fatalf("sim runs = %d, want 1", got)
	}
	if got := s.Metrics.CacheHits.Value(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

// TestQueueFullRejects fills the workers and the queue with blocker jobs
// and checks that the next request is shed with 429 + Retry-After.
func TestQueueFullRejects(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// One blocker occupies the single worker, one fills the queue slot.
	release := make(chan struct{})
	started := make(chan struct{})
	s.jobs <- func() { close(started); <-release }
	<-started
	s.jobs <- func() {}
	defer close(release)

	resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(`{"l":5,"w":8}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.Metrics.QueueRejects.Value(); got != 1 {
		t.Fatalf("queue rejects = %d, want 1", got)
	}
}

func doRun(t *testing.T, srv *httptest.Server, body string, wantCode int) string {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b := readAll(t, resp)
	if resp.StatusCode != wantCode {
		t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, wantCode, b)
	}
	return b
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
