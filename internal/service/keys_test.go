package service

import "testing"

// TestCanonicalKeysPinned pins the canonical key derivation byte-for-byte
// against values recorded before the canonicalize/coalesce/execute split
// (PR 6). These keys are load-bearing far beyond the in-memory cache:
// they name durable store records on disk and they are the rendezvous
// partitioning key of the cluster router, so a drift would silently
// orphan every stored result and re-home every key in a mixed-version
// fleet. If this test fails, the change is wrong — do not re-record the
// constants.
func TestCanonicalKeysPinned(t *testing.T) {
	opts := Options{}.Resolved()

	runCases := []struct {
		name string
		req  RunRequest
		want string
	}{
		{"defaults", RunRequest{}, "run:3c54eddf99c8bae2b58c2824bede1a73"},
		{"udplus", RunRequest{L: 120, W: 30, Scenario: "udplus", Seed: 11},
			"run:e59156f785ac3302b1af258b29886ece"},
		{"faults", RunRequest{L: 50, W: 20, Scenario: "iii", Faults: 2, Seed: 7},
			"run:444df042920e6bda5159db14d6fbe859"},
		{"failsilent-plus-csv", RunRequest{L: 10, W: 4, Scenario: "ramp", Faults: 1,
			FaultType: "fail-silent", Seed: 42, HexPlus: true, Output: "csv"},
			"run:add194ec7d9920fe965607d616fc53dd"},
		{"svg", RunRequest{L: 33, W: 9, Scenario: "ii", Seed: 5, Output: "svg"},
			"run:b2b83e2b7c7de959df9bd1aab5b70f0c"},
	}
	for _, tc := range runCases {
		req := tc.req
		if err := req.Normalize(opts); err != nil {
			t.Fatalf("%s: Normalize: %v", tc.name, err)
		}
		if got := req.CanonicalKey(); got != tc.want {
			t.Errorf("%s: key = %s, want %s", tc.name, got, tc.want)
		}
	}

	specCases := []struct {
		name string
		req  SpecRequest
		want string
	}{
		{"defaults", SpecRequest{}, "spec:d612bfea063dcaa50c53f51348958b0e"},
		{"ramp", SpecRequest{L: 50, W: 20, Scenario: "ramp", Runs: 250},
			"spec:2df91777248b7547555921a8490c94c6"},
		{"kitchen-sink", SpecRequest{L: 20, W: 8, Scenario: "udminus", Faults: 3,
			FaultType: "byzantine", Runs: 16, Seed: 9, HexPlus: true, ExcludeHops: 2},
			"spec:640cbe0a4f36a689c47807e92bd72b45"},
	}
	for _, tc := range specCases {
		req := tc.req
		if err := req.Normalize(opts); err != nil {
			t.Fatalf("%s: Normalize: %v", tc.name, err)
		}
		if got := req.CanonicalKey(); got != tc.want {
			t.Errorf("%s: key = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestCanonicalKeyAliasesCollapse pins that scenario aliases and the
// implicit fault-type default produce the same canonical key as their
// explicit spellings — the property the fleet relies on to dedup
// differently-spelled identical requests onto one shard.
func TestCanonicalKeyAliasesCollapse(t *testing.T) {
	opts := Options{}.Resolved()
	key := func(r RunRequest) string {
		t.Helper()
		if err := r.Normalize(opts); err != nil {
			t.Fatal(err)
		}
		return r.CanonicalKey()
	}
	if a, b := key(RunRequest{Scenario: "iii"}), key(RunRequest{Scenario: "udplus"}); a != b {
		t.Errorf("alias iii vs udplus: %s != %s", a, b)
	}
	if a, b := key(RunRequest{Faults: 2}), key(RunRequest{Faults: 2, FaultType: "byzantine"}); a != b {
		t.Errorf("implicit vs explicit byzantine: %s != %s", a, b)
	}
	if a, b := key(RunRequest{}), key(RunRequest{FaultType: "correct"}); a != b {
		t.Errorf("implicit vs explicit correct: %s != %s", a, b)
	}
	if a, b := key(RunRequest{}), key(RunRequest{TimeoutMs: 5000}); a != b {
		t.Errorf("deadline must not affect the key: %s != %s", a, b)
	}
}
