package service

import "repro/internal/store"

// This file adapts internal/store into the service's second cache tier.
// Lookup order is memory LRU → disk store → compute; completed
// computations are persisted write-behind by the worker that ran them.
// Store failures are never fatal to a request: a bad read quarantines
// the record and falls through to a recompute, a bad write only costs
// durability of that one entry. Both are counted in StoreErrors.

// storeGet probes the durable tier. ok reports a valid disk hit.
func (s *Service) storeGet(key string) (*cached, bool) {
	if s.store == nil {
		return nil, false
	}
	e, ok, err := s.store.Get(key)
	if err != nil {
		// Corrupt or unreadable record: quarantined by the store; the
		// caller recomputes.
		s.Metrics.StoreErrors.Inc()
		s.Metrics.StoreBytes.Set(s.store.Bytes())
	}
	if !ok {
		return nil, false
	}
	s.Metrics.StoreHits.Inc()
	return &cached{body: e.Body, contentType: e.ContentType, events: e.Events}, true
}

// storePut persists a finished result to the durable tier.
func (s *Service) storePut(key string, v *cached) {
	if s.store == nil {
		return
	}
	err := s.store.Put(store.Entry{
		Key:         key,
		ContentType: v.contentType,
		Events:      v.events,
		Body:        v.body,
	})
	if err != nil {
		s.Metrics.StoreErrors.Inc()
	} else {
		s.Metrics.StoreWrites.Inc()
	}
	s.Metrics.StoreBytes.Set(s.store.Bytes())
}
