package service

import (
	"context"

	"repro/internal/coalesce"
	"repro/internal/obs"
	"repro/internal/store"
)

// This file adapts internal/store into the service's second cache tier,
// wired into the coalescer as its SecondTier/Persist hooks. Lookup order
// is memory LRU → disk store → compute; completed computations are
// persisted write-behind by the worker that ran them, so draining the
// pool doubles as a store flush barrier. Store failures are never fatal
// to a request: a bad read quarantines the record and falls through to a
// recompute, a bad write only costs durability of that one entry. Both
// are counted in StoreErrors.

// storeGet probes the durable tier. ok reports a valid disk hit.
func (s *Service) storeGet(ctx context.Context, key string) (*coalesce.Value, bool) {
	if s.store == nil {
		return nil, false
	}
	e, ok, err := s.store.Get(key)
	if err != nil {
		// Corrupt or unreadable record: quarantined by the store; the
		// caller recomputes.
		s.Metrics.StoreErrors.Inc()
		s.Metrics.StoreBytes.Set(s.store.Bytes())
	}
	if !ok {
		return nil, false
	}
	obs.FromContext(ctx).Note("store-hit")
	s.Metrics.StoreHits.Inc()
	return &coalesce.Value{Body: e.Body, ContentType: e.ContentType, Events: e.Events}, true
}

// storePut persists a finished result to the durable tier.
func (s *Service) storePut(key string, v *coalesce.Value) {
	if s.store == nil {
		return
	}
	err := s.store.Put(store.Entry{
		Key:         key,
		ContentType: v.ContentType,
		Events:      v.Events,
		Body:        v.Body,
	})
	if err != nil {
		s.Metrics.StoreErrors.Inc()
	} else {
		s.Metrics.StoreWrites.Inc()
	}
	s.Metrics.StoreBytes.Set(s.store.Bytes())
}

// storePutGroup persists a batch's fresh results as one group commit:
// one segment file, one fsync window, every entry individually readable
// under its own key afterwards. Called by the batch worker after all
// units finish, so it is the group-commit analog of the write-behind
// storePut.
func (s *Service) storePutGroup(entries []store.Entry) {
	if s.store == nil || len(entries) == 0 {
		return
	}
	if err := s.store.PutGroup(entries); err != nil {
		s.Metrics.StoreErrors.Inc()
	} else {
		s.Metrics.StoreWrites.Add(uint64(len(entries)))
	}
	s.Metrics.StoreBytes.Set(s.store.Bytes())
}
