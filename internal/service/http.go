package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/coalesce"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/run            — one single-pulse simulation (stats JSON, CSV, or SVG);
//	                          ?trace=1 arms the sim flight recorder
//	POST /v1/spec           — a multi-run experiment.Spec, aggregate skew statistics
//	GET  /v1/debug/requests — ring of recently completed request traces
//	GET  /healthz           — liveness (503 while draining)
//	GET  /metrics           — Prometheus text-format metrics
//
// Every response carries an X-Request-ID header, echoing the request's own
// X-Request-ID when one was supplied, so clients and server logs correlate.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/spec", s.handleSpec)
	mux.HandleFunc("/v1/debug/requests", s.handleDebugRequests)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// errorResponse is the JSON body of every non-2xx API response. RequestID
// lets a client quote the failing request when reporting an issue; the same
// ID appears in the server's log line for the rejection.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSONError(w http.ResponseWriter, code int, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg, RequestID: rid})
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// serve runs the shared request pipeline: canonicalize → deadline →
// cache/dedup/queue → error mapping → body replay. It owns the request's
// trace: created here, threaded through the pipeline via the context,
// finished with the response status, published to the debug ring, and
// reflected as one structured log line.
func (s *Service) serve(w http.ResponseWriter, r *http.Request, endpoint, rid string,
	timeoutMs int64, key string, compute func(context.Context) (*coalesce.Value, error)) {
	start := time.Now()
	defer func() { s.Metrics.Latency[endpoint].ObserveDuration(time.Since(start)) }()

	tr := obs.NewTrace(rid, endpoint)
	// A W3C traceparent (forwarded by the cluster router, or sent by any
	// tracing-aware client) correlates this node's trace with the
	// fleet-wide one: every node serving a hop of the same request shows
	// the same trace_id in /v1/debug/requests, and the sender's span-id
	// parents this trace so the OTLP export stitches into one tree.
	if tid, pid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		tr.SetTraceID(tid)
		tr.SetParentSpanID(pid)
	}
	timeout := RequestTimeout(timeoutMs, s.opts)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	val, err := s.result(obs.WithTrace(ctx, tr), timeout, key, compute)
	status := http.StatusOK
	if err != nil {
		status = s.writeError(w, rid, err)
	} else {
		w.Header().Set("Content-Type", val.ContentType)
		w.Header().Set("X-Hexd-Events", fmt.Sprintf("%d", val.Events))
		w.Write(val.Body)
	}
	tr.Finish(status, err)
	s.ring.Add(tr)
	s.opts.Exporter.Export(tr)
	s.logRequest(endpoint, rid, status, time.Since(start), err)
}

// logRequest emits the request's structured log line: Debug for successes,
// Warn for every rejection or failure (429 shed load, 504 deadline, 5xx)
// so operators can grep the request_id a client quotes from an error body.
func (s *Service) logRequest(endpoint, rid string, status int, d time.Duration, err error) {
	args := []any{
		"request_id", rid,
		"endpoint", endpoint,
		"status", status,
		"dur_ms", float64(d) / float64(time.Millisecond),
	}
	if err != nil {
		args = append(args, "err", err.Error())
	}
	if status >= 400 {
		s.opts.Logger.Warn("request failed", args...)
		return
	}
	s.opts.Logger.Debug("request served", args...)
}

// writeError maps pipeline errors to HTTP statuses and returns the status
// it wrote.
func (s *Service) writeError(w http.ResponseWriter, rid string, err error) int {
	var bad errBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "queue full; retry later", rid)
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		writeJSONError(w, http.StatusServiceUnavailable, "shutting down", rid)
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		s.Metrics.DeadlineExceeded.Inc()
		writeJSONError(w, http.StatusGatewayTimeout, "deadline exceeded", rid)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		writeJSONError(w, http.StatusGatewayTimeout, "request cancelled", rid)
		return http.StatusGatewayTimeout
	case errors.As(err, &bad):
		writeJSONError(w, http.StatusBadRequest, bad.Error(), rid)
		return http.StatusBadRequest
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error(), rid)
		return http.StatusInternalServerError
	}
}

// requestID resolves the request's ID (honoring a sane client-supplied
// X-Request-ID) and echoes it on the response.
func requestID(w http.ResponseWriter, r *http.Request) string {
	rid := obs.RequestID(r.Header.Get("X-Request-ID"))
	w.Header().Set("X-Request-ID", rid)
	return rid
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	s.Metrics.Requests["run"].Inc()
	rid := requestID(w, r)
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only", rid)
		return
	}
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), rid)
		return
	}
	if err := req.Normalize(s.opts); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), rid)
		return
	}
	req.flightArm = s.opts.FlightEvents > 0 && r.URL.Query().Get("trace") == "1"
	s.serve(w, r, "run", rid, req.TimeoutMs, req.CanonicalKey(),
		func(ctx context.Context) (*coalesce.Value, error) { return s.computeRun(ctx, req) })
}

func (s *Service) handleSpec(w http.ResponseWriter, r *http.Request) {
	s.Metrics.Requests["spec"].Inc()
	rid := requestID(w, r)
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only", rid)
		return
	}
	var req SpecRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), rid)
		return
	}
	if err := req.Normalize(s.opts); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error(), rid)
		return
	}
	s.serve(w, r, "spec", rid, req.TimeoutMs, req.CanonicalKey(),
		func(ctx context.Context) (*coalesce.Value, error) { return s.computeSpec(ctx, req) })
}

// handleDebugRequests serves the ring of recently completed request traces,
// newest first. A trace whose computation is still running (a straggler
// that outlived its waiters) appears with its spans so far; a later scrape
// sees the finished version, including any flight dump attached after the
// fact.
func (s *Service) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	rid := requestID(w, r)
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only", rid)
		return
	}
	snaps := s.ring.Snapshots()
	if snaps == nil {
		snaps = []obs.TraceSnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snaps)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Closed() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining", "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","queue_depth":%d,"in_flight":%d}`+"\n",
		s.Metrics.QueueDepth.Value(), s.Metrics.InFlight.Value())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Metrics.WriteText(w)
}
