package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies; simulation requests are tiny.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/run   — one single-pulse simulation (stats JSON, CSV, or SVG)
//	POST /v1/spec  — a multi-run experiment.Spec, aggregate skew statistics
//	GET  /healthz  — liveness (503 while draining)
//	GET  /metrics  — Prometheus-style text metrics
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/spec", s.handleSpec)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// serve runs the shared request pipeline: canonicalize → deadline →
// cache/dedup/queue → error mapping → body replay.
func (s *Service) serve(w http.ResponseWriter, r *http.Request, endpoint string,
	timeoutMs int64, key string, compute func(context.Context) (*cached, error)) {
	start := time.Now()
	defer func() { s.Metrics.Latency[endpoint].ObserveDuration(time.Since(start)) }()

	timeout := requestTimeout(timeoutMs, s.opts)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	val, err := s.result(ctx, timeout, key, compute)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", val.contentType)
	w.Header().Set("X-Hexd-Events", fmt.Sprintf("%d", val.events))
	w.Write(val.body)
}

// writeError maps pipeline errors to HTTP statuses.
func (s *Service) writeError(w http.ResponseWriter, err error) {
	var bad errBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "queue full; retry later")
	case errors.Is(err, ErrShuttingDown):
		writeJSONError(w, http.StatusServiceUnavailable, "shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		s.Metrics.DeadlineExceeded.Inc()
		writeJSONError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		writeJSONError(w, http.StatusGatewayTimeout, "request cancelled")
	case errors.As(err, &bad):
		writeJSONError(w, http.StatusBadRequest, bad.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	s.Metrics.Requests["run"].Inc()
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := req.normalize(s.opts); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serve(w, r, "run", req.TimeoutMs, req.key(),
		func(ctx context.Context) (*cached, error) { return s.computeRun(ctx, req) })
}

func (s *Service) handleSpec(w http.ResponseWriter, r *http.Request) {
	s.Metrics.Requests["spec"].Inc()
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SpecRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := req.normalize(s.opts); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serve(w, r, "spec", req.TimeoutMs, req.key(),
		func(ctx context.Context) (*cached, error) { return s.computeSpec(ctx, req) })
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Closed() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","queue_depth":%d,"in_flight":%d}`+"\n",
		s.Metrics.QueueDepth.Value(), s.Metrics.InFlight.Value())
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Metrics.WriteText(w)
}
