package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

// TestGridCacheSharingDifferential pins the tentpole guarantee of grid
// memoization: N concurrent mixed-spec requests that all resolve to one
// cached graph produce results byte-identical to a fresh-build baseline
// where every request constructs its own grid. Run under -race it also
// proves the shared graph is read concurrently without data races.
func TestGridCacheSharingDifferential(t *testing.T) {
	// Mixed specs on one grid shape: seeds, scenarios, and fault counts
	// vary; (L, W, topology) is shared so every request hits one graph.
	const l, w = 12, 8
	var reqs []RunRequest
	for seed := uint64(1); seed <= 8; seed++ {
		for _, sc := range []string{"zero", "udminus"} {
			for _, faults := range []int{0, 1} {
				reqs = append(reqs, RunRequest{
					L: l, W: w, Seed: seed, Scenario: sc, Faults: faults,
				})
			}
		}
	}

	// Baseline: compute every request with per-request fresh construction
	// (the pre-cache behavior) on a service of its own.
	orig := buildGrid
	buildGrid = func(l, w int, plus bool) (*grid.Hex, error) {
		if plus {
			return grid.NewHexPlus(l, w)
		}
		return grid.NewHex(l, w)
	}
	base := newTestService(t, Options{Workers: 2, CacheEntries: 1})
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		r := r
		if err := r.Normalize(base.Options()); err != nil {
			t.Fatal(err)
		}
		v, err := base.RunUnit(context.Background(), 30*time.Second, r)
		if err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
		want[i] = v.Body
	}
	buildGrid = orig

	// Cached path: the same requests, concurrently, on a service whose
	// buildGrid resolves through grid.Shared. CacheEntries=1 keeps the
	// result LRU from serving one request's body to another; every
	// request recomputes on the shared graph.
	// QueueDepth covers all requests submitted at once: the point here is
	// grid sharing, not backpressure (queue-full is tested elsewhere).
	s := newTestService(t, Options{Workers: 4, CacheEntries: 1, QueueDepth: len(reqs)})
	var wg sync.WaitGroup
	got := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r RunRequest) {
			defer wg.Done()
			if err := r.Normalize(s.Options()); err != nil {
				errs[i] = err
				return
			}
			v, err := s.RunUnit(context.Background(), 30*time.Second, r)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = v.Body
		}(i, r)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("cached request %d: %v", i, errs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("request %d (%+v): cached-grid body differs from fresh-build baseline\ncached: %s\nfresh:  %s",
				i, reqs[i], got[i], want[i])
		}
	}

	// The shared cache really was shared: the shape is resident once.
	if h, err := grid.Shared.Hex(l, w); err != nil || h == nil {
		t.Fatalf("shape missing from shared cache: %v", err)
	}
}

// TestGridCacheKeysDistinctShapes guards against key collisions between
// plain and augmented topologies of equal dimensions at the service layer
// (a collision would silently run HEX requests on HEX+ graphs).
func TestGridCacheKeysDistinctShapes(t *testing.T) {
	a, err := buildGrid(9, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildGrid(9, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("HEX and HEX+ of equal dims share one cached graph")
	}
	if fmt.Sprintf("%d", len(a.In(a.NodeID(1, 0)))) == fmt.Sprintf("%d", len(b.In(b.NodeID(1, 0)))) {
		t.Fatal("HEX and HEX+ in-degree unexpectedly equal; cache returned the wrong topology")
	}
}
