package service

import (
	"context"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
	"repro/internal/trace"
)

// Predicate-armed flight recording (obs.ArmPolicy): after every
// single-run computation the service asks the configured Armer whether
// the run's outcome deserved event-level forensics. If it did and the
// recorder was not already armed, the run is repeated with the recorder
// on — the simulation is a deterministic function of its canonical
// request, so the re-run reproduces the original event stream exactly —
// and the audited dump is attached to the request trace, where the debug
// ring and the OTLP exporter pick it up.

// evaluateArm applies the arm policy to one completed run. runErr is the
// run's error (nil on success); wave is the reconstructed wave (nil on
// error); fr/dump are non-nil when the request pre-armed via ?trace=1.
func (s *Service) evaluateArm(ctx context.Context, tr *obs.Trace, r RunRequest,
	h *grid.Hex, plan *fault.Plan, params core.Params, offsets []sim.Time,
	wave *analysis.Wave, fr *obs.FlightRecorder, dump *obs.FlightDump,
	runErr error, elapsed time.Duration) {
	a := s.opts.Arm
	if a == nil {
		return
	}
	o := obs.Outcome{
		Err:         runErr,
		Elapsed:     elapsed,
		AuditFailed: dump != nil && !dump.AuditOK,
	}
	if a.WantsSkew() && wave != nil {
		measureSkewEnvelope(&o, wave, r.W, params.Bounds, offsetSpread(offsets))
	}
	reason, arm := a.Evaluate(o)
	if !arm {
		return
	}
	s.Metrics.ArmTriggered.Inc()
	tr.Note("arm:" + reason)
	tr.SetAttr("arm", reason)
	auditor := &trace.Auditor{G: h.Graph, Plan: plan, Params: params}
	if fr != nil {
		// The recorder already ran; just make sure the dump carries its
		// events — an armed run's dump is the forensic payload.
		if dump != nil && len(dump.Events) == 0 {
			tr.SetFlight(obs.NewFlightDump(fr, auditor, true))
		}
		return
	}
	if s.opts.FlightEvents < 0 || ctx.Err() != nil {
		// Flight recording disabled, or the deadline is already gone: the
		// verdict still reaches the trace/exported span via the note.
		tr.Note("arm-rerun-skipped")
		return
	}
	endRerun := tr.StartSpan("arm-rerun")
	rec := obs.NewFlightRecorder(s.opts.FlightEvents)
	_, rerunErr := core.Run(core.Config{
		Graph:            h.Graph,
		Params:           params,
		Delay:            delay.Uniform{Bounds: params.Bounds},
		Faults:           plan,
		Schedule:         source.SinglePulse(offsets),
		Seed:             r.Seed,
		Wedges:           s.opts.Wedges,
		Context:          ctx,
		Trace:            rec,
		FirstTriggerOnly: r.Output == "agg",
	})
	endRerun()
	s.Metrics.ArmReruns.Inc()
	if rerunErr != nil {
		// A partial window is still evidence; attach what was captured.
		tr.Note("arm-rerun-error")
	}
	tr.SetFlight(obs.NewFlightDump(rec, auditor, true))
	s.opts.Logger.Warn("arm policy triggered",
		"request_id", tr.ID(),
		"reason", reason,
		"intra_max", o.IntraMax,
		"intra_bound", o.IntraBound,
	)
}

// measureSkewEnvelope fills o's skew fields with the run's worst
// layer-by-layer excursion relative to the Theorem-1 envelope: the layer
// whose measured intra skew exceeds its bound σℓ by the most, and the
// layer whose signed inter-layer range leaves its window
// [d− − σ_{ℓ−1}, d+ + σ_{ℓ−1}] by the most. delta0 is the layer-0 skew
// spread Δ0 the bounds are conditioned on (the source-offset spread).
func measureSkewEnvelope(o *obs.Outcome, w *analysis.Wave, width int, b delay.Bounds, delta0 sim.Time) {
	worstIntra := sim.Time(-sim.MaxTime)
	worstInter := sim.Time(-sim.MaxTime)
	layers := w.G.NumLayers()
	for l := 1; l < layers; l++ {
		if m := w.MaxIntraSkewLayer(l); m >= 0 {
			bound := theory.Theorem1IntraBound(l, width, b, delta0)
			o.SkewValid = true
			if m-bound > worstIntra {
				worstIntra = m - bound
				o.IntraMax, o.IntraBound = m, bound
			}
		}
		if lo, hi, ok := w.InterSkewRangeLayer(l); ok {
			sigmaPrev := delta0
			if l > 1 {
				sigmaPrev = theory.Theorem1IntraBound(l-1, width, b, delta0)
			}
			wLo, wHi := theory.Theorem1InterWindow(sigmaPrev, b)
			o.SkewValid = true
			excursion := sim.MaxOf(wLo-lo, hi-wHi)
			if excursion > worstInter {
				worstInter = excursion
				o.InterLo, o.InterHi = lo, hi
				o.InterLoBound, o.InterHiBound = wLo, wHi
			}
		}
	}
}

// offsetSpread returns max−min of the layer-0 source offsets: the Δ0 the
// Theorem-1 bounds are parameterized by.
func offsetSpread(offsets []sim.Time) sim.Time {
	if len(offsets) == 0 {
		return 0
	}
	lo, hi := offsets[0], offsets[0]
	for _, v := range offsets[1:] {
		lo, hi = sim.MinTime(lo, v), sim.MaxOf(hi, v)
	}
	return hi - lo
}
