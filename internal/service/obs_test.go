package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/trace"
)

// postRun issues a POST to path with the given X-Request-ID and returns the
// response (caller closes the body).
func postRun(t *testing.T, srv *httptest.Server, path, rid, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// debugTraces scrapes GET /v1/debug/requests.
func debugTraces(t *testing.T, srv *httptest.Server) []obs.TraceSnapshot {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug endpoint status = %d", resp.StatusCode)
	}
	var snaps []obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// findTrace returns the ring snapshot with the given request ID, or nil.
func findTrace(t *testing.T, srv *httptest.Server, rid string) *obs.TraceSnapshot {
	t.Helper()
	for _, snap := range debugTraces(t, srv) {
		if snap.ID == rid {
			s := snap
			return &s
		}
	}
	return nil
}

// TestRequestIDEchoedEverywhere pins the correlation contract: the response
// header, the error body, and the debug ring all carry the same request ID —
// the client's own when it supplied a sane one, a fresh one otherwise.
func TestRequestIDEchoedEverywhere(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A client-supplied ID is echoed in the header and the error body.
	resp := postRun(t, srv, "/v1/run", "client-rid-9", `{"l":`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-rid-9" {
		t.Fatalf("X-Request-ID header = %q, want the client's own", got)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "client-rid-9" {
		t.Fatalf("error body request_id = %q, want client-rid-9", body.RequestID)
	}
	if body.Error == "" {
		t.Fatal("error body has no error message")
	}

	// Without a client ID the server mints one.
	resp2 := postRun(t, srv, "/v1/run", "", `{"l":`)
	defer resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", got)
	}
}

// TestDebugRequestRing exercises GET /v1/debug/requests: newest-first order,
// per-stage spans on a computed request, and a cache-hit note on a replay.
func TestDebugRequestRing(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const body = `{"l":10,"w":8,"seed":5}`
	for _, rid := range []string{"ring-1", "ring-2"} {
		resp := postRun(t, srv, "/v1/run", rid, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d (body %q)", rid, resp.StatusCode, readAll(t, resp))
		}
		resp.Body.Close()
	}

	snaps := debugTraces(t, srv)
	if len(snaps) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(snaps))
	}
	if snaps[0].ID != "ring-2" || snaps[1].ID != "ring-1" {
		t.Fatalf("ring order = %s, %s; want newest first", snaps[0].ID, snaps[1].ID)
	}

	// The computed request carries the pipeline's stage spans.
	first := snaps[1]
	if first.Status != http.StatusOK {
		t.Fatalf("first trace status = %d", first.Status)
	}
	names := make(map[string]bool)
	for _, sp := range first.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"cache-lookup", "queue-wait", "grid-build", "sim", "encode"} {
		if !names[want] {
			t.Errorf("computed request trace lacks %q span (have %v)", want, first.Spans)
		}
	}

	// The replay of the same request is answered from cache and says so.
	second := snaps[0]
	if !hasNote(second.Notes, "cache-hit") {
		t.Fatalf("replayed request notes = %v, want cache-hit", second.Notes)
	}

	// The debug endpoint itself is GET-only.
	resp := postRun(t, srv, "/v1/debug/requests", "", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on debug endpoint = %d, want 405", resp.StatusCode)
	}
}

func hasNote(notes []string, want string) bool {
	for _, n := range notes {
		if n == want {
			return true
		}
	}
	return false
}

// TestTracedRunAttachesAuditedFlightDump arms the flight recorder on a small
// successful run and checks the dump lands in the debug ring: audited clean,
// capture counts reported, and — because the run succeeded — no raw events
// embedded.
func TestTracedRunAttachesAuditedFlightDump(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postRun(t, srv, "/v1/run?trace=1", "rid-flight", `{"l":10,"w":8,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (body %q)", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()

	snap := findTrace(t, srv, "rid-flight")
	if snap == nil {
		t.Fatal("traced request not in the debug ring")
	}
	if !hasNote(snap.Notes, "flight-armed") {
		t.Fatalf("notes = %v, want flight-armed", snap.Notes)
	}
	fl := snap.Flight
	if fl == nil {
		t.Fatal("no flight dump attached")
	}
	if fl.Captured == 0 {
		t.Fatal("flight recorder captured no events")
	}
	if !fl.AuditOK {
		t.Fatalf("flight audit failed on a clean run: %s", fl.AuditError)
	}
	if len(fl.Events) != 0 {
		t.Fatal("successful run embedded raw events; they are reserved for failures")
	}

	// The same request without ?trace=1 shares the cache key: it replays the
	// cached result instead of recomputing, and carries no dump of its own.
	resp2 := postRun(t, srv, "/v1/run", "rid-plain", `{"l":10,"w":8,"seed":5}`)
	resp2.Body.Close()
	if got := s.Metrics.SimRuns.Value(); got != 1 {
		t.Fatalf("sim runs = %d; the untraced replay should hit the cache", got)
	}
	if plain := findTrace(t, srv, "rid-plain"); plain == nil || plain.Flight != nil {
		t.Fatal("cache replay should carry no flight dump")
	}
}

// TestCancelledTracedRunDumpsReplayableFlight is the end-to-end acceptance
// path: a deadline kills a large traced run mid-flight, the client gets 504
// with its request ID, and the debug ring ends up with a flight dump whose
// embedded event tail re-audits cleanly offline — the post-mortem workflow.
func TestCancelledTracedRunDumpsReplayableFlight(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Calibrate the deadline to the machine: measure one grid build, start
	// at three build-lengths (the pre-sim pipeline is build plus network
	// setup of comparable cost), and double on each attempt that expired
	// before the sim started. The sim phase runs several build-lengths, so
	// doubling cannot step over the mid-sim window. Each attempt uses a
	// grid width of its own (as well as its own seed) so it pays a fresh
	// build instead of hitting the process-wide grid cache — the
	// calibration assumes the request-time build costs what the measured
	// build cost.
	const l, w = 2000, 100
	buildStart := time.Now()
	if _, err := buildGrid(l, w, false); err != nil {
		t.Fatal(err)
	}
	buildMs := time.Since(buildStart).Milliseconds()
	if buildMs < 5 {
		buildMs = 5
	}
	var fl *obs.FlightDump
	var rid string
	wAttempt := w
	deadlineMs := buildMs * 3
	for attempt := 0; attempt < 6; attempt++ {
		rid = fmt.Sprintf("rid-504-%d", attempt)
		wAttempt = w + 1 + attempt
		body504 := fmt.Sprintf(`{"l":%d,"w":%d,"seed":%d,"timeout_ms":%d}`,
			l, wAttempt, 31+attempt, deadlineMs)
		resp := postRun(t, srv, "/v1/run?trace=1", rid, body504)
		if resp.StatusCode == http.StatusOK {
			// The whole run fit inside the deadline; shrink it.
			readAll(t, resp)
			t.Logf("attempt %d: deadline %dms outlived the run; shrinking", attempt, deadlineMs)
			deadlineMs = deadlineMs/2 + 1
			continue
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("attempt %d: status = %d, want 504 (body %q)",
				attempt, resp.StatusCode, readAll(t, resp))
		}
		var body errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.RequestID != rid {
			t.Fatalf("504 body request_id = %q, want %q", body.RequestID, rid)
		}

		// The computation may still be winding down after the 504; the ring
		// snapshots live traces, so poll until the dump appears.
		var snap *obs.TraceSnapshot
		waitFor(t, func() bool {
			snap = findTrace(t, srv, rid)
			return snap != nil && snap.Flight != nil
		})
		if snap.Flight.Captured > 0 && len(snap.Flight.Events) > 0 {
			fl = snap.Flight
			break
		}
		if snap.Flight.Captured == 0 {
			t.Logf("attempt %d: deadline %dms expired before the sim started; doubling",
				attempt, deadlineMs)
			deadlineMs *= 2
		} else {
			// The client saw 504 but the detached flight (same budget,
			// started later) let the run finish, so no tail was embedded;
			// a shorter deadline lands mid-sim for both.
			t.Logf("attempt %d: run outlived the 504 under the detached deadline %dms; shrinking",
				attempt, deadlineMs)
			deadlineMs = deadlineMs*2/3 + 1
		}
	}
	if fl == nil {
		t.Fatal("no attempt cancelled mid-simulation")
	}
	if fl.Captured == 0 {
		t.Fatal("cancelled run captured no events")
	}
	if !fl.AuditOK {
		t.Fatalf("flight audit rejected the cancelled run's tail: %s", fl.AuditError)
	}
	if len(fl.Events) == 0 {
		t.Fatal("failed run did not embed its event tail")
	}

	// Offline replay: reconstruct the event stream from the JSON dump and
	// re-audit it against the run's topology, as a post-mortem tool would.
	evs, err := fl.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}
	h := grid.MustHex(l, wAttempt)
	aud := &trace.Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: core.DefaultParams()}
	if err := aud.AuditTail(&trace.Recorder{Events: evs}); err != nil {
		t.Fatalf("offline replay of the flight dump failed the audit: %v", err)
	}
}

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestShedLoadLogCarriesRequestID jams the worker and the queue, then checks
// a shed request gets 429 with its request ID in the body and that the
// structured Warn log line carries the same ID — the operator-side half of
// the correlation contract.
func TestShedLoadLogCarriesRequestID(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logs, nil))
	s := newTestService(t, Options{Workers: 1, QueueDepth: 1, Logger: logger})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	for i, key := range []string{"jam-worker", "jam-queue"} {
		i, key := i, key
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.result(context.Background(), time.Minute, key, func(context.Context) (*coalesce.Value, error) {
				if i == 0 {
					close(started)
				}
				<-release
				return &coalesce.Value{Body: []byte("x"), ContentType: "text/plain"}, nil
			})
		}()
		if i == 0 {
			<-started // the worker is busy before the queue job is submitted
		}
	}
	waitFor(t, func() bool { return s.Metrics.QueueDepth.Value() == 1 })

	resp := postRun(t, srv, "/v1/run", "rid-429", `{"l":10,"w":8,"seed":99}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID != "rid-429" {
		t.Fatalf("429 body request_id = %q", body.RequestID)
	}
	if got := s.Metrics.QueueRejects.Value(); got != 1 {
		t.Fatalf("queue rejects = %d, want 1", got)
	}
	close(release)
	wg.Wait()

	// The rejection logged one structured Warn line with the same ID.
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var entry map[string]any
		if json.Unmarshal([]byte(line), &entry) != nil {
			continue
		}
		if entry["msg"] == "request failed" && entry["request_id"] == "rid-429" {
			if lvl, _ := entry["level"].(string); lvl != "WARN" {
				t.Fatalf("rejection logged at %v, want WARN", entry["level"])
			}
			if status, _ := entry["status"].(float64); int(status) != http.StatusTooManyRequests {
				t.Fatalf("logged status = %v, want 429", entry["status"])
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no request-failed log line for rid-429 in:\n%s", logs.String())
	}
}
