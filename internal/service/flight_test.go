package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/coalesce"
)

// TestFlightSurvivesLeaderDisconnect pins the detached-flight contract: the
// request that starts a computation (the leader) disconnecting does not
// cancel it for coalesced followers — the flight's context is detached from
// the leader's, and a follower that stays gets the full result.
func TestFlightSurvivesLeaderDisconnect(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var computeErr error
	compute := func(ctx context.Context) (*coalesce.Value, error) {
		close(started)
		<-release
		if computeErr = ctx.Err(); computeErr != nil {
			return nil, computeErr
		}
		return &coalesce.Value{Body: []byte("result"), ContentType: "text/plain"}, nil
	}

	leaderCtx, disconnectLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.result(leaderCtx, time.Minute, "flight-test", compute)
		leaderDone <- err
	}()
	<-started // the flight is registered and computing

	followerDone := make(chan struct{})
	var followerVal *coalesce.Value
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, followerErr = s.result(context.Background(), time.Minute, "flight-test",
			func(context.Context) (*coalesce.Value, error) {
				t.Error("follower compute ran; it should have joined the in-flight computation")
				return nil, nil
			})
	}()
	waitFor(t, func() bool { return s.Metrics.DedupJoins.Value() == 1 })

	// The leader walks away mid-computation…
	disconnectLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	// …and the computation still finishes for the follower.
	close(release)
	<-followerDone
	if followerErr != nil {
		t.Fatalf("follower err = %v, want result", followerErr)
	}
	if followerVal == nil || string(followerVal.Body) != "result" {
		t.Fatalf("follower got %+v", followerVal)
	}
	if computeErr != nil {
		t.Fatalf("flight context was cancelled by the leader's disconnect: %v", computeErr)
	}
}

// TestFlightCancelledWhenLastWaiterLeaves verifies the other half of the
// contract: once every waiter has abandoned a flight, its detached context
// is cancelled so the simulation stops consuming a worker.
func TestFlightCancelledWhenLastWaiterLeaves(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	errc := make(chan error, 1)
	compute := func(ctx context.Context) (*coalesce.Value, error) {
		close(started)
		<-release
		errc <- ctx.Err()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &coalesce.Value{Body: []byte("unwanted"), ContentType: "text/plain"}, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.result(ctx, time.Minute, "abandoned-flight", compute)
		done <- err
	}()
	<-started

	cancel() // the only waiter leaves
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("flight ctx err = %v, want context.Canceled after last waiter left", err)
	}
}
