package service

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels string // raw label block without braces, "" when unlabeled
	value  float64
}

// parseProm parses the Prometheus text exposition format strictly enough to
// lint our own output: it returns the TYPE declarations, the HELP
// declarations, and the samples in emission order, failing the test on any
// line it cannot account for.
func parseProm(t *testing.T, text string) (types, helps map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	helps = make(map[string]string)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
		case strings.HasPrefix(line, "# HELP "):
			f := strings.SplitN(line, " ", 4)
			if len(f) != 4 || f[3] == "" {
				t.Fatalf("malformed or empty HELP line: %q", line)
			}
			helps[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			samples = append(samples, promSample{name: m[1], labels: m[2], value: v})
		}
	}
	return types, helps, samples
}

// familyOf resolves a sample name to its declared family, accounting for the
// _bucket/_sum/_count series of histograms.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, true
		}
	}
	return "", false
}

// stripLE removes the le label from a bucket's label block, yielding the
// label set shared with the family's _sum and _count series.
func stripLE(labels string) string {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return labels
	}
	return strings.TrimSuffix(labels[:i], ",")
}

// TestMetricsPrometheusRoundTrip scrapes /metrics after real traffic and
// re-parses the output: every sample belongs to a declared family with HELP
// text, counters follow the _total convention, histogram buckets are
// cumulative with +Inf equal to _count, at least two histogram families have
// observations, and a second scrape emits the identical series in the
// identical order (no label-order drift).
func TestMetricsPrometheusRoundTrip(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	doRun(t, srv, `{"l":10,"w":8,"seed":5}`, http.StatusOK)
	resp, err := srv.Client().Post(srv.URL+"/v1/spec", "application/json",
		strings.NewReader(`{"l":10,"w":8,"runs":3,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec status = %d", resp.StatusCode)
	}

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q", ct)
		}
		return readAll(t, resp)
	}

	text := scrape()
	types, helps, samples := parseProm(t, text)

	// Every declared family has HELP, a known type, and at least one sample.
	seen := make(map[string]bool)
	for _, smp := range samples {
		fam, ok := familyOf(smp.name, types)
		if !ok {
			t.Errorf("sample %s has no TYPE declaration", smp.name)
			continue
		}
		seen[fam] = true
	}
	for fam, typ := range types {
		if typ != "counter" && typ != "gauge" && typ != "histogram" {
			t.Errorf("family %s has unknown type %q", fam, typ)
		}
		if helps[fam] == "" {
			t.Errorf("family %s has no HELP text", fam)
		}
		if !seen[fam] {
			t.Errorf("family %s declared but never sampled", fam)
		}
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			t.Errorf("counter %s does not end in _total", fam)
		}
	}

	// Histogram series: buckets cumulative, +Inf present and equal to _count.
	type key struct{ fam, labels string }
	lastBucket := make(map[key]float64)
	infBucket := make(map[key]float64)
	counts := make(map[key]float64)
	for _, smp := range samples {
		fam, _ := familyOf(smp.name, types)
		if types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(smp.name, "_bucket"):
			k := key{fam, stripLE(smp.labels)}
			if smp.value < lastBucket[k] {
				t.Errorf("%s{%s}: bucket counts not cumulative", fam, smp.labels)
			}
			lastBucket[k] = smp.value
			if strings.Contains(smp.labels, `le="+Inf"`) {
				infBucket[k] = smp.value
			}
		case strings.HasSuffix(smp.name, "_count"):
			counts[key{fam, smp.labels}] = smp.value
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series found")
	}
	for k, c := range counts {
		inf, ok := infBucket[k]
		if !ok {
			t.Errorf("%s{%s}: no +Inf bucket", k.fam, k.labels)
			continue
		}
		if inf != c {
			t.Errorf("%s{%s}: +Inf bucket %v != count %v", k.fam, k.labels, inf, c)
		}
	}

	// At least two histogram families carry real observations.
	observed := make(map[string]bool)
	for k, c := range counts {
		if c > 0 {
			observed[k.fam] = true
		}
	}
	if len(observed) < 2 {
		t.Fatalf("only %d histogram families with observations: %v", len(observed), observed)
	}
	for _, want := range []string{"hexd_request_seconds", "hexd_sim_run_events"} {
		if !observed[want] {
			t.Errorf("histogram %s has no observations after traffic", want)
		}
	}

	// A second scrape serves the identical series in the identical order.
	series := func(smps []promSample) []string {
		out := make([]string, len(smps))
		for i, s := range smps {
			out[i] = s.name + "{" + s.labels + "}"
		}
		return out
	}
	_, _, again := parseProm(t, scrape())
	if !reflect.DeepEqual(series(samples), series(again)) {
		t.Fatal("series order drifted between scrapes")
	}
}
