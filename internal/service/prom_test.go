package service

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/promlint"
)

// TestMetricsPrometheusRoundTrip scrapes /metrics after real traffic and
// re-parses the output through the shared lint pass (declared families,
// HELP text, counter naming, cumulative buckets, +Inf == _count), then
// adds the service-specific checks: the request and sim histograms carry
// observations, and a second scrape emits the identical series in the
// identical order (no label-order drift).
func TestMetricsPrometheusRoundTrip(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	doRun(t, srv, `{"l":10,"w":8,"seed":5}`, http.StatusOK)
	resp, err := srv.Client().Post(srv.URL+"/v1/spec", "application/json",
		strings.NewReader(`{"l":10,"w":8,"runs":3,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec status = %d", resp.StatusCode)
	}

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q", ct)
		}
		return readAll(t, resp)
	}

	text := scrape()
	types, samples := promlint.Lint(t, text)
	promlint.RequireFamilies(t, types, map[string]string{
		"hexd_request_seconds":     "histogram",
		"hexd_sim_run_events":      "histogram",
		"hexd_arm_triggered_total": "counter",
		"hexd_arm_reruns_total":    "counter",
	})

	// At least two histogram families carry real observations.
	counts := make(map[string]float64)
	for _, smp := range samples {
		if fam, _ := promlint.FamilyOf(smp.Name, types); types[fam] == "histogram" &&
			strings.HasSuffix(smp.Name, "_count") {
			counts[fam] += smp.Value
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series found")
	}
	observed := make(map[string]bool)
	for fam, c := range counts {
		if c > 0 {
			observed[fam] = true
		}
	}
	if len(observed) < 2 {
		t.Fatalf("only %d histogram families with observations: %v", len(observed), observed)
	}
	for _, want := range []string{"hexd_request_seconds", "hexd_sim_run_events"} {
		if !observed[want] {
			t.Errorf("histogram %s has no observations after traffic", want)
		}
	}

	// A second scrape serves the identical series in the identical order.
	series := func(smps []promlint.Sample) []string {
		out := make([]string, len(smps))
		for i, s := range smps {
			out[i] = s.Name + "{" + s.Labels + "}"
		}
		return out
	}
	_, _, again := promlint.Parse(t, scrape())
	if !reflect.DeepEqual(series(samples), series(again)) {
		t.Fatal("series order drifted between scrapes")
	}
}
