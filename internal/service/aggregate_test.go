package service

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/store"
)

// TestAggregateOutputMatchesStats is the differential test for the
// aggregate-only execution mode at the service layer: for the same
// request spec, the HXA1 record's skew summaries, trigger count, event
// count, and horizon must equal the stats-output response's — the compact
// FirstTriggerOnly simulation path changes the representation, never the
// numbers.
func TestAggregateOutputMatchesStats(t *testing.T) {
	s := newTestService(t, Options{Workers: 2, CacheEntries: 4})
	for _, spec := range []RunRequest{
		{L: 10, W: 6, Seed: 3},
		{L: 10, W: 6, Seed: 4, Scenario: "udminus", Faults: 2},
		{L: 8, W: 6, Seed: 5, HexPlus: true, Faults: 1, FaultType: "fail-silent"},
	} {
		stat := spec
		stat.Output = "stats"
		if err := stat.Normalize(s.Options()); err != nil {
			t.Fatal(err)
		}
		sv, err := s.RunUnit(context.Background(), 30*time.Second, stat)
		if err != nil {
			t.Fatalf("stats run %+v: %v", spec, err)
		}
		var resp RunResponse
		if err := json.Unmarshal(sv.Body, &resp); err != nil {
			t.Fatal(err)
		}

		ag := spec
		ag.Output = "agg"
		if err := ag.Normalize(s.Options()); err != nil {
			t.Fatal(err)
		}
		av, err := s.RunUnit(context.Background(), 30*time.Second, ag)
		if err != nil {
			t.Fatalf("agg run %+v: %v", spec, err)
		}
		if av.ContentType != aggregateContentType {
			t.Fatalf("agg content type %q", av.ContentType)
		}
		agg, err := store.DecodeAggregate(av.Body)
		if err != nil {
			t.Fatalf("agg body does not decode: %v", err)
		}

		if int(agg.Triggered) != resp.Triggered {
			t.Fatalf("%+v: triggered %d, stats %d", spec, agg.Triggered, resp.Triggered)
		}
		if agg.Events != resp.Events {
			t.Fatalf("%+v: events %d, stats %d", spec, agg.Events, resp.Events)
		}
		if agg.Horizon.Nanoseconds() != resp.HorizonNs {
			t.Fatalf("%+v: horizon %v, stats %v", spec, agg.Horizon.Nanoseconds(), resp.HorizonNs)
		}
		for _, c := range []struct {
			name string
			got  SummaryJSON
			want SummaryJSON
		}{
			{"intra", summaryJSON(agg.IntraSkew), resp.IntraSkewNs},
			{"inter", summaryJSON(agg.InterSkew), resp.InterSkewNs},
		} {
			if c.got != c.want {
				t.Fatalf("%+v: %s skew summary %+v, stats %+v", spec, c.name, c.got, c.want)
			}
		}
		if agg.ElapsedNs == 0 {
			t.Fatalf("%+v: zero elapsed time", spec)
		}
	}
}

// TestAggregateOutputKeyDistinct guards the cache-key partition: "agg"
// bodies are binary and must never be served for a "stats" request.
func TestAggregateOutputKeyDistinct(t *testing.T) {
	a := RunRequest{L: 10, W: 6, Seed: 3, Output: "agg"}
	b := RunRequest{L: 10, W: 6, Seed: 3, Output: "stats"}
	opts := newTestService(t, Options{Workers: 1}).Options()
	if err := a.Normalize(opts); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(opts); err != nil {
		t.Fatal(err)
	}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("agg and stats outputs share a cache key")
	}
}
