package service

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrapeMetric fetches /metrics and returns the named sample's value.
func scrapeMetric(t *testing.T, srv *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s has non-integer value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics output:\n%s", name, body)
	return 0
}

// TestThroughputMetricsAdvance asserts the simulation throughput metrics
// move when work is executed: hexd_sim_events_total accumulates the
// executed event counts across runs and sweeps, and hexd_events_per_sec
// reports a positive rate after each computation.
func TestThroughputMetricsAdvance(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if v := scrapeMetric(t, srv, "hexd_sim_events_total"); v != 0 {
		t.Fatalf("hexd_sim_events_total = %d before any run", v)
	}
	if v := scrapeMetric(t, srv, "hexd_events_per_sec"); v != 0 {
		t.Fatalf("hexd_events_per_sec = %d before any run", v)
	}

	doRun(t, srv, `{"l":5,"w":8,"seed":11}`, http.StatusOK)
	afterRun := scrapeMetric(t, srv, "hexd_sim_events_total")
	if afterRun <= 0 {
		t.Fatalf("hexd_sim_events_total = %d after a run, want > 0", afterRun)
	}
	if eps := scrapeMetric(t, srv, "hexd_events_per_sec"); eps <= 0 {
		t.Fatalf("hexd_events_per_sec = %d after a run, want > 0", eps)
	}

	// A cache hit executes nothing: the accumulator must hold still.
	doRun(t, srv, `{"l":5,"w":8,"seed":11}`, http.StatusOK)
	if v := scrapeMetric(t, srv, "hexd_sim_events_total"); v != afterRun {
		t.Fatalf("hexd_sim_events_total moved on a cache hit: %d -> %d", afterRun, v)
	}

	// A sweep advances the accumulator again and refreshes the gauge from
	// the aggregate of its runs.
	resp, err := srv.Client().Post(srv.URL+"/v1/spec", "application/json",
		strings.NewReader(`{"l":5,"w":8,"runs":3,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec status = %d", resp.StatusCode)
	}
	afterSpec := scrapeMetric(t, srv, "hexd_sim_events_total")
	if afterSpec <= afterRun {
		t.Fatalf("hexd_sim_events_total did not advance on a sweep: %d -> %d", afterRun, afterSpec)
	}
	if eps := scrapeMetric(t, srv, "hexd_events_per_sec"); eps <= 0 {
		t.Fatalf("hexd_events_per_sec = %d after a sweep, want > 0", eps)
	}
}

// TestRecordThroughputGuards pins the degenerate-measurement behavior:
// zero events or non-positive elapsed leave the gauge untouched instead of
// clobbering it with zero.
func TestRecordThroughputGuards(t *testing.T) {
	m := NewMetrics()
	m.RecordThroughput(1_000_000, 500*time.Millisecond)
	if v := m.EventsPerSec.Value(); v != 2_000_000 {
		t.Fatalf("EventsPerSec = %d, want 2000000", v)
	}
	m.RecordThroughput(0, time.Second)
	m.RecordThroughput(100, 0)
	m.RecordThroughput(100, -time.Second)
	if v := m.EventsPerSec.Value(); v != 2_000_000 {
		t.Fatalf("degenerate measurements clobbered the gauge: %d", v)
	}
}
