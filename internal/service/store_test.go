package service

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

// openStore opens the durable tier over dir, failing the test on error.
func openStore(t *testing.T, dir string, maxBytes int64) *store.Store {
	t.Helper()
	st, err := store.Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// newStoreService builds a service backed by a store over dir.
func newStoreService(t *testing.T, dir string) *Service {
	t.Helper()
	return newTestService(t, Options{Workers: 2, Store: openStore(t, dir, 0)})
}

// flushStore waits for the write-behind of all completed computations.
func flushStore(t *testing.T, s *Service, writes uint64) {
	t.Helper()
	waitFor(t, func() bool { return s.Metrics.StoreWrites.Value() >= writes })
}

// TestRestartServesFromStore is the end-to-end restart scenario: run
// requests against one service instance, tear it down, start a fresh
// instance over the same store directory, and demand the second
// instance serve the same requests from disk — byte-identical bodies,
// zero simulations, store_hits incremented.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	const runBody = `{"l":20,"w":10,"scenario":"iii","seed":7}`
	const specBody = `{"l":10,"w":8,"runs":3,"seed":5}`

	s1 := newStoreService(t, dir)
	srv1 := httptest.NewServer(s1.Handler())
	firstRun := doRun(t, srv1, runBody, 200)
	firstSpec := doPost(t, srv1, "/v1/spec", specBody, 200)
	flushStore(t, s1, 2)
	srv1.Close()
	s1.Close() // drains workers; every write-behind has landed

	// "Restart": a brand-new service and store recover purely from disk.
	s2 := newStoreService(t, dir)
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()

	secondRun := doRun(t, srv2, runBody, 200)
	secondSpec := doPost(t, srv2, "/v1/spec", specBody, 200)
	if secondRun != firstRun {
		t.Fatalf("restarted /v1/run body differs from original:\n%s\nvs\n%s", secondRun, firstRun)
	}
	if secondSpec != firstSpec {
		t.Fatalf("restarted /v1/spec body differs from original:\n%s\nvs\n%s", secondSpec, firstSpec)
	}
	if got := s2.Metrics.SimRuns.Value(); got != 0 {
		t.Fatalf("restarted service ran %d simulations, want 0 (disk hits)", got)
	}
	if got := s2.Metrics.StoreHits.Value(); got != 2 {
		t.Fatalf("store hits = %d, want 2", got)
	}
	if got := s2.Metrics.StoreWrites.Value(); got != 0 {
		t.Fatalf("disk hits wrote back %d records, want 0", got)
	}

	// The disk hit is promoted to memory: a repeat is a cache hit that
	// never touches the store again.
	doRun(t, srv2, runBody, 200)
	if got := s2.Metrics.CacheHits.Value(); got != 1 {
		t.Fatalf("cache hits after repeat = %d, want 1", got)
	}
	if got := s2.Metrics.StoreHits.Value(); got != 2 {
		t.Fatalf("store hits after repeat = %d, want still 2", got)
	}

	// The new tier is visible in the metrics exposition.
	metrics := doGet(t, srv2, "/metrics")
	for _, want := range []string{"hexd_store_hits_total 2", "hexd_store_errors_total 0", "hexd_store_bytes "} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestColdStoreStampedeWritesOnce fires N identical requests at a cold
// store and proves the dedup guarantee extends to the durable tier:
// exactly one simulation runs and exactly one record is written.
func TestColdStoreStampedeWritesOnce(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	s := newTestService(t, Options{Workers: 4, Store: st})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 16
	const body = `{"l":120,"w":30,"scenario":"udplus","seed":11}`
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies = make(map[string]int)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b := readAll(t, resp)
			if resp.StatusCode != 200 {
				t.Errorf("status = %d (body %q)", resp.StatusCode, b)
				return
			}
			mu.Lock()
			bodies[b]++
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	flushStore(t, s, 1)

	if got := s.Metrics.SimRuns.Value(); got != 1 {
		t.Fatalf("sim runs = %d, want 1", got)
	}
	if got := s.Metrics.StoreWrites.Value(); got != 1 {
		t.Fatalf("store writes = %d, want exactly 1 for %d identical requests", got, n)
	}
	if got := st.Len(); got != 1 {
		t.Fatalf("store holds %d records, want 1", got)
	}
	if len(bodies) != 1 {
		t.Fatalf("got %d distinct response bodies, want 1", len(bodies))
	}
}

// TestCorruptStoreRecomputesAndRecovers damages the only record on disk
// between two service generations: the restart must quarantine it at
// scan time, recompute on demand, produce the identical body (the
// determinism guarantee), and re-persist it.
func TestCorruptStoreRecomputesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	const body = `{"l":15,"w":8,"seed":9}`

	s1 := newStoreService(t, dir)
	srv1 := httptest.NewServer(s1.Handler())
	first := doRun(t, srv1, body, 200)
	flushStore(t, s1, 1)
	srv1.Close()
	s1.Close()

	// Flip one bit in the middle of the record.
	corruptOneRecord(t, dir)

	st2 := openStore(t, dir, 0)
	if got := st2.Quarantined(); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if got := st2.Len(); got != 0 {
		t.Fatalf("corrupt store recovered %d records, want 0", got)
	}
	s2 := newTestService(t, Options{Workers: 2, Store: st2})
	srv2 := httptest.NewServer(s2.Handler())
	defer srv2.Close()

	second := doRun(t, srv2, body, 200)
	if second != first {
		t.Fatalf("recomputed body differs from pre-corruption body:\n%s\nvs\n%s", second, first)
	}
	if got := s2.Metrics.SimRuns.Value(); got != 1 {
		t.Fatalf("sim runs = %d, want 1 recompute", got)
	}
	if got := s2.Metrics.StoreHits.Value(); got != 0 {
		t.Fatalf("store hits = %d, want 0 (the record was quarantined)", got)
	}
	flushStore(t, s2, 1)
	if got := st2.Len(); got != 1 {
		t.Fatalf("recomputed record was not re-persisted: len = %d", got)
	}
}

// corruptOneRecord flips a payload bit in the single record under dir.
func corruptOneRecord(t *testing.T, dir string) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.rec"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one record file, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// doPost posts body to path and returns the response body.
func doPost(t *testing.T, srv *httptest.Server, path, body string, wantCode int) string {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b := readAll(t, resp)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s status = %d, want %d (body %q)", path, resp.StatusCode, wantCode, b)
	}
	return b
}

// doGet fetches path and returns the response body.
func doGet(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return readAll(t, resp)
}
