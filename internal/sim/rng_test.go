package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds matched on %d of 100 outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10): value %d occurred %d/10000 times (expect ~1000)", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestTimeInInclusiveBounds(t *testing.T) {
	r := NewRNG(3)
	lo, hi := Time(7161), Time(8197)
	sawLo, sawHi := false, false
	for i := 0; i < 200000; i++ {
		v := r.TimeIn(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("TimeIn out of bounds: %d", v)
		}
		sawLo = sawLo || v == lo
		sawHi = sawHi || v == hi
	}
	if !sawLo || !sawHi {
		t.Errorf("TimeIn never hit an endpoint (lo=%v hi=%v)", sawLo, sawHi)
	}
}

func TestTimeInDegenerate(t *testing.T) {
	r := NewRNG(5)
	if v := r.TimeIn(42, 42); v != 42 {
		t.Errorf("TimeIn(42,42) = %d", v)
	}
}

func TestTimeInPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TimeIn(hi, lo) did not panic")
		}
	}()
	NewRNG(1).TimeIn(10, 5)
}

func TestTimeInProperty(t *testing.T) {
	r := NewRNG(99)
	f := func(a, b uint16, off int32) bool {
		lo := Time(off)
		hi := lo + Time(a)%1000 + Time(b)%1000
		v := r.TimeIn(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 5)
	for i := 0; i < 10000; i++ {
		counts[r.Perm(5)[0]]++
	}
	for v, c := range counts {
		if c < 1600 || c > 2400 {
			t.Errorf("Perm(5)[0] = %d occurred %d/10000 times (expect ~2000)", v, c)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children matched on %d outputs", same)
	}
}

func TestDeriveSeedStability(t *testing.T) {
	a := DeriveSeed(1, "delay")
	b := DeriveSeed(1, "delay")
	if a != b {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, "delay") == DeriveSeed(1, "timer") {
		t.Error("different labels produced the same seed")
	}
	if DeriveSeed(1, "delay") == DeriveSeed(2, "delay") {
		t.Error("different bases produced the same seed")
	}
	// Label concatenation must not be ambiguous.
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("label boundaries are ambiguous")
	}
}

func TestBoolBalance(t *testing.T) {
	r := NewRNG(29)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4700 || trues > 5300 {
		t.Errorf("Bool() true %d/10000 times", trues)
	}
}

func TestUint64nSmallBias(t *testing.T) {
	r := NewRNG(31)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Uint64n(3)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Uint64n(3): value %d occurred %d/30000", v, c)
		}
	}
}
