package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is a container/heap reference implementation with the same
// (at, seq) order as eventQueue and calendarQueue. The fuzz and property
// tests below drive all three through identical push/pop/reset
// interleavings and require identical pop sequences: because (at, seq) keys
// are unique, every correct priority queue yields the same total order
// regardless of arity, sift strategy, or bucketing.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return before(&h[i], &h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// queueTrio drives the calendar queue, the retained 4-ary heap, and
// container/heap in lockstep and fails on any disagreement.
type queueTrio struct {
	t   *testing.T
	cal calendarQueue
	hp  eventQueue
	ref refHeap
	seq uint64
}

func (q *queueTrio) push(at Time) {
	e := event{at: at, seq: q.seq, a: int64(q.seq)}
	q.seq++
	q.cal.push(e)
	q.hp.push(e)
	heap.Push(&q.ref, e)
}

func (q *queueTrio) pop(op int) {
	q.t.Helper()
	if q.cal.Len() != q.hp.Len() || q.cal.Len() != q.ref.Len() {
		q.t.Fatalf("op %d: Len mismatch: calendar %d, heap %d, reference %d",
			op, q.cal.Len(), q.hp.Len(), q.ref.Len())
	}
	if q.cal.Len() == 0 {
		return
	}
	if pt := q.cal.peekTime(); pt != q.ref[0].at {
		q.t.Fatalf("op %d: peekTime %d, reference %d", op, pt, q.ref[0].at)
	}
	got, mid, want := q.cal.pop(), q.hp.pop(), heap.Pop(&q.ref).(event)
	if got.at != want.at || got.seq != want.seq || mid.at != want.at || mid.seq != want.seq {
		q.t.Fatalf("op %d: pop mismatch: calendar (at=%d seq=%d), heap (at=%d seq=%d), reference (at=%d seq=%d)",
			op, got.at, got.seq, mid.at, mid.seq, want.at, want.seq)
	}
}

func (q *queueTrio) reset() {
	q.cal.reset()
	q.hp.reset()
	q.ref = q.ref[:0]
	q.seq = 0
}

func (q *queueTrio) drain(op int) {
	q.t.Helper()
	for q.cal.Len() > 0 {
		q.pop(op)
	}
	if q.hp.Len() != 0 || q.ref.Len() != 0 {
		q.t.Fatalf("drain: heap holds %d and reference holds %d events the calendar does not",
			q.hp.Len(), q.ref.Len())
	}
}

// driveQueues feeds one interleaving of operations to all three queues.
// The first byte sizes the calendar's buckets (the full shift range from
// degenerate 2 ps buckets to wider-than-horizon ones must order
// identically); each further byte selects an action:
//
//   - < 88: pop everywhere (and compare)
//   - < 96: reset all queues (covers arena-style reuse mid-stream)
//   - < 112: same-instant burst: several pushes at one repeated time
//   - < 120: far-future burst: pushes far beyond the ring span, exercising
//     the overflow heap and window jumps/migration
//   - else: push one event with coarse time quantization (many equal-at
//     events for the seq tiebreak) and occasional large jumps (deep sifts,
//     pushSlow window rebuilds)
func driveQueues(t *testing.T, ops []byte) {
	t.Helper()
	q := &queueTrio{t: t}
	if len(ops) > 0 {
		q.cal.setHorizon(Time(1) << (ops[0] % 28))
		ops = ops[1:]
	}
	for i, op := range ops {
		switch {
		case op < 88:
			q.pop(i)
		case op < 96:
			q.reset()
		case op < 112:
			at := Time(op-96) * 700
			for k := 0; k < 5; k++ {
				q.push(at)
			}
		case op < 120:
			base := Time(i+1) * 1e9
			for k := Time(0); k < 3; k++ {
				q.push(base + k*1e7)
			}
		default:
			at := Time(op>>3) * 100
			if op&7 == 7 {
				at += Time(i) * 1e6
			}
			q.push(at)
		}
	}
	q.drain(len(ops))
}

// FuzzEventQueue lets the fuzzer search for an interleaving where the
// calendar queue, the 4-ary heap, and container/heap disagree. Run with:
// go test -fuzz FuzzEventQueue ./internal/sim
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 200, 201, 202, 0, 0, 0})
	f.Add([]byte{0, 255, 7, 15, 23, 0, 128, 0, 0, 95, 95})
	f.Add([]byte{27, 100, 113, 116, 119, 0, 0, 90, 200, 0})
	seed := make([]byte, 512)
	r := rand.New(rand.NewSource(1))
	r.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<16 {
			ops = ops[:1<<16]
		}
		driveQueues(t, ops)
	})
}

// TestEventQueueMatchesReference is the deterministic property test run by
// plain `go test`: random interleavings at several scales, plus a reuse
// round after reset to cover the arena path.
func TestEventQueueMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	for _, n := range []int{1, 2, 7, 64, 1000, 20000} {
		ops := make([]byte, n)
		r.Read(ops)
		driveQueues(t, ops)
	}
}

// TestEventQueueReuseAfterReset verifies reset leaves no residue that a
// later run could observe: the same interleaving replayed on a reused queue
// behaves identically to a fresh one.
func TestEventQueueReuseAfterReset(t *testing.T) {
	var q eventQueue
	for i := 0; i < 100; i++ {
		q.push(event{at: Time(100 - i), seq: uint64(i)})
	}
	q.reset()
	if q.Len() != 0 {
		t.Fatalf("Len after reset = %d", q.Len())
	}
	spare := q.items[:cap(q.items)]
	for i := range spare {
		e := &spare[i]
		if e.at != 0 || e.seq != 0 || e.fn != nil || e.kind != 0 || e.a != 0 || e.b != 0 {
			t.Fatalf("reset left residue at slot %d: %+v", i, *e)
		}
	}
	ops := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(ops)
	driveQueues(t, ops)
}
