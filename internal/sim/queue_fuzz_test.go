package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is a container/heap reference implementation with the same
// (at, seq) order as eventQueue. The fuzz and property tests below drive
// both through identical push/pop interleavings and require identical pop
// sequences: because (at, seq) keys are unique, every correct heap yields
// the same total order regardless of arity or sift strategy.
type refHeap []event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return before(&h[i], &h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// driveQueues feeds one interleaving of operations to both heaps and fails
// if they ever disagree. ops bytes select the action: values < popBias pop
// (when non-empty), everything else pushes an event whose time is derived
// from the byte, with a shared seq counter guaranteeing key uniqueness.
func driveQueues(t *testing.T, ops []byte) {
	t.Helper()
	var q eventQueue
	ref := &refHeap{}
	var seq uint64
	const popBias = 96 // ~3/8 pops so the heaps grow and drain
	for i, op := range ops {
		if op < popBias && q.Len() > 0 {
			got, want := q.pop(), heap.Pop(ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("op %d: pop mismatch: queue (at=%d seq=%d), reference (at=%d seq=%d)",
					i, got.at, got.seq, want.at, want.seq)
			}
			continue
		}
		// Coarse time quantization forces many equal-at events, exercising
		// the seq tiebreak; occasional large jumps exercise deep sifts.
		at := Time(op>>3) * 100
		if op&7 == 7 {
			at += Time(i) * 1e6
		}
		e := event{at: at, seq: seq, a: int64(i)}
		seq++
		q.push(e)
		heap.Push(ref, e)
	}
	for q.Len() > 0 {
		if ref.Len() == 0 {
			t.Fatalf("queue holds %d events the reference does not", q.Len())
		}
		got, want := q.pop(), heap.Pop(ref).(event)
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("drain: pop mismatch: queue (at=%d seq=%d), reference (at=%d seq=%d)",
				got.at, got.seq, want.at, want.seq)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("reference holds %d events the queue does not", ref.Len())
	}
}

// FuzzEventQueue lets the fuzzer search for an interleaving where the 4-ary
// queue and container/heap disagree. Run with: go test -fuzz FuzzEventQueue ./internal/sim
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{200, 201, 202, 0, 0, 0})
	f.Add([]byte{255, 7, 15, 23, 0, 128, 0, 0, 95, 95})
	seed := make([]byte, 512)
	r := rand.New(rand.NewSource(1))
	r.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<16 {
			ops = ops[:1<<16]
		}
		driveQueues(t, ops)
	})
}

// TestEventQueueMatchesReference is the deterministic property test run by
// plain `go test`: random interleavings at several scales, plus a reuse
// round after reset to cover the arena path.
func TestEventQueueMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	for _, n := range []int{1, 2, 7, 64, 1000, 20000} {
		ops := make([]byte, n)
		r.Read(ops)
		driveQueues(t, ops)
	}
}

// TestEventQueueReuseAfterReset verifies reset leaves no residue that a
// later run could observe: the same interleaving replayed on a reused queue
// behaves identically to a fresh one.
func TestEventQueueReuseAfterReset(t *testing.T) {
	var q eventQueue
	for i := 0; i < 100; i++ {
		q.push(event{at: Time(100 - i), seq: uint64(i)})
	}
	q.reset()
	if q.Len() != 0 {
		t.Fatalf("Len after reset = %d", q.Len())
	}
	spare := q.items[:cap(q.items)]
	for i := range spare {
		e := &spare[i]
		if e.at != 0 || e.seq != 0 || e.fn != nil || e.kind != 0 || e.a != 0 || e.b != 0 {
			t.Fatalf("reset left residue at slot %d: %+v", i, *e)
		}
	}
	ops := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(ops)
	driveQueues(t, ops)
}
