package sim

import "sync/atomic"

// BoundaryEvent is one typed event crossing a wedge boundary in the
// parallel engine. It carries the caller-assigned (At, Seq) key so the
// receiving wedge's queue merges it into exactly the position the serial
// engine would have dispatched it from.
type BoundaryEvent struct {
	At   Time
	Seq  uint64
	Kind uint8
	A, B int64
}

// spscRing is a bounded single-producer single-consumer ring buffer for
// boundary events. Exactly one goroutine may push and exactly one may pop.
//
// head and tail are monotone position counters (masked on access), each on
// its own cache line so the producer's tail stores and the consumer's head
// stores don't false-share. Go's atomic operations are sequentially
// consistent, which gives the publication guarantee the wedge protocol
// needs: a producer's buffer write happens before its tail store, so a
// consumer that loads that tail value reads the completed event — and,
// transitively, a consumer that observes a producer's frontier store also
// observes every ring push sequenced before it.
type spscRing struct {
	buf  []BoundaryEvent
	mask uint64
	_    [64]byte
	head atomic.Uint64 // next position to pop; owned by the consumer
	_    [64]byte
	tail atomic.Uint64 // next position to push; owned by the producer
	_    [64]byte
}

// newSPSCRing returns a ring holding up to capacity events; capacity is
// rounded up to a power of two.
func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &spscRing{buf: make([]BoundaryEvent, n), mask: uint64(n - 1)}
}

// tryPush appends ev, reporting false if the ring is full. Producer-only.
func (r *spscRing) tryPush(ev BoundaryEvent) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = ev
	r.tail.Store(t + 1)
	return true
}

// tryPop removes the oldest event, reporting false if the ring is empty.
// Consumer-only.
func (r *spscRing) tryPop() (BoundaryEvent, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return BoundaryEvent{}, false
	}
	ev := r.buf[h&r.mask]
	r.head.Store(h + 1)
	return ev, true
}

// clear discards any pending events. Only safe when no producer is
// running; used by WedgeGroup.Reset after an aborted run.
func (r *spscRing) clear() {
	r.head.Store(r.tail.Load())
}
