package sim

import "testing"

// nullDispatcher satisfies Dispatcher for tests that only exercise the
// queue, not the model.
type nullDispatcher struct{}

func (nullDispatcher) Dispatch(uint8, int64, int64) {}

// feedDeltas schedules and drains events whose push deltas all equal d,
// enough times that the sampled histogram passes deltaTuneMinSamples.
func feedDeltas(e *Engine, d Time, n int) {
	for i := 0; i < n; i++ {
		e.ScheduleEvent(e.Now()+d, 0, 0, 0)
		e.RunAll()
	}
}

// TestAutoTuneNarrowRegime: a workload whose observed deltas are far
// narrower than the declared horizon hint must get proportionally finer
// buckets than the hint alone would select.
func TestAutoTuneNarrowRegime(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30) // worst-case declaration: coarse buckets
	hintShift := e.queue.shift

	feedDeltas(e, 100, 2*deltaTuneMinSamples*(deltaSampleMask+1)) // actual deltas ≈ 2^7
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift >= hintShift {
		t.Fatalf("narrow workload not tuned: shift %d, hint shift %d",
			e.queue.shift, hintShift)
	}
	// 2^7-wide deltas over 256 buckets want the minimum shift.
	if want := shiftForDelta(1 << 7); e.queue.shift != want {
		t.Fatalf("tuned shift = %d, want %d", e.queue.shift, want)
	}
}

// TestAutoTuneWideRegimeKeepsHint: tuning only ever narrows the buckets.
// When the observed deltas are wider than the hint (the hint was too
// optimistic), the hint's shift is kept: the overflow heap already
// handles far events, and widening would coarsen the common case.
func TestAutoTuneWideRegimeKeepsHint(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 10)
	hintShift := e.queue.shift

	feedDeltas(e, 1<<24, 2*deltaTuneMinSamples*(deltaSampleMask+1))
	e.Reset()
	e.SetHorizonHint(1 << 10)
	if e.queue.shift != hintShift {
		t.Fatalf("wide workload changed shift: %d, want hint %d",
			e.queue.shift, hintShift)
	}
}

// TestAutoTuneNeedsSamples: below deltaTuneMinSamples observed deltas the
// hint is used unmodified — a handful of samples is not a distribution.
func TestAutoTuneNeedsSamples(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)
	hintShift := e.queue.shift

	feedDeltas(e, 100, int(deltaTuneMinSamples/2)*(deltaSampleMask+1)/2)
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift != hintShift {
		t.Fatalf("undersampled engine tuned anyway: shift %d, hint %d",
			e.queue.shift, hintShift)
	}
}

// TestAutoTuneTailOutliersIgnored: a tight-delta workload with a rare far
// outlier (the sleep-timer pattern) must still tune to the tight mode,
// leaving the outlier to the overflow heap. The outlier is planted at a
// deliberately sampled push index (sampling takes every 16th push) so the
// test exercises the percentile cut, not the sampling phase.
func TestAutoTuneTailOutliersIgnored(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)

	n := 200 * (deltaSampleMask + 1) // 200 samples: 1 outlier is under the p99 cut
	for i := 0; i < n; i++ {
		d := Time(200) // ≈ 2^8
		if i == deltaSampleMask {
			d = 1 << 28 // exactly one sampled outlier
		}
		e.ScheduleEvent(e.Now()+d, 0, 0, 0)
		e.RunAll()
	}
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if want := shiftForDelta(1 << 8); e.queue.shift != want {
		t.Fatalf("outlier-polluted tuning: shift %d, want %d", e.queue.shift, want)
	}
}

// TestAutoTuneConsumedOnce: SetHorizonHint clears the histogram, so a
// second hint without intervening traffic falls back to the hint shift.
func TestAutoTuneConsumedOnce(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)
	hintShift := e.queue.shift

	feedDeltas(e, 100, 2*deltaTuneMinSamples*(deltaSampleMask+1))
	e.Reset()
	e.SetHorizonHint(1 << 30)
	tuned := e.queue.shift
	if tuned == hintShift {
		t.Fatal("first hint did not tune; the test would be vacuous")
	}
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift != hintShift {
		t.Fatalf("second hint reused consumed samples: shift %d (tuned was %d), want %d",
			e.queue.shift, tuned, hintShift)
	}
}
