package sim

import "testing"

// nullDispatcher satisfies Dispatcher for tests that only exercise the
// queue, not the model.
type nullDispatcher struct{}

func (nullDispatcher) Dispatch(uint8, int64, int64) {}

// feedDeltas schedules and drains events whose push deltas all equal d,
// enough times that the sampled histogram passes deltaTuneMinSamples.
func feedDeltas(e *Engine, d Time, n int) {
	for i := 0; i < n; i++ {
		e.ScheduleEvent(e.Now()+d, 0, 0, 0)
		e.RunAll()
	}
}

// TestAutoTuneNarrowRegime: a workload whose observed deltas are far
// narrower than the declared horizon hint must get proportionally finer
// buckets than the hint alone would select.
func TestAutoTuneNarrowRegime(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30) // worst-case declaration: coarse buckets
	hintShift := e.queue.shift

	feedDeltas(e, 100, 2*deltaTuneMinSamples*(deltaSampleMask+1)) // actual deltas ≈ 2^7
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift >= hintShift {
		t.Fatalf("narrow workload not tuned: shift %d, hint shift %d",
			e.queue.shift, hintShift)
	}
	// 2^7-wide deltas over 256 buckets want the minimum shift.
	if want := shiftForDelta(1 << 7); e.queue.shift != want {
		t.Fatalf("tuned shift = %d, want %d", e.queue.shift, want)
	}
}

// TestAutoTuneWideRegimeWidens: when the observed deltas overwhelmingly
// exceed the declared hint — here 100% of pushes sit far past the hint's
// window span — keeping the hint would route that whole mass through the
// overflow heap every run. The churn gate (≥ 2% of pushes beyond the
// declared span) trips and the window widens to cover the observed p99.
func TestAutoTuneWideRegimeWidens(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 10)
	hintShift := e.queue.shift

	feedDeltas(e, 1<<24, 2*deltaTuneMinSamples*(deltaSampleMask+1))
	e.Reset()
	e.SetHorizonHint(1 << 10)
	if e.queue.shift <= hintShift {
		t.Fatalf("all-far workload did not widen: shift %d, hint shift %d",
			e.queue.shift, hintShift)
	}
	// Deltas of 2^24 land in histogram bucket 25 (bucket b holds deltas
	// < 2^b), so the tuned window must cover 2^25-wide deltas.
	if want := shiftForDelta(1 << 25); e.queue.shift != want {
		t.Fatalf("widened shift = %d, want %d", e.queue.shift, want)
	}
}

// TestAutoTuneWideTailUnderGateKeepsHint: a far tail that is real enough
// to drag the p99 past the declared hint but too thin to matter (~1.5% of
// pushes, below the 2% churn gate) must NOT widen the window. Coarsening
// the buckets would tax the 98%+ of pushes that fit; the overflow heap
// absorbs a tail this thin for less than wide buckets would cost. This is
// the multi-pulse-stabilization shape: sleep timers fit the declared
// window there, and only a sliver of pushes reach past it.
func TestAutoTuneWideTailUnderGateKeepsHint(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 10)
	hintShift := e.queue.shift

	// 200 samples, 3 of them far: the p99 cut (target 198, only 197 near)
	// lands in the far bucket, but 3/200 = 1.5% is under the 2% gate. The
	// far pushes are planted at sampled indices (every 16th push is
	// sampled) so the gate arithmetic is exact.
	n := 200 * (deltaSampleMask + 1)
	for i := 0; i < n; i++ {
		d := Time(900) // fits the 1<<10 hint
		switch i {
		case deltaSampleMask, 3*(deltaSampleMask+1) - 1, 5*(deltaSampleMask+1) - 1:
			d = 1 << 24 // far beyond the hint's window span
		}
		e.ScheduleEvent(e.Now()+d, 0, 0, 0)
		e.RunAll()
	}
	e.Reset()
	e.SetHorizonHint(1 << 10)
	if e.queue.shift != hintShift {
		t.Fatalf("sub-gate far tail changed shift: %d, want hint %d",
			e.queue.shift, hintShift)
	}
}

// TestAutoTuneNeedsSamples: below deltaTuneMinSamples observed deltas the
// hint is used unmodified — a handful of samples is not a distribution.
func TestAutoTuneNeedsSamples(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)
	hintShift := e.queue.shift

	feedDeltas(e, 100, int(deltaTuneMinSamples/2)*(deltaSampleMask+1)/2)
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift != hintShift {
		t.Fatalf("undersampled engine tuned anyway: shift %d, hint %d",
			e.queue.shift, hintShift)
	}
}

// TestAutoTuneTailOutliersIgnored: a tight-delta workload with a rare far
// outlier (the sleep-timer pattern) must still tune to the tight mode,
// leaving the outlier to the overflow heap. The outlier is planted at a
// deliberately sampled push index (sampling takes every 16th push) so the
// test exercises the percentile cut, not the sampling phase.
func TestAutoTuneTailOutliersIgnored(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)

	n := 200 * (deltaSampleMask + 1) // 200 samples: 1 outlier is under the p99 cut
	for i := 0; i < n; i++ {
		d := Time(200) // ≈ 2^8
		if i == deltaSampleMask {
			d = 1 << 28 // exactly one sampled outlier
		}
		e.ScheduleEvent(e.Now()+d, 0, 0, 0)
		e.RunAll()
	}
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if want := shiftForDelta(1 << 8); e.queue.shift != want {
		t.Fatalf("outlier-polluted tuning: shift %d, want %d", e.queue.shift, want)
	}
}

// TestAutoTuneConsumedOnce: SetHorizonHint clears the histogram, so a
// second hint without intervening traffic falls back to the hint shift.
func TestAutoTuneConsumedOnce(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(nullDispatcher{})
	e.SetHorizonHint(1 << 30)
	hintShift := e.queue.shift

	feedDeltas(e, 100, 2*deltaTuneMinSamples*(deltaSampleMask+1))
	e.Reset()
	e.SetHorizonHint(1 << 30)
	tuned := e.queue.shift
	if tuned == hintShift {
		t.Fatal("first hint did not tune; the test would be vacuous")
	}
	e.Reset()
	e.SetHorizonHint(1 << 30)
	if e.queue.shift != hintShift {
		t.Fatalf("second hint reused consumed samples: shift %d (tuned was %d), want %d",
			e.queue.shift, tuned, hintShift)
	}
}
