package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Conservative wedge-parallel engine mode.
//
// A WedgeGroup runs P Engines — one per wedge of a partitioned model — as
// concurrent workers under a classic conservative (Chandy–Misra–Bryant
// style) bounded window, with the model's per-link minimum delay d− as
// lookahead:
//
//   - Each wedge w publishes a frontier C_w: "I have executed every local
//     event with time ≤ C_w, and every cross-wedge send produced by those
//     executions has been pushed to its ring." Frontiers start at −1 and
//     only grow.
//   - Cross-wedge deliveries travel through bounded SPSC rings, one per
//     (producer, consumer) wedge pair that shares at least one boundary
//     link. Every delivery crossing a boundary has delay ≥ d−, so a send
//     made by w after publishing C_w (i.e. from executing some event at
//     t > C_w) arrives at t + d ≥ t + d− > C_w + d−.
//   - Therefore wedge w may safely execute up to
//     bound_w = min over in-neighbors q of (C_q + d−), capped at the run
//     horizon: any delivery not yet visible in w's rings is strictly later
//     than bound_w. Executing [.., bound_w] then publishing C_w = bound_w
//     never creates a past event — the engine's own past-event panic stays
//     live as the runtime assertion of exactly this invariant.
//
// Determinism: every event carries a caller-assigned, partition-stable
// (at, seq) key (see Engine.ScheduleEventKeyed), and each wedge's queue
// realizes the ascending (at, seq) order, so per-node dispatch order is
// identical to the serial engine regardless of P or thread interleaving.
//
// Liveness: the wedge holding the globally minimal frontier has
// bound = C_min + d− > C_min ≥ its own frontier, so it can always advance
// and, after publishing, kicks its out-neighbors; by induction every
// frontier reaches the horizon. Two blocking states exist and both are
// kick-covered: a worker waiting on its wake channel is kicked after any
// in-neighbor frontier publish, and a producer spinning on a full ring
// kicks the consumer (which drains at the top of its loop) while draining
// its own inbound rings so no cycle of full rings can wedge.
//
// Termination: sends that would land beyond the horizon are dropped at the
// producer — observably identical to the serial engine, which leaves such
// events unexecuted in its queue. Once bound_w reaches the horizon every
// in-neighbor frontier is ≥ horizon − d−, so all future sends toward w are
// beyond the horizon and dropped; w drains, runs to the horizon, publishes,
// and exits without waiting for anyone.
type WedgeGroup struct {
	dMin    Time
	horizon Time
	wedges  []Wedge

	abortCh   chan struct{}
	aborted   atomic.Bool
	abortOnce sync.Once

	panicMu  sync.Mutex
	panicVal any

	interrupted atomic.Bool
}

// Wedge is one worker's slice of the model: a private Engine plus the
// frontier and rings tying it to its neighbors.
type Wedge struct {
	eng   Engine
	idx   int
	group *WedgeGroup

	frontier atomic.Int64
	wake     chan struct{} // cap 1; kicked by in-neighbor publishes

	in  []wedgeLink // rings this wedge consumes, one per in-neighbor
	out []wedgeLink // rings this wedge produces into, one per out-neighbor
}

// wedgeLink is one directed ring between two wedges, as seen from either
// endpoint.
type wedgeLink struct {
	ring *spscRing
	peer int
}

// NewWedgeGroup creates n wedges with disconnected engines. dMin is the
// model's minimum cross-wedge delivery delay (the lookahead); it must be
// positive, which delay.Bounds.Validate guarantees for every model in this
// repository.
func NewWedgeGroup(n int, dMin Time) *WedgeGroup {
	if n < 2 {
		panic("sim: WedgeGroup needs at least 2 wedges")
	}
	if dMin <= 0 {
		panic("sim: WedgeGroup needs a positive delay lower bound")
	}
	g := &WedgeGroup{dMin: dMin, wedges: make([]Wedge, n)}
	for i := range g.wedges {
		w := &g.wedges[i]
		w.idx = i
		w.group = g
		w.wake = make(chan struct{}, 1)
		w.frontier.Store(-1)
	}
	return g
}

// Size returns the number of wedges.
func (g *WedgeGroup) Size() int { return len(g.wedges) }

// Wedge returns wedge i.
func (g *WedgeGroup) Wedge(i int) *Wedge { return &g.wedges[i] }

// DMin returns the group's lookahead (minimum cross-wedge delay).
func (g *WedgeGroup) DMin() Time { return g.dMin }

// Connect creates the src→dst ring with room for capacity in-flight
// boundary events. Call once per directed wedge pair that shares at least
// one cross-wedge link, before Run.
func (g *WedgeGroup) Connect(src, dst, capacity int) {
	r := newSPSCRing(capacity)
	g.wedges[src].out = append(g.wedges[src].out, wedgeLink{ring: r, peer: dst})
	g.wedges[dst].in = append(g.wedges[dst].in, wedgeLink{ring: r, peer: src})
}

// Engine returns the wedge's private engine, for dispatcher installation
// and build-time event scheduling (single-threaded, before Run).
func (w *Wedge) Engine() *Engine { return &w.eng }

// Index returns the wedge's position in its group.
func (w *Wedge) Index() int { return w.idx }

// Send routes a boundary event to wedge dst. It may only be called from
// within this wedge's event handlers during Run (build-time setup must
// schedule into the owning wedge's engine directly instead). Events beyond
// the run horizon are dropped — the serial engine would never execute them
// either. If the ring is full, Send kicks
// the consumer and drains its own inbound rings while spinning, so rings
// can never form a cycle of blocked producers.
func (w *Wedge) Send(dst int, ev BoundaryEvent) {
	g := w.group
	if ev.At > g.horizon {
		return
	}
	if ev.At < w.eng.Now()+g.dMin {
		panic(fmt.Sprintf(
			"sim: cross-wedge delivery at %v violates lookahead (now %v + dMin %v); delay model broke its declared minimum",
			ev.At, w.eng.Now(), g.dMin))
	}
	var link *wedgeLink
	for i := range w.out {
		if w.out[i].peer == dst {
			link = &w.out[i]
			break
		}
	}
	if link == nil {
		panic(fmt.Sprintf("sim: no ring from wedge %d to wedge %d", w.idx, dst))
	}
	for !link.ring.tryPush(ev) {
		if g.aborted.Load() {
			return // run is being discarded; dropping is fine
		}
		g.wedges[dst].kick()
		w.drain() // keep our own producers unblocked
		runtime.Gosched()
	}
}

// kick wakes the wedge's worker if it is (or is about to start) waiting.
func (w *Wedge) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// drain moves every visible boundary event from the inbound rings into the
// wedge's queue. All such events are strictly later than the wedge's
// current execution point (see the protocol comment), so scheduling them —
// even mid-Run, from inside Send's spin — can never create a past event.
func (w *Wedge) drain() {
	for i := range w.in {
		r := w.in[i].ring
		for {
			ev, ok := r.tryPop()
			if !ok {
				break
			}
			w.eng.ScheduleEventKeyed(ev.At, ev.Seq, ev.Kind, ev.A, ev.B)
		}
	}
}

// computeBound returns the latest time this wedge may currently execute
// through: min over in-neighbor frontiers + d−, capped at the horizon. A
// wedge with no in-neighbors is unconstrained.
func (w *Wedge) computeBound() Time {
	bound := w.group.horizon
	for i := range w.in {
		q := &w.group.wedges[w.in[i].peer]
		if b := Time(q.frontier.Load()) + w.group.dMin; b < bound {
			bound = b
		}
	}
	return bound
}

// run is one worker's loop. It returns the number of events executed.
func (w *Wedge) run() uint64 {
	g := w.group
	var executed uint64
	lastBound := Time(-1)
	for {
		if g.aborted.Load() {
			return executed
		}
		w.drain()
		bound := w.computeBound()
		if bound <= lastBound {
			// No in-neighbor has advanced: nothing below the old bound can
			// exist and nothing new is executable. Sleep until kicked. The
			// kick channel is buffered, so a publish racing with this wait
			// is never lost.
			select {
			case <-w.wake:
			case <-g.abortCh:
				return executed
			}
			continue
		}
		// Catch sends flushed before the frontier values we just read:
		// sequential consistency orders their ring pushes before the
		// frontier store, so this drain observes them all.
		w.drain()
		executed += w.eng.Run(bound)
		if w.eng.Interrupted() {
			g.interrupted.Store(true)
			g.abort()
			return executed
		}
		// Publish only after Run returns: every send from events ≤ bound
		// is flushed, so the frontier's contract holds when neighbors read
		// it. Then wake consumers so they recompute their bounds.
		w.frontier.Store(int64(bound))
		for i := range w.out {
			g.wedges[w.out[i].peer].kick()
		}
		lastBound = bound
		if bound >= g.horizon {
			return executed
		}
	}
}

// abort makes every worker stop at its next loop or spin check.
func (g *WedgeGroup) abort() {
	g.abortOnce.Do(func() {
		g.aborted.Store(true)
		close(g.abortCh)
	})
}

// Run executes all wedges concurrently until every frontier reaches the
// horizon (events at exactly the horizon still execute, matching
// Engine.Run). It returns the total number of events executed. If any
// worker panics, Run re-panics with the first recovered value after all
// workers have stopped. Interrupted reports whether a per-engine stop
// check ended the run early instead.
func (g *WedgeGroup) Run(horizon Time) uint64 {
	g.horizon = horizon
	g.abortCh = make(chan struct{})
	g.aborted.Store(false)
	g.abortOnce = sync.Once{}
	g.interrupted.Store(false)
	g.panicVal = nil

	var wg sync.WaitGroup
	var total atomic.Uint64
	for i := range g.wedges {
		w := &g.wedges[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					g.panicMu.Lock()
					if g.panicVal == nil {
						g.panicVal = r
					}
					g.panicMu.Unlock()
					g.abort()
				}
			}()
			total.Add(w.run())
		}()
	}
	wg.Wait()
	if g.panicVal != nil {
		panic(g.panicVal)
	}
	return total.Load()
}

// Interrupted reports whether the most recent Run was ended early by a
// wedge engine's SetStopCheck hook.
func (g *WedgeGroup) Interrupted() bool { return g.interrupted.Load() }

// Reset returns the group to its pre-Run state — engines reset (keeping
// their queue arrays and dispatchers), frontiers at −1, rings and wake
// channels empty — so an arena-pooled group can be reused run to run.
func (g *WedgeGroup) Reset() {
	for i := range g.wedges {
		w := &g.wedges[i]
		w.eng.Reset()
		w.frontier.Store(-1)
		select {
		case <-w.wake:
		default:
		}
		for j := range w.in {
			w.in[j].ring.clear()
		}
	}
}
