package sim

import "slices"

// Bounded-horizon calendar queue.
//
// The simulation workload has a structural property a comparison heap cannot
// exploit: almost every event is scheduled within a small, known horizon of
// now — link delays fall in [d−, d+] and link timers in [T−, T+] — while the
// few that are not (sleep timers, layer-0 schedules, MaxTime sentinels) are
// *far* in the future. calendarQueue splits pending events accordingly:
//
//   - a ring of calBuckets buckets, each spanning 2^shift picoseconds of
//     simulated time, holds every event within the ring's window
//     [cursor, cursor+calBuckets) (in bucket-time units). Push appends to
//     the target bucket; pop advances the cursor to the first non-empty
//     bucket and consumes its sorted run front-to-back, so both are O(1)
//     amortized with contiguous memory traffic.
//   - everything beyond the window overflows into the retained 4-ary heap
//     (eventQueue) and migrates into the ring as the cursor approaches, so
//     a far-future event costs one heap round trip regardless of how long
//     it stays pending.
//
// Invariants (I1) every live ring event has bucketOf(at) in
// [cursor, cursor+calBuckets); (I2) every overflow event has bucketOf(at) >=
// cursor+calBuckets; (I3) within a bucket, items[head:sorted] is ascending
// by (at, seq) and items[sorted:] holds unsorted appends. The cursor never
// moves backward except through pushSlow, which rebuilds the ring to
// re-establish (I1) and (I2) around the new window.
//
// The pop order is strictly ascending (at, seq) — bit-identical to the
// heap's, because keys are unique and both structures realize the same
// total order; bucketing by at and sorting runs by (at, seq) cannot change
// a total order it refines. The golden tests and the three-way differential
// fuzz harness in queue_fuzz_test.go pin this.

const (
	calBuckets = 256 // ring size; power of two
	calMask    = calBuckets - 1
	// ringBits is log2(calBuckets): at shift s the ring spans deltas up to
	// 2^(s+ringBits) ps before events spill to the overflow heap.
	ringBits = 8
	// defaultCalShift is the log2 bucket width (in picoseconds) used when
	// the engine received no SetHorizonHint: ~4.1 ns buckets, ~1 µs span.
	defaultCalShift = 12
	// calSortThreshold is the appended-run length above which ensureSorted
	// switches from insertion sort (ideal for the nearly-sorted runs the
	// simulator produces) to pdqsort.
	calSortThreshold = 24
)

// calBucket is one slot of the ring. Consumed items are zeroed so closures
// scheduled through Engine.Schedule don't outlive their execution.
type calBucket struct {
	items  []event
	head   int // items[:head] are consumed (zeroed)
	sorted int // items[head:sorted] is ascending by (at, seq)
}

// clear empties the bucket, keeping its backing array.
func (b *calBucket) clear() {
	for i := b.head; i < len(b.items); i++ {
		b.items[i] = event{}
	}
	b.items = b.items[:0]
	b.head = 0
	b.sorted = 0
}

// ensureSorted extends the sorted run over any unsorted appends, using
// scratch (owned by the queue, reused across buckets) for the merge. The
// appended run is sorted on its own first — appends arrive in seq order
// with nearly monotone at values, so insertion sort is O(n + inversions),
// with a pdqsort fallback for large disordered runs — and then merged
// with the existing sorted run in one backward pass.
//
// The merge is what keeps wide buckets affordable: under a wide window
// (see Engine.SetHorizonHint) one bucket can hold a whole cascade, and
// with the cursor parked mid-bucket each freshly appended event belongs
// near the FRONT of the remaining run. Per-element insertion would scan
// the whole run per push — quadratic across a campaign run — while the
// merge pays one O(existing + appended) pass per settle.
func (b *calBucket) ensureSorted(scratch *[]event) {
	n := len(b.items)
	if b.sorted >= n {
		return
	}
	run := b.items[b.sorted:]
	if len(run) > calSortThreshold {
		slices.SortFunc(run, func(a, c event) int {
			if before(&a, &c) {
				return -1
			}
			return 1
		})
	} else {
		for i := 1; i < len(run); i++ {
			e := run[i]
			j := i - 1
			for j >= 0 && before(&e, &run[j]) {
				run[j+1] = run[j]
				j--
			}
			run[j+1] = e
		}
	}
	if b.sorted == b.head || !before(&b.items[b.sorted], &b.items[b.sorted-1]) {
		b.sorted = n // already one ascending run
		return
	}
	// The runs overlap. Merge in whichever direction touches fewer
	// elements: a forward merge walks the existing elements below the
	// run's maximum, a backward merge shifts the ones above its minimum.
	// One probe against the sorted middle decides: if the run's maximum
	// sorts below it, the forward walk is under half the run and the
	// backward shift over half. Under a wide window the cursor parks
	// mid-bucket and fresh appends are the bucket's EARLIEST pending
	// events, so the forward walk is typically a handful of elements
	// while the backward one is the whole run — per-pop, that asymmetry
	// is the difference between linear and quadratic campaign runs.
	mid := b.head + (b.sorted-b.head)/2
	if b.head >= len(run) && before(&run[len(run)-1], &b.items[mid]) {
		// Forward merge into the consumed prefix: the write pointer w
		// trails both read pointers (w = ai+bi-len(run) while the run is
		// unexhausted), so no staging copy is needed; when the run
		// exhausts, w has caught up to ai exactly and the region is
		// contiguous with the untouched tail.
		w := b.head - len(run)
		ai, bi := b.head, 0
		for bi < len(run) {
			if ai < b.sorted && before(&b.items[ai], &run[bi]) {
				b.items[w] = b.items[ai]
				ai++
			} else {
				b.items[w] = run[bi]
				bi++
			}
			w++
		}
		b.head -= len(run)
		// Vacate the appended slots; their events now live in the merged
		// region and the copies must not retain closures.
		for i := b.sorted; i < n; i++ {
			b.items[i] = event{}
		}
		b.items = b.items[:b.sorted]
		return // b.sorted already bounds the full sorted run
	}
	// Backward merge, with the appended run staged in scratch so the
	// in-place writes cannot clobber unread elements.
	*scratch = append((*scratch)[:0], run...)
	sc := *scratch
	ai, bi := b.sorted-1, len(sc)-1
	for k := n - 1; bi >= 0; k-- {
		if ai >= b.head && before(&sc[bi], &b.items[ai]) {
			b.items[k] = b.items[ai]
			ai--
		} else {
			b.items[k] = sc[bi]
			bi--
		}
	}
	// Drop the staged copies so closures don't outlive their events.
	for i := range sc {
		sc[i] = event{}
	}
	b.sorted = n
}

// calendarQueue is the engine's event queue: a calendar ring over the near
// horizon backed by the 4-ary heap for far-future events.
type calendarQueue struct {
	shift    uint  // log2 bucket width in picoseconds; 0 means "unset"
	cursor   int64 // bucket-time index the window starts at
	ringLen  int   // live events in the ring
	heapOnly bool  // bypass the ring: all events through the overflow heap
	buckets  [calBuckets]calBucket
	overflow eventQueue // far-future tier; also the fuzz reference impl
	spill    []event    // scratch for pushSlow window rebuilds
	merge    []event    // scratch for ensureSorted's backward merge
}

// Len reports the number of pending events.
func (q *calendarQueue) Len() int { return q.ringLen + q.overflow.Len() }

// bucketOf maps an instant to its bucket-time index.
func (q *calendarQueue) bucketOf(at Time) int64 { return int64(at) >> q.shift }

// shiftForDelta returns the smallest log2 bucket width whose ring window
// spans at least 2*delta, so events within delta of now are always
// bucket-resident.
func shiftForDelta(delta Time) uint {
	shift := uint(1)
	for (int64(calBuckets) << shift) < 2*int64(delta) {
		shift++
	}
	return shift
}

// setHorizon sizes the ring so that events within delta of now are always
// bucket-resident: the window spans at least 2*delta. It must be called on
// an empty queue (sizing is per run; Engine.Reset keeps it).
func (q *calendarQueue) setHorizon(delta Time) {
	q.setShift(shiftForDelta(delta))
}

// setShift installs a log2 bucket width directly. It must be called on an
// empty queue.
func (q *calendarQueue) setShift(shift uint) {
	if q.Len() != 0 {
		panic("sim: horizon hint on a non-empty queue")
	}
	q.shift = shift
	q.cursor = 0
}

// push inserts e into the ring or, beyond the window, the overflow heap.
func (q *calendarQueue) push(e event) {
	if q.heapOnly {
		q.overflow.push(e)
		return
	}
	if q.shift == 0 {
		q.shift = defaultCalShift
	}
	b := q.bucketOf(e.at)
	switch {
	case b < q.cursor:
		q.pushSlow(e, b)
		return
	case b-q.cursor >= calBuckets:
		q.overflow.push(e)
		return
	}
	bk := &q.buckets[b&calMask]
	bk.items = append(bk.items, e)
	q.ringLen++
}

// pushSlow handles a push behind the window start. The engine never does
// this mid-run (events are scheduled at or after now, and the cursor never
// passes now's bucket while events remain there); it happens only when a
// queue is refilled after draining or after a horizon-limited Run, so the
// O(ring) rebuild is off the hot path.
func (q *calendarQueue) pushSlow(e event, b int64) {
	if q.ringLen == 0 {
		// Nothing to respill: just restart the window at the new event. Any
		// overflow events whose buckets precede cursor+calBuckets migrate in
		// lazily on the next settle, exactly as after a window jump.
		q.cursor = b
		q.place(e)
		return
	}
	q.spill = q.spill[:0]
	for i := range q.buckets {
		bk := &q.buckets[i]
		q.spill = append(q.spill, bk.items[bk.head:]...)
		bk.clear()
	}
	q.ringLen = 0
	q.cursor = b
	q.place(e)
	for _, ev := range q.spill {
		q.place(ev)
	}
	for i := range q.spill {
		q.spill[i] = event{}
	}
}

// place inserts an event relative to the current window; the caller
// guarantees bucketOf(e.at) >= cursor.
func (q *calendarQueue) place(e event) {
	b := q.bucketOf(e.at)
	if b-q.cursor >= calBuckets {
		q.overflow.push(e)
		return
	}
	bk := &q.buckets[b&calMask]
	bk.items = append(bk.items, e)
	q.ringLen++
}

// migrate pulls overflow events whose bucket has entered the window into
// the ring, maintaining (I2).
func (q *calendarQueue) migrate() {
	lim := q.cursor + calBuckets
	for q.overflow.Len() > 0 && q.bucketOf(q.overflow.peekTime()) < lim {
		q.place(q.overflow.pop())
	}
}

// settle positions the cursor at the bucket holding the earliest event,
// sorts that bucket's pending run, and returns it. The queue must not be
// empty. Empty-bucket scanning is amortized: the cursor only moves forward
// (one full window traversal per window's worth of simulated time), and a
// window jump lands exactly on the overflow minimum's bucket.
func (q *calendarQueue) settle() *calBucket {
	if q.ringLen == 0 {
		// All pending events are far-future: jump the window to them.
		q.cursor = q.bucketOf(q.overflow.peekTime())
		q.migrate()
	}
	for scanned := 0; ; scanned++ {
		q.migrate()
		bk := &q.buckets[q.cursor&calMask]
		if bk.head < len(bk.items) {
			bk.ensureSorted(&q.merge)
			return bk
		}
		if scanned > calBuckets {
			panic("sim: calendar ring invariant violated (event outside window)")
		}
		q.cursor++
	}
}

// peekTime returns the time of the earliest event without removing it.
func (q *calendarQueue) peekTime() Time {
	if q.heapOnly {
		return q.overflow.peekTime()
	}
	bk := q.settle()
	return bk.items[bk.head].at
}

// pop removes and returns the earliest event. It panics on an empty queue;
// callers must check Len first.
func (q *calendarQueue) pop() event {
	if q.heapOnly {
		return q.overflow.pop()
	}
	bk := q.settle()
	e := bk.items[bk.head]
	bk.items[bk.head] = event{}
	bk.head++
	if bk.head == len(bk.items) {
		bk.clear()
	}
	q.ringLen--
	return e
}

// popBatchTyped pops up to max consecutive typed (fn == nil) events sharing
// the earliest pending timestamp, appending their payloads to dst. Events
// at one instant share a bucket and, after sorting, form a contiguous run,
// so the batch is a straight scan. It returns the extended slice and the
// shared timestamp; an empty batch (timestamp of a closure event) leaves
// the queue untouched.
func (q *calendarQueue) popBatchTyped(dst []EventRec, max int) ([]EventRec, Time) {
	if q.heapOnly {
		// No contiguous sorted runs to scan in the heap: return an empty
		// batch so the engine falls back to one pop per event, keeping the
		// heap arm's dispatch path genuinely heap-shaped.
		return dst, q.overflow.peekTime()
	}
	bk := q.settle()
	at := bk.items[bk.head].at
	i := bk.head
	end := len(bk.items)
	for i < end && len(dst) < max {
		e := &bk.items[i]
		if e.at != at || e.fn != nil {
			break
		}
		dst = append(dst, EventRec{Kind: e.kind, A: e.a, B: e.b})
		*e = event{}
		i++
	}
	q.ringLen -= i - bk.head
	bk.head = i
	if bk.head == len(bk.items) {
		bk.clear()
	}
	return dst, at
}

// reset empties the queue while keeping its backing arrays (ring buckets,
// overflow heap, spill scratch) for reuse. Bucket sizing is retained; a run
// with a different horizon re-sizes via setHorizon.
func (q *calendarQueue) reset() {
	for i := range q.buckets {
		q.buckets[i].clear()
	}
	q.ringLen = 0
	q.cursor = 0
	q.overflow.reset()
}
