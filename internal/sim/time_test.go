package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Errorf("Nanosecond = %d ps", Nanosecond)
	}
	if Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond {
		t.Error("unit ladder broken")
	}
}

func TestNanosecondsRoundTrip(t *testing.T) {
	cases := []Time{0, 1, 999, 1000, 7161, 8197, -42, 123456789}
	for _, c := range cases {
		if got := FromNanoseconds(c.Nanoseconds()); got != c {
			t.Errorf("round trip %d → %v → %d", c, c.Nanoseconds(), got)
		}
	}
}

func TestFromNanosecondsRounds(t *testing.T) {
	if got := FromNanoseconds(7.1614); got != 7161 {
		t.Errorf("FromNanoseconds(7.1614) = %d, want 7161", got)
	}
	if got := FromNanoseconds(7.1616); got != 7162 {
		t.Errorf("FromNanoseconds(7.1616) = %d, want 7162", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		0:             "0ns",
		7161:          "7.161ns",
		8000:          "8ns",
		-1500:         "-1.5ns",
		1000000:       "1000ns",
		1:             "0.001ns",
		1030:          "1.03ns",
		-1 * 1000:     "-1ns",
		1234567:       "1234.567ns",
		1000000000000: "1000000000ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 {
		t.Error("MinTime broken")
	}
	if MaxOf(3, 5) != 5 || MaxOf(5, 3) != 5 {
		t.Error("MaxOf broken")
	}
	if AbsTime(-7) != 7 || AbsTime(7) != 7 || AbsTime(0) != 0 {
		t.Error("AbsTime broken")
	}
}

func TestScale(t *testing.T) {
	// ϑ = 1.05 stretching, as used by Condition 2.
	if got := Scale(100, 105, 100); got != 105 {
		t.Errorf("Scale(100, 1.05) = %d", got)
	}
	// Rounding to nearest.
	if got := Scale(10, 105, 100); got != 11 { // 10.5 rounds up
		t.Errorf("Scale(10, 1.05) = %d, want 11", got)
	}
	if got := Scale(9, 105, 100); got != 9 { // 9.45 rounds down
		t.Errorf("Scale(9, 1.05) = %d, want 9", got)
	}
	if got := Scale(31980, 105, 100); got != 33579 {
		t.Errorf("Scale(31980, 1.05) = %d, want 33579", got)
	}
}

func TestScalePanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scale with zero denominator did not panic")
		}
	}()
	Scale(1, 1, 0)
}

func TestScaleIdentityProperty(t *testing.T) {
	f := func(v int32) bool {
		tm := Time(v)
		return Scale(tm, 7, 7) == tm && Scale(tm, 1, 1) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleMonotoneProperty(t *testing.T) {
	// Scaling by ϑ ≥ 1 never shrinks a nonnegative duration.
	f := func(v uint32) bool {
		tm := Time(v)
		return Scale(tm, 105, 100) >= tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxTimeSentinel(t *testing.T) {
	if MaxTime != Time(math.MaxInt64) {
		t.Error("MaxTime is not the largest Time")
	}
}
