// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated time is integer picoseconds (Time). Events are executed in
// nondecreasing time order; events scheduled for the same instant execute in
// the order they were scheduled (stable FIFO tie-breaking), which makes every
// simulation a pure function of its inputs and seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated time instant or duration in picoseconds.
//
// Integer picoseconds represent every delay value used in the paper exactly
// (e.g. d− = 7.161 ns = 7161 ps) and keep event ordering free of
// floating-point round-off.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// MaxTime is the largest representable instant. It is used as an "infinitely
// far in the future" sentinel, e.g. for timers that never expire.
const MaxTime Time = math.MaxInt64

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Picoseconds reports t as an integer number of picoseconds.
func (t Time) Picoseconds() int64 { return int64(t) }

// FromNanoseconds converts a floating-point nanosecond value to a Time,
// rounding to the nearest picosecond.
func FromNanoseconds(ns float64) Time {
	return Time(math.Round(ns * float64(Nanosecond)))
}

// String formats t as a nanosecond value with picosecond resolution,
// e.g. "7.161ns".
func (t Time) String() string {
	neg := ""
	v := int64(t)
	if v < 0 {
		neg = "-"
		v = -v
	}
	whole := v / int64(Nanosecond)
	frac := v % int64(Nanosecond)
	if frac == 0 {
		return fmt.Sprintf("%s%dns", neg, whole)
	}
	s := fmt.Sprintf("%s%d.%03d", neg, whole, frac)
	// Trim trailing zeros of the fractional part for readability.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return s + "ns"
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the larger of a and b.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// AbsTime returns the absolute value of t.
func AbsTime(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}

// Scale returns t scaled by the rational factor num/den, rounding to the
// nearest picosecond. It is used for drift factors such as ϑ = 1.05
// (num=105, den=100) without introducing floating point into timing.
func Scale(t Time, num, den int64) Time {
	if den == 0 {
		panic("sim: Scale with zero denominator")
	}
	v := int64(t) * num
	// Round half away from zero so Scale(-t) == -Scale(t).
	if v >= 0 {
		return Time((v + den/2) / den)
	}
	return Time(-((-v + den/2) / den))
}
