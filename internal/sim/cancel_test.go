package sim

import "testing"

// TestStopCheckInterrupts verifies that the cancel hook stops Run at the
// requested granularity and marks the run interrupted.
func TestStopCheckInterrupts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.Schedule(Time(i), func() {})
	}
	stop := false
	e.SetStopCheck(10, func() bool { return stop })
	e.ScheduleAfter(25, func() { stop = true })

	n := e.RunAll()
	if !e.Interrupted() {
		t.Fatal("engine not marked interrupted")
	}
	if n >= 1000 {
		t.Fatalf("executed %d events, expected an early stop", n)
	}
	// The hook fires on multiples of 10 processed events, so at most 9
	// further events run after stop becomes true.
	if e.Pending() == 0 {
		t.Fatal("queue drained despite interruption")
	}
}

// TestStopCheckNeverFiringIsInvisible verifies a hook that never cancels
// leaves the execution identical to a hook-free run.
func TestStopCheckNeverFiringIsInvisible(t *testing.T) {
	runOrder := func(install bool) []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			e.Schedule(Time(i%7), func() { order = append(order, i) })
		}
		if install {
			e.SetStopCheck(1, func() bool { return false })
		}
		e.RunAll()
		return order
	}
	a, b := runOrder(false), runOrder(true)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
	e := NewEngine()
	e.Schedule(0, func() {})
	e.SetStopCheck(1, func() bool { return false })
	e.RunAll()
	if e.Interrupted() {
		t.Fatal("uncancelled run marked interrupted")
	}
}
