package sim

import "hash/fnv"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is implemented locally so that
// simulation results are reproducible across Go releases, independent of any
// changes to math/rand.
//
// RNG is not safe for concurrent use; derive one generator per goroutine
// with Split or Derive.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Any seed (including 0) yields
// a valid, well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes r in place to the exact state NewRNG(seed) would
// produce, letting arena-reused simulations restart their random streams
// without allocating.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a uniformly distributed value in [0, 1<<63).
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// nearly-divisionless method with rejection to remove modulo bias.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0")
	}
	// Rejection sampling over the largest multiple of n that fits.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// TimeIn returns a uniformly distributed Time in the inclusive interval
// [lo, hi]. It panics if lo > hi.
func (r *RNG) TimeIn(lo, hi Time) Time {
	if lo > hi {
		panic("sim: TimeIn with lo > hi")
	}
	span := uint64(hi-lo) + 1
	return lo + Time(r.Uint64n(span))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator derived from r's stream. The parent stream
// advances by one output, so repeated Splits yield independent children.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// DeriveStream deterministically derives a per-(node, counter) seed from a
// base seed. It is the bridge between a logically-shared random stream and
// partitioned execution: when every draw site reseeds a scratch RNG with
// DeriveStream(base, node, ctr) — ctr being a per-node draw counter — the
// values a node observes depend only on its own history, never on the
// global interleaving of nodes. That is what lets the wedge-parallel engine
// reproduce the serial engine's draws bit-for-bit regardless of partition
// count. Two rounds of splitmix64 fully decorrelate adjacent (node, ctr)
// pairs.
func DeriveStream(base, node, ctr uint64) uint64 {
	x := base + node
	y := splitmix64(&x) + ctr
	return splitmix64(&y)
}

// DeriveSeed deterministically combines a base seed with string labels to
// produce an independent sub-seed. It is used so that, e.g., fault placement
// and delay draws come from unrelated streams: changing one experiment knob
// does not perturb the randomness consumed by another subsystem.
func DeriveSeed(base uint64, labels ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(base >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	x := h.Sum64()
	return splitmix64(&x)
}
