package sim

import (
	"math/rand"
	"testing"
)

// TestCalendarWindowRebuild drives the pushSlow path explicitly: fill the
// ring, drain it past the first events' buckets, then push behind the
// cursor (legal at queue level — only the engine enforces at >= now) and
// check the total order survives the window rebuild.
func TestCalendarWindowRebuild(t *testing.T) {
	var q calendarQueue
	q.setHorizon(1 << 10) // 8 ps buckets: small window, easy to overrun
	var seq uint64
	push := func(at Time) {
		q.push(event{at: at, seq: seq})
		seq++
	}
	for i := 0; i < 50; i++ {
		push(Time(10_000 + i*37))
	}
	for i := 0; i < 10; i++ {
		q.pop()
	}
	// Far-future events (overflow tier) and then a push behind the cursor.
	push(1 << 40)
	push(1 << 39)
	push(3) // behind the cursor: triggers the ring rebuild
	last := Time(-1)
	n := q.Len()
	for i := 0; i < n; i++ {
		e := q.pop()
		if e.at < last {
			t.Fatalf("pop went backwards: %v after %v", e.at, last)
		}
		last = e.at
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}
}

// TestCalendarPopBatchTyped checks batch pops take exactly the run of
// same-instant typed events, in seq order, and stop at closures.
func TestCalendarPopBatchTyped(t *testing.T) {
	var q calendarQueue
	q.setHorizon(1 << 13)
	for i := 0; i < 10; i++ {
		q.push(event{at: 500, seq: uint64(i), a: int64(i)})
	}
	q.push(event{at: 500, seq: 10, fn: func() {}})
	q.push(event{at: 500, seq: 11, a: 11})
	q.push(event{at: 900, seq: 12, a: 12})

	batch, at := q.popBatchTyped(nil, 64)
	if at != 500 || len(batch) != 10 {
		t.Fatalf("first batch: at=%d len=%d, want at=500 len=10", at, len(batch))
	}
	for i, ev := range batch {
		if ev.A != int64(i) {
			t.Fatalf("batch[%d].A = %d, want %d (FIFO order broken)", i, ev.A, i)
		}
	}
	// The closure event heads the queue now: batch pop must yield nothing.
	batch, at = q.popBatchTyped(batch[:0], 64)
	if at != 500 || len(batch) != 0 {
		t.Fatalf("batch at a closure event: at=%d len=%d, want at=500 len=0", at, len(batch))
	}
	if e := q.pop(); e.fn == nil || e.seq != 10 {
		t.Fatalf("pop after empty batch = %+v, want the seq-10 closure", e)
	}
	batch, _ = q.popBatchTyped(batch[:0], 64)
	if len(batch) != 1 || batch[0].A != 11 {
		t.Fatalf("tail batch = %+v, want the single seq-11 event", batch)
	}
	if e := q.pop(); e.at != 900 || e.a != 12 {
		t.Fatalf("final pop = %+v, want the at-900 event", e)
	}
}

// TestCalendarBatchCap checks popBatchTyped honors max and the remainder
// pops in order.
func TestCalendarBatchCap(t *testing.T) {
	var q calendarQueue
	q.setHorizon(1 << 13)
	for i := 0; i < 100; i++ {
		q.push(event{at: 7, seq: uint64(i), a: int64(i)})
	}
	batch, _ := q.popBatchTyped(nil, 64)
	if len(batch) != 64 || batch[63].A != 63 {
		t.Fatalf("capped batch len=%d last=%v, want 64/63", len(batch), batch[len(batch)-1])
	}
	batch, _ = q.popBatchTyped(batch[:0], 64)
	if len(batch) != 36 || batch[0].A != 64 {
		t.Fatalf("second batch len=%d first=%v, want 36/64", len(batch), batch[0])
	}
}

// TestCalendarHorizonHintOrderInvariance re-runs one interleaving under
// many ring sizings and requires the identical pop sequence: the hint may
// only move cost, never order. This is the queue-level statement of the
// golden tests' bit-identical guarantee.
func TestCalendarHorizonHintOrderInvariance(t *testing.T) {
	ops := make([]byte, 4096)
	rand.New(rand.NewSource(99)).Read(ops)
	var want []Time
	for _, shiftSel := range []byte{0, 3, 6, 9, 13, 20, 27} {
		var q calendarQueue
		q.setHorizon(Time(1) << shiftSel)
		var seq uint64
		var got []Time
		for i, op := range ops {
			if op < 96 && q.Len() > 0 {
				got = append(got, q.pop().at)
				continue
			}
			at := Time(op>>2) * 900
			if op&3 == 3 {
				at += Time(i) * 1e7
			}
			q.push(event{at: at, seq: seq})
			seq++
		}
		for q.Len() > 0 {
			got = append(got, q.pop().at)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("shift %d: popped %d events, want %d", shiftSel, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shift %d: pop %d = %v, want %v", shiftSel, i, got[i], want[i])
			}
		}
	}
}

// TestCalendarResetResidue verifies a reused calendar queue behaves like a
// fresh one and drops closure references on pop and reset.
func TestCalendarResetResidue(t *testing.T) {
	var q calendarQueue
	q.setHorizon(1 << 13)
	for i := 0; i < 300; i++ {
		q.push(event{at: Time(i%7) * 1000, seq: uint64(i), fn: func() {}})
	}
	q.push(event{at: 1 << 45, seq: 301, fn: func() {}}) // overflow tier
	q.reset()
	if q.Len() != 0 {
		t.Fatalf("Len after reset = %d", q.Len())
	}
	for bi := range q.buckets {
		bk := &q.buckets[bi]
		spare := bk.items[:cap(bk.items)]
		for i := range spare {
			if spare[i].fn != nil || spare[i].at != 0 || spare[i].seq != 0 {
				t.Fatalf("reset left residue in bucket %d slot %d: %+v", bi, i, spare[i])
			}
		}
	}
	// Replay a normal interleaving on the reused queue.
	var seq uint64
	for i := 0; i < 300; i++ {
		q.push(event{at: Time(300 - i), seq: seq})
		seq++
	}
	last := Time(-1)
	for q.Len() > 0 {
		e := q.pop()
		if e.at < last {
			t.Fatalf("reused queue popped out of order: %v after %v", e.at, last)
		}
		last = e.at
	}
}

// TestEngineBatchDispatch verifies the engine batches same-instant typed
// events through DispatchBatch in exactly Dispatch order, interleaved
// correctly with closure events.
func TestEngineBatchDispatch(t *testing.T) {
	rec := &recordingBatcher{}
	e := NewEngine()
	e.SetDispatcher(rec)
	for i := 0; i < 5; i++ {
		e.ScheduleEvent(100, 1, int64(i), 0)
	}
	e.Schedule(100, func() { rec.log = append(rec.log, -1) })
	for i := 5; i < 8; i++ {
		e.ScheduleEvent(100, 1, int64(i), 0)
	}
	e.ScheduleEvent(200, 2, 99, 0)
	e.RunAll()
	want := []int64{0, 1, 2, 3, 4, -1, 5, 6, 7, 99}
	if len(rec.log) != len(want) {
		t.Fatalf("log %v, want %v", rec.log, want)
	}
	for i := range want {
		if rec.log[i] != want[i] {
			t.Fatalf("log %v, want %v", rec.log, want)
		}
	}
	if rec.batches == 0 {
		t.Fatal("DispatchBatch was never used")
	}
	if e.Executed != 10 {
		t.Fatalf("Executed = %d, want 10", e.Executed)
	}
}

// recordingBatcher records dispatch order and counts batch calls.
type recordingBatcher struct {
	log     []int64
	batches int
}

func (r *recordingBatcher) Dispatch(kind uint8, a, b int64) { r.log = append(r.log, a) }

func (r *recordingBatcher) DispatchBatch(at Time, evs []EventRec) {
	r.batches++
	for i := range evs {
		r.Dispatch(evs[i].Kind, evs[i].A, evs[i].B)
	}
}

// TestEngineHorizonHintNonEmptyPanics pins the sizing contract: the ring
// cannot be resized under live events.
func TestEngineHorizonHintNonEmptyPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("SetHorizonHint on a non-empty queue did not panic")
		}
	}()
	e.SetHorizonHint(1000)
}
