package sim

import (
	"fmt"
	"math/bits"
)

// Dispatcher handles typed events scheduled with ScheduleEvent. Using
// integer payloads instead of closures removes one heap allocation per
// event, which dominates the simulator's profile on large grids.
type Dispatcher interface {
	Dispatch(kind uint8, a, b int64)
}

// EventRec is one typed event's payload as handed to a BatchDispatcher.
type EventRec struct {
	Kind uint8
	A, B int64
}

// BatchDispatcher is an optional extension of Dispatcher: when the installed
// dispatcher implements it, Run hands every run of same-timestamp typed
// events to one DispatchBatch call instead of one Dispatch call each,
// amortizing the per-event loop overhead (queue settle, horizon compare,
// interface dispatch). The events arrive in exactly the order Dispatch would
// have seen them, so batching is invisible to the simulation.
type BatchDispatcher interface {
	Dispatcher
	DispatchBatch(at Time, evs []EventRec)
}

// maxDispatchBatch caps one DispatchBatch call, bounding the scratch buffer
// and the latency of the cancellation poll across a large same-instant
// burst (e.g. the time-0 guard checks of every node).
const maxDispatchBatch = 256

// Engine is a single-threaded discrete-event simulator.
//
// Callbacks scheduled with Schedule run in nondecreasing time order, FIFO
// among equal times; typed events scheduled with ScheduleEvent interleave
// with them in the same total order. An Engine is not safe for concurrent
// use; parallelism in this repository is achieved by running many
// independent Engines (one per simulation run) across goroutines.
type Engine struct {
	now        Time
	seq        uint64
	queue      calendarQueue
	stopped    bool
	interrupt  bool
	dispatcher Dispatcher
	batcher    BatchDispatcher // dispatcher's batch extension, if any
	batchOff   bool            // SetBatching(false): ignore the extension
	batch      []EventRec      // reusable same-instant batch scratch
	stopCheck  func() bool
	stopEvery  uint64
	// Executed counts events processed, for instrumentation and benchmarks.
	Executed uint64

	// Push-delta sampling for calendar bucket auto-tuning: every
	// deltaSampleMask-th push records log2(at-now) into deltaHist. The
	// histogram survives Reset and is consumed (and cleared) by the next
	// SetHorizonHint, so an arena-reused engine sizes its buckets from the
	// previous run's observed event-delta distribution. See tuneShift.
	deltaHist  [deltaHistBuckets]uint32
	deltaCount uint32
	deltaTick  uint32
}

// NewEngine returns an engine with the clock at time 0.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to its initial state — clock at 0, sequence
// counter at 0, no pending events, no stop hook, Executed zeroed — while
// keeping the event queue's backing array, so a reused engine schedules
// without reallocating. The dispatcher is kept; a run that needs a
// different one calls SetDispatcher. A reset engine is indistinguishable
// from a fresh NewEngine in every observable way, which is what lets
// arena-style reuse preserve bit-identical simulations.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.interrupt = false
	e.stopCheck = nil
	e.stopEvery = 0
	e.Executed = 0
	e.queue.reset()
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule runs fn at the absolute instant at. Scheduling in the past
// (at < Now) panics: it would indicate a causality bug in the model.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.queue.push(event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// ScheduleAfter runs fn after the given delay from Now. Negative delays
// panic.
func (e *Engine) ScheduleAfter(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// SetDispatcher installs the handler for typed events. It must be set
// before the first ScheduleEvent call. A dispatcher that also implements
// BatchDispatcher receives same-instant typed events in batches.
func (e *Engine) SetDispatcher(d Dispatcher) {
	e.dispatcher = d
	e.batcher = nil
	if !e.batchOff {
		e.batcher, _ = d.(BatchDispatcher)
	}
}

// SetBatching enables or disables the batched fast path for typed events.
// Batching is on by default whenever the dispatcher implements
// BatchDispatcher; turning it off forces one Dispatch call per event. The
// execution order is identical either way (pop order has unique (at, seq)
// keys), so the toggle exists to bisect dispatcher issues and to let tests
// pin that tracer callbacks are independent of the dispatch path. Like the
// dispatcher itself, the setting survives Reset.
func (e *Engine) SetBatching(on bool) {
	e.batchOff = !on
	e.batcher = nil
	if on {
		e.batcher, _ = e.dispatcher.(BatchDispatcher)
	}
}

// SetHorizonHint sizes the event queue's calendar ring so that events
// scheduled within delta of now stay bucket-resident (only rarer, farther
// events take the overflow-heap path). It may only be called while no events
// are pending, typically right after Reset; the hint has no observable
// effect on execution order, only on queue cost. delta <= 0 selects the
// default sizing.
//
// The hint is an estimate derived from the caller's timing parameters; when
// the engine has observed actual push deltas (a previous run on a reused
// engine sampled them, see sampleDelta), the bucket width is auto-tuned to
// the p99 of the observed distribution instead — in either direction. A
// workload whose deltas are much narrower than the declared bound gets
// proportionally finer buckets; one whose p99 exceeds the bound (e.g.
// single-pulse runs, where the per-node sleep timers are a double-digit
// share of all pushes but far beyond the link-delay scale the hint
// declares) gets a wider window so that tail stays bucket-resident instead
// of churning through the overflow heap on every run. Only true outliers
// beyond the observed p99 take the heap path, which is built for exactly
// those.
func (e *Engine) SetHorizonHint(delta Time) {
	if delta <= 0 {
		delta = Time(int64(calBuckets) << (defaultCalShift - 1))
	}
	e.queue.setShift(e.tuneShift(shiftForDelta(delta)))
}

// Delta-histogram sampling parameters: every 16th push is measured into a
// log2 histogram; tuning activates only once enough samples exist to make
// the percentile meaningful.
const (
	deltaHistBuckets    = 48 // log2 buckets: deltas up to ~2^47 ps (≈ 1.6 days)
	deltaSampleMask     = 15 // sample 1 push in 16
	deltaTuneMinSamples = 64
)

// sampleDelta records the scheduling distance of (a sampled subset of)
// pushes. It is kept deliberately cheap — a counter increment and a masked
// branch on the fast path — because it runs on every ScheduleEvent.
func (e *Engine) sampleDelta(at Time) {
	e.deltaTick++
	if e.deltaTick&deltaSampleMask != 0 {
		return
	}
	b := bits.Len64(uint64(at - e.now))
	if b >= deltaHistBuckets {
		b = deltaHistBuckets - 1
	}
	e.deltaHist[b]++
	e.deltaCount++
}

// tuneShift reconciles the declared shift with the sampled push-delta
// histogram and clears it. It returns the declared shift unchanged while
// fewer than deltaTuneMinSamples deltas have been observed.
//
// Narrowing uses the p99 of the log2 histogram: the smallest bucket whose
// cumulative count covers 99% of the samples. Bucket b holds deltas <
// 2^b. An earlier cut at p85 looked attractive (finer buckets) but
// benchmarked slower: the 15% tail went through the overflow heap, whose
// migrate-back churn on window advance costs far more than coarser
// buckets do.
//
// Widening beyond the declared shift is gated harder, because coarser
// buckets tax every push with longer in-bucket sort runs: the p99 wanting
// a wider window is not enough — the histogram must show that ≥ 2% of all
// pushes fall beyond the declared window's span and would therefore churn
// through the overflow heap every run. Single-pulse campaign runs are the
// motivating case: their per-node sleep timers are a double-digit share
// of pushes but sit orders of magnitude past the link-delay scale the
// declared bound covers, and widening for them is worth ~30% of the run.
// Multi-pulse stabilization runs, whose sleep deltas already fit the
// declared window, keep their fine buckets: their far tail is ~0.2%,
// under the gate.
func (e *Engine) tuneShift(declared uint) uint {
	if e.deltaCount < deltaTuneMinSamples {
		return declared
	}
	target := (uint64(e.deltaCount)*99 + 99) / 100
	var cum uint64
	b := 0
	for ; b < deltaHistBuckets; b++ {
		cum += uint64(e.deltaHist[b])
		if cum >= target {
			break
		}
	}
	shift := declared
	switch tuned := shiftForDelta(Time(1) << uint(b)); {
	case tuned < shift:
		shift = tuned
	case tuned > shift:
		// Histogram bucket i holds deltas < 2^i, and a delta fits the
		// declared window iff it is under the window's span calBuckets <<
		// declared = 2^(declared+ringBits); buckets strictly above
		// declared+ringBits would spill to the overflow heap.
		var far uint64
		for i := int(declared) + ringBits + 1; i < deltaHistBuckets; i++ {
			far += uint64(e.deltaHist[i])
		}
		if far*50 >= uint64(e.deltaCount) {
			shift = tuned
		}
	}
	e.deltaHist = [deltaHistBuckets]uint32{}
	e.deltaCount = 0
	e.deltaTick = 0
	return shift
}

// ScheduleEvent schedules a typed event for the engine's Dispatcher at the
// absolute instant at. It is ordered exactly like Schedule (time, then
// call order) but allocates nothing per event.
func (e *Engine) ScheduleEvent(at Time, kind uint8, a, b int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if e.dispatcher == nil {
		panic("sim: ScheduleEvent without a Dispatcher")
	}
	e.sampleDelta(at)
	e.queue.push(event{at: at, seq: e.seq, kind: kind, a: a, b: b})
	e.seq++
}

// ScheduleEventKeyed schedules a typed event under a caller-supplied
// sequence key instead of the engine's internal counter. The caller owns
// uniqueness: within one run, no two events (keyed or not) may share an
// (at, seq) pair, and keyed scheduling must not be mixed with the
// auto-keyed ScheduleEvent/Schedule calls unless the caller guarantees the
// key spaces are disjoint. Execution order is ascending (at, seq) exactly
// as for auto-keyed events; partition-stable keys are what lets the
// wedge-parallel engine merge cross-wedge events into the serial order.
func (e *Engine) ScheduleEventKeyed(at Time, seq uint64, kind uint8, a, b int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	if e.dispatcher == nil {
		panic("sim: ScheduleEventKeyed without a Dispatcher")
	}
	e.sampleDelta(at)
	e.queue.push(event{at: at, seq: seq, kind: kind, a: a, b: b})
}

// NextEventTime returns the time of the earliest pending event, if any.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue.peekTime(), true
}

// UseHeapQueue forces every event through the 4-ary overflow heap instead
// of the calendar ring. Pop order is identical (both realize the same total
// (at, seq) order); the knob exists so differential tests can run a
// structurally different queue as an independent arm. It may only be
// toggled while no events are pending.
func (e *Engine) UseHeapQueue(on bool) {
	if e.queue.Len() != 0 {
		panic("sim: UseHeapQueue on a non-empty queue")
	}
	e.queue.heapOnly = on
}

// ScheduleEventAfter is ScheduleEvent relative to Now.
func (e *Engine) ScheduleEventAfter(delay Time, kind uint8, a, b int64) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleEvent(e.now+delay, kind, a, b)
}

// Stop makes the currently executing Run return once the current event's
// callback completes.
func (e *Engine) Stop() { e.stopped = true }

// SetStopCheck installs a cancellation hook: Run polls fn once every
// `every` executed events (and once before the first event) and stops
// early when fn returns true. The poll never reorders or drops events
// before the stop point, so a run that is not cancelled remains
// bit-identical to one without a hook. every <= 0 selects a default
// granularity. fn == nil removes the hook.
func (e *Engine) SetStopCheck(every int, fn func() bool) {
	if every <= 0 {
		every = DefaultStopCheckInterval
	}
	e.stopCheck = fn
	e.stopEvery = uint64(every)
}

// DefaultStopCheckInterval is the event-count granularity of the
// SetStopCheck poll when none is given: fine enough that an abandoned
// request stops within microseconds of wall time, coarse enough that the
// hook is invisible in profiles.
const DefaultStopCheckInterval = 512

// Interrupted reports whether the most recent Run was ended by the
// SetStopCheck hook (as opposed to draining, reaching the horizon, or an
// explicit Stop).
func (e *Engine) Interrupted() bool { return e.interrupt }

// Run executes events until the queue is empty, the horizon is passed, or
// Stop is called. Events at exactly the horizon still execute. It returns
// the number of events executed by this call.
func (e *Engine) Run(horizon Time) uint64 {
	e.stopped = false
	e.interrupt = false
	var n, nextPoll uint64
	for e.queue.Len() > 0 && !e.stopped {
		if e.stopCheck != nil && n >= nextPoll {
			if e.stopCheck() {
				e.interrupt = true
				break
			}
			nextPoll = n + e.stopEvery
		}
		t := e.queue.peekTime()
		if t > horizon {
			break
		}
		if t < e.now {
			panic("sim: event queue yielded an event in the past")
		}
		if e.batcher != nil {
			e.batch, _ = e.queue.popBatchTyped(e.batch[:0], maxDispatchBatch)
			if len(e.batch) > 0 {
				e.now = t
				e.batcher.DispatchBatch(t, e.batch)
				n += uint64(len(e.batch))
				continue
			}
		}
		ev := e.queue.pop()
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
		} else {
			e.dispatcher.Dispatch(ev.kind, ev.a, ev.b)
		}
		n++
	}
	e.Executed += n
	return n
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() uint64 { return e.Run(MaxTime) }
