package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunAll()
	want := []Time{5, 10, 20, 25, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events executed out of order: %v", got)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(50, func() {
		if e.Now() != 50 {
			t.Errorf("Now() = %v during event at 50", e.Now())
		}
		e.ScheduleAfter(25, func() {
			if e.Now() != 75 {
				t.Errorf("Now() = %v, want 75", e.Now())
			}
		})
	})
	e.RunAll()
	if e.Now() != 75 {
		t.Errorf("final Now() = %v, want 75", e.Now())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := make(map[Time]bool)
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.Schedule(at, func() { ran[at] = true })
	}
	e.Run(20)
	if !ran[10] || !ran[20] {
		t.Error("events at or before horizon did not run")
	}
	if ran[30] {
		t.Error("event beyond horizon ran")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	// Resuming past the horizon picks up the rest.
	e.RunAll()
	if !ran[30] {
		t.Error("resumed run did not execute remaining event")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Errorf("executed %d events after Stop at 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.RunAll()
}

func TestScheduleAfterNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.ScheduleAfter(-1, func() {})
}

func TestEngineExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	if n := e.RunAll(); n != 7 {
		t.Errorf("Run returned %d, want 7", n)
	}
	if e.Executed != 7 {
		t.Errorf("Executed = %d, want 7", e.Executed)
	}
}

func TestEngineCascade(t *testing.T) {
	// Events scheduling further events drain fully.
	e := NewEngine()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			e.ScheduleAfter(1, step)
		}
	}
	e.Schedule(0, step)
	e.RunAll()
	if depth != 100 {
		t.Errorf("cascade depth %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Errorf("Now() = %v, want 99", e.Now())
	}
}

// TestQueueHeapProperty drives the raw queue with random pushes and pops and
// checks the pop order is sorted by (time, seq).
func TestQueueHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q eventQueue
		for i, v := range times {
			q.push(event{at: Time(v), seq: uint64(i), fn: nil})
		}
		var popped []event
		for q.Len() > 0 {
			popped = append(popped, q.pop())
		}
		sorted := sort.SliceIsSorted(popped, func(i, j int) bool {
			if popped[i].at != popped[j].at {
				return popped[i].at < popped[j].at
			}
			return popped[i].seq < popped[j].seq
		})
		return sorted && len(popped) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	r := NewRNG(77)
	var q eventQueue
	seq := uint64(0)
	last := Time(-1)
	for round := 0; round < 1000; round++ {
		if q.Len() == 0 || r.Bool() {
			// Push an event no earlier than the last popped time to mimic
			// engine usage.
			at := last + Time(r.Intn(100))
			if at < 0 {
				at = 0
			}
			q.push(event{at: at, seq: seq})
			seq++
		} else {
			ev := q.pop()
			if ev.at < last {
				t.Fatalf("pop went backwards: %v after %v", ev.at, last)
			}
			last = ev.at
		}
	}
}
