package sim

import (
	"runtime"
	"sync"
	"testing"
)

func TestSPSCRingOrderAndCapacity(t *testing.T) {
	r := newSPSCRing(3) // rounds up to 4
	for i := 0; i < 4; i++ {
		if !r.tryPush(BoundaryEvent{At: Time(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.tryPush(BoundaryEvent{At: 99}) {
		t.Fatal("push succeeded on a full ring")
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.tryPop()
		if !ok || ev.At != Time(i) {
			t.Fatalf("pop %d = (%v, %t), want (%d, true)", i, ev.At, ok, i)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop succeeded on an empty ring")
	}
}

func TestSPSCRingConcurrent(t *testing.T) {
	r := newSPSCRing(16)
	const n = 100000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.tryPush(BoundaryEvent{At: Time(i), Seq: uint64(i)}) {
				i++
			} else {
				runtime.Gosched() // single-CPU boxes: hand the slice to the consumer
			}
		}
	}()
	for i := 0; i < n; {
		ev, ok := r.tryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if ev.At != Time(i) || ev.Seq != uint64(i) {
			t.Fatalf("pop %d = (%v, %d): reordered or corrupted", i, ev.At, ev.Seq)
		}
		i++
	}
	wg.Wait()
}

func TestSPSCRingClear(t *testing.T) {
	r := newSPSCRing(4)
	r.tryPush(BoundaryEvent{At: 1})
	r.tryPush(BoundaryEvent{At: 2})
	r.clear()
	if _, ok := r.tryPop(); ok {
		t.Fatal("pop succeeded after clear")
	}
	if !r.tryPush(BoundaryEvent{At: 3}) {
		t.Fatal("push failed after clear")
	}
}

// relayDispatcher forwards each event one hop around a ring of wedges with
// a fixed delay, counting dispatches, until the horizon cuts it off.
type relayDispatcher struct {
	w     *Wedge
	next  int
	delay Time
	seq   uint64
	count int
}

func (d *relayDispatcher) Dispatch(kind uint8, a, b int64) {
	d.count++
	d.seq++
	d.w.Send(d.next, BoundaryEvent{
		At:   d.w.eng.Now() + d.delay,
		Seq:  d.seq<<8 | uint64(d.w.idx),
		Kind: kind, A: a, B: b,
	})
}

// TestWedgeGroupRelay runs a 3-wedge directed cycle where every event
// spawns its successor one delay later in the next wedge: the tightest
// possible dependence chain, every event a boundary event. The run must
// terminate at the horizon with exactly horizon/delay + 1 dispatches.
func TestWedgeGroupRelay(t *testing.T) {
	const dMin = Time(10)
	g := NewWedgeGroup(3, dMin)
	for i := 0; i < 3; i++ {
		g.Connect(i, (i+1)%3, 8)
	}
	ds := make([]*relayDispatcher, 3)
	for i := 0; i < 3; i++ {
		ds[i] = &relayDispatcher{w: g.Wedge(i), next: (i + 1) % 3, delay: dMin}
		g.Wedge(i).Engine().SetDispatcher(ds[i])
	}
	g.Wedge(0).Engine().ScheduleEventKeyed(0, 0, 0, 0, 0)

	const horizon = Time(1000)
	executed := g.Run(horizon)
	want := uint64(horizon/dMin) + 1 // t = 0, 10, ..., 1000 inclusive
	if executed != want {
		t.Fatalf("executed %d events, want %d", executed, want)
	}
	total := ds[0].count + ds[1].count + ds[2].count
	if uint64(total) != want {
		t.Fatalf("dispatched %d events, want %d", total, want)
	}
}

// TestWedgeGroupRepeatedRuns pins Reset: the same group must replay the
// same workload identically, including after an abandoned (panicking) run
// left residue in rings and wake channels.
func TestWedgeGroupRepeatedRuns(t *testing.T) {
	const dMin = Time(7)
	g := NewWedgeGroup(2, dMin)
	g.Connect(0, 1, 4)
	g.Connect(1, 0, 4)
	run := func() uint64 {
		ds := []*relayDispatcher{
			{w: g.Wedge(0), next: 1, delay: dMin},
			{w: g.Wedge(1), next: 0, delay: dMin},
		}
		g.Wedge(0).Engine().SetDispatcher(ds[0])
		g.Wedge(1).Engine().SetDispatcher(ds[1])
		g.Wedge(0).Engine().ScheduleEventKeyed(0, 0, 0, 0, 0)
		return g.Run(700)
	}
	first := run()
	g.Reset()
	if second := run(); second != first {
		t.Fatalf("rerun executed %d events, first run %d", second, first)
	}
}

// TestWedgeSendLookaheadPanics: a delivery below now+dMin must panic — it
// means the delay model broke its declared minimum, which would silently
// corrupt the conservative bound.
func TestWedgeSendLookaheadPanics(t *testing.T) {
	g := NewWedgeGroup(2, 10)
	g.Connect(0, 1, 4)
	g.horizon = 1000
	w := g.Wedge(0)
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead-violating Send did not panic")
		}
	}()
	w.Send(1, BoundaryEvent{At: 5})
}

// TestWedgeGroupValidation covers the constructor contracts.
func TestWedgeGroupValidation(t *testing.T) {
	for _, tc := range []struct {
		n    int
		dMin Time
	}{{1, 10}, {2, 0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWedgeGroup(%d, %d) did not panic", tc.n, tc.dMin)
				}
			}()
			NewWedgeGroup(tc.n, tc.dMin)
		}()
	}
}
