package sim

// event is a scheduled callback or typed event. seq provides stable FIFO
// ordering among events at the same instant, making execution order (and
// therefore every simulation) fully deterministic. Typed events (fn == nil)
// carry their payload inline and are handed to the engine's Dispatcher,
// avoiding a heap-allocated closure per event on the simulator's hot path.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	kind uint8
	a, b int64
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq).
// It is implemented directly (rather than via container/heap) to avoid
// interface boxing. The arity-4 layout halves the tree depth of a binary
// heap, so a sift touches fewer cache lines per level. It was the engine's
// event queue until the bounded-horizon calendarQueue replaced it on the
// hot path; it is retained as the calendar's far-future overflow tier and
// as the differential reference the calendar is fuzzed against (see
// queue_fuzz_test.go). Because (at, seq) keys are unique, pops yield the
// same total order for any heap arity or bucketing, so the queue shape is
// not observable in simulation results.
type eventQueue struct {
	items []event
}

func (q *eventQueue) Len() int { return len(q.items) }

// before reports whether a orders strictly before b.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e and restores the heap invariant (hole-based sift-up).
func (q *eventQueue) push(e event) {
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !before(&e, &q.items[parent]) {
			break
		}
		q.items[i] = q.items[parent]
		i = parent
	}
	q.items[i] = e
}

// pop removes and returns the earliest event. It panics on an empty queue;
// callers must check Len first.
func (q *eventQueue) pop() event {
	top := q.items[0]
	last := len(q.items) - 1
	moved := q.items[last]
	q.items[last] = event{} // release any fn reference held by the slot
	q.items = q.items[:last]
	if last > 0 {
		// Hole-based sift-down: move the hole to moved's final position,
		// writing each element once instead of swapping.
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			end := c + 4
			if end > last {
				end = last
			}
			best := c
			for k := c + 1; k < end; k++ {
				if before(&q.items[k], &q.items[best]) {
					best = k
				}
			}
			if !before(&q.items[best], &moved) {
				break
			}
			q.items[i] = q.items[best]
			i = best
		}
		q.items[i] = moved
	}
	return top
}

// peekTime returns the time of the earliest event without removing it.
func (q *eventQueue) peekTime() Time { return q.items[0].at }

// reset empties the queue while keeping its backing array for reuse.
// Remaining slots are zeroed so stale closures don't outlive the run that
// scheduled them.
func (q *eventQueue) reset() {
	for i := range q.items {
		q.items[i] = event{}
	}
	q.items = q.items[:0]
}
