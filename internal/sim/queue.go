package sim

// event is a scheduled callback or typed event. seq provides stable FIFO
// ordering among events at the same instant, making execution order (and
// therefore every simulation) fully deterministic. Typed events (fn == nil)
// carry their payload inline and are handed to the engine's Dispatcher,
// avoiding a heap-allocated closure per event on the simulator's hot path.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	kind uint8
	a, b int64
}

// eventQueue is a binary min-heap of events ordered by (at, seq).
// It is implemented directly (rather than via container/heap) to avoid
// interface boxing on the simulator's hottest path.
type eventQueue struct {
	items []event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e and restores the heap invariant (sift-up).
func (q *eventQueue) push(e event) {
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// pop removes and returns the earliest event. It panics on an empty queue;
// callers must check Len first.
func (q *eventQueue) pop() event {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	// Sift-down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && q.less(l, smallest) {
			smallest = l
		}
		if r < last && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// peekTime returns the time of the earliest event without removing it.
func (q *eventQueue) peekTime() Time { return q.items[0].at }
