package store

import (
	"bytes"
	"errors"
	"testing"
)

func TestEncodeDecodeEntryCanonical(t *testing.T) {
	cases := []Entry{
		{},
		{Key: "run:00", ContentType: "application/json", Events: 0, Body: nil},
		{Key: "spec:ff", ContentType: "image/svg+xml", Events: 1<<63 + 7, Body: []byte("<svg/>")},
		{Key: "k\x00with\nweird|bytes", ContentType: "", Events: 42, Body: bytes.Repeat([]byte{0, 255, 1}, 100)},
	}
	for i, want := range cases {
		data := EncodeEntry(want)
		got, err := DecodeEntry(data)
		if err != nil {
			t.Fatalf("case %d: DecodeEntry: %v", i, err)
		}
		if got.Key != want.Key || got.ContentType != want.ContentType || got.Events != want.Events ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("case %d: round trip mismatch: %+v vs %+v", i, got, want)
		}
		// Canonical: re-encoding the decoded entry reproduces the bytes.
		if again := EncodeEntry(got); !bytes.Equal(again, data) {
			t.Fatalf("case %d: re-encode differs from original encoding", i)
		}
	}
}

func TestDecodeEntryRejectsMalformedFrames(t *testing.T) {
	valid := EncodeEntry(Entry{Key: "k", ContentType: "t", Events: 1, Body: []byte("b")})
	mangle := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := map[string][]byte{
		"empty":           {},
		"short header":    valid[:headerSize-1],
		"bad magic":       mangle(func(b []byte) []byte { b[0] = 'Z'; return b }),
		"result magic":    mangle(func(b []byte) []byte { copy(b, resultMagic); return b }),
		"trailing bytes":  append(append([]byte(nil), valid...), 0xAA),
		"truncated body":  valid[:len(valid)-1],
		"zeroed crc":      mangle(func(b []byte) []byte { b[8], b[9], b[10], b[11] = 0, 0, 0, 0; return b }),
		"length inflated": mangle(func(b []byte) []byte { b[4]++; return b }),
	}
	for name, data := range cases {
		if _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// An inner length prefix that overruns the payload must be caught by
	// the bounds check, not by an allocation or slice panic. Rebuild the
	// CRC so the frame itself is valid and only the field is lying.
	lying := append([]byte(nil), valid...)
	lying[headerSize] = 0xFF // key length low byte → absurdly long
	rebuildCRC(lying)
	if _, err := DecodeEntry(lying); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying length prefix: err = %v, want ErrCorrupt", err)
	}
}

// rebuildCRC recomputes a record's checksum after a deliberate payload
// edit, so tests can isolate payload-structure checks from the CRC.
func rebuildCRC(record []byte) {
	record[8] = 0
	record[9] = 0
	record[10] = 0
	record[11] = 0
	c := crc32Checksum(record[headerSize:])
	record[8] = byte(c)
	record[9] = byte(c >> 8)
	record[10] = byte(c >> 16)
	record[11] = byte(c >> 24)
}
