package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrTooLarge is returned by Put when a single record exceeds the
// store's byte budget; the entry is not stored.
var ErrTooLarge = errors.New("store: record exceeds byte budget")

const (
	recordSuffix = ".rec"
	tempSuffix   = ".tmp"
	// QuarantineDir is the subdirectory corrupt records are moved into.
	// They are kept (not deleted) so an operator can inspect what went
	// wrong; nothing under it is ever read back.
	QuarantineDir = "quarantine"
)

// Store is a disk-backed result store: one framed, checksummed record
// per file, indexed in memory by canonical key, bounded by an on-disk
// byte budget with LRU eviction. All methods are safe for concurrent
// use. There is no background goroutine and nothing to close: every Put
// is durable (fsync + atomic rename) before it returns.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*list.Element // key → element holding *record
	order   *list.List               // front = most recently used
	bytes   int64
	// quarantined counts records rejected at scan or read time since
	// Open; exposed for tests and operator visibility.
	quarantined uint64
}

// record is the index entry for one on-disk file.
type record struct {
	key  string
	name string // file name within dir
	size int64
}

// Open creates or recovers a store rooted at dir. maxBytes bounds the
// total size of live records (<= 0 means unlimited). Recovery scans the
// directory: leftover temp files from interrupted writes are deleted,
// records that decode cleanly are indexed (oldest first, so pre-crash
// recency survives approximately via mtime), and records that fail any
// integrity check are moved to the quarantine subdirectory — a store
// with arbitrarily mangled files always opens cleanly.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type found struct {
		rec   record
		mtime int64
	}
	var live []found
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		switch {
		case strings.HasSuffix(name, tempSuffix):
			// An interrupted Put never reached its rename; the final
			// record (if any) is intact, the temp file is garbage.
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, recordSuffix):
			e, err := s.readRecord(name)
			if err != nil {
				s.quarantine(name)
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			live = append(live, found{
				rec:   record{key: e.Key, name: name, size: info.Size()},
				mtime: info.ModTime().UnixNano(),
			})
		}
	}
	// Index oldest-first so the LRU back holds the stalest records.
	sort.Slice(live, func(i, j int) bool { return live[i].mtime < live[j].mtime })
	for _, f := range live {
		rec := f.rec
		if old, ok := s.entries[rec.key]; ok {
			// Two files claiming one key cannot come from the write
			// protocol; keep the newer, quarantine the older.
			s.dropLocked(old, true)
		}
		s.entries[rec.key] = s.order.PushFront(&rec)
		s.bytes += rec.size
	}
	s.evictLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live (indexed, non-quarantined) records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total on-disk size of live records.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Quarantined returns the number of records rejected since Open.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Keys returns the keys of live records that start with prefix, sorted
// lexicographically (the iteration order of the in-memory index is
// arbitrary; a sorted answer makes callers — the sweep-job recovery scan
// — deterministic). An empty prefix lists every key.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.entries {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete removes the record stored under key from the index and from
// disk. Deleting an absent key is a no-op. The jobs manager uses it to
// retire a sweep job's spec record once every unit has completed, so
// restarts stop re-materializing finished jobs.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.dropLocked(el, false)
	}
}

// Get returns the entry stored under key. ok reports whether a valid
// entry was served. A record that fails integrity checks at read time —
// truncated or rewritten behind the store's back — is quarantined and
// reported as a miss with a non-nil error; the caller recomputes and the
// bad bytes are never served.
func (s *Store) Get(key string) (e Entry, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.entries[key]
	if !found {
		return Entry{}, false, nil
	}
	rec := el.Value.(*record)
	e, err = s.readRecord(rec.name)
	if err == nil && e.Key != key {
		err = fmt.Errorf("%w: record holds key %q, index expected %q", ErrCorrupt, e.Key, key)
	}
	if err != nil {
		s.dropLocked(el, true)
		return Entry{}, false, err
	}
	s.order.MoveToFront(el)
	return e, true, nil
}

// Put durably stores e under e.Key, replacing any previous record for
// the key, then evicts least-recently-used records until the byte
// budget holds again. The write is crash-safe: the record is written
// and fsynced under a temporary name and renamed into place, so a kill
// at any instant leaves either the old record or the new one, never a
// torn file under the final name.
func (s *Store) Put(e Entry) error {
	data := EncodeEntry(e)
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
		return fmt.Errorf("%w: %d bytes > budget %d", ErrTooLarge, len(data), s.maxBytes)
	}
	name := recordName(e.Key)

	tmp, err := os.CreateTemp(s.dir, "put-*"+tempSuffix)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(s.dir, name))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(s.dir)

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Key]; ok {
		// The rename already replaced the file; fix the accounting.
		rec := el.Value.(*record)
		s.bytes += int64(len(data)) - rec.size
		rec.size = int64(len(data))
		s.order.MoveToFront(el)
	} else {
		s.entries[e.Key] = s.order.PushFront(&record{key: e.Key, name: name, size: int64(len(data))})
		s.bytes += int64(len(data))
	}
	s.evictLocked()
	return nil
}

// evictLocked removes least-recently-used records until bytes fits the
// budget. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		oldest := s.order.Back()
		if oldest == nil {
			return
		}
		s.dropLocked(oldest, false)
	}
}

// dropLocked removes a record from the index and from disk; quarantine
// preserves the file for inspection instead of deleting it.
func (s *Store) dropLocked(el *list.Element, quarantine bool) {
	rec := el.Value.(*record)
	s.order.Remove(el)
	delete(s.entries, rec.key)
	s.bytes -= rec.size
	if quarantine {
		s.quarantine(rec.name)
	} else {
		os.Remove(filepath.Join(s.dir, rec.name))
	}
}

// quarantine moves a file into the quarantine subdirectory (best
// effort: a file that cannot be moved is deleted so it can never be
// indexed again).
func (s *Store) quarantine(name string) {
	s.quarantined++
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)) == nil {
			return
		}
	}
	os.Remove(filepath.Join(s.dir, name))
}

// readRecord reads and decodes one record file by name.
func (s *Store) readRecord(name string) (Entry, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return Entry{}, err
	}
	return DecodeEntry(data)
}

// recordName maps a key to its file name: the full SHA-256 of the key,
// so distinct keys can never collide on disk and file names stay valid
// regardless of what bytes the key contains. The key itself is embedded
// in the record, so the mapping never needs to be inverted.
func recordName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + recordSuffix
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best effort: some platforms/filesystems reject directory fsync, and a
// lost rename only costs a recompute.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
