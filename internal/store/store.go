package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrTooLarge is returned by Put when a single record exceeds the
// store's byte budget; the entry is not stored.
var ErrTooLarge = errors.New("store: record exceeds byte budget")

const (
	recordSuffix = ".rec"
	// segmentSuffix names group-commit files: several framed records
	// concatenated back to back, flushed with a single fsync. See PutGroup.
	segmentSuffix = ".seg"
	tempSuffix    = ".tmp"
	// QuarantineDir is the subdirectory corrupt records are moved into.
	// They are kept (not deleted) so an operator can inspect what went
	// wrong; nothing under it is ever read back.
	QuarantineDir = "quarantine"
)

// Store is a disk-backed result store: one framed, checksummed record
// per file, indexed in memory by canonical key, bounded by an on-disk
// byte budget with LRU eviction. All methods are safe for concurrent
// use. There is no background goroutine and nothing to close: every Put
// is durable (fsync + atomic rename) before it returns.
type Store struct {
	dir      string
	maxBytes int64
	// fsyncs counts fsync syscalls issued since Open (record files,
	// segment files, and directory syncs alike). The campaign benchmark
	// reads it to prove group commit's amortization; it is written with
	// atomics because Put syncs outside the index lock.
	fsyncs atomic.Uint64

	mu       sync.Mutex
	entries  map[string]*list.Element // key → element holding *record
	order    *list.List               // front = most recently used
	segments map[string]*segment      // segment file name → shared state
	bytes    int64
	// quarantined counts quarantine events (rejected record files and
	// segment tails) since Open; exposed for tests and operator
	// visibility.
	quarantined uint64
}

// record is the index entry for one stored record: either a whole .rec
// file (seg == nil) or a [off, off+size) slice of a shared segment file.
type record struct {
	key  string
	name string // file name within dir (the segment's name for segment records)
	size int64
	off  int64    // byte offset within the segment file
	seg  *segment // nil for standalone record files
}

// segment tracks one group-commit file. Its records evict independently
// (each has its own index entry and LRU position); the file itself is
// deleted when the last live record leaves the index. Until then evicted
// record bytes remain on disk — the byte budget tracks live records, so a
// segment's disk footprint can transiently exceed its accounted share.
type segment struct {
	name string
	live int
}

// Open creates or recovers a store rooted at dir. maxBytes bounds the
// total size of live records (<= 0 means unlimited). Recovery scans the
// directory: leftover temp files from interrupted writes are deleted,
// records that decode cleanly are indexed (oldest first, so pre-crash
// recency survives approximately via mtime), and records that fail any
// integrity check are moved to the quarantine subdirectory — a store
// with arbitrarily mangled files always opens cleanly.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		segments: make(map[string]*segment),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type found struct {
		rec   record
		mtime int64
	}
	var live []found
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		switch {
		case strings.HasSuffix(name, tempSuffix):
			// An interrupted Put never reached its rename; the final
			// record (if any) is intact, the temp file is garbage.
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, recordSuffix):
			e, err := s.readRecord(name)
			if err != nil {
				s.quarantine(name)
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			live = append(live, found{
				rec:   record{key: e.Key, name: name, size: info.Size()},
				mtime: info.ModTime().UnixNano(),
			})
		case strings.HasSuffix(name, segmentSuffix):
			recs := s.scanSegment(name)
			info, err := de.Info()
			if err != nil {
				continue
			}
			for _, rec := range recs {
				live = append(live, found{rec: rec, mtime: info.ModTime().UnixNano()})
			}
		}
	}
	// Index oldest-first so the LRU back holds the stalest records. The
	// stable sort keeps a segment's records in offset order among
	// themselves (they share one mtime).
	sort.SliceStable(live, func(i, j int) bool { return live[i].mtime < live[j].mtime })
	for _, f := range live {
		rec := f.rec
		if old, ok := s.entries[rec.key]; ok {
			// Two files claiming one key cannot come from the write
			// protocol; keep the newer, quarantine the older.
			s.dropLocked(old, true)
		}
		s.entries[rec.key] = s.order.PushFront(&rec)
		s.bytes += rec.size
		if rec.seg != nil {
			rec.seg.live++
		}
	}
	// A segment whose every record lost its key to a newer file has no
	// reason to stay on disk.
	for name, seg := range s.segments {
		if seg.live == 0 {
			os.Remove(filepath.Join(s.dir, name))
			delete(s.segments, name)
		}
	}
	s.evictLocked()
	return s, nil
}

// scanSegment decodes a segment file front to back and returns index
// entries for its valid prefix. A decode failure mid-file means the tail
// was torn (a crash between appends and the segment fsync cannot happen —
// the whole file is staged and renamed — but bit rot and operator
// truncation can): the valid prefix stays live, the tail is preserved
// under quarantine, and the file is truncated to the prefix so the next
// scan is clean. A file whose very first record is bad is quarantined
// whole, like a corrupt .rec file.
func (s *Store) scanSegment(name string) []record {
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	seg := &segment{name: name}
	var recs []record
	off := 0
	for off < len(data) {
		e, n, err := decodeRecordAt(data[off:])
		if err != nil {
			break
		}
		recs = append(recs, record{
			key: e.Key, name: name, size: int64(n), off: int64(off), seg: seg,
		})
		off += n
	}
	if off < len(data) {
		// Tail-only quarantine: preserve the undecodable suffix for
		// inspection, keep the valid prefix serving.
		s.quarantined++
		if off == 0 {
			s.quarantineBytes(name, data)
			os.Remove(path)
			return nil
		}
		s.quarantineBytes(name+".tail", data[off:])
		if err := os.Truncate(path, int64(off)); err != nil {
			// Cannot shrink the file; without a clean prefix boundary on
			// disk, retire the whole segment rather than risk re-reading
			// the torn tail.
			s.quarantineBytes(name, data[:off])
			os.Remove(path)
			return nil
		}
	}
	s.segments[name] = seg
	return recs
}

// decodeRecordAt decodes one framed record from the head of data,
// returning the record and the number of bytes it occupied.
func decodeRecordAt(data []byte) (Entry, int, error) {
	if len(data) < headerSize {
		return Entry{}, 0, fmt.Errorf("%w: %d bytes short of a header", ErrCorrupt, len(data))
	}
	n := headerSize + int(binary.LittleEndian.Uint32(data[4:8]))
	if n > len(data) {
		return Entry{}, 0, fmt.Errorf("%w: record of %d bytes overruns %d remaining", ErrCorrupt, n, len(data))
	}
	e, err := DecodeEntry(data[:n])
	if err != nil {
		return Entry{}, 0, err
	}
	return e, n, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live (indexed, non-quarantined) records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total on-disk size of live records.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Quarantined returns the number of records rejected since Open.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Fsyncs returns the number of fsync syscalls issued since Open. One Put
// costs two (record file + directory); one PutGroup costs two for the
// whole group — the amortization the campaign benchmark measures.
func (s *Store) Fsyncs() uint64 { return s.fsyncs.Load() }

// Keys returns the keys of live records that start with prefix, sorted
// lexicographically (the iteration order of the in-memory index is
// arbitrary; a sorted answer makes callers — the sweep-job recovery scan
// — deterministic). An empty prefix lists every key.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.entries {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Delete removes the record stored under key from the index and from
// disk. Deleting an absent key is a no-op. The jobs manager uses it to
// retire a sweep job's spec record once every unit has completed, so
// restarts stop re-materializing finished jobs.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.dropLocked(el, false)
	}
}

// Get returns the entry stored under key. ok reports whether a valid
// entry was served. A record that fails integrity checks at read time —
// truncated or rewritten behind the store's back — is quarantined and
// reported as a miss with a non-nil error; the caller recomputes and the
// bad bytes are never served.
func (s *Store) Get(key string) (e Entry, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.entries[key]
	if !found {
		return Entry{}, false, nil
	}
	rec := el.Value.(*record)
	e, err = s.readIndexed(rec)
	if err == nil && e.Key != key {
		err = fmt.Errorf("%w: record holds key %q, index expected %q", ErrCorrupt, e.Key, key)
	}
	if err != nil {
		if rec.seg != nil {
			// A segment that fails integrity behind our back is suspect as
			// a whole: its framing can no longer be trusted, so retire
			// every record it holds, not just this one.
			s.quarantineSegmentLocked(rec.seg)
		} else {
			s.dropLocked(el, true)
		}
		return Entry{}, false, err
	}
	s.order.MoveToFront(el)
	return e, true, nil
}

// Put durably stores e under e.Key, replacing any previous record for
// the key, then evicts least-recently-used records until the byte
// budget holds again. The write is crash-safe: the record is written
// and fsynced under a temporary name and renamed into place, so a kill
// at any instant leaves either the old record or the new one, never a
// torn file under the final name.
func (s *Store) Put(e Entry) error {
	data := EncodeEntry(e)
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
		return fmt.Errorf("%w: %d bytes > budget %d", ErrTooLarge, len(data), s.maxBytes)
	}
	name := recordName(e.Key)

	if err := s.writeFile(name, data); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Key]; ok {
		rec := el.Value.(*record)
		if rec.seg == nil {
			// The rename already replaced the file; fix the accounting.
			s.bytes += int64(len(data)) - rec.size
			rec.size = int64(len(data))
			s.order.MoveToFront(el)
			s.evictLocked()
			return nil
		}
		// The key previously lived inside a segment; retire that slot and
		// index the fresh standalone record.
		s.dropLocked(el, false)
	}
	s.entries[e.Key] = s.order.PushFront(&record{key: e.Key, name: name, size: int64(len(data))})
	s.bytes += int64(len(data))
	s.evictLocked()
	return nil
}

// PutGroup durably stores every entry in one group commit: the records
// are concatenated into a single segment file, staged under a temporary
// name, flushed with one fsync, and renamed into place — the same
// crash-safety contract as Put (a kill at any instant leaves either none
// of the group or all of it under the final name, never a torn file) at
// two fsyncs per group instead of two per record. Each entry keeps its
// own canonical key, index slot, and LRU position; lookups are oblivious
// to which commit a record arrived in.
//
// The segment file is content-addressed (named by the hash of its bytes),
// so re-committing an identical group is idempotent, and distinct groups
// can never collide on disk.
func (s *Store) PutGroup(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	if len(entries) == 1 {
		return s.Put(entries[0])
	}
	blobs := make([][]byte, len(entries))
	var total int64
	for i, e := range entries {
		blobs[i] = EncodeEntry(e)
		if s.maxBytes > 0 && int64(len(blobs[i])) > s.maxBytes {
			return fmt.Errorf("%w: %d bytes > budget %d (key %s)",
				ErrTooLarge, len(blobs[i]), s.maxBytes, e.Key)
		}
		total += int64(len(blobs[i]))
	}
	h := sha256.New()
	for _, b := range blobs {
		h.Write(b)
	}
	name := hex.EncodeToString(h.Sum(nil)) + segmentSuffix
	data := make([]byte, 0, total)
	for _, b := range blobs {
		data = append(data, b...)
	}
	if err := s.writeFile(name, data); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	seg, ok := s.segments[name]
	if !ok {
		seg = &segment{name: name}
		s.segments[name] = seg
	}
	var off int64
	for i, e := range entries {
		size := int64(len(blobs[i]))
		if el, dup := s.entries[e.Key]; dup {
			// Replaced by this commit: a prior standalone file, a slot in
			// another segment, or — for duplicate keys within one group —
			// the slot indexed a moment ago (last wins, like repeated Put).
			s.dropLocked(el, false)
		}
		s.entries[e.Key] = s.order.PushFront(&record{
			key: e.Key, name: name, size: size, off: off, seg: seg,
		})
		seg.live++
		s.bytes += size
		off += size
	}
	s.evictLocked()
	return nil
}

// writeFile stages data under a temporary name, fsyncs it, renames it to
// name, and fsyncs the directory — the store's one durable-write
// protocol, shared by Put and PutGroup.
func (s *Store) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*"+tempSuffix)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		if err = tmp.Sync(); err == nil {
			s.fsyncs.Add(1)
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(s.dir, name))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if syncDir(s.dir) {
		s.fsyncs.Add(1)
	}
	return nil
}

// evictLocked removes least-recently-used records until bytes fits the
// budget. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes {
		oldest := s.order.Back()
		if oldest == nil {
			return
		}
		s.dropLocked(oldest, false)
	}
}

// dropLocked removes a record from the index and from disk; quarantine
// preserves the bytes for inspection instead of deleting them. A segment
// record only drops its index slot — the shared file lives until its
// last record leaves, then is deleted (or moved whole to quarantine when
// the drop was integrity-motivated).
func (s *Store) dropLocked(el *list.Element, quarantine bool) {
	rec := el.Value.(*record)
	s.order.Remove(el)
	delete(s.entries, rec.key)
	s.bytes -= rec.size
	if rec.seg != nil {
		rec.seg.live--
		if rec.seg.live <= 0 {
			delete(s.segments, rec.seg.name)
			if quarantine {
				s.quarantine(rec.seg.name)
			} else {
				os.Remove(filepath.Join(s.dir, rec.seg.name))
			}
		} else if quarantine {
			s.quarantined++
		}
		return
	}
	if quarantine {
		s.quarantine(rec.name)
	} else {
		os.Remove(filepath.Join(s.dir, rec.name))
	}
}

// quarantineSegmentLocked retires a whole segment: every index entry
// pointing into it is dropped and the file is preserved under quarantine.
// Used when a read-time integrity failure shows the file was mangled
// behind the store's back, which taints its other records' framing too.
func (s *Store) quarantineSegmentLocked(seg *segment) {
	var doomed []*list.Element
	for el := s.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*record).seg == seg {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		rec := el.Value.(*record)
		s.order.Remove(el)
		delete(s.entries, rec.key)
		s.bytes -= rec.size
		seg.live--
	}
	delete(s.segments, seg.name)
	s.quarantine(seg.name)
}

// quarantine moves a file into the quarantine subdirectory (best
// effort: a file that cannot be moved is deleted so it can never be
// indexed again).
func (s *Store) quarantine(name string) {
	s.quarantined++
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)) == nil {
			return
		}
	}
	os.Remove(filepath.Join(s.dir, name))
}

// readRecord reads and decodes one record file by name.
func (s *Store) readRecord(name string) (Entry, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return Entry{}, err
	}
	return DecodeEntry(data)
}

// readIndexed reads the bytes an index entry points at: the whole file
// for standalone records, the record's slice for segment records.
func (s *Store) readIndexed(rec *record) (Entry, error) {
	if rec.seg == nil {
		return s.readRecord(rec.name)
	}
	f, err := os.Open(filepath.Join(s.dir, rec.seg.name))
	if err != nil {
		return Entry{}, err
	}
	defer f.Close()
	buf := make([]byte, rec.size)
	if _, err := f.ReadAt(buf, rec.off); err != nil {
		return Entry{}, fmt.Errorf("%w: segment read at %d+%d: %v", ErrCorrupt, rec.off, rec.size, err)
	}
	return DecodeEntry(buf)
}

// quarantineBytes writes raw bytes (a torn segment tail) into the
// quarantine directory under the given name; best effort.
func (s *Store) quarantineBytes(name string, data []byte) {
	qdir := filepath.Join(s.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	os.WriteFile(filepath.Join(qdir, name), data, 0o644)
}

// recordName maps a key to its file name: the full SHA-256 of the key,
// so distinct keys can never collide on disk and file names stay valid
// regardless of what bytes the key contains. The key itself is embedded
// in the record, so the mapping never needs to be inverted.
func recordName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + recordSuffix
}

// syncDir fsyncs a directory so a completed rename survives power loss,
// reporting whether the sync happened. Best effort: some platforms/
// filesystems reject directory fsync, and a lost rename only costs a
// recompute.
func syncDir(dir string) bool {
	d, err := os.Open(dir)
	if err != nil {
		return false
	}
	err = d.Sync()
	d.Close()
	return err == nil
}
