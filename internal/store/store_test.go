package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// openTest opens a store rooted in a fresh temp dir.
func openTest(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// entry builds a distinguishable test entry.
func entry(key, body string) Entry {
	return Entry{Key: key, ContentType: "application/json", Events: uint64(len(body)), Body: []byte(body)}
}

// mustPut stores e or fails the test.
func mustPut(t *testing.T, s *Store, e Entry) {
	t.Helper()
	if err := s.Put(e); err != nil {
		t.Fatalf("Put(%q): %v", e.Key, err)
	}
}

// mustGet fetches key and requires a clean hit.
func mustGet(t *testing.T, s *Store, key string) Entry {
	t.Helper()
	e, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok=%v err=%v, want clean hit", key, ok, err)
	}
	return e
}

// mustMiss requires key to be absent without error.
func mustMiss(t *testing.T, s *Store, key string) {
	t.Helper()
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get(%q) = ok=%v err=%v, want clean miss", key, ok, err)
	}
}

// recordPath returns the on-disk path of key's record.
func recordPath(s *Store, key string) string {
	return filepath.Join(s.Dir(), recordName(key))
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, 0)
	want := Entry{Key: "run:abc", ContentType: "text/csv; charset=utf-8", Events: 12345, Body: []byte("layer,node\n0,1\n")}
	mustPut(t, s, want)
	got := mustGet(t, s, "run:abc")
	if got.Key != want.Key || got.ContentType != want.ContentType ||
		got.Events != want.Events || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	mustMiss(t, s, "run:other")
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Bytes() != int64(len(EncodeEntry(want))) {
		t.Fatalf("Bytes = %d, want encoded size %d", s.Bytes(), len(EncodeEntry(want)))
	}
}

func TestReopenRecoversEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, entry(fmt.Sprintf("spec:%d", i), strings.Repeat("x", i+1)))
	}

	// A second Open over the same directory must rebuild the index purely
	// from the files.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("recovered %d entries, want 5", s2.Len())
	}
	if s2.Bytes() != s.Bytes() {
		t.Fatalf("recovered %d bytes, want %d", s2.Bytes(), s.Bytes())
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("spec:%d", i)
		if got := mustGet(t, s2, key); !bytes.Equal(got.Body, []byte(strings.Repeat("x", i+1))) {
			t.Fatalf("recovered body for %q = %q", key, got.Body)
		}
	}
}

func TestOverwriteReplacesRecord(t *testing.T) {
	s := openTest(t, 0)
	mustPut(t, s, entry("k", "old body"))
	mustPut(t, s, entry("k", "new and longer body"))
	if got := mustGet(t, s, "k"); string(got.Body) != "new and longer body" {
		t.Fatalf("body after overwrite = %q", got.Body)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", s.Len())
	}
	if want := int64(len(EncodeEntry(entry("k", "new and longer body")))); s.Bytes() != want {
		t.Fatalf("Bytes after overwrite = %d, want %d", s.Bytes(), want)
	}
}

func TestEvictionIsLRUByBytes(t *testing.T) {
	recSize := int64(len(EncodeEntry(entry("k0", strings.Repeat("b", 64)))))
	s := openTest(t, 3*recSize)
	for i := 0; i < 3; i++ {
		mustPut(t, s, entry(fmt.Sprintf("k%d", i), strings.Repeat("b", 64)))
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	mustGet(t, s, "k0")
	mustPut(t, s, entry("k3", strings.Repeat("b", 64)))

	mustMiss(t, s, "k1")
	for _, key := range []string{"k0", "k2", "k3"} {
		mustGet(t, s, key)
	}
	if s.Bytes() > 3*recSize {
		t.Fatalf("Bytes = %d exceeds budget %d", s.Bytes(), 3*recSize)
	}
	// The evicted record must be gone from disk too, not just the index.
	if _, err := os.Stat(recordPath(s, "k1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted record still on disk: %v", err)
	}
}

func TestPutRejectsRecordOverBudget(t *testing.T) {
	s := openTest(t, 64)
	err := s.Put(entry("big", strings.Repeat("z", 1000)))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put over-budget err = %v, want ErrTooLarge", err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("rejected record was stored: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

// TestSwappedFilesDetectedByEmbeddedKey swaps two record files on disk
// behind the store's back; the embedded key must catch the mismatch so
// the wrong body is never served under either key.
func TestSwappedFilesDetectedByEmbeddedKey(t *testing.T) {
	s := openTest(t, 0)
	mustPut(t, s, entry("a", "body of a"))
	mustPut(t, s, entry("b", "body of b"))

	pa, pb := recordPath(s, "a"), recordPath(s, "b")
	tmp := pa + ".swap"
	for _, step := range [][2]string{{pa, tmp}, {pb, pa}, {tmp, pb}} {
		if err := os.Rename(step[0], step[1]); err != nil {
			t.Fatal(err)
		}
	}

	_, ok, err := s.Get("a")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on swapped file: ok=%v err=%v, want corrupt miss", ok, err)
	}
	if s.Quarantined() == 0 {
		t.Fatal("swapped record was not quarantined")
	}
}

// TestEvictionUnderChurn hammers a tiny store from many goroutines and
// asserts the byte budget is never observed exceeded, not even
// transiently, while entries churn through eviction.
func TestEvictionUnderChurn(t *testing.T) {
	const budget = 4096
	s := openTest(t, budget)

	var stop atomic.Bool
	violated := make(chan int64, 1)
	var probe sync.WaitGroup
	probe.Add(1)
	go func() {
		defer probe.Done()
		for !stop.Load() {
			if b := s.Bytes(); b > budget {
				select {
				case violated <- b:
				default:
				}
				return
			}
		}
	}()

	const writers, puts = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				key := fmt.Sprintf("churn:%d:%d", g, i)
				body := strings.Repeat(string(rune('a'+g)), 100+i)
				if err := s.Put(entry(key, body)); err != nil {
					t.Errorf("Put(%q): %v", key, err)
					return
				}
				s.Get(key)
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	probe.Wait()
	select {
	case b := <-violated:
		t.Fatalf("byte budget exceeded mid-churn: observed %d > %d", b, budget)
	default:
	}

	if b := s.Bytes(); b > budget {
		t.Fatalf("final Bytes = %d > budget %d", b, budget)
	}
	// The index accounting must agree with what is actually on disk.
	var diskBytes int64
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), recordSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		diskBytes += info.Size()
		live++
	}
	if diskBytes != s.Bytes() || live != s.Len() {
		t.Fatalf("disk has %d bytes in %d records, index says %d bytes in %d",
			diskBytes, live, s.Bytes(), s.Len())
	}
}
