package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// resultMagic frames raw core.Result snapshots. The service tier stores
// serialized response bodies (Entry), not raw results; this codec is the
// snapshot format for persisting the simulation output itself — per-node
// trigger histories — which the streaming-output follow-up (ROADMAP)
// needs and which golden fixtures exercise today. It shares the record
// framing (header + CRC32C) with Entry records.
const resultMagic = "HXS1"

// EncodeResult serializes a result snapshot into a framed record:
// the node count, each node's trigger history (length-prefixed int64
// picosecond times), the executed event count, and the horizon. The
// encoding is canonical and DecodeResult is its exact inverse, so
// encode∘decode is the identity on valid records (FuzzStoreCodec
// asserts this bijection).
func EncodeResult(res *core.Result) []byte {
	n := headerSize + 4 + 8 + 8
	for _, ts := range res.Triggers {
		n += 4 + 8*len(ts)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, resultMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n-headerSize))
	buf = buf[:headerSize]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(res.Triggers)))
	for _, ts := range res.Triggers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
		for _, t := range ts {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, res.Events)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.Horizon))
	binary.LittleEndian.PutUint32(buf[8:12], crc32Checksum(buf[headerSize:]))
	return buf
}

// DecodeResult parses a framed result snapshot. Length prefixes are
// checked against the remaining input before any allocation, so a
// corrupt count can never balloon memory; every failure wraps
// ErrCorrupt.
func DecodeResult(data []byte) (*core.Result, error) {
	payload, err := checkFrame(data, resultMagic)
	if err != nil {
		return nil, err
	}
	r := reader{buf: payload}
	nodes := r.uint32()
	if r.err != nil {
		return nil, r.err
	}
	// Each node costs at least its 4-byte count; reject inflated node
	// counts before allocating the outer slice.
	if uint64(nodes) > uint64(len(r.buf))/4 {
		return nil, fmt.Errorf("%w: node count %d exceeds payload", ErrCorrupt, nodes)
	}
	res := &core.Result{}
	if nodes > 0 {
		res.Triggers = make([][]sim.Time, nodes)
	}
	for i := range res.Triggers {
		cnt := r.uint32()
		if r.err != nil {
			return nil, r.err
		}
		if uint64(cnt) > uint64(len(r.buf))/8 {
			return nil, fmt.Errorf("%w: trigger count %d exceeds payload", ErrCorrupt, cnt)
		}
		if cnt == 0 {
			continue
		}
		ts := make([]sim.Time, cnt)
		for j := range ts {
			ts[j] = sim.Time(r.uint64())
		}
		res.Triggers[i] = ts
	}
	res.Events = r.uint64()
	res.Horizon = sim.Time(r.uint64())
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.buf))
	}
	return res, nil
}
