package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// simResult runs one real single-pulse simulation, mirroring the
// service's /v1/run pipeline, so the codec is tested against genuine
// trigger histories rather than synthetic ones.
func simResult(t testing.TB, l, w int, sc source.Scenario, seed uint64) *core.Result {
	t.Helper()
	h, err := grid.NewHex(l, w)
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	offsets := source.Offsets(sc, w, params.Bounds, sim.NewRNG(sim.DeriveSeed(seed, "offsets")))
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   params,
		Delay:    delay.Uniform{Bounds: params.Bounds},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(offsets),
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// goldenResult is the exact configuration golden_test.go pins bit-wise
// (50×20, scenario (iii), seed 424242): the canonical fixture for the
// snapshot codec.
func goldenResult(t testing.TB) *core.Result {
	return simResult(t, 50, 20, source.UniformDPlus, 424242)
}

// resultsEqual compares two results treating nil and empty trigger
// histories as the same (the codec canonicalizes count-0 to nil).
func resultsEqual(a, b *core.Result) bool {
	if a.Events != b.Events || a.Horizon != b.Horizon || len(a.Triggers) != len(b.Triggers) {
		return false
	}
	for i := range a.Triggers {
		if len(a.Triggers[i]) != len(b.Triggers[i]) {
			return false
		}
		for j := range a.Triggers[i] {
			if a.Triggers[i][j] != b.Triggers[i][j] {
				return false
			}
		}
	}
	return true
}

// TestResultCodecLosslessOnRealRuns round-trips real simulation results
// — including the golden-test configuration — and demands bit-exact
// trigger histories back.
func TestResultCodecLosslessOnRealRuns(t *testing.T) {
	cases := []*core.Result{
		{},
		{Triggers: [][]sim.Time{nil, {1, 2, 3}, {}}, Events: 9, Horizon: 77},
		simResult(t, 10, 8, source.Zero, 7),
		goldenResult(t),
	}
	for i, want := range cases {
		data := EncodeResult(want)
		got, err := DecodeResult(data)
		if err != nil {
			t.Fatalf("case %d: DecodeResult: %v", i, err)
		}
		if !resultsEqual(got, want) {
			t.Fatalf("case %d: round trip lost information", i)
		}
		if again := EncodeResult(got); !bytes.Equal(again, data) {
			t.Fatalf("case %d: re-encode differs from original encoding", i)
		}
	}
}

// TestDecodeResultRejectsCorruption spot-checks the snapshot decoder's
// defenses; FuzzStoreCodec explores this space exhaustively.
func TestDecodeResultRejectsCorruption(t *testing.T) {
	valid := EncodeResult(simResult(t, 6, 8, source.Zero, 3))
	for name, data := range map[string][]byte{
		"empty":       {},
		"truncated":   valid[:len(valid)/2],
		"entry magic": append([]byte(entryMagic), valid[4:]...),
		"trailing":    append(append([]byte(nil), valid...), 1),
	} {
		if _, err := DecodeResult(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}

	// A node count that promises more nodes than the payload can hold
	// must be rejected by the bounds check before it allocates.
	lying := append([]byte(nil), valid...)
	lying[headerSize+3] = 0x7F // node count high byte → ~2 billion nodes
	rebuildCRC(lying)
	if _, err := DecodeResult(lying); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inflated node count: err = %v, want ErrCorrupt", err)
	}
}
