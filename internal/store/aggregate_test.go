package store

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

func sampleAggregate() *Aggregate {
	return &Aggregate{
		Triggered: 837,
		Events:    1404900,
		Horizon:   987654321,
		ElapsedNs: 42_000_000,
		IntraSkew: stats.Summary{N: 1000, Min: 0, Q5: 0.1, Avg: 0.5029840000000003, Q95: 1.2, Max: 2, Std: 0.31},
		InterSkew: stats.Summary{N: 420, Min: -3.5, Q5: -1, Avg: 0.25, Q95: 1, Max: 3.5, Std: 1.7},
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	for name, a := range map[string]*Aggregate{
		"zero":   {},
		"sample": sampleAggregate(),
		"extremes": {
			Triggered: math.MaxUint32,
			Events:    math.MaxUint64,
			Horizon:   math.MinInt64,
			ElapsedNs: 1,
			IntraSkew: stats.Summary{N: 1, Min: math.Inf(-1), Max: math.Inf(1), Avg: math.NaN()},
		},
	} {
		enc := EncodeAggregate(a)
		got, err := DecodeAggregate(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Triggered != a.Triggered || got.Events != a.Events ||
			got.Horizon != a.Horizon || got.ElapsedNs != a.ElapsedNs {
			t.Fatalf("%s: scalar fields changed: got %+v want %+v", name, got, a)
		}
		for i, pair := range [][2]stats.Summary{{got.IntraSkew, a.IntraSkew}, {got.InterSkew, a.InterSkew}} {
			if !summariesBitEqual(pair[0], pair[1]) {
				t.Fatalf("%s: summary %d changed: got %+v want %+v", name, i, pair[0], pair[1])
			}
		}
	}
}

// summariesBitEqual compares summaries by float bit pattern so NaN
// round-trips count as equal (the codec preserves the exact bits).
func summariesBitEqual(a, b stats.Summary) bool {
	if a.N != b.N {
		return false
	}
	av := [...]float64{a.Min, a.Q5, a.Avg, a.Q95, a.Max, a.Std}
	bv := [...]float64{b.Min, b.Q5, b.Avg, b.Q95, b.Max, b.Std}
	for i := range av {
		if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
			return false
		}
	}
	return true
}

func TestAggregateDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeAggregate(sampleAggregate())

	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := DecodeAggregate(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCorrupt", err)
	}

	if _, err := DecodeAggregate(enc[:len(enc)-3]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation: got %v, want ErrCorrupt", err)
	}

	trailing := append(append([]byte(nil), enc...), 0)
	if _, err := DecodeAggregate(trailing); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: got %v, want ErrCorrupt", err)
	}

	wrongMagic := append([]byte(nil), enc...)
	copy(wrongMagic, resultMagic)
	if _, err := DecodeAggregate(wrongMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong magic: got %v, want ErrCorrupt", err)
	}
}
