package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Fault-injection suite: every way a record file can be damaged —
// truncated at any byte, any single bit flipped, a write interrupted
// before its rename — must leave the store serving only intact data.
// The invariant under test is absolute: a damaged record is quarantined,
// never decoded into a response.

// writeRecordFile plants raw bytes as a record file in dir.
func writeRecordFile(t *testing.T, dir string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, "planted-"+fmt.Sprint(len(data))+recordSuffix)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quarantineCount counts files under dir's quarantine subdirectory.
func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, QuarantineDir))
	if errors.Is(err, os.ErrNotExist) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// sampleRecord returns the encoded bytes of a representative entry.
func sampleRecord() ([]byte, Entry) {
	e := Entry{
		Key:         "spec:deadbeefcafe",
		ContentType: "application/json",
		Events:      987654321,
		Body:        []byte(`{"l":50,"w":20,"intra_skew_ns":{"avg":0.5029840000000003}}` + "\n"),
	}
	return EncodeEntry(e), e
}

// TestTruncatedAtEveryOffsetQuarantined cuts a valid record at every
// possible byte offset and opens a store over each stump: no prefix of
// a record may ever be indexed or served.
func TestTruncatedAtEveryOffsetQuarantined(t *testing.T) {
	data, want := sampleRecord()
	for cut := 0; cut < len(data); cut++ {
		dir := t.TempDir()
		writeRecordFile(t, dir, data[:cut])
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if s.Len() != 0 {
			t.Fatalf("cut=%d: truncated record was indexed", cut)
		}
		if got := s.Quarantined(); got != 1 {
			t.Fatalf("cut=%d: quarantined = %d, want 1", cut, got)
		}
		if n := quarantineCount(t, dir); n != 1 {
			t.Fatalf("cut=%d: quarantine dir holds %d files, want 1", cut, n)
		}
		mustMiss(t, s, want.Key)
	}

	// Sanity: the uncut record is indexed and served intact.
	dir := t.TempDir()
	writeRecordFile(t, dir, data)
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, s, want.Key); !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("full record body = %q, want %q", got.Body, want.Body)
	}
}

// TestEveryBitFlipRejected flips each bit of a valid record in turn;
// the CRC32C (payload) or the header checks (magic, length, stored CRC)
// must reject every single-bit corruption.
func TestEveryBitFlipRejected(t *testing.T) {
	data, want := sampleRecord()
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), data...)
			flipped[i] ^= 1 << bit
			if _, err := DecodeEntry(flipped); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("byte %d bit %d: DecodeEntry err = %v, want ErrCorrupt", i, bit, err)
			}
		}
	}

	// Through the store: a flipped record is quarantined at scan time.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	dir := t.TempDir()
	writeRecordFile(t, dir, flipped)
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Quarantined() != 1 {
		t.Fatalf("flipped record: len=%d quarantined=%d, want 0/1", s.Len(), s.Quarantined())
	}
	mustMiss(t, s, want.Key)
}

// TestKillDuringWriteLeavesOldRecordIntact simulates a crash at the two
// vulnerable instants of the temp-file-and-rename protocol: after the
// temp file is (partially or fully) written but before the rename. The
// previous record for the key must survive untouched and the temp
// debris must be collected on the next Open.
func TestKillDuringWriteLeavesOldRecordIntact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := entry("k", "committed value")
	mustPut(t, s, old)

	// Crash 1: temp file holds a torn prefix of the replacement record.
	replacement := EncodeEntry(entry("k", "replacement value that never committed"))
	if err := os.WriteFile(filepath.Join(dir, "put-crash1"+tempSuffix), replacement[:len(replacement)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash 2: temp file is complete, but the rename never happened.
	if err := os.WriteFile(filepath.Join(dir, "put-crash2"+tempSuffix), replacement, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", s2.Len())
	}
	if got := mustGet(t, s2, "k"); string(got.Body) != "committed value" {
		t.Fatalf("body after crash recovery = %q, want the committed value", got.Body)
	}
	// The debris is gone: no temp files remain anywhere in the dir.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), tempSuffix) {
			t.Fatalf("temp file %s survived recovery", de.Name())
		}
	}
	if got := s2.Quarantined(); got != 0 {
		t.Fatalf("crash debris was quarantined as records: %d", got)
	}
}

// TestReadTimeCorruptionQuarantined damages a record after it was
// indexed: the next Get must detect it, quarantine the file, and report
// a miss rather than serve the damaged bytes.
func TestReadTimeCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, entry("k", "a body long enough to truncate meaningfully"))

	path := recordPath(s, "k")
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}

	_, ok, err := s.Get("k")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on truncated record: ok=%v err=%v, want corrupt miss", ok, err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("corrupt record still accounted: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("quarantine holds %d files, want 1", n)
	}
	// The store keeps working: the key can be recomputed and re-stored.
	mustPut(t, s, entry("k", "recomputed"))
	if got := mustGet(t, s, "k"); string(got.Body) != "recomputed" {
		t.Fatalf("re-stored body = %q", got.Body)
	}
}

// TestScanQuarantinesMixedDirectory mixes valid, truncated, bit-flipped,
// and foreign files in one directory and opens it: the good records
// survive, everything damaged is quarantined, foreign files are left
// alone, and the store still serves and accepts writes.
func TestScanQuarantinesMixedDirectory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	good1, good2 := entry("good:1", "first good body"), entry("good:2", "second good body")
	mustPut(t, s, good1)
	mustPut(t, s, good2)

	bad := EncodeEntry(entry("bad:1", "to be damaged"))
	writeRecordFile(t, dir, bad[:len(bad)-3])
	flipped := EncodeEntry(entry("bad:2", "also damaged"))
	flipped[headerSize+2] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, "flipped"+recordSuffix), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file without the record suffix is none of our business.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.Quarantined() != 2 {
		t.Fatalf("len=%d quarantined=%d, want 2/2", s2.Len(), s2.Quarantined())
	}
	mustGet(t, s2, "good:1")
	mustGet(t, s2, "good:2")
	mustMiss(t, s2, "bad:1")
	mustMiss(t, s2, "bad:2")
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file was touched: %v", err)
	}
	mustPut(t, s2, entry("bad:1", "recomputed after quarantine"))
	mustGet(t, s2, "bad:1")
}
