// Package store is a disk-backed, content-addressed result store: the
// persistent tier behind the in-memory LRU of internal/service. Entries
// are keyed by the service's canonical request hash and hold a finished,
// serialized response body. Because every simulation is a deterministic
// function of its canonical request (the golden test pins this
// bit-exactly), a disk hit is byte-identical to a recompute — the store
// never needs invalidation, only integrity checking and capacity
// eviction.
//
// On-disk format (DESIGN.md §10): one record per file, written with an
// atomic temp-file-and-rename protocol. A record is a fixed header
// (magic, payload length, CRC32C of the payload) followed by the
// length-prefixed payload fields. Any record that does not decode
// exactly — short file, trailing bytes, bad magic, CRC mismatch — is
// quarantined, never served.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorrupt tags every decode failure: truncation, bad magic, length or
// checksum mismatch, or trailing garbage. Callers treat it as "this
// record does not exist" after quarantining the file.
var ErrCorrupt = errors.New("store: corrupt record")

// Record framing. All integers are little-endian.
const (
	entryMagic = "HXR1" // record files holding an Entry
	headerSize = 4 + 4 + 4
)

// castagnoli is the CRC32C polynomial table; CRC32C detects all
// single-bit and all 2-bit errors over these record sizes.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32Checksum is the record checksum: CRC32C over the payload.
func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Entry is one stored result: the serialized response body for a
// canonical request key, plus the metadata the service replays with it.
type Entry struct {
	// Key is the canonical request hash (e.g. "spec:ab12…") the entry is
	// addressed by. It is embedded in the record so a scan can rebuild
	// the index from file contents alone, and so a swapped or misnamed
	// file is detected at read time.
	Key string
	// ContentType is the HTTP content type of Body.
	ContentType string
	// Events is the simulation event count behind the body, replayed
	// into the X-Hexd-Events header.
	Events uint64
	// Body is the exact response body. Disk hits replay it verbatim;
	// determinism makes that byte-identical to a recompute.
	Body []byte
}

// EncodeEntry serializes e into a framed record. The encoding is
// canonical: equal entries encode to equal bytes, and DecodeEntry is its
// exact inverse (the fuzz harness asserts the bijection).
func EncodeEntry(e Entry) []byte {
	n := headerSize + 4 + len(e.Key) + 4 + len(e.ContentType) + 8 + 4 + len(e.Body)
	buf := make([]byte, 0, n)
	buf = append(buf, entryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n-headerSize))
	buf = buf[:headerSize] // CRC filled in below, after the payload exists
	buf = appendBytes(buf, []byte(e.Key))
	buf = appendBytes(buf, []byte(e.ContentType))
	buf = binary.LittleEndian.AppendUint64(buf, e.Events)
	buf = appendBytes(buf, e.Body)
	binary.LittleEndian.PutUint32(buf[8:12], crc32Checksum(buf[headerSize:]))
	return buf
}

// DecodeEntry parses a framed record. Every failure wraps ErrCorrupt and
// names the reason; a nil error guarantees the whole input was consumed
// and the checksum matched.
func DecodeEntry(data []byte) (Entry, error) {
	payload, err := checkFrame(data, entryMagic)
	if err != nil {
		return Entry{}, err
	}
	r := reader{buf: payload}
	key := r.bytes()
	ct := r.bytes()
	events := r.uint64()
	body := r.bytes()
	if r.err != nil {
		return Entry{}, r.err
	}
	if len(r.buf) != 0 {
		return Entry{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.buf))
	}
	return Entry{Key: string(key), ContentType: string(ct), Events: events, Body: body}, nil
}

// checkFrame validates the header of a record and returns its payload.
func checkFrame(data []byte, magic string) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	payload := data[headerSize:]
	if n := binary.LittleEndian.Uint32(data[4:8]); int(n) != len(payload) {
		return nil, fmt.Errorf("%w: header says %d payload bytes, file has %d", ErrCorrupt, n, len(payload))
	}
	want := binary.LittleEndian.Uint32(data[8:12])
	if got := crc32Checksum(payload); got != want {
		return nil, fmt.Errorf("%w: CRC32C mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return payload, nil
}

// appendBytes writes a u32 length prefix followed by the bytes.
func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// reader consumes a payload left to right, latching the first error so
// callers can chain reads and check once. Length prefixes are validated
// against the remaining input before any slice is taken, so a corrupt
// length can never over-read or over-allocate.
type reader struct {
	buf []byte
	err error
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.err = fmt.Errorf("%w: truncated u32", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("%w: truncated u64", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.uint32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.buf)) {
		r.err = fmt.Errorf("%w: length prefix %d exceeds %d remaining bytes", ErrCorrupt, n, len(r.buf))
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[:n])
	r.buf = r.buf[n:]
	return b
}
