package store

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/source"
)

// FuzzStoreCodec throws arbitrary bytes at both record decoders. The
// invariants, for any input whatsoever:
//
//  1. Decoding never panics and never over-allocates past the input size
//     (lying length prefixes are bounds-checked before allocation).
//  2. Anything that decodes cleanly re-encodes to the identical bytes —
//     the codecs are bijections between valid records and values, so a
//     decoded record carries exactly the information of its file.
//
// The seed corpus is built from golden-test fixtures: the encoded
// result of the pinned golden configuration (50×20, scenario (iii),
// seed 424242), a small real run, and real entry records, so the fuzzer
// starts from the deep end of the format rather than from zero.
func FuzzStoreCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(entryMagic))
	f.Add([]byte(resultMagic))
	f.Add(EncodeResult(goldenResult(f)))
	f.Add(EncodeResult(simResult(f, 8, 8, source.Zero, 5)))
	f.Add(EncodeResult(&core.Result{}))
	f.Add(EncodeEntry(Entry{
		Key:         "spec:golden",
		ContentType: "application/json",
		Events:      1404900,
		Body:        []byte(`{"intra_skew_ns":{"avg":0.5029840000000003,"n":1000}}` + "\n"),
	}))
	f.Add(EncodeEntry(Entry{}))

	f.Add(EncodeAggregate(&Aggregate{}))
	f.Add(EncodeAggregate(sampleAggregate()))

	f.Fuzz(func(t *testing.T, data []byte) {
		if e, err := DecodeEntry(data); err == nil {
			again := EncodeEntry(e)
			if !bytes.Equal(again, data) {
				t.Fatalf("entry codec not bijective: %d-byte input re-encoded to %d bytes", len(data), len(again))
			}
			e2, err := DecodeEntry(again)
			if err != nil {
				t.Fatalf("re-decode of re-encoded entry failed: %v", err)
			}
			if e2.Key != e.Key || e2.ContentType != e.ContentType || e2.Events != e.Events ||
				!bytes.Equal(e2.Body, e.Body) {
				t.Fatal("entry round trip lost information")
			}
		}
		if r, err := DecodeResult(data); err == nil {
			again := EncodeResult(r)
			if !bytes.Equal(again, data) {
				t.Fatalf("result codec not bijective: %d-byte input re-encoded to %d bytes", len(data), len(again))
			}
			r2, err := DecodeResult(again)
			if err != nil {
				t.Fatalf("re-decode of re-encoded result failed: %v", err)
			}
			if !resultsEqual(r, r2) {
				t.Fatal("result round trip lost information")
			}
		}
		if a, err := DecodeAggregate(data); err == nil {
			again := EncodeAggregate(a)
			if !bytes.Equal(again, data) {
				t.Fatalf("aggregate codec not bijective: %d-byte input re-encoded to %d bytes", len(data), len(again))
			}
			if _, err := DecodeAggregate(again); err != nil {
				t.Fatalf("re-decode of re-encoded aggregate failed: %v", err)
			}
		}
	})
}
