package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// aggregateMagic frames compact campaign summaries — the HXA1 record
// beside HXS1. A campaign that only needs skew statistics has no use for
// a full per-node trigger snapshot; the aggregate record carries the
// skew summaries, trigger/event counts, horizon, and wall time in a few
// hundred bytes regardless of grid size, cutting store bytes (and the
// allocation behind them) by orders of magnitude at L20_W12 and above.
const aggregateMagic = "HXA1"

// Aggregate is the compact summary of one single-pulse run, produced by
// the service's aggregate-only execution mode (RunRequest.Output "agg").
type Aggregate struct {
	// Triggered is the number of non-excluded nodes that triggered.
	Triggered uint32
	// Events is the number of simulation events executed.
	Events uint64
	// Horizon is the end of simulated time.
	Horizon sim.Time
	// ElapsedNs is the wall time of the simulation in nanoseconds.
	ElapsedNs uint64
	// IntraSkew and InterSkew summarize the wave's skew samples (ns).
	IntraSkew stats.Summary
	InterSkew stats.Summary
}

// EncodeAggregate serializes an aggregate summary into a framed record.
// The encoding is canonical: equal aggregates encode to equal bytes, and
// DecodeAggregate is its exact inverse (FuzzAggregateCodec asserts the
// bijection, including float bit patterns).
func EncodeAggregate(a *Aggregate) []byte {
	const summarySize = 4 + 6*8
	n := headerSize + 4 + 8 + 8 + 8 + 2*summarySize
	buf := make([]byte, 0, n)
	buf = append(buf, aggregateMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n-headerSize))
	buf = buf[:headerSize]
	buf = binary.LittleEndian.AppendUint32(buf, a.Triggered)
	buf = binary.LittleEndian.AppendUint64(buf, a.Events)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Horizon))
	buf = binary.LittleEndian.AppendUint64(buf, a.ElapsedNs)
	buf = appendSummary(buf, a.IntraSkew)
	buf = appendSummary(buf, a.InterSkew)
	binary.LittleEndian.PutUint32(buf[8:12], crc32Checksum(buf[headerSize:]))
	return buf
}

// DecodeAggregate parses a framed aggregate record; every failure wraps
// ErrCorrupt.
func DecodeAggregate(data []byte) (*Aggregate, error) {
	payload, err := checkFrame(data, aggregateMagic)
	if err != nil {
		return nil, err
	}
	r := reader{buf: payload}
	a := &Aggregate{}
	a.Triggered = r.uint32()
	a.Events = r.uint64()
	a.Horizon = sim.Time(r.uint64())
	a.ElapsedNs = r.uint64()
	a.IntraSkew = readSummary(&r)
	a.InterSkew = readSummary(&r)
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.buf))
	}
	return a, nil
}

// appendSummary writes a stats.Summary: the sample count then the six
// statistics as raw IEEE-754 bit patterns (bit-exact round-tripping, no
// formatting loss).
func appendSummary(buf []byte, s stats.Summary) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.N))
	for _, v := range [...]float64{s.Min, s.Q5, s.Avg, s.Q95, s.Max, s.Std} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func readSummary(r *reader) stats.Summary {
	var s stats.Summary
	s.N = int(r.uint32())
	for _, p := range [...]*float64{&s.Min, &s.Q5, &s.Avg, &s.Q95, &s.Max, &s.Std} {
		*p = math.Float64frombits(r.uint64())
	}
	return s
}
