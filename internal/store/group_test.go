package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Group-commit suite: PutGroup must give every record of a batch the
// same durability, lookup, recovery, and eviction semantics as a
// standalone Put, at two fsyncs per group instead of two per record —
// and a damaged segment may cost at most its torn tail, never its valid
// prefix.

// groupEntries builds n distinct entries with recognizable bodies.
func groupEntries(n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = entry(fmt.Sprintf("run:group-%03d", i), fmt.Sprintf("group body %03d with some padding", i))
	}
	return es
}

// segmentPath returns the path of the single .seg file in the store dir,
// failing if there is not exactly one.
func segmentPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), segmentSuffix) {
			segs = append(segs, de.Name())
		}
	}
	if len(segs) != 1 {
		t.Fatalf("store dir holds %d segment files, want 1: %v", len(segs), segs)
	}
	return filepath.Join(dir, segs[0])
}

func TestPutGroupRoundTripAndFsyncAmortization(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	es := groupEntries(64)
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	if got := s.Fsyncs(); got > 2 {
		t.Fatalf("group of 64 cost %d fsyncs, want <= 2", got)
	}
	if s.Len() != 64 {
		t.Fatalf("Len = %d, want 64", s.Len())
	}
	for _, e := range es {
		got := mustGet(t, s, e.Key)
		if !bytes.Equal(got.Body, e.Body) || got.Events != e.Events || got.ContentType != e.ContentType {
			t.Fatalf("record %q round-trip mismatch", e.Key)
		}
	}
	// Per-record Put of the same volume costs 2 fsyncs each.
	base := s.Fsyncs()
	mustPut(t, s, entry("run:solo", "standalone"))
	if got := s.Fsyncs() - base; got != 2 {
		t.Fatalf("single Put cost %d fsyncs, want 2", got)
	}
}

func TestPutGroupSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	es := groupEntries(8)
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 8 || s2.Quarantined() != 0 {
		t.Fatalf("reopen: len=%d quarantined=%d, want 8/0", s2.Len(), s2.Quarantined())
	}
	for _, e := range es {
		got := mustGet(t, s2, e.Key)
		if !bytes.Equal(got.Body, e.Body) {
			t.Fatalf("record %q differs after reopen", e.Key)
		}
	}
}

func TestPutGroupReplacesAndIsReplaced(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A standalone record replaced by a group member…
	mustPut(t, s, entry("k1", "old standalone"))
	if err := s.PutGroup([]Entry{entry("k1", "from group"), entry("k2", "also from group")}); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, s, "k1"); string(got.Body) != "from group" {
		t.Fatalf("k1 = %q, want the group's value", got.Body)
	}
	// …and a group member replaced by a standalone Put.
	mustPut(t, s, entry("k2", "new standalone"))
	if got := mustGet(t, s, "k2"); string(got.Body) != "new standalone" {
		t.Fatalf("k2 = %q, want the standalone value", got.Body)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Replacing the last group member retires the segment file.
	mustPut(t, s, entry("k1", "newer standalone"))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), segmentSuffix) {
			t.Fatalf("dead segment file %s survived", de.Name())
		}
	}
	// Re-committing an identical group over its own previous segment is
	// idempotent (content-addressed name).
	es := groupEntries(4)
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		mustGet(t, s, e.Key)
	}
}

func TestPutGroupEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	// Budget fits roughly half the group: the oldest group records must
	// evict, the newest survive, and accounting must stay exact.
	es := groupEntries(16)
	var one int64
	for _, e := range es {
		if n := int64(len(EncodeEntry(e))); n > one {
			one = n
		}
	}
	budget := one * 8
	s, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > budget {
		t.Fatalf("Bytes = %d exceeds budget %d", s.Bytes(), budget)
	}
	if s.Len() == 0 || s.Len() >= 16 {
		t.Fatalf("Len = %d, want partial survival under the budget", s.Len())
	}
	// The newest records (pushed last, so most recently used) survive.
	mustGet(t, s, es[15].Key)
	mustMiss(t, s, es[0].Key)
	// The segment file lives while any record does, and dies with the
	// last one.
	segmentPath(t, dir)
	for _, e := range es {
		s.Delete(e.Key)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), segmentSuffix) {
			t.Fatal("segment file survived the death of its last record")
		}
	}
}

// TestKillBeforeSegmentRenameLeavesNothing simulates the group-commit
// crash points: the segment is staged and (partially) written but the
// rename never happened. Like a single-record Put, recovery must collect
// the temp debris and index nothing from the aborted group, while
// records committed earlier stay intact.
func TestKillBeforeSegmentRenameLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, entry("k", "committed before the crash"))

	es := groupEntries(4)
	var blob []byte
	for _, e := range es {
		blob = append(blob, EncodeEntry(e)...)
	}
	// Crash 1: staged segment torn mid-record.
	if err := os.WriteFile(filepath.Join(dir, "put-crash1"+tempSuffix), blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash 2: staged segment complete, rename missing.
	if err := os.WriteFile(filepath.Join(dir, "put-crash2"+tempSuffix), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 || s2.Quarantined() != 0 {
		t.Fatalf("recovered len=%d quarantined=%d, want 1/0", s2.Len(), s2.Quarantined())
	}
	mustGet(t, s2, "k")
	for _, e := range es {
		mustMiss(t, s2, e.Key)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), tempSuffix) {
			t.Fatalf("temp file %s survived recovery", de.Name())
		}
	}
}

// TestSegmentTornTailQuarantinesOnlyTail truncates a committed segment at
// every byte offset: recovery must index exactly the records wholly
// inside the prefix, quarantine only the torn tail, and keep serving the
// prefix records byte-identically.
func TestSegmentTornTailQuarantinesOnlyTail(t *testing.T) {
	es := groupEntries(4)
	sizes := make([]int, len(es))
	var total int
	for i, e := range es {
		sizes[i] = len(EncodeEntry(e))
		total += sizes[i]
	}
	// wholeRecords(cut) = how many records fit entirely within cut bytes.
	wholeRecords := func(cut int) int {
		n, acc := 0, 0
		for _, sz := range sizes {
			if acc+sz > cut {
				break
			}
			acc += sz
			n++
		}
		return n
	}

	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(t, dir)
	blob, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != total {
		t.Fatalf("segment is %d bytes, want %d", len(blob), total)
	}

	for cut := 0; cut < len(blob); cut++ {
		dir := t.TempDir()
		name := filepath.Base(segPath)
		if err := os.WriteFile(filepath.Join(dir, name), blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		want := wholeRecords(cut)
		if s.Len() != want {
			t.Fatalf("cut=%d: indexed %d records, want %d", cut, s.Len(), want)
		}
		// Any leftover bytes past the last whole record are a torn tail
		// and cost exactly one quarantine event.
		wantQuarantined := uint64(0)
		if sumPrefix(sizes, want) != cut {
			wantQuarantined = 1
		}
		if got := s.Quarantined(); got != wantQuarantined {
			t.Fatalf("cut=%d: quarantined = %d, want %d", cut, got, wantQuarantined)
		}
		for i, e := range es {
			if i < want {
				got := mustGet(t, s, e.Key)
				if !bytes.Equal(got.Body, e.Body) {
					t.Fatalf("cut=%d: prefix record %d differs", cut, i)
				}
			} else {
				mustMiss(t, s, e.Key)
			}
		}
		// The truncated file reopens cleanly a second time: the tail was
		// cut away, so nothing further is quarantined.
		s2, err := Open(dir, 0)
		if err != nil {
			t.Fatalf("cut=%d: second Open: %v", cut, err)
		}
		if s2.Len() != want || s2.Quarantined() != 0 {
			t.Fatalf("cut=%d: second open len=%d quarantined=%d, want %d/0",
				cut, s2.Len(), s2.Quarantined(), want)
		}
	}
}

func sumPrefix(sizes []int, n int) int {
	total := 0
	for _, sz := range sizes[:n] {
		total += sz
	}
	return total
}

// TestSegmentBitFlipTailOnly flips one bit in each record of a committed
// segment in turn: recovery must keep every record before the flip and
// quarantine from the flipped record on (framing after a corrupt record
// cannot be trusted).
func TestSegmentBitFlipTailOnly(t *testing.T) {
	es := groupEntries(4)
	sizes := make([]int, len(es))
	for i, e := range es {
		sizes[i] = len(EncodeEntry(e))
	}
	for victim := 0; victim < len(es); victim++ {
		dir := t.TempDir()
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutGroup(es); err != nil {
			t.Fatal(err)
		}
		segPath := segmentPath(t, dir)
		blob, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a payload bit in the middle of the victim record.
		off := sumPrefix(sizes, victim) + sizes[victim]/2
		blob[off] ^= 0x04
		if err := os.WriteFile(segPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Len() != victim {
			t.Fatalf("victim=%d: indexed %d records, want %d", victim, s2.Len(), victim)
		}
		if got := s2.Quarantined(); got != 1 {
			t.Fatalf("victim=%d: quarantined = %d, want 1", victim, got)
		}
		for i, e := range es {
			if i < victim {
				mustGet(t, s2, e.Key)
			} else {
				mustMiss(t, s2, e.Key)
			}
		}
	}
}

// TestSegmentReadTimeCorruption damages a segment after it was indexed:
// the next Get of any of its records must quarantine the whole file
// (its framing is no longer trustworthy), serve nothing damaged, and
// leave the store accepting recomputes.
func TestSegmentReadTimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	es := groupEntries(3)
	if err := s.PutGroup(es); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(t, dir)
	if err := os.Truncate(segPath, 10); err != nil {
		t.Fatal(err)
	}

	_, ok, err := s.Get(es[1].Key)
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on damaged segment: ok=%v err=%v, want corrupt miss", ok, err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("damaged segment still accounted: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("quarantine holds %d files, want 1", n)
	}
	for _, e := range es {
		mustMiss(t, s, e.Key)
	}
	// The store keeps working after the quarantine.
	mustPut(t, s, entry(es[0].Key, "recomputed"))
	if got := mustGet(t, s, es[0].Key); string(got.Body) != "recomputed" {
		t.Fatalf("re-stored body = %q", got.Body)
	}
}

func TestPutGroupSingleAndEmpty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGroup(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.PutGroup([]Entry{entry("only", "one record")}); err != nil {
		t.Fatal(err)
	}
	// A group of one degrades to a plain Put: standalone record file.
	if _, err := os.Stat(recordPath(s, "only")); err != nil {
		t.Fatalf("single-entry group did not write a standalone record: %v", err)
	}
	mustGet(t, s, "only")

	// Duplicate keys inside one group: last wins, like repeated Put.
	if err := s.PutGroup([]Entry{entry("dup", "first"), entry("x", "other"), entry("dup", "second")}); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, s, "dup"); string(got.Body) != "second" {
		t.Fatalf("dup = %q, want the last value", got.Body)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
