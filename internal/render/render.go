// Package render formats experiment outputs as text: aligned tables (the
// paper's Tables 1–3), ASCII histograms (Figs. 10–11), per-layer series
// (Fig. 12), and heat-map style wave plots standing in for the paper's 3-D
// wave figures (Figs. 8, 9, 13, 14).
package render

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table is a titled table with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is printed under the table (provenance, paper reference).
	Note string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	return b.String()
}

// Ns formats a nanosecond value with three decimals, as in the paper's
// tables.
func Ns(v float64) string { return fmt.Sprintf("%.3f", v) }

// NsTime formats a sim.Time in nanoseconds with two decimals, the
// resolution of Table 3.
func NsTime(t sim.Time) string { return fmt.Sprintf("%.2f", t.Nanoseconds()) }

// Histogram renders an ASCII bar histogram, one bin per line, bars scaled
// to width characters.
func Histogram(h *stats.Histogram, width int, label string) string {
	if width <= 0 {
		width = 50
	}
	max := h.MaxCount()
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, under=%d, over=%d)\n", label, h.Total, h.Under, h.Over)
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/max)
		fmt.Fprintf(&b, "%8.2f |%-*s| %d\n", h.BinCenter(i), width, bar, c)
	}
	return b.String()
}

// WaveHeat renders a pulse wave as a heat map: one row per layer (bottom
// layer first), one character per column. Characters 0-9/a-z encode the
// node's triggering time normalized over the whole wave; 'X' marks faulty
// or excluded nodes and '.' untriggered ones.
func WaveHeat(w *analysis.Wave, maxLayers int) string {
	g := w.G
	lo, hi := sim.MaxTime, sim.Time(-1<<62)
	for n := range w.T {
		if w.Valid(n) {
			lo, hi = sim.MinTime(lo, w.T[n]), sim.MaxOf(hi, w.T[n])
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	const ramp = "0123456789abcdefghijklmnopqrstuvwxyz"
	layers := g.NumLayers()
	if maxLayers > 0 && maxLayers < layers {
		layers = maxLayers
	}
	var b strings.Builder
	for l := layers - 1; l >= 0; l-- {
		fmt.Fprintf(&b, "layer %3d  ", l)
		for _, n := range g.Layer(l) {
			switch {
			case w.Excluded[n]:
				b.WriteByte('X')
			case w.T[n] == analysis.Missing:
				b.WriteByte('.')
			default:
				idx := int(int64(w.T[n]-lo) * int64(len(ramp)-1) / int64(span))
				b.WriteByte(ramp[idx])
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "time scale: 0=%v … z=%v\n", lo, hi)
	return b.String()
}

// WaveLayerSeries renders per-layer triggering-time statistics of a wave:
// layer, min, avg, max trigger time (ns) — the numeric counterpart of the
// paper's 3-D wave plots.
func WaveLayerSeries(w *analysis.Wave, title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"layer", "t_min[ns]", "t_avg[ns]", "t_max[ns]", "intra_max[ns]"},
	}
	g := w.G
	for l := 0; l < g.NumLayers(); l++ {
		var vals []float64
		for _, n := range g.Layer(l) {
			if w.Valid(n) {
				vals = append(vals, w.T[n].Nanoseconds())
			}
		}
		if len(vals) == 0 {
			t.AddRow(fmt.Sprintf("%d", l), "-", "-", "-", "-")
			continue
		}
		intra := "-"
		if m := w.MaxIntraSkewLayer(l); m >= 0 {
			intra = Ns(m.Nanoseconds())
		}
		t.AddRow(fmt.Sprintf("%d", l),
			Ns(stats.Min(vals)), Ns(stats.Mean(vals)), Ns(stats.Max(vals)), intra)
	}
	return t
}

// Hist builds a histogram over xs spanning its own range with the given
// number of bins; empty input yields a single empty bin.
func Hist(xs []float64, bins int) *stats.Histogram {
	if len(xs) == 0 {
		return stats.NewHistogram(nil, 0, 1, 1)
	}
	lo, hi := stats.Min(xs), stats.Max(xs)
	if hi <= lo {
		hi = lo + 1
	}
	// Stretch slightly so the maximum lands inside the last bin.
	hi += (hi - lo) * 1e-9
	return stats.NewHistogram(xs, lo, hi, bins)
}

// Mark renders a coordinate list, used to report fault placements.
func Mark(h *grid.Hex, nodes []int) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		l, c := h.Coord(n)
		parts[i] = fmt.Sprintf("(%d,%d)", l, c)
	}
	return strings.Join(parts, " ")
}

// BoxPlot renders five-number summaries as ASCII box plots on a shared
// scale, one row per labeled summary:
//
//	f=0  |----[=#==]------|        min/q5/avg/q95/max
func BoxPlot(labels []string, summaries []stats.Summary, width int) string {
	if len(labels) != len(summaries) || len(labels) == 0 {
		return ""
	}
	if width <= 10 {
		width = 50
	}
	lo, hi := summaries[0].Min, summaries[0].Max
	for _, s := range summaries[1:] {
		if s.Min < lo {
			lo = s.Min
		}
		if s.Max > hi {
			hi = s.Max
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, s := range summaries {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := pos(s.Min); j <= pos(s.Max); j++ {
			row[j] = '-'
		}
		for j := pos(s.Q5); j <= pos(s.Q95); j++ {
			row[j] = '='
		}
		row[pos(s.Min)] = '|'
		row[pos(s.Max)] = '|'
		row[pos(s.Q5)] = '['
		row[pos(s.Q95)] = ']'
		row[pos(s.Avg)] = '#'
		fmt.Fprintf(&b, "%-*s %s\n", labelW, labels[i], string(row))
	}
	fmt.Fprintf(&b, "%-*s %.3f .. %.3f\n", labelW, "scale", lo, hi)
	return b.String()
}

// WaveCSV exports a wave's triggering times as CSV (layer, column, time_ns,
// status) for downstream plotting tools. Status is "ok", "excluded" or
// "missing".
func WaveCSV(w *analysis.Wave, h *grid.Hex) string {
	var b strings.Builder
	b.WriteString("layer,column,time_ns,status\n")
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		switch {
		case w.Excluded[n]:
			fmt.Fprintf(&b, "%d,%d,,excluded\n", l, c)
		case w.T[n] == analysis.Missing:
			fmt.Fprintf(&b, "%d,%d,,missing\n", l, c)
		default:
			fmt.Fprintf(&b, "%d,%d,%.3f,ok\n", l, c, w.T[n].Nanoseconds())
		}
	}
	return b.String()
}

// WaveSVG renders a pulse wave as a standalone SVG heat map (one rectangle
// per node, colored by normalized triggering time; red = faulty/excluded,
// gray = missing) for inclusion in reports.
func WaveSVG(w *analysis.Wave, h *grid.Hex, cell int) string {
	if cell <= 0 {
		cell = 10
	}
	lo, hi := sim.MaxTime, sim.Time(-1<<62)
	for n := range w.T {
		if w.Valid(n) {
			lo, hi = sim.MinTime(lo, w.T[n]), sim.MaxOf(hi, w.T[n])
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	width := h.W * cell
	height := (h.L + 1) * cell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, height)
	b.WriteString("\n")
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		x := c * cell
		y := (h.L - l) * cell // layer 0 at the bottom
		var fill string
		switch {
		case w.Excluded[n]:
			fill = "#d62728"
		case w.T[n] == analysis.Missing:
			fill = "#999999"
		default:
			// Blue (early) to yellow (late).
			frac := float64(w.T[n]-lo) / float64(span)
			r := int(40 + 215*frac)
			g := int(80 + 150*frac)
			bl := int(200 - 160*frac)
			fill = fmt.Sprintf("#%02x%02x%02x", r, g, bl)
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>(%d,%d)</title></rect>`,
			x, y, cell, cell, fill, l, c)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}
