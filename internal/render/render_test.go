package render

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bee", "c"},
		Note:   "a note",
	}
	tb.AddRow("1", "2", "3")
	tb.AddRow("longer", "x", "y")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a note") {
		t.Error("title or note missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column starts align: "bee" and "2" and "x" share a column offset.
	hdr, row1, row2 := lines[1], lines[3], lines[4]
	if strings.Index(hdr, "bee") != strings.Index(row1, "2") ||
		strings.Index(hdr, "bee") != strings.Index(row2, "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("only")
	if !strings.Contains(tb.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestNsFormats(t *testing.T) {
	if Ns(1.23456) != "1.235" {
		t.Errorf("Ns = %q", Ns(1.23456))
	}
	if NsTime(31980) != "31.98" {
		t.Errorf("NsTime = %q", NsTime(31980))
	}
}

func TestHistogramRender(t *testing.T) {
	h := stats.NewHistogram([]float64{1, 1, 2, 3}, 0, 4, 4)
	out := Histogram(h, 20, "skews")
	if !strings.Contains(out, "skews (n=4") {
		t.Error("label missing")
	}
	if strings.Count(out, "\n") != 5 {
		t.Errorf("unexpected line count:\n%s", out)
	}
	// The fullest bin gets the longest bar.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[2], "####################") {
		t.Errorf("max bin bar not full width:\n%s", out)
	}
}

func TestHistogramZeroWidthDefaults(t *testing.T) {
	h := stats.NewHistogram([]float64{1}, 0, 2, 2)
	if out := Histogram(h, 0, "x"); !strings.Contains(out, "#") {
		t.Error("default width produced no bars")
	}
}

func TestWaveHeat(t *testing.T) {
	h := grid.MustHex(3, 5)
	w := analysis.NewWave(h.Graph)
	for n := 0; n < h.NumNodes(); n++ {
		l, _ := h.Coord(n)
		w.T[n] = sim.Time(l * 1000)
	}
	w.Excluded[h.NodeID(1, 2)] = true
	w.T[h.NodeID(2, 2)] = analysis.Missing
	out := WaveHeat(w, 0)
	if !strings.Contains(out, "X") {
		t.Error("excluded node marker missing")
	}
	if !strings.Contains(out, ".") {
		t.Error("missing-node marker absent")
	}
	if !strings.Contains(out, "layer   0") || !strings.Contains(out, "layer   3") {
		t.Errorf("layer labels missing:\n%s", out)
	}
	// maxLayers truncation.
	out = WaveHeat(w, 2)
	if strings.Contains(out, "layer   2") {
		t.Error("truncation ignored")
	}
}

func TestWaveLayerSeries(t *testing.T) {
	h := grid.MustHex(2, 4)
	w := analysis.NewWave(h.Graph)
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		w.T[n] = sim.Time(l*8000 + c*10)
	}
	tb := WaveLayerSeries(w, "series")
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "0" || tb.Rows[2][0] != "2" {
		t.Error("layer indices wrong")
	}
}

func TestHistHelper(t *testing.T) {
	h := Hist(nil, 5)
	if h.Total != 0 {
		t.Error("empty Hist not empty")
	}
	h = Hist([]float64{1, 2, 3}, 3)
	if h.Total != 3 || h.Over != 0 || h.Under != 0 {
		t.Errorf("Hist lost values: %+v", h)
	}
	// Constant data must not panic.
	h = Hist([]float64{5, 5, 5}, 3)
	if h.Total != 3 {
		t.Error("constant Hist broken")
	}
}

func TestMark(t *testing.T) {
	h := grid.MustHex(3, 5)
	s := Mark(h, []int{h.NodeID(1, 2), h.NodeID(3, 0)})
	if s != "(1,2) (3,0)" {
		t.Errorf("Mark = %q", s)
	}
}

func TestBoxPlot(t *testing.T) {
	sums := []stats.Summary{
		{Min: 0, Q5: 1, Avg: 2, Q95: 3, Max: 4},
		{Min: 2, Q5: 3, Avg: 5, Q95: 8, Max: 10},
	}
	out := BoxPlot([]string{"f=0", "f=5"}, sums, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("box plot lines = %d:\n%s", len(lines), out)
	}
	for _, ch := range []string{"|", "[", "]", "#"} {
		if !strings.Contains(lines[0], ch) {
			t.Errorf("marker %q missing:\n%s", ch, out)
		}
	}
	if !strings.Contains(lines[2], "0.000 .. 10.000") {
		t.Errorf("scale line wrong: %q", lines[2])
	}
	// Degenerate inputs do not panic.
	if BoxPlot(nil, nil, 40) != "" {
		t.Error("empty box plot not empty")
	}
	one := BoxPlot([]string{"x"}, []stats.Summary{{Min: 5, Q5: 5, Avg: 5, Q95: 5, Max: 5}}, 40)
	if one == "" {
		t.Error("constant summary rendered empty")
	}
}

func TestWaveCSV(t *testing.T) {
	h := grid.MustHex(2, 3)
	w := analysis.NewWave(h.Graph)
	for n := 0; n < h.NumNodes(); n++ {
		w.T[n] = sim.Time(n * 1000)
	}
	w.Excluded[h.NodeID(1, 1)] = true
	w.T[h.NodeID(2, 2)] = analysis.Missing
	out := WaveCSV(w, h)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+h.NumNodes() {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "layer,column,time_ns,status" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, ",excluded") || !strings.Contains(out, ",missing") {
		t.Error("status markers missing")
	}
	if !strings.Contains(out, "0,1,1.000,ok") {
		t.Errorf("data row missing:\n%s", out)
	}
}

func TestWaveSVG(t *testing.T) {
	h := grid.MustHex(3, 4)
	w := analysis.NewWave(h.Graph)
	for n := 0; n < h.NumNodes(); n++ {
		w.T[n] = sim.Time(n * 500)
	}
	w.Excluded[h.NodeID(1, 1)] = true
	w.T[h.NodeID(2, 2)] = analysis.Missing
	out := WaveSVG(w, h, 8)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(out, "<rect") != h.NumNodes() {
		t.Errorf("rect count = %d, want %d", strings.Count(out, "<rect"), h.NumNodes())
	}
	if !strings.Contains(out, "#d62728") {
		t.Error("excluded color missing")
	}
	if !strings.Contains(out, "#999999") {
		t.Error("missing-node color absent")
	}
	// Default cell size path.
	if WaveSVG(w, h, 0) == "" {
		t.Error("default cell size broke rendering")
	}
}
