package stats

import (
	"math"
	"testing"
)

// FuzzSummarize checks the ordering invariants of the five-operator summary
// on arbitrary finite inputs.
func FuzzSummarize(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(-5.0, 0.0, 0.0, 5.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		xs := make([]float64, 0, 4)
		for _, v := range []float64{a, b, c, d} {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			t.Skip()
		}
		s := Summarize(xs)
		if !(s.Min <= s.Q5 && s.Q5 <= s.Q95 && s.Q95 <= s.Max) {
			t.Fatalf("quantile ordering broken: %+v", s)
		}
		if s.Avg < s.Min-1e-9 || s.Avg > s.Max+1e-9 {
			t.Fatalf("mean outside range: %+v", s)
		}
	})
}
