package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean broken")
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Error("Std of singleton")
	}
	// Population std of {2,4,4,4,5,5,7,9} is 2.
	if !almostEqual(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("Std = %v, want 2", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Error("Min/Max broken")
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); !almostEqual(got, want) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	// Input is not mutated.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary has N != 0")
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s = Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 || !almostEqual(s.Avg, 5.5) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Q5 >= s.Avg || s.Q95 <= s.Avg {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Restrict to the magnitudes the library actually sees
			// (nanosecond-scale skews); Mean overflows near ±MaxFloat64.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e12))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q5 && s.Q5 <= s.Q95 && s.Q95 <= s.Max &&
			s.Min <= s.Avg && s.Avg <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 10}, 0, 3, 3)
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	want := []int{1, 2, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if !almostEqual(h.BinCenter(0), 0.5) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.MaxCount() != 2 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
}

func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram(nil, 0, 10, 10)
	h.Add(0) // inclusive low edge
	h.Add(10)
	if h.Counts[0] != 1 || h.Over != 1 {
		t.Error("boundary handling wrong")
	}
}

func TestHistogramCountConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		h := NewHistogram(xs, -100, 100, 7)
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(xs) && h.Total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSortedAgainstSortCheck(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if Quantile(xs, 0.5) != QuantileSorted(sorted, 0.5) {
		t.Error("Quantile disagrees with QuantileSorted")
	}
}
