package stats

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almostEqual(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean broken")
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Error("Std of singleton")
	}
	// Population std of {2,4,4,4,5,5,7,9} is 2.
	if !almostEqual(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("Std = %v, want 2", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Error("Min/Max broken")
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); !almostEqual(got, want) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
	// Input is not mutated.
	orig := []float64{5, 1, 3}
	Quantile(orig, 0.5)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary has N != 0")
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s = Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 || !almostEqual(s.Avg, 5.5) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.Q5 >= s.Avg || s.Q95 <= s.Avg {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Restrict to the magnitudes the library actually sees
			// (nanosecond-scale skews); Mean overflows near ±MaxFloat64.
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e12))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q5 && s.Q5 <= s.Q95 && s.Q95 <= s.Max &&
			s.Min <= s.Avg && s.Avg <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 10}, 0, 3, 3)
	if h.Total != 6 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	want := []int{1, 2, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if !almostEqual(h.BinCenter(0), 0.5) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.MaxCount() != 2 {
		t.Errorf("MaxCount = %d", h.MaxCount())
	}
}

func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram(nil, 0, 10, 10)
	h.Add(0) // inclusive low edge
	h.Add(10)
	if h.Counts[0] != 1 || h.Over != 1 {
		t.Error("boundary handling wrong")
	}
}

func TestHistogramCountConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		h := NewHistogram(xs, -100, 100, 7)
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(xs) && h.Total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileSortedAgainstSortCheck(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if Quantile(xs, 0.5) != QuantileSorted(sorted, 0.5) {
		t.Error("Quantile disagrees with QuantileSorted")
	}
}

// TestSummarizeScaledDifferential pins SummarizeScaled's contract: for any
// int64 input and positive scale, it equals Summarize over the converted
// floats bit for bit — not approximately. The integer path only reorders a
// sort key, never a float operation, so == is the right comparison.
func TestSummarizeScaledDifferential(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cases := [][]int64{
		{},
		{42},
		{-5, -5, -5},
		{1 << 62, -(1 << 62), 0, 999, -999},
	}
	for n := 1; n <= 4; n++ { // sizes around the quantile index edges
		c := make([]int64, n)
		for i := range c {
			c[i] = rnd.Int63n(20001) - 10000
		}
		cases = append(cases, c)
	}
	for i := 0; i < 50; i++ {
		n := 1 + rnd.Intn(700)
		c := make([]int64, n)
		for j := range c {
			switch rnd.Intn(10) {
			case 0: // far outlier, sign included
				c[j] = rnd.Int63() - (1 << 62)
			case 1: // duplicate-heavy cluster
				c[j] = int64(rnd.Intn(4)) * 100
			default: // skew-scale picoseconds
				c[j] = rnd.Int63n(2_000_000) - 1_000_000
			}
		}
		cases = append(cases, c)
	}
	for ci, c := range cases {
		for _, scale := range []float64{1, 1000, 3.5} {
			floats := make([]float64, len(c))
			for i, v := range c {
				floats[i] = float64(v) / scale
			}
			want := Summarize(floats)
			got := SummarizeScaled(append([]int64(nil), c...), scale)
			if got != want {
				t.Errorf("case %d scale %v: SummarizeScaled = %+v, Summarize = %+v", ci, scale, got, want)
			}
		}
	}
}

// TestSummarizeScaledSortsInPlace documents the in-place contract callers
// rely on for buffer reuse.
func TestSummarizeScaledSortsInPlace(t *testing.T) {
	xs := []int64{3, -1, 2}
	SummarizeScaled(xs, 1)
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		t.Fatalf("input not sorted in place: %v", xs)
	}
}

// TestSortKeysAllRegimes drives sortKeys through each of its paths —
// small-input pdqsort, all-equal early out, 1/2/3 radix passes (odd pass
// counts exercise the scratch copy-back), and the wide-range fallback —
// against slices.Sort as the oracle.
func TestSortKeysAllRegimes(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	spans := []int64{0, 1 << 8, 1 << 14, 1 << 25, 1 << 32, 1 << 60}
	for _, n := range []int{3, 127, 128, 700, 4096} {
		for _, span := range spans {
			xs := make([]int64, n)
			base := rnd.Int63n(1 << 40)
			for i := range xs {
				if span == 0 {
					xs[i] = base
				} else {
					xs[i] = base - span/2 + rnd.Int63n(span)
				}
			}
			want := append([]int64(nil), xs...)
			slices.Sort(want)
			sortKeys(xs)
			if !slices.Equal(xs, want) {
				t.Fatalf("n=%d span=%d: sortKeys order differs from slices.Sort", n, span)
			}
		}
	}
	// Negative-heavy input crossing zero (the signed inter-skew shape).
	xs := make([]int64, 500)
	for i := range xs {
		xs[i] = rnd.Int63n(4000) - 2000
	}
	want := append([]int64(nil), xs...)
	slices.Sort(want)
	sortKeys(xs)
	if !slices.Equal(xs, want) {
		t.Fatal("signed input: sortKeys order differs from slices.Sort")
	}
}
