// Package stats provides the descriptive statistics used by the paper's
// evaluation: min/max, averages, standard deviations, quantiles (5% and 95%
// feature throughout Section 4), histograms and the five-operator summaries
// {min, q5, avg, q95, max} used in Tables 1–2 and the box plots of
// Figs. 15–16.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
)

// Summary is the five-operator summary the paper reports for skew
// distributions.
type Summary struct {
	N   int
	Min float64
	Q5  float64
	Avg float64
	Q95 float64
	Max float64
	Std float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary
// with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:   len(sorted),
		Min: sorted[0],
		Q5:  QuantileSorted(sorted, 0.05),
		Avg: Mean(sorted),
		Q95: QuantileSorted(sorted, 0.95),
		Max: sorted[len(sorted)-1],
		Std: Std(sorted),
	}
}

// SummarizeScaled computes Summarize(xs[i]/scale for all i) without ever
// materializing the float slice: it sorts the raw integers in place and
// streams the conversion in ascending order. The result is bit-identical
// to the float path for every input, because x ↦ float64(x)/scale is
// monotone non-decreasing over int64 (int→float conversion and division
// by a positive constant both preserve order), so the converted sequence
// IS the sorted float sequence — same summation order for Avg/Std, same
// order statistics for the quantiles. TestSummarizeScaledDifferential
// pins this.
//
// Campaign runs summarize two skew vectors per run; sorting int64 keys
// instead of NaN-aware floats and skipping the copy is a measurable slice
// of the per-run budget. The input slice is sorted in place so callers
// can reuse one scratch buffer across vectors.
func SummarizeScaled[T ~int64](xs []T, scale float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sortKeys(xs)
	n := len(xs)
	conv := func(v T) float64 { return float64(v) / scale }
	var sum float64
	for _, v := range xs {
		sum += conv(v)
	}
	mean := sum / float64(n)
	std := 0.0
	if n >= 2 {
		var ss float64
		for _, v := range xs {
			d := conv(v) - mean
			ss += d * d
		}
		std = math.Sqrt(ss / float64(n))
	}
	quantile := func(q float64) float64 {
		pos := q * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return conv(xs[lo])
		}
		frac := pos - float64(lo)
		return conv(xs[lo])*(1-frac) + conv(xs[hi])*frac
	}
	return Summary{
		N:   n,
		Min: conv(xs[0]),
		Q5:  quantile(0.05),
		Avg: mean,
		Q95: quantile(0.95),
		Max: conv(xs[n-1]),
		Std: std,
	}
}

// Radix parameters for sortKeys: 11-bit digits keep the counting array at
// 8 KiB (stack-friendly), and the 3-pass cap bounds radix to ranges up to
// 33 bits — beyond that comparison sort wins and the data has left the
// "clustered skews" regime radix is here for anyway.
const (
	radixBits      = 11
	radixBuckets   = 1 << radixBits
	radixMaxPasses = 3
)

// sortKeys sorts integer keys ascending. Skew vectors concentrate in a
// span of a few thousand picoseconds, so after rebasing at the minimum
// they need one or two LSD counting passes — O(n) instead of O(n log n),
// which is the difference between the sort dominating a campaign run's
// summary cost and it disappearing. Inputs that are tiny or genuinely
// wide-range fall back to pdqsort.
func sortKeys[T ~int64](xs []T) {
	if len(xs) < 128 {
		slices.Sort(xs)
		return
	}
	mn, mx := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	// Rebase to [0, span]; uint64 subtraction is exact for any int64 pair
	// with mx >= mn, and preserves order on the rebased keys.
	span := uint64(mx) - uint64(mn)
	passes := (bits.Len64(span) + radixBits - 1) / radixBits
	if passes == 0 {
		return // all equal
	}
	if passes > radixMaxPasses {
		slices.Sort(xs)
		return
	}
	scratch := make([]T, len(xs))
	src, dst := xs, scratch
	var count [radixBuckets]uint32
	for p := 0; p < passes; p++ {
		shift := uint(p * radixBits)
		clear(count[:])
		for _, v := range src {
			count[((uint64(v)-uint64(mn))>>shift)&(radixBuckets-1)]++
		}
		var sum uint32
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, v := range src {
			d := ((uint64(v) - uint64(mn)) >> shift) & (radixBuckets - 1)
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	if passes%2 == 1 {
		copy(xs, scratch)
	}
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f q5=%.3f avg=%.3f q95=%.3f max=%.3f", s.N, s.Min, s.Q5, s.Avg, s.Q95, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	// Under and Over count values falling outside [Lo, Hi).
	Under, Over int
	Total       int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi). bins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{
		Lo:       lo,
		Hi:       hi,
		BinWidth: (hi - lo) / float64(bins),
		Counts:   make([]int, bins),
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.BinWidth)
		if idx >= len(h.Counts) { // guard against FP edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// MaxCount returns the largest bin count (including Under/Over).
func (h *Histogram) MaxCount() int {
	m := h.Under
	if h.Over > m {
		m = h.Over
	}
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
