// Package stats provides the descriptive statistics used by the paper's
// evaluation: min/max, averages, standard deviations, quantiles (5% and 95%
// feature throughout Section 4), histograms and the five-operator summaries
// {min, q5, avg, q95, max} used in Tables 1–2 and the box plots of
// Figs. 15–16.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the five-operator summary the paper reports for skew
// distributions.
type Summary struct {
	N   int
	Min float64
	Q5  float64
	Avg float64
	Q95 float64
	Max float64
	Std float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary
// with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:   len(sorted),
		Min: sorted[0],
		Q5:  QuantileSorted(sorted, 0.05),
		Avg: Mean(sorted),
		Q95: QuantileSorted(sorted, 0.95),
		Max: sorted[len(sorted)-1],
		Std: Std(sorted),
	}
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f q5=%.3f avg=%.3f q95=%.3f max=%.3f", s.N, s.Min, s.Q5, s.Avg, s.Q95, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	// Under and Over count values falling outside [Lo, Hi).
	Under, Over int
	Total       int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi). bins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	h := &Histogram{
		Lo:       lo,
		Hi:       hi,
		BinWidth: (hi - lo) / float64(bins),
		Counts:   make([]int, bins),
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / h.BinWidth)
		if idx >= len(h.Counts) { // guard against FP edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth
}

// MaxCount returns the largest bin count (including Under/Over).
func (h *Histogram) MaxCount() int {
	m := h.Under
	if h.Over > m {
		m = h.Over
	}
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
