package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
)

// syntheticResult builds a Result where node (ℓ,i) triggers once per pulse
// at sched time + ℓ·step (a perfectly regular pulse train).
func syntheticResult(h *grid.Hex, sched *source.Schedule, step sim.Time) *core.Result {
	res := &core.Result{Triggers: make([][]sim.Time, h.NumNodes())}
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		for k := range sched.Times {
			res.Triggers[n] = append(res.Triggers[n], sched.Times[k][c]+sim.Time(l)*step)
		}
	}
	return res
}

func TestAssignPulsesRegularTrain(t *testing.T) {
	h := grid.MustHex(10, 5)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 4, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	plan := fault.NewPlan(h.NumNodes())
	pa := AssignPulses(h.Graph, res, plan, sched, b)
	if len(pa.Waves) != 4 {
		t.Fatalf("waves = %d", len(pa.Waves))
	}
	for k := 0; k < 4; k++ {
		for n := 0; n < h.NumNodes(); n++ {
			if !pa.Clean[k][n] {
				t.Fatalf("pulse %d node %d not cleanly assigned", k, n)
			}
			if pa.Waves[k].T[n] != res.Triggers[n][k] {
				t.Fatalf("pulse %d node %d assigned wrong trigger", k, n)
			}
		}
	}
}

func TestAssignPulsesLayerShiftedWindows(t *testing.T) {
	// A deep grid whose wave takes longer than the pulse separation: the
	// per-layer window shift must still assign triggers correctly.
	h := grid.MustHex(50, 5)
	b := delay.Paper
	// Separation 300ns < 50·8ns = 400ns traversal time.
	sched := source.NewSchedule(source.Zero, h.W, 3, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, b.Max)
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	for k := 0; k < 3; k++ {
		for n := 0; n < h.NumNodes(); n++ {
			if !pa.Clean[k][n] {
				t.Fatalf("pulse %d node %d not cleanly assigned (layer %d)", k, n, h.LayerOf(n))
			}
		}
	}
}

func TestAssignPulsesSpuriousAndDouble(t *testing.T) {
	h := grid.MustHex(2, 4)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 2, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	n := h.NodeID(1, 1)
	// A second trigger inside pulse 0's window makes it ambiguous.
	res.Triggers[n] = append([]sim.Time{res.Triggers[n][0] + 1000}, res.Triggers[n]...)
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	if pa.Clean[0][n] {
		t.Error("double trigger counted as clean")
	}
	if pa.Waves[0].T[n] != Missing {
		t.Error("ambiguous assignment produced a time")
	}
	if !pa.Clean[1][n] {
		t.Error("pulse 1 should be unaffected")
	}
}

func TestAssignPulsesExcludesFaulty(t *testing.T) {
	h := grid.MustHex(3, 4)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 2, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	plan := fault.NewPlan(h.NumNodes())
	bad := h.NodeID(1, 1)
	plan.SetBehavior(bad, fault.Byzantine)
	pa := AssignPulses(h.Graph, res, plan, sched, b)
	for k := range pa.Waves {
		if !pa.Waves[k].Excluded[bad] {
			t.Fatalf("faulty node not excluded in pulse %d", k)
		}
	}
}

func TestPulseStableAndStabilization(t *testing.T) {
	h := grid.MustHex(6, 5)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 5, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	// Corrupt pulses 0 and 1 with a wildly late node.
	n := h.NodeID(3, 2)
	res.Triggers[n][0] += 50 * sim.Nanosecond
	res.Triggers[n][1] += 50 * sim.Nanosecond
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	th := ThresholdsFromSigma(ConstantSigma(2*b.Max), b)
	if pa.PulseStable(0, th) || pa.PulseStable(1, th) {
		t.Error("corrupted pulses judged stable")
	}
	for k := 2; k < 5; k++ {
		if !pa.PulseStable(k, th) {
			t.Errorf("clean pulse %d judged unstable", k)
		}
	}
	k, ok := pa.StabilizationPulse(th)
	if !ok || k != 2 {
		t.Errorf("StabilizationPulse = %d, %v; want 2, true", k, ok)
	}
}

func TestStabilizationNeverStable(t *testing.T) {
	h := grid.MustHex(4, 5)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 3, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	// Corrupt the last pulse.
	res.Triggers[h.NodeID(2, 2)][2] += 100 * sim.Nanosecond
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	th := ThresholdsFromSigma(ConstantSigma(2*b.Max), b)
	if _, ok := pa.StabilizationPulse(th); ok {
		t.Error("corrupted final pulse judged stabilized")
	}
}

func TestStabilizationMissingNodeBlocks(t *testing.T) {
	h := grid.MustHex(4, 5)
	b := delay.Paper
	sched := source.NewSchedule(source.Zero, h.W, 2, b, 300*sim.Nanosecond, nil)
	res := syntheticResult(h, sched, 8000)
	// A node that never triggers in pulse 1.
	n := h.NodeID(2, 2)
	res.Triggers[n] = res.Triggers[n][:1]
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	th := ThresholdsFromSigma(ConstantSigma(20*b.Max), b)
	if pa.PulseStable(1, th) {
		t.Error("pulse with missing node judged stable")
	}
	// Excluding the node (e.g. as a fault neighbor) unblocks it.
	pa.Waves[1].Excluded[n] = true
	if !pa.PulseStable(1, th) {
		t.Error("exclusion did not unblock stability check")
	}
}

func TestThresholdsFromSigma(t *testing.T) {
	b := delay.Paper
	sigma := func(l int) sim.Time { return sim.Time(1000 * (l + 1)) }
	th := ThresholdsFromSigma(sigma, b)
	if th.Intra(3) != 4000 {
		t.Error("intra threshold wrong")
	}
	if th.InterLo(3) != b.Min-3000 || th.InterHi(3) != b.Max+3000 {
		t.Error("inter window wrong")
	}
}

// TestEndToEndStabilization runs the real algorithm from random states and
// checks it stabilizes within the Theorem 2 bound of L+1 pulses.
func TestEndToEndStabilization(t *testing.T) {
	h := grid.MustHex(8, 6)
	b := delay.Paper
	to := theory.Condition2(3*b.Max, b, h.L, 0, theory.PaperDrift)
	sched := source.NewSchedule(source.UniformDPlus, h.W, h.L+2, b, to.Separation, sim.NewRNG(21))
	res, err := core.Run(core.Config{
		Graph: h.Graph,
		Params: core.Params{
			Bounds:    b,
			TLinkMin:  to.TLinkMin,
			TLinkMax:  to.TLinkMax,
			TSleepMin: to.TSleepMin,
			TSleepMax: to.TSleepMax,
		},
		Delay:      delay.Uniform{Bounds: b},
		Faults:     fault.NewPlan(h.NumNodes()),
		Schedule:   sched,
		RandomInit: true,
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	th := ThresholdsFromSigma(ConstantSigma(2*b.Max), b)
	k, ok := pa.StabilizationPulse(th)
	if !ok {
		t.Fatal("never stabilized")
	}
	if k > h.L+1 {
		t.Errorf("stabilized at pulse %d, beyond Theorem 2's bound %d", k, h.L+1)
	}
	t.Logf("stabilized at pulse %d (bound %d)", k, h.L+1)
}

// TestTheorem2LayerwiseStabilization checks the *shape* of Theorem 2's
// induction on a real run: layer ℓ's skews are within bounds in every
// pulse k > ℓ (the theorem's worst-case guarantee; in practice layers
// stabilize much faster, so this is comfortably satisfied).
func TestTheorem2LayerwiseStabilization(t *testing.T) {
	h := grid.MustHex(8, 6)
	b := delay.Paper
	to := theory.Condition2(3*b.Max, b, h.L, 0, theory.PaperDrift)
	sched := source.NewSchedule(source.UniformDPlus, h.W, h.L+3, b,
		to.Separation, sim.NewRNG(5))
	res, err := core.Run(core.Config{
		Graph: h.Graph,
		Params: core.Params{
			Bounds:    b,
			TLinkMin:  to.TLinkMin,
			TLinkMax:  to.TLinkMax,
			TSleepMin: to.TSleepMin,
			TSleepMax: to.TSleepMax,
		},
		Delay:      delay.Uniform{Bounds: b},
		Faults:     fault.NewPlan(h.NumNodes()),
		Schedule:   sched,
		RandomInit: true,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa := AssignPulses(h.Graph, res, fault.NewPlan(h.NumNodes()), sched, b)
	sigma := ConstantSigma(2 * b.Max)
	th := ThresholdsFromSigma(sigma, b)
	for l := 1; l <= h.L; l++ {
		for k := l + 1; k < len(pa.Waves); k++ {
			w := pa.Waves[k]
			if m := w.MaxIntraSkewLayer(l); m >= 0 && m > th.Intra(l) {
				t.Errorf("layer %d pulse %d: intra skew %v above bound", l, k, m)
			}
			for _, n := range h.Layer(l) {
				if !pa.Clean[k][n] {
					t.Errorf("layer %d pulse %d: node %d not cleanly assigned", l, k, n)
				}
			}
		}
	}
}
