package analysis

import (
	"repro/internal/grid"
	"repro/internal/sim"
)

// IntraSkews returns the absolute intra-layer skews |t_{ℓ,i} − t_{ℓ,i+1}|
// in nanoseconds over all layers ℓ ≥ 1 (layer 0 is excluded, matching the
// σ^op definitions of Section 4.1). Pairs involving excluded or untriggered
// nodes are dropped.
func (w *Wave) IntraSkews() []float64 {
	var out []float64
	for l := 1; l < w.G.NumLayers(); l++ {
		out = w.appendIntraLayer(out, l)
	}
	return out
}

// IntraSkewsLayer returns the absolute intra-layer skews of a single layer.
func (w *Wave) IntraSkewsLayer(l int) []float64 {
	return w.appendIntraLayer(nil, l)
}

func (w *Wave) appendIntraLayer(out []float64, l int) []float64 {
	for _, n := range w.G.Layer(l) {
		r, ok := w.G.RightNeighbor(n)
		if !ok || !w.Valid(n) || !w.Valid(r) {
			continue
		}
		out = append(out, sim.AbsTime(w.T[n]-w.T[r]).Nanoseconds())
	}
	return out
}

// AppendIntraSkewTimes appends the raw intra-layer skews |t_{ℓ,i} −
// t_{ℓ,i+1}| of all layers ℓ ≥ 1 to out, in the same pair order as
// IntraSkews but without the nanosecond conversion. Paired with
// stats.SummarizeScaled it yields the exact IntraSkews summary while
// letting hot paths sort integers and reuse one scratch buffer.
func (w *Wave) AppendIntraSkewTimes(out []sim.Time) []sim.Time {
	for l := 1; l < w.G.NumLayers(); l++ {
		for _, n := range w.G.Layer(l) {
			r, ok := w.G.RightNeighbor(n)
			if !ok || !w.Valid(n) || !w.Valid(r) {
				continue
			}
			out = append(out, sim.AbsTime(w.T[n]-w.T[r]))
		}
	}
	return out
}

// AppendInterSkewTimes is AppendIntraSkewTimes's counterpart for the
// signed inter-layer skews of InterSkews.
func (w *Wave) AppendInterSkewTimes(out []sim.Time) []sim.Time {
	for l := 1; l < w.G.NumLayers(); l++ {
		for _, n := range w.G.Layer(l) {
			if !w.Valid(n) {
				continue
			}
			if ll, ok := w.G.LowerLeftNeighbor(n); ok && w.Valid(ll) {
				out = append(out, w.T[n]-w.T[ll])
			}
			if lr, ok := w.G.LowerRightNeighbor(n); ok && w.Valid(lr) {
				out = append(out, w.T[n]-w.T[lr])
			}
		}
	}
	return out
}

// InterSkews returns the signed inter-layer skews t_{ℓ,i} − t_{ℓ−1,i} and
// t_{ℓ,i} − t_{ℓ−1,i+1} in nanoseconds over all layers ℓ ≥ 1, dropping
// pairs with excluded or untriggered nodes. The sign is kept because the
// inter-layer skew has a non-zero bias of at least d− (Section 4.1).
func (w *Wave) InterSkews() []float64 {
	var out []float64
	for l := 1; l < w.G.NumLayers(); l++ {
		out = w.appendInterLayer(out, l)
	}
	return out
}

// InterSkewsLayer returns the signed inter-layer skews between layer l and
// layer l−1 only.
func (w *Wave) InterSkewsLayer(l int) []float64 {
	return w.appendInterLayer(nil, l)
}

func (w *Wave) appendInterLayer(out []float64, l int) []float64 {
	for _, n := range w.G.Layer(l) {
		if !w.Valid(n) {
			continue
		}
		if ll, ok := w.G.LowerLeftNeighbor(n); ok && w.Valid(ll) {
			out = append(out, (w.T[n] - w.T[ll]).Nanoseconds())
		}
		if lr, ok := w.G.LowerRightNeighbor(n); ok && w.Valid(lr) {
			out = append(out, (w.T[n] - w.T[lr]).Nanoseconds())
		}
	}
	return out
}

// MaxIntraSkewLayer returns the maximal absolute intra-layer skew of layer
// l in simulation time units, or -1 if no pair is measurable.
func (w *Wave) MaxIntraSkewLayer(l int) sim.Time {
	max := sim.Time(-1)
	for _, n := range w.G.Layer(l) {
		r, ok := w.G.RightNeighbor(n)
		if !ok || !w.Valid(n) || !w.Valid(r) {
			continue
		}
		if s := sim.AbsTime(w.T[n] - w.T[r]); s > max {
			max = s
		}
	}
	return max
}

// InterSkewRangeLayer returns the (min, max) signed inter-layer skew of
// layer l, and ok=false if no pair is measurable.
func (w *Wave) InterSkewRangeLayer(l int) (lo, hi sim.Time, ok bool) {
	lo, hi = sim.MaxTime, -sim.MaxTime
	for _, n := range w.G.Layer(l) {
		if !w.Valid(n) {
			continue
		}
		if ll, has := w.G.LowerLeftNeighbor(n); has && w.Valid(ll) {
			s := w.T[n] - w.T[ll]
			lo, hi = sim.MinTime(lo, s), sim.MaxOf(hi, s)
			ok = true
		}
		if lr, has := w.G.LowerRightNeighbor(n); has && w.Valid(lr) {
			s := w.T[n] - w.T[lr]
			lo, hi = sim.MinTime(lo, s), sim.MaxOf(hi, s)
			ok = true
		}
	}
	return lo, hi, ok
}

// SkewPotential computes Δℓ of Definition 3 for layer `layer` of the
// hexagonal grid h: max over valid i, j of t_{ℓ,i} − t_{ℓ,j} − |i−j|_W · d−.
// It returns 0 if fewer than one valid node exists (Δℓ ≥ 0 always, since
// j = i is allowed).
func SkewPotential(w *Wave, h *grid.Hex, layer int, dMinus sim.Time) sim.Time {
	nodes := h.Layer(layer)
	var best sim.Time // Δℓ ≥ 0 because i == j contributes 0
	for _, ni := range nodes {
		if !w.Valid(ni) {
			continue
		}
		_, ci := h.Coord(ni)
		for _, nj := range nodes {
			if !w.Valid(nj) {
				continue
			}
			_, cj := h.Coord(nj)
			v := w.T[ni] - w.T[nj] - sim.Time(h.CyclicDistance(ci, cj))*dMinus
			if v > best {
				best = v
			}
		}
	}
	return best
}
