package analysis

import (
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// PulseAssignment maps the raw trigger histories of a multi-pulse run to
// per-pulse waves, windowing each node's triggers by the layer-0 schedule
// shifted by the node's causal depth: for a node in layer ℓ, pulse k's
// window is [t(k)min + ℓ·d−, t(k+1)min + ℓ·d−) over the correct sources —
// the causal lower bounds of Lemma 5. (A window anchored at the sources
// alone would be wrong: with L·ε + f·d+ ≤ S the pulse wave is still
// climbing the upper layers when the sources already emit the next pulse.)
// A node is cleanly assigned for pulse k iff it triggered exactly once
// inside its window (the paper: "unambiguously assigning a corresponding
// pulse number to a triggering time ... was easy" thanks to the large
// separation times).
type PulseAssignment struct {
	// Waves[k] holds the assigned triggering times of pulse k; ambiguous
	// or missing assignments are Missing.
	Waves []*Wave
	// Clean[k][n] reports whether node n triggered exactly once in pulse
	// k's window.
	Clean [][]bool
}

// AssignPulses windows res's trigger histories by the schedule, with each
// node's windows shifted by ℓ·d− for its layer ℓ.
func AssignPulses(g *grid.Graph, res *core.Result, plan *fault.Plan, sched *source.Schedule, b delay.Bounds) *PulseAssignment {
	k := sched.Pulses()
	layer0 := g.Layer(0)
	correctCol := func(c int) bool { return !plan.IsFaulty(layer0[c]) }

	starts := make([]sim.Time, k+1)
	for p := 0; p < k; p++ {
		starts[p] = sched.PulseMin(p, correctCol)
	}
	starts[k] = sim.MaxTime

	pa := &PulseAssignment{
		Waves: make([]*Wave, k),
		Clean: make([][]bool, k),
	}
	for p := 0; p < k; p++ {
		pa.Waves[p] = NewWave(g)
		pa.Clean[p] = make([]bool, g.NumNodes())
	}
	for n := 0; n < g.NumNodes(); n++ {
		faulty := plan.IsFaulty(n)
		for p := 0; p < k; p++ {
			if faulty {
				pa.Waves[p].Excluded[n] = true
			}
		}
		if faulty {
			continue
		}
		shift := sim.Time(g.LayerOf(n)) * b.Min
		windowStart := func(p int) sim.Time {
			if p >= k {
				return sim.MaxTime
			}
			return starts[p] + shift
		}
		p := 0
		ts := res.Triggers[n]
		for i := 0; i < len(ts); {
			t := ts[i]
			for p < k && t >= windowStart(p+1) {
				p++
			}
			if p >= k {
				break
			}
			if t < windowStart(p) {
				i++ // spurious trigger before the first window
				continue
			}
			// Count triggers within this window.
			j := i
			for j < len(ts) && ts[j] < windowStart(p+1) {
				j++
			}
			if j-i == 1 {
				pa.Waves[p].T[n] = t
				pa.Clean[p][n] = true
			}
			i = j
		}
	}
	return pa
}

// Thresholds are the per-layer skew bounds the stabilization estimator
// checks: the intra-layer bound σ(f, ℓ) and the signed inter-layer window
// derived from it.
type Thresholds struct {
	// Intra returns the intra-layer bound for layer ℓ ≥ 1.
	Intra func(layer int) sim.Time
	// InterLo/InterHi bound the signed inter-layer skew of layer ℓ ≥ 1.
	InterLo func(layer int) sim.Time
	InterHi func(layer int) sim.Time
}

// ThresholdsFromSigma derives inter-layer windows from an intra-layer bound
// via Theorem 1's third statement: t_{ℓ,i} − t_{ℓ−1,·} ∈
// [d− − σ_{ℓ−1}, d+ + σ_{ℓ−1}].
func ThresholdsFromSigma(sigma func(layer int) sim.Time, b delay.Bounds) Thresholds {
	return Thresholds{
		Intra:   sigma,
		InterLo: func(l int) sim.Time { return b.Min - sigma(l-1) },
		InterHi: func(l int) sim.Time { return b.Max + sigma(l-1) },
	}
}

// ConstantSigma returns a layer-independent σ bound.
func ConstantSigma(s sim.Time) func(int) sim.Time {
	return func(int) sim.Time { return s }
}

// PulseStable reports whether pulse k of the assignment satisfies the
// thresholds: every non-excluded forwarding node cleanly assigned, and all
// per-layer intra- and inter-layer skews within bounds. Nodes marked
// excluded in the waves (e.g. by ExcludeFaultyNeighborhood) are ignored.
func (pa *PulseAssignment) PulseStable(k int, th Thresholds) bool {
	w := pa.Waves[k]
	g := w.G
	for n := 0; n < g.NumNodes(); n++ {
		if w.Excluded[n] || g.LayerOf(n) == 0 {
			continue
		}
		if !pa.Clean[k][n] {
			return false
		}
	}
	for l := 1; l < g.NumLayers(); l++ {
		if m := w.MaxIntraSkewLayer(l); m >= 0 && m > th.Intra(l) {
			return false
		}
		if lo, hi, ok := w.InterSkewRangeLayer(l); ok {
			if lo < th.InterLo(l) || hi > th.InterHi(l) {
				return false
			}
		}
	}
	return true
}

// StabilizationPulse returns the smallest pulse index k such that pulses
// k, k+1, …, K−1 are all stable under th — the paper's estimator ("the
// minimal pulse with the property that the skews persistently fall below a
// layer-dependent threshold"). ok is false if even the last pulse is
// unstable. The returned index is 0-based; the paper's "stabilizes after
// the very first pulse" corresponds to k == 0.
func (pa *PulseAssignment) StabilizationPulse(th Thresholds) (k int, ok bool) {
	last := len(pa.Waves)
	for p := len(pa.Waves) - 1; p >= 0; p-- {
		if !pa.PulseStable(p, th) {
			break
		}
		last = p
	}
	if last == len(pa.Waves) {
		return 0, false
	}
	return last, true
}

// ExcludeFaultyNeighborhoodAll applies ExcludeFaultyNeighborhood to every
// pulse wave of the assignment.
func (pa *PulseAssignment) ExcludeFaultyNeighborhoodAll(plan *fault.Plan, h int) {
	for _, w := range pa.Waves {
		w.ExcludeFaultyNeighborhood(plan, h)
	}
}
