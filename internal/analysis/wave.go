// Package analysis post-processes simulation results: it extracts per-pulse
// triggering-time matrices ("waves"), computes the paper's skew metrics
// (Definition 3 and Section 4.1), applies the h-hop fault-neighborhood
// exclusion of Figs. 15–16, assigns triggering times to pulse numbers, and
// estimates stabilization times (Section 4.4).
package analysis

import (
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Missing marks a node without a (usable) triggering time in a wave:
// faulty nodes, nodes that never triggered, or ambiguous pulse assignments.
const Missing sim.Time = math.MinInt64

// Wave is the triggering-time matrix t_{ℓ,i} of a single pulse.
type Wave struct {
	G *grid.Graph
	// T[n] is node n's triggering time, or Missing.
	T []sim.Time
	// Excluded[n] removes node n from all statistics. Faulty nodes are
	// always excluded; ExcludeFaultyNeighborhood widens the exclusion to
	// their outgoing h-hop neighborhoods.
	Excluded []bool
}

// NewWave returns an empty wave (all Missing) for graph g.
func NewWave(g *grid.Graph) *Wave {
	w := &Wave{
		G:        g,
		T:        make([]sim.Time, g.NumNodes()),
		Excluded: make([]bool, g.NumNodes()),
	}
	for i := range w.T {
		w.T[i] = Missing
	}
	return w
}

// WaveFromResult extracts pulse number `pulse` (0-based) from a simulation
// result: node n's time is Triggers[n][pulse] if that exists. Faulty nodes
// are marked excluded. For multi-pulse runs started from arbitrary states,
// use AssignPulses instead, which windows triggers by the source schedule.
func WaveFromResult(g *grid.Graph, res *core.Result, plan *fault.Plan, pulse int) *Wave {
	w := NewWave(g)
	for n := 0; n < g.NumNodes(); n++ {
		if plan.IsFaulty(n) {
			w.Excluded[n] = true
			continue
		}
		if ts := res.Triggers[n]; pulse < len(ts) {
			w.T[n] = ts[pulse]
		}
	}
	return w
}

// WaveFromFirstTriggers extracts the single-pulse wave from a compact
// FirstTriggerOnly result (core.Config.FirstTriggerOnly): node n's time
// is FirstTriggers[n] unless it is core.NoTrigger. Because NoTrigger and
// Missing share a value, the copy is direct. For the same Config, the
// wave is bit-identical to WaveFromResult(g, fullRes, plan, 0) — the
// aggregate execution mode's differential test pins this.
func WaveFromFirstTriggers(g *grid.Graph, res *core.Result, plan *fault.Plan) *Wave {
	w := NewWave(g)
	for n := 0; n < g.NumNodes(); n++ {
		if plan.IsFaulty(n) {
			w.Excluded[n] = true
			continue
		}
		w.T[n] = res.FirstTriggers[n]
	}
	return w
}

// Valid reports whether node n carries a usable triggering time.
func (w *Wave) Valid(n int) bool { return !w.Excluded[n] && w.T[n] != Missing }

// TriggeredCount returns the number of non-excluded nodes with a time.
func (w *Wave) TriggeredCount() int {
	c := 0
	for n := range w.T {
		if w.Valid(n) {
			c++
		}
	}
	return c
}

// AllForwardersTriggered reports whether every non-excluded node above
// layer 0 triggered.
func (w *Wave) AllForwardersTriggered() bool {
	for n := range w.T {
		if w.G.LayerOf(n) == 0 || w.Excluded[n] {
			continue
		}
		if w.T[n] == Missing {
			return false
		}
	}
	return true
}

// ExcludeFaultyNeighborhood marks, in addition to the faulty nodes
// themselves, all nodes reachable from a faulty node over at most h outgoing
// links as excluded — the paper's h-hop discard of Figs. 15–16 ("in
// addition to the faulty nodes themselves, also their outgoing 1-hop
// neighbors are discarded from the data set").
func (w *Wave) ExcludeFaultyNeighborhood(plan *fault.Plan, h int) {
	frontier := plan.FaultyNodes()
	for _, n := range frontier {
		w.Excluded[n] = true
	}
	for hop := 0; hop < h; hop++ {
		var next []int
		for _, n := range frontier {
			for _, to := range w.G.OutNeighborsOf(n) {
				if !w.Excluded[to] {
					w.Excluded[to] = true
					next = append(next, to)
				}
			}
		}
		frontier = next
	}
}
