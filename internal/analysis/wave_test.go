package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// flatWave builds a wave over a small grid where node (ℓ,i) triggers at
// base + ℓ·layerStep + i·colStep, for closed-form skew checks.
func flatWave(h *grid.Hex, base, layerStep, colStep sim.Time) *Wave {
	w := NewWave(h.Graph)
	for n := 0; n < h.NumNodes(); n++ {
		l, c := h.Coord(n)
		w.T[n] = base + sim.Time(l)*layerStep + sim.Time(c)*colStep
	}
	return w
}

func TestNewWaveAllMissing(t *testing.T) {
	h := grid.MustHex(3, 4)
	w := NewWave(h.Graph)
	if w.TriggeredCount() != 0 {
		t.Error("fresh wave has triggered nodes")
	}
	if w.AllForwardersTriggered() {
		t.Error("fresh wave claims completeness")
	}
}

func TestIntraSkewsUniformColumnStep(t *testing.T) {
	h := grid.MustHex(3, 5)
	w := flatWave(h, 0, 8000, 100)
	intra := w.IntraSkews()
	// 3 forwarding layers × 5 pairs each.
	if len(intra) != 15 {
		t.Fatalf("got %d intra pairs, want 15", len(intra))
	}
	// Most pairs differ by colStep = 0.1ns; wrap pairs (col 4 → col 0)
	// differ by 4·colStep = 0.4ns.
	small, big := 0, 0
	for _, v := range intra {
		switch {
		case v == 0.1:
			small++
		case v == 0.4:
			big++
		default:
			t.Fatalf("unexpected intra skew %v", v)
		}
	}
	if small != 12 || big != 3 {
		t.Errorf("small=%d big=%d", small, big)
	}
}

func TestInterSkewsSigned(t *testing.T) {
	h := grid.MustHex(2, 4)
	w := flatWave(h, 0, 8000, 0)
	inter := w.InterSkews()
	if len(inter) != 2*4*2 {
		t.Fatalf("got %d inter pairs", len(inter))
	}
	for _, v := range inter {
		if v != 8.0 {
			t.Fatalf("inter skew %v, want 8.0", v)
		}
	}
	// Negative steps keep their sign.
	w = flatWave(h, 100000, -5000, 0)
	for _, v := range w.InterSkews() {
		if v != -5.0 {
			t.Fatalf("signed inter skew %v, want -5.0", v)
		}
	}
}

func TestSkewsSkipMissingAndExcluded(t *testing.T) {
	h := grid.MustHex(2, 4)
	w := flatWave(h, 0, 8000, 100)
	n := h.NodeID(1, 1)
	w.T[n] = Missing
	intra := w.IntraSkewsLayer(1)
	// Pairs (1,0)-(1,1) and (1,1)-(1,2) drop out: 4 − 2 = 2 remain.
	if len(intra) != 2 {
		t.Errorf("%d pairs with one missing node, want 2", len(intra))
	}
	w = flatWave(h, 0, 8000, 100)
	w.Excluded[n] = true
	if got := len(w.IntraSkewsLayer(1)); got != 2 {
		t.Errorf("%d pairs with one excluded node, want 2", got)
	}
}

func TestMaxIntraSkewLayer(t *testing.T) {
	h := grid.MustHex(2, 4)
	w := flatWave(h, 0, 0, 0)
	w.T[h.NodeID(1, 2)] = 700
	if m := w.MaxIntraSkewLayer(1); m != 700 {
		t.Errorf("MaxIntraSkewLayer = %v", m)
	}
	// All nodes of a layer missing → -1.
	for _, n := range h.Layer(2) {
		w.T[n] = Missing
	}
	if m := w.MaxIntraSkewLayer(2); m != -1 {
		t.Errorf("empty layer max = %v", m)
	}
}

func TestInterSkewRangeLayer(t *testing.T) {
	h := grid.MustHex(2, 4)
	w := flatWave(h, 0, 8000, 0)
	w.T[h.NodeID(1, 0)] = 9000 // one late node
	lo, hi, ok := w.InterSkewRangeLayer(1)
	if !ok || lo != 8000 || hi != 9000 {
		t.Errorf("range = [%v, %v] ok=%v", lo, hi, ok)
	}
}

func TestSkewPotentialDefinition(t *testing.T) {
	h := grid.MustHex(2, 6)
	b := delay.Paper
	// All equal → Δ = 0 (i = j term).
	w := flatWave(h, 1000, 0, 0)
	if d := SkewPotential(w, h, 0, b.Min); d != 0 {
		t.Errorf("uniform Δ = %v", d)
	}
	// One node later by X: Δ = X − d− (distance-1 pair dominates).
	w.T[h.NodeID(0, 2)] += 10000
	want := sim.Time(10000) - b.Min
	if d := SkewPotential(w, h, 0, b.Min); d != want {
		t.Errorf("Δ = %v, want %v", d, want)
	}
	// Ramp with slope exactly d− has Δ … = 0 except wrap effects; use
	// half-ramp within distance: slope d− over 3 columns then flat.
	w2 := NewWave(h.Graph)
	for i := 0; i < 6; i++ {
		w2.T[h.NodeID(0, i)] = sim.Time(grid.CyclicDistance(i, 0, 6)) * b.Min
	}
	if d := SkewPotential(w2, h, 0, b.Min); d != 0 {
		t.Errorf("metric ramp Δ = %v, want 0", d)
	}
}

func TestExcludeFaultyNeighborhood(t *testing.T) {
	h := grid.MustHex(6, 8)
	plan := fault.NewPlan(h.NumNodes())
	bad := h.NodeID(2, 3)
	plan.SetBehavior(bad, fault.Byzantine)
	w := flatWave(h, 0, 8000, 0)

	w0 := flatWave(h, 0, 8000, 0)
	w0.ExcludeFaultyNeighborhood(plan, 0)
	count0 := 0
	for _, e := range w0.Excluded {
		if e {
			count0++
		}
	}
	if count0 != 1 {
		t.Errorf("h=0 excluded %d nodes, want 1", count0)
	}

	w.ExcludeFaultyNeighborhood(plan, 1)
	if !w.Excluded[bad] {
		t.Error("faulty node not excluded")
	}
	for _, out := range h.OutNeighborsOf(bad) {
		if !w.Excluded[out] {
			t.Errorf("1-hop out-neighbor %d not excluded", out)
		}
	}
	count1 := 0
	for _, e := range w.Excluded {
		if e {
			count1++
		}
	}
	// Fault + its 4 out-neighbors.
	if count1 != 5 {
		t.Errorf("h=1 excluded %d nodes, want 5", count1)
	}

	// h=2 is a superset of h=1.
	w2 := flatWave(h, 0, 8000, 0)
	w2.ExcludeFaultyNeighborhood(plan, 2)
	for n := range w.Excluded {
		if w.Excluded[n] && !w2.Excluded[n] {
			t.Errorf("h=2 lost node %d excluded at h=1", n)
		}
	}
}

func TestWaveFromResult(t *testing.T) {
	h := grid.MustHex(4, 5)
	plan := fault.NewPlan(h.NumNodes())
	bad := h.NodeID(1, 1)
	plan.SetBehavior(bad, fault.FailSilent)
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   core.DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   plan,
		Schedule: source.SinglePulse(make([]sim.Time, h.W)),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := WaveFromResult(h.Graph, res, plan, 0)
	if !w.Excluded[bad] {
		t.Error("faulty node not excluded in wave")
	}
	if w.Valid(bad) {
		t.Error("faulty node counted as valid")
	}
	for n := 0; n < h.NumNodes(); n++ {
		if n == bad {
			continue
		}
		if !w.Valid(n) {
			t.Errorf("node %d invalid in fault-free region", n)
		}
		if w.T[n] != res.Triggers[n][0] {
			t.Errorf("node %d wave time mismatch", n)
		}
	}
	if !w.AllForwardersTriggered() {
		t.Error("completeness check failed")
	}
}

// TestSkewTimesMatchFloatSkews: the raw-Time skew extractors walk pairs in
// the same order as the float versions, so converting their output must
// reproduce IntraSkews/InterSkews element for element. Combined with
// stats.SummarizeScaled's differential test this closes the chain that
// lets hot paths summarize integer skews without changing any record.
func TestSkewTimesMatchFloatSkews(t *testing.T) {
	h := grid.MustHex(4, 6)
	w := flatWave(h, 0, 8000, 137)
	w.T[h.NodeID(2, 3)] = Missing
	w.Excluded[h.NodeID(1, 5)] = true

	check := func(name string, ts []sim.Time, fs []float64) {
		t.Helper()
		if len(ts) != len(fs) {
			t.Fatalf("%s: %d raw skews vs %d float skews", name, len(ts), len(fs))
		}
		for i := range ts {
			if got := ts[i].Nanoseconds(); got != fs[i] {
				t.Fatalf("%s[%d]: raw %v ns vs float %v", name, i, got, fs[i])
			}
		}
	}
	check("intra", w.AppendIntraSkewTimes(nil), w.IntraSkews())
	check("inter", w.AppendInterSkewTimes(nil), w.InterSkews())
}
