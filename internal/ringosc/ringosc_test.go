package ringosc

import (
	"testing"

	"repro/internal/sim"
)

func baseCfg() Config {
	return Config{
		Rows: 8, Cols: 8,
		GateMin: 450 * sim.Picosecond,
		GateMax: 550 * sim.Picosecond,
		Horizon: 200 * sim.Nanosecond,
		Seed:    1,
	}
}

func TestValidation(t *testing.T) {
	bad := baseCfg()
	bad.Rows = 1
	if _, err := Run(bad); err == nil {
		t.Error("1-row grid accepted")
	}
	bad = baseCfg()
	bad.GateMin = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero gate delay accepted")
	}
	bad = baseCfg()
	bad.StuckCells = []int{1000}
	if _, err := Run(bad); err == nil {
		t.Error("out-of-range stuck cell accepted")
	}
}

func TestFaultFreeOscillates(t *testing.T) {
	res, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveCells(5*sim.Nanosecond) != 64 {
		t.Errorf("only %d/64 cells alive at the horizon", res.AliveCells(5*sim.Nanosecond))
	}
	min, max := res.MinMaxToggles()
	// Period ≈ a gate delay per half-cycle plus coupling wait: within
	// 200 ns and ~0.5 ns gates expect on the order of 10²+ toggles.
	if min < 50 {
		t.Errorf("min toggles %d: oscillation too slow or stalled", min)
	}
	// The grid stays coupled: cells cannot run away from each other.
	if max > min+2 {
		t.Errorf("toggle counts diverged: min %d, max %d", min, max)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Toggles {
		if a.Toggles[c] != b.Toggles[c] || a.LastToggle[c] != b.LastToggle[c] {
			t.Fatalf("nondeterministic at cell %d", c)
		}
	}
}

func TestSingleStuckCellHaltsEverything(t *testing.T) {
	// The paper's point about [24, 25]: no fault-tolerance analysis — and
	// indeed one stuck cell freezes its neighbors, and the freeze spreads
	// until the entire oscillator halts.
	cfg := baseCfg()
	cfg.StuckCells = []int{cfg.CellID(3, 4)}
	cfg.Horizon = 400 * sim.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alive := res.AliveCells(20 * sim.Nanosecond); alive != 0 {
		t.Errorf("%d cells still alive despite a stuck cell", alive)
	}
	// The halt is not instant: cells did toggle before the freeze spread.
	_, max := res.MinMaxToggles()
	if max == 0 {
		t.Error("grid never oscillated at all")
	}
}

func TestStuckCellFreezeSpreadsWithDistance(t *testing.T) {
	// Cells farther from the stuck cell keep toggling longer.
	cfg := baseCfg()
	cfg.Rows, cfg.Cols = 12, 12
	stuck := cfg.CellID(0, 0)
	cfg.StuckCells = []int{stuck}
	cfg.Horizon = 500 * sim.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	near := res.Toggles[cfg.CellID(0, 1)]
	far := res.Toggles[cfg.CellID(6, 6)]
	if far <= near {
		t.Errorf("far cell toggled %d times, near cell %d — freeze did not spread gradually", far, near)
	}
}

func TestCellIDWraps(t *testing.T) {
	cfg := baseCfg()
	if cfg.CellID(-1, 0) != cfg.CellID(7, 0) {
		t.Error("row wrap broken")
	}
	if cfg.CellID(0, 8) != cfg.CellID(0, 0) {
		t.Error("col wrap broken")
	}
}
