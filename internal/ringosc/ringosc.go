// Package ringosc models the related-work alternative the paper contrasts
// HEX with (Section 1, [24, 25]): distributed clock *generation* by a
// two-dimensional grid of pulse cells, "each cell inverting its output
// signal when its four inputs (from the up, down, left, and right neighbor)
// match the current clock output value". The construction oscillates
// without any clock source — but, as the paper points out, "none of these
// approaches has been analyzed for its fault-tolerance properties". This
// package makes the contrast measurable: a single stuck-at cell freezes its
// neighbors, and the freeze spreads until the entire oscillator halts,
// whereas a faulty HEX node costs its neighborhood a few nanoseconds of
// skew.
package ringosc

import (
	"fmt"

	"repro/internal/sim"
)

// Config parameterizes a cell-grid oscillator.
type Config struct {
	// Rows, Cols give the torus dimensions (≥ 2 each).
	Rows, Cols int
	// GateMin/GateMax bound a cell's inversion delay once its inputs match.
	GateMin, GateMax sim.Time
	// StuckCells lists cells whose output is frozen at its initial value.
	StuckCells []int
	// Horizon is the simulated duration.
	Horizon sim.Time
	// Seed drives the per-inversion gate delays.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("ringosc: grid must be at least 2x2, got %dx%d", c.Rows, c.Cols)
	}
	if c.GateMin <= 0 || c.GateMax < c.GateMin {
		return fmt.Errorf("ringosc: need 0 < GateMin ≤ GateMax")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("ringosc: need a positive horizon")
	}
	return nil
}

// Result reports per-cell activity.
type Result struct {
	Rows, Cols int
	// Toggles[c] counts cell c's output transitions within the horizon.
	Toggles []int
	// LastToggle[c] is the time of the last transition (-1 if none).
	LastToggle []sim.Time
	Horizon    sim.Time
}

// CellID maps (row, col) to a cell index (coordinates wrap).
func (c Config) CellID(row, col int) int {
	r := ((row % c.Rows) + c.Rows) % c.Rows
	cc := ((col % c.Cols) + c.Cols) % c.Cols
	return r*c.Cols + cc
}

// Run simulates the oscillator from the all-zero state (every cell's inputs
// match, so the grid starts inverting immediately).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Rows * cfg.Cols
	eng := sim.NewEngine()
	rng := sim.NewRNG(sim.DeriveSeed(cfg.Seed, "ringosc"))

	out := make([]bool, n)
	stuck := make([]bool, n)
	for _, c := range cfg.StuckCells {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("ringosc: stuck cell %d out of range", c)
		}
		stuck[c] = true
	}
	pending := make([]bool, n) // an inversion is scheduled
	res := &Result{
		Rows: cfg.Rows, Cols: cfg.Cols,
		Toggles:    make([]int, n),
		LastToggle: make([]sim.Time, n),
		Horizon:    cfg.Horizon,
	}
	for i := range res.LastToggle {
		res.LastToggle[i] = -1
	}

	neighbors := make([][4]int, n)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			neighbors[cfg.CellID(r, c)] = [4]int{
				cfg.CellID(r-1, c), cfg.CellID(r+1, c),
				cfg.CellID(r, c-1), cfg.CellID(r, c+1),
			}
		}
	}
	matches := func(c int) bool {
		for _, nb := range neighbors[c] {
			if out[nb] != out[c] {
				return false
			}
		}
		return true
	}

	// Once a cell's inputs match, the inversion is latched: it fires after
	// the gate delay even if inputs glitch meanwhile (a delay-insensitive
	// Muller-C style implementation; a cancellable rule would deadlock the
	// very first asymmetric transition).
	var check func(c int)
	invert := func(c int) {
		pending[c] = false
		out[c] = !out[c]
		res.Toggles[c]++
		res.LastToggle[c] = eng.Now()
		check(c)
		for _, nb := range neighbors[c] {
			check(nb)
		}
	}
	check = func(c int) {
		if stuck[c] || pending[c] || !matches(c) {
			return
		}
		pending[c] = true
		d := rng.TimeIn(cfg.GateMin, cfg.GateMax)
		cell := c
		eng.ScheduleAfter(d, func() { invert(cell) })
	}

	for c := 0; c < n; c++ {
		check(c)
	}
	eng.Run(cfg.Horizon)
	return res, nil
}

// AliveCells counts cells that toggled within the final `window` of the
// horizon — the cells still participating in the oscillation.
func (r *Result) AliveCells(window sim.Time) int {
	cut := r.Horizon - window
	alive := 0
	for c := range r.Toggles {
		if r.LastToggle[c] >= cut {
			alive++
		}
	}
	return alive
}

// MinMaxToggles returns the smallest and largest per-cell toggle counts.
func (r *Result) MinMaxToggles() (min, max int) {
	min, max = int(^uint(0)>>1), 0
	for _, t := range r.Toggles {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return min, max
}
