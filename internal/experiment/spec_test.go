package experiment

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/source"
)

// small returns fast reduced-scale options for integration tests.
func small() Options { return Options{L: 12, W: 8, Runs: 8, Seed: 3} }

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.L != 50 || s.W != 20 || s.Runs != 250 || s.Seed != 1 {
		t.Errorf("defaults: %+v", s)
	}
	if s.Bounds != delay.Paper {
		t.Error("default bounds wrong")
	}
	if s.Params.Bounds != delay.Paper {
		t.Error("default params bounds wrong")
	}
	s = Spec{Faults: 2}.WithDefaults()
	if s.FaultType != fault.Byzantine {
		t.Error("default fault type should be Byzantine")
	}
}

func TestRunOneProducesWave(t *testing.T) {
	out, err := RunOne(Spec{L: 8, W: 6, Scenario: source.Zero, Runs: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Wave.AllForwardersTriggered() {
		t.Error("incomplete wave")
	}
}

func TestRunManyDeterministicAndOrdered(t *testing.T) {
	spec := Spec{L: 8, W: 6, Scenario: source.UniformDPlus, Runs: 6, Seed: 5}
	a, err := RunMany(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("run counts %d/%d", len(a), len(b))
	}
	for i := range a {
		for n := range a[i].Wave.T {
			if a[i].Wave.T[n] != b[i].Wave.T[n] {
				t.Fatalf("run %d node %d differs between invocations", i, n)
			}
		}
	}
	// Distinct runs differ.
	same := true
	for n := range a[0].Wave.T {
		if a[0].Wave.T[n] != a[1].Wave.T[n] {
			same = false
			break
		}
	}
	if same {
		t.Error("two runs produced identical waves")
	}
}

func TestRunManyWithFaults(t *testing.T) {
	spec := Spec{L: 10, W: 8, Scenario: source.UniformDPlus, Runs: 4, Faults: 3, Seed: 7}
	outs, err := RunMany(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if got := o.Plan.NumFaulty(); got != 3 {
			t.Errorf("run %d has %d faults", i, got)
		}
		if ok, v := fault.Condition1(o.Hex.Graph, o.Plan); !ok {
			t.Errorf("run %d violates Condition 1 at %d", i, v)
		}
	}
	// Placements differ across runs.
	if outs[0].Plan.FaultyNodes()[0] == outs[1].Plan.FaultyNodes()[0] &&
		outs[0].Plan.FaultyNodes()[1] == outs[1].Plan.FaultyNodes()[1] &&
		outs[0].Plan.FaultyNodes()[2] == outs[1].Plan.FaultyNodes()[2] {
		t.Log("warning: identical placements in two runs (possible but unlikely)")
	}
}

func TestParallelFor(t *testing.T) {
	var count int64
	seen := make([]bool, 100)
	parallelFor(context.Background(), 100, func(i int) {
		atomic.AddInt64(&count, 1)
		seen[i] = true
	})
	if count != 100 {
		t.Errorf("body ran %d times", count)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d skipped", i)
		}
	}
	// n smaller than worker count.
	ran := 0
	parallelFor(context.Background(), 1, func(int) { ran++ })
	if ran != 1 {
		t.Error("single-item parallelFor broken")
	}
	parallelFor(context.Background(), 0, func(int) { t.Error("body called for n=0") })
}

func TestCollectSkewsHops(t *testing.T) {
	spec := Spec{L: 10, W: 8, Scenario: source.Zero, Runs: 3, Faults: 1, Seed: 11}
	outs, err := RunMany(spec)
	if err != nil {
		t.Fatal(err)
	}
	i0, e0 := CollectSkews(outs, 0)
	i1, e1 := CollectSkews(outs, 1)
	if len(i1) >= len(i0) || len(e1) >= len(e0) {
		t.Errorf("h=1 exclusion did not shrink data: intra %d→%d inter %d→%d",
			len(i0), len(i1), len(e0), len(e1))
	}
	// CollectSkews with hops must not mutate the stored waves.
	i0b, _ := CollectSkews(outs, 0)
	if len(i0b) != len(i0) {
		t.Error("CollectSkews mutated its inputs")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.L != 50 || o.W != 20 || o.Runs != 250 || o.Seed != 1 {
		t.Errorf("options defaults: %+v", o)
	}
}
