package experiment

import (
	"testing"

	"repro/internal/delay"
)

func TestFig20FrequencyMultiplication(t *testing.T) {
	fig, err := Fig20(Options{L: 10, W: 8, Runs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Data["lambda_min_ns"] <= 0 {
		t.Fatal("no pulse separation measured")
	}
	// Shorter oscillator periods allow larger multipliers.
	m500 := fig.Data["M_period_500ps"]
	m2000 := fig.Data["M_period_2000ps"]
	if m500 <= m2000 {
		t.Errorf("M(0.5ns)=%v not above M(2ns)=%v", m500, m2000)
	}
	// Measured fast skew within its bound.
	for _, p := range []int{500, 1000, 2000} {
		meas := fig.Data[keyNs("fastskew_meas_ns_%dps", p)]
		bound := fig.Data[keyNs("fastskew_bound_ns_%dps", p)]
		if meas > bound+0.001 {
			t.Errorf("period %dps: measured %.3f exceeds bound %.3f", p, meas, bound)
		}
	}
}

func keyNs(format string, p int) string {
	switch p {
	case 500:
		return format[:len(format)-4] + "500ps"
	case 1000:
		return format[:len(format)-4] + "1000ps"
	default:
		return format[:len(format)-4] + "2000ps"
	}
}

func TestFig21DoublingTopology(t *testing.T) {
	fig, err := Fig21(Options{Runs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Data["max_intra_skew_ns"] <= 0 {
		t.Fatal("no skews measured")
	}
	// The analysis of Section 3 suggests doubling layers are not worse by
	// a large factor; allow 2× headroom.
	if fig.Data["max_intra_doubling_ns"] > 2*fig.Data["max_intra_normal_ns"]+1 {
		t.Errorf("doubling layers much worse: %.3f vs %.3f",
			fig.Data["max_intra_doubling_ns"], fig.Data["max_intra_normal_ns"])
	}
}

func TestTreeCompareShapes(t *testing.T) {
	fig, err := TreeCompare(Options{Runs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tree neighbor skew grows with n; HEX stays roughly flat.
	t64, t1024 := fig.Data["tree_skew_max_n64"], fig.Data["tree_skew_max_n1024"]
	if t1024 <= t64 {
		t.Errorf("tree skew did not grow with size: %.3f → %.3f", t64, t1024)
	}
	h64, h1024 := fig.Data["hex_skew_max_n64"], fig.Data["hex_skew_max_n1024"]
	if h1024 > 3*h64+1 {
		t.Errorf("hex skew grew too much with size: %.3f → %.3f", h64, h1024)
	}
	// Every single tree fault silences a whole subtree (at least the 4
	// leaves below a deepest buffer); HEX loses none.
	if fig.Data["tree_dead_max_n1024"] < 4 {
		t.Errorf("tree blast radius %v impossible for a buffer fault", fig.Data["tree_dead_max_n1024"])
	}
}

func TestAblationGuardShape(t *testing.T) {
	fig, err := AblationGuard(Options{L: 10, W: 8, Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Safety: only the naive guard emits the false pulse.
	if fig.Data["false_pulse_adjacent-pair"] != 0 {
		t.Error("Algorithm 1's guard produced a false pulse")
	}
	if fig.Data["false_pulse_any-two"] != 1 {
		t.Error("any-two guard did not produce the false pulse")
	}
	// Liveness trade-off: the crash pair starves the victim only under
	// Algorithm 1's guard.
	if fig.Data["victim_alive_adjacent-pair"] != 0 {
		t.Error("victim survived crash pair under adjacent guard")
	}
	if fig.Data["victim_alive_any-two"] != 1 {
		t.Error("victim starved under any-two guard")
	}
}

func TestAblationEpsilonWithinBounds(t *testing.T) {
	fig, err := AblationEpsilon(Options{L: 10, W: 8, Runs: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Measured max skews must stay within Theorem 1's bound for all swept
	// ratios (the theorem only guarantees it for ε ≤ d+/7, but the bound
	// formula held empirically beyond that too).
	for _, den := range []int{14, 7, 4, 2} {
		meas := fig.Data[epsKey("intra_max_eps_1_", den)]
		bound := fig.Data[epsKey("bound_eps_1_", den)]
		if meas <= 0 {
			t.Errorf("ε=d+/%d: no skew measured", den)
		}
		if meas > bound+0.001 {
			t.Errorf("ε=d+/%d: measured %.3f above bound %.3f", den, meas, bound)
		}
	}
	_ = delay.Paper
}

func epsKey(prefix string, den int) string {
	switch den {
	case 14:
		return prefix + "14"
	case 7:
		return prefix + "7"
	case 4:
		return prefix + "4"
	default:
		return prefix + "2"
	}
}
