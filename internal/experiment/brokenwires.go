package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
)

// BrokenWires backs the robustness claim of the introduction that HEX "can
// handle a larger number of more benign failures like broken wires": it
// breaks f randomly chosen individual links (stuck-at-0 wires between
// otherwise correct nodes) and sweeps f far beyond the node-fault budget,
// reporting skews and completeness. A broken wire costs a node one input;
// the guard still has pairs left, so HEX tolerates many more broken wires
// than faulty nodes — until two breaks starve a node, which the static
// liveness check predicts exactly.
func BrokenWires(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	runs := reducedRuns(o.Runs)
	b := delay.Paper
	fig := newFig("Robustness: broken wires (random stuck-0 links between correct nodes)")
	t := &render.Table{
		Header: []string{"broken wires", "runs complete", "starvation predicted",
			"intra avg", "intra q95", "intra max"},
		Note: "a run is complete when every correct node fired exactly once; prediction via fault.CheckLiveness",
	}
	for _, f := range []int{0, 5, 10, 20, 40} {
		var intra []float64
		complete, predictedStarved := 0, 0
		for run := 0; run < runs; run++ {
			seed := sim.DeriveSeed(o.Seed, "brokenwires", fmt.Sprintf("f%d-run%d", f, run))
			h, err := grid.NewHex(o.L, o.W)
			if err != nil {
				return nil, err
			}
			rng := sim.NewRNG(seed)
			plan := fault.NewPlan(h.NumNodes())
			// Break f distinct directed links, chosen uniformly.
			type link struct{ from, to int }
			var all []link
			for n := 0; n < h.NumNodes(); n++ {
				for _, out := range h.Out(n) {
					all = append(all, link{n, out.To})
				}
			}
			perm := rng.Perm(len(all))
			for i := 0; i < f && i < len(all); i++ {
				plan.SetLink(all[perm[i]].from, all[perm[i]].to, fault.LinkStuck0)
			}
			live, starved := fault.CheckLiveness(h.Graph, plan)
			if !live {
				predictedStarved++
			}
			res, err := core.Run(core.Config{
				Graph:    h.Graph,
				Params:   core.DefaultParams(),
				Delay:    delay.Uniform{Bounds: b},
				Faults:   plan,
				Schedule: source.SinglePulse(source.Offsets(source.UniformDPlus, o.W, b, rng)),
				Seed:     seed,
			})
			if err != nil {
				return nil, err
			}
			w := analysis.WaveFromResult(h.Graph, res, plan, 0)
			// With link timers disabled, the static fixpoint is exact:
			// a node fires if and only if the analysis says it can.
			starvedSet := map[int]bool{}
			for _, n := range starved {
				starvedSet[n] = true
			}
			for n := 0; n < h.NumNodes(); n++ {
				fired := len(res.Triggers[n]) == 1
				if starvedSet[n] == fired {
					return nil, fmt.Errorf(
						"liveness analysis wrong at node %d: predicted starved=%v, fired=%v",
						n, starvedSet[n], fired)
				}
			}
			if live {
				complete++
			}
			intra = append(intra, w.IntraSkews()...)
		}
		s := stats.Summarize(intra)
		t.AddRow(fmt.Sprintf("%d", f),
			fmt.Sprintf("%d/%d", complete, runs),
			fmt.Sprintf("%d/%d", predictedStarved, runs),
			render.Ns(s.Avg), render.Ns(s.Q95), render.Ns(s.Max))
		fig.Data[fmt.Sprintf("complete_f%d", f)] = float64(complete)
		fig.Data[fmt.Sprintf("starved_f%d", f)] = float64(predictedStarved)
		fig.Data[fmt.Sprintf("intra_max_f%d", f)] = s.Max
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}
