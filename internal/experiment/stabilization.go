package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// StabSpec describes a family of multi-pulse self-stabilization runs
// (Section 4.4): the system starts with every node in a random state and
// forwards a sequence of pulses; the estimator reports from which pulse on
// the skews persistently stay below a chosen threshold.
type StabSpec struct {
	L, W      int
	Bounds    delay.Bounds
	Scenario  source.Scenario
	Faults    int
	FaultType fault.Behavior
	Runs      int
	// Pulses per run (the paper uses 10).
	Pulses int
	Seed   uint64
	// Timeouts are the Condition 2 parameters (T±link, T±sleep, S).
	Timeouts theory.Timeouts
	// DisableLinkTimers removes the per-link timeouts (the original HEX
	// of [33]); an ablation for the claim that link timeouts make HEX
	// "reliably stabilize within two clock pulses".
	DisableLinkTimers bool
}

// WithDefaults fills unset fields.
func (s StabSpec) WithDefaults() StabSpec {
	if s.L == 0 {
		s.L = 50
	}
	if s.W == 0 {
		s.W = 20
	}
	if s.Bounds == (delay.Bounds{}) {
		s.Bounds = delay.Paper
	}
	if s.Runs == 0 {
		s.Runs = 250
	}
	if s.Pulses == 0 {
		s.Pulses = 10
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Faults > 0 && s.FaultType == fault.Correct {
		s.FaultType = fault.Byzantine
	}
	return s
}

// StabOut is one stabilization run's raw material: the pulse assignment is
// evaluated against any number of threshold choices without re-simulating.
type StabOut struct {
	Hex  *grid.Hex
	Plan *fault.Plan
	PA   *analysis.PulseAssignment
	// Events is the simulation's executed event count and Elapsed its
	// wall time, kept here because the PulseAssignment does not retain
	// the raw core.Result. They feed hexd's throughput metrics.
	Events  uint64
	Elapsed time.Duration
}

func (s StabSpec) runSeed(idx int) uint64 {
	return sim.DeriveSeed(s.Seed, "stab", s.Scenario.Name(),
		fmt.Sprintf("f%d-%s-lt%v", s.Faults, s.FaultType, !s.DisableLinkTimers),
		fmt.Sprintf("run%d", idx))
}

// StabRunOne executes stabilization run idx.
func StabRunOne(s StabSpec, idx int) (*StabOut, error) {
	return StabRunOneCtx(context.Background(), s, idx)
}

// StabRunOneCtx is StabRunOne with cancellation: once ctx is done the
// underlying simulation stops early and the context's error is returned.
func StabRunOneCtx(ctx context.Context, s StabSpec, idx int) (*StabOut, error) {
	s = s.WithDefaults()
	h, err := grid.NewHex(s.L, s.W)
	if err != nil {
		return nil, err
	}
	return stabRunOnGrid(ctx, s, h, idx)
}

func stabRunOnGrid(ctx context.Context, s StabSpec, h *grid.Hex, idx int) (*StabOut, error) {
	seed := s.runSeed(idx)
	sched := source.NewSchedule(s.Scenario, s.W, s.Pulses, s.Bounds,
		s.Timeouts.Separation, sim.NewRNG(sim.DeriveSeed(seed, "sched")))

	plan := fault.NewPlan(h.NumNodes())
	if s.Faults > 0 {
		rngF := sim.NewRNG(sim.DeriveSeed(seed, "faults"))
		placed, err := fault.PlaceRandom(h.Graph, s.Faults, nil, rngF, 0)
		if err != nil {
			return nil, err
		}
		for _, n := range placed {
			plan.SetBehavior(n, s.FaultType)
		}
		if s.FaultType == fault.Byzantine {
			plan.RandomizeByzantine(h.Graph, rngF)
		}
	}

	params := core.Params{
		Bounds:    s.Bounds,
		TLinkMin:  s.Timeouts.TLinkMin,
		TLinkMax:  s.Timeouts.TLinkMax,
		TSleepMin: s.Timeouts.TSleepMin,
		TSleepMax: s.Timeouts.TSleepMax,
	}
	if s.DisableLinkTimers {
		params.TLinkMin, params.TLinkMax = 0, 0
	}

	a := arenas.Get().(*core.Arena)
	start := time.Now()
	res, err := a.Run(core.Config{
		Graph:      h.Graph,
		Params:     params,
		Delay:      delay.Uniform{Bounds: s.Bounds},
		Faults:     plan,
		Schedule:   sched,
		RandomInit: true,
		Seed:       seed,
		Context:    ctx,
	})
	elapsed := time.Since(start)
	arenas.Put(a)
	if err != nil {
		return nil, err
	}
	return &StabOut{
		Hex:     h,
		Plan:    plan,
		PA:      analysis.AssignPulses(h.Graph, res, plan, sched, s.Bounds),
		Events:  res.Events,
		Elapsed: elapsed,
	}, nil
}

// StabRunMany executes all runs of the spec in parallel.
func StabRunMany(s StabSpec) ([]*StabOut, error) {
	return StabRunManyCtx(context.Background(), s)
}

// StabRunManyCtx is StabRunMany with cancellation: once ctx is done, no
// further runs start, in-flight simulations stop early, and the context's
// error is returned.
func StabRunManyCtx(ctx context.Context, s StabSpec) ([]*StabOut, error) {
	s = s.WithDefaults()
	// As in RunManyCtx, one immutable grid serves every run and keys the
	// arena reuse.
	h, err := grid.NewHex(s.L, s.W)
	if err != nil {
		return nil, err
	}
	outs := make([]*StabOut, s.Runs)
	errs := make([]error, s.Runs)
	parallelFor(ctx, s.Runs, func(idx int) {
		outs[idx], errs[idx] = stabRunOnGrid(ctx, s, h, idx)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// layer0SigmaBound returns the neighbor-skew bound of the layer-0 schedule,
// used as σ(f, 0) in the threshold derivation.
func layer0SigmaBound(sc source.Scenario, b delay.Bounds) sim.Time {
	switch sc {
	case source.Zero:
		return 0
	case source.UniformDMinus:
		return b.Min
	default:
		return b.Max
	}
}

// layer0Spread returns the worst-case spread tmax − tmin of the layer-0
// schedule, used in the Lemma 5 threshold (choice C = 0).
func layer0Spread(sc source.Scenario, w int, b delay.Bounds) sim.Time {
	switch sc {
	case source.Zero:
		return 0
	case source.UniformDMinus:
		return b.Min
	case source.UniformDPlus:
		return b.Max
	default: // ramp
		return sim.Time(w/2) * b.Max
	}
}

// SigmaChoice builds the layer-dependent stable-skew threshold σ(f, ℓ) for
// a threshold choice C ∈ {0, 1, 2, 3}, following Section 4.4: C = 0 uses
// the very conservative Lemma 5 bounds; C ∈ {1, 2, 3} set σ(f, ℓ) =
// (4−C)·d+.
func SigmaChoice(c int, sc source.Scenario, w, f int, b delay.Bounds) func(layer int) sim.Time {
	base := layer0SigmaBound(sc, b)
	if c == 0 {
		spread := layer0Spread(sc, w, b)
		return func(layer int) sim.Time {
			if layer == 0 {
				return base
			}
			return spread + sim.Time(layer)*b.Epsilon() + sim.Time(f)*b.Max
		}
	}
	val := sim.Time(4-c) * b.Max
	return func(layer int) sim.Time {
		if layer == 0 {
			return base
		}
		return val
	}
}

// StabStats summarizes stabilization outcomes for one threshold choice.
type StabStats struct {
	// AvgPulse is the mean 1-based stabilization pulse over the
	// stabilized runs.
	AvgPulse float64
	// StdPulse is its standard deviation.
	StdPulse float64
	// Stabilized counts runs that stabilized within the observed pulses.
	Stabilized int
	Runs       int
}

// EvaluateStabilization applies threshold choice c to a batch of runs.
// hops > 0 additionally discards the faulty nodes' outgoing h-hop
// neighborhoods before checking skews (as in the paper's final
// stabilization experiment).
func EvaluateStabilization(outs []*StabOut, s StabSpec, c, hops int) StabStats {
	s = s.WithDefaults()
	var pulses []float64
	st := StabStats{Runs: len(outs)}
	for _, out := range outs {
		pa := out.PA
		if hops > 0 {
			pa = clonePA(pa)
			pa.ExcludeFaultyNeighborhoodAll(out.Plan, hops)
		}
		sigma := SigmaChoice(c, s.Scenario, s.W, s.Faults, s.Bounds)
		th := analysis.ThresholdsFromSigma(sigma, s.Bounds)
		if k, ok := pa.StabilizationPulse(th); ok {
			st.Stabilized++
			pulses = append(pulses, float64(k+1)) // 1-based, as in the paper
		}
	}
	st.AvgPulse = stats.Mean(pulses)
	st.StdPulse = stats.Std(pulses)
	return st
}

func clonePA(pa *analysis.PulseAssignment) *analysis.PulseAssignment {
	c := &analysis.PulseAssignment{
		Waves: make([]*analysis.Wave, len(pa.Waves)),
		Clean: make([][]bool, len(pa.Clean)),
	}
	for i, w := range pa.Waves {
		c.Waves[i] = cloneWave(w)
		c.Clean[i] = append([]bool(nil), pa.Clean[i]...)
	}
	return c
}

// stabilizationFigure is the shared skeleton of Figs. 18 and 19.
func stabilizationFigure(title string, o Options, sc source.Scenario, maxFaults int, timeouts theory.Timeouts) (*FigResult, error) {
	fig := newFig(title)
	fig.Sections = append(fig.Sections, fmt.Sprintf(
		"timeouts: T-link=[%v, %v] T-sleep=[%v, %v] S=%v",
		timeouts.TLinkMin, timeouts.TLinkMax, timeouts.TSleepMin, timeouts.TSleepMax, timeouts.Separation))
	for _, ft := range []fault.Behavior{fault.Byzantine, fault.FailSilent} {
		t := &render.Table{
			Title:  fmt.Sprintf("fault type: %v", ft),
			Header: []string{"f", "C", "avg pulse", "avg+std", "stabilized", "runs"},
		}
		for f := 0; f <= maxFaults; f++ {
			spec := StabSpec{
				L: o.L, W: o.W, Runs: o.Runs, Seed: o.Seed,
				Scenario: sc, Faults: f, FaultType: ft,
				Timeouts: timeouts,
			}.WithDefaults()
			outs, err := StabRunMany(spec)
			if err != nil {
				return nil, err
			}
			for c := 0; c <= 3; c++ {
				st := EvaluateStabilization(outs, spec, c, 0)
				avg := "-"
				avgStd := "-"
				if st.Stabilized > 0 {
					avg = fmt.Sprintf("%.2f", st.AvgPulse)
					avgStd = fmt.Sprintf("%.2f", st.AvgPulse+st.StdPulse)
				}
				t.AddRow(fmt.Sprintf("%d", f), fmt.Sprintf("%d", c),
					avg, avgStd, fmt.Sprintf("%d", st.Stabilized), fmt.Sprintf("%d", st.Runs))
				if !math.IsNaN(st.AvgPulse) {
					fig.Data[fmt.Sprintf("avg_pulse_%s_f%d_C%d", ft, f, c)] = st.AvgPulse
				}
				fig.Data[fmt.Sprintf("stabilized_%s_f%d_C%d", ft, f, c)] = float64(st.Stabilized)
			}
			// With h=1 exclusion HEX stabilized after the very first
			// pulse in every run of the paper; record C=1 as the witness.
			st := EvaluateStabilization(outs, spec, 1, 1)
			fig.Data[fmt.Sprintf("stabilized_h1_%s_f%d_C1", ft, f)] = float64(st.Stabilized)
		}
		fig.Sections = append(fig.Sections, t.String())
	}
	return fig, nil
}

// CalibrateTimeouts derives Condition 2 timeouts for a scenario from a
// (possibly reduced) measurement sweep, mirroring Table 3's procedure.
func CalibrateTimeouts(o Options, sc source.Scenario, maxFaults int) (theory.Timeouts, error) {
	o = o.WithDefaults()
	var worst float64
	for f := 0; f <= maxFaults; f++ {
		outs, err := RunMany(o.spec(sc, f, fault.Byzantine))
		if err != nil {
			return theory.Timeouts{}, err
		}
		intra, inter := CollectSkews(outs, 0)
		for _, v := range intra {
			if v > worst {
				worst = v
			}
		}
		for _, v := range inter {
			if a := absF(v); a > worst {
				worst = a
			}
		}
	}
	sigma := sim.FromNanoseconds(worst) + delay.Paper.Max
	return theory.Condition2(sigma, delay.Paper, o.L, maxFaults, theory.PaperDrift), nil
}

// Fig18 reproduces Fig. 18: stabilization time statistics under scenario
// (iii) for Byzantine and fail-silent faults, f ∈ [0, 5], threshold
// choices C ∈ {0..3}. Timeouts are calibrated from a reduced sweep.
func Fig18(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	calib := o
	calib.Runs = reducedRuns(o.Runs)
	to, err := CalibrateTimeouts(calib, source.UniformDPlus, 5)
	if err != nil {
		return nil, err
	}
	return stabilizationFigure("Fig. 18: stabilization times, scenario (iii)", o, source.UniformDPlus, 5, to)
}

// Fig19 reproduces Fig. 19: the same under the ramp scenario (iv).
func Fig19(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	calib := o
	calib.Runs = reducedRuns(o.Runs)
	to, err := CalibrateTimeouts(calib, source.Ramp, 5)
	if err != nil {
		return nil, err
	}
	return stabilizationFigure("Fig. 19: stabilization times, scenario (iv)", o, source.Ramp, 5, to)
}

func reducedRuns(runs int) int {
	r := runs / 5
	if r < 5 {
		r = 5
	}
	return r
}

// AblationLinkTimeouts compares stabilization with and without the per-link
// timeouts of Algorithm 1, under persistent Byzantine faults — backing the
// paper's claim that "the link timeouts added in Algorithm 1 cause HEX to
// reliably stabilize within two clock pulses".
func AblationLinkTimeouts(o Options, faults int) (*FigResult, error) {
	o = o.WithDefaults()
	calib := o
	calib.Runs = reducedRuns(o.Runs)
	to, err := CalibrateTimeouts(calib, source.UniformDPlus, faults)
	if err != nil {
		return nil, err
	}
	fig := newFig("Ablation: link timeouts on/off (scenario (iii), Byzantine faults)")
	t := &render.Table{
		Header: []string{"link timers", "f", "C", "avg pulse", "stabilized", "runs"},
	}
	for _, disabled := range []bool{false, true} {
		spec := StabSpec{
			L: o.L, W: o.W, Runs: o.Runs, Seed: o.Seed,
			Scenario: source.UniformDPlus, Faults: faults, FaultType: fault.Byzantine,
			Timeouts: to, DisableLinkTimers: disabled,
		}.WithDefaults()
		outs, err := StabRunMany(spec)
		if err != nil {
			return nil, err
		}
		for _, c := range []int{1, 2} {
			st := EvaluateStabilization(outs, spec, c, 0)
			mode := "on"
			if disabled {
				mode = "off"
			}
			t.AddRow(mode, fmt.Sprintf("%d", faults), fmt.Sprintf("%d", c),
				fmt.Sprintf("%.2f", st.AvgPulse), fmt.Sprintf("%d", st.Stabilized), fmt.Sprintf("%d", st.Runs))
			fig.Data[fmt.Sprintf("stabilized_timers_%s_C%d", mode, c)] = float64(st.Stabilized)
		}
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}
