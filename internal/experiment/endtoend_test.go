package experiment

import "testing"

func TestEndToEndStack(t *testing.T) {
	fig, err := EndToEnd(Options{L: 12, W: 10, Runs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every configuration completes: all correct nodes forward all pulses.
	for _, key := range []string{"s0_n0", "s2_n0", "s0_n2", "s2_n2"} {
		if fig.Data["complete_"+key] != 1 {
			t.Errorf("configuration %s incomplete", key)
		}
		if fig.Data["intra_max_"+key] <= 0 {
			t.Errorf("configuration %s has no skew data", key)
		}
	}
	// Source skews stay within a couple of message delays.
	for _, key := range []string{"s0_n0", "s2_n0", "s0_n2", "s2_n2"} {
		if fig.Data["src_skew_"+key] > 25 {
			t.Errorf("source skew %v ns too large for %s", fig.Data["src_skew_"+key], key)
		}
	}
}
