package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/render"
	"repro/internal/ringosc"
	"repro/internal/sim"
	"repro/internal/source"
)

// RingOscCompare contrasts HEX with the related-work distributed clock
// generation grid of [24, 25] (coupled pulse cells, Section 1), which the
// paper notes was never analyzed for fault tolerance. A single stuck cell
// halts the entire oscillator — the freeze spreads ring by ring — while a
// HEX grid of the same size keeps every correct node pulsing with only a
// local skew increase.
func RingOscCompare(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	fig := newFig("Related work: ring-oscillator cell grid vs. HEX under one fault")
	t := &render.Table{
		Header: []string{"system", "fault", "units still clocked", "notes"},
	}

	rows, cols := 16, 16
	base := ringosc.Config{
		Rows: rows, Cols: cols,
		GateMin: 450 * sim.Picosecond,
		GateMax: 550 * sim.Picosecond,
		Horizon: 2 * sim.Microsecond,
		Seed:    o.Seed,
	}
	healthy, err := ringosc.Run(base)
	if err != nil {
		return nil, err
	}
	stuck := base
	stuck.StuckCells = []int{base.CellID(rows/2, cols/2)}
	broken, err := ringosc.Run(stuck)
	if err != nil {
		return nil, err
	}
	window := 50 * sim.Nanosecond
	t.AddRow("cell grid (16x16)", "none",
		fmt.Sprintf("%d/%d", healthy.AliveCells(window), rows*cols), "all oscillate")
	t.AddRow("cell grid (16x16)", "1 stuck cell",
		fmt.Sprintf("%d/%d", broken.AliveCells(window), rows*cols), "freeze spreads, oscillator halts")

	// HEX of the same size under one Byzantine node: every correct node
	// still forwards the pulse.
	spec := Spec{L: 15, W: 16, Runs: 1, Seed: o.Seed,
		Scenario: source.Zero, Faults: 1, FaultType: fault.Byzantine}
	out, err := RunOne(spec, 0)
	if err != nil {
		return nil, err
	}
	clocked := out.Wave.TriggeredCount()
	t.AddRow("HEX (16x16)", "none", fmt.Sprintf("%d/%d", rows*cols, rows*cols), "all pulse")
	t.AddRow("HEX (16x16)", "1 Byzantine node",
		fmt.Sprintf("%d/%d", clocked, rows*cols), "only the faulty node itself is lost")

	fig.Sections = append(fig.Sections, t.String())
	fig.Data["ringosc_alive_healthy"] = float64(healthy.AliveCells(window))
	fig.Data["ringosc_alive_faulty"] = float64(broken.AliveCells(window))
	fig.Data["hex_alive_faulty"] = float64(clocked)
	return fig, nil
}
