package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
)

// FigResult is the outcome of a figure reproduction: rendered text sections
// plus the key quantities, so tests and EXPERIMENTS.md can check shapes
// numerically.
type FigResult struct {
	Title    string
	Sections []string
	// Data holds named scalar results (times in ns unless noted).
	Data map[string]float64
}

// Render concatenates the sections under the title.
func (f *FigResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	for _, s := range f.Sections {
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	// Deterministic key order for the data block.
	keys := make([]string, 0, len(f.Data))
	for k := range f.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%-28s %.3f\n", k+":", f.Data[k])
	}
	return b.String()
}

func newFig(title string) *FigResult {
	return &FigResult{Title: title, Data: make(map[string]float64)}
}

// waveFigure runs one single-pulse simulation and renders the wave, the
// shared skeleton of Figs. 8, 9, 13 and 14.
func waveFigure(title string, sp Spec, plan func(h *grid.Hex, p *fault.Plan, rng *sim.RNG)) (*FigResult, error) {
	sp = sp.WithDefaults()
	h, err := grid.NewHex(sp.L, sp.W)
	if err != nil {
		return nil, err
	}
	seed := sp.runSeed(0)
	offsets := source.Offsets(sp.Scenario, sp.W, sp.Bounds,
		sim.NewRNG(sim.DeriveSeed(seed, "offsets")))
	fp := fault.NewPlan(h.NumNodes())
	if plan != nil {
		plan(h, fp, sim.NewRNG(sim.DeriveSeed(seed, "faults")))
	}
	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   sp.Params,
		Delay:    delay.Uniform{Bounds: sp.Bounds},
		Faults:   fp,
		Schedule: source.SinglePulse(offsets),
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	wave := analysis.WaveFromResult(h.Graph, res, fp, 0)

	fig := newFig(title)
	fig.Sections = append(fig.Sections, render.WaveHeat(wave, 31))
	fig.Sections = append(fig.Sections, render.WaveLayerSeries(wave, "per-layer trigger times").String())
	if faulty := fp.FaultyNodes(); len(faulty) > 0 {
		fig.Sections = append(fig.Sections, "faulty nodes: "+render.Mark(h, faulty))
	}
	intra := wave.IntraSkews()
	if len(intra) > 0 {
		maxIntra := 0.0
		for _, v := range intra {
			if v > maxIntra {
				maxIntra = v
			}
		}
		fig.Data["max_intra_skew_ns"] = maxIntra
	}
	fig.Data["nodes_triggered"] = float64(wave.TriggeredCount())
	fig.Data["forwarders_complete"] = boolToFloat(wave.AllForwardersTriggered())
	return fig, nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Fig8 reproduces Fig. 8: a typical pulse wave with all layer-0 skews 0.
// The wave should propagate evenly, with constant inter-layer spacing.
func Fig8(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return waveFigure("Fig. 8: pulse wave, layer-0 skews 0 (scenario i)",
		Spec{L: o.L, W: o.W, Scenario: source.Zero, Seed: o.Seed}, nil)
}

// Fig9 reproduces Fig. 9: a wave under ramped layer-0 skews. The grid
// smooths the initial skews out within roughly W−2 layers (Lemma 3).
func Fig9(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return waveFigure("Fig. 9: pulse wave, ramped layer-0 skews (scenario iv)",
		Spec{L: o.L, W: o.W, Scenario: source.Ramp, Seed: o.Seed}, nil)
}

// Fig13 reproduces Fig. 13: scenario (i) with one Byzantine node at (1, 19)
// sending constant 1 to its left and right neighbors and constant 0 to both
// upper-layer neighbors. The skew increase fades with distance from the
// fault.
func Fig13(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	fig, err := waveFigure("Fig. 13: one Byzantine node at (1,19), scenario (i)",
		Spec{L: o.L, W: o.W, Scenario: source.Zero, Seed: o.Seed},
		func(h *grid.Hex, p *fault.Plan, _ *sim.RNG) {
			n := h.NodeID(1, h.W-1)
			p.SetBehavior(n, fault.Byzantine)
			_, col := h.Coord(n)
			p.SetLink(n, h.NodeID(1, col-1), fault.LinkStuck1) // left
			p.SetLink(n, h.NodeID(1, col+1), fault.LinkStuck1) // right
			p.SetLink(n, h.NodeID(2, col-1), fault.LinkStuck0) // upper-left
			p.SetLink(n, h.NodeID(2, col), fault.LinkStuck0)   // upper-right
		})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig14 reproduces Fig. 14: five randomly placed Byzantine nodes under the
// ramp scenario, with Condition 1 enforced.
func Fig14(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return waveFigure("Fig. 14: five Byzantine nodes, scenario (iv)",
		Spec{L: o.L, W: o.W, Scenario: source.Ramp, Seed: o.Seed},
		func(h *grid.Hex, p *fault.Plan, rng *sim.RNG) {
			placed, err := fault.PlaceRandom(h.Graph, 5, nil, rng, 0)
			if err != nil {
				panic(err)
			}
			for _, n := range placed {
				p.SetBehavior(n, fault.Byzantine)
			}
			p.RandomizeByzantine(h.Graph, rng)
		})
}

// Fig5 reproduces the worst-case construction of Fig. 5: a barrier of dead
// nodes in column 16 splits the cylinder; nodes in and left of column 8 see
// minimal delays d− while columns 9–16 see maximal delays d+ and large
// layer-0 offsets, maximizing the skew between the top-layer nodes of
// columns 8 and 9. The measured skew is checked against Lemma 4's bound.
func Fig5(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	if o.W < 18 {
		return nil, fmt.Errorf("experiment: Fig5 needs W ≥ 18, got %d", o.W)
	}
	h, err := grid.NewHex(o.L, o.W)
	if err != nil {
		return nil, err
	}
	b := delay.Paper
	const fastCol, slowCol, barrier = 8, 9, 16

	// Layer-0 offsets: slow region delayed by Δ0 + d− where Δ0 is the
	// Lemma 3 skew-potential bound (the largest value sustainable in
	// steady state).
	delta0 := theory.Lemma3SkewPotential(o.W, b)
	offsets := make([]sim.Time, o.W)
	for i := slowCol; i <= barrier; i++ {
		offsets[i] = delta0 + b.Min
	}

	plan := fault.NewPlan(h.NumNodes())
	fault.MarkColumnFailSilent(h, plan, barrier)

	// Adversarial deterministic delays: fast into columns ≤ 8 and > 16,
	// slow into columns 9..16.
	adv := delay.Func(func(_, to int, _ sim.Time, _ *sim.RNG) sim.Time {
		_, col := h.Coord(to)
		if col >= slowCol && col <= barrier {
			return b.Max
		}
		return b.Min
	})

	res, err := core.Run(core.Config{
		Graph:    h.Graph,
		Params:   core.DefaultParams(),
		Delay:    adv,
		Faults:   plan,
		Schedule: source.SinglePulse(offsets),
		Seed:     o.Seed,
	})
	if err != nil {
		return nil, err
	}
	wave := analysis.WaveFromResult(h.Graph, res, plan, 0)

	fig := newFig("Fig. 5: deterministic worst-case wave (dead barrier col 16, fast ≤8 / slow 9..16)")
	fig.Sections = append(fig.Sections, render.WaveHeat(wave, 0))

	// The adversarial skew between columns 8 and 9 peaks at a low layer
	// and then decays as the fast region drags the slow one along; report
	// the maximum over layers against Lemma 4's bound at that layer.
	var measured sim.Time
	worstLayer := 0
	for l := 1; l <= h.L; l++ {
		s := sim.AbsTime(wave.T[h.NodeID(l, slowCol)] - wave.T[h.NodeID(l, fastCol)])
		if s > measured {
			measured, worstLayer = s, l
		}
	}
	bound := theory.Lemma4IntraBound(worstLayer, 0, b, delta0)
	top := h.L
	fig.Data["skew_cols_8_9_max_ns"] = measured.Nanoseconds()
	fig.Data["skew_cols_8_9_layer"] = float64(worstLayer)
	fig.Data["skew_cols_8_9_top_ns"] =
		sim.AbsTime(wave.T[h.NodeID(top, slowCol)] - wave.T[h.NodeID(top, fastCol)]).Nanoseconds()
	fig.Data["lemma4_bound_ns"] = bound.Nanoseconds()
	fig.Data["delta0_ns"] = delta0.Nanoseconds()
	maxIntra := 0.0
	for _, v := range wave.IntraSkews() {
		if v > maxIntra {
			maxIntra = v
		}
	}
	fig.Data["max_intra_skew_ns"] = maxIntra

	// Second construction: the V-shaped Case 1 of Lemma 4 — a clean split
	// into a fast half (all delays d−) and a slow half (all delays d+)
	// with zero layer-0 skews. The skew between the boundary columns
	// grows by at most ε per layer until the left-trigger clamp kicks in;
	// the measured per-layer maximum must stay within Lemma 4's bound at
	// Δ0 = 0.
	vh, err := grid.NewHex(o.L, o.W)
	if err != nil {
		return nil, err
	}
	vPlan := fault.NewPlan(vh.NumNodes())
	fault.MarkColumnFailSilent(vh, vPlan, barrier)
	vAdv := delay.Func(func(_, to int, _ sim.Time, _ *sim.RNG) sim.Time {
		_, col := vh.Coord(to)
		if col > fastCol && col <= barrier {
			return b.Max
		}
		return b.Min
	})
	vRes, err := core.Run(core.Config{
		Graph:    vh.Graph,
		Params:   core.DefaultParams(),
		Delay:    vAdv,
		Faults:   vPlan,
		Schedule: source.SinglePulse(make([]sim.Time, o.W)),
		Seed:     o.Seed,
	})
	if err != nil {
		return nil, err
	}
	vWave := analysis.WaveFromResult(vh.Graph, vRes, vPlan, 0)
	var vMax sim.Time
	vLayer := 0
	for l := 1; l <= vh.L; l++ {
		s := sim.AbsTime(vWave.T[vh.NodeID(l, slowCol)] - vWave.T[vh.NodeID(l, fastCol)])
		if s > vMax {
			vMax, vLayer = s, l
		}
	}
	fig.Sections = append(fig.Sections, fmt.Sprintf(
		"V-shape construction (Case 1, Δ0=0): max skew cols %d/%d = %v at layer %d; Lemma 4 bound there: %v",
		fastCol, slowCol, vMax, vLayer, theory.Lemma4IntraBound(vLayer, 0, b, 0)))
	fig.Data["vshape_max_ns"] = vMax.Nanoseconds()
	fig.Data["vshape_layer"] = float64(vLayer)
	fig.Data["vshape_bound_ns"] = theory.Lemma4IntraBound(vLayer, 0, b, 0).Nanoseconds()
	return fig, nil
}

// Fig17 reproduces Fig. 17's point — a single Byzantine node under the ramp
// scenario with all delays d+ can blow the skew between its upper neighbors
// up to several d+ — by exhaustively searching fault positions and per-link
// behaviors on a small grid and reporting the worst skew found, against the
// paper's hand-constructed 5d+ and the fault-free baseline of ~d+.
func Fig17(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	L, W := 8, 16
	h, err := grid.NewHex(L, W)
	if err != nil {
		return nil, err
	}
	b := delay.Paper
	offsets := source.Offsets(source.Ramp, W, b, nil)
	run := func(plan *fault.Plan) (*analysis.Wave, error) {
		res, err := core.Run(core.Config{
			Graph:    h.Graph,
			Params:   core.DefaultParams(),
			Delay:    delay.Fixed{D: b.Max},
			Faults:   plan,
			Schedule: source.SinglePulse(offsets),
			Seed:     o.Seed,
		})
		if err != nil {
			return nil, err
		}
		return analysis.WaveFromResult(h.Graph, res, plan, 0), nil
	}

	// Fault-free baseline.
	base, err := run(fault.NewPlan(h.NumNodes()))
	if err != nil {
		return nil, err
	}
	baseMax := 0.0
	for _, v := range base.IntraSkews() {
		if v > baseMax {
			baseMax = v
		}
	}

	bestSkew := sim.Time(0)
	bestNode, bestMask := -1, 0
	for layer := 0; layer < L; layer++ { // upper neighbors must exist
		for col := 0; col < W; col++ {
			n := h.NodeID(layer, col)
			outs := h.Out(n)
			for mask := 0; mask < 1<<len(outs); mask++ {
				plan := fault.NewPlan(h.NumNodes())
				plan.SetBehavior(n, fault.Byzantine)
				for i, l := range outs {
					mode := fault.LinkStuck0
					if mask&(1<<i) != 0 {
						mode = fault.LinkStuck1
					}
					plan.SetLink(n, l.To, mode)
				}
				w, err := run(plan)
				if err != nil {
					return nil, err
				}
				u1, u2 := h.NodeID(layer+1, col-1), h.NodeID(layer+1, col)
				if !w.Valid(u1) || !w.Valid(u2) {
					continue
				}
				if s := sim.AbsTime(w.T[u1] - w.T[u2]); s > bestSkew {
					bestSkew, bestNode, bestMask = s, n, mask
				}
			}
		}
	}
	fig := newFig("Fig. 17: worst single-Byzantine skew under ramp, all delays d+ (exhaustive search)")
	bl, bc := h.Coord(bestNode)
	fig.Sections = append(fig.Sections, fmt.Sprintf(
		"worst fault: node (%d,%d), link mask %04b (stuck-1 bits over out-links)\n", bl, bc, bestMask))
	fig.Data["worst_upper_skew_ns"] = bestSkew.Nanoseconds()
	fig.Data["worst_upper_skew_dplus"] = float64(bestSkew) / float64(b.Max)
	fig.Data["paper_construction_dplus"] = 5
	fig.Data["faultfree_max_intra_ns"] = baseMax
	return fig, nil
}
