package experiment

import (
	"fmt"

	"repro/internal/clocktree"
	"repro/internal/delay"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
)

// GALS models the deployment picture of the paper's introduction: each HEX
// node "supplies the clock to nearby functional units, typically using a
// small local clock tree". A grid of functional units is partitioned into
// domains, one per HEX node; every unit's clock arrival is its domain's HEX
// trigger time plus a small local H-tree path. The quantity that matters to
// the synchronous design style is the unit-to-unit skew between *physically
// adjacent* units — within a domain (local tree jitter only) and across
// domain boundaries (HEX neighbor skew + two local trees).
func GALS(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	runs := reducedRuns(o.Runs)
	b := delay.Paper

	// Local trees: depth 2 (16 units per HEX node), short wires.
	localDelays := clocktree.Delays{
		UnitWire:   200 * sim.Picosecond,
		WireJitter: 0.05,
		BufMin:     161 * sim.Picosecond,
		BufMax:     197 * sim.Picosecond,
	}
	const treeDepth = 2
	tree := clocktree.MustNew(treeDepth)
	unitsPerNode := tree.NumLeaves()

	var intraDomain, interDomain []float64
	spec := Spec{L: o.L, W: o.W, Runs: runs, Seed: o.Seed,
		Scenario: source.UniformDPlus}.WithDefaults()
	outs, err := RunMany(spec)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(sim.DeriveSeed(o.Seed, "gals"))
	for _, out := range outs {
		h := out.Hex
		w := out.Wave
		// One local tree instance per HEX node (independent jitter draws).
		arrivals := make(map[int][]sim.Time)
		for n := 0; n < h.NumNodes(); n++ {
			if !w.Valid(n) {
				continue
			}
			run := tree.Simulate(localDelays, nil, rng)
			times := make([]sim.Time, unitsPerNode)
			for u := 0; u < unitsPerNode; u++ {
				times[u] = w.T[n] + run.Arrival[u]
			}
			arrivals[n] = times
		}
		for n, times := range arrivals {
			// Intra-domain: adjacent units under the same node.
			for row := 0; row < tree.Side; row++ {
				for col := 0; col+1 < tree.Side; col++ {
					a, bb := tree.LeafID(row, col), tree.LeafID(row, col+1)
					intraDomain = append(intraDomain,
						sim.AbsTime(times[a]-times[bb]).Nanoseconds())
				}
			}
			// Inter-domain: the boundary units facing the right-neighbor
			// domain against that domain's left-boundary units.
			r, ok := h.RightNeighbor(n)
			if !ok {
				continue
			}
			rt, ok := arrivals[r]
			if !ok {
				continue
			}
			for row := 0; row < tree.Side; row++ {
				a := tree.LeafID(row, tree.Side-1)
				bb := tree.LeafID(row, 0)
				interDomain = append(interDomain,
					sim.AbsTime(times[a]-rt[bb]).Nanoseconds())
			}
		}
	}

	si, se := stats.Summarize(intraDomain), stats.Summarize(interDomain)
	fig := newFig("GALS: functional-unit skews with local clock trees per HEX node")
	t := &render.Table{
		Header: []string{"unit pair", "avg [ns]", "q95 [ns]", "max [ns]"},
		Note: fmt.Sprintf("%d units per domain (depth-%d local H-trees), %d domains, %d runs",
			unitsPerNode, treeDepth, (o.L+1)*o.W, runs),
	}
	t.AddRow("same domain", render.Ns(si.Avg), render.Ns(si.Q95), render.Ns(si.Max))
	t.AddRow("adjacent domains", render.Ns(se.Avg), render.Ns(se.Q95), render.Ns(se.Max))
	fig.Sections = append(fig.Sections, t.String())
	fig.Data["intra_domain_max_ns"] = si.Max
	fig.Data["inter_domain_max_ns"] = se.Max
	fig.Data["inter_domain_avg_ns"] = se.Avg
	// The multi-synchronous requirement: cross-domain skew well below half
	// a plausible cycle at the effective frequency (Fig. 20's ~1 GHz fast
	// clock would be too tight; at the HEX pulse granularity the relevant
	// comparison is against the pulse separation).
	fig.Data["b_max_ns"] = b.Max.Nanoseconds()
	return fig, nil
}
