package experiment

import "testing"

func TestGALSSkews(t *testing.T) {
	fig, err := GALS(Options{L: 10, W: 8, Runs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	intra := fig.Data["intra_domain_max_ns"]
	inter := fig.Data["inter_domain_max_ns"]
	if intra <= 0 || inter <= 0 {
		t.Fatal("missing skew data")
	}
	// Cross-domain skew is dominated by the HEX neighbor skew and must
	// exceed the local-tree-only intra-domain skew …
	if inter <= intra {
		t.Errorf("inter-domain max %.3f not above intra-domain max %.3f", inter, intra)
	}
	// … but stays bounded (HEX skew + two small local trees).
	if inter > 20 {
		t.Errorf("inter-domain max %.3f ns implausibly large", inter)
	}
	// Local trees alone are sub-ns.
	if intra > 1 {
		t.Errorf("intra-domain max %.3f ns too large for depth-2 trees", intra)
	}
}
