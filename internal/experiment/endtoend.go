package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/pulsegen"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/theory"
)

// EndToEnd runs the full stack the paper envisions: a Byzantine
// fault-tolerant pulse generation network (the FATAL/DARTS role,
// Srikanth–Toueg-style) produces the layer-0 pulses, which the HEX grid
// forwards upward — with Byzantine faults among both the sources and the
// forwarding nodes. It reports the source skew, the HEX neighbor skews per
// pulse, and whether every correct node forwarded every pulse exactly once.
func EndToEnd(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	b := delay.Paper
	to := theory.Condition2(4*b.Max, b, o.L, 2, theory.PaperDrift)
	drift := theory.Drift{Num: 1001, Den: 1000} // 1000 ppm oscillators
	pulses := 8

	fig := newFig("End to end: BFT pulse generation (layer 0) + HEX forwarding")
	t := &render.Table{
		Header: []string{"faulty sources", "faulty nodes", "src skew max",
			"intra avg", "intra q95", "intra max", "complete"},
		Note: "skews in ns over all pulses and runs; complete = every correct node fired once per pulse",
	}

	runs := reducedRuns(o.Runs)
	cases := []struct{ srcFaults, nodeFaults int }{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	for _, cs := range cases {
		var intra []float64
		var srcSkew sim.Time
		complete := true
		for run := 0; run < runs; run++ {
			seed := sim.DeriveSeed(o.Seed, "endtoend",
				fmt.Sprintf("s%d-n%d-run%d", cs.srcFaults, cs.nodeFaults, run))
			h, err := grid.NewHex(o.L, o.W)
			if err != nil {
				return nil, err
			}
			rng := sim.NewRNG(seed)

			// Choose faulty sources under Condition 1 (adjacent faulty
			// sources would starve their common layer-1 neighbor), then
			// generate pulses.
			var faultySources []int
			if cs.srcFaults > 0 {
				placed, err := fault.PlaceRandom(h.Graph, cs.srcFaults, h.Layer(0), rng, 0)
				if err != nil {
					return nil, err
				}
				for _, n := range placed {
					_, col := h.Coord(n)
					faultySources = append(faultySources, col)
				}
			}
			gen, err := pulsegen.Run(pulsegen.Config{
				N:              o.W,
				Faulty:         faultySources,
				AssumedFaults:  maxInt(cs.srcFaults, 2),
				Period:         to.Separation + 4*b.Max,
				Pulses:         pulses,
				Bounds:         b,
				Drift:          drift,
				Seed:           seed,
				ByzantineEager: run%2 == 0,
			})
			if err != nil {
				return nil, err
			}
			if s := gen.MaxSkew(); s > srcSkew {
				srcSkew = s
			}

			// Fault plan: faulty sources plus random faulty forwarders.
			plan := fault.NewPlan(h.NumNodes())
			for _, c := range faultySources {
				plan.SetBehavior(h.NodeID(0, c), fault.FailSilent)
			}
			if cs.nodeFaults > 0 {
				var candidates []int
				for l := 1; l <= h.L; l++ {
					candidates = append(candidates, h.Layer(l)...)
				}
				placed, err := fault.PlaceRandom(h.Graph, cs.nodeFaults, candidates, rng, 0)
				if err != nil {
					return nil, err
				}
				for _, n := range placed {
					plan.SetBehavior(n, fault.Byzantine)
				}
				plan.RandomizeByzantine(h.Graph, rng)
				live, _ := fault.CheckLiveness(h.Graph, plan)
				if ok, _ := fault.Condition1(h.Graph, plan); !ok || !live {
					// Source and node faults are placed independently and
					// may jointly violate separation; skip this run (rare
					// at these densities).
					continue
				}
			}

			res, err := core.Run(core.Config{
				Graph: h.Graph,
				Params: core.Params{
					Bounds:    b,
					TLinkMin:  to.TLinkMin,
					TLinkMax:  to.TLinkMax,
					TSleepMin: to.TSleepMin,
					TSleepMax: to.TSleepMax,
				},
				Delay:    delay.Uniform{Bounds: b},
				Faults:   plan,
				Schedule: gen.Schedule(),
				Seed:     seed,
			})
			if err != nil {
				return nil, err
			}
			pa := analysis.AssignPulses(h.Graph, res, plan, gen.Schedule(), b)
			for k := 0; k < pulses; k++ {
				w := pa.Waves[k]
				intra = append(intra, w.IntraSkews()...)
				for n := 0; n < h.NumNodes(); n++ {
					if h.LayerOf(n) == 0 || w.Excluded[n] {
						continue
					}
					if !pa.Clean[k][n] {
						complete = false
					}
				}
			}
		}
		s := stats.Summarize(intra)
		t.AddRow(fmt.Sprintf("%d", cs.srcFaults), fmt.Sprintf("%d", cs.nodeFaults),
			render.NsTime(srcSkew),
			render.Ns(s.Avg), render.Ns(s.Q95), render.Ns(s.Max),
			fmt.Sprintf("%v", complete))
		key := fmt.Sprintf("s%d_n%d", cs.srcFaults, cs.nodeFaults)
		fig.Data["intra_max_"+key] = s.Max
		fig.Data["complete_"+key] = boolToFloat(complete)
		fig.Data["src_skew_"+key] = srcSkew.Nanoseconds()
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
