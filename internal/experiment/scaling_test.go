package experiment

import "testing"

func TestScalingStaysWithinBounds(t *testing.T) {
	fig, err := Scaling(Options{Runs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{8, 16, 32, 64} {
		max := fig.Data[intKey("intra_max_W", w)]
		bound := fig.Data[intKey("bound_W", w)]
		if max > bound+0.001 {
			t.Errorf("W=%d: measured %.3f above Theorem 1 bound %.3f", w, max, bound)
		}
		if w-2 <= 50 { // Lemma 3 needs layers ≥ W−2 to exist
			dm, okD := fig.Data[intKey("delta_max_W", w)]
			l3, okL := fig.Data[intKey("lemma3_W", w)]
			if !okD || !okL {
				t.Errorf("W=%d: skew potential data missing", w)
			} else if dm > l3+0.001 {
				t.Errorf("W=%d: skew potential %.3f above Lemma 3 bound %.3f", w, dm, l3)
			}
		}
	}
	// Typical skews stay flat while the grid grows 8×.
	if fig.Data["intra_avg_W64"] > 2*fig.Data["intra_avg_W8"]+0.1 {
		t.Errorf("average skew grew with width: %.3f → %.3f",
			fig.Data["intra_avg_W8"], fig.Data["intra_avg_W64"])
	}
}

func intKey(prefix string, w int) string {
	switch w {
	case 8:
		return prefix + "8"
	case 16:
		return prefix + "16"
	case 32:
		return prefix + "32"
	default:
		return prefix + "64"
	}
}
