// Package experiment defines the paper's evaluation scenarios and drives
// them: single-pulse skew statistics (Tables 1–2, Figs. 8–17), the
// self-stabilization experiments (Table 3, Figs. 18–19), the Section 5
// extensions (Figs. 20–21) and the clock-tree comparison behind the title
// claim. Multi-run experiments execute runs in parallel across goroutines;
// each run is an independent deterministic simulation keyed by (Spec, run
// index).
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
)

// Spec describes a family of single-pulse runs.
type Spec struct {
	// L, W are the grid dimensions (defaults 50, 20, the paper's grid).
	L, W int
	// Bounds is the link delay interval (default delay.Paper).
	Bounds delay.Bounds
	// Scenario selects the layer-0 skews.
	Scenario source.Scenario
	// Faults is the number of faulty nodes, placed uniformly at random
	// under Condition 1.
	Faults int
	// FaultType is the failure mode of the faulty nodes (default
	// Byzantine when Faults > 0).
	FaultType fault.Behavior
	// Runs is the number of independent runs (default 250, as in the
	// paper).
	Runs int
	// Seed is the experiment master seed (default 1).
	Seed uint64
	// Params overrides the algorithm parameters; zero value uses
	// DefaultParams with Bounds.
	Params core.Params
	// HexPlus runs on the augmented topology of Section 5 (two additional
	// lower in-neighbors per node) instead of the plain HEX grid.
	HexPlus bool
	// Wedges selects the wedge-parallel engine for each run (see
	// core.Config.Wedges): useful for large single runs; sweeps already
	// parallelize across runs, so per-run wedges mostly matter when Runs is
	// small relative to the CPU count. 0 keeps the serial engine and is NOT
	// part of the spec's identity: results are bit-identical either way.
	Wedges int
}

// WithDefaults fills unset fields with the paper's defaults.
func (s Spec) WithDefaults() Spec {
	if s.L == 0 {
		s.L = 50
	}
	if s.W == 0 {
		s.W = 20
	}
	if s.Bounds == (delay.Bounds{}) {
		s.Bounds = delay.Paper
	}
	if s.Runs == 0 {
		s.Runs = 250
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Faults > 0 && s.FaultType == fault.Correct {
		s.FaultType = fault.Byzantine
	}
	if s.Params == (core.Params{}) {
		s.Params = core.DefaultParams()
		s.Params.Bounds = s.Bounds
	}
	return s
}

// RunOut is the outcome of one single-pulse run.
type RunOut struct {
	Hex  *grid.Hex
	Plan *fault.Plan
	Res  *core.Result
	Wave *analysis.Wave
	// Elapsed is the wall time of the simulation itself (excluding
	// topology construction and wave analysis). Together with Res.Events
	// it gives a per-run events/s throughput; hexd aggregates these into
	// its hexd_events_per_sec gauge.
	Elapsed time.Duration
}

// runSeed derives the master seed of run idx of a spec.
func (s Spec) runSeed(idx int) uint64 {
	return sim.DeriveSeed(s.Seed,
		s.Scenario.Name(),
		fmt.Sprintf("L%d-W%d", s.L, s.W),
		fmt.Sprintf("f%d-%s", s.Faults, s.FaultType),
		fmt.Sprintf("run%d", idx))
}

// buildGrid returns the spec's topology from the process-wide grid cache
// (grid.Shared): a Graph is immutable after construction, so every run —
// across sweeps, service requests, and campaigns — that agrees on
// (topology, L, W) shares one grid, built once per process. The stable
// pointer also keys arena reuse across the whole process instead of one
// sweep.
func (s Spec) buildGrid() (*grid.Hex, error) {
	return grid.Shared.Build(s.L, s.W, s.HexPlus)
}

// RunOne executes run number idx of the spec.
func RunOne(s Spec, idx int) (*RunOut, error) {
	return RunOneCtx(context.Background(), s, idx)
}

// RunOneCtx is RunOne with cancellation: once ctx is done the underlying
// simulation stops early and the context's error is returned.
func RunOneCtx(ctx context.Context, s Spec, idx int) (*RunOut, error) {
	s = s.WithDefaults()
	h, err := s.buildGrid()
	if err != nil {
		return nil, err
	}
	return runOnGrid(ctx, s, h, idx)
}

// arenas pools reusable simulation storage across the runs of a sweep.
// Workers draw an arena per run; consecutive runs on the same topology
// then reuse node states, input flags, trigger accumulators, and event
// queue backing arrays instead of reallocating them (see core.Arena).
var arenas = sync.Pool{New: func() any { return core.NewArena() }}

func runOnGrid(ctx context.Context, s Spec, h *grid.Hex, idx int) (*RunOut, error) {
	seed := s.runSeed(idx)
	offsets := source.Offsets(s.Scenario, s.W, s.Bounds,
		sim.NewRNG(sim.DeriveSeed(seed, "offsets")))

	plan := fault.NewPlan(h.NumNodes())
	if s.Faults > 0 {
		rngF := sim.NewRNG(sim.DeriveSeed(seed, "faults"))
		placed, err := fault.PlaceRandom(h.Graph, s.Faults, nil, rngF, 0)
		if err != nil {
			return nil, err
		}
		for _, n := range placed {
			plan.SetBehavior(n, s.FaultType)
		}
		if s.FaultType == fault.Byzantine {
			plan.RandomizeByzantine(h.Graph, rngF)
		}
	}

	a := arenas.Get().(*core.Arena)
	start := time.Now()
	// Per-run spans feed the request trace of a traced /v1/spec sweep;
	// outside a traced request the context carries no trace and AddSpan is
	// a no-op on the nil receiver. The span list is bounded, so very large
	// sweeps drop (and count) the excess rather than growing the trace.
	defer func() {
		obs.FromContext(ctx).AddSpan(fmt.Sprintf("run[%d]", idx), start, time.Now())
	}()
	res, err := a.Run(core.Config{
		Graph:    h.Graph,
		Params:   s.Params,
		Delay:    delay.Uniform{Bounds: s.Bounds},
		Faults:   plan,
		Schedule: source.SinglePulse(offsets),
		Seed:     seed,
		Wedges:   s.Wedges,
		Context:  ctx,
	})
	elapsed := time.Since(start)
	arenas.Put(a)
	if err != nil {
		return nil, err
	}
	return &RunOut{
		Hex:     h,
		Plan:    plan,
		Res:     res,
		Wave:    analysis.WaveFromResult(h.Graph, res, plan, 0),
		Elapsed: elapsed,
	}, nil
}

// RunMany executes all runs of the spec across a worker pool and returns
// them in run-index order.
func RunMany(s Spec) ([]*RunOut, error) {
	return RunManyCtx(context.Background(), s)
}

// RunManyCtx is RunMany with cancellation: once ctx is done, no further
// runs start, in-flight simulations stop early, and the context's error
// is returned.
func RunManyCtx(ctx context.Context, s Spec) ([]*RunOut, error) {
	s = s.WithDefaults()
	// One grid serves every run: a Graph is immutable after construction,
	// so sharing it across workers is race-free, and it keys the arena
	// reuse (an arena re-slices its storage whenever the topology pointer
	// changes, so per-run grids would defeat the pool).
	endBuild := obs.FromContext(ctx).StartSpan("grid-build")
	h, err := s.buildGrid()
	endBuild()
	if err != nil {
		return nil, err
	}
	outs := make([]*RunOut, s.Runs)
	errs := make([]error, s.Runs)
	parallelFor(ctx, s.Runs, func(idx int) {
		outs[idx], errs[idx] = runOnGrid(ctx, s, h, idx)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// parallelFor runs body(0..n-1) across min(GOMAXPROCS, n) workers,
// dispatching no new indices once ctx is done.
func parallelFor(ctx context.Context, n int, body func(idx int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				body(idx)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
}

// CollectSkews gathers intra- and inter-layer skews (in ns) over all runs,
// after excluding the h-hop outgoing neighborhoods of faulty nodes.
func CollectSkews(outs []*RunOut, hops int) (intra, inter []float64) {
	for _, o := range outs {
		w := o.Wave
		if hops > 0 {
			w = cloneWave(w)
			w.ExcludeFaultyNeighborhood(o.Plan, hops)
		}
		intra = append(intra, w.IntraSkews()...)
		inter = append(inter, w.InterSkews()...)
	}
	return intra, inter
}

// cloneWave copies a wave so exclusions don't mutate the original.
func cloneWave(w *analysis.Wave) *analysis.Wave {
	c := analysis.NewWave(w.G)
	copy(c.T, w.T)
	copy(c.Excluded, w.Excluded)
	return c
}
