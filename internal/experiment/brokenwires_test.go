package experiment

import "testing"

func TestBrokenWiresToleranceAndPrediction(t *testing.T) {
	o := Options{L: 12, W: 8, Runs: 50, Seed: 3}
	runs := float64(reducedRuns(o.Runs))
	fig, err := BrokenWires(o)
	if err != nil {
		t.Fatal(err) // also fails if CheckLiveness mispredicts any node
	}
	// Zero broken wires: everything completes.
	if fig.Data["complete_f0"] != runs {
		t.Errorf("f=0 complete = %v of %v", fig.Data["complete_f0"], runs)
	}
	// HEX tolerates many broken wires: at 5 breaks most runs still
	// complete (far beyond the node-fault budget of this grid size).
	if fig.Data["complete_f5"] < runs/2 {
		t.Errorf("f=5 only %v/%v runs complete", fig.Data["complete_f5"], runs)
	}
	// Skews stay bounded even at 40 broken wires.
	if fig.Data["intra_max_f40"] > 40 {
		t.Errorf("f=40 intra max %v ns", fig.Data["intra_max_f40"])
	}
}
