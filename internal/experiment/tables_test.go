package experiment

import (
	"strconv"
	"testing"

	"repro/internal/delay"
	"repro/internal/source"
)

func cell(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[col], err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Columns: 2 labels + intra avg,q95,max + inter min,q5,avg,q95,max.
	for _, row := range tb.Rows {
		if len(row) != 10 {
			t.Fatalf("row has %d cells", len(row))
		}
	}
	b := delay.Paper
	for i, row := range tb.Rows {
		avg, q95, max := cell(t, row, 2), cell(t, row, 3), cell(t, row, 4)
		if !(avg <= q95 && q95 <= max) {
			t.Errorf("row %d intra ordering broken: %v", i, row)
		}
		imin := cell(t, row, 5)
		imax := cell(t, row, 9)
		if imin > imax {
			t.Errorf("row %d inter ordering broken", i)
		}
		// Scenarios (i)–(iii): all nodes triggered by lower neighbors, so
		// inter min ≈ d− (paper's observation).
		if i < 3 && imin < b.Min.Nanoseconds()-0.01 {
			t.Errorf("row %d inter min %.3f < d−", i, imin)
		}
	}
	// Paper shape: ramp scenario (iv) has the largest intra averages.
	if cell(t, tb.Rows[3], 2) <= cell(t, tb.Rows[0], 2) {
		t.Error("ramp scenario should have larger avg intra skew than scenario (i)")
	}
}

func TestTable2WorseThanTable1(t *testing.T) {
	o := small()
	t1, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	// One Byzantine node must not reduce every skew statistic; at least
	// the max intra skew over all scenarios should grow.
	var max1, max2 float64
	for i := range t1.Rows {
		if v := cell(t, t1.Rows[i], 4); v > max1 {
			max1 = v
		}
		if v := cell(t, t2.Rows[i], 4); v > max2 {
			max2 = v
		}
	}
	if max2 <= max1 {
		t.Errorf("Byzantine max intra %.3f not above fault-free %.3f", max2, max1)
	}
}

func TestStableSkews(t *testing.T) {
	o := small()
	o.Runs = 4
	sig, err := StableSkews(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 4 {
		t.Fatalf("got %d scenarios", len(sig))
	}
	b := delay.Paper
	for sc, s := range sig {
		// σ includes the d+ slack, so it exceeds d+.
		if s <= b.Max {
			t.Errorf("scenario %v: σ = %v too small", sc, s)
		}
	}
	// Ramp should need the largest stable skew (paper Table 3 ordering).
	if sig[source.Ramp] <= sig[source.Zero] {
		t.Errorf("σ(ramp)=%v not above σ(zero)=%v", sig[source.Ramp], sig[source.Zero])
	}
}

func TestTable3ConsistentWithCondition2(t *testing.T) {
	o := small()
	o.Runs = 4
	tb, timeouts, err := Table3(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 || len(timeouts) != 4 {
		t.Fatal("table 3 shape wrong")
	}
	for _, to := range timeouts {
		if to.TLinkMin >= to.TLinkMax || to.TSleepMin >= to.TSleepMax {
			t.Error("ϑ-stretching missing")
		}
		if to.TSleepMin != 2*to.TLinkMax+2*delay.Paper.Max {
			t.Error("T−sleep formula broken")
		}
		if to.Separation <= to.TSleepMin+to.TSleepMax {
			t.Error("S too small")
		}
	}
	// Rows carry 8 columns each and parse as numbers from column 2 on.
	for _, row := range tb.Rows {
		if len(row) != 8 {
			t.Fatalf("row has %d cells", len(row))
		}
		prev := 0.0
		for c := 3; c < 8; c++ {
			v := cell(t, row, c)
			if v < prev { // T−link ≤ T+link ≤ T−sleep ≤ T+sleep ≤ S
				t.Errorf("timeout ordering broken in row %v", row)
			}
			prev = v
		}
	}
}
