package experiment

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/theory"
)

func testTimeouts() theory.Timeouts {
	return theory.Condition2(3*delay.Paper.Max, delay.Paper, 12, 2, theory.PaperDrift)
}

func TestStabSpecDefaults(t *testing.T) {
	s := StabSpec{}.WithDefaults()
	if s.Pulses != 10 || s.Runs != 250 || s.L != 50 || s.W != 20 {
		t.Errorf("defaults: %+v", s)
	}
}

func TestStabRunFaultFreeStabilizes(t *testing.T) {
	s := StabSpec{
		L: 10, W: 8, Runs: 4, Pulses: 8, Seed: 3,
		Scenario: source.UniformDPlus, Timeouts: testTimeouts(),
	}
	outs, err := StabRunMany(s)
	if err != nil {
		t.Fatal(err)
	}
	st := EvaluateStabilization(outs, s, 1, 0)
	if st.Stabilized != st.Runs {
		t.Errorf("only %d/%d runs stabilized", st.Stabilized, st.Runs)
	}
	// With link timeouts, stabilization within the first few pulses.
	if st.AvgPulse > 3 {
		t.Errorf("avg stabilization pulse %.2f too late", st.AvgPulse)
	}
}

func TestStabRunWithByzantineFaults(t *testing.T) {
	s := StabSpec{
		L: 10, W: 8, Runs: 4, Pulses: 8, Seed: 5,
		Scenario: source.UniformDPlus, Faults: 1, FaultType: fault.Byzantine,
		Timeouts: testTimeouts(),
	}
	outs, err := StabRunMany(s)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative threshold (C=0) should stabilize most runs despite the
	// fault; h=1 exclusion must do at least as well.
	st0 := EvaluateStabilization(outs, s, 0, 0)
	st1 := EvaluateStabilization(outs, s, 0, 1)
	if st1.Stabilized < st0.Stabilized {
		t.Errorf("h=1 (%d) stabilized fewer runs than h=0 (%d)", st1.Stabilized, st0.Stabilized)
	}
	if st1.Stabilized == 0 {
		t.Error("no run stabilized even with 1-hop exclusion")
	}
}

func TestSigmaChoiceShapes(t *testing.T) {
	b := delay.Paper
	// C = 0: Lemma 5-style, grows with layer and f.
	s0 := SigmaChoice(0, source.UniformDPlus, 20, 2, b)
	if s0(5) >= s0(10) {
		t.Error("C=0 threshold not increasing in layer")
	}
	s0f := SigmaChoice(0, source.UniformDPlus, 20, 5, b)
	if s0(5) >= s0f(5) {
		t.Error("C=0 threshold not increasing in f")
	}
	// C ≥ 1: constant (4−C)·d+ above layer 0.
	for c := 1; c <= 3; c++ {
		sc := SigmaChoice(c, source.UniformDPlus, 20, 2, b)
		want := sim.Time(4-c) * b.Max
		if sc(1) != want || sc(30) != want {
			t.Errorf("C=%d threshold = %v, want %v", c, sc(1), want)
		}
	}
	// Layer-0 value reflects the scenario's neighbor skew bound.
	if SigmaChoice(1, source.Zero, 20, 0, b)(0) != 0 {
		t.Error("scenario (i) layer-0 sigma should be 0")
	}
	if SigmaChoice(1, source.Ramp, 20, 0, b)(0) != b.Max {
		t.Error("ramp layer-0 sigma should be d+")
	}
}

func TestEvaluateStabilizationDoesNotMutate(t *testing.T) {
	s := StabSpec{
		L: 8, W: 6, Runs: 2, Pulses: 6, Seed: 7,
		Scenario: source.Zero, Faults: 1, Timeouts: testTimeouts(),
	}
	outs, err := StabRunMany(s)
	if err != nil {
		t.Fatal(err)
	}
	before := outs[0].PA.Waves[2].TriggeredCount()
	EvaluateStabilization(outs, s, 1, 1) // h=1 must clone, not mutate
	after := outs[0].PA.Waves[2].TriggeredCount()
	if before != after {
		t.Error("EvaluateStabilization mutated the stored assignment")
	}
}

func TestAblationLinkTimeoutsShape(t *testing.T) {
	fig, err := AblationLinkTimeouts(Options{L: 10, W: 8, Runs: 6, Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	on := fig.Data["stabilized_timers_on_C1"]
	off := fig.Data["stabilized_timers_off_C1"]
	if on < off {
		t.Errorf("link timers made stabilization worse: on=%v off=%v", on, off)
	}
	if on == 0 {
		t.Error("nothing stabilized with timers on")
	}
}

// TestStabRunManyCtxCancelled verifies the multi-run stabilization driver
// honors cancellation: a pre-cancelled context yields the context's error
// without completing the sweep.
func TestStabRunManyCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := StabSpec{L: 12, W: 8, Runs: 8, Seed: 3,
		Scenario: source.UniformDPlus, Timeouts: testTimeouts()}
	if _, err := StabRunManyCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStabRunManyCtxDeterministic verifies that the cancellable path with a
// never-cancelled context produces the same outcome as the plain one.
func TestStabRunManyCtxDeterministic(t *testing.T) {
	spec := StabSpec{L: 10, W: 8, Runs: 4, Seed: 5,
		Scenario: source.UniformDPlus, Timeouts: testTimeouts()}
	a, err := StabRunMany(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StabRunManyCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("run counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		wa, wb := a[i].PA.Waves, b[i].PA.Waves
		if len(wa) != len(wb) {
			t.Fatalf("run %d: wave counts differ", i)
		}
		for k := range wa {
			for n := range wa[k].T {
				if wa[k].T[n] != wb[k].T[n] {
					t.Fatalf("run %d pulse %d node %d: %v vs %v", i, k, n, wa[k].T[n], wb[k].T[n])
				}
			}
		}
	}
}
