package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/clocktree"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/freqmult"
	"repro/internal/grid"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// Fig20 reproduces the frequency multiplication discussion of Fig. 20:
// given Condition 2 timeouts for scenario (iii), it measures the minimal
// pulse separation Λmin seen by any node over a multi-pulse run, derives
// the largest multiplier M for a set of oscillator periods, and reports
// the resulting amortized fast-clock frequencies and worst-case fast skews
// (HEX skew plus drift accumulation), including a measured fast skew from
// simulated tick trains.
func Fig20(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	calib := o
	calib.Runs = reducedRuns(o.Runs)
	to, err := CalibrateTimeouts(calib, source.UniformDPlus, 0)
	if err != nil {
		return nil, err
	}
	spec := StabSpec{
		L: o.L, W: o.W, Runs: 1, Seed: o.Seed,
		Scenario: source.UniformDPlus, Pulses: 10, Timeouts: to,
	}.WithDefaults()
	out, err := StabRunOne(spec, 0)
	if err != nil {
		return nil, err
	}

	// Λmin: the minimal pulse separation observed at any node, and the
	// maximal neighbor skew of the settled pulses.
	lambdaMin := sim.MaxTime
	g := out.Hex.Graph
	for n := 0; n < g.NumNodes(); n++ {
		var prev sim.Time = analysis.Missing
		for k := range out.PA.Waves {
			t := out.PA.Waves[k].T[n]
			if t == analysis.Missing {
				continue
			}
			if prev != analysis.Missing && t-prev < lambdaMin {
				lambdaMin = t - prev
			}
			prev = t
		}
	}
	var hexSkew sim.Time
	for _, w := range out.PA.Waves[1:] { // skip the possibly-unsettled first pulse
		for _, v := range w.IntraSkews() {
			if s := sim.FromNanoseconds(v); s > hexSkew {
				hexSkew = s
			}
		}
	}

	fig := newFig("Fig. 20: frequency multiplication window and fast-clock skew")
	fig.Sections = append(fig.Sections, fmt.Sprintf(
		"pulse separation S=%v, measured Λmin=%v, measured HEX skew=%v, drift ϑ=%.2f",
		to.Separation, lambdaMin, hexSkew, theory.PaperDrift.Float()))

	t := &render.Table{
		Header: []string{"osc period", "M", "window", "eff. freq [GHz]", "fast skew bound", "fast skew measured"},
	}
	rng := sim.NewRNG(sim.DeriveSeed(o.Seed, "freqmult"))
	for _, period := range []sim.Time{500 * sim.Picosecond, sim.Nanosecond, 2 * sim.Nanosecond} {
		m := freqmult.MaxMultiplier(lambdaMin, period, theory.PaperDrift)
		if m < 1 {
			t.AddRow(period.String(), "0", "-", "-", "-", "-")
			continue
		}
		p := freqmult.Params{NominalPeriod: period, Multiplier: m, Drift: theory.PaperDrift}
		// Measure fast skew over the settled neighbor pairs of pulse 1.
		w := out.PA.Waves[1]
		var measured sim.Time
		trains := make(map[int][]sim.Time)
		train := func(n int) []sim.Time {
			if tr, ok := trains[n]; ok {
				return tr
			}
			tr := freqmult.Ticks(w.T[n], p, rng)
			trains[n] = tr
			return tr
		}
		for l := 1; l < g.NumLayers(); l++ {
			for _, n := range g.Layer(l) {
				r, ok := g.RightNeighbor(n)
				if !ok || !w.Valid(n) || !w.Valid(r) {
					continue
				}
				if s := freqmult.MeasureSkew(train(n), train(r)); s > measured {
					measured = s
				}
			}
		}
		bound := freqmult.SkewBound(hexSkew, p)
		t.AddRow(period.String(), fmt.Sprintf("%d", m), p.WindowRequired().String(),
			fmt.Sprintf("%.3f", freqmult.EffectiveFrequencyGHz(p, to.Separation)),
			bound.String(), measured.String())
		fig.Data[fmt.Sprintf("M_period_%dps", period.Picoseconds())] = float64(m)
		fig.Data[fmt.Sprintf("fastskew_bound_ns_%dps", period.Picoseconds())] = bound.Nanoseconds()
		fig.Data[fmt.Sprintf("fastskew_meas_ns_%dps", period.Picoseconds())] = measured.Nanoseconds()
	}
	fig.Sections = append(fig.Sections, t.String())
	fig.Data["lambda_min_ns"] = lambdaMin.Nanoseconds()
	fig.Data["hex_skew_ns"] = hexSkew.Nanoseconds()
	return fig, nil
}

// Fig21 exercises the alternative doubling-layer topology of Fig. 21: a
// circular arrangement whose layer widths double on a geometric schedule.
// A pulse wave is propagated and per-layer skews reported; doubling layers
// should not behave worse than normal ones.
func Fig21(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	layers := 12
	sched := grid.GeometricDoubling(layers)
	d, err := grid.NewDoubling(6, sched)
	if err != nil {
		return nil, err
	}
	b := delay.Paper
	runs := reducedRuns(o.Runs)

	perLayerMax := make([]float64, layers+1)
	var worst float64
	for run := 0; run < runs; run++ {
		seed := sim.DeriveSeed(o.Seed, "fig21", fmt.Sprintf("run%d", run))
		offsets := make([]sim.Time, d.Widths[0])
		plan := fault.NewPlan(d.NumNodes())
		res, err := core.Run(core.Config{
			Graph:    d.Graph,
			Params:   core.DefaultParams(),
			Delay:    delay.Uniform{Bounds: b},
			Faults:   plan,
			Schedule: source.SinglePulse(offsets),
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		w := analysis.WaveFromResult(d.Graph, res, plan, 0)
		for l := 1; l <= layers; l++ {
			if m := w.MaxIntraSkewLayer(l); m >= 0 {
				ns := m.Nanoseconds()
				if ns > perLayerMax[l] {
					perLayerMax[l] = ns
				}
				if ns > worst {
					worst = ns
				}
			}
		}
	}

	fig := newFig("Fig. 21: doubling-layer topology, per-layer max intra skew")
	t := &render.Table{Header: []string{"layer", "width", "doubling", "max intra skew [ns]"}}
	var dblWorst, normWorst float64
	for l := 1; l <= layers; l++ {
		dbl := sched[l-1]
		t.AddRow(fmt.Sprintf("%d", l), fmt.Sprintf("%d", d.Widths[l]),
			fmt.Sprintf("%v", dbl), render.Ns(perLayerMax[l]))
		if dbl {
			if perLayerMax[l] > dblWorst {
				dblWorst = perLayerMax[l]
			}
		} else if perLayerMax[l] > normWorst {
			normWorst = perLayerMax[l]
		}
	}
	fig.Sections = append(fig.Sections, t.String())
	fig.Data["max_intra_skew_ns"] = worst
	fig.Data["max_intra_doubling_ns"] = dblWorst
	fig.Data["max_intra_normal_ns"] = normWorst
	fig.Data["dplus_ns"] = b.Max.Nanoseconds()
	return fig, nil
}

// TreeCompare backs the title claim: it compares HEX grids against balanced
// H-trees of equal size on (a) worst neighbor wire length, (b) measured
// neighbor skews under comparable per-unit delay quality, and (c) the blast
// radius of a single fault.
func TreeCompare(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	b := delay.Paper
	runs := reducedRuns(o.Runs)
	fig := newFig("HEX vs. clock tree: skew and robustness vs. size")
	t := &render.Table{
		Header: []string{"n", "tree wire(max nbr)", "hex wire(nbr)",
			"tree skew avg", "tree skew max", "hex skew avg", "hex skew max",
			"tree dead avg", "tree dead max", "hex dead"},
		Note: "wire in leaf-pitch units; skews in ns; dead = functional units losing their clock after one random fault",
	}
	// Per-unit tree delay quality matched to a HEX link spanning one unit:
	// mean delay (d−+d+)/2 per unit, relative jitter ε/(d−+d+).
	unit := (b.Min + b.Max) / 2
	jitter := float64(b.Epsilon()) / float64(b.Min+b.Max)
	treeDelays := clocktree.Delays{
		UnitWire:   unit,
		WireJitter: jitter,
		BufMin:     161 * sim.Picosecond,
		BufMax:     197 * sim.Picosecond,
	}
	for _, depth := range []int{3, 4, 5} {
		tree := clocktree.MustNew(depth)
		n := tree.NumLeaves()
		side := tree.Side

		// Tree: fault-free skews and single-fault blast radius.
		var treeSkews []float64
		var deadCounts []float64
		rng := sim.NewRNG(sim.DeriveSeed(o.Seed, "tree", fmt.Sprintf("d%d", depth)))
		for r := 0; r < runs; r++ {
			run := tree.Simulate(treeDelays, nil, rng)
			treeSkews = append(treeSkews, run.NeighborSkews()...)
			buf := tree.RandomBuffer(rng)
			frun := tree.Simulate(treeDelays, []clocktree.NodeRef{buf}, rng)
			deadCounts = append(deadCounts, float64(frun.DeadLeaves()))
		}

		// HEX of the same size: W = side, L = side − 1 → n nodes.
		spec := Spec{L: side - 1, W: side, Runs: runs, Seed: o.Seed,
			Scenario: source.Zero}.WithDefaults()
		outs, err := RunMany(spec)
		if err != nil {
			return nil, err
		}
		// Inter-layer skews carry a known bias of ≈ one link delay, which
		// "can be compensated by subtracting s at the application level"
		// (Section 5); compare the tree against the bias-compensated
		// neighbor skews.
		intra, inter := CollectSkews(outs, 0)
		bias := stats.Mean(inter)
		hexSkews := intra
		for _, v := range inter {
			hexSkews = append(hexSkews, absF(v-bias))
		}

		ts, hs := stats.Summarize(treeSkews), stats.Summarize(hexSkews)
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", tree.WorstNeighborWireLength()), "1",
			render.Ns(ts.Avg), render.Ns(ts.Max), render.Ns(hs.Avg), render.Ns(hs.Max),
			fmt.Sprintf("%.1f", stats.Mean(deadCounts)), fmt.Sprintf("%.0f", stats.Max(deadCounts)),
			"0")
		fig.Data[fmt.Sprintf("tree_skew_max_n%d", n)] = ts.Max
		fig.Data[fmt.Sprintf("hex_skew_max_n%d", n)] = hs.Max
		fig.Data[fmt.Sprintf("tree_dead_max_n%d", n)] = stats.Max(deadCounts)
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}

// AblationGuard compares Algorithm 1's adjacent-pair guard against a naive
// any-two-of-four threshold guard on the two scenarios where they actually
// differ:
//
//   - Safety: a victim whose left and right neighbors are both Byzantine
//     with constant-1 outputs (two faults, deliberately violating
//     Condition 1). The naive guard accepts the non-adjacent (left, right)
//     pair and emits a false pulse at time 0; Algorithm 1's guard, whose
//     every pair contains a lower-layer neighbor, stays safe.
//   - Liveness: two adjacent crashed nodes below a common upper neighbor.
//     The adjacent-pair guard starves that neighbor (Section 3.2); the
//     naive guard keeps it alive via its intra-layer neighbors — the
//     trade-off Algorithm 1 resolves in favor of safety.
func AblationGuard(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	h, err := grid.NewHex(o.L, o.W)
	if err != nil {
		return nil, err
	}
	b := delay.Paper
	victim := h.NodeID(o.L/2, o.W/2)

	run := func(guard core.GuardMode, plan *fault.Plan, offsets []sim.Time, seed uint64) (*analysis.Wave, error) {
		params := core.DefaultParams()
		params.Guard = guard
		res, err := core.Run(core.Config{
			Graph:    h.Graph,
			Params:   params,
			Delay:    delay.Uniform{Bounds: b},
			Faults:   plan,
			Schedule: source.SinglePulse(offsets),
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		return analysis.WaveFromResult(h.Graph, res, plan, 0), nil
	}

	// Safety scenario: Byzantine left and right neighbors of the victim,
	// all outputs stuck at 1; delay the real pulse to make false pulses
	// unambiguous.
	safetyPlan := fault.NewPlan(h.NumNodes())
	left, _ := h.LeftNeighbor(victim)
	right, _ := h.RightNeighbor(victim)
	for _, bad := range []int{left, right} {
		safetyPlan.SetBehavior(bad, fault.Byzantine)
		for _, out := range h.Out(bad) {
			safetyPlan.SetLink(bad, out.To, fault.LinkStuck1)
		}
	}
	lateOffsets := make([]sim.Time, o.W)
	for i := range lateOffsets {
		lateOffsets[i] = 500 * sim.Nanosecond
	}

	// Liveness scenario: the victim's two lower neighbors crash.
	livenessPlan := fault.NewPlan(h.NumNodes())
	ll, _ := h.LowerLeftNeighbor(victim)
	lr, _ := h.LowerRightNeighbor(victim)
	livenessPlan.SetBehavior(ll, fault.FailSilent)
	livenessPlan.SetBehavior(lr, fault.FailSilent)

	fig := newFig("Ablation: adjacent-pair guard vs. any-two guard")
	t := &render.Table{
		Header: []string{"guard", "false pulse (2 stuck-1 nbrs)", "victim alive (2 crashed lowers)"},
		Note:   "false pulse = victim fires before the delayed real wave; Algorithm 1 trades the liveness case for safety",
	}
	for _, g := range []core.GuardMode{core.GuardAdjacent, core.GuardAnyTwo} {
		sw, err := run(g, safetyPlan, lateOffsets, o.Seed)
		if err != nil {
			return nil, err
		}
		falsePulse := sw.T[victim] != analysis.Missing && sw.T[victim] < 500*sim.Nanosecond
		lw, err := run(g, livenessPlan, make([]sim.Time, o.W), o.Seed)
		if err != nil {
			return nil, err
		}
		alive := lw.T[victim] != analysis.Missing
		t.AddRow(g.String(), fmt.Sprintf("%v", falsePulse), fmt.Sprintf("%v", alive))
		fig.Data["false_pulse_"+g.String()] = boolToFloat(falsePulse)
		fig.Data["victim_alive_"+g.String()] = boolToFloat(alive)
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}

// AblationEpsilon sweeps the delay uncertainty ε at fixed d+ and compares
// the measured maximal intra-layer skew against Theorem 1's bound,
// including ratios beyond the theorem's ε ≤ d+/7 requirement.
func AblationEpsilon(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	fig := newFig("Ablation: skew vs. delay uncertainty ε (scenario (iii), fault-free)")
	t := &render.Table{
		Header: []string{"eps/d+", "d-", "d+", "intra max [ns]", "thm1 bound [ns]", "within bound"},
	}
	dplus := delay.Paper.Max
	for _, den := range []int64{14, 7, 4, 2} {
		eps := sim.Time(int64(dplus) / den)
		b := delay.Bounds{Min: dplus - eps, Max: dplus}
		spec := Spec{
			L: o.L, W: o.W, Runs: reducedRuns(o.Runs), Seed: o.Seed,
			Bounds: b, Scenario: source.UniformDPlus,
		}.WithDefaults()
		spec.Params.Bounds = b
		outs, err := RunMany(spec)
		if err != nil {
			return nil, err
		}
		intra, _ := CollectSkews(outs, 0)
		var worst float64
		for _, v := range intra {
			if v > worst {
				worst = v
			}
		}
		// Scenario (iii) has Δ0 ≤ ε; use the general-layer bound with the
		// conservative low-layer form.
		bound := theory.Theorem1IntraBound(1, o.W, b, b.Epsilon())
		within := "yes"
		if sim.FromNanoseconds(worst) > bound {
			within = "NO"
		}
		t.AddRow(fmt.Sprintf("1/%d", den), b.Min.String(), b.Max.String(),
			render.Ns(worst), render.NsTime(bound), within)
		fig.Data[fmt.Sprintf("intra_max_eps_1_%d", den)] = worst
		fig.Data[fmt.Sprintf("bound_eps_1_%d", den)] = bound.Nanoseconds()
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}

// ExtensionHexPlus evaluates the Section 5 proposal for decreasing skews
// further: augmenting every node with two additional in-neighbors from the
// previous layer (the HEX+ topology). The paper predicts that the extra
// lower in-neighbors remove the need for intra-layer "help" next to a
// faulty lower neighbor, mitigating — "if not eliminating entirely" — the
// fault-induced skew increase. The sweep mirrors Fig. 15 on both
// topologies.
func ExtensionHexPlus(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	fig := newFig("Extension: HEX vs. HEX+ (additional lower in-neighbors), scenario (iii)")
	t := &render.Table{
		Header: []string{"topology", "f", "intra avg", "intra q95", "intra max", "inter max"},
	}
	for _, plus := range []bool{false, true} {
		name := "HEX"
		if plus {
			name = "HEX+"
		}
		for f := 0; f <= 4; f++ {
			spec := Spec{
				L: o.L, W: o.W, Runs: o.Runs, Seed: o.Seed,
				Scenario: source.UniformDPlus, Faults: f, FaultType: fault.Byzantine,
				HexPlus: plus,
			}.WithDefaults()
			outs, err := RunMany(spec)
			if err != nil {
				return nil, err
			}
			intra, inter := CollectSkews(outs, 0)
			si, se := stats.Summarize(intra), stats.Summarize(inter)
			interMax := absF(se.Max)
			if a := absF(se.Min); a > interMax {
				interMax = a
			}
			t.AddRow(name, fmt.Sprintf("%d", f),
				render.Ns(si.Avg), render.Ns(si.Q95), render.Ns(si.Max), render.Ns(interMax))
			fig.Data[fmt.Sprintf("intra_max_%s_f%d", name, f)] = si.Max
			fig.Data[fmt.Sprintf("intra_avg_%s_f%d", name, f)] = si.Avg
		}
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}
