package experiment

import "testing"

func TestRingOscCompare(t *testing.T) {
	fig, err := RingOscCompare(Options{Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Data["ringosc_alive_healthy"] != 256 {
		t.Errorf("healthy oscillator: %v alive", fig.Data["ringosc_alive_healthy"])
	}
	if fig.Data["ringosc_alive_faulty"] != 0 {
		t.Errorf("faulty oscillator still alive: %v", fig.Data["ringosc_alive_faulty"])
	}
	if fig.Data["hex_alive_faulty"] != 255 {
		t.Errorf("HEX with one fault: %v of 256 clocked", fig.Data["hex_alive_faulty"])
	}
}
