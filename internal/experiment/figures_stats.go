package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/render"
	"repro/internal/source"
	"repro/internal/stats"
)

// histFigure is the shared skeleton of Figs. 10 and 11: cumulated intra-
// and inter-layer skew histograms over all runs of one scenario.
func histFigure(title string, o Options, sc source.Scenario) (*FigResult, error) {
	outs, err := RunMany(o.spec(sc, 0, fault.Correct))
	if err != nil {
		return nil, err
	}
	intra, inter := CollectSkews(outs, 0)
	fig := newFig(title)
	fig.Sections = append(fig.Sections,
		render.Histogram(render.Hist(intra, 24), 48, "intra-layer skew [ns]"),
		render.Histogram(render.Hist(inter, 24), 48, "inter-layer skew [ns]"))
	si, se := stats.Summarize(intra), stats.Summarize(inter)
	fig.Data["intra_avg_ns"] = si.Avg
	fig.Data["intra_q95_ns"] = si.Q95
	fig.Data["intra_max_ns"] = si.Max
	fig.Data["inter_min_ns"] = se.Min
	fig.Data["inter_avg_ns"] = se.Avg
	fig.Data["inter_max_ns"] = se.Max
	// Tail mass beyond q95 quantifies the "sharp concentration with an
	// exponential tail" observation.
	fig.Data["intra_frac_above_2q95"] = fracAbove(intra, 2*si.Q95)
	return fig, nil
}

func fracAbove(xs []float64, thresh float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > thresh {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Fig10 reproduces Fig. 10: cumulated skew histograms for scenario (i) —
// sharply concentrated with an exponential tail.
func Fig10(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return histFigure("Fig. 10: cumulated skew histograms, scenario (i)", o, source.Zero)
}

// Fig11 reproduces Fig. 11: histograms for scenario (iv), with the visible
// tail cluster caused by the large initial skews.
func Fig11(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return histFigure("Fig. 11: cumulated skew histograms, scenario (iv)", o, source.Ramp)
}

// Fig12 reproduces Fig. 12: per-layer inter-layer skew series (min, avg,
// max, std over runs) for scenarios (iii) and (iv), truncated to 30 layers.
// The discrepant skews of the lower layers smooth out after layer W−2, in
// accordance with Lemma 3.
func Fig12(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	fig := newFig("Fig. 12: inter-layer skews per layer (min/avg/max over runs)")
	for _, sc := range []source.Scenario{source.UniformDPlus, source.Ramp} {
		outs, err := RunMany(o.spec(sc, 0, fault.Correct))
		if err != nil {
			return nil, err
		}
		maxLayer := 30
		if maxLayer > o.L {
			maxLayer = o.L
		}
		t := &render.Table{
			Title:  fmt.Sprintf("scenario %v", sc),
			Header: []string{"layer", "min[ns]", "avg[ns]", "max[ns]", "std[ns]"},
		}
		var preW2, postW2 []float64 // max skews before/after layer W−2
		for l := 1; l <= maxLayer; l++ {
			var vals []float64
			for _, o := range outs {
				vals = append(vals, o.Wave.InterSkewsLayer(l)...)
			}
			if len(vals) == 0 {
				continue
			}
			mx := stats.Max(vals)
			t.AddRow(fmt.Sprintf("%d", l),
				render.Ns(stats.Min(vals)), render.Ns(stats.Mean(vals)),
				render.Ns(mx), render.Ns(stats.Std(vals)))
			if l < o.W-2 {
				preW2 = append(preW2, mx)
			} else {
				postW2 = append(postW2, mx)
			}
		}
		fig.Sections = append(fig.Sections, t.String())
		if len(preW2) > 0 && len(postW2) > 0 {
			fig.Data["max_inter_pre_W2_"+sc.Name()] = stats.Max(preW2)
			fig.Data["max_inter_post_W2_"+sc.Name()] = stats.Max(postW2)
		}
	}
	return fig, nil
}

// faultSweepFigure is the shared skeleton of Figs. 15 and 16: five-number
// summaries of the intra- and inter-layer skews for f ∈ [0, maxFaults]
// Byzantine nodes, with the faulty nodes' outgoing h-hop neighborhoods
// removed for h ∈ {0, 1}. The paper's figures are box plots of the
// *per-run* operators σ^op_ρ (min, q5, avg, q95, max computed within each
// run, then distributed over the 250 runs); a second table reports those.
func faultSweepFigure(title string, o Options, sc source.Scenario, maxFaults int, ft fault.Behavior) (*FigResult, error) {
	fig := newFig(title)
	for _, hops := range []int{0, 1} {
		t := &render.Table{
			Title: fmt.Sprintf("h=%d hop exclusion (pooled over runs)", hops),
			Header: []string{"f",
				"intra avg", "intra q95", "intra max",
				"inter min", "inter q5", "inter avg", "inter q95", "inter max"},
		}
		box := &render.Table{
			Title: fmt.Sprintf("h=%d per-run operator distributions (box-plot data: median [min..max] over runs)", hops),
			Header: []string{"f",
				"intra avg/run", "intra q95/run", "intra max/run",
				"inter q95/run", "inter max/run"},
		}
		var plotLabels []string
		var plotSums []stats.Summary
		for f := 0; f <= maxFaults; f++ {
			outs, err := RunMany(o.spec(sc, f, ft))
			if err != nil {
				return nil, err
			}
			intra, inter := CollectSkews(outs, hops)
			si, se := stats.Summarize(intra), stats.Summarize(inter)
			t.AddRow(fmt.Sprintf("%d", f),
				render.Ns(si.Avg), render.Ns(si.Q95), render.Ns(si.Max),
				render.Ns(se.Min), render.Ns(se.Q5), render.Ns(se.Avg),
				render.Ns(se.Q95), render.Ns(se.Max))
			key := fmt.Sprintf("intra_max_f%d_h%d", f, hops)
			fig.Data[key] = si.Max

			perRun := perRunOps(outs, hops)
			box.AddRow(fmt.Sprintf("%d", f),
				boxCell(perRun.intraAvg), boxCell(perRun.intraQ95), boxCell(perRun.intraMax),
				boxCell(perRun.interQ95), boxCell(perRun.interMax))
			fig.Data[fmt.Sprintf("intra_max_run_median_f%d_h%d", f, hops)] =
				stats.Quantile(perRun.intraMax, 0.5)
			if len(perRun.intraMax) > 0 {
				plotLabels = append(plotLabels, fmt.Sprintf("f=%d", f))
				plotSums = append(plotSums, stats.Summarize(perRun.intraMax))
			}
		}
		plot := fmt.Sprintf("h=%d box plots of per-run intra max [ns]:\n%s",
			hops, render.BoxPlot(plotLabels, plotSums, 56))
		fig.Sections = append(fig.Sections, t.String(), box.String(), plot)
	}
	return fig, nil
}

// perRunValues holds one operator value per run.
type perRunValues struct {
	intraAvg, intraQ95, intraMax []float64
	interQ95, interMax           []float64
}

// perRunOps computes the per-run skew operators behind the paper's box
// plots.
func perRunOps(outs []*RunOut, hops int) perRunValues {
	var v perRunValues
	for _, o := range outs {
		intra, inter := CollectSkews([]*RunOut{o}, hops)
		if len(intra) > 0 {
			si := stats.Summarize(intra)
			v.intraAvg = append(v.intraAvg, si.Avg)
			v.intraQ95 = append(v.intraQ95, si.Q95)
			v.intraMax = append(v.intraMax, si.Max)
		}
		if len(inter) > 0 {
			se := stats.Summarize(inter)
			v.interQ95 = append(v.interQ95, se.Q95)
			v.interMax = append(v.interMax, se.Max)
		}
	}
	return v
}

// boxCell formats a per-run operator distribution as "median [min..max]".
func boxCell(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f [%.2f..%.2f]",
		stats.Quantile(xs, 0.5), stats.Min(xs), stats.Max(xs))
}

// Fig15 reproduces Fig. 15: skews vs. number of Byzantine faults under
// scenario (iii); with h=1 exclusion the fault effects essentially
// disappear (fault locality).
func Fig15(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return faultSweepFigure("Fig. 15: skews vs. Byzantine faults, scenario (iii)", o, source.UniformDPlus, 5, fault.Byzantine)
}

// Fig16 reproduces Fig. 16: the same sweep under the ramp scenario (iv),
// where a single fault already causes essentially the worst-case skew and
// multiple faults do not accumulate.
func Fig16(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return faultSweepFigure("Fig. 16: skews vs. Byzantine faults, scenario (iv)", o, source.Ramp, 5, fault.Byzantine)
}

// Fig15Crash runs Fig. 15's sweep with fail-silent instead of Byzantine
// nodes. The paper reports (Section 4.3, citing [32]) that crash faults
// are more benign: "all results are qualitatively similar, albeit with
// smaller skews".
func Fig15Crash(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return faultSweepFigure("Fig. 15 variant: skews vs. fail-silent faults, scenario (iii)", o, source.UniformDPlus, 5, fault.FailSilent)
}

// Fig16Crash is the fail-silent variant of Fig. 16.
func Fig16Crash(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	return faultSweepFigure("Fig. 16 variant: skews vs. fail-silent faults, scenario (iv)", o, source.Ramp, 5, fault.FailSilent)
}
