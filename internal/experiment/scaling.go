package experiment

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// Scaling sweeps the grid width and reports measured neighbor skews against
// Theorem 1's bound — the asymptotic story of the introduction: the bound
// grows only through the ⌈Wε/d+⌉ε term while typical skews stay flat, so
// "scaling honeycombs" costs almost nothing in skew. The sweep also
// measures the per-layer skew potential Δℓ directly against Lemma 3's
// 2(W−2)ε bound (under ramped layer-0 skews, which maximize Δ0).
func Scaling(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	runs := reducedRuns(o.Runs)
	fig := newFig("Scaling: skew vs. grid width W (L = 50)")
	t := &render.Table{
		Header: []string{"W", "n", "intra avg", "intra q95", "intra max",
			"thm1 bound", "max/bound", "Δℓ max (ramp)", "lemma3 bound"},
		Note: "skews in ns, scenario (iii); Δℓ measured over layers ≥ W−2 under the ramp scenario",
	}
	for _, w := range []int{8, 16, 32, 64} {
		spec := Spec{L: 50, W: w, Runs: runs, Seed: o.Seed,
			Scenario: source.UniformDPlus}.WithDefaults()
		outs, err := RunMany(spec)
		if err != nil {
			return nil, err
		}
		intra, _ := CollectSkews(outs, 0)
		s := stats.Summarize(intra)
		// Scenario (iii) has Δ0 ≤ ε; the uniform bound applies above 2W−2,
		// use the conservative low-layer form for the whole grid.
		bound := theory.Theorem1IntraBound(1, w, spec.Bounds, spec.Bounds.Epsilon())

		// Skew potential under the ramp (the adversarial input for Δℓ).
		// Lemma 3 only speaks about layers ℓ ≥ W−2; for W−2 > L the grid
		// is too short and the measurement is not applicable.
		deltaCell, lemma3Cell := "n/a", "n/a"
		if w-2 <= 50 {
			rampSpec := Spec{L: 50, W: w, Runs: maxInt(runs/4, 3), Seed: o.Seed,
				Scenario: source.Ramp}.WithDefaults()
			rampOuts, err := RunMany(rampSpec)
			if err != nil {
				return nil, err
			}
			var deltaMax sim.Time
			for _, out := range rampOuts {
				for l := w - 2; l <= out.Hex.L; l++ {
					if d := analysis.SkewPotential(out.Wave, out.Hex, l, spec.Bounds.Min); d > deltaMax {
						deltaMax = d
					}
				}
			}
			lemma3 := theory.Lemma3SkewPotential(w, spec.Bounds)
			deltaCell, lemma3Cell = render.NsTime(deltaMax), render.NsTime(lemma3)
			fig.Data[fmt.Sprintf("delta_max_W%d", w)] = deltaMax.Nanoseconds()
			fig.Data[fmt.Sprintf("lemma3_W%d", w)] = lemma3.Nanoseconds()
		}

		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%d", 51*w),
			render.Ns(s.Avg), render.Ns(s.Q95), render.Ns(s.Max),
			render.NsTime(bound), fmt.Sprintf("%.0f%%", 100*s.Max/bound.Nanoseconds()),
			deltaCell, lemma3Cell)
		fig.Data[fmt.Sprintf("intra_avg_W%d", w)] = s.Avg
		fig.Data[fmt.Sprintf("intra_max_W%d", w)] = s.Max
		fig.Data[fmt.Sprintf("bound_W%d", w)] = bound.Nanoseconds()
		_ = fault.Correct
	}
	fig.Sections = append(fig.Sections, t.String())
	return fig, nil
}
