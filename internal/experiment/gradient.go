package experiment

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// GradientSkew measures how the intra-layer skew grows with the column
// distance between two nodes — the gradient property behind the paper's
// introduction: no algorithm beats Dε/2 globally [19] or Ω(ε log D)
// between neighbors [20], and HEX's neighbor skew of O(Dε²) sits between
// the two. The experiment reports, per column distance k, the average and
// maximum |t_{ℓ,i} − t_{ℓ,i+k}| over runs, next to the k·d− "causal floor"
// and the global Dε/2 context bound.
func GradientSkew(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	spec := Spec{
		L: o.L, W: o.W, Runs: o.Runs, Seed: o.Seed,
		Scenario: source.Zero,
	}.WithDefaults()
	outs, err := RunMany(spec)
	if err != nil {
		return nil, err
	}

	distances := []int{1, 2, 3, 4}
	for k := 8; k <= o.W/2; k *= 2 {
		distances = append(distances, k)
	}

	fig := newFig("Gradient: intra-layer skew vs. column distance (scenario (i), fault-free)")
	t := &render.Table{
		Header: []string{"distance k", "avg [ns]", "q95 [ns]", "max [ns]", "max/k [ns]"},
		Note:   "skews measured over the settled layers ℓ ≥ W−2, all runs",
	}
	var maxPerK []float64
	for _, k := range distances {
		var vals []float64
		for _, out := range outs {
			h := out.Hex
			w := out.Wave
			for l := o.W - 2; l <= h.L; l++ {
				for i := 0; i < h.W; i++ {
					a, b := h.NodeID(l, i), h.NodeID(l, i+k)
					if !w.Valid(a) || !w.Valid(b) {
						continue
					}
					vals = append(vals, sim.AbsTime(w.T[a]-w.T[b]).Nanoseconds())
				}
			}
		}
		s := stats.Summarize(vals)
		t.AddRow(fmt.Sprintf("%d", k), render.Ns(s.Avg), render.Ns(s.Q95),
			render.Ns(s.Max), render.Ns(s.Max/float64(k)))
		fig.Data[fmt.Sprintf("max_dist_%d", k)] = s.Max
		fig.Data[fmt.Sprintf("avg_dist_%d", k)] = s.Avg
		maxPerK = append(maxPerK, s.Max)
	}
	fig.Sections = append(fig.Sections, t.String())

	h, err := spec.buildGrid()
	if err != nil {
		return nil, err
	}
	diam := h.Diameter()
	fig.Sections = append(fig.Sections, fmt.Sprintf(
		"context: diameter D=%d, global lower bound Dε/2 = %v, gradient lower bound Ω(ε log D) ≈ %v",
		diam,
		theory.DiameterLowerBound(diam, spec.Bounds),
		theory.GradientLowerBound(diam, spec.Bounds)))
	fig.Data["diameter_bound_ns"] = theory.DiameterLowerBound(diam, spec.Bounds).Nanoseconds()
	_ = fault.Correct
	return fig, nil
}

// EmbeddingComparison quantifies Section 5's embedding discussion: the
// flattened cylinder puts nodes from opposite sides of the HEX cylinder
// physically next to each other although they are Θ(W) hops apart in the
// grid (so their skew can be large and "half of the nodes cannot be used
// for clocking"), while the circular doubling-layer embedding keeps
// physically close nodes graph-close with bounded link lengths.
func EmbeddingComparison(o Options) (*FigResult, error) {
	o = o.WithDefaults()
	h, err := grid.NewHex(o.L, o.W)
	if err != nil {
		return nil, err
	}
	flat := layout.FlattenedCylinder(h)
	d, err := grid.NewDoubling(6, grid.GeometricDoubling(12))
	if err != nil {
		return nil, err
	}
	circ := layout.Circular(d)

	fig := newFig("Embedding: flattened cylinder vs. circular doubling layout (Section 5)")
	t := &render.Table{
		Header: []string{"embedding", "nodes", "max link [pitch]", "worst proximity gap [hops]"},
		Note:   "proximity gap = grid distance of the worst physically adjacent pair (radius 1 pitch)",
	}
	flatGap, _, _ := flat.WorstProximityGap(1.0)
	circGap, _, _ := circ.WorstProximityGap(1.0)
	t.AddRow("flattened cylinder", fmt.Sprintf("%d", h.NumNodes()),
		fmt.Sprintf("%.2f", flat.MaxLinkLength()), fmt.Sprintf("%d", flatGap))
	t.AddRow("circular doubling", fmt.Sprintf("%d", d.NumNodes()),
		fmt.Sprintf("%.2f", circ.MaxLinkLength()), fmt.Sprintf("%d", circGap))
	fig.Sections = append(fig.Sections, t.String())
	fig.Data["flat_gap_hops"] = float64(flatGap)
	fig.Data["circular_gap_hops"] = float64(circGap)
	fig.Data["flat_max_link"] = flat.MaxLinkLength()
	fig.Data["circular_max_link"] = circ.MaxLinkLength()
	return fig, nil
}
