package experiment

import (
	"strings"
	"testing"

	"repro/internal/delay"
)

func TestFig8Complete(t *testing.T) {
	fig, err := Fig8(small())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Data["forwarders_complete"] != 1 {
		t.Error("fig8 wave incomplete")
	}
	if fig.Data["nodes_triggered"] != float64(13*8) {
		t.Errorf("nodes_triggered = %v", fig.Data["nodes_triggered"])
	}
	out := fig.Render()
	if !strings.Contains(out, "layer") || !strings.Contains(out, "time scale") {
		t.Error("wave heat missing from render")
	}
}

func TestFig9RampSmoothsOut(t *testing.T) {
	o := Options{L: 20, W: 8, Runs: 4, Seed: 3}
	fig, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Data["forwarders_complete"] != 1 {
		t.Error("fig9 wave incomplete")
	}
	// Ramp input: max intra skew should be around d+ (smoothing), well
	// below the initial spread of (W/2)·d+.
	if fig.Data["max_intra_skew_ns"] > 3*delay.Paper.Max.Nanoseconds() {
		t.Errorf("ramp wave max intra %.3f ns suspiciously large", fig.Data["max_intra_skew_ns"])
	}
}

func TestFig5WithinLemma4(t *testing.T) {
	o := Options{L: 30, W: 20, Runs: 1, Seed: 1}
	fig, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	meas, bound := fig.Data["skew_cols_8_9_max_ns"], fig.Data["lemma4_bound_ns"]
	if meas <= 0 {
		t.Error("no skew measured")
	}
	if meas > bound+0.001 {
		t.Errorf("measured %.3f exceeds Lemma 4 bound %.3f", meas, bound)
	}
	// The adversarial construction must beat typical random skews by far.
	if meas < 2*delay.Paper.Max.Nanoseconds() {
		t.Errorf("adversarial skew %.3f ns unexpectedly small", meas)
	}
	if _, err := Fig5(Options{W: 10, Runs: 1}); err == nil {
		t.Error("Fig5 accepted W < 18")
	}
}

func TestFig10HistogramsConcentrated(t *testing.T) {
	fig, err := Fig10(small())
	if err != nil {
		t.Fatal(err)
	}
	// Sharp concentration: only a tiny fraction beyond 2·q95.
	if frac := fig.Data["intra_frac_above_2q95"]; frac > 0.03 {
		t.Errorf("tail fraction %.4f too heavy", frac)
	}
	if fig.Data["inter_min_ns"] < delay.Paper.Min.Nanoseconds()-0.01 {
		t.Error("inter skew below d− in fault-free scenario (i)")
	}
}

func TestFig11TailHeavierThanFig10(t *testing.T) {
	o := small()
	f10, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	// Ramp scenario's q95 exceeds scenario (i)'s by a wide margin
	// (paper: "visible cluster near the end of the tail").
	if f11.Data["intra_q95_ns"] <= f10.Data["intra_q95_ns"] {
		t.Error("ramp q95 not heavier than scenario (i)")
	}
}

func TestFig12SmoothingAfterW2(t *testing.T) {
	o := Options{L: 24, W: 8, Runs: 6, Seed: 3}
	fig, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 3 shape: for the ramp scenario the max inter-layer skew in
	// layers ≥ W−2 is smaller than in layers < W−2.
	pre := fig.Data["max_inter_pre_W2_ramp"]
	post := fig.Data["max_inter_post_W2_ramp"]
	if pre == 0 || post == 0 {
		t.Fatal("missing series data")
	}
	if post >= pre {
		t.Errorf("no smoothing: pre-W−2 max %.3f, post %.3f", pre, post)
	}
}

func TestFig13FaultLocality(t *testing.T) {
	fig, err := Fig13(small())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Render(), "faulty nodes: (1,7)") {
		t.Errorf("fault placement missing:\n%s", fig.Render())
	}
}

func TestFig14FiveFaults(t *testing.T) {
	fig, err := Fig14(Options{L: 16, W: 12, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Render(), "faulty nodes:") {
		t.Error("fault list missing")
	}
}

func TestFig15FaultSweepShape(t *testing.T) {
	o := Options{L: 12, W: 8, Runs: 6, Seed: 3}
	fig, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	// h=1 exclusion must not make skews larger than h=0 for the same f.
	for f := 0; f <= 5; f++ {
		h0 := fig.Data[keyf("intra_max_f%d_h0", f)]
		h1 := fig.Data[keyf("intra_max_f%d_h1", f)]
		if h1 > h0+0.001 {
			t.Errorf("f=%d: h=1 max %.3f exceeds h=0 max %.3f", f, h1, h0)
		}
	}
	// Faults increase the worst skew somewhere in the sweep.
	if fig.Data["intra_max_f5_h0"] <= fig.Data["intra_max_f0_h0"] {
		t.Log("note: f=5 max not above f=0 at this scale (can happen with few runs)")
	}
}

func keyf(format string, f int) string {
	return strings.Replace(format, "%d", itoa(f), 1)
}

func itoa(v int) string { return string(rune('0' + v)) }

func TestFig17FindsMultiDPlusSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search")
	}
	fig, err := Fig17(Options{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's construction achieves 5d+; our exhaustive search on the
	// cylinder must find at least 3d+ (vs. ~d+ fault-free).
	if fig.Data["worst_upper_skew_dplus"] < 3 {
		t.Errorf("worst skew only %.2f d+", fig.Data["worst_upper_skew_dplus"])
	}
	if fig.Data["faultfree_max_intra_ns"] > delay.Paper.Max.Nanoseconds()+0.001 {
		t.Errorf("fault-free baseline %.3f above d+", fig.Data["faultfree_max_intra_ns"])
	}
}

func TestFig15CrashMilderThanByzantine(t *testing.T) {
	o := Options{L: 12, W: 8, Runs: 8, Seed: 3}
	byz, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	crash, err := Fig15Crash(o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: crash faults are "more benign … with smaller skews".
	// Compare the f=5 averages of the two sweeps; allow equality at this
	// reduced scale but crash must not be clearly worse.
	b, c := byz.Data["intra_max_f5_h0"], crash.Data["intra_max_f5_h0"]
	if c > b*1.5+1 {
		t.Errorf("crash faults (%.3f) much worse than Byzantine (%.3f)", c, b)
	}
}

func TestFig5VShapeWithinBound(t *testing.T) {
	fig, err := Fig5(Options{L: 30, W: 20, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, bound := fig.Data["vshape_max_ns"], fig.Data["vshape_bound_ns"]
	if v <= 0 {
		t.Fatal("no V-shape skew measured")
	}
	if v > bound+0.001 {
		t.Errorf("V-shape skew %.3f exceeds Lemma 4 bound %.3f", v, bound)
	}
	// With Δ0 = 0, the V-shape skew is of order d+ + kε, well above the
	// fault-free ~d+/2 averages but far below the Δ0-carrying construction.
	if v >= fig.Data["skew_cols_8_9_max_ns"] {
		t.Errorf("V-shape (%.3f) should be milder than the Δ0 construction (%.3f)",
			v, fig.Data["skew_cols_8_9_max_ns"])
	}
}
