package experiment

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/theory"
)

// Options tune how expensive the reproduction drivers are. The zero value
// is replaced by the paper's settings (250 runs on the 50×20 grid).
type Options struct {
	L, W int
	Runs int
	Seed uint64
}

// WithDefaults fills unset option fields.
func (o Options) WithDefaults() Options {
	if o.L == 0 {
		o.L = 50
	}
	if o.W == 0 {
		o.W = 20
	}
	if o.Runs == 0 {
		o.Runs = 250
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) spec(sc source.Scenario, faults int, ft fault.Behavior) Spec {
	return Spec{
		L: o.L, W: o.W, Runs: o.Runs, Seed: o.Seed,
		Scenario: sc, Faults: faults, FaultType: ft,
	}.WithDefaults()
}

// skewTable builds the Table 1/Table 2 layout from per-scenario skew data.
func skewTable(title, note string, o Options, faults int) (*render.Table, error) {
	t := &render.Table{
		Title: title,
		Header: []string{"scenario", "initial layer 0 skew",
			"intra avg", "intra q95", "intra max",
			"inter min", "inter q5", "inter avg", "inter q95", "inter max"},
		Note: note,
	}
	labels := []string{"(i)", "(ii)", "(iii)", "(iv)"}
	for i, sc := range source.Scenarios {
		outs, err := RunMany(o.spec(sc, faults, fault.Byzantine))
		if err != nil {
			return nil, err
		}
		intra, inter := CollectSkews(outs, 0)
		si, se := stats.Summarize(intra), stats.Summarize(inter)
		t.AddRow(labels[i], sc.String(),
			render.Ns(si.Avg), render.Ns(si.Q95), render.Ns(si.Max),
			render.Ns(se.Min), render.Ns(se.Q5), render.Ns(se.Avg),
			render.Ns(se.Q95), render.Ns(se.Max))
	}
	return t, nil
}

// Table1 reproduces Table 1: intra- and inter-layer skews over all nodes
// and runs on the fault-free grid, per layer-0 skew scenario.
func Table1(o Options) (*render.Table, error) {
	o = o.WithDefaults()
	return skewTable(
		fmt.Sprintf("Table 1: intra-/inter-layer skews [ns], %d runs, %dx%d grid, fault-free", o.Runs, o.L, o.W),
		"Paper (250 runs, 50x20): e.g. scenario (i) intra avg/q95/max = 0.395/1.000/3.098, inter min..max = 7.164..11.030.",
		o, 0)
}

// Table2 reproduces Table 2: the same statistics with one Byzantine node
// placed uniformly at random (Condition 1 is vacuous for f = 1).
func Table2(o Options) (*render.Table, error) {
	o = o.WithDefaults()
	return skewTable(
		fmt.Sprintf("Table 2: skews [ns] with one Byzantine node, %d runs, %dx%d grid", o.Runs, o.L, o.W),
		"Paper: e.g. scenario (i) intra avg/q95/max = 0.539/1.335/10.385, inter min..max = 5.575..17.548.",
		o, 1)
}

// StableSkews measures, per scenario, the maximum skew (intra or |inter|)
// observed over f ∈ [0, maxFaults] Byzantine-fault runs, plus a slack of
// d+ — the paper's recipe for the "assumed stable skews σ" of Table 3
// (Section 4.4: "determined via the previous simulations, plus a slack of
// d+ accounting for the exponential tail").
func StableSkews(o Options, maxFaults int) (map[source.Scenario]sim.Time, error) {
	o = o.WithDefaults()
	out := make(map[source.Scenario]sim.Time)
	for _, sc := range source.Scenarios {
		var worst float64
		for f := 0; f <= maxFaults; f++ {
			outs, err := RunMany(o.spec(sc, f, fault.Byzantine))
			if err != nil {
				return nil, err
			}
			intra, inter := CollectSkews(outs, 0)
			for _, v := range intra {
				if v > worst {
					worst = v
				}
			}
			for _, v := range inter {
				if a := absF(v); a > worst {
					worst = a
				}
			}
		}
		out[sc] = sim.FromNanoseconds(worst) + delay.Paper.Max
	}
	return out, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Table3 reproduces Table 3: the assumed stable skews σ per scenario and
// the Condition 2 timeout and pulse-separation values derived from them
// with ϑ = 1.05 and f = maxFaults.
func Table3(o Options, maxFaults int) (*render.Table, map[source.Scenario]theory.Timeouts, error) {
	o = o.WithDefaults()
	sigmas, err := StableSkews(o, maxFaults)
	if err != nil {
		return nil, nil, err
	}
	b := delay.Paper
	t := &render.Table{
		Title: fmt.Sprintf("Table 3: stable skews and Condition 2 timeouts [ns] (theta=1.05, f=%d, L=%d)", maxFaults, o.L),
		Header: []string{"scenario", "initial layer 0 skews", "sigma",
			"T-link", "T+link", "T-sleep", "T+sleep", "S"},
		Note: "Paper (scenario (i)): sigma=28.48 T-link=31.98 T+link=33.58 T-sleep=83.56 T+sleep=87.74 S=264.08.",
	}
	timeouts := make(map[source.Scenario]theory.Timeouts)
	labels := []string{"(i)", "(ii)", "(iii)", "(iv)"}
	for i, sc := range source.Scenarios {
		to := theory.Condition2(sigmas[sc], b, o.L, maxFaults, theory.PaperDrift)
		timeouts[sc] = to
		t.AddRow(labels[i], sc.String(), render.NsTime(sigmas[sc]),
			render.NsTime(to.TLinkMin), render.NsTime(to.TLinkMax),
			render.NsTime(to.TSleepMin), render.NsTime(to.TSleepMax),
			render.NsTime(to.Separation))
	}
	return t, timeouts, nil
}
