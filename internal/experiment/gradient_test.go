package experiment

import "testing"

func TestGradientSkewSublinear(t *testing.T) {
	fig, err := GradientSkew(Options{L: 20, W: 16, Runs: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The gradient property: skew at distance 8 is far below 8× the
	// neighbor skew (it grows sublinearly in distance).
	d1, d8 := fig.Data["max_dist_1"], fig.Data["max_dist_8"]
	if d1 <= 0 || d8 <= 0 {
		t.Fatal("missing gradient data")
	}
	if d8 > 4*d1 {
		t.Errorf("skew at distance 8 (%.3f) not sublinear vs distance 1 (%.3f)", d8, d1)
	}
	// And everything stays below the global Dε/2 context bound.
	if d8 > fig.Data["diameter_bound_ns"] {
		t.Errorf("distance-8 skew %.3f exceeds Dε/2 = %.3f", d8, fig.Data["diameter_bound_ns"])
	}
}

func TestExtensionHexPlusMitigatesFaults(t *testing.T) {
	fig, err := ExtensionHexPlus(Options{L: 15, W: 10, Runs: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Section 5's prediction: the fault-induced *average* skew growth of
	// plain HEX is mitigated by the extra lower in-neighbors. Compare the
	// growth from f=0 to f=4 on both topologies.
	growHex := fig.Data["intra_avg_HEX_f4"] - fig.Data["intra_avg_HEX_f0"]
	growPlus := fig.Data["intra_avg_HEX+_f4"] - fig.Data["intra_avg_HEX+_f0"]
	if growPlus >= growHex {
		t.Errorf("HEX+ avg growth %.3f not below HEX growth %.3f", growPlus, growHex)
	}
	// HEX+ fault-free skews are no worse than plain HEX's.
	if fig.Data["intra_avg_HEX+_f0"] > fig.Data["intra_avg_HEX_f0"]+0.1 {
		t.Errorf("HEX+ fault-free avg %.3f worse than HEX %.3f",
			fig.Data["intra_avg_HEX+_f0"], fig.Data["intra_avg_HEX_f0"])
	}
}

func TestEmbeddingComparisonShapes(t *testing.T) {
	fig, err := EmbeddingComparison(Options{L: 15, W: 12, Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Flattening creates physically adjacent pairs that are ≈W/2 hops
	// apart; the circular embedding keeps them graph-adjacent.
	if fig.Data["flat_gap_hops"] < 5 {
		t.Errorf("flat proximity gap %v too small for W=12", fig.Data["flat_gap_hops"])
	}
	if fig.Data["circular_gap_hops"] > 3 {
		t.Errorf("circular proximity gap %v too large", fig.Data["circular_gap_hops"])
	}
	if fig.Data["flat_gap_hops"] <= fig.Data["circular_gap_hops"] {
		t.Error("embedding comparison lost its point")
	}
}
