package delay

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPaperBounds(t *testing.T) {
	if Paper.Min != 7161*sim.Picosecond || Paper.Max != 8197*sim.Picosecond {
		t.Errorf("Paper bounds = %v", Paper)
	}
	if Paper.Epsilon() != 1036*sim.Picosecond {
		t.Errorf("ε = %v, want 1.036ns", Paper.Epsilon())
	}
	if err := Paper.Validate(); err != nil {
		t.Error(err)
	}
	if !Paper.SatisfiesTriangle() {
		t.Error("paper bounds should satisfy ε ≤ d+/2")
	}
	if !Paper.SatisfiesTheorem1() {
		t.Error("paper bounds should satisfy ε ≤ d+/7")
	}
}

func TestValidate(t *testing.T) {
	if err := (Bounds{Min: 0, Max: 5}).Validate(); err == nil {
		t.Error("d− = 0 accepted")
	}
	if err := (Bounds{Min: 5, Max: 4}).Validate(); err == nil {
		t.Error("d+ < d− accepted")
	}
	if err := (Bounds{Min: 5, Max: 5}).Validate(); err != nil {
		t.Errorf("zero-ε bounds rejected: %v", err)
	}
}

func TestTheorem1Threshold(t *testing.T) {
	b := Bounds{Min: 6, Max: 7} // ε = 1 = d+/7
	if !b.SatisfiesTheorem1() {
		t.Error("ε = d+/7 should satisfy Theorem 1's requirement")
	}
	b = Bounds{Min: 5, Max: 7} // ε = 2 > d+/7
	if b.SatisfiesTheorem1() {
		t.Error("ε > d+/7 should not satisfy it")
	}
}

func TestUniformStaysInBounds(t *testing.T) {
	u := Uniform{Bounds: Paper}
	rng := sim.NewRNG(1)
	sawMin, sawMax := false, false
	for i := 0; i < 100000; i++ {
		d := u.Delay(0, 1, 0, rng)
		if d < Paper.Min || d > Paper.Max {
			t.Fatalf("uniform delay %v out of %v", d, Paper)
		}
		sawMin = sawMin || d == Paper.Min
		sawMax = sawMax || d == Paper.Max
	}
	if !sawMin || !sawMax {
		t.Error("uniform delay never reached an endpoint")
	}
}

func TestUniformProperty(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(lo uint16, span uint16) bool {
		b := Bounds{Min: sim.Time(lo) + 1, Max: sim.Time(lo) + 1 + sim.Time(span)}
		d := Uniform{Bounds: b}.Delay(0, 0, 0, rng)
		return d >= b.Min && d <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFixed(t *testing.T) {
	f := Fixed{D: 42}
	for i := 0; i < 10; i++ {
		if d := f.Delay(i, i+1, sim.Time(i), nil); d != 42 {
			t.Fatalf("Fixed delay = %v", d)
		}
	}
}

func TestFunc(t *testing.T) {
	m := Func(func(from, to int, at sim.Time, _ *sim.RNG) sim.Time {
		return sim.Time(from*100 + to)
	})
	if d := m.Delay(3, 7, 0, nil); d != 307 {
		t.Errorf("Func delay = %v", d)
	}
}

func TestPerLink(t *testing.T) {
	p := NewPerLink(Fixed{D: 10})
	p.Set(1, 2, 99)
	if d := p.Delay(1, 2, 0, nil); d != 99 {
		t.Errorf("overridden link delay = %v", d)
	}
	if d := p.Delay(2, 1, 0, nil); d != 10 {
		t.Errorf("reverse direction should use fallback, got %v", d)
	}
	if d := p.Delay(3, 4, 0, nil); d != 10 {
		t.Errorf("fallback delay = %v", d)
	}
}

func TestBoundsString(t *testing.T) {
	if s := Paper.String(); s != "[7.161ns, 8.197ns]" {
		t.Errorf("String() = %q", s)
	}
}
