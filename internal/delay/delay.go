// Package delay provides link delay models for HEX simulations.
//
// Every fault-free link delivers a trigger message within [d−, d+]
// (Section 2 of the paper); the models here decide where in that interval
// each individual message lands: uniformly at random (the paper's
// simulations), at a fixed value, or fully adversarially (the worst-case
// constructions of Fig. 5 and Fig. 17).
package delay

import (
	"fmt"

	"repro/internal/sim"
)

// Bounds is the delay interval [d−, d+] of a fault-free link.
type Bounds struct {
	Min sim.Time // d−: minimum end-to-end delay
	Max sim.Time // d+: maximum end-to-end delay
}

// Paper is the delay interval used throughout the paper's evaluation
// (Section 4.2): wire/routing delays in [7, 8] ns combined with the
// synthesized HEX node's switching delay in [0.161, 0.197] ns.
var Paper = Bounds{Min: 7161 * sim.Picosecond, Max: 8197 * sim.Picosecond}

// Epsilon returns ε = d+ − d−, the maximal end-to-end delay uncertainty.
func (b Bounds) Epsilon() sim.Time { return b.Max - b.Min }

// Validate checks 0 < d− ≤ d+.
func (b Bounds) Validate() error {
	if b.Min <= 0 {
		return fmt.Errorf("delay: d− must be positive, got %v", b.Min)
	}
	if b.Max < b.Min {
		return fmt.Errorf("delay: d+ (%v) must be at least d− (%v)", b.Max, b.Min)
	}
	return nil
}

// SatisfiesTriangle reports whether ε ≤ d+/2, the constraint the paper
// imposes to obtain a triangle-inequality-like property.
func (b Bounds) SatisfiesTriangle() bool { return b.Epsilon() <= b.Max/2 }

// SatisfiesTheorem1 reports whether ε ≤ d+/7, the stronger requirement of
// Theorem 1.
func (b Bounds) SatisfiesTheorem1() bool { return 7*b.Epsilon() <= b.Max }

// String formats the bounds as "[d−, d+]".
func (b Bounds) String() string { return fmt.Sprintf("[%v, %v]", b.Min, b.Max) }

// Model assigns an end-to-end delay to each message.
//
// Implementations must return values within the fault-free bounds they are
// meant to represent; the simulator does not re-check. rng is the
// simulation's delay stream and is consumed in deterministic event order.
type Model interface {
	Delay(from, to int, at sim.Time, rng *sim.RNG) sim.Time
}

// Uniform draws every message delay independently and uniformly from
// [Bounds.Min, Bounds.Max], the model used for all statistical experiments
// in Section 4.
type Uniform struct {
	Bounds Bounds
}

// Delay implements Model.
func (u Uniform) Delay(_, _ int, _ sim.Time, rng *sim.RNG) sim.Time {
	return rng.TimeIn(u.Bounds.Min, u.Bounds.Max)
}

// Fixed gives every message the same delay D. Fixed{d+} reproduces the
// "all delays are d+" settings of Fig. 17.
type Fixed struct {
	D sim.Time
}

// Delay implements Model.
func (f Fixed) Delay(_, _ int, _ sim.Time, _ *sim.RNG) sim.Time { return f.D }

// Func adapts a function to the Model interface; used for the deterministic
// adversarial delay assignments of the worst-case constructions.
type Func func(from, to int, at sim.Time, rng *sim.RNG) sim.Time

// Delay implements Model.
func (f Func) Delay(from, to int, at sim.Time, rng *sim.RNG) sim.Time {
	return f(from, to, at, rng)
}

// linkKey identifies a directed link.
type linkKey struct{ from, to int }

// PerLink assigns fixed delays to specific directed links and delegates the
// rest to a fallback model. The zero value is not usable; use NewPerLink.
type PerLink struct {
	fallback Model
	delays   map[linkKey]sim.Time
}

// NewPerLink returns a PerLink model delegating to fallback.
func NewPerLink(fallback Model) *PerLink {
	return &PerLink{fallback: fallback, delays: make(map[linkKey]sim.Time)}
}

// Set fixes the delay of the directed link from→to.
func (p *PerLink) Set(from, to int, d sim.Time) { p.delays[linkKey{from, to}] = d }

// Delay implements Model.
func (p *PerLink) Delay(from, to int, at sim.Time, rng *sim.RNG) sim.Time {
	if d, ok := p.delays[linkKey{from, to}]; ok {
		return d
	}
	return p.fallback.Delay(from, to, at, rng)
}
