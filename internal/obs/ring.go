package obs

import "sync"

// Ring retains the last N completed request traces for the debug endpoint.
// It stores live *Trace pointers and snapshots them at read time, so a
// flight-recorder dump attached after a waiter timed out (the computation
// outlives the HTTP response) is still visible on the next read.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewRing returns a ring retaining up to capacity traces; capacity <= 0
// disables retention entirely (Add is a no-op, Snapshots returns nil).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add retains tr, evicting the oldest entry when full.
func (r *Ring) Add(tr *Trace) {
	if r == nil || len(r.buf) == 0 || tr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Snapshots returns copies of the retained traces, newest first.
func (r *Ring) Snapshots() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return nil
	}
	traces := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		traces = append(traces, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	r.mu.Unlock()
	// Snapshot outside the ring lock: each trace has its own mutex, and
	// snapshotting may be slow (span copies) while Add must stay cheap.
	out := make([]TraceSnapshot, len(traces))
	for i, tr := range traces {
		out[i] = tr.Snapshot()
	}
	return out
}

// Len reports the number of retained traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
