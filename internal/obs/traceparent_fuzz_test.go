package obs

import (
	"strings"
	"testing"
)

// FuzzTraceparent drives ParseTraceparent with arbitrary header values
// and checks the invariants the router and exporter lean on: accepted
// values round-trip through FormatTraceparent, rejected values never
// smuggle ids out, and a parse can never panic or return malformed ids.
func FuzzTraceparent(f *testing.F) {
	// W3C trace-context spec examples, plus the edge shapes the parser
	// must reject: wrong version, upper-case hex, all-zero ids, bad
	// separators, truncation, and trailing garbage.
	seeds := []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"",
		"00--4bf92f3577b34da6a3ce929d0e0e473600f067aa0ba902b7-01",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, h string) {
		tid, pid, ok := ParseTraceparent(h)
		if !ok {
			if tid != "" || pid != "" {
				t.Fatalf("rejected %q but returned ids %q/%q", h, tid, pid)
			}
			return
		}
		if len(tid) != 32 || !lowerHex(tid) {
			t.Fatalf("accepted %q with malformed trace-id %q", h, tid)
		}
		if len(pid) != 16 || !lowerHex(pid) {
			t.Fatalf("accepted %q with malformed parent-id %q", h, pid)
		}
		if tid == strings.Repeat("0", 32) || pid == strings.Repeat("0", 16) {
			t.Fatalf("accepted forbidden all-zero id in %q", h)
		}
		// Round trip: re-formatting with the parsed ids must parse back to
		// the same ids (flags are not preserved — hexd always samples).
		tid2, pid2, ok2 := ParseTraceparent(FormatTraceparent(tid, pid))
		if !ok2 || tid2 != tid || pid2 != pid {
			t.Fatalf("round trip of %q lost ids: got %q/%q ok=%v", h, tid2, pid2, ok2)
		}
	})
}

// FuzzFormatTraceparent checks the formatter's contract from the other
// side: given a well-formed trace-id and any parent string, the output
// must always parse, preserving the trace-id and the parent when the
// parent was usable.
func FuzzFormatTraceparent(f *testing.F) {
	f.Add("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7")
	f.Add("0af7651916cd43dd8448eb211c80319c", "")
	f.Add("4bf92f3577b34da6a3ce929d0e0e4736", "not-a-span-id")
	f.Add("4bf92f3577b34da6a3ce929d0e0e4736", "0000000000000000")
	f.Fuzz(func(t *testing.T, tid, pid string) {
		if len(tid) != 32 || !lowerHex(tid) || tid == strings.Repeat("0", 32) {
			t.Skip() // formatter requires a well-formed trace-id by contract
		}
		h := FormatTraceparent(tid, pid)
		tid2, pid2, ok := ParseTraceparent(h)
		if pid == strings.Repeat("0", 16) {
			// The formatter passes a syntactically valid all-zero parent
			// through; the parser rejects the result, as the spec demands.
			// The router never produces one (span-ids are random), so the
			// only consequence is a dropped stitch.
			if ok {
				t.Fatalf("all-zero parent accepted: %q", h)
			}
			return
		}
		if !ok {
			t.Fatalf("formatted header does not parse: %q", h)
		}
		if tid2 != tid {
			t.Fatalf("trace-id changed: %q -> %q", tid, tid2)
		}
		if len(pid) == 16 && lowerHex(pid) && pid2 != pid {
			t.Fatalf("usable parent-id %q replaced with %q", pid, pid2)
		}
	})
}
