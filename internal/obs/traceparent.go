package obs

import (
	"crypto/rand"
	"encoding/hex"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) support, the
// minimum needed for fleet-wide request correlation and trace stitching:
// the cluster router mints (or propagates) a trace-id and sends a
// traceparent header on every router→backend hop; each backend stamps the
// trace-id and the sender's span-id (the parent) onto its own request
// trace, so GET /v1/debug/requests on every node of the fleet shows the
// same trace_id for one logical request, and the OTLP exporter can render
// the hops as one parent-linked tree in an external collector.

// TraceparentHeader is the canonical header name (lower-case per spec;
// net/http canonicalizes on the wire).
const TraceparentHeader = "traceparent"

// traceparent layout: version "00", 32-hex trace-id, 16-hex parent-id,
// 2-hex flags, dash-separated.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceparent extracts the trace-id and parent span-id from a
// version-00 traceparent header value. ok is false for malformed values,
// for unknown versions, and for the all-zero ids the spec forbids.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != traceparentLen || h[0:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	tid, pid, flags := h[3:35], h[36:52], h[53:55]
	if !lowerHex(tid) || !lowerHex(pid) || !lowerHex(flags) {
		return "", "", false
	}
	if tid == "00000000000000000000000000000000" || pid == "0000000000000000" {
		return "", "", false
	}
	return tid, pid, true
}

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set. parentID is the span-id of the sending hop (16 hex
// chars, typically Trace.SpanID()); callers with no span of their own may
// pass "" to mint a fresh one, at the cost of an unparented hop.
func FormatTraceparent(traceID, parentID string) string {
	if len(parentID) != 16 || !lowerHex(parentID) {
		parentID = NewSpanID()
	}
	return "00-" + traceID + "-" + parentID + "-01"
}

// NewTraceID returns a fresh random 32-hex-character trace-id.
func NewTraceID() string { return randHex(16) }

// NewSpanID returns a fresh random 16-hex-character span-id.
func NewSpanID() string { return randHex(8) }

// randHex returns 2n random lower-case hex characters. Like
// NewRequestID, it degrades to zeros if the system entropy source fails;
// correlation degrades, nothing breaks.
func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// lowerHex reports whether s is entirely lower-case hexadecimal.
func lowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
