package obs

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// Capture predicates: instead of arming the flight recorder per-request
// (?trace=1), an ArmPolicy decides *after* a run completes whether that
// run deserved event-level forensics — measured skew outside the
// Theorem-1 envelope, a run error, a failed audit, or an unusually slow
// wall time. Because the simulation is deterministic (same canonical
// request ⇒ same event stream), the offending unit can then be re-run
// with the recorder armed and yields exactly the events the first run
// would have produced. This is what turns a million-run campaign from a
// throughput exercise into an instrument: forensics appear for precisely
// the runs that left the envelope, at zero cost to the ones that didn't.

// ArmPolicy selects which post-run conditions arm the flight recorder.
// The zero value arms never.
type ArmPolicy struct {
	// OnSkew arms when measured intra- or inter-layer skew leaves the
	// Theorem-1 envelope, widened (or tightened, when negative) by
	// SkewMarginPct percent. Margin 0 arms on any measured violation of
	// the proved bound; 25 tolerates up to 25% beyond it; -100 arms on
	// any skew at all (a test hook, and a way to sample healthy runs).
	OnSkew        bool
	SkewMarginPct float64

	// OnError arms when the run finished with an error (cancellation,
	// deadline, internal failure).
	OnError bool

	// OnAuditFail arms when a window audit failed. Audits only run when a
	// recorder was armed, so this predicate fires on the re-run of some
	// other predicate's trigger, or on requests that pre-armed via
	// ?trace=1; it exists so such dumps are flagged and exported with
	// events embedded.
	OnAuditFail bool

	// OnSlow arms when the run's wall time exceeds the SlowPct-th
	// percentile of the last armWindow observed wall times, once at least
	// SlowMinSamples runs have been seen. SlowPct 99 means roughly the
	// slowest 1% of runs get forensics.
	OnSlow         bool
	SlowPct        float64
	SlowMinSamples int
}

// Enabled reports whether any predicate can fire.
func (p ArmPolicy) Enabled() bool {
	return p.OnSkew || p.OnError || p.OnAuditFail || p.OnSlow
}

// Outcome is what one completed run presents to the policy. Skew fields
// are only meaningful when SkewValid is set (aggregate outputs where no
// wave was reconstructed leave it false).
type Outcome struct {
	// Measured skew extremes across all layers of the run's final wave,
	// and the Theorem-1 bounds they are judged against. Intra-layer skew
	// is a magnitude; the inter-layer range is signed, judged against the
	// window [InterLoBound, InterHiBound].
	SkewValid    bool
	IntraMax     sim.Time
	IntraBound   sim.Time
	InterLo      sim.Time
	InterHi      sim.Time
	InterLoBound sim.Time
	InterHiBound sim.Time

	Err         error
	AuditFailed bool
	Elapsed     time.Duration
}

// armWindow bounds the wall-time ring used for the percentile predicate.
const armWindow = 512

// Armer evaluates an ArmPolicy against run outcomes. It is safe for
// concurrent use (sweeps evaluate from many workers) and, like the rest
// of this package, a nil *Armer is a valid receiver that never arms.
type Armer struct {
	policy ArmPolicy

	mu    sync.Mutex
	times [armWindow]time.Duration
	next  int
	n     int
}

// NewArmer returns an Armer for p, or nil when p arms never — so callers
// can hold a nil *Armer and skip both evaluation and the skew
// measurement feeding it.
func NewArmer(p ArmPolicy) *Armer {
	if !p.Enabled() {
		return nil
	}
	if p.SlowPct <= 0 || p.SlowPct > 100 {
		p.SlowPct = 99
	}
	if p.SlowMinSamples <= 0 {
		p.SlowMinSamples = 32
	}
	return &Armer{policy: p}
}

// WantsSkew reports whether the caller should bother measuring skew and
// filling the Outcome's skew fields.
func (a *Armer) WantsSkew() bool {
	return a != nil && a.policy.OnSkew
}

// Policy returns the policy this Armer evaluates (zero value on nil).
func (a *Armer) Policy() ArmPolicy {
	if a == nil {
		return ArmPolicy{}
	}
	return a.policy
}

// Evaluate judges one completed run. It returns arm=true when any enabled
// predicate fired, with reason a "+"-joined list of the predicates that
// did ("skew", "error", "audit", "slow") — the string hexd attaches to
// the trace note and the exported span.
func (a *Armer) Evaluate(o Outcome) (reason string, arm bool) {
	if a == nil {
		return "", false
	}
	var fired []string
	if a.policy.OnSkew && o.SkewValid && skewViolated(o, a.policy.SkewMarginPct) {
		fired = append(fired, "skew")
	}
	if a.policy.OnError && o.Err != nil {
		fired = append(fired, "error")
	}
	if a.policy.OnAuditFail && o.AuditFailed {
		fired = append(fired, "audit")
	}
	if a.policy.OnSlow && a.slow(o.Elapsed) {
		fired = append(fired, "slow")
	}
	if len(fired) == 0 {
		return "", false
	}
	return strings.Join(fired, "+"), true
}

// skewViolated applies the margin-widened Theorem-1 envelope. The intra
// bound scales multiplicatively; the signed inter window widens on each
// side by marginPct percent of its own width, so a positive margin
// loosens both directions symmetrically and -100 inverts the window into
// one almost nothing satisfies.
func skewViolated(o Outcome, marginPct float64) bool {
	m := marginPct / 100
	intraLimit := float64(o.IntraBound) * (1 + m)
	if float64(o.IntraMax) > intraLimit {
		return true
	}
	width := float64(o.InterHiBound - o.InterLoBound)
	lo := float64(o.InterLoBound) - m*width
	hi := float64(o.InterHiBound) + m*width
	return float64(o.InterLo) < lo || float64(o.InterHi) > hi
}

// slow records elapsed into the wall-time ring and reports whether it
// exceeded the SlowPct-th percentile of the *prior* window (the sample
// never competes against itself). Under-populated windows never arm.
func (a *Armer) slow(elapsed time.Duration) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	verdict := false
	if a.n >= a.policy.SlowMinSamples {
		sorted := make([]time.Duration, a.n)
		copy(sorted, a.times[:a.n])
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(float64(a.n)*a.policy.SlowPct/100+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= a.n {
			idx = a.n - 1
		}
		verdict = elapsed > sorted[idx]
	}
	a.times[a.next] = elapsed
	a.next = (a.next + 1) % armWindow
	if a.n < armWindow {
		a.n++
	}
	return verdict
}
