package obs

import (
	"errors"
	"testing"
	"time"
)

func TestNewArmerDisabled(t *testing.T) {
	if a := NewArmer(ArmPolicy{}); a != nil {
		t.Fatal("zero policy should yield a nil Armer")
	}
	var a *Armer
	if a.WantsSkew() {
		t.Fatal("nil Armer wants skew")
	}
	if reason, arm := a.Evaluate(Outcome{Err: errors.New("x"), AuditFailed: true}); arm || reason != "" {
		t.Fatalf("nil Armer armed: %q", reason)
	}
	if p := a.Policy(); p.Enabled() {
		t.Fatal("nil Armer reports an enabled policy")
	}
}

func TestArmerErrorAndAuditPredicates(t *testing.T) {
	a := NewArmer(ArmPolicy{OnError: true, OnAuditFail: true})
	if reason, arm := a.Evaluate(Outcome{}); arm {
		t.Fatalf("clean outcome armed: %q", reason)
	}
	if reason, arm := a.Evaluate(Outcome{Err: errors.New("deadline")}); !arm || reason != "error" {
		t.Fatalf("error outcome: arm=%v reason=%q", arm, reason)
	}
	if reason, arm := a.Evaluate(Outcome{AuditFailed: true}); !arm || reason != "audit" {
		t.Fatalf("audit outcome: arm=%v reason=%q", arm, reason)
	}
	if reason, arm := a.Evaluate(Outcome{Err: errors.New("x"), AuditFailed: true}); !arm || reason != "error+audit" {
		t.Fatalf("combined outcome: arm=%v reason=%q", arm, reason)
	}
}

func TestArmerSkewMarginMath(t *testing.T) {
	inEnvelope := Outcome{
		SkewValid: true,
		IntraMax:  80, IntraBound: 100,
		InterLo: 5, InterHi: 15,
		InterLoBound: 0, InterHiBound: 20,
	}
	intraOut := inEnvelope
	intraOut.IntraMax = 110
	interOut := inEnvelope
	interOut.InterHi = 25

	cases := []struct {
		name   string
		margin float64
		o      Outcome
		arm    bool
	}{
		{"within bounds, zero margin", 0, inEnvelope, false},
		{"intra 10% over, zero margin", 0, intraOut, true},
		{"intra 10% over, 25% margin", 25, intraOut, false},
		{"inter above window, zero margin", 0, interOut, true},
		{"inter above window, 50% margin", 50, interOut, false},
		{"healthy run, -100 margin (test hook)", -100, inEnvelope, true},
		{"skew fields not measured", 0, Outcome{SkewValid: false, IntraMax: 1 << 20}, false},
	}
	for _, tc := range cases {
		a := NewArmer(ArmPolicy{OnSkew: true, SkewMarginPct: tc.margin})
		reason, arm := a.Evaluate(tc.o)
		if arm != tc.arm {
			t.Errorf("%s: arm=%v reason=%q, want arm=%v", tc.name, arm, reason, tc.arm)
		}
		if arm && reason != "skew" {
			t.Errorf("%s: reason %q, want skew", tc.name, reason)
		}
	}
}

func TestArmerSlowPercentile(t *testing.T) {
	a := NewArmer(ArmPolicy{OnSlow: true, SlowPct: 90, SlowMinSamples: 10})

	// Under-populated window: nothing arms, even absurdly slow runs.
	for i := 0; i < 9; i++ {
		if _, arm := a.Evaluate(Outcome{Elapsed: time.Hour}); arm {
			t.Fatalf("armed at sample %d, below SlowMinSamples", i)
		}
	}
	// Fill the window with a uniform baseline.
	for i := 0; i < 100; i++ {
		a.Evaluate(Outcome{Elapsed: 10 * time.Millisecond})
	}
	if reason, arm := a.Evaluate(Outcome{Elapsed: 10 * time.Millisecond}); arm {
		t.Fatalf("typical run armed: %q", reason)
	}
	if reason, arm := a.Evaluate(Outcome{Elapsed: time.Second}); !arm || reason != "slow" {
		t.Fatalf("outlier run: arm=%v reason=%q", arm, reason)
	}
}

func TestArmerDefaultsClamped(t *testing.T) {
	a := NewArmer(ArmPolicy{OnSlow: true, SlowPct: 250})
	if p := a.Policy(); p.SlowPct != 99 || p.SlowMinSamples != 32 {
		t.Fatalf("defaults not applied: pct=%v min=%d", p.SlowPct, p.SlowMinSamples)
	}
}
