// Package obs is the unified observability layer of the repository: a
// request-scoped trace (an ID plus per-stage spans) that travels through
// context.Context from the HTTP handler down to the simulation sweep, a
// bounded ring of completed traces behind hexd's GET /v1/debug/requests,
// an allocation-free flight recorder implementing core.Tracer that
// captures the tail of a simulation's event stream for post-mortem audit,
// and a time-decaying EWMA rate used by the hexd_events_per_sec metric.
//
// Everything here is designed to cost nothing when unused: a nil *Trace is
// a valid receiver for every method, FromContext on a bare context returns
// nil, and the simulation hot loop is only touched when a flight recorder
// is explicitly armed (core's per-event tracer check predates this
// package).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// maxSpans bounds the per-trace span list so a 2000-run sweep cannot grow
// a trace without bound; further spans are counted, not stored.
const maxSpans = 256

// maxRequestIDLen bounds accepted client-supplied request IDs.
const maxRequestIDLen = 64

// RequestID returns a usable request ID: the client-supplied value when it
// is non-empty, printable, and of sane length (so it can be echoed into
// headers, JSON bodies, and log lines verbatim), or a fresh random ID.
func RequestID(supplied string) string {
	if supplied != "" && len(supplied) <= maxRequestIDLen && printable(supplied) {
		return supplied
	}
	return NewRequestID()
}

// NewRequestID returns a fresh 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still functional (correlation only degrades).
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// printable reports whether s is safe to reflect into headers and logs.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] >= 0x7f {
			return false
		}
	}
	return true
}

// Trace collects the per-stage timings and outcome of one request. All
// methods are safe for concurrent use and valid on a nil receiver (no-ops),
// so instrumented code never needs to branch on whether tracing is on.
type Trace struct {
	mu           sync.Mutex
	id           string
	traceID      string
	spanID       string
	parentSpanID string
	endpoint     string
	start        time.Time
	spans        []Span
	spansDropped int
	notes        []string
	attrs        map[string]string
	status       int
	errMsg       string
	flight       *FlightDump
	done         bool
	duration     time.Duration
}

// Span is one named stage of a request, stored as offsets from the trace
// start so snapshots serialize compactly.
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// NewTrace starts a trace for one request. Every trace is born with its
// own W3C span-id so that downstream hops (router→backend, job→unit) can
// name it as their parent.
func NewTrace(id, endpoint string) *Trace {
	return &Trace{id: id, endpoint: endpoint, spanID: NewSpanID(), start: time.Now()}
}

// ID returns the request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetTraceID attaches a W3C trace-id (32 hex chars) correlating this
// request across fleet nodes; it appears as trace_id in snapshots.
func (t *Trace) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.traceID = id
}

// TraceID returns the attached W3C trace-id ("" when none).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// SpanID returns this trace's own W3C span-id (16 hex chars, minted at
// NewTrace; "" on a nil trace). Senders put it in the traceparent header
// so the receiving hop's span parents under this one.
func (t *Trace) SpanID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spanID
}

// SetParentSpanID records the span-id of the hop that caused this request
// (from an incoming traceparent header or an enclosing job trace), linking
// this trace into the fleet-wide tree the OTLP exporter emits.
func (t *Trace) SetParentSpanID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.parentSpanID = id
}

// ParentSpanID returns the recorded parent span-id ("" when this trace is
// a root).
func (t *Trace) ParentSpanID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parentSpanID
}

// StartSpan begins a named stage and returns the function that ends it.
// Typical use: defer tr.StartSpan("sim")().
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.AddSpan(name, begin, time.Now()) }
}

// AddSpan records a stage with explicit wall-clock endpoints; use it when
// the stage's start and end happen on different goroutines (queue wait).
func (t *Trace) AddSpan(name string, begin, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.spansDropped++
		return
	}
	t.spans = append(t.spans, Span{Name: name, Start: begin.Sub(t.start), End: end.Sub(t.start)})
}

// Note attaches a short annotation ("cache-hit", "join-inflight", …).
func (t *Trace) Note(note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.notes = append(t.notes, note)
}

// SetAttr attaches a structured key/value attribute to the trace,
// surfaced as attrs in snapshots. Unlike Note (a free-form breadcrumb),
// attrs are for identifiers worth filtering on — a sweep unit's job ID,
// unit index, and tenant — so /v1/debug/requests can answer "show me the
// units of job X" without string-parsing notes.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[key] = value
}

// SetFlight attaches a flight-recorder dump. It may be called after Finish:
// a computation that outlives its waiters (all of them timed out) still
// reports its dump into the trace, and snapshots taken afterwards see it.
func (t *Trace) SetFlight(d *FlightDump) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flight = d
}

// Finish closes the trace with the response status; err may be nil. It is
// idempotent (the first call wins), since a slow computation may race a
// timed-out waiter.
func (t *Trace) Finish(status int, err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.status = status
	t.duration = time.Since(t.start)
	if err != nil {
		t.errMsg = err.Error()
	}
}

// TraceSnapshot is an immutable copy of a trace, shaped for JSON.
type TraceSnapshot struct {
	ID           string            `json:"id"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Endpoint     string            `json:"endpoint"`
	Start        time.Time         `json:"start"`
	DurationMs   float64           `json:"duration_ms"`
	Status       int               `json:"status"`
	Error        string            `json:"error,omitempty"`
	Notes        []string          `json:"notes,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Spans        []SpanSnapshot    `json:"spans,omitempty"`
	SpansDropped int               `json:"spans_dropped,omitempty"`
	Flight       *FlightDump       `json:"flight,omitempty"`
}

// SpanSnapshot is one span in a TraceSnapshot.
type SpanSnapshot struct {
	Name    string  `json:"name"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
}

// Snapshot deep-copies the trace's current state. Safe to call while other
// goroutines are still adding spans (a late flight dump, a straggling
// computation): such additions simply show up in later snapshots.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{
		ID:           t.id,
		TraceID:      t.traceID,
		SpanID:       t.spanID,
		ParentSpanID: t.parentSpanID,
		Endpoint:     t.endpoint,
		Start:        t.start,
		DurationMs:   float64(t.duration) / float64(time.Millisecond),
		Status:       t.status,
		Error:        t.errMsg,
		Notes:        append([]string(nil), t.notes...),
		SpansDropped: t.spansDropped,
		Flight:       t.flight,
	}
	if len(t.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			snap.Attrs[k] = v
		}
	}
	if !t.done {
		snap.DurationMs = float64(time.Since(t.start)) / float64(time.Millisecond)
	}
	for _, sp := range t.spans {
		snap.Spans = append(snap.Spans, SpanSnapshot{
			Name:    sp.Name,
			StartUs: float64(sp.Start) / float64(time.Microsecond),
			DurUs:   float64(sp.End-sp.Start) / float64(time.Microsecond),
		})
	}
	return snap
}

// ctxKey keys the trace in a context.Context.
type ctxKey struct{}

// WithTrace attaches tr to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace attached to ctx, or nil. The nil result is
// a valid receiver for every Trace method, so callers never need to check.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
