package obs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"regexp"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/trace"
)

func TestRequestID(t *testing.T) {
	if got := obs.RequestID("client-supplied-42"); got != "client-supplied-42" {
		t.Fatalf("sane client ID replaced: %q", got)
	}
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, bad := range []string{"", "has space", "ctrl\x01char", "nonasciié", string(make([]byte, 80))} {
		if got := obs.RequestID(bad); !hexID.MatchString(got) {
			t.Fatalf("RequestID(%q) = %q, want fresh 16-hex ID", bad, got)
		}
	}
	if a, b := obs.NewRequestID(), obs.NewRequestID(); a == b {
		t.Fatalf("consecutive request IDs collided: %q", a)
	}
}

// TestTraceNilSafety pins that every Trace method is a no-op on the nil
// receiver, which is what lets instrumented code skip nil checks.
func TestTraceNilSafety(t *testing.T) {
	var tr *obs.Trace
	if tr := obs.FromContext(context.Background()); tr != nil {
		t.Fatal("FromContext on a bare context returned a trace")
	}
	if obs.FromContext(nil) != nil {
		t.Fatal("FromContext(nil) returned a trace")
	}
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Now())
	tr.Note("z")
	tr.SetFlight(&obs.FlightDump{})
	tr.Finish(200, nil)
	if id := tr.ID(); id != "" {
		t.Fatalf("nil trace ID = %q", id)
	}
	if snap := tr.Snapshot(); snap.ID != "" || len(snap.Spans) != 0 {
		t.Fatalf("nil trace snapshot not empty: %+v", snap)
	}
}

func TestTraceSnapshotAndFinish(t *testing.T) {
	tr := obs.NewTrace("rid-1", "run")
	if got := obs.FromContext(obs.WithTrace(context.Background(), tr)); got != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	end := tr.StartSpan("sim")
	time.Sleep(time.Millisecond)
	end()
	tr.Note("cache-miss")
	tr.Finish(504, context.DeadlineExceeded)
	tr.Finish(200, nil) // idempotent: the first call wins
	tr.SetFlight(&obs.FlightDump{Captured: 3, AuditOK: true})

	snap := tr.Snapshot()
	if snap.ID != "rid-1" || snap.Endpoint != "run" {
		t.Fatalf("snapshot identity = %q/%q", snap.ID, snap.Endpoint)
	}
	if snap.Status != 504 || snap.Error != context.DeadlineExceeded.Error() {
		t.Fatalf("Finish not first-call-wins: status=%d err=%q", snap.Status, snap.Error)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "sim" || snap.Spans[0].DurUs <= 0 {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if len(snap.Notes) != 1 || snap.Notes[0] != "cache-miss" {
		t.Fatalf("notes = %v", snap.Notes)
	}
	if snap.Flight == nil || snap.Flight.Captured != 3 {
		t.Fatal("flight dump attached after Finish is missing from the snapshot")
	}
	if snap.DurationMs <= 0 {
		t.Fatalf("duration_ms = %v", snap.DurationMs)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := obs.NewTrace("rid", "spec")
	now := time.Now()
	for i := 0; i < 300; i++ {
		tr.AddSpan(fmt.Sprintf("run[%d]", i), now, now)
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 256 {
		t.Fatalf("span cap: kept %d", len(snap.Spans))
	}
	if snap.SpansDropped != 44 {
		t.Fatalf("spans_dropped = %d, want 44", snap.SpansDropped)
	}
}

func TestRingNewestFirstAndEviction(t *testing.T) {
	r := obs.NewRing(3)
	for i := 1; i <= 5; i++ {
		tr := obs.NewTrace(fmt.Sprintf("id-%d", i), "run")
		tr.Finish(200, nil)
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	var ids []string
	for _, s := range r.Snapshots() {
		ids = append(ids, s.ID)
	}
	if want := []string{"id-5", "id-4", "id-3"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("snapshots = %v, want %v", ids, want)
	}
}

func TestRingDisabled(t *testing.T) {
	for _, r := range []*obs.Ring{nil, obs.NewRing(0), obs.NewRing(-1)} {
		r.Add(obs.NewTrace("x", "run"))
		if r.Len() != 0 || r.Snapshots() != nil {
			t.Fatal("disabled ring retained traces")
		}
	}
}

func TestRateEWMA(t *testing.T) {
	clock := time.Unix(1000, 0)
	e := obs.NewRateEWMA(time.Minute)
	e.SetNow(func() time.Time { return clock })

	// Degenerate measurements are dropped, not recorded as zero.
	e.Observe(0, time.Second)
	e.Observe(100, 0)
	e.Observe(100, -time.Second)
	if got := e.Rate(); got != 0 {
		t.Fatalf("rate after degenerate observations = %v", got)
	}

	// The first real measurement primes the average exactly.
	e.Observe(1000, time.Second)
	if got := e.Rate(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("primed rate = %v, want 1000", got)
	}

	// A steady stream holds the average steady.
	for i := 0; i < 5; i++ {
		clock = clock.Add(time.Second)
		e.Observe(1000, time.Second)
	}
	if got := e.Rate(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("steady rate = %v, want 1000", got)
	}

	// Idle reads decay toward zero without mutating state: after tau the
	// rate is 1/e of its value, and reading twice gives the same answer.
	clock = clock.Add(time.Minute)
	want := 1000 * math.Exp(-1)
	if got := e.Rate(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("decayed rate = %v, want %v", got, want)
	}
	if got := e.Rate(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("second idle read moved the rate: %v", got)
	}

	// A new measurement blends: the result lands between the decayed old
	// rate and the new instantaneous rate.
	e.Observe(4000, time.Second)
	if got := e.Rate(); got <= want || got >= 4000 {
		t.Fatalf("blended rate = %v, want between %v and 4000", got, want)
	}
	if e.Value() <= 0 {
		t.Fatalf("Value = %d", e.Value())
	}
}

// flightConfig is a small deterministic run used by the recorder tests.
func flightConfig(rec core.Tracer) core.Config {
	h := grid.MustHex(10, 8)
	p := core.DefaultParams()
	offsets := source.Offsets(source.UniformDPlus, h.W, p.Bounds,
		sim.NewRNG(sim.DeriveSeed(7, "offsets")))
	return core.Config{
		Graph:    h.Graph,
		Params:   p,
		Delay:    delay.Uniform{Bounds: p.Bounds},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(offsets),
		Seed:     7,
		Trace:    rec,
	}
}

// TestFlightRecorderTailMatchesFullStream runs the same simulation twice —
// once into an unbounded reference recorder, once into a small ring — and
// checks the ring holds exactly the reference stream's suffix.
func TestFlightRecorderTailMatchesFullStream(t *testing.T) {
	ref := &trace.Recorder{}
	if _, err := core.Run(flightConfig(ref)); err != nil {
		t.Fatal(err)
	}
	const cap = 64
	fr := obs.NewFlightRecorder(cap)
	if _, err := core.Run(flightConfig(fr)); err != nil {
		t.Fatal(err)
	}
	if len(ref.Events) <= cap {
		t.Fatalf("reference run too small to wrap the ring: %d events", len(ref.Events))
	}
	if fr.Len() != cap {
		t.Fatalf("ring Len = %d, want %d", fr.Len(), cap)
	}
	if got, want := fr.Dropped(), uint64(len(ref.Events)-cap); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	tail := fr.Events()
	if !reflect.DeepEqual(tail, ref.Events[len(ref.Events)-cap:]) {
		t.Fatal("ring contents are not the suffix of the full event stream")
	}
}

func TestFlightRecorderMinCapacity(t *testing.T) {
	fr := obs.NewFlightRecorder(-5)
	for i := 0; i < 100; i++ {
		fr.Fire(i, sim.Time(i), false)
	}
	if fr.Len() != 16 {
		t.Fatalf("clamped capacity retained %d events, want 16", fr.Len())
	}
}

// TestFlightDumpRoundTrip captures a complete run, audits it, serializes
// the dump to JSON and back, and re-audits the reconstructed event stream
// offline — the replay path a post-mortem tool would take.
func TestFlightDumpRoundTrip(t *testing.T) {
	fr := obs.NewFlightRecorder(1 << 20)
	cfg := flightConfig(fr)
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	aud := &trace.Auditor{G: cfg.Graph, Plan: cfg.Faults, Params: cfg.Params}
	dump := obs.NewFlightDump(fr, aud, true)
	if !dump.Complete || dump.Dropped != 0 {
		t.Fatalf("complete run reported Complete=%t Dropped=%d", dump.Complete, dump.Dropped)
	}
	if !dump.AuditOK {
		t.Fatalf("audit failed on a clean run: %s", dump.AuditError)
	}
	if dump.Captured == 0 || len(dump.Events) != dump.Captured {
		t.Fatalf("captured=%d events=%d", dump.Captured, len(dump.Events))
	}

	blob, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.FlightDump
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	evs, err := back.TraceEvents()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(evs, fr.Events()) {
		t.Fatal("events did not survive the JSON round trip")
	}
	if err := aud.AuditAll(&trace.Recorder{Events: evs}); err != nil {
		t.Fatalf("offline re-audit of the round-tripped dump failed: %v", err)
	}
}

// TestFlightDumpTailAudit pins the wrapped-ring path: the dump is marked
// incomplete and the window-tolerant tail audit accepts the suffix.
func TestFlightDumpTailAudit(t *testing.T) {
	fr := obs.NewFlightRecorder(64)
	cfg := flightConfig(fr)
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	aud := &trace.Auditor{G: cfg.Graph, Plan: cfg.Faults, Params: cfg.Params}
	dump := obs.NewFlightDump(fr, aud, false)
	if dump.Complete {
		t.Fatal("wrapped ring reported a complete stream")
	}
	if !dump.AuditOK {
		t.Fatalf("tail audit rejected a clean run's window: %s", dump.AuditError)
	}
	if len(dump.Events) != 0 {
		t.Fatal("withEvents=false embedded events on a passing audit")
	}

	// A corrupted window must both fail the audit and embed the events so
	// the dump is actionable.
	fr.Send(0, 1, 100*sim.Nanosecond, 101*sim.Nanosecond) // delay below d-
	bad := obs.NewFlightDump(fr, aud, false)
	if bad.AuditOK {
		t.Fatal("tail audit accepted a send with an impossible delay")
	}
	if len(bad.Events) == 0 {
		t.Fatal("failing dump did not embed its events")
	}
}
