package obs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FlightRecorder is a bounded, allocation-free ring buffer over the
// simulation's internal event stream. It implements core.Tracer: armed via
// core.Config.Trace it captures the tail (the last capacity events) of a
// run, which is exactly the window of interest when a run is cancelled,
// errors out, or fails an audit. All storage is allocated up front; the
// per-event callbacks write one preallocated slot and never allocate, so
// arming a recorder does not perturb the run it is observing beyond the
// core's existing tracer indirection.
//
// A FlightRecorder is not safe for concurrent use, matching the engine's
// single-threaded dispatch; use one per run.
type FlightRecorder struct {
	buf     []trace.Event
	next    int
	full    bool
	dropped uint64
}

var _ core.Tracer = (*FlightRecorder)(nil)

// minFlightCapacity keeps degenerate capacities usable.
const minFlightCapacity = 16

// NewFlightRecorder returns a recorder retaining the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < minFlightCapacity {
		capacity = minFlightCapacity
	}
	return &FlightRecorder{buf: make([]trace.Event, capacity)}
}

// record writes one event into the ring.
func (f *FlightRecorder) record(e trace.Event) {
	if f.full {
		f.dropped++
	}
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
}

// Send implements core.Tracer.
func (f *FlightRecorder) Send(from, to int, at, arrival sim.Time) {
	f.record(trace.Event{Kind: trace.KindSend, At: at, Node: from, Peer: to, Arrival: arrival})
}

// Deliver implements core.Tracer.
func (f *FlightRecorder) Deliver(from, to int, at sim.Time, accepted bool) {
	f.record(trace.Event{Kind: trace.KindDeliver, At: at, Node: to, Peer: from, Accepted: accepted})
}

// FlagExpire implements core.Tracer.
func (f *FlightRecorder) FlagExpire(node, input int, at sim.Time) {
	f.record(trace.Event{Kind: trace.KindFlagExpire, At: at, Node: node, Peer: input})
}

// Fire implements core.Tracer.
func (f *FlightRecorder) Fire(node int, at sim.Time, source bool) {
	f.record(trace.Event{Kind: trace.KindFire, At: at, Node: node, Source: source})
}

// Sleep implements core.Tracer.
func (f *FlightRecorder) Sleep(node int, at sim.Time) {
	f.record(trace.Event{Kind: trace.KindSleep, At: at, Node: node})
}

// Wake implements core.Tracer.
func (f *FlightRecorder) Wake(node int, at sim.Time) {
	f.record(trace.Event{Kind: trace.KindWake, At: at, Node: node})
}

// Len reports the number of retained events.
func (f *FlightRecorder) Len() int {
	if f.full {
		return len(f.buf)
	}
	return f.next
}

// Dropped reports how many events were overwritten after the ring filled.
// Zero means the recorder holds the run's complete event stream.
func (f *FlightRecorder) Dropped() uint64 { return f.dropped }

// Events returns the retained events oldest-first, as a copy.
func (f *FlightRecorder) Events() []trace.Event {
	n := f.Len()
	out := make([]trace.Event, 0, n)
	if f.full {
		out = append(out, f.buf[f.next:]...)
	}
	return append(out, f.buf[:f.next]...)
}

// Recorder exports the retained window as a trace.Recorder, the input type
// of the trace package's audits.
func (f *FlightRecorder) Recorder() *trace.Recorder {
	return &trace.Recorder{Events: f.Events()}
}

// FlightEvent is one recorded event in a FlightDump, shaped for compact
// JSON. It round-trips losslessly to trace.Event, which is what makes a
// dump replayable offline.
type FlightEvent struct {
	Kind     string   `json:"k"`
	At       sim.Time `json:"at"`
	Node     int      `json:"n"`
	Peer     int      `json:"p,omitempty"`
	Arrival  sim.Time `json:"arr,omitempty"`
	Accepted bool     `json:"acc,omitempty"`
	Source   bool     `json:"src,omitempty"`
}

// FlightDump is the serializable capture of a flight recorder's window,
// audited at capture time against the run's own graph, fault plan and
// parameters. Captured/Dropped describe the window; Complete reports that
// the ring never wrapped, i.e. the window is the run's entire event stream
// and the full trace.Audit suite applied (otherwise the window-tolerant
// tail audit did).
type FlightDump struct {
	Captured   int           `json:"captured"`
	Dropped    uint64        `json:"dropped"`
	Complete   bool          `json:"complete"`
	AuditOK    bool          `json:"audit_ok"`
	AuditError string        `json:"audit_error,omitempty"`
	Events     []FlightEvent `json:"events,omitempty"`
}

// NewFlightDump captures fr's window and audits it with a: the full
// trace.Audit suite when the window is the complete run, the tail audit
// when the ring wrapped. withEvents controls whether the raw events are
// embedded (they dominate the dump's size; hexd embeds them only for
// failed or audit-violating runs).
func NewFlightDump(fr *FlightRecorder, a *trace.Auditor, withEvents bool) *FlightDump {
	rec := fr.Recorder()
	complete := fr.Dropped() == 0
	var auditErr error
	if complete {
		auditErr = a.AuditAll(rec)
	} else {
		auditErr = a.AuditTail(rec)
	}
	d := &FlightDump{
		Captured: len(rec.Events),
		Dropped:  fr.Dropped(),
		Complete: complete,
		AuditOK:  auditErr == nil,
	}
	if auditErr != nil {
		d.AuditError = auditErr.Error()
	}
	if withEvents || auditErr != nil {
		d.Events = make([]FlightEvent, len(rec.Events))
		for i, e := range rec.Events {
			d.Events[i] = FlightEvent{
				Kind:     e.Kind.String(),
				At:       e.At,
				Node:     e.Node,
				Peer:     e.Peer,
				Arrival:  e.Arrival,
				Accepted: e.Accepted,
				Source:   e.Source,
			}
		}
	}
	return d
}

// TraceEvents reconstructs the dump's window as trace.Events, so an
// exported dump can be re-audited offline (e.g. by a test harness or a
// post-mortem tool) with the trace package.
func (d *FlightDump) TraceEvents() ([]trace.Event, error) {
	out := make([]trace.Event, len(d.Events))
	for i, e := range d.Events {
		k, ok := trace.ParseKind(e.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: event %d has unknown kind %q", i, e.Kind)
		}
		out[i] = trace.Event{
			Kind:     k,
			At:       e.At,
			Node:     e.Node,
			Peer:     e.Peer,
			Arrival:  e.Arrival,
			Accepted: e.Accepted,
			Source:   e.Source,
		}
	}
	return out, nil
}
