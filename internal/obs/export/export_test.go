package export

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// collector is an in-process fake OTLP collector: it decodes every
// /v1/traces POST and keeps the spans for assertions.
type collector struct {
	mu       sync.Mutex
	spans    []Span
	requests int
	fail     atomic.Bool   // respond 503 when set
	block    chan struct{} // when non-nil, handlers wait on it
}

func (c *collector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.block != nil {
			<-c.block
		}
		if c.fail.Load() {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path != "/v1/traces" {
			http.Error(w, "wrong path", http.StatusNotFound)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			http.Error(w, "wrong content type "+ct, http.StatusBadRequest)
			return
		}
		var p Payload
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		c.requests++
		for _, rs := range p.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *collector) spanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

func (c *collector) find(name string) (Span, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.spans {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

func attrValue(s Span, key string) (AnyValue, bool) {
	for _, kv := range s.Attributes {
		if kv.Key == key {
			return kv.Value, true
		}
	}
	return AnyValue{}, false
}

func finishedTrace(endpoint string) *obs.Trace {
	tr := obs.NewTrace(obs.NewRequestID(), endpoint)
	tr.SetTraceID(obs.NewTraceID())
	done := tr.StartSpan("simulate")
	done()
	tr.Finish(200, nil)
	return tr
}

func TestNilExporterIsInert(t *testing.T) {
	var e *Exporter
	if e.Enabled() {
		t.Fatal("nil exporter reports enabled")
	}
	e.Export(finishedTrace("/v1/run")) // must not panic
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if e.Exported()+e.Dropped()+e.Retries() != 0 {
		t.Fatal("nil exporter has nonzero counters")
	}
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil WriteMetrics wrote %q", buf.String())
	}
	if New(Options{}) != nil {
		t.Fatal("New with empty endpoint should return nil")
	}
}

func TestExportRoundTrip(t *testing.T) {
	c := &collector{}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := New(Options{Endpoint: srv.URL, BatchSize: 2, FlushInterval: time.Hour})
	defer e.Close(context.Background())

	tr := obs.NewTrace("req-1", "/v1/run")
	tr.SetTraceID(obs.NewTraceID())
	tr.SetParentSpanID("aaaabbbbccccdddd")
	tr.SetAttr("scenario", "iii")
	tr.Note("cache:miss")
	done := tr.StartSpan("simulate")
	done()
	tr.Finish(500, errors.New("boom"))

	e.Export(tr)
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}

	root, ok := c.find("/v1/run")
	if !ok {
		t.Fatalf("no root span exported; got %d spans", c.spanCount())
	}
	if root.TraceID != tr.TraceID() {
		t.Fatalf("trace id %q, want %q", root.TraceID, tr.TraceID())
	}
	if root.SpanID != tr.SpanID() {
		t.Fatalf("span id %q, want trace's own %q", root.SpanID, tr.SpanID())
	}
	if root.ParentSpanID != "aaaabbbbccccdddd" {
		t.Fatalf("parent span id %q, want aaaabbbbccccdddd", root.ParentSpanID)
	}
	if root.Kind != KindServer {
		t.Fatalf("root kind %d, want SERVER(%d)", root.Kind, KindServer)
	}
	if root.Status == nil || root.Status.Code != StatusError || root.Status.Message != "boom" {
		t.Fatalf("root status %+v, want error/boom", root.Status)
	}
	if v, ok := attrValue(root, "hexd.scenario"); !ok || *v.StringValue != "iii" {
		t.Fatalf("hexd.scenario attr missing or wrong: %+v", v)
	}
	if v, ok := attrValue(root, "hexd.notes"); !ok || len(v.ArrayValue.Values) != 1 {
		t.Fatalf("hexd.notes attr missing or wrong: %+v", v)
	}
	child, ok := c.find("simulate")
	if !ok {
		t.Fatal("stage child span not exported")
	}
	if child.TraceID != root.TraceID || child.ParentSpanID != root.SpanID {
		t.Fatalf("child not parented to root: trace %q parent %q", child.TraceID, child.ParentSpanID)
	}
	if child.Kind != KindInternal {
		t.Fatalf("child kind %d, want INTERNAL(%d)", child.Kind, KindInternal)
	}
	if got := e.Exported(); got != 2 {
		t.Fatalf("Exported() = %d, want 2", got)
	}
}

func TestCollectorDownAtBoot(t *testing.T) {
	// Grab a port that refuses connections by closing a listener.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	e := New(Options{Endpoint: url, Retries: 1, Backoff: time.Millisecond, FlushInterval: time.Hour})
	defer e.Close(context.Background())

	e.Export(finishedTrace("/v1/run"))
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if e.Exported() != 0 {
		t.Fatalf("Exported() = %d with no collector", e.Exported())
	}
	if e.Dropped() == 0 {
		t.Fatal("batch should be dropped after exhausted retries")
	}
	if e.Retries() == 0 {
		t.Fatal("retry attempts should be counted")
	}
}

func TestCollectorDiesMidStream(t *testing.T) {
	c := &collector{}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := New(Options{Endpoint: srv.URL, Retries: 1, Backoff: time.Millisecond, FlushInterval: time.Hour})
	defer e.Close(context.Background())

	e.Export(finishedTrace("/v1/run"))
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	if e.Exported() == 0 {
		t.Fatal("first batch should export while collector is up")
	}

	c.fail.Store(true) // collector starts erroring mid-stream
	before := e.Dropped()
	e.Export(finishedTrace("/v1/spec"))
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	if e.Dropped() <= before {
		t.Fatal("batch should be dropped once the collector starts failing")
	}

	c.fail.Store(false) // collector recovers; exporter keeps going
	after := e.Exported()
	e.Export(finishedTrace("/v1/run"))
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush 3: %v", err)
	}
	if e.Exported() <= after {
		t.Fatal("exports should resume after the collector recovers")
	}
}

func TestSlowCollectorNeverBlocksExport(t *testing.T) {
	c := &collector{block: make(chan struct{})}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	e := New(Options{Endpoint: srv.URL, QueueSize: 2, BatchSize: 1, FlushInterval: time.Hour})

	// The sender goroutine is stuck in a POST the collector refuses to
	// answer; the bounded queue fills and Export must keep returning
	// immediately, counting drops instead of stalling the sim path.
	start := time.Now()
	for i := 0; i < 100; i++ {
		e.Export(finishedTrace("/v1/run"))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("100 Exports took %v against a hung collector", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Dropped() == 0 {
		t.Fatal("full queue should count drops while the collector hangs")
	}

	close(c.block) // collector wakes up; Close drains what survived
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if e.Exported() == 0 {
		t.Fatal("queued spans should flush once the collector unblocks")
	}
}

func TestCloseDrainsQueue(t *testing.T) {
	c := &collector{}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()

	// FlushInterval and BatchSize both too large to trigger on their own:
	// only the Close-path drain can deliver these spans.
	e := New(Options{Endpoint: srv.URL, BatchSize: 64, FlushInterval: time.Hour})
	const n = 10
	for i := 0; i < n; i++ {
		e.Export(finishedTrace(fmt.Sprintf("/v1/run#%d", i)))
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := e.Exported(); got != 2*n { // root + one stage span each
		t.Fatalf("Exported() = %d after Close, want %d", got, 2*n)
	}
	if c.spanCount() != 2*n {
		t.Fatalf("collector saw %d spans, want %d", c.spanCount(), 2*n)
	}
	// Close is idempotent.
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestMarshalSpanTruncationAttr(t *testing.T) {
	snap := obs.TraceSnapshot{
		ID:           "req-x",
		TraceID:      obs.NewTraceID(),
		SpanID:       obs.NewSpanID(),
		Endpoint:     "/v1/run",
		Start:        time.Unix(1700000000, 0),
		Status:       200,
		SpansDropped: 7,
	}
	body, n := Marshal("hexd", []obs.TraceSnapshot{snap})
	if n != 1 {
		t.Fatalf("span count %d, want 1", n)
	}
	var p Payload
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("payload does not round-trip: %v", err)
	}
	root := p.ResourceSpans[0].ScopeSpans[0].Spans[0]
	v, ok := attrValue(root, "hexd.spans_dropped")
	if !ok || v.IntValue == nil || *v.IntValue != "7" {
		t.Fatalf("hexd.spans_dropped attr missing or wrong: %+v", v)
	}
	if kv := p.ResourceSpans[0].Resource.Attributes[0]; kv.Key != "service.name" || *kv.Value.StringValue != "hexd" {
		t.Fatalf("service.name resource attr wrong: %+v", kv)
	}
}

func TestMarshalMintsIDsForUnstitchedTraces(t *testing.T) {
	snap := obs.TraceSnapshot{ID: "req-y", Endpoint: "/healthz", Start: time.Unix(1700000000, 0)}
	body, _ := Marshal("hexd", []obs.TraceSnapshot{snap})
	var p Payload
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	root := p.ResourceSpans[0].ScopeSpans[0].Spans[0]
	if len(root.TraceID) != 32 || len(root.SpanID) != 16 {
		t.Fatalf("minted ids malformed: trace %q span %q", root.TraceID, root.SpanID)
	}
}

func TestWriteMetricsFamilies(t *testing.T) {
	c := &collector{}
	srv := httptest.NewServer(c.handler())
	defer srv.Close()
	e := New(Options{Endpoint: srv.URL})
	defer e.Close(context.Background())

	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"hexd_otlp_exported_total",
		"hexd_otlp_dropped_total",
		"hexd_otlp_retries_total",
		"hexd_otlp_queue_depth",
	} {
		if !strings.Contains(out, "# TYPE "+want) {
			t.Errorf("WriteMetrics missing family %s:\n%s", want, out)
		}
	}
}
