// Package export is an in-process, dependency-free OTLP/JSON-over-HTTP
// span exporter: it converts completed obs.Trace records — request span,
// per-stage child spans, attrs, notes, and flight-recorder dumps — into
// OTLP ResourceSpans and POSTs them to a collector's /v1/traces endpoint
// (Jaeger, the OpenTelemetry Collector, anything speaking OTLP/HTTP).
//
// The design constraints mirror the rest of the observability layer:
//
//   - The serving path never blocks. Export enqueues a snapshot onto a
//     bounded queue and returns; when the queue is full (collector slow
//     or down) the spans are counted as dropped, not waited for.
//   - A nil *Exporter is a valid receiver for every method, so call
//     sites need no branching when -otlp-endpoint is unset.
//   - Batching amortizes the HTTP round trip; a failed POST retries with
//     exponential backoff a bounded number of times, then the batch is
//     dropped and counted. Nothing is ever retried across process exit.
//   - Close drains: hexd's SIGTERM path flushes queued spans before the
//     listener goes away.
//
// W3C parentage survives the conversion: each obs.Trace carries its own
// span-id and the span-id of the hop that caused it (router forward,
// sweep-job root), so a router-hop request renders as one stitched tree
// across the fleet in the collector's UI.
package export

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options configures an Exporter. The zero value of every field but
// Endpoint is usable; Endpoint empty means "exporting disabled" and New
// returns nil.
type Options struct {
	// Endpoint is the collector base URL (e.g. http://localhost:4318);
	// spans POST to Endpoint + "/v1/traces".
	Endpoint string

	// ServiceName becomes the OTLP resource's service.name attribute.
	// Default "hexd".
	ServiceName string

	// QueueSize bounds the trace-snapshot queue between the serving path
	// and the sender goroutine. Default 1024.
	QueueSize int

	// BatchSize is the number of trace snapshots per POST. Default 64.
	BatchSize int

	// FlushInterval bounds how long a non-full batch waits. Default 2s.
	FlushInterval time.Duration

	// Retries is how many times a failed POST is retried (beyond the
	// first attempt) before the batch is dropped. Default 2.
	Retries int

	// Backoff is the first retry's delay; it doubles per attempt.
	// Default 250ms.
	Backoff time.Duration

	// Timeout bounds each POST. Default 5s.
	Timeout time.Duration

	// Client overrides the HTTP client (tests). Default: a fresh client
	// with Timeout.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.ServiceName == "" {
		o.ServiceName = "hexd"
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: o.Timeout}
	}
	return o
}

// Exporter ships trace snapshots to an OTLP collector from a single
// background goroutine. All methods are safe for concurrent use and on a
// nil receiver.
type Exporter struct {
	opts Options
	url  string

	queue   chan obs.TraceSnapshot
	flushCh chan chan struct{}
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once

	exported atomic.Uint64 // spans successfully POSTed
	dropped  atomic.Uint64 // spans lost to a full queue or exhausted retries
	retries  atomic.Uint64 // POST retry attempts
}

// New starts an exporter, or returns nil (a valid, inert receiver) when
// o.Endpoint is empty.
func New(o Options) *Exporter {
	if o.Endpoint == "" {
		return nil
	}
	o = o.withDefaults()
	e := &Exporter{
		opts:    o,
		url:     o.Endpoint + "/v1/traces",
		queue:   make(chan obs.TraceSnapshot, o.QueueSize),
		flushCh: make(chan chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go e.loop()
	return e
}

// Enabled reports whether spans are actually being exported.
func (e *Exporter) Enabled() bool { return e != nil }

// Export snapshots tr and enqueues it without blocking. A full queue
// (slow or absent collector) counts the trace's spans as dropped; the
// serving path is never back-pressured by the collector.
func (e *Exporter) Export(tr *obs.Trace) {
	if e == nil || tr == nil {
		return
	}
	snap := tr.Snapshot()
	select {
	case e.queue <- snap:
	default:
		e.dropped.Add(uint64(1 + len(snap.Spans)))
	}
}

// Flush sends everything queued at the time of the call, blocking until
// the queue has drained and the final POST completed (or ctx expired).
func (e *Exporter) Flush(ctx context.Context) error {
	if e == nil {
		return nil
	}
	ack := make(chan struct{})
	select {
	case e.flushCh <- ack:
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue and stops the sender. Traces exported after
// Close are dropped once the queue fills. Safe to call more than once.
func (e *Exporter) Close(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.once.Do(func() { close(e.stop) })
	select {
	case <-e.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Exported returns the number of spans successfully POSTed.
func (e *Exporter) Exported() uint64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Dropped returns the number of spans lost (full queue or exhausted
// retries).
func (e *Exporter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Retries returns the number of POST retry attempts.
func (e *Exporter) Retries() uint64 {
	if e == nil {
		return 0
	}
	return e.retries.Load()
}

// WriteMetrics emits the exporter's Prometheus families; its signature
// matches the Metrics.AddExtra hook on both the service and cluster
// registries. Safe on a nil receiver (emits nothing), so wiring can be
// unconditional.
func (e *Exporter) WriteMetrics(w io.Writer) {
	if e == nil {
		return
	}
	fmt.Fprintf(w, "# HELP hexd_otlp_exported_total Spans successfully exported to the OTLP collector.\n")
	fmt.Fprintf(w, "# TYPE hexd_otlp_exported_total counter\n")
	fmt.Fprintf(w, "hexd_otlp_exported_total %d\n", e.exported.Load())
	fmt.Fprintf(w, "# HELP hexd_otlp_dropped_total Spans dropped because the export queue was full or retries were exhausted.\n")
	fmt.Fprintf(w, "# TYPE hexd_otlp_dropped_total counter\n")
	fmt.Fprintf(w, "hexd_otlp_dropped_total %d\n", e.dropped.Load())
	fmt.Fprintf(w, "# HELP hexd_otlp_retries_total OTLP POST retry attempts.\n")
	fmt.Fprintf(w, "# TYPE hexd_otlp_retries_total counter\n")
	fmt.Fprintf(w, "hexd_otlp_retries_total %d\n", e.retries.Load())
	fmt.Fprintf(w, "# HELP hexd_otlp_queue_depth Trace snapshots waiting in the export queue.\n")
	fmt.Fprintf(w, "# TYPE hexd_otlp_queue_depth gauge\n")
	fmt.Fprintf(w, "hexd_otlp_queue_depth %d\n", len(e.queue))
}

// loop is the single sender goroutine: batch, tick, flush, drain.
func (e *Exporter) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.opts.FlushInterval)
	defer ticker.Stop()
	batch := make([]obs.TraceSnapshot, 0, e.opts.BatchSize)
	for {
		select {
		case snap := <-e.queue:
			batch = append(batch, snap)
			if len(batch) >= e.opts.BatchSize {
				e.send(batch)
				batch = batch[:0]
			}
		case <-ticker.C:
			if len(batch) > 0 {
				e.send(batch)
				batch = batch[:0]
			}
		case ack := <-e.flushCh:
			batch = e.drain(batch)
			close(ack)
		case <-e.stop:
			e.drain(batch)
			return
		}
	}
}

// drain empties the queue, sending full batches as it goes, then sends
// the remainder. Returns the (empty) reusable batch slice.
func (e *Exporter) drain(batch []obs.TraceSnapshot) []obs.TraceSnapshot {
	for {
		select {
		case snap := <-e.queue:
			batch = append(batch, snap)
			if len(batch) >= e.opts.BatchSize {
				e.send(batch)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				e.send(batch)
			}
			return batch[:0]
		}
	}
}

// send POSTs one batch with bounded retry; a batch that exhausts its
// retries is dropped and counted, never requeued.
func (e *Exporter) send(batch []obs.TraceSnapshot) {
	body, spans := Marshal(e.opts.ServiceName, batch)
	backoff := e.opts.Backoff
	for attempt := 0; ; attempt++ {
		err := e.post(body)
		if err == nil {
			e.exported.Add(uint64(spans))
			return
		}
		if attempt >= e.opts.Retries {
			e.dropped.Add(uint64(spans))
			return
		}
		e.retries.Add(1)
		select {
		case <-time.After(backoff):
		case <-e.stop:
			// Shutting down: one final immediate attempt below, no more
			// waiting after that.
		}
		backoff *= 2
	}
}

// post performs one POST of an OTLP/JSON payload.
func (e *Exporter) post(body []byte) error {
	req, err := http.NewRequest(http.MethodPost, e.url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("export: collector returned %s", resp.Status)
	}
	return nil
}

// --- OTLP/JSON payload -------------------------------------------------
//
// The wire shapes below follow the OTLP 1.x JSON mapping of
// opentelemetry-proto's trace service: trace/span ids are lower-case hex
// strings, 64-bit integers are decimal strings, enums are bare numbers.
// They are exported so tests (and the fake collector behind
// `make otlp-smoke`) can decode payloads with encoding/json alone.

// Payload is the body POSTed to /v1/traces.
type Payload struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups spans under one resource (one hexd process).
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource identifies the emitting process.
type Resource struct {
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// ScopeSpans groups spans under one instrumentation scope.
type ScopeSpans struct {
	Scope Scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

// Scope names the instrumentation that produced the spans.
type Scope struct {
	Name string `json:"name"`
}

// Span is one OTLP span.
type Span struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []KeyValue `json:"attributes,omitempty"`
	Status            *Status    `json:"status,omitempty"`
}

// OTLP SpanKind and StatusCode values used here.
const (
	KindInternal = 1
	KindServer   = 2

	StatusError = 2
)

// Status is a span's terminal status.
type Status struct {
	Message string `json:"message,omitempty"`
	Code    int    `json:"code,omitempty"`
}

// KeyValue is one attribute.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the OTLP tagged-union attribute value.
type AnyValue struct {
	StringValue *string     `json:"stringValue,omitempty"`
	IntValue    *string     `json:"intValue,omitempty"`
	BoolValue   *bool       `json:"boolValue,omitempty"`
	ArrayValue  *ArrayValue `json:"arrayValue,omitempty"`
}

// ArrayValue holds an array attribute's elements.
type ArrayValue struct {
	Values []AnyValue `json:"values"`
}

func strValue(s string) AnyValue         { return AnyValue{StringValue: &s} }
func intValue(i int64) AnyValue          { v := strconv.FormatInt(i, 10); return AnyValue{IntValue: &v} }
func boolValue(b bool) AnyValue          { return AnyValue{BoolValue: &b} }
func nanos(t time.Time) string           { return strconv.FormatInt(t.UnixNano(), 10) }
func attr(k string, v AnyValue) KeyValue { return KeyValue{Key: k, Value: v} }

// Marshal converts a batch of trace snapshots into one OTLP/JSON payload,
// returning the body and the number of OTLP spans it carries. Exported
// for tests; Exporter.send is its only production caller.
func Marshal(serviceName string, batch []obs.TraceSnapshot) ([]byte, int) {
	spans := make([]Span, 0, len(batch)*4)
	for i := range batch {
		spans = appendSpans(spans, &batch[i])
	}
	p := Payload{ResourceSpans: []ResourceSpans{{
		Resource: Resource{Attributes: []KeyValue{attr("service.name", strValue(serviceName))}},
		ScopeSpans: []ScopeSpans{{
			Scope: Scope{Name: "repro/internal/obs"},
			Spans: spans,
		}},
	}}}
	body, err := json.Marshal(p)
	if err != nil {
		// Every field is a plain string/number/bool; Marshal cannot fail.
		return []byte("{}"), 0
	}
	return body, len(spans)
}

// appendSpans renders one trace snapshot: a SERVER root span carrying the
// request's attrs, notes, truncation count, and flight dump, plus one
// INTERNAL child span per recorded stage.
func appendSpans(out []Span, snap *obs.TraceSnapshot) []Span {
	traceID := snap.TraceID
	if len(traceID) != 32 {
		// A root request that never saw a traceparent header still gets a
		// well-formed (if unstitched) trace in the collector.
		traceID = obs.NewTraceID()
	}
	spanID := snap.SpanID
	if len(spanID) != 16 {
		spanID = obs.NewSpanID()
	}
	start := snap.Start
	end := start.Add(time.Duration(snap.DurationMs * float64(time.Millisecond)))

	attrs := make([]KeyValue, 0, 6+len(snap.Attrs))
	attrs = append(attrs, attr("hexd.request_id", strValue(snap.ID)))
	attrs = append(attrs, attr("hexd.status", intValue(int64(snap.Status))))
	for _, k := range sortedKeys(snap.Attrs) {
		attrs = append(attrs, attr("hexd."+k, strValue(snap.Attrs[k])))
	}
	if snap.SpansDropped > 0 {
		attrs = append(attrs, attr("hexd.spans_dropped", intValue(int64(snap.SpansDropped))))
	}
	if len(snap.Notes) > 0 {
		vals := make([]AnyValue, len(snap.Notes))
		for i, n := range snap.Notes {
			vals[i] = strValue(n)
		}
		attrs = append(attrs, attr("hexd.notes", AnyValue{ArrayValue: &ArrayValue{Values: vals}}))
	}
	if d := snap.Flight; d != nil {
		attrs = append(attrs, attr("hexd.flight.captured", intValue(int64(d.Captured))))
		attrs = append(attrs, attr("hexd.flight.dropped", intValue(int64(d.Dropped))))
		attrs = append(attrs, attr("hexd.flight.complete", boolValue(d.Complete)))
		attrs = append(attrs, attr("hexd.flight.audit_ok", boolValue(d.AuditOK)))
		if d.AuditError != "" {
			attrs = append(attrs, attr("hexd.flight.audit_error", strValue(d.AuditError)))
		}
		if dump, err := json.Marshal(d); err == nil {
			attrs = append(attrs, attr("hexd.flight.dump", strValue(string(dump))))
		}
	}

	root := Span{
		TraceID:           traceID,
		SpanID:            spanID,
		ParentSpanID:      snap.ParentSpanID,
		Name:              snap.Endpoint,
		Kind:              KindServer,
		StartTimeUnixNano: nanos(start),
		EndTimeUnixNano:   nanos(end),
		Attributes:        attrs,
	}
	if snap.Error != "" {
		root.Status = &Status{Code: StatusError, Message: snap.Error}
	}
	out = append(out, root)

	for _, sp := range snap.Spans {
		b := start.Add(time.Duration(sp.StartUs * float64(time.Microsecond)))
		out = append(out, Span{
			TraceID:           traceID,
			SpanID:            obs.NewSpanID(),
			ParentSpanID:      spanID,
			Name:              sp.Name,
			Kind:              KindInternal,
			StartTimeUnixNano: nanos(b),
			EndTimeUnixNano:   nanos(b.Add(time.Duration(sp.DurUs * float64(time.Microsecond)))),
		})
	}
	return out
}

// sortedKeys gives attribute emission a stable order for tests and
// humans diffing payloads.
func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
