package obs

import (
	"math"
	"sync"
	"time"
)

// RateEWMA is an exponentially weighted moving average of an event rate
// (events per second) with time-based decay: each measurement is blended
// in with a weight derived from the wall time it covers, and reads decay
// the average toward zero across idle periods. Unlike a last-value gauge,
// a scrape long after the last computation reports a rate that has decayed
// accordingly instead of replaying a stale instantaneous value forever.
//
// All methods are safe for concurrent use.
type RateEWMA struct {
	mu     sync.Mutex
	tau    float64 // decay time constant, seconds
	now    func() time.Time
	rate   float64
	last   time.Time
	primed bool
}

// NewRateEWMA returns an EWMA with the given decay time constant: after an
// idle period of tau the reported rate has decayed to 1/e (~37%) of its
// value, after 3·tau to under 5%. tau <= 0 selects one minute.
func NewRateEWMA(tau time.Duration) *RateEWMA {
	if tau <= 0 {
		tau = time.Minute
	}
	return &RateEWMA{tau: tau.Seconds(), now: time.Now}
}

// SetNow replaces the clock; tests use it to make decay deterministic.
func (e *RateEWMA) SetNow(now func() time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
}

// Observe blends in a measurement of `events` events over `elapsed` of
// wall time ending now. Degenerate measurements (no events, non-positive
// elapsed) are dropped rather than recorded as a zero rate.
func (e *RateEWMA) Observe(events uint64, elapsed time.Duration) {
	if events == 0 || elapsed <= 0 {
		return
	}
	inst := float64(events) / elapsed.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	if !e.primed {
		e.rate = inst
		e.last = now
		e.primed = true
		return
	}
	dt := now.Sub(e.last).Seconds()
	if dt < 0 {
		dt = 0
	}
	// The blend weight covers the gap since the previous measurement plus
	// the span of this one, so back-to-back short measurements converge at
	// the pace their combined wall time justifies.
	w := 1 - math.Exp(-(dt+elapsed.Seconds())/e.tau)
	e.rate = e.rate*(1-w) + inst*w
	e.last = now
}

// Rate returns the average decayed to the current instant. It does not
// mutate state: repeated idle reads each decay from the last observation.
func (e *RateEWMA) Rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.primed {
		return 0
	}
	dt := e.now().Sub(e.last).Seconds()
	if dt < 0 {
		dt = 0
	}
	return e.rate * math.Exp(-dt/e.tau)
}

// Value returns Rate rounded to an integer, the shape the metrics text
// format renders.
func (e *RateEWMA) Value() int64 { return int64(math.Round(e.Rate())) }
