package core

import (
	"reflect"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// tracedEvent is a local flat record of one Tracer callback; the trace
// package's Recorder cannot be used here (it imports core).
type tracedEvent struct {
	kind     string
	a, b     int
	at, arr  sim.Time
	accepted bool
	source   bool
}

// eventLog records every Tracer callback in order.
type eventLog struct{ events []tracedEvent }

func (l *eventLog) Send(from, to int, at, arrival sim.Time) {
	l.events = append(l.events, tracedEvent{kind: "send", a: from, b: to, at: at, arr: arrival})
}
func (l *eventLog) Deliver(from, to int, at sim.Time, accepted bool) {
	l.events = append(l.events, tracedEvent{kind: "deliver", a: from, b: to, at: at, accepted: accepted})
}
func (l *eventLog) FlagExpire(node, input int, at sim.Time) {
	l.events = append(l.events, tracedEvent{kind: "expire", a: node, b: input, at: at})
}
func (l *eventLog) Fire(node int, at sim.Time, source bool) {
	l.events = append(l.events, tracedEvent{kind: "fire", a: node, at: at, source: source})
}
func (l *eventLog) Sleep(node int, at sim.Time) {
	l.events = append(l.events, tracedEvent{kind: "sleep", a: node, at: at})
}
func (l *eventLog) Wake(node int, at sim.Time) {
	l.events = append(l.events, tracedEvent{kind: "wake", a: node, at: at})
}

// tracedBatchConfig builds a run that exercises every tracer callback:
// link timers on (flag expiries), multiple pulses (sleep/wake cycles), a
// Byzantine fault and random initial states.
func tracedBatchConfig(t *testing.T, rec Tracer) Config {
	t.Helper()
	h := grid.MustHex(16, 10)
	plan := fault.NewPlan(h.NumNodes())
	rngF := sim.NewRNG(sim.DeriveSeed(99, "faults"))
	placed, err := fault.PlaceRandom(h.Graph, 2, nil, rngF, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range placed {
		plan.SetBehavior(n, fault.Byzantine)
	}
	plan.RandomizeByzantine(h.Graph, rngF)

	p := DefaultParams()
	p.TLinkMin = 40 * sim.Nanosecond
	p.TLinkMax = 50 * sim.Nanosecond
	rng := sim.NewRNG(sim.DeriveSeed(99, "offsets"))
	sched := source.NewSchedule(source.UniformDPlus, h.W, 3, p.Bounds, 500*sim.Nanosecond, rng)
	return Config{
		Graph:      h.Graph,
		Params:     p,
		Delay:      delay.Uniform{Bounds: p.Bounds},
		Faults:     plan,
		Schedule:   sched,
		RandomInit: true,
		Seed:       99,
		Trace:      rec,
	}
}

// TestTracerIndependentOfBatchDispatch pins that the recorded event stream
// is bit-identical whether typed events flow through the BatchDispatcher
// fast path (popBatchTyped) or one Dispatch call each: tracer callbacks may
// never observe the dispatch strategy.
func TestTracerIndependentOfBatchDispatch(t *testing.T) {
	run := func(noBatch bool) (*eventLog, *Result) {
		rec := &eventLog{}
		noBatchDispatch = noBatch
		defer func() { noBatchDispatch = false }()
		// A fresh arena per run keeps the two paths' storage independent.
		res, err := NewArena().Run(tracedBatchConfig(t, rec))
		if err != nil {
			t.Fatal(err)
		}
		return rec, res
	}

	batched, resB := run(false)
	serial, resS := run(true)

	if len(batched.events) == 0 {
		t.Fatal("no events traced")
	}
	if len(batched.events) != len(serial.events) {
		t.Fatalf("event counts differ: batched %d vs serial %d", len(batched.events), len(serial.events))
	}
	for i := range batched.events {
		if batched.events[i] != serial.events[i] {
			t.Fatalf("event %d differs:\nbatched: %+v\nserial:  %+v", i, batched.events[i], serial.events[i])
		}
	}
	if resB.Events != resS.Events {
		t.Fatalf("executed event counts differ: %d vs %d", resB.Events, resS.Events)
	}
	if !reflect.DeepEqual(resB.Triggers, resS.Triggers) {
		t.Fatal("trigger histories differ between batched and serial dispatch")
	}
}
