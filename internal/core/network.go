package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// Config fully describes one simulation run. Given equal Configs (including
// Seed), Run produces identical Results.
type Config struct {
	// Graph is the communication topology. Layer 0 nodes act as clock
	// sources; higher layers run the HEX forwarding algorithm.
	Graph *grid.Graph
	// Params are the algorithm parameters.
	Params Params
	// Delay assigns per-message link delays. Required.
	Delay delay.Model
	// Faults is the fault plan; nil means fault-free.
	Faults *fault.Plan
	// Schedule provides the layer-0 triggering times; Times[k][c] refers to
	// the c-th node of Graph.Layer(0). Required.
	Schedule *source.Schedule
	// RandomInit starts every correct forwarding node in an arbitrary
	// state of the Fig. 7 state machines (for self-stabilization runs).
	RandomInit bool
	// Seed drives all randomness (delays, timers, initial states). Fault
	// placement/behaviour randomness lives in the fault plan, which is
	// built by the caller before the run.
	Seed uint64
	// Horizon stops the simulation; 0 derives a horizon that lets the last
	// pulse traverse the grid with ample slack.
	Horizon sim.Time
	// Wedges selects the conservative wedge-parallel engine: P ≥ 2 runs P
	// worker goroutines over P contiguous column wedges of the grid;
	// AutoWedges resolves to GOMAXPROCS. 0 or 1 runs the serial engine.
	// Configurations the parallel engine cannot serve — a topology without
	// column structure, an installed Trace or OnTrigger observer, or a
	// resolved count below 2 — silently fall back to serial. The engine
	// choice is invisible in the Result: every wedge count produces
	// bit-identical output for equal Configs (the differential tests pin
	// this), so Wedges is a performance knob, not part of a run's identity.
	Wedges int
	// Context, if non-nil, makes the run cancellable: the engine polls it
	// every few hundred events and stops early once the context is done.
	// Run then returns the partial Result (triggers and event counts up to
	// the stop point) together with the context's error, so callers can
	// still observe how much work was done. A run that completes before
	// cancellation is bit-identical to one without a Context.
	Context context.Context
	// FirstTriggerOnly selects the compact result shape for campaign
	// workloads that only need single-pulse statistics: the Result carries
	// FirstTriggers (one flat slice, node n's first triggering time or
	// NoTrigger) instead of the full per-node Triggers histories, cutting
	// the snapshot from one slice header per node to a single allocation.
	// The simulation itself is untouched — FirstTriggers[n] equals
	// Triggers[n][0] of the same Config bit-for-bit (pinned by a
	// differential test) — so this is an output-shape knob, like Wedges is
	// an engine knob.
	FirstTriggerOnly bool
	// OnTrigger, if non-nil, observes every trigger of a correct node.
	OnTrigger func(node int, t sim.Time)
	// Trace, if non-nil, observes all internal events (sends, deliveries,
	// flag expiries, fires, sleep/wake transitions).
	Trace Tracer
}

// AutoWedges, as Config.Wedges, selects one wedge per available CPU.
const AutoWedges = -1

// NoTrigger marks a node without a triggering time in a FirstTriggers
// slice. Its value equals analysis.Missing, so compact results flow into
// wave statistics without translation.
const NoTrigger sim.Time = math.MinInt64

// Result holds the observables of one run. A Result owns its memory: it
// never aliases arena storage, so it stays valid after the arena that
// produced it is reused for another run.
type Result struct {
	// Triggers[n] lists the triggering times of node n in increasing
	// order. Faulty nodes never trigger (their outputs are stuck and their
	// times are excluded from all statistics, as in the paper). Nil when
	// the run was configured FirstTriggerOnly.
	Triggers [][]sim.Time
	// FirstTriggers[n] is node n's first triggering time, or NoTrigger.
	// Populated instead of Triggers when Config.FirstTriggerOnly is set.
	FirstTriggers []sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Horizon is the (possibly derived) end of simulated time.
	Horizon sim.Time
}

// Typed event kinds dispatched through the sim engine (no per-event
// closure allocations on the hot path).
const (
	evSourceFire uint8 = iota // a = node
	evCheck                   // a = node
	evDeliver                 // a = from, b = to | inIdx<<32
	evExpire                  // a = node, b = idx | gen<<32
	evWake                    // a = node, b = gen
)

// noBatchDispatch, when set, makes every run dispatch typed events one at
// a time instead of through the BatchDispatcher fast path. The pop order —
// and therefore every observable, including Tracer callback order — is
// identical either way; tests flip this to prove exactly that.
var noBatchDispatch bool

// forceHeapQueue, when set, routes the serial engine's events through the
// 4-ary overflow heap instead of the calendar ring. It exists for the
// three-way differential fuzzer: calendar, heap, and wedge-parallel arms
// must all produce identical Results.
var forceHeapQueue bool

// network binds a Config to its execution state. Its storage (the SoA node
// and input slabs of soa.go, the seq/draw counter slabs, trigger
// accumulators, engine queues) survives across runs when driven through an
// Arena; build re-initializes every field, so a reused network is
// observationally identical to a fresh one.
//
// The event handlers live on executor, not network: a serial run uses the
// single nw.serial executor bound to nw.eng, a parallel run uses one
// executor per wedge bound to that wedge's engine. All executors share the
// network's slabs — safely, because every event that touches node n's
// state (its cell, inputs, counters, trigger log) is dispatched in the
// wedge that owns n, so slab access is disjoint by index. The per-node
// counters are also what makes execution partition-stable: event keys and
// random draws depend only on the owning node's history, never on the
// global interleaving, so serial and parallel runs are bit-identical.
type network struct {
	cfg Config
	eng sim.Engine // serial engine; parallel engines live in par
	g   *grid.Graph
	// Structure-of-arrays simulation state; see soa.go for the layout.
	cells    []nodeCell
	wakeGen  []uint32
	inOff    []int32
	inBits   []uint8
	inGen    []uint32
	triggers [][]sim.Time // arena-owned accumulators, snapshot into Result
	// seqCtr[n] counts events produced by node n; an event's queue key is
	// seqCtr<<seqShift | producer, unique and independent of partitioning.
	seqCtr   []uint64
	seqShift uint
	// rngCtr[n] counts node n's random-draw sites; each site derives its
	// values from (drawSeed, n, rngCtr[n]) so draws are partition-stable.
	rngCtr   []uint64
	drawSeed uint64
	// lastGraph remembers which topology the slabs are sized for; a run on
	// a different *grid.Graph re-slices from scratch.
	lastGraph *grid.Graph

	serial executor  // the serial run's executor, bound to eng
	par    *parState // cached wedge-parallel scaffolding; see parallel.go
	parRun bool      // whether the current run uses the parallel engine
}

// executor runs event handlers against one engine — the serial engine, or
// one wedge's engine. It implements sim.Dispatcher/BatchDispatcher.
type executor struct {
	nw  *network
	eng *sim.Engine
	// wedge/wedgeOf are set in parallel mode only: wedge is this executor's
	// sim.Wedge (for cross-wedge sends) and wedgeOf maps node ids to wedge
	// indices. A nil wedge means every delivery is local.
	wedge   *sim.Wedge
	wedgeOf []int16
	// scratch is reseeded from the producing node's counter stream at each
	// multi-draw site (broadcast, randomizeState); single draws use
	// streamTimeIn directly.
	scratch sim.RNG
}

// Dispatch implements sim.Dispatcher.
func (ex *executor) Dispatch(kind uint8, a, b int64) {
	switch kind {
	case evSourceFire:
		ex.fireSource(int(a))
	case evCheck:
		ex.checkFire(int(a))
	case evDeliver:
		ex.deliver(int(a), int(uint32(b)), int(b>>32))
	case evExpire:
		ex.expireFlag(int(a), int(uint32(b)), uint32(b>>32))
	case evWake:
		ex.wake(int(a), uint32(b))
	default:
		panic("core: unknown event kind")
	}
}

// DispatchBatch implements sim.BatchDispatcher: the engine hands every run
// of same-instant typed events here in one call, in exactly the order
// repeated Dispatch calls would have seen them, amortizing the engine's
// per-event loop overhead across the batch.
func (ex *executor) DispatchBatch(at sim.Time, evs []sim.EventRec) {
	for i := range evs {
		ev := &evs[i]
		ex.Dispatch(ev.Kind, ev.A, ev.B)
	}
}

// run executes the simulation described by cfg and returns its result.
func (nw *network) run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: Config.Graph is required")
	}
	if cfg.Delay == nil {
		return nil, fmt.Errorf("core: Config.Delay is required")
	}
	if cfg.Schedule == nil || cfg.Schedule.Pulses() == 0 {
		return nil, fmt.Errorf("core: Config.Schedule with at least one pulse is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Schedule.Times[0]) != len(cfg.Graph.Layer(0)) {
		return nil, fmt.Errorf("core: schedule width %d does not match layer-0 width %d",
			len(cfg.Schedule.Times[0]), len(cfg.Graph.Layer(0)))
	}

	nw.cfg = cfg
	nw.g = cfg.Graph
	nw.drawSeed = sim.DeriveSeed(cfg.Seed, "draw")

	wedges := nw.resolveWedges()
	nw.parRun = wedges > 1
	if nw.parRun {
		if err := nw.setupParallel(wedges); err != nil {
			return nil, err
		}
	} else {
		nw.eng.Reset()
		nw.eng.UseHeapQueue(forceHeapQueue)
		nw.eng.SetHorizonHint(cfg.Params.MaxEventDelta())
		nw.serial = executor{nw: nw, eng: &nw.eng}
		nw.eng.SetDispatcher(&nw.serial)
		nw.eng.SetBatching(!noBatchDispatch)
	}
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			nw.release()
			return emptyResult(cfg), err
		}
		stop := func() bool { return ctx.Err() != nil }
		if nw.parRun {
			for i := 0; i < nw.par.p; i++ {
				nw.par.group.Wedge(i).Engine().SetStopCheck(0, stop)
			}
		} else {
			nw.eng.SetStopCheck(0, stop)
		}
	}
	nw.build()
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = nw.autoHorizon()
	}
	var events uint64
	var interrupted bool
	if nw.parRun {
		events = nw.par.group.Run(horizon)
		interrupted = nw.par.group.Interrupted()
	} else {
		nw.eng.Run(horizon)
		events = nw.eng.Executed
		interrupted = nw.eng.Interrupted()
	}
	res := &Result{
		Events:  events,
		Horizon: horizon,
	}
	if cfg.FirstTriggerOnly {
		res.FirstTriggers = nw.snapshotFirstTriggers()
	} else {
		res.Triggers = nw.snapshotTriggers()
	}
	nw.release()
	if interrupted {
		return res, cfg.Context.Err()
	}
	return res, nil
}

// release drops the per-run references the arena must not retain between
// runs (context, callbacks, delay model, fault plan). The sized storage
// stays for the next run.
func (nw *network) release() {
	nw.cfg = Config{}
	nw.eng.SetStopCheck(0, nil)
	if nw.par != nil {
		for i := 0; i < nw.par.p; i++ {
			nw.par.group.Wedge(i).Engine().SetStopCheck(0, nil)
		}
	}
}

// snapshotTriggers copies the arena's trigger accumulators into compact,
// caller-owned storage: one flat array plus one header slice, regardless
// of node count. Nodes that never triggered keep a nil history, matching
// the pre-arena behavior.
func (nw *network) snapshotTriggers() [][]sim.Time {
	total := 0
	for _, ts := range nw.triggers {
		total += len(ts)
	}
	out := make([][]sim.Time, len(nw.triggers))
	if total == 0 {
		return out
	}
	flat := make([]sim.Time, total)
	pos := 0
	for i, ts := range nw.triggers {
		if len(ts) == 0 {
			continue
		}
		n := copy(flat[pos:], ts)
		out[i] = flat[pos : pos+n : pos+n]
		pos += n
	}
	return out
}

// snapshotFirstTriggers copies each node's first triggering time into one
// flat caller-owned slice — the FirstTriggerOnly result shape. For a
// single-pulse campaign run this replaces the per-node history headers of
// snapshotTriggers with a single allocation.
func (nw *network) snapshotFirstTriggers() []sim.Time {
	out := make([]sim.Time, len(nw.triggers))
	for i, ts := range nw.triggers {
		if len(ts) == 0 {
			out[i] = NoTrigger
		} else {
			out[i] = ts[0]
		}
	}
	return out
}

// emptyResult is the zero-work Result of a run cancelled before it
// started, in the shape the Config asked for.
func emptyResult(cfg Config) *Result {
	n := cfg.Graph.NumNodes()
	if cfg.FirstTriggerOnly {
		ft := make([]sim.Time, n)
		for i := range ft {
			ft[i] = NoTrigger
		}
		return &Result{FirstTriggers: ft}
	}
	return &Result{Triggers: make([][]sim.Time, n)}
}

// autoHorizon derives a stop time covering the last pulse's full traversal,
// including the fault-induced slowdown of Lemma 5 and pending timers.
func (nw *network) autoHorizon() sim.Time {
	p := nw.cfg.Params
	f := sim.Time(nw.cfg.Faults.NumFaulty())
	layers := sim.Time(nw.g.NumLayers())
	slack := (layers + f + 5) * p.Bounds.Max
	return nw.cfg.Schedule.End() + slack + p.TSleepMax + p.TLinkMax
}

// engineFor returns the engine that owns node id's events: the serial
// engine, or in a parallel run the engine of the wedge the node's column
// belongs to. Build-time scheduling uses it to seed each wedge's queue
// directly (the workers are not running yet).
func (nw *network) engineFor(id int) *sim.Engine {
	if nw.parRun {
		return nw.par.group.Wedge(int(nw.par.cut.WedgeOf[id])).Engine()
	}
	return &nw.eng
}

// nextSeq allocates node's next partition-stable event key: the node's
// event counter striped over the node id. Keys are unique across the run
// (counter·2^seqShift + id is injective) and depend only on the producing
// node's history, so serial and parallel runs assign identical keys to
// identical events — the property the cross-wedge (at, seq) merge relies
// on for determinism.
func (nw *network) nextSeq(node int) uint64 {
	s := nw.seqCtr[node]
	nw.seqCtr[node] = s + 1
	return s<<nw.seqShift | uint64(node)
}

// streamTimeIn draws a uniform Time in [lo, hi] from node's counter
// stream: one DeriveStream call, no RNG state. The modulo bias over a
// 64-bit stream value is < 2^-50 for every span this simulator uses. Used
// by the single-draw sites (link and sleep timers); multi-draw sites
// reseed the executor's scratch RNG instead.
func (nw *network) streamTimeIn(node int, lo, hi sim.Time) sim.Time {
	v := sim.DeriveStream(nw.drawSeed, uint64(node), nw.rngCtr[node])
	nw.rngCtr[node]++
	return lo + sim.Time(v%uint64(hi-lo+1))
}

// reseedScratch points the executor's scratch RNG at the producing node's
// next counter-stream value; subsequent draws consume the scratch stream
// sequentially. One counter tick covers the whole multi-draw site.
func (ex *executor) reseedScratch(node int) {
	nw := ex.nw
	ex.scratch.Reseed(sim.DeriveStream(nw.drawSeed, uint64(node), nw.rngCtr[node]))
	nw.rngCtr[node]++
}

// build initializes the state slabs, static stuck-at-1 inputs, the layer-0
// schedule, random initial states, and the time-0 guard checks. On a reused
// network it re-initializes every slab entry of the retained storage
// instead of allocating; only a topology change (different *grid.Graph)
// re-slices. In a parallel run it seeds each wedge engine's queue with the
// events of the nodes that wedge owns.
func (nw *network) build() {
	g := nw.g
	n := g.NumNodes()
	plan := nw.cfg.Faults

	if nw.lastGraph != g {
		nw.cells = make([]nodeCell, n)
		nw.wakeGen = make([]uint32, n)
		nw.inOff = make([]int32, n+1)
		totalIn := 0
		for id := 0; id < n; id++ {
			nw.inOff[id] = int32(totalIn)
			totalIn += len(g.In(id))
		}
		nw.inOff[n] = int32(totalIn)
		nw.inBits = make([]uint8, totalIn)
		nw.inGen = make([]uint32, totalIn)
		nw.triggers = make([][]sim.Time, n)
		nw.seqCtr = make([]uint64, n)
		nw.rngCtr = make([]uint64, n)
		nw.lastGraph = g
	}
	nw.seqShift = uint(bits.Len(uint(n - 1)))

	for id := 0; id < n; id++ {
		cell := &nw.cells[id]
		*cell = nodeCell{}
		nw.wakeGen[id] = 0
		nw.seqCtr[id] = 0
		nw.rngCtr[id] = 0
		if plan.IsFaulty(id) {
			cell.flags |= nodeFaulty
		}
		if g.LayerOf(id) == 0 {
			cell.flags |= nodeSource
		}
		links := g.In(id)
		base := int(nw.inOff[id])
		for i := range links {
			mode := plan.Link(links[i].From, id)
			bits := inputBits(mode, links[i].Role)
			if mode == fault.LinkStuck1 {
				bits |= inSetBit // permanently high input
				cell.roleCnt[links[i].Role]++
			}
			nw.inBits[base+i] = bits
			nw.inGen[base+i] = 0
		}
		nw.triggers[id] = nw.triggers[id][:0]
	}

	// Layer-0 pulse generation.
	layer0 := g.Layer(0)
	for k := range nw.cfg.Schedule.Times {
		for c, at := range nw.cfg.Schedule.Times[k] {
			id := layer0[c]
			if nw.cells[id].flags&nodeFaulty != 0 {
				continue
			}
			nw.engineFor(id).ScheduleEventKeyed(at, nw.nextSeq(id), evSourceFire, int64(id), 0)
		}
	}

	// Initial states of forwarding nodes.
	for id := 0; id < n; id++ {
		if nw.cells[id].flags&(nodeSource|nodeFaulty) != 0 {
			continue
		}
		if nw.cfg.RandomInit {
			nw.randomizeState(id)
		}
		// Evaluate the guard at time 0: stuck-at-1 inputs or arbitrary
		// initial flags may already satisfy it.
		nw.engineFor(id).ScheduleEventKeyed(0, nw.nextSeq(id), evCheck, int64(id), 0)
	}
}

// randomizeState puts node id into an arbitrary state of the Fig. 7 state
// machines: either asleep with an arbitrary residual sleep time, or awake
// with arbitrary memory flags carrying arbitrary residual link timers. It
// runs at build time (single-threaded) but draws from node id's counter
// stream, so the state is independent of node enumeration order and of the
// engine the node's events land in.
func (nw *network) randomizeState(id int) {
	p := nw.cfg.Params
	eng := nw.engineFor(id)
	var rng sim.RNG
	rng.Reseed(sim.DeriveStream(nw.drawSeed, uint64(id), nw.rngCtr[id]))
	nw.rngCtr[id]++
	if rng.Bool() {
		nw.cells[id].flags |= nodeSleeping
		eng.ScheduleEventKeyed(rng.TimeIn(0, p.TSleepMax), nw.nextSeq(id),
			evWake, int64(id), int64(nw.wakeGen[id]))
		// The flags may additionally hold arbitrary values; they will be
		// cleared on wake-up anyway, but can matter if timers expire first.
	}
	lo, hi := int(nw.inOff[id]), int(nw.inOff[id+1])
	for slot := lo; slot < hi; slot++ {
		if modeOf(nw.inBits[slot]) != fault.LinkCorrect {
			continue
		}
		if !rng.Bool() {
			continue
		}
		nw.setFlag(id, slot)
		if p.LinkTimersEnabled() {
			residual := rng.TimeIn(0, p.TLinkMax)
			eng.ScheduleEventKeyed(residual, nw.nextSeq(id), evExpire,
				int64(id), int64(slot-lo)|int64(nw.inGen[slot])<<32)
		}
	}
}

// setFlag sets input slot's memory flag and maintains node id's role
// counters. The flag must currently be clear.
func (nw *network) setFlag(id, slot int) {
	bits := nw.inBits[slot]
	nw.inBits[slot] = bits | inSetBit
	if modeOf(bits) != fault.LinkStuck0 {
		nw.cells[id].roleCnt[roleOf(bits)]++
	}
}

// clearFlag clears input slot's memory flag and maintains node id's role
// counters. The flag must currently be set.
func (nw *network) clearFlag(id, slot int) {
	bits := nw.inBits[slot]
	nw.inBits[slot] = bits &^ inSetBit
	if modeOf(bits) != fault.LinkStuck0 {
		nw.cells[id].roleCnt[roleOf(bits)]--
	}
}

// fireSource makes a layer-0 node emit a pulse.
func (ex *executor) fireSource(id int) {
	ex.recordTrigger(id, true)
	ex.broadcast(id)
}

// broadcast sends trigger messages over all of id's outgoing links. The
// per-link delay draws consume id's scratch stream in out-link order; a
// destination in another wedge receives through its ring, everything else
// is scheduled locally under the same partition-stable keys.
func (ex *executor) broadcast(id int) {
	nw := ex.nw
	now := ex.eng.Now()
	ex.reseedScratch(id)
	for _, out := range nw.g.Out(id) {
		switch nw.cfg.Faults.Link(id, out.To) {
		case fault.LinkCorrect:
			d := nw.cfg.Delay.Delay(id, out.To, now, &ex.scratch)
			if d < 0 {
				panic("core: delay model returned a negative delay")
			}
			if nw.cfg.Trace != nil {
				nw.cfg.Trace.Send(id, out.To, now, now+d)
			}
			at := now + d
			seq := nw.nextSeq(id)
			b := int64(out.To) | int64(out.InIdx)<<32
			if ex.wedge != nil && ex.wedgeOf[out.To] != ex.wedgeOf[id] {
				ex.wedge.Send(int(ex.wedgeOf[out.To]), sim.BoundaryEvent{
					At: at, Seq: seq, Kind: evDeliver, A: int64(id), B: b,
				})
			} else {
				ex.eng.ScheduleEventKeyed(at, seq, evDeliver, int64(id), b)
			}
		default:
			// Stuck links never carry discrete messages; stuck-at-1 is
			// modelled as a permanently set input at the receiver.
		}
	}
}

// deliver processes the arrival of a trigger message from `from` at `to`
// (the "upon receiving trigger message from neighbor" rule of Algorithm 1).
// idx is the precomputed index of the input the message drives (the
// reverse-edge index carried by the event payload).
func (ex *executor) deliver(from, to, idx int) {
	accepted := ex.deliverAccept(to, idx)
	if ex.nw.cfg.Trace != nil {
		ex.nw.cfg.Trace.Deliver(from, to, ex.eng.Now(), accepted)
	}
	if accepted {
		ex.checkFire(to)
	}
}

// deliverAccept updates the receiver's flag state and reports whether the
// message was memorized. The fast path reads one nodeCell byte and one
// input byte: a correct, clear input has both mode bits and the set bit at
// zero, so eligibility is a single mask test.
func (ex *executor) deliverAccept(to, idx int) bool {
	nw := ex.nw
	if nw.cells[to].flags&(nodeFaulty|nodeSource) != 0 {
		return false
	}
	slot := int(nw.inOff[to]) + idx
	bits := nw.inBits[slot]
	if bits&(inModeMask|inSetBit) != 0 {
		// Either a non-correct link, or the Fig. 7b flag machine is already
		// in "memorize"; a further trigger neither restarts the timer nor
		// changes state.
		return false
	}
	nw.inBits[slot] = bits | inSetBit
	nw.cells[to].roleCnt[roleOf(bits)]++ // mode is LinkCorrect, counts
	gen := nw.inGen[slot] + 1
	nw.inGen[slot] = gen
	if nw.cfg.Params.LinkTimersEnabled() {
		dur := nw.streamTimeIn(to, nw.cfg.Params.TLinkMin, nw.cfg.Params.TLinkMax)
		ex.eng.ScheduleEventKeyed(ex.eng.Now()+dur, nw.nextSeq(to), evExpire,
			int64(to), int64(idx)|int64(gen)<<32)
	}
	return true
}

// expireFlag clears a memory flag when its link timer fires, unless the
// flag has been cleared and re-set since the timer started.
func (ex *executor) expireFlag(id, idx int, gen uint32) {
	nw := ex.nw
	slot := int(nw.inOff[id]) + idx
	bits := nw.inBits[slot]
	if nw.inGen[slot] != gen || modeOf(bits) == fault.LinkStuck1 {
		return
	}
	if bits&inSetBit != 0 {
		nw.clearFlag(id, slot)
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.FlagExpire(id, idx, ex.eng.Now())
	}
}

// guardSatisfied evaluates the firing guard against the incrementally
// maintained per-role counters in the node's cell: O(guard pairs), no
// input rescan, one contiguous load.
func (ex *executor) guardSatisfied(id int) bool {
	nw := ex.nw
	cnt := &nw.cells[id].roleCnt
	switch nw.cfg.Params.Guard {
	case GuardAdjacent:
		for _, pair := range nw.g.GuardPairs() {
			if cnt[pair[0]] > 0 && cnt[pair[1]] > 0 {
				return true
			}
		}
		return false
	case GuardAnyTwo:
		count := 0
		for _, c := range cnt {
			if c > 0 {
				count++
			}
		}
		return count >= 2
	default:
		panic("core: unknown guard mode")
	}
}

// checkFire triggers the node if it is awake and its guard holds
// (ready → firing → sleeping in Fig. 7a). Any set flag bit — sleeping,
// faulty, or source — disqualifies the node, so the not-ready test is one
// byte compare.
func (ex *executor) checkFire(id int) {
	nw := ex.nw
	if nw.cells[id].flags != 0 {
		return
	}
	if !ex.guardSatisfied(id) {
		return
	}
	ex.recordTrigger(id, false)
	ex.broadcast(id)
	nw.cells[id].flags |= nodeSleeping
	gen := nw.wakeGen[id] + 1
	nw.wakeGen[id] = gen
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Sleep(id, ex.eng.Now())
	}
	dur := nw.streamTimeIn(id, nw.cfg.Params.TSleepMin, nw.cfg.Params.TSleepMax)
	ex.eng.ScheduleEventKeyed(ex.eng.Now()+dur, nw.nextSeq(id), evWake, int64(id), int64(gen))
}

// wake ends the sleep phase, forgetting all previously received trigger
// messages (the boxed flag-clearing transition of Fig. 7a). The flag sweep
// is a contiguous scan of the node's input bytes.
func (ex *executor) wake(id int, gen uint32) {
	nw := ex.nw
	if nw.wakeGen[id] != gen {
		return
	}
	nw.cells[id].flags &^= nodeSleeping
	for slot := int(nw.inOff[id]); slot < int(nw.inOff[id+1]); slot++ {
		bits := nw.inBits[slot]
		if modeOf(bits) == fault.LinkStuck1 {
			continue // a constant-1 input re-sets its flag immediately
		}
		if bits&inSetBit != 0 {
			nw.clearFlag(id, slot)
		}
		nw.inGen[slot]++
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Wake(id, ex.eng.Now())
	}
	ex.checkFire(id)
}

// recordTrigger appends the current time to the node's trigger history.
func (ex *executor) recordTrigger(id int, isSource bool) {
	nw := ex.nw
	nw.triggers[id] = append(nw.triggers[id], ex.eng.Now())
	if nw.cfg.OnTrigger != nil {
		nw.cfg.OnTrigger(id, ex.eng.Now())
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Fire(id, ex.eng.Now(), isSource)
	}
}
