package core

import (
	"context"
	"fmt"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// Config fully describes one simulation run. Given equal Configs (including
// Seed), Run produces identical Results.
type Config struct {
	// Graph is the communication topology. Layer 0 nodes act as clock
	// sources; higher layers run the HEX forwarding algorithm.
	Graph *grid.Graph
	// Params are the algorithm parameters.
	Params Params
	// Delay assigns per-message link delays. Required.
	Delay delay.Model
	// Faults is the fault plan; nil means fault-free.
	Faults *fault.Plan
	// Schedule provides the layer-0 triggering times; Times[k][c] refers to
	// the c-th node of Graph.Layer(0). Required.
	Schedule *source.Schedule
	// RandomInit starts every correct forwarding node in an arbitrary
	// state of the Fig. 7 state machines (for self-stabilization runs).
	RandomInit bool
	// Seed drives all randomness (delays, timers, initial states). Fault
	// placement/behaviour randomness lives in the fault plan, which is
	// built by the caller before the run.
	Seed uint64
	// Horizon stops the simulation; 0 derives a horizon that lets the last
	// pulse traverse the grid with ample slack.
	Horizon sim.Time
	// Context, if non-nil, makes the run cancellable: the engine polls it
	// every few hundred events and stops early once the context is done.
	// Run then returns the partial Result (triggers and event counts up to
	// the stop point) together with the context's error, so callers can
	// still observe how much work was done. A run that completes before
	// cancellation is bit-identical to one without a Context.
	Context context.Context
	// OnTrigger, if non-nil, observes every trigger of a correct node.
	OnTrigger func(node int, t sim.Time)
	// Trace, if non-nil, observes all internal events (sends, deliveries,
	// flag expiries, fires, sleep/wake transitions).
	Trace Tracer
}

// Result holds the observables of one run. A Result owns its memory: it
// never aliases arena storage, so it stays valid after the arena that
// produced it is reused for another run.
type Result struct {
	// Triggers[n] lists the triggering times of node n in increasing
	// order. Faulty nodes never trigger (their outputs are stuck and their
	// times are excluded from all statistics, as in the paper).
	Triggers [][]sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Horizon is the (possibly derived) end of simulated time.
	Horizon sim.Time
}

// inputState tracks one incoming link's memory flag (Fig. 7b).
type inputState struct {
	mode fault.LinkMode
	role grid.Role
	set  bool
	gen  uint32 // invalidates in-flight flag-expiry events
}

// nodeState is the runtime state of one forwarding node (Fig. 7a).
type nodeState struct {
	in       []inputState // parallel to Graph.In(n); backed by network.inArena
	sleeping bool
	wakeGen  uint32 // invalidates in-flight wake events
	faulty   bool
	isSource bool
	// roleCnt[r] counts the currently effective inputs of role r: set
	// memory flags on links that are not stuck-at-0. It is maintained
	// incrementally on every flag transition so guard evaluation is
	// O(guard pairs) instead of a rescan of all inputs.
	roleCnt [grid.NumRoles]uint8
}

// Typed event kinds dispatched through the sim engine (no per-event
// closure allocations on the hot path).
const (
	evSourceFire uint8 = iota // a = node
	evCheck                   // a = node
	evDeliver                 // a = from, b = to | inIdx<<32
	evExpire                  // a = node, b = idx | gen<<32
	evWake                    // a = node, b = gen
)

// Dispatch implements sim.Dispatcher.
func (nw *network) Dispatch(kind uint8, a, b int64) {
	switch kind {
	case evSourceFire:
		nw.fireSource(int(a))
	case evCheck:
		nw.checkFire(int(a))
	case evDeliver:
		nw.deliver(int(a), int(uint32(b)), int(b>>32))
	case evExpire:
		nw.expireFlag(int(a), int(uint32(b)), uint32(b>>32))
	case evWake:
		nw.wake(int(a), uint32(b))
	default:
		panic("core: unknown event kind")
	}
}

// network binds a Config to a running engine. Its storage (node states,
// input flags, trigger accumulators, engine queue) survives across runs
// when driven through an Arena; build re-initializes every field, so a
// reused network is observationally identical to a fresh one.
type network struct {
	cfg      Config
	eng      sim.Engine
	g        *grid.Graph
	rngDelay sim.RNG
	rngTimer sim.RNG
	rngInit  sim.RNG
	nodes    []nodeState
	inArena  []inputState // flat backing array for nodes[i].in
	triggers [][]sim.Time // arena-owned accumulators, snapshot into Result
	// lastGraph remembers which topology the per-node storage is sliced
	// for; a run on a different *grid.Graph re-slices from scratch.
	lastGraph *grid.Graph
}

// run executes the simulation described by cfg and returns its result.
func (nw *network) run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: Config.Graph is required")
	}
	if cfg.Delay == nil {
		return nil, fmt.Errorf("core: Config.Delay is required")
	}
	if cfg.Schedule == nil || cfg.Schedule.Pulses() == 0 {
		return nil, fmt.Errorf("core: Config.Schedule with at least one pulse is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Schedule.Times[0]) != len(cfg.Graph.Layer(0)) {
		return nil, fmt.Errorf("core: schedule width %d does not match layer-0 width %d",
			len(cfg.Schedule.Times[0]), len(cfg.Graph.Layer(0)))
	}

	nw.cfg = cfg
	nw.g = cfg.Graph
	nw.eng.Reset()
	nw.rngDelay.Reseed(sim.DeriveSeed(cfg.Seed, "delay"))
	nw.rngTimer.Reseed(sim.DeriveSeed(cfg.Seed, "timer"))
	nw.rngInit.Reseed(sim.DeriveSeed(cfg.Seed, "init"))
	nw.eng.SetDispatcher(nw)
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			nw.release()
			return &Result{Triggers: make([][]sim.Time, cfg.Graph.NumNodes())}, err
		}
		nw.eng.SetStopCheck(0, func() bool { return ctx.Err() != nil })
	}
	nw.build()
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = nw.autoHorizon()
	}
	nw.eng.Run(horizon)
	res := &Result{
		Triggers: nw.snapshotTriggers(),
		Events:   nw.eng.Executed,
		Horizon:  horizon,
	}
	interrupted := nw.eng.Interrupted()
	nw.release()
	if interrupted {
		return res, cfg.Context.Err()
	}
	return res, nil
}

// release drops the per-run references the arena must not retain between
// runs (context, callbacks, delay model, fault plan). The sized storage
// stays for the next run.
func (nw *network) release() {
	nw.cfg = Config{}
	nw.eng.SetStopCheck(0, nil)
}

// snapshotTriggers copies the arena's trigger accumulators into compact,
// caller-owned storage: one flat array plus one header slice, regardless
// of node count. Nodes that never triggered keep a nil history, matching
// the pre-arena behavior.
func (nw *network) snapshotTriggers() [][]sim.Time {
	total := 0
	for _, ts := range nw.triggers {
		total += len(ts)
	}
	out := make([][]sim.Time, len(nw.triggers))
	if total == 0 {
		return out
	}
	flat := make([]sim.Time, total)
	pos := 0
	for i, ts := range nw.triggers {
		if len(ts) == 0 {
			continue
		}
		n := copy(flat[pos:], ts)
		out[i] = flat[pos : pos+n : pos+n]
		pos += n
	}
	return out
}

// autoHorizon derives a stop time covering the last pulse's full traversal,
// including the fault-induced slowdown of Lemma 5 and pending timers.
func (nw *network) autoHorizon() sim.Time {
	p := nw.cfg.Params
	f := sim.Time(nw.cfg.Faults.NumFaulty())
	layers := sim.Time(nw.g.NumLayers())
	slack := (layers + f + 5) * p.Bounds.Max
	return nw.cfg.Schedule.End() + slack + p.TSleepMax + p.TLinkMax
}

// build initializes node states, static stuck-at-1 inputs, the layer-0
// schedule, random initial states, and the time-0 guard checks. On a reused
// network it re-initializes every field of the retained storage instead of
// allocating; only a topology change (different *grid.Graph) re-slices.
func (nw *network) build() {
	g := nw.g
	n := g.NumNodes()
	plan := nw.cfg.Faults

	if nw.lastGraph != g {
		nw.nodes = make([]nodeState, n)
		totalIn := 0
		for id := 0; id < n; id++ {
			totalIn += len(g.In(id))
		}
		nw.inArena = make([]inputState, totalIn)
		pos := 0
		for id := 0; id < n; id++ {
			d := len(g.In(id))
			nw.nodes[id].in = nw.inArena[pos : pos+d : pos+d]
			pos += d
		}
		nw.triggers = make([][]sim.Time, n)
		nw.lastGraph = g
	}

	for id := 0; id < n; id++ {
		st := &nw.nodes[id]
		st.sleeping = false
		st.wakeGen = 0
		st.roleCnt = [grid.NumRoles]uint8{}
		st.faulty = plan.IsFaulty(id)
		st.isSource = g.LayerOf(id) == 0
		links := g.In(id)
		for i := range st.in {
			in := &st.in[i]
			in.role = links[i].Role
			in.mode = plan.Link(links[i].From, id)
			in.gen = 0
			in.set = false
			if in.mode == fault.LinkStuck1 {
				in.set = true // permanently high input
				st.roleCnt[in.role]++
			}
		}
		nw.triggers[id] = nw.triggers[id][:0]
	}

	// Layer-0 pulse generation.
	layer0 := g.Layer(0)
	for k := range nw.cfg.Schedule.Times {
		for c, at := range nw.cfg.Schedule.Times[k] {
			id := layer0[c]
			if nw.nodes[id].faulty {
				continue
			}
			nw.eng.ScheduleEvent(at, evSourceFire, int64(id), 0)
		}
	}

	// Initial states of forwarding nodes.
	for id := 0; id < n; id++ {
		st := &nw.nodes[id]
		if st.isSource || st.faulty {
			continue
		}
		if nw.cfg.RandomInit {
			nw.randomizeState(id)
		}
		// Evaluate the guard at time 0: stuck-at-1 inputs or arbitrary
		// initial flags may already satisfy it.
		nw.eng.ScheduleEvent(0, evCheck, int64(id), 0)
	}
}

// randomizeState puts node id into an arbitrary state of the Fig. 7 state
// machines: either asleep with an arbitrary residual sleep time, or awake
// with arbitrary memory flags carrying arbitrary residual link timers.
func (nw *network) randomizeState(id int) {
	st := &nw.nodes[id]
	p := nw.cfg.Params
	if nw.rngInit.Bool() {
		st.sleeping = true
		nw.eng.ScheduleEvent(nw.rngInit.TimeIn(0, p.TSleepMax),
			evWake, int64(id), int64(st.wakeGen))
		// The flags may additionally hold arbitrary values; they will be
		// cleared on wake-up anyway, but can matter if timers expire first.
	}
	for i := range st.in {
		if st.in[i].mode != fault.LinkCorrect {
			continue
		}
		if !nw.rngInit.Bool() {
			continue
		}
		nw.setFlag(st, i)
		if p.LinkTimersEnabled() {
			residual := nw.rngInit.TimeIn(0, p.TLinkMax)
			nw.eng.ScheduleEvent(residual, evExpire,
				int64(id), int64(i)|int64(st.in[i].gen)<<32)
		}
	}
}

// setFlag sets input i's memory flag and maintains the role counters. The
// flag must currently be clear.
func (nw *network) setFlag(st *nodeState, i int) {
	in := &st.in[i]
	in.set = true
	if in.mode != fault.LinkStuck0 {
		st.roleCnt[in.role]++
	}
}

// clearFlag clears input i's memory flag and maintains the role counters.
// The flag must currently be set.
func (nw *network) clearFlag(st *nodeState, i int) {
	in := &st.in[i]
	in.set = false
	if in.mode != fault.LinkStuck0 {
		st.roleCnt[in.role]--
	}
}

// fireSource makes a layer-0 node emit a pulse.
func (nw *network) fireSource(id int) {
	nw.recordTrigger(id, true)
	nw.broadcast(id)
}

// broadcast sends trigger messages over all of id's outgoing links.
func (nw *network) broadcast(id int) {
	now := nw.eng.Now()
	for _, out := range nw.g.Out(id) {
		switch nw.cfg.Faults.Link(id, out.To) {
		case fault.LinkCorrect:
			d := nw.cfg.Delay.Delay(id, out.To, now, &nw.rngDelay)
			if d < 0 {
				panic("core: delay model returned a negative delay")
			}
			if nw.cfg.Trace != nil {
				nw.cfg.Trace.Send(id, out.To, now, now+d)
			}
			nw.eng.ScheduleEvent(now+d, evDeliver,
				int64(id), int64(out.To)|int64(out.InIdx)<<32)
		default:
			// Stuck links never carry discrete messages; stuck-at-1 is
			// modelled as a permanently set input at the receiver.
		}
	}
}

// deliver processes the arrival of a trigger message from `from` at `to`
// (the "upon receiving trigger message from neighbor" rule of Algorithm 1).
// idx is the precomputed index of the input the message drives (the
// reverse-edge index carried by the event payload).
func (nw *network) deliver(from, to, idx int) {
	accepted := nw.deliverAccept(to, idx)
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Deliver(from, to, nw.eng.Now(), accepted)
	}
	if accepted {
		nw.checkFire(to)
	}
}

// deliverAccept updates the receiver's flag state and reports whether the
// message was memorized.
func (nw *network) deliverAccept(to, idx int) bool {
	st := &nw.nodes[to]
	if st.faulty || st.isSource {
		return false
	}
	in := &st.in[idx]
	if in.mode != fault.LinkCorrect {
		return false
	}
	if in.set {
		// The Fig. 7b flag machine is already in "memorize"; a further
		// trigger neither restarts the timer nor changes state.
		return false
	}
	nw.setFlag(st, idx)
	in.gen++
	if nw.cfg.Params.LinkTimersEnabled() {
		dur := nw.rngTimer.TimeIn(nw.cfg.Params.TLinkMin, nw.cfg.Params.TLinkMax)
		nw.eng.ScheduleEventAfter(dur, evExpire,
			int64(to), int64(idx)|int64(in.gen)<<32)
	}
	return true
}

// expireFlag clears a memory flag when its link timer fires, unless the
// flag has been cleared and re-set since the timer started.
func (nw *network) expireFlag(id, idx int, gen uint32) {
	st := &nw.nodes[id]
	in := &st.in[idx]
	if in.gen != gen || in.mode == fault.LinkStuck1 {
		return
	}
	if in.set {
		nw.clearFlag(st, idx)
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.FlagExpire(id, idx, nw.eng.Now())
	}
}

// guardSatisfied evaluates the firing guard against the incrementally
// maintained per-role counters: O(guard pairs), no input rescan.
func (nw *network) guardSatisfied(id int) bool {
	st := &nw.nodes[id]
	switch nw.cfg.Params.Guard {
	case GuardAdjacent:
		for _, pair := range nw.g.GuardPairs() {
			if st.roleCnt[pair[0]] > 0 && st.roleCnt[pair[1]] > 0 {
				return true
			}
		}
		return false
	case GuardAnyTwo:
		count := 0
		for _, c := range st.roleCnt {
			if c > 0 {
				count++
			}
		}
		return count >= 2
	default:
		panic("core: unknown guard mode")
	}
}

// checkFire triggers the node if it is awake and its guard holds
// (ready → firing → sleeping in Fig. 7a).
func (nw *network) checkFire(id int) {
	st := &nw.nodes[id]
	if st.sleeping || st.faulty || st.isSource {
		return
	}
	if !nw.guardSatisfied(id) {
		return
	}
	nw.recordTrigger(id, false)
	nw.broadcast(id)
	st.sleeping = true
	st.wakeGen++
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Sleep(id, nw.eng.Now())
	}
	dur := nw.rngTimer.TimeIn(nw.cfg.Params.TSleepMin, nw.cfg.Params.TSleepMax)
	nw.eng.ScheduleEventAfter(dur, evWake, int64(id), int64(st.wakeGen))
}

// wake ends the sleep phase, forgetting all previously received trigger
// messages (the boxed flag-clearing transition of Fig. 7a).
func (nw *network) wake(id int, gen uint32) {
	st := &nw.nodes[id]
	if st.wakeGen != gen {
		return
	}
	st.sleeping = false
	for i := range st.in {
		if st.in[i].mode == fault.LinkStuck1 {
			continue // a constant-1 input re-sets its flag immediately
		}
		if st.in[i].set {
			nw.clearFlag(st, i)
		}
		st.in[i].gen++
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Wake(id, nw.eng.Now())
	}
	nw.checkFire(id)
}

// recordTrigger appends the current time to the node's trigger history.
func (nw *network) recordTrigger(id int, isSource bool) {
	nw.triggers[id] = append(nw.triggers[id], nw.eng.Now())
	if nw.cfg.OnTrigger != nil {
		nw.cfg.OnTrigger(id, nw.eng.Now())
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Fire(id, nw.eng.Now(), isSource)
	}
}
