package core

import (
	"context"
	"fmt"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// Config fully describes one simulation run. Given equal Configs (including
// Seed), Run produces identical Results.
type Config struct {
	// Graph is the communication topology. Layer 0 nodes act as clock
	// sources; higher layers run the HEX forwarding algorithm.
	Graph *grid.Graph
	// Params are the algorithm parameters.
	Params Params
	// Delay assigns per-message link delays. Required.
	Delay delay.Model
	// Faults is the fault plan; nil means fault-free.
	Faults *fault.Plan
	// Schedule provides the layer-0 triggering times; Times[k][c] refers to
	// the c-th node of Graph.Layer(0). Required.
	Schedule *source.Schedule
	// RandomInit starts every correct forwarding node in an arbitrary
	// state of the Fig. 7 state machines (for self-stabilization runs).
	RandomInit bool
	// Seed drives all randomness (delays, timers, initial states). Fault
	// placement/behaviour randomness lives in the fault plan, which is
	// built by the caller before the run.
	Seed uint64
	// Horizon stops the simulation; 0 derives a horizon that lets the last
	// pulse traverse the grid with ample slack.
	Horizon sim.Time
	// Context, if non-nil, makes the run cancellable: the engine polls it
	// every few hundred events and stops early once the context is done.
	// Run then returns the partial Result (triggers and event counts up to
	// the stop point) together with the context's error, so callers can
	// still observe how much work was done. A run that completes before
	// cancellation is bit-identical to one without a Context.
	Context context.Context
	// OnTrigger, if non-nil, observes every trigger of a correct node.
	OnTrigger func(node int, t sim.Time)
	// Trace, if non-nil, observes all internal events (sends, deliveries,
	// flag expiries, fires, sleep/wake transitions).
	Trace Tracer
}

// Result holds the observables of one run. A Result owns its memory: it
// never aliases arena storage, so it stays valid after the arena that
// produced it is reused for another run.
type Result struct {
	// Triggers[n] lists the triggering times of node n in increasing
	// order. Faulty nodes never trigger (their outputs are stuck and their
	// times are excluded from all statistics, as in the paper).
	Triggers [][]sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Horizon is the (possibly derived) end of simulated time.
	Horizon sim.Time
}

// Typed event kinds dispatched through the sim engine (no per-event
// closure allocations on the hot path).
const (
	evSourceFire uint8 = iota // a = node
	evCheck                   // a = node
	evDeliver                 // a = from, b = to | inIdx<<32
	evExpire                  // a = node, b = idx | gen<<32
	evWake                    // a = node, b = gen
)

// Dispatch implements sim.Dispatcher.
func (nw *network) Dispatch(kind uint8, a, b int64) {
	switch kind {
	case evSourceFire:
		nw.fireSource(int(a))
	case evCheck:
		nw.checkFire(int(a))
	case evDeliver:
		nw.deliver(int(a), int(uint32(b)), int(b>>32))
	case evExpire:
		nw.expireFlag(int(a), int(uint32(b)), uint32(b>>32))
	case evWake:
		nw.wake(int(a), uint32(b))
	default:
		panic("core: unknown event kind")
	}
}

// DispatchBatch implements sim.BatchDispatcher: the engine hands every run
// of same-instant typed events here in one call, in exactly the order
// repeated Dispatch calls would have seen them, amortizing the engine's
// per-event loop overhead across the batch.
func (nw *network) DispatchBatch(at sim.Time, evs []sim.EventRec) {
	for i := range evs {
		ev := &evs[i]
		nw.Dispatch(ev.Kind, ev.A, ev.B)
	}
}

// noBatchDispatch, when set, makes every run dispatch typed events one at
// a time instead of through the BatchDispatcher fast path. The pop order —
// and therefore every observable, including Tracer callback order — is
// identical either way; tests flip this to prove exactly that.
var noBatchDispatch bool

// network binds a Config to a running engine. Its storage (the SoA node
// and input slabs of soa.go, trigger accumulators, engine queue) survives
// across runs when driven through an Arena; build re-initializes every
// field, so a reused network is observationally identical to a fresh one.
type network struct {
	cfg      Config
	eng      sim.Engine
	g        *grid.Graph
	rngDelay sim.RNG
	rngTimer sim.RNG
	rngInit  sim.RNG
	// Structure-of-arrays simulation state; see soa.go for the layout.
	cells    []nodeCell
	wakeGen  []uint32
	inOff    []int32
	inBits   []uint8
	inGen    []uint32
	triggers [][]sim.Time // arena-owned accumulators, snapshot into Result
	// lastGraph remembers which topology the slabs are sized for; a run on
	// a different *grid.Graph re-slices from scratch.
	lastGraph *grid.Graph
}

// run executes the simulation described by cfg and returns its result.
func (nw *network) run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("core: Config.Graph is required")
	}
	if cfg.Delay == nil {
		return nil, fmt.Errorf("core: Config.Delay is required")
	}
	if cfg.Schedule == nil || cfg.Schedule.Pulses() == 0 {
		return nil, fmt.Errorf("core: Config.Schedule with at least one pulse is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Schedule.Times[0]) != len(cfg.Graph.Layer(0)) {
		return nil, fmt.Errorf("core: schedule width %d does not match layer-0 width %d",
			len(cfg.Schedule.Times[0]), len(cfg.Graph.Layer(0)))
	}

	nw.cfg = cfg
	nw.g = cfg.Graph
	nw.eng.Reset()
	nw.eng.SetHorizonHint(cfg.Params.MaxEventDelta())
	nw.rngDelay.Reseed(sim.DeriveSeed(cfg.Seed, "delay"))
	nw.rngTimer.Reseed(sim.DeriveSeed(cfg.Seed, "timer"))
	nw.rngInit.Reseed(sim.DeriveSeed(cfg.Seed, "init"))
	nw.eng.SetDispatcher(nw)
	nw.eng.SetBatching(!noBatchDispatch)
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			nw.release()
			return &Result{Triggers: make([][]sim.Time, cfg.Graph.NumNodes())}, err
		}
		nw.eng.SetStopCheck(0, func() bool { return ctx.Err() != nil })
	}
	nw.build()
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = nw.autoHorizon()
	}
	nw.eng.Run(horizon)
	res := &Result{
		Triggers: nw.snapshotTriggers(),
		Events:   nw.eng.Executed,
		Horizon:  horizon,
	}
	interrupted := nw.eng.Interrupted()
	nw.release()
	if interrupted {
		return res, cfg.Context.Err()
	}
	return res, nil
}

// release drops the per-run references the arena must not retain between
// runs (context, callbacks, delay model, fault plan). The sized storage
// stays for the next run.
func (nw *network) release() {
	nw.cfg = Config{}
	nw.eng.SetStopCheck(0, nil)
}

// snapshotTriggers copies the arena's trigger accumulators into compact,
// caller-owned storage: one flat array plus one header slice, regardless
// of node count. Nodes that never triggered keep a nil history, matching
// the pre-arena behavior.
func (nw *network) snapshotTriggers() [][]sim.Time {
	total := 0
	for _, ts := range nw.triggers {
		total += len(ts)
	}
	out := make([][]sim.Time, len(nw.triggers))
	if total == 0 {
		return out
	}
	flat := make([]sim.Time, total)
	pos := 0
	for i, ts := range nw.triggers {
		if len(ts) == 0 {
			continue
		}
		n := copy(flat[pos:], ts)
		out[i] = flat[pos : pos+n : pos+n]
		pos += n
	}
	return out
}

// autoHorizon derives a stop time covering the last pulse's full traversal,
// including the fault-induced slowdown of Lemma 5 and pending timers.
func (nw *network) autoHorizon() sim.Time {
	p := nw.cfg.Params
	f := sim.Time(nw.cfg.Faults.NumFaulty())
	layers := sim.Time(nw.g.NumLayers())
	slack := (layers + f + 5) * p.Bounds.Max
	return nw.cfg.Schedule.End() + slack + p.TSleepMax + p.TLinkMax
}

// build initializes the state slabs, static stuck-at-1 inputs, the layer-0
// schedule, random initial states, and the time-0 guard checks. On a reused
// network it re-initializes every slab entry of the retained storage
// instead of allocating; only a topology change (different *grid.Graph)
// re-slices.
func (nw *network) build() {
	g := nw.g
	n := g.NumNodes()
	plan := nw.cfg.Faults

	if nw.lastGraph != g {
		nw.cells = make([]nodeCell, n)
		nw.wakeGen = make([]uint32, n)
		nw.inOff = make([]int32, n+1)
		totalIn := 0
		for id := 0; id < n; id++ {
			nw.inOff[id] = int32(totalIn)
			totalIn += len(g.In(id))
		}
		nw.inOff[n] = int32(totalIn)
		nw.inBits = make([]uint8, totalIn)
		nw.inGen = make([]uint32, totalIn)
		nw.triggers = make([][]sim.Time, n)
		nw.lastGraph = g
	}

	for id := 0; id < n; id++ {
		cell := &nw.cells[id]
		*cell = nodeCell{}
		nw.wakeGen[id] = 0
		if plan.IsFaulty(id) {
			cell.flags |= nodeFaulty
		}
		if g.LayerOf(id) == 0 {
			cell.flags |= nodeSource
		}
		links := g.In(id)
		base := int(nw.inOff[id])
		for i := range links {
			mode := plan.Link(links[i].From, id)
			bits := inputBits(mode, links[i].Role)
			if mode == fault.LinkStuck1 {
				bits |= inSetBit // permanently high input
				cell.roleCnt[links[i].Role]++
			}
			nw.inBits[base+i] = bits
			nw.inGen[base+i] = 0
		}
		nw.triggers[id] = nw.triggers[id][:0]
	}

	// Layer-0 pulse generation.
	layer0 := g.Layer(0)
	for k := range nw.cfg.Schedule.Times {
		for c, at := range nw.cfg.Schedule.Times[k] {
			id := layer0[c]
			if nw.cells[id].flags&nodeFaulty != 0 {
				continue
			}
			nw.eng.ScheduleEvent(at, evSourceFire, int64(id), 0)
		}
	}

	// Initial states of forwarding nodes.
	for id := 0; id < n; id++ {
		if nw.cells[id].flags&(nodeSource|nodeFaulty) != 0 {
			continue
		}
		if nw.cfg.RandomInit {
			nw.randomizeState(id)
		}
		// Evaluate the guard at time 0: stuck-at-1 inputs or arbitrary
		// initial flags may already satisfy it.
		nw.eng.ScheduleEvent(0, evCheck, int64(id), 0)
	}
}

// randomizeState puts node id into an arbitrary state of the Fig. 7 state
// machines: either asleep with an arbitrary residual sleep time, or awake
// with arbitrary memory flags carrying arbitrary residual link timers.
func (nw *network) randomizeState(id int) {
	p := nw.cfg.Params
	if nw.rngInit.Bool() {
		nw.cells[id].flags |= nodeSleeping
		nw.eng.ScheduleEvent(nw.rngInit.TimeIn(0, p.TSleepMax),
			evWake, int64(id), int64(nw.wakeGen[id]))
		// The flags may additionally hold arbitrary values; they will be
		// cleared on wake-up anyway, but can matter if timers expire first.
	}
	lo, hi := int(nw.inOff[id]), int(nw.inOff[id+1])
	for slot := lo; slot < hi; slot++ {
		if modeOf(nw.inBits[slot]) != fault.LinkCorrect {
			continue
		}
		if !nw.rngInit.Bool() {
			continue
		}
		nw.setFlag(id, slot)
		if p.LinkTimersEnabled() {
			residual := nw.rngInit.TimeIn(0, p.TLinkMax)
			nw.eng.ScheduleEvent(residual, evExpire,
				int64(id), int64(slot-lo)|int64(nw.inGen[slot])<<32)
		}
	}
}

// setFlag sets input slot's memory flag and maintains node id's role
// counters. The flag must currently be clear.
func (nw *network) setFlag(id, slot int) {
	bits := nw.inBits[slot]
	nw.inBits[slot] = bits | inSetBit
	if modeOf(bits) != fault.LinkStuck0 {
		nw.cells[id].roleCnt[roleOf(bits)]++
	}
}

// clearFlag clears input slot's memory flag and maintains node id's role
// counters. The flag must currently be set.
func (nw *network) clearFlag(id, slot int) {
	bits := nw.inBits[slot]
	nw.inBits[slot] = bits &^ inSetBit
	if modeOf(bits) != fault.LinkStuck0 {
		nw.cells[id].roleCnt[roleOf(bits)]--
	}
}

// fireSource makes a layer-0 node emit a pulse.
func (nw *network) fireSource(id int) {
	nw.recordTrigger(id, true)
	nw.broadcast(id)
}

// broadcast sends trigger messages over all of id's outgoing links.
func (nw *network) broadcast(id int) {
	now := nw.eng.Now()
	for _, out := range nw.g.Out(id) {
		switch nw.cfg.Faults.Link(id, out.To) {
		case fault.LinkCorrect:
			d := nw.cfg.Delay.Delay(id, out.To, now, &nw.rngDelay)
			if d < 0 {
				panic("core: delay model returned a negative delay")
			}
			if nw.cfg.Trace != nil {
				nw.cfg.Trace.Send(id, out.To, now, now+d)
			}
			nw.eng.ScheduleEvent(now+d, evDeliver,
				int64(id), int64(out.To)|int64(out.InIdx)<<32)
		default:
			// Stuck links never carry discrete messages; stuck-at-1 is
			// modelled as a permanently set input at the receiver.
		}
	}
}

// deliver processes the arrival of a trigger message from `from` at `to`
// (the "upon receiving trigger message from neighbor" rule of Algorithm 1).
// idx is the precomputed index of the input the message drives (the
// reverse-edge index carried by the event payload).
func (nw *network) deliver(from, to, idx int) {
	accepted := nw.deliverAccept(to, idx)
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Deliver(from, to, nw.eng.Now(), accepted)
	}
	if accepted {
		nw.checkFire(to)
	}
}

// deliverAccept updates the receiver's flag state and reports whether the
// message was memorized. The fast path reads one nodeCell byte and one
// input byte: a correct, clear input has both mode bits and the set bit at
// zero, so eligibility is a single mask test.
func (nw *network) deliverAccept(to, idx int) bool {
	if nw.cells[to].flags&(nodeFaulty|nodeSource) != 0 {
		return false
	}
	slot := int(nw.inOff[to]) + idx
	bits := nw.inBits[slot]
	if bits&(inModeMask|inSetBit) != 0 {
		// Either a non-correct link, or the Fig. 7b flag machine is already
		// in "memorize"; a further trigger neither restarts the timer nor
		// changes state.
		return false
	}
	nw.inBits[slot] = bits | inSetBit
	nw.cells[to].roleCnt[roleOf(bits)]++ // mode is LinkCorrect, counts
	gen := nw.inGen[slot] + 1
	nw.inGen[slot] = gen
	if nw.cfg.Params.LinkTimersEnabled() {
		dur := nw.rngTimer.TimeIn(nw.cfg.Params.TLinkMin, nw.cfg.Params.TLinkMax)
		nw.eng.ScheduleEventAfter(dur, evExpire,
			int64(to), int64(idx)|int64(gen)<<32)
	}
	return true
}

// expireFlag clears a memory flag when its link timer fires, unless the
// flag has been cleared and re-set since the timer started.
func (nw *network) expireFlag(id, idx int, gen uint32) {
	slot := int(nw.inOff[id]) + idx
	bits := nw.inBits[slot]
	if nw.inGen[slot] != gen || modeOf(bits) == fault.LinkStuck1 {
		return
	}
	if bits&inSetBit != 0 {
		nw.clearFlag(id, slot)
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.FlagExpire(id, idx, nw.eng.Now())
	}
}

// guardSatisfied evaluates the firing guard against the incrementally
// maintained per-role counters in the node's cell: O(guard pairs), no
// input rescan, one contiguous load.
func (nw *network) guardSatisfied(id int) bool {
	cnt := &nw.cells[id].roleCnt
	switch nw.cfg.Params.Guard {
	case GuardAdjacent:
		for _, pair := range nw.g.GuardPairs() {
			if cnt[pair[0]] > 0 && cnt[pair[1]] > 0 {
				return true
			}
		}
		return false
	case GuardAnyTwo:
		count := 0
		for _, c := range cnt {
			if c > 0 {
				count++
			}
		}
		return count >= 2
	default:
		panic("core: unknown guard mode")
	}
}

// checkFire triggers the node if it is awake and its guard holds
// (ready → firing → sleeping in Fig. 7a). Any set flag bit — sleeping,
// faulty, or source — disqualifies the node, so the not-ready test is one
// byte compare.
func (nw *network) checkFire(id int) {
	if nw.cells[id].flags != 0 {
		return
	}
	if !nw.guardSatisfied(id) {
		return
	}
	nw.recordTrigger(id, false)
	nw.broadcast(id)
	nw.cells[id].flags |= nodeSleeping
	gen := nw.wakeGen[id] + 1
	nw.wakeGen[id] = gen
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Sleep(id, nw.eng.Now())
	}
	dur := nw.rngTimer.TimeIn(nw.cfg.Params.TSleepMin, nw.cfg.Params.TSleepMax)
	nw.eng.ScheduleEventAfter(dur, evWake, int64(id), int64(gen))
}

// wake ends the sleep phase, forgetting all previously received trigger
// messages (the boxed flag-clearing transition of Fig. 7a). The flag sweep
// is a contiguous scan of the node's input bytes.
func (nw *network) wake(id int, gen uint32) {
	if nw.wakeGen[id] != gen {
		return
	}
	nw.cells[id].flags &^= nodeSleeping
	for slot := int(nw.inOff[id]); slot < int(nw.inOff[id+1]); slot++ {
		bits := nw.inBits[slot]
		if modeOf(bits) == fault.LinkStuck1 {
			continue // a constant-1 input re-sets its flag immediately
		}
		if bits&inSetBit != 0 {
			nw.clearFlag(id, slot)
		}
		nw.inGen[slot]++
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Wake(id, nw.eng.Now())
	}
	nw.checkFire(id)
}

// recordTrigger appends the current time to the node's trigger history.
func (nw *network) recordTrigger(id int, isSource bool) {
	nw.triggers[id] = append(nw.triggers[id], nw.eng.Now())
	if nw.cfg.OnTrigger != nil {
		nw.cfg.OnTrigger(id, nw.eng.Now())
	}
	if nw.cfg.Trace != nil {
		nw.cfg.Trace.Fire(id, nw.eng.Now(), isSource)
	}
}
