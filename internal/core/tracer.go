package core

import "repro/internal/sim"

// Tracer observes the internal events of a simulation run. All callbacks
// are invoked synchronously from the event loop in deterministic order; a
// Tracer must not call back into the network. The trace package provides a
// Recorder plus independent replay-based audits of the algorithm's
// semantics built on this interface.
type Tracer interface {
	// Send is called when node `from` broadcasts a trigger message over
	// the link to `to`, with its scheduled arrival time.
	Send(from, to int, at, arrival sim.Time)
	// Deliver is called when a message from `from` reaches `to`.
	// accepted is false when the receiver ignored it (faulty or source
	// receiver, stuck link, or flag already set).
	Deliver(from, to int, at sim.Time, accepted bool)
	// FlagExpire is called when the memory flag of input index `input`
	// (position in Graph.In(node)) is cleared by its link timer.
	FlagExpire(node, input int, at sim.Time)
	// Fire is called when a node triggers; source marks layer-0 pulses.
	Fire(node int, at sim.Time, source bool)
	// Sleep is called when a node enters its sleep phase after firing.
	Sleep(node int, at sim.Time)
	// Wake is called when a node leaves the sleep phase, clearing its
	// memory flags.
	Wake(node int, at sim.Time)
}
