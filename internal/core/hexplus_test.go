package core

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// runPlusPulse runs one zero-offset pulse on a HEX+ grid.
func runPlusPulse(t *testing.T, h *grid.Hex, mod func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Graph:    h.Graph,
		Params:   DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(make([]sim.Time, h.W)),
		Seed:     1,
	}
	if mod != nil {
		mod(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHexPlusFaultFreePulse(t *testing.T) {
	h := grid.MustHexPlus(12, 10)
	res := runPlusPulse(t, h, nil)
	for n, ts := range res.Triggers {
		if len(ts) != 1 {
			t.Fatalf("HEX+ node %d triggered %d times", n, len(ts))
		}
	}
}

func TestHexPlusSurvivesAdjacentCrashPair(t *testing.T) {
	// The exact scenario that starves a plain HEX node (see
	// TestTwoAdjacentCrashesKillCommonUpperNeighbor): both lower
	// neighbors of a node crash. HEX+ fires it anyway via the outer lower
	// in-neighbors — Section 5's claimed benefit.
	h := grid.MustHexPlus(8, 8)
	victim := h.NodeID(4, 4)
	res := runPlusPulse(t, h, func(c *Config) {
		ll, _ := h.LowerLeftNeighbor(victim)
		lr, _ := h.LowerRightNeighbor(victim)
		c.Faults.SetBehavior(ll, fault.FailSilent)
		c.Faults.SetBehavior(lr, fault.FailSilent)
	})
	if len(res.Triggers[victim]) != 1 {
		t.Errorf("HEX+ victim triggered %d times, want 1", len(res.Triggers[victim]))
	}
}

func TestHexPlusFixedDelayWave(t *testing.T) {
	// With all delays equal the HEX+ wave is exactly layer-synchronous,
	// like plain HEX: the extra links change nothing in the fault-free,
	// equal-delay case.
	h := grid.MustHexPlus(8, 8)
	d := sim.Time(8000)
	res := runPlusPulse(t, h, func(c *Config) { c.Delay = delay.Fixed{D: d} })
	for n, ts := range res.Triggers {
		if want := sim.Time(h.LayerOf(n)) * d; ts[0] != want {
			t.Fatalf("node %d at %v, want %v", n, ts[0], want)
		}
	}
}

func TestHexPlusFasterThanHexUnderLowerFault(t *testing.T) {
	// A fail-silent lower-left neighbor delays a plain HEX node (it needs
	// intra-layer help); the HEX+ node fires via (lower-right,
	// lower-right-outer) with no detour. Compare trigger times of the
	// node directly above the fault under identical fixed delays.
	d := sim.Time(8000)
	mk := func(plus bool) sim.Time {
		var h *grid.Hex
		if plus {
			h = grid.MustHexPlus(6, 8)
		} else {
			h = grid.MustHex(6, 8)
		}
		victim := h.NodeID(3, 4)
		ll, _ := h.LowerLeftNeighbor(victim)
		cfg := Config{
			Graph:    h.Graph,
			Params:   DefaultParams(),
			Delay:    delay.Fixed{D: d},
			Faults:   fault.NewPlan(h.NumNodes()),
			Schedule: source.SinglePulse(make([]sim.Time, h.W)),
			Seed:     1,
		}
		cfg.Faults.SetBehavior(ll, fault.FailSilent)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Triggers[victim]) == 0 {
			t.Fatal("victim starved")
		}
		return res.Triggers[victim][0]
	}
	hexTime, plusTime := mk(false), mk(true)
	if plusTime >= hexTime {
		t.Errorf("HEX+ (%v) not faster than HEX (%v) above a crashed lower neighbor", plusTime, hexTime)
	}
	// HEX+ needs no extra hop at all: it fires at the nominal 3·d.
	if plusTime != 3*d {
		t.Errorf("HEX+ victim at %v, want %v", plusTime, 3*d)
	}
}
