package core

// Wedge-parallel execution mode: the conservative bounded-window engine of
// internal/sim/wedge.go applied to the HEX grid.
//
// The grid is cut into P contiguous column wedges (grid.CutWedges); each
// wedge's nodes execute on that wedge's private engine, driven by one
// worker goroutine. The per-link delay lower bound d− = Params.Bounds.Min
// is the lookahead: a cross-wedge delivery always arrives at least d−
// after the event that sent it, so a wedge whose in-neighbors have
// published frontier C may freely execute through C + d−. Shared SoA slabs
// stay shared — every handler touches only the slab entries of the node
// that owns the event, and each node's events run on exactly one wedge, so
// access is disjoint by index (the race-enabled differential tests pin
// this). Determinism comes from the partition-stable (at, seq) keys and
// per-node draw counters in network.go: a P-wedge run is bit-identical to
// the serial run.

import (
	"fmt"
	"runtime"

	"repro/internal/grid"
	"repro/internal/sim"
)

// parState is the arena-retained scaffolding of the parallel mode: the
// wedge group (engines, rings, frontiers), the column cut, and one
// executor per wedge. It is rebuilt only when the topology, wedge count,
// or delay lower bound changes.
type parState struct {
	group *sim.WedgeGroup
	cut   *grid.WedgeCut
	execs []executor
	graph *grid.Graph
	p     int
	dMin  sim.Time
}

// resolveWedges decides the engine for the current run: the number of
// wedge workers (≥ 2), or 1 for serial. Serial is chosen whenever the
// caller asked for it (Wedges 0 or 1), the topology has no column
// structure to cut, or a per-event observer is installed — Trace and
// OnTrigger promise globally ordered callbacks, which only the serial
// engine provides.
func (nw *network) resolveWedges() int {
	w := nw.cfg.Wedges
	if w == AutoWedges {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 2 {
		return 1
	}
	if nw.cfg.Trace != nil || nw.cfg.OnTrigger != nil {
		return 1
	}
	_, numCols, ok := nw.g.Columns()
	if !ok {
		return 1
	}
	if w > numCols {
		w = numCols
	}
	if w < 2 {
		return 1
	}
	return w
}

// ringCapacityFor sizes a wedge pair's SPSC ring from its boundary-link
// count: enough slack that a burst of same-window deliveries rarely fills
// it (a full ring degrades to a kick-and-spin handoff, it never deadlocks
// or drops).
func ringCapacityFor(links int) int {
	c := links * 8
	if c < 256 {
		c = 256
	}
	if c > 8192 {
		c = 8192
	}
	return c
}

// setupParallel prepares the wedge group for the current run, reusing the
// cached scaffolding when the (graph, wedge count, lookahead) triple is
// unchanged.
func (nw *network) setupParallel(p int) error {
	dMin := nw.cfg.Params.Bounds.Min
	if nw.par == nil || nw.par.graph != nw.g || nw.par.p != p || nw.par.dMin != dMin {
		cut, err := grid.CutWedges(nw.g, p)
		if err != nil {
			return fmt.Errorf("core: wedge cut failed: %w", err)
		}
		group := sim.NewWedgeGroup(p, dMin)
		for _, pr := range cut.Pairs {
			group.Connect(pr.Src, pr.Dst, ringCapacityFor(pr.Links))
		}
		st := &parState{group: group, cut: cut, graph: nw.g, p: p, dMin: dMin}
		st.execs = make([]executor, p)
		for i := range st.execs {
			w := group.Wedge(i)
			st.execs[i] = executor{nw: nw, eng: w.Engine(), wedge: w, wedgeOf: cut.WedgeOf}
		}
		nw.par = st
	} else {
		nw.par.group.Reset()
	}
	st := nw.par
	for i := 0; i < p; i++ {
		eng := st.group.Wedge(i).Engine()
		eng.SetHorizonHint(nw.cfg.Params.MaxEventDelta())
		eng.SetDispatcher(&st.execs[i])
		eng.SetBatching(!noBatchDispatch)
	}
	return nil
}
