package core

import (
	"fmt"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// sameResult reports whether two Results are bit-identical and fails the
// test with the first divergence otherwise. Events and Horizon are part of
// the comparison: the parallel engine must not only trigger every node at
// the same times, it must execute exactly the same event set.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Horizon != b.Horizon {
		t.Fatalf("%s: horizon %v vs %v", label, a.Horizon, b.Horizon)
	}
	if a.Events != b.Events {
		t.Fatalf("%s: events %d vs %d", label, a.Events, b.Events)
	}
	if len(a.Triggers) != len(b.Triggers) {
		t.Fatalf("%s: node counts %d vs %d", label, len(a.Triggers), len(b.Triggers))
	}
	for n := range a.Triggers {
		if len(a.Triggers[n]) != len(b.Triggers[n]) {
			t.Fatalf("%s: node %d triggered %d vs %d times",
				label, n, len(a.Triggers[n]), len(b.Triggers[n]))
		}
		for i := range a.Triggers[n] {
			if a.Triggers[n][i] != b.Triggers[n][i] {
				t.Fatalf("%s: node %d trigger %d: %v vs %v",
					label, n, i, a.Triggers[n][i], b.Triggers[n][i])
			}
		}
	}
}

// parallelCase is one randomized configuration of the serial-vs-wedge
// differential: the fields cover both topologies, faults of both kinds,
// random layer-0 offsets, random initial states, and multi-pulse
// schedules, i.e. every code path that draws randomness or crosses wedge
// boundaries.
type parallelCase struct {
	L, W    int
	seed    uint64
	hexPlus bool
	faults  int
	behav   fault.Behavior
	random  bool
	pulses  int
}

func (c parallelCase) run(t *testing.T, wedges int) *Result {
	t.Helper()
	h := grid.MustHex(c.L, c.W)
	if c.hexPlus {
		h = grid.MustHexPlus(c.L, c.W)
	}
	plan := fault.NewPlan(h.NumNodes())
	if c.faults > 0 {
		rngF := sim.NewRNG(sim.DeriveSeed(c.seed, "faults"))
		placed, err := fault.PlaceRandom(h.Graph, c.faults, nil, rngF, 0)
		if err != nil {
			t.Skipf("infeasible fault count %d on %dx%d", c.faults, c.L, c.W)
		}
		for _, n := range placed {
			plan.SetBehavior(n, c.behav)
		}
		if c.behav == fault.Byzantine {
			plan.RandomizeByzantine(h.Graph, rngF)
		}
	}
	b := delay.Paper
	sched := source.SinglePulse(source.Offsets(source.UniformDPlus, h.W, b,
		sim.NewRNG(sim.DeriveSeed(c.seed, "offsets"))))
	if c.pulses > 1 {
		sched = source.NewSchedule(source.UniformDPlus, h.W, c.pulses, b, 0,
			sim.NewRNG(sim.DeriveSeed(c.seed, "offsets")))
	}
	res, err := Run(Config{
		Graph:      h.Graph,
		Params:     DefaultParams(),
		Delay:      delay.Uniform{Bounds: b},
		Faults:     plan,
		Schedule:   sched,
		RandomInit: c.random,
		Seed:       c.seed,
		Wedges:     wedges,
	})
	if err != nil {
		t.Fatalf("wedges=%d: %v", wedges, err)
	}
	return res
}

// TestParallelMatchesSerial pins the tentpole guarantee: for every wedge
// count P the parallel engine produces a Result bit-identical to the
// serial engine's, across randomized grids, topologies, fault plans,
// initial states, and schedules.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []parallelCase{
		{L: 15, W: 8, seed: 1},
		{L: 20, W: 12, seed: 7, faults: 2, behav: fault.Byzantine},
		{L: 12, W: 9, seed: 11, faults: 2, behav: fault.FailSilent},
		{L: 18, W: 10, seed: 13, hexPlus: true},
		{L: 16, W: 9, seed: 17, hexPlus: true, faults: 3, behav: fault.Byzantine},
		{L: 10, W: 8, seed: 19, random: true},
		{L: 14, W: 8, seed: 23, pulses: 3},
		{L: 8, W: 3, seed: 29}, // minimal width: every wedge cut is degenerate
		{L: 25, W: 20, seed: 31, faults: 4, behav: fault.Byzantine, random: true, pulses: 2},
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("L%d_W%d_s%d_f%d_plus%t_rand%t_p%d",
			c.L, c.W, c.seed, c.faults, c.hexPlus, c.random, c.pulses)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial := c.run(t, 1)
			for _, p := range []int{2, 3, 8} {
				sameResult(t, fmt.Sprintf("P=%d", p), serial, c.run(t, p))
			}
		})
	}
}

// TestParallelAutoAndOversized covers the resolution edges: AutoWedges,
// and a wedge count exceeding the column count (clamped to W).
func TestParallelAutoAndOversized(t *testing.T) {
	c := parallelCase{L: 12, W: 6, seed: 5}
	serial := c.run(t, 1)
	sameResult(t, "auto", serial, c.run(t, AutoWedges))
	sameResult(t, "P>W", serial, c.run(t, 64))
}

// TestParallelObserverFallback pins the documented silent fallback: an
// installed Trace or OnTrigger observer forces the serial engine even
// when Wedges asks for parallelism, and the observers fire normally.
func TestParallelObserverFallback(t *testing.T) {
	h := grid.MustHex(8, 6)
	fired := 0
	res := runPulse(t, h, func(c *Config) {
		c.Wedges = 4
		c.OnTrigger = func(int, sim.Time) { fired++ }
	})
	if fired == 0 {
		t.Fatal("OnTrigger never fired under Wedges fallback")
	}
	sameResult(t, "fallback", runPulse(t, h, nil), res)
}

// fuzzArm runs one fuzz configuration on one engine arm. heap selects the
// forced 4-ary-heap serial arm; wedges > 1 selects the parallel arm.
func fuzzArm(t *testing.T, c parallelCase, heap bool, wedges int) *Result {
	t.Helper()
	if heap {
		forceHeapQueue = true
		defer func() { forceHeapQueue = false }()
	}
	return c.run(t, wedges)
}

// FuzzParallelDifferential is the three-way engine differential: the
// serial calendar queue, the serial 4-ary heap (forceHeapQueue), and the
// P-wedge parallel engine for P ∈ {2, 3, 8} must produce bit-identical
// Results on arbitrary configurations. Any divergence is either an event
// ordering bug (calendar vs heap) or a frontier-protocol / partition
// bug (serial vs parallel).
func FuzzParallelDifferential(f *testing.F) {
	f.Add(uint64(1), uint(15), uint(8), uint(0), false, false, uint(1))
	f.Add(uint64(7), uint(20), uint(12), uint(2), false, false, uint(1))
	f.Add(uint64(13), uint(18), uint(10), uint(0), true, false, uint(1))
	f.Add(uint64(19), uint(10), uint(8), uint(0), false, true, uint(1))
	f.Add(uint64(23), uint(14), uint(8), uint(0), false, false, uint(3))
	f.Add(uint64(31), uint(25), uint(20), uint(4), true, true, uint(2))
	f.Add(uint64(29), uint(8), uint(3), uint(0), false, false, uint(1))
	f.Fuzz(func(t *testing.T, seed uint64, l, w, faults uint, hexPlus, random bool, pulses uint) {
		c := parallelCase{
			L:      int(l%40) + 2,
			W:      int(w%24) + 3,
			seed:   seed,
			faults: int(faults % 5),
			behav:  fault.Byzantine,
			random: random, hexPlus: hexPlus,
			pulses: int(pulses%3) + 1,
		}
		if seed%2 == 1 {
			c.behav = fault.FailSilent
		}
		serial := fuzzArm(t, c, false, 1)
		sameResult(t, "heap", serial, fuzzArm(t, c, true, 1))
		for _, p := range []int{2, 3, 8} {
			sameResult(t, fmt.Sprintf("P=%d", p), serial, fuzzArm(t, c, false, p))
		}
	})
}
