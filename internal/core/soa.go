package core

// Structure-of-arrays node state.
//
// The simulator's inner loop is deliver → guard-check → fire. With per-node
// structs, one delivery chased three pointers (node struct, input slice,
// input struct) across unrelated cache lines. The state now lives in flat
// slabs owned by the arena-retained network, indexed by node id (and, for
// inputs, by a prefix-sum offset), so the loop touches a handful of
// contiguous bytes:
//
//   - cells[id]    — one nodeCell per node: the sleeping/faulty/source flags
//     and the per-role effective-input counters, packed so a guard check is
//     a single small load. cells[id].flags != 0 already answers "can this
//     node fire at all".
//   - wakeGen[id]  — sleep-timer generation, touched only on fire and wake.
//   - inOff[id]    — first input slot of node id; inOff[len] closes the last
//     range, so node id's inputs are slots inOff[id]..inOff[id+1].
//   - inBits[slot] — one byte per input: memory-flag bit, fault.LinkMode,
//     and grid.Role, so a delivery reads and writes exactly one byte of
//     input state and a wake-up scan is a straight byte sweep.
//   - inGen[slot]  — flag-timer generation, invalidating in-flight expiries.
//
// The slabs are re-initialized (not reallocated) per run by build; only a
// topology change re-slices them. Layout is invisible to results: the
// golden tests pin bit-identical outcomes against the struct-based core.

import (
	"repro/internal/fault"
	"repro/internal/grid"
)

// nodeCell packs the per-node state read on every delivery and guard check.
// At 1+grid.NumRoles bytes, eight-plus cells share a cache line.
type nodeCell struct {
	flags   uint8
	roleCnt [grid.NumRoles]uint8
}

// nodeCell.flags bits. All three disqualify a node from firing, so
// checkFire tests flags != 0 once instead of three booleans.
const (
	nodeSleeping uint8 = 1 << iota
	nodeFaulty
	nodeSource
)

// inBits layout: bit 0 is the memory flag, bits 1-2 the fault.LinkMode,
// bits 3+ the grid.Role of the input.
const (
	inSetBit    uint8 = 1 << 0
	inModeShift       = 1
	inModeMask  uint8 = 3 << inModeShift
	inRoleShift       = 3
)

// inputBits assembles the static portion of an input's state byte.
func inputBits(mode fault.LinkMode, role grid.Role) uint8 {
	return uint8(mode)<<inModeShift | uint8(role)<<inRoleShift
}

// modeOf extracts the link mode from an input state byte.
func modeOf(bits uint8) fault.LinkMode {
	return fault.LinkMode((bits & inModeMask) >> inModeShift)
}

// roleOf extracts the input role from an input state byte.
func roleOf(bits uint8) grid.Role {
	return grid.Role(bits >> inRoleShift)
}
