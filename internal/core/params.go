// Package core implements the paper's primary contribution: the HEX pulse
// forwarding algorithm (Algorithm 1 / the asynchronous state machines of
// Fig. 7) and the discrete-event network simulation that executes it on a
// layered topology with configurable delays, faults, layer-0 schedules and
// initial states.
package core

import (
	"fmt"

	"repro/internal/delay"
	"repro/internal/sim"
)

// GuardMode selects the firing guard of a node.
type GuardMode uint8

const (
	// GuardAdjacent is Algorithm 1's guard: trigger on memorized messages
	// from (left and lower-left) or (lower-left and lower-right) or
	// (lower-right and right) neighbors.
	GuardAdjacent GuardMode = iota
	// GuardAnyTwo is an ablation: trigger on any two memorized messages,
	// regardless of adjacency. It is *not* Byzantine-safe (a single faulty
	// left neighbor plus a slow wave can cause false pulses) and exists to
	// quantify why the paper insists on adjacent pairs.
	GuardAnyTwo
)

// String names the guard mode.
func (m GuardMode) String() string {
	switch m {
	case GuardAdjacent:
		return "adjacent-pair"
	case GuardAnyTwo:
		return "any-two"
	}
	return fmt.Sprintf("GuardMode(%d)", uint8(m))
}

// Params are the HEX algorithm parameters of one simulation.
//
// Timers are inaccurate: every started link timer draws its duration
// uniformly from [TLinkMin, TLinkMax] and every sleep timer from
// [TSleepMin, TSleepMax], modelling the clock drift bound ϑ of Condition 2
// (T+ = ϑT−).
type Params struct {
	// Bounds is the fault-free link delay interval [d−, d+].
	Bounds delay.Bounds
	// TLinkMin/TLinkMax bound how long a received trigger message is
	// memorized. TLinkMax == 0 disables link timers entirely: flags are
	// then only cleared on wake-up (the original HEX of [33], used as an
	// ablation and for single-pulse runs, where (C1) is trivially met).
	TLinkMin, TLinkMax sim.Time
	// TSleepMin/TSleepMax bound the sleep period after firing.
	TSleepMin, TSleepMax sim.Time
	// Guard selects the firing guard; zero value is Algorithm 1's guard.
	Guard GuardMode
}

// LinkTimersEnabled reports whether memory flags expire on their own.
func (p Params) LinkTimersEnabled() bool { return p.TLinkMax > 0 }

// MaxEventDelta reports the largest scheduling delta of the algorithm's
// *frequent* events: link delays and link-timer expiries. It sizes the
// engine's calendar-queue window (sim.Engine.SetHorizonHint) so the hot
// event classes stay bucket-resident. Sleep timers are deliberately
// excluded — they are orders of magnitude longer, rare per node, and belong
// in the queue's far-future overflow tier; including them would stretch the
// bucket width until every in-flight delivery shared a bucket.
func (p Params) MaxEventDelta() sim.Time {
	d := p.Bounds.Max
	if p.LinkTimersEnabled() && p.TLinkMax > d {
		d = p.TLinkMax
	}
	return d
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if err := p.Bounds.Validate(); err != nil {
		return err
	}
	if p.LinkTimersEnabled() && (p.TLinkMin <= 0 || p.TLinkMin > p.TLinkMax) {
		return fmt.Errorf("core: need 0 < TLinkMin ≤ TLinkMax, got [%v, %v]", p.TLinkMin, p.TLinkMax)
	}
	if p.TSleepMin <= 0 || p.TSleepMin > p.TSleepMax {
		return fmt.Errorf("core: need 0 < TSleepMin ≤ TSleepMax, got [%v, %v]", p.TSleepMin, p.TSleepMax)
	}
	return nil
}

// DefaultParams returns parameters suitable for single-pulse experiments
// with the paper's delay interval: link timers disabled and a sleep period
// long enough that no node can be triggered twice within one wave
// (constraints (C1) and (C2) of Section 3.1 are then satisfied by
// construction).
func DefaultParams() Params {
	return Params{
		Bounds:    delay.Paper,
		TSleepMin: sim.Millisecond,
		TSleepMax: sim.Millisecond,
	}
}
