package core

import (
	"context"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// TestFirstTriggerOnlyMatchesFullSnapshot is the differential test for the
// compact execution mode: for any config, FirstTriggers[n] must equal
// Triggers[n][0] of the full run (or NoTrigger when node n never fired),
// and Events/Horizon must be untouched by the mode flag.
func TestFirstTriggerOnlyMatchesFullSnapshot(t *testing.T) {
	h := grid.MustHex(15, 8)
	cases := map[string]func(*Config){
		"fault-free": nil,
		"fail-silent": func(c *Config) {
			placed, err := fault.PlaceRandom(h.Graph, 4, nil, sim.NewRNG(9), 0)
			if err != nil {
				t.Fatal(err)
			}
			plan := fault.NewPlan(h.NumNodes())
			for _, n := range placed {
				plan.SetBehavior(n, fault.FailSilent)
			}
			c.Faults = plan
		},
		"udminus-offsets": func(c *Config) {
			c.Schedule = source.SinglePulse(source.Offsets(source.UniformDMinus, h.W, delay.Paper, sim.NewRNG(4)))
		},
	}
	for name, mod := range cases {
		full := runPulse(t, h, mod)
		compact := runPulse(t, h, func(c *Config) {
			if mod != nil {
				mod(c)
			}
			c.FirstTriggerOnly = true
		})
		if compact.Triggers != nil {
			t.Fatalf("%s: compact mode produced a full snapshot", name)
		}
		if len(compact.FirstTriggers) != h.NumNodes() {
			t.Fatalf("%s: FirstTriggers has %d entries, want %d", name, len(compact.FirstTriggers), h.NumNodes())
		}
		if compact.Events != full.Events || compact.Horizon != full.Horizon {
			t.Fatalf("%s: events/horizon diverged: compact (%d, %v) vs full (%d, %v)",
				name, compact.Events, compact.Horizon, full.Events, full.Horizon)
		}
		for n := range compact.FirstTriggers {
			want := NoTrigger
			if ts := full.Triggers[n]; len(ts) > 0 {
				want = ts[0]
			}
			if compact.FirstTriggers[n] != want {
				t.Fatalf("%s: node %d first trigger %v, want %v", name, n, compact.FirstTriggers[n], want)
			}
		}
	}
}

func TestFirstTriggerOnlyPreCancelled(t *testing.T) {
	h := grid.MustHex(5, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(Config{
		Graph:            h.Graph,
		Params:           DefaultParams(),
		Delay:            delay.Uniform{Bounds: delay.Paper},
		Faults:           fault.NewPlan(h.NumNodes()),
		Schedule:         source.SinglePulse(make([]sim.Time, h.W)),
		Seed:             1,
		Context:          ctx,
		FirstTriggerOnly: true,
	})
	if err == nil {
		t.Fatal("pre-cancelled run returned no error")
	}
	if len(res.FirstTriggers) != h.NumNodes() {
		t.Fatalf("FirstTriggers has %d entries, want %d", len(res.FirstTriggers), h.NumNodes())
	}
	for n, ft := range res.FirstTriggers {
		if ft != NoTrigger {
			t.Fatalf("node %d has trigger %v in an empty result", n, ft)
		}
	}
}
