package core

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// runPulse is a test helper: one pulse with zero offsets unless overridden.
func runPulse(t *testing.T, h *grid.Hex, mod func(*Config)) *Result {
	t.Helper()
	cfg := Config{
		Graph:    h.Graph,
		Params:   DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(make([]sim.Time, h.W)),
		Seed:     1,
	}
	if mod != nil {
		mod(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFaultFreeEveryNodeTriggersOnce(t *testing.T) {
	h := grid.MustHex(20, 12)
	res := runPulse(t, h, nil)
	for n, ts := range res.Triggers {
		if len(ts) != 1 {
			t.Fatalf("node %d triggered %d times", n, len(ts))
		}
	}
}

func TestLemma5TriggerWindowsFaultFree(t *testing.T) {
	// All correct nodes of layer ℓ trigger within [tmin+ℓd−, tmax+ℓd+].
	h := grid.MustHex(25, 10)
	b := delay.Paper
	offsets := source.Offsets(source.UniformDPlus, h.W, b, sim.NewRNG(3))
	res := runPulse(t, h, func(c *Config) { c.Schedule = source.SinglePulse(offsets) })
	tmin, tmax := offsets[0], offsets[0]
	for _, o := range offsets {
		tmin, tmax = sim.MinTime(tmin, o), sim.MaxOf(tmax, o)
	}
	for n, ts := range res.Triggers {
		l := sim.Time(h.LayerOf(n))
		lo, hi := tmin+l*b.Min, tmax+l*b.Max
		if ts[0] < lo || ts[0] > hi {
			t.Fatalf("node %d (layer %d) triggered at %v outside [%v, %v]", n, l, ts[0], lo, hi)
		}
	}
}

func TestFixedDelayWaveIsExact(t *testing.T) {
	// With zero offsets and all delays d, layer ℓ triggers exactly at ℓ·d.
	h := grid.MustHex(10, 6)
	d := sim.Time(8000)
	res := runPulse(t, h, func(c *Config) { c.Delay = delay.Fixed{D: d} })
	for n, ts := range res.Triggers {
		want := sim.Time(h.LayerOf(n)) * d
		if ts[0] != want {
			t.Fatalf("node %d triggered at %v, want %v", n, ts[0], want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	h := grid.MustHex(15, 8)
	a := runPulse(t, h, func(c *Config) { c.Seed = 77 })
	b := runPulse(t, h, func(c *Config) { c.Seed = 77 })
	for n := range a.Triggers {
		if len(a.Triggers[n]) != len(b.Triggers[n]) {
			t.Fatalf("trigger counts differ at node %d", n)
		}
		for i := range a.Triggers[n] {
			if a.Triggers[n][i] != b.Triggers[n][i] {
				t.Fatalf("node %d trigger %d: %v vs %v", n, i, a.Triggers[n][i], b.Triggers[n][i])
			}
		}
	}
	c := runPulse(t, h, func(c *Config) { c.Seed = 78 })
	diff := false
	for n := range a.Triggers {
		if a.Triggers[n][0] != c.Triggers[n][0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical waves")
	}
}

func TestInterLayerLowerBound(t *testing.T) {
	// Fault-free, every node is triggered by a message from the layer
	// below, so it fires at least d− after both… at least one of its lower
	// neighbors. Check the minimum over the later lower neighbor ≥ d− holds
	// for zero offsets (scenario (i); cf. Table 1's σ̂min ≈ d−).
	h := grid.MustHex(20, 10)
	b := delay.Paper
	res := runPulse(t, h, nil)
	for l := 1; l <= h.L; l++ {
		for _, n := range h.Layer(l) {
			ll, _ := h.LowerLeftNeighbor(n)
			lr, _ := h.LowerRightNeighbor(n)
			early := sim.MinTime(res.Triggers[ll][0], res.Triggers[lr][0])
			if res.Triggers[n][0] < early+b.Min {
				t.Fatalf("node %d fired %v after earliest lower neighbor %v (< d−)",
					n, res.Triggers[n][0]-early, early)
			}
		}
	}
}

func TestFailSilentNodeNeverFires(t *testing.T) {
	h := grid.MustHex(10, 8)
	bad := h.NodeID(3, 4)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(bad, fault.FailSilent)
	})
	if len(res.Triggers[bad]) != 0 {
		t.Error("fail-silent node recorded triggers")
	}
	// All other nodes still fire exactly once (Condition 1 holds for f=1).
	for n, ts := range res.Triggers {
		if n == bad {
			continue
		}
		if len(ts) != 1 {
			t.Fatalf("node %d triggered %d times with one fail-silent node", n, len(ts))
		}
	}
}

func TestTwoAdjacentCrashesKillCommonUpperNeighbor(t *testing.T) {
	// Crashing (ℓ,i) and (ℓ,i+1) leaves (ℓ+1,i) with no satisfiable guard:
	// its lower-left and lower-right are dead, so only non-adjacent L and R
	// remain (Section 3.2: "two adjacent crash failures on some layer just
	// effectively crash their common neighbor in the layer above").
	h := grid.MustHex(8, 8)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(h.NodeID(3, 4), fault.FailSilent)
		c.Faults.SetBehavior(h.NodeID(3, 5), fault.FailSilent)
	})
	victim := h.NodeID(4, 4)
	if len(res.Triggers[victim]) != 0 {
		t.Errorf("common upper neighbor fired despite dead lower pair")
	}
	// Its siblings with one live lower neighbor must still fire.
	for _, n := range []int{h.NodeID(4, 3), h.NodeID(4, 5)} {
		if len(res.Triggers[n]) != 1 {
			t.Errorf("node %d triggered %d times", n, len(res.Triggers[n]))
		}
	}
}

func TestByzantineStuck1PairFiresVictimImmediately(t *testing.T) {
	// Violating Condition 1 on purpose: two Byzantine in-neighbors driving
	// adjacent inputs with constant 1 make the victim fire at time 0 — the
	// "false pulse" the paper's fault model warns about.
	h := grid.MustHex(6, 8)
	victim := h.NodeID(2, 3)
	ll, _ := h.LowerLeftNeighbor(victim)
	lr, _ := h.LowerRightNeighbor(victim)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(ll, fault.Byzantine)
		c.Faults.SetBehavior(lr, fault.Byzantine)
		c.Faults.SetLink(ll, victim, fault.LinkStuck1)
		c.Faults.SetLink(lr, victim, fault.LinkStuck1)
		// Delay the real pulse so the false pulse is unambiguous.
		off := make([]sim.Time, h.W)
		for i := range off {
			off[i] = 500 * sim.Nanosecond
		}
		c.Schedule = source.SinglePulse(off)
	})
	if len(res.Triggers[victim]) == 0 || res.Triggers[victim][0] != 0 {
		t.Errorf("victim triggers: %v, want immediate false pulse at 0", res.Triggers[victim])
	}
}

func TestSingleStuck1InputIsHarmlessAlone(t *testing.T) {
	// One Byzantine neighbor with a constant-1 output cannot fire a node by
	// itself: the guard needs an adjacent pair.
	h := grid.MustHex(6, 8)
	victim := h.NodeID(2, 3)
	ll, _ := h.LowerLeftNeighbor(victim)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(ll, fault.Byzantine)
		for _, out := range h.Out(ll) {
			c.Faults.SetLink(ll, out.To, fault.LinkStuck1)
		}
		off := make([]sim.Time, h.W)
		for i := range off {
			off[i] = 500 * sim.Nanosecond
		}
		c.Schedule = source.SinglePulse(off)
	})
	ts := res.Triggers[victim]
	if len(ts) == 0 {
		t.Fatal("victim never triggered")
	}
	// Must wait for the real wave (well after 500ns), not fire spuriously.
	if ts[0] < 500*sim.Nanosecond {
		t.Errorf("victim fired at %v before the real pulse", ts[0])
	}
}

func TestByzantineStuck1AcceleratesButOncePerPulse(t *testing.T) {
	// A stuck-1 input can make a node fire earlier (one real message
	// suffices), but with long sleeps it still fires only once.
	h := grid.MustHex(6, 8)
	victim := h.NodeID(2, 3)
	ll, _ := h.LowerLeftNeighbor(victim)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(ll, fault.Byzantine)
		c.Faults.SetLink(ll, victim, fault.LinkStuck1)
	})
	if len(res.Triggers[victim]) != 1 {
		t.Errorf("victim triggered %d times", len(res.Triggers[victim]))
	}
}

func TestLinkTimersForgetLoneMessages(t *testing.T) {
	// A single memorized message expires after T+link; if the matching
	// neighbor message arrives later than that, the node must not fire.
	h := grid.MustHex(1, 4)
	b := delay.Bounds{Min: 10 * sim.Nanosecond, Max: 10 * sim.Nanosecond}
	mkCfg := func(withTimers bool) Config {
		p := Params{
			Bounds:    b,
			TSleepMin: sim.Millisecond,
			TSleepMax: sim.Millisecond,
		}
		if withTimers {
			p.TLinkMin, p.TLinkMax = 20*sim.Nanosecond, 20*sim.Nanosecond
		}
		pl := delay.NewPerLink(delay.Fixed{D: 300 * sim.Nanosecond})
		// (0,0) → (1,0) arrives at 10ns; (0,1) → (1,0) arrives at 100ns.
		pl.Set(h.NodeID(0, 0), h.NodeID(1, 0), 10*sim.Nanosecond)
		pl.Set(h.NodeID(0, 1), h.NodeID(1, 0), 100*sim.Nanosecond)
		return Config{
			Graph:    h.Graph,
			Params:   p,
			Delay:    pl,
			Faults:   fault.NewPlan(h.NumNodes()),
			Schedule: source.SinglePulse(make([]sim.Time, h.W)),
			Seed:     1,
			Horizon:  250 * sim.Nanosecond,
		}
	}

	// Without timers the lower-left flag persists: fire at 100ns.
	res, err := Run(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	n := h.NodeID(1, 0)
	if len(res.Triggers[n]) != 1 || res.Triggers[n][0] != 100*sim.Nanosecond {
		t.Fatalf("without timers: triggers %v, want [100ns]", res.Triggers[n])
	}

	// With a 20ns timer the 10ns message is forgotten at 30ns; at 100ns
	// only one flag is set → no fire within the horizon.
	res, err = Run(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triggers[n]) != 0 {
		t.Fatalf("with timers: triggers %v, want none", res.Triggers[n])
	}
}

func TestGuardAnyTwoVersusAdjacent(t *testing.T) {
	// A node receiving only its Left and Right neighbors' messages fires
	// under the any-two ablation guard but not under Algorithm 1's guard.
	h := grid.MustHex(2, 5)
	victim := h.NodeID(1, 2)
	run := func(guard GuardMode) *Result {
		cfg := Config{
			Graph: h.Graph,
			Params: Params{
				Bounds:    delay.Paper,
				TSleepMin: sim.Millisecond,
				TSleepMax: sim.Millisecond,
				Guard:     guard,
			},
			Delay:    delay.Fixed{D: 8 * sim.Nanosecond},
			Faults:   fault.NewPlan(h.NumNodes()),
			Schedule: source.SinglePulse(make([]sim.Time, h.W)),
			Seed:     1,
		}
		// Cut the victim's lower inputs.
		ll, _ := h.LowerLeftNeighbor(victim)
		lr, _ := h.LowerRightNeighbor(victim)
		cfg.Faults.SetLink(ll, victim, fault.LinkStuck0)
		cfg.Faults.SetLink(lr, victim, fault.LinkStuck0)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got := run(GuardAdjacent).Triggers[victim]; len(got) != 0 {
		t.Errorf("adjacent guard fired on non-adjacent inputs: %v", got)
	}
	if got := run(GuardAnyTwo).Triggers[victim]; len(got) != 1 {
		t.Errorf("any-two guard did not fire: %v", got)
	}
}

func TestOnTriggerHook(t *testing.T) {
	h := grid.MustHex(3, 4)
	count := 0
	runPulse(t, h, func(c *Config) {
		c.OnTrigger = func(n int, at sim.Time) { count++ }
	})
	if count != h.NumNodes() {
		t.Errorf("OnTrigger fired %d times, want %d", count, h.NumNodes())
	}
}

func TestConfigValidation(t *testing.T) {
	h := grid.MustHex(2, 4)
	base := Config{
		Graph:    h.Graph,
		Params:   DefaultParams(),
		Delay:    delay.Fixed{D: 8000},
		Schedule: source.SinglePulse(make([]sim.Time, 4)),
	}
	bad := base
	bad.Graph = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil graph accepted")
	}
	bad = base
	bad.Delay = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil delay accepted")
	}
	bad = base
	bad.Schedule = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil schedule accepted")
	}
	bad = base
	bad.Schedule = source.SinglePulse(make([]sim.Time, 3))
	if _, err := Run(bad); err == nil {
		t.Error("schedule width mismatch accepted")
	}
	bad = base
	bad.Params.TSleepMin = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero sleep accepted")
	}
	bad = base
	bad.Params.TLinkMin = 10
	bad.Params.TLinkMax = 5
	if _, err := Run(bad); err == nil {
		t.Error("inverted link timer bounds accepted")
	}
}

func TestFaultySourceColumn(t *testing.T) {
	// A fail-silent clock source: its two layer-1 out-neighbors must still
	// be triggered via their intra-layer neighbors.
	h := grid.MustHex(5, 8)
	bad := h.NodeID(0, 3)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetBehavior(bad, fault.FailSilent)
	})
	if len(res.Triggers[bad]) != 0 {
		t.Error("fail-silent source fired")
	}
	for n, ts := range res.Triggers {
		if n == bad {
			continue
		}
		if len(ts) != 1 {
			t.Fatalf("node %d triggered %d times", n, len(ts))
		}
	}
}

func TestMultiPulseCleanSeparation(t *testing.T) {
	// With Condition 2-sized separation and proper timeouts, every node
	// fires exactly once per pulse.
	h := grid.MustHex(10, 6)
	b := delay.Paper
	pulses := 4
	sep := 300 * sim.Nanosecond
	sched := source.NewSchedule(source.Zero, h.W, pulses, b, sep, nil)
	res, err := Run(Config{
		Graph: h.Graph,
		Params: Params{
			Bounds:    b,
			TLinkMin:  30 * sim.Nanosecond,
			TLinkMax:  32 * sim.Nanosecond,
			TSleepMin: 80 * sim.Nanosecond,
			TSleepMax: 84 * sim.Nanosecond,
		},
		Delay:    delay.Uniform{Bounds: b},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: sched,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n, ts := range res.Triggers {
		if len(ts) != pulses {
			t.Fatalf("node %d triggered %d times, want %d", n, len(ts), pulses)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Fatalf("node %d triggers not increasing", n)
			}
		}
	}
}

func TestRandomInitEventuallyForwardsPulses(t *testing.T) {
	// From arbitrary initial states, later pulses are forwarded exactly
	// once by every node (Theorem 2's conclusion, checked end to end).
	h := grid.MustHex(8, 6)
	b := delay.Paper
	sep := 400 * sim.Nanosecond
	sched := source.NewSchedule(source.UniformDPlus, h.W, 6, b, sep, sim.NewRNG(11))
	res, err := Run(Config{
		Graph: h.Graph,
		Params: Params{
			Bounds:    b,
			TLinkMin:  30 * sim.Nanosecond,
			TLinkMax:  32 * sim.Nanosecond,
			TSleepMin: 80 * sim.Nanosecond,
			TSleepMax: 84 * sim.Nanosecond,
		},
		Delay:      delay.Uniform{Bounds: b},
		Faults:     fault.NewPlan(h.NumNodes()),
		Schedule:   sched,
		RandomInit: true,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each node must have triggered at least once per late pulse window:
	// count triggers after the 3rd pulse's start.
	cut := sched.PulseMin(3, nil)
	for n, ts := range res.Triggers {
		late := 0
		for _, v := range ts {
			if v >= cut {
				late++
			}
		}
		if late < 3 {
			t.Fatalf("node %d forwarded only %d of the last 3 pulses", n, late)
		}
	}
}

func TestDoublingTopologyPulse(t *testing.T) {
	d, err := grid.NewDoubling(4, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Graph:    d.Graph,
		Params:   DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(d.NumNodes()),
		Schedule: source.SinglePulse(make([]sim.Time, d.Widths[0])),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n, ts := range res.Triggers {
		if len(ts) != 1 {
			t.Fatalf("doubling node %d triggered %d times", n, len(ts))
		}
	}
}

func TestEventsCounted(t *testing.T) {
	h := grid.MustHex(5, 5)
	res := runPulse(t, h, nil)
	if res.Events == 0 {
		t.Error("no events counted")
	}
	if res.Horizon == 0 {
		t.Error("no horizon derived")
	}
}

func TestGuardModeString(t *testing.T) {
	if GuardAdjacent.String() != "adjacent-pair" || GuardAnyTwo.String() != "any-two" {
		t.Error("guard names wrong")
	}
}

// TestMonotonicityInSourceDelay is a causality property: with fixed link
// delays, delaying one clock source can only delay (never advance) any
// node's triggering time.
func TestMonotonicityInSourceDelay(t *testing.T) {
	h := grid.MustHex(10, 7)
	run := func(extra sim.Time) *Result {
		off := make([]sim.Time, h.W)
		off[3] = extra
		return runPulse(t, h, func(c *Config) {
			c.Delay = delay.Fixed{D: 8000}
			c.Schedule = source.SinglePulse(off)
		})
	}
	base := run(0)
	for _, extra := range []sim.Time{1000, 5000, 20000} {
		delayed := run(extra)
		for n := range base.Triggers {
			if delayed.Triggers[n][0] < base.Triggers[n][0] {
				t.Fatalf("delaying source advanced node %d: %v < %v",
					n, delayed.Triggers[n][0], base.Triggers[n][0])
			}
		}
	}
}

// TestMonotonicityInLinkDelay: slowing a single link never advances anyone.
func TestMonotonicityInLinkDelay(t *testing.T) {
	h := grid.MustHex(8, 6)
	from, to := h.NodeID(2, 2), h.NodeID(3, 2)
	run := func(d sim.Time) *Result {
		pl := delay.NewPerLink(delay.Fixed{D: 8000})
		pl.Set(from, to, d)
		return runPulse(t, h, func(c *Config) { c.Delay = pl })
	}
	base := run(8000)
	slow := run(12000)
	for n := range base.Triggers {
		if slow.Triggers[n][0] < base.Triggers[n][0] {
			t.Fatalf("slowing a link advanced node %d", n)
		}
	}
}

func TestExplicitHorizonCutsWave(t *testing.T) {
	h := grid.MustHex(20, 6)
	res := runPulse(t, h, func(c *Config) {
		c.Delay = delay.Fixed{D: 8000}
		c.Horizon = 10 * 8000 // wave reaches layer 10 only
	})
	for n, ts := range res.Triggers {
		l := h.LayerOf(n)
		if l <= 10 && len(ts) != 1 {
			t.Fatalf("node %d (layer %d) inside horizon did not trigger", n, l)
		}
		if l > 10 && len(ts) != 0 {
			t.Fatalf("node %d (layer %d) beyond horizon triggered", n, l)
		}
	}
}

func TestTraceAndOnTriggerCoexist(t *testing.T) {
	h := grid.MustHex(4, 5)
	fires := 0
	var last sim.Time
	res := runPulse(t, h, func(c *Config) {
		c.OnTrigger = func(n int, at sim.Time) {
			fires++
			if at < last {
				t.Error("OnTrigger times not monotone")
			}
			last = at
		}
	})
	if fires != h.NumNodes() {
		t.Errorf("OnTrigger fired %d times", fires)
	}
	_ = res
}

// TestStuck1LinkFault tests a link-level (not node-level) stuck-at-1 fault:
// the receiver's input is permanently high although the sender is correct.
func TestStuck1LinkFault(t *testing.T) {
	h := grid.MustHex(6, 6)
	victim := h.NodeID(3, 3)
	ll, _ := h.LowerLeftNeighbor(victim)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetLink(ll, victim, fault.LinkStuck1)
	})
	// The victim can fire on its lower-right message alone (LL stuck-1 +
	// LR forms the central pair) — earlier than or equal to the fault-free
	// central trigger, and exactly once.
	if len(res.Triggers[victim]) != 1 {
		t.Fatalf("victim fired %d times", len(res.Triggers[victim]))
	}
	lr, _ := h.LowerRightNeighbor(victim)
	if res.Triggers[victim][0] > res.Triggers[lr][0]+delay.Paper.Max {
		t.Error("stuck-1 input did not accelerate the victim")
	}
}

// TestStuck0LinkFault: a dead link from a correct sender; the receiver
// still fires via its other guard pairs.
func TestStuck0LinkFault(t *testing.T) {
	h := grid.MustHex(6, 6)
	victim := h.NodeID(3, 3)
	ll, _ := h.LowerLeftNeighbor(victim)
	res := runPulse(t, h, func(c *Config) {
		c.Faults.SetLink(ll, victim, fault.LinkStuck0)
	})
	if len(res.Triggers[victim]) != 1 {
		t.Fatalf("victim fired %d times with one dead in-link", len(res.Triggers[victim]))
	}
	// It needed the (lower-right, right) pair, so it fires after its right
	// neighbor's message could arrive.
	r, _ := h.RightNeighbor(victim)
	if res.Triggers[victim][0] < res.Triggers[r][0]+delay.Paper.Min {
		t.Error("victim fired before right-neighbor support could arrive")
	}
}

// TestStuck1NeverDelaysAnyone: adding a stuck-at-1 input is pure "help" —
// with flags that only persist (no timers, long sleeps), no node can fire
// later than without it.
func TestStuck1NeverDelaysAnyone(t *testing.T) {
	h := grid.MustHex(8, 7)
	run := func(withStuck bool) *Result {
		return runPulse(t, h, func(c *Config) {
			c.Delay = delay.Fixed{D: 8000}
			if withStuck {
				from := h.NodeID(3, 3)
				to := h.NodeID(4, 3)
				c.Faults.SetLink(from, to, fault.LinkStuck1)
			}
		})
	}
	base, helped := run(false), run(true)
	for n := range base.Triggers {
		if helped.Triggers[n][0] > base.Triggers[n][0] {
			t.Fatalf("stuck-1 link delayed node %d: %v > %v",
				n, helped.Triggers[n][0], base.Triggers[n][0])
		}
	}
}

func TestMinimalGrids(t *testing.T) {
	// The smallest supported grids run end to end.
	for _, dims := range []struct{ L, W int }{{1, 3}, {1, 4}, {2, 3}} {
		h := grid.MustHex(dims.L, dims.W)
		res := runPulse(t, h, nil)
		for n, ts := range res.Triggers {
			if len(ts) != 1 {
				t.Fatalf("grid %dx%d: node %d fired %d times", dims.L, dims.W, n, len(ts))
			}
		}
	}
}

func TestWidth3WrapSemantics(t *testing.T) {
	// W=3 is the degenerate width where a node's left and right neighbors
	// are the other two nodes of its layer; the wave must still be exact
	// under fixed delays.
	h := grid.MustHex(5, 3)
	d := sim.Time(8000)
	res := runPulse(t, h, func(c *Config) { c.Delay = delay.Fixed{D: d} })
	for n, ts := range res.Triggers {
		if want := sim.Time(h.LayerOf(n)) * d; ts[0] != want {
			t.Fatalf("W=3 node %d at %v, want %v", n, ts[0], want)
		}
	}
}
