package core

// Arena-style reuse of simulation state. One run of a 50×20 grid used to
// allocate the node-state slice, one input slice per node, growing trigger
// slices per node, and the event queue's backing array — all garbage after
// the run. Sweeps execute hundreds of such runs per configuration, so this
// was the dominant source of GC pressure. An Arena keeps all of that
// storage — today the structure-of-arrays node/input slabs of soa.go, the
// trigger accumulators, and the engine's calendar-ring buckets and
// overflow heap — and re-initializes it per run; after a warm-up run on a
// given topology, a run allocates only its compact Result snapshot.

import "sync"

// Arena owns reusable simulation storage. Run re-initializes every field
// of the retained state before each simulation, so results are
// bit-identical to fresh allocation (the golden tests pin this). An Arena
// is not safe for concurrent use; use one per goroutine, or pool them.
type Arena struct {
	nw network
}

// NewArena returns an empty arena. Storage is grown lazily by the first
// run and re-sliced whenever a run uses a different topology than the
// previous one, so an arena is cheap to create and reuse-friendly only
// when consecutive runs share a *grid.Graph.
func NewArena() *Arena { return &Arena{} }

// Run executes the simulation described by cfg inside the arena and
// returns its result. The Result owns its memory and stays valid after
// the arena is reused.
func (a *Arena) Run(cfg Config) (*Result, error) { return a.nw.run(cfg) }

// arenaPool backs the package-level Run so every caller — single-shot or
// sweep — reuses warm simulation state. Arenas hold no per-run references
// after a run (network.release drops the config), so pooling them retains
// only the sized storage plus the last topology pointer.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// Run executes the simulation described by cfg and returns its result,
// drawing reusable storage from an internal pool.
func Run(cfg Config) (*Result, error) {
	a := arenaPool.Get().(*Arena)
	res, err := a.Run(cfg)
	arenaPool.Put(a)
	return res, err
}
