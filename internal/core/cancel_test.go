package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// cancelConfig builds a mid-sized fault-free single-pulse run.
func cancelConfig(t *testing.T) Config {
	t.Helper()
	h, err := grid.NewHex(40, 20)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:    h.Graph,
		Params:   DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(source.Offsets(source.Zero, 20, delay.Paper, nil)),
		Seed:     7,
	}
}

// TestRunCancelledMidway cancels from inside the simulation (via the
// OnTrigger observer, so the test is timing-independent) and checks that
// the engine stops early: the partial result reports strictly fewer
// events than the uncancelled baseline, and the context's error surfaces.
func TestRunCancelledMidway(t *testing.T) {
	base, err := Run(cancelConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := cancelConfig(t)
	cfg.Context = ctx
	triggers := 0
	cfg.OnTrigger = func(int, sim.Time) {
		triggers++
		if triggers == 50 {
			cancel()
		}
	}
	res, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Events == 0 {
		t.Fatal("cancelled run reports zero events; expected partial progress")
	}
	if res.Events >= base.Events {
		t.Fatalf("cancelled run executed %d events, baseline %d; engine did not stop early",
			res.Events, base.Events)
	}
}

// TestRunPreCancelled verifies an already-done context stops the run
// before any event executes.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cancelConfig(t)
	cfg.Context = ctx
	res, err := Run(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Events != 0 {
		t.Fatalf("pre-cancelled run executed %d events", res.Events)
	}
}

// TestRunWithContextDeterministic verifies that threading a context that
// never cancels does not perturb the simulation.
func TestRunWithContextDeterministic(t *testing.T) {
	base, err := Run(cancelConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cancelConfig(t)
	cfg.Context = context.Background()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != base.Events {
		t.Fatalf("events differ with context: %d vs %d", res.Events, base.Events)
	}
	for n := range base.Triggers {
		if len(base.Triggers[n]) != len(res.Triggers[n]) {
			t.Fatalf("node %d trigger count differs", n)
		}
		for i := range base.Triggers[n] {
			if base.Triggers[n][i] != res.Triggers[n][i] {
				t.Fatalf("node %d trigger %d differs", n, i)
			}
		}
	}
}
