// Package theory implements the paper's closed-form results: the skew
// bounds of Section 3.1 (Lemmas 2–4, Corollary 1, Theorem 1), the coarse
// fault-tolerant bound of Lemma 5, the self-stabilization parameters of
// Condition 2 (Section 3.3, Table 3), and the context lower bounds cited in
// the introduction. These are used both to parameterize simulations and to
// check simulated skews against their analytical envelopes.
package theory

import (
	"math"

	"repro/internal/delay"
	"repro/internal/sim"
)

// ceilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("theory: ceilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Lambda0 returns λ0 := ⌊ℓ·d−/d+⌋, the last layer a slowest chain can have
// reached while a fastest chain completes ℓ hops (proof of Lemma 4).
func Lambda0(l int, b delay.Bounds) int {
	return int(int64(l) * int64(b.Min) / int64(b.Max))
}

// Delta returns δ := d−/2 − ε of Corollary 1.
func Delta(b delay.Bounds) sim.Time { return b.Min/2 - b.Epsilon() }

// Lemma3SkewPotential bounds the skew potential of every layer
// ℓ ≥ W−2 by 2(W−2)ε, independent of the layer-0 skews (Lemma 3).
func Lemma3SkewPotential(w int, b delay.Bounds) sim.Time {
	return 2 * sim.Time(w-2) * b.Epsilon()
}

// Lemma4IntraBound bounds |t_{ℓ,i} − t_{ℓ,i+1}| for ℓ > ℓ0 given the skew
// potential Δ_{ℓ0}: d+ + ⌈(ℓ−ℓ0)ε/d+⌉·ε + Δ_{ℓ0} (Lemma 4).
func Lemma4IntraBound(l, l0 int, b delay.Bounds, delta0 sim.Time) sim.Time {
	eps := b.Epsilon()
	k := ceilDiv(int64(l-l0)*int64(eps), int64(b.Max))
	return b.Max + sim.Time(k)*eps + delta0
}

// Corollary1Bound bounds |t_{ℓ,i} − t_{ℓ,i+1}| for ℓ ≥ W taking the width
// constraint (wrap-around collision) into account:
// max{d+ + ⌈Wε/d+⌉ε, Δ_{ℓ−W} + d+ − Wδ}.
func Corollary1Bound(w int, b delay.Bounds, deltaLW sim.Time) sim.Time {
	eps := b.Epsilon()
	first := b.Max + sim.Time(ceilDiv(int64(w)*int64(eps), int64(b.Max)))*eps
	second := deltaLW + b.Max - sim.Time(w)*Delta(b)
	return sim.MaxOf(first, second)
}

// Theorem1IntraBound returns the intra-layer skew bound σℓ of Theorem 1
// (which requires ε ≤ d+/7). With Δ0 = 0 the bound d+ + ⌈Wε/d+⌉ε holds
// uniformly; with arbitrary Δ0 it holds from layer 2W−2 on, while layers
// 1 … 2W−3 obey d+ + 2Wε²/d+ + Δ0.
func Theorem1IntraBound(l, w int, b delay.Bounds, delta0 sim.Time) sim.Time {
	eps := b.Epsilon()
	uniform := b.Max + sim.Time(ceilDiv(int64(w)*int64(eps), int64(b.Max)))*eps
	if delta0 == 0 || l >= 2*w-2 {
		return uniform
	}
	low := b.Max + sim.Time(ceilDiv(2*int64(w)*int64(eps)*int64(eps), int64(b.Max))) + delta0
	return low
}

// Theorem1InterWindow returns the signed inter-layer skew window of
// Theorem 1's last statement: t_{ℓ,i} − t_{ℓ−1,·} ∈ [d− − σ_{ℓ−1}, d+ + σ_{ℓ−1}].
func Theorem1InterWindow(sigmaPrev sim.Time, b delay.Bounds) (lo, hi sim.Time) {
	return b.Min - sigmaPrev, b.Max + sigmaPrev
}

// Lemma5TriggerWindow bounds the triggering times of all correct nodes in
// layer ℓ, given that correct layer-0 nodes trigger in [tmin, tmax] and fl
// of the layers 0..ℓ−1 contain a faulty node: [tmin + ℓd−, tmax + (ℓ+fl)d+].
func Lemma5TriggerWindow(tmin, tmax sim.Time, l, fl int, b delay.Bounds) (lo, hi sim.Time) {
	return tmin + sim.Time(l)*b.Min, tmax + sim.Time(l+fl)*b.Max
}

// Lemma5PulseSkewBound is Lemma 5's coarse skew bound for the whole pulse:
// σ(f) < (tmax − tmin) + εL + f·d+.
func Lemma5PulseSkewBound(spread sim.Time, L, f int, b delay.Bounds) sim.Time {
	return spread + sim.Time(L)*b.Epsilon() + sim.Time(f)*b.Max
}

// Drift is the clock drift bound ϑ ≥ 1 of Condition 2, represented as the
// rational Num/Den to keep all timeout arithmetic in integer picoseconds.
type Drift struct {
	Num, Den int64
}

// PaperDrift is ϑ = 1.05 as assumed in the paper's stabilization
// experiments (Section 4.4).
var PaperDrift = Drift{Num: 105, Den: 100}

// Float returns ϑ as a float64.
func (d Drift) Float() float64 { return float64(d.Num) / float64(d.Den) }

// Stretch returns t·ϑ rounded to the nearest picosecond.
func (d Drift) Stretch(t sim.Time) sim.Time { return sim.Scale(t, d.Num, d.Den) }

// Timeouts are the algorithm parameters prescribed by Condition 2.
type Timeouts struct {
	TLinkMin, TLinkMax   sim.Time
	TSleepMin, TSleepMax sim.Time
	// Separation is the minimal pulse separation time S(f).
	Separation sim.Time
}

// Condition2 computes the timing constraints of Condition 2 for a stable
// skew bound σ(f), grid length L, f Byzantine faults and drift ϑ:
//
//	T−link  = σ(f) + ε        T+link  = ϑ·T−link
//	T−sleep = 2T+link + 2d+   T+sleep = ϑ·T−sleep
//	S       = T−sleep + T+sleep + εL + f·d+
func Condition2(sigmaStable sim.Time, b delay.Bounds, L, f int, theta Drift) Timeouts {
	t := Timeouts{}
	t.TLinkMin = sigmaStable + b.Epsilon()
	t.TLinkMax = theta.Stretch(t.TLinkMin)
	t.TSleepMin = 2*t.TLinkMax + 2*b.Max
	t.TSleepMax = theta.Stretch(t.TSleepMin)
	t.Separation = t.TSleepMin + t.TSleepMax + sim.Time(L)*b.Epsilon() + sim.Time(f)*b.Max
	return t
}

// Theorem2StabilizationPulses returns the worst-case stabilization time
// bound of Theorem 2 in pulses: every layer ℓ is stable in all pulses
// k > ℓ, so the whole grid is stable after L+1 pulses.
func Theorem2StabilizationPulses(L int) int { return L + 1 }

// DiameterLowerBound is the classic Dε/2 lower bound on the worst-case
// global skew of any deterministic clock synchronization algorithm [19].
func DiameterLowerBound(diameter int, b delay.Bounds) sim.Time {
	return sim.Time(diameter) * b.Epsilon() / 2
}

// GradientLowerBound approximates the Ω(ε·log D) gradient clock
// synchronization lower bound on the neighbor skew [20].
func GradientLowerBound(diameter int, b delay.Bounds) sim.Time {
	if diameter < 2 {
		return 0
	}
	return sim.Time(float64(b.Epsilon()) * math.Log2(float64(diameter)))
}

// Condition1ProbLowerBound returns the paper's lower bound
// (1 − 13(f−1)/n)^f on the probability that f uniformly random faults
// satisfy Condition 1 in a grid of n nodes (Section 3.2).
func Condition1ProbLowerBound(n, f int) float64 {
	if f <= 1 {
		return 1
	}
	base := 1 - 13*float64(f-1)/float64(n)
	if base < 0 {
		return 0
	}
	return math.Pow(base, float64(f))
}

// HexWireLength returns the asymptotic neighbor wire length of a HEX grid
// with constant node density: Θ(1), reported as 1 unit.
func HexWireLength(n int) float64 { return 1 }

// TreeWireLength returns the asymptotic worst neighbor separation of a
// clock tree over n leaves laid out on a √n × √n die: some physically
// adjacent functional units are separated by Θ(√n) of wire through the
// tree root.
func TreeWireLength(n int) float64 { return math.Sqrt(float64(n)) }
