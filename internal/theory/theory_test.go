package theory

import (
	"testing"
	"testing/quick"

	"repro/internal/delay"
	"repro/internal/sim"
)

func TestLambda0(t *testing.T) {
	b := delay.Paper
	// λ0 = ⌊ℓ·7161/8197⌋.
	cases := map[int]int{0: 0, 1: 0, 8: 6, 50: 43}
	for l, want := range cases {
		if got := Lambda0(l, b); got != want {
			t.Errorf("Lambda0(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestDelta(t *testing.T) {
	b := delay.Paper
	// δ = d−/2 − ε = 3580.5 → 3580 (integer division) − wait: 7161/2 = 3580.
	want := sim.Time(7161/2 - 1036)
	if got := Delta(b); got != want {
		t.Errorf("Delta = %v, want %v", got, want)
	}
}

func TestLemma3(t *testing.T) {
	b := delay.Paper
	if got := Lemma3SkewPotential(20, b); got != 2*18*1036 {
		t.Errorf("Lemma3 = %v", got)
	}
}

func TestLemma4Bound(t *testing.T) {
	b := delay.Paper
	// ℓ−ℓ0 = 50: ⌈50·1036/8197⌉ = ⌈6.32⌉ = 7 → 8197 + 7·1036 = 15449.
	if got := Lemma4IntraBound(50, 0, b, 0); got != 15449 {
		t.Errorf("Lemma4(50) = %v, want 15.449ns", got)
	}
	// Δ0 is additive.
	if got := Lemma4IntraBound(50, 0, b, 1000); got != 16449 {
		t.Errorf("Lemma4 with Δ0 = %v", got)
	}
	// ℓ = ℓ0 + 1 small case: ⌈1036/8197⌉ = 1.
	if got := Lemma4IntraBound(1, 0, b, 0); got != 8197+1036 {
		t.Errorf("Lemma4(1) = %v", got)
	}
}

func TestTheorem1Bound(t *testing.T) {
	b := delay.Paper
	// Uniform bound: d+ + ⌈20·1036/8197⌉·1036 = 8197 + 3·1036 = 11305.
	if got := Theorem1IntraBound(50, 20, b, 0); got != 11305 {
		t.Errorf("Theorem1 uniform = %v, want 11.305ns", got)
	}
	// With Δ0 > 0, low layers get d+ + ⌈2Wε²/d+⌉ + Δ0.
	delta0 := sim.Time(10360)
	low := Theorem1IntraBound(10, 20, b, delta0)
	if low <= 11305 {
		t.Errorf("low-layer bound %v should exceed uniform bound", low)
	}
	// From layer 2W−2 on, the uniform bound applies again.
	if got := Theorem1IntraBound(2*20-2, 20, b, delta0); got != 11305 {
		t.Errorf("Theorem1 at 2W−2 = %v", got)
	}
}

func TestTheorem1InterWindow(t *testing.T) {
	b := delay.Paper
	lo, hi := Theorem1InterWindow(11305, b)
	if lo != 7161-11305 || hi != 8197+11305 {
		t.Errorf("window = [%v, %v]", lo, hi)
	}
}

func TestLemma5(t *testing.T) {
	b := delay.Paper
	// σ(f) < spread + εL + f·d+.
	if got := Lemma5PulseSkewBound(0, 50, 0, b); got != 50*1036 {
		t.Errorf("Lemma5 fault-free = %v", got)
	}
	if got := Lemma5PulseSkewBound(8197, 50, 5, b); got != 8197+50*1036+5*8197 {
		t.Errorf("Lemma5 with faults = %v", got)
	}
	lo, hi := Lemma5TriggerWindow(100, 200, 10, 2, b)
	if lo != 100+10*7161 || hi != 200+12*8197 {
		t.Errorf("trigger window = [%v, %v]", lo, hi)
	}
}

func TestCondition2MatchesPaperArithmetic(t *testing.T) {
	// Check the exact chain of Condition 2 for a round σ.
	b := delay.Paper
	to := Condition2(30000, b, 50, 5, PaperDrift)
	if to.TLinkMin != 30000+1036 {
		t.Errorf("T−link = %v", to.TLinkMin)
	}
	if to.TLinkMax != sim.Scale(to.TLinkMin, 105, 100) {
		t.Errorf("T+link = %v", to.TLinkMax)
	}
	if to.TSleepMin != 2*to.TLinkMax+2*b.Max {
		t.Errorf("T−sleep = %v", to.TSleepMin)
	}
	if to.TSleepMax != sim.Scale(to.TSleepMin, 105, 100) {
		t.Errorf("T+sleep = %v", to.TSleepMax)
	}
	wantS := to.TSleepMin + to.TSleepMax + 50*1036 + 5*8197
	if to.Separation != wantS {
		t.Errorf("S = %v, want %v", to.Separation, wantS)
	}
}

func TestCondition2MonotoneInSigmaAndF(t *testing.T) {
	b := delay.Paper
	f := func(s1, s2 uint16, f1, f2 uint8) bool {
		sa, sb := sim.Time(s1), sim.Time(s2)
		if sa > sb {
			sa, sb = sb, sa
		}
		fa, fb := int(f1%10), int(f2%10)
		if fa > fb {
			fa, fb = fb, fa
		}
		t1 := Condition2(sa, b, 50, fa, PaperDrift)
		t2 := Condition2(sb, b, 50, fb, PaperDrift)
		return t1.TLinkMin <= t2.TLinkMin && t1.TSleepMin <= t2.TSleepMin &&
			t1.Separation <= t2.Separation
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondition2TimerOrdering(t *testing.T) {
	// For any inputs, T− ≤ T+ and sleep covers two link timeouts.
	b := delay.Paper
	f := func(s uint16, faults uint8) bool {
		to := Condition2(sim.Time(s), b, 50, int(faults%10), PaperDrift)
		return to.TLinkMin <= to.TLinkMax &&
			to.TSleepMin <= to.TSleepMax &&
			to.TSleepMin >= 2*to.TLinkMax+2*b.Max &&
			to.Separation >= to.TSleepMin+to.TSleepMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriftStretch(t *testing.T) {
	if PaperDrift.Float() != 1.05 {
		t.Error("paper drift wrong")
	}
	if got := PaperDrift.Stretch(100); got != 105 {
		t.Errorf("Stretch(100) = %v", got)
	}
	unit := Drift{Num: 1, Den: 1}
	if got := unit.Stretch(12345); got != 12345 {
		t.Errorf("unit drift changed value: %v", got)
	}
}

func TestTheorem2(t *testing.T) {
	if Theorem2StabilizationPulses(50) != 51 {
		t.Error("Theorem 2 bound wrong")
	}
}

func TestLowerBounds(t *testing.T) {
	b := delay.Paper
	if got := DiameterLowerBound(60, b); got != 60*1036/2 {
		t.Errorf("Dε/2 = %v", got)
	}
	if GradientLowerBound(1, b) != 0 {
		t.Error("degenerate gradient bound")
	}
	g := GradientLowerBound(64, b)
	if g < 6*1036-10 || g > 6*1036+10 {
		t.Errorf("gradient bound at D=64 = %v, want ≈6ε", g)
	}
}

func TestCondition1Prob(t *testing.T) {
	if Condition1ProbLowerBound(1020, 1) != 1 {
		t.Error("f=1 probability must be 1")
	}
	p := Condition1ProbLowerBound(1020, 5)
	if p <= 0 || p >= 1 {
		t.Errorf("p = %v", p)
	}
	// More faults → smaller bound.
	if Condition1ProbLowerBound(1020, 10) >= p {
		t.Error("probability bound not decreasing in f")
	}
	// Tiny grid, many faults → clamps at 0.
	if Condition1ProbLowerBound(20, 10) != 0 {
		t.Error("expected clamped 0 probability")
	}
}

func TestWireLengths(t *testing.T) {
	if HexWireLength(4096) != 1 {
		t.Error("hex wire length should be constant")
	}
	if TreeWireLength(4096) != 64 {
		t.Errorf("tree wire length = %v", TreeWireLength(4096))
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {51800, 8197, 7},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCorollary1Bound(t *testing.T) {
	b := delay.Paper
	// δ = 2544 > 2ε would make the second term negative for any Δ below
	// W·δ − d+; with ε ≤ d+/7 the first term dominates (Theorem 1's proof).
	first := b.Max + sim.Time(3)*b.Epsilon() // ⌈20·1036/8197⌉ = 3
	if got := Corollary1Bound(20, b, 0); got != first {
		t.Errorf("Corollary1Bound(Δ=0) = %v, want %v", got, first)
	}
	// A huge skew potential makes the second term dominate.
	huge := sim.Time(1000000)
	want := huge + b.Max - 20*Delta(b)
	if got := Corollary1Bound(20, b, huge); got != want {
		t.Errorf("Corollary1Bound(huge Δ) = %v, want %v", got, want)
	}
}
