package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
)

// Auditor replays a recorded run against the semantics of Algorithm 1.
// It must be given the same graph, fault plan and parameters as the run.
// The replay assumes the run started from the clean initial state
// (Config.RandomInit == false); arbitrary initial flags would make fires
// look unjustified to an external observer.
type Auditor struct {
	G      *grid.Graph
	Plan   *fault.Plan
	Params core.Params
}

// AuditAll runs every audit and returns the first failure.
func (a *Auditor) AuditAll(r *Recorder) error {
	if err := a.AuditMessages(r); err != nil {
		return err
	}
	if err := a.AuditGuards(r); err != nil {
		return err
	}
	return a.AuditSleepDiscipline(r)
}

type sendKey struct {
	from, to int
	arrival  sim.Time
}

// AuditMessages checks that every delivery matches a previously recorded
// send with the same arrival time, and that every send's delay lies within
// the configured [d−, d+].
func (a *Auditor) AuditMessages(r *Recorder) error {
	pending := make(map[sendKey]int)
	for i, e := range r.Events {
		switch e.Kind {
		case KindSend:
			d := e.Arrival - e.At
			if d < a.Params.Bounds.Min || d > a.Params.Bounds.Max {
				return fmt.Errorf("trace: event %d: send %d→%d has delay %v outside %v",
					i, e.Node, e.Peer, d, a.Params.Bounds)
			}
			pending[sendKey{e.Node, e.Peer, e.Arrival}]++
		case KindDeliver:
			k := sendKey{e.Peer, e.Node, e.At}
			if pending[k] == 0 {
				return fmt.Errorf("trace: event %d: delivery %d→%d at %v without matching send",
					i, e.Peer, e.Node, e.At)
			}
			pending[k]--
		}
	}
	return nil
}

// replayNode mirrors one forwarding node's observable state.
type replayNode struct {
	set      []bool // parallel to Graph.In(node)
	stuck1   []bool
	sleeping bool
	sleptAt  sim.Time
}

// AuditGuards reconstructs every node's memory flags from the event stream
// alone and verifies that each non-source fire had a satisfied guard at
// fire time, that sleeping nodes never fire, and that flags behave as
// recorded (no expiry of an unset flag, deliveries accepted exactly when
// the link is correct and the flag clear).
func (a *Auditor) AuditGuards(r *Recorder) error {
	nodes := make([]replayNode, a.G.NumNodes())
	for n := range nodes {
		in := a.G.In(n)
		nodes[n].set = make([]bool, len(in))
		nodes[n].stuck1 = make([]bool, len(in))
		for i, l := range in {
			if a.Plan.Link(l.From, n) == fault.LinkStuck1 && !a.Plan.IsFaulty(n) {
				nodes[n].stuck1[i] = true
				nodes[n].set[i] = true
			}
		}
	}
	inputIndex := func(to, from int) int {
		for i, l := range a.G.In(to) {
			if l.From == from {
				return i
			}
		}
		return -1
	}

	for i, e := range r.Events {
		st := &nodes[e.Node]
		switch e.Kind {
		case KindDeliver:
			if !e.Accepted {
				continue
			}
			idx := inputIndex(e.Node, e.Peer)
			if idx < 0 {
				return fmt.Errorf("trace: event %d: delivery over non-existent link %d→%d", i, e.Peer, e.Node)
			}
			if a.Plan.Link(e.Peer, e.Node) != fault.LinkCorrect {
				return fmt.Errorf("trace: event %d: accepted delivery over a stuck link %d→%d", i, e.Peer, e.Node)
			}
			if st.set[idx] {
				return fmt.Errorf("trace: event %d: accepted delivery into an already-set flag at node %d input %d",
					i, e.Node, idx)
			}
			st.set[idx] = true
		case KindFlagExpire:
			if e.Peer < 0 || e.Peer >= len(st.set) {
				return fmt.Errorf("trace: event %d: flag expiry with bad input index %d", i, e.Peer)
			}
			if !st.set[e.Peer] {
				return fmt.Errorf("trace: event %d: expiry of unset flag at node %d input %d", i, e.Node, e.Peer)
			}
			if st.stuck1[e.Peer] {
				return fmt.Errorf("trace: event %d: expiry of a stuck-1 input at node %d", i, e.Node)
			}
			st.set[e.Peer] = false
		case KindFire:
			if e.Source {
				if a.G.LayerOf(e.Node) != 0 {
					return fmt.Errorf("trace: event %d: source fire by non-source node %d", i, e.Node)
				}
				continue
			}
			if a.Plan.IsFaulty(e.Node) {
				return fmt.Errorf("trace: event %d: faulty node %d fired", i, e.Node)
			}
			if st.sleeping {
				return fmt.Errorf("trace: event %d: node %d fired while sleeping", i, e.Node)
			}
			if !a.guardHolds(e.Node, st) {
				return fmt.Errorf("trace: event %d: unjustified fire of node %d at %v (flags %v)",
					i, e.Node, e.At, st.set)
			}
		case KindSleep:
			st.sleeping = true
			st.sleptAt = e.At
		case KindWake:
			if !st.sleeping {
				return fmt.Errorf("trace: event %d: wake of non-sleeping node %d", i, e.Node)
			}
			st.sleeping = false
			for j := range st.set {
				st.set[j] = st.stuck1[j]
			}
		}
	}
	return nil
}

// guardHolds evaluates the run's guard over the replayed flags.
func (a *Auditor) guardHolds(node int, st *replayNode) bool {
	var have [grid.NumRoles]bool
	for i, l := range a.G.In(node) {
		if st.set[i] && a.Plan.Link(l.From, node) != fault.LinkStuck0 {
			have[l.Role] = true
		}
	}
	switch a.Params.Guard {
	case core.GuardAdjacent:
		for _, p := range a.G.GuardPairs() {
			if have[p[0]] && have[p[1]] {
				return true
			}
		}
		return false
	case core.GuardAnyTwo:
		count := 0
		for _, h := range have {
			if h {
				count++
			}
		}
		return count >= 2
	}
	return false
}

// AuditSleepDiscipline verifies that every forwarding fire is immediately
// followed by a sleep, and that the node's next wake happens within
// [TSleepMin, TSleepMax] of it.
func (a *Auditor) AuditSleepDiscipline(r *Recorder) error {
	sleptAt := make(map[int]sim.Time)
	pendingSleep := make(map[int]bool)
	for i, e := range r.Events {
		switch e.Kind {
		case KindFire:
			if !e.Source {
				pendingSleep[e.Node] = true
			}
		case KindSleep:
			if !pendingSleep[e.Node] {
				return fmt.Errorf("trace: event %d: sleep of node %d without a preceding fire", i, e.Node)
			}
			pendingSleep[e.Node] = false
			sleptAt[e.Node] = e.At
		case KindWake:
			at, ok := sleptAt[e.Node]
			if !ok {
				return fmt.Errorf("trace: event %d: wake of node %d without recorded sleep", i, e.Node)
			}
			d := e.At - at
			if d < a.Params.TSleepMin || d > a.Params.TSleepMax {
				return fmt.Errorf("trace: event %d: node %d slept %v, outside [%v, %v]",
					i, e.Node, d, a.Params.TSleepMin, a.Params.TSleepMax)
			}
			delete(sleptAt, e.Node)
		}
	}
	for n, pending := range pendingSleep {
		if pending {
			return fmt.Errorf("trace: node %d fired without entering sleep", n)
		}
	}
	return nil
}

// AuditTail audits a *suffix window* of a run's event stream, as captured
// by a bounded flight recorder whose ring dropped an arbitrary prefix. The
// guard replay of AuditGuards is impossible without the full history (the
// memory flags at the window start are unknown), so AuditTail verifies
// every property that remains decidable on a contiguous tail:
//
//   - time never goes backwards and node/input indices are in range;
//   - every send's delay lies within [d−, d+];
//   - every delivery whose matching send *must* fall inside the window
//     (arrival − d+ ≥ window start) has one; earlier sends are tolerated;
//   - accepted deliveries only ever cross existing, correct links into
//     correct forwarding nodes, and faulty nodes never fire;
//   - source fires come only from layer 0;
//   - the sleep discipline holds: a forwarding fire is followed by a sleep
//     (a leading sleep at the window boundary may have lost its fire), no
//     node fires while provably sleeping, and every wake happens within
//     [TSleepMin, TSleepMax] of its sleep — or, when the sleep predates
//     the window, no later than windowStart + TSleepMax.
//
// For a window that is actually the complete run, use AuditAll, which
// additionally replays the guards.
func (a *Auditor) AuditTail(r *Recorder) error {
	evs := r.Events
	if len(evs) == 0 {
		return nil
	}
	ws := evs[0].At
	prev := ws
	numNodes := a.G.NumNodes()
	pending := make(map[sendKey]int)
	sleptAt := make(map[int]sim.Time)
	pendingSleep := make(map[int]bool)
	for i, e := range evs {
		if e.At < prev {
			return fmt.Errorf("trace: event %d: time went backwards (%v after %v)", i, e.At, prev)
		}
		prev = e.At
		if e.Node < 0 || e.Node >= numNodes {
			return fmt.Errorf("trace: event %d: node %d out of range", i, e.Node)
		}
		switch e.Kind {
		case KindSend:
			d := e.Arrival - e.At
			if d < a.Params.Bounds.Min || d > a.Params.Bounds.Max {
				return fmt.Errorf("trace: event %d: send %d→%d has delay %v outside %v",
					i, e.Node, e.Peer, d, a.Params.Bounds)
			}
			pending[sendKey{e.Node, e.Peer, e.Arrival}]++
		case KindDeliver:
			k := sendKey{e.Peer, e.Node, e.At}
			if pending[k] > 0 {
				pending[k]--
			} else if e.At-a.Params.Bounds.Max >= ws {
				// The matching send's time is at least arrival − d+, which
				// lies inside the window: it should have been recorded.
				return fmt.Errorf("trace: event %d: delivery %d→%d at %v without matching send in window",
					i, e.Peer, e.Node, e.At)
			}
			if !e.Accepted {
				continue
			}
			idx := -1
			for j, l := range a.G.In(e.Node) {
				if l.From == e.Peer {
					idx = j
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("trace: event %d: delivery over non-existent link %d→%d", i, e.Peer, e.Node)
			}
			if a.Plan.Link(e.Peer, e.Node) != fault.LinkCorrect {
				return fmt.Errorf("trace: event %d: accepted delivery over a stuck link %d→%d", i, e.Peer, e.Node)
			}
			if a.Plan.IsFaulty(e.Node) || a.G.LayerOf(e.Node) == 0 {
				return fmt.Errorf("trace: event %d: faulty or source node %d accepted a delivery", i, e.Node)
			}
		case KindFlagExpire:
			if e.Peer < 0 || e.Peer >= len(a.G.In(e.Node)) {
				return fmt.Errorf("trace: event %d: flag expiry with bad input index %d", i, e.Peer)
			}
		case KindFire:
			if e.Source {
				if a.G.LayerOf(e.Node) != 0 {
					return fmt.Errorf("trace: event %d: source fire by non-source node %d", i, e.Node)
				}
				continue
			}
			if a.Plan.IsFaulty(e.Node) {
				return fmt.Errorf("trace: event %d: faulty node %d fired", i, e.Node)
			}
			if _, asleep := sleptAt[e.Node]; asleep {
				return fmt.Errorf("trace: event %d: node %d fired while sleeping", i, e.Node)
			}
			if pendingSleep[e.Node] {
				return fmt.Errorf("trace: event %d: node %d fired twice without sleeping", i, e.Node)
			}
			pendingSleep[e.Node] = true
		case KindSleep:
			if !pendingSleep[e.Node] && e.At != ws {
				// At the exact window boundary the fire may have been the
				// dropped event (fire and sleep share a timestamp).
				return fmt.Errorf("trace: event %d: sleep of node %d without a preceding fire", i, e.Node)
			}
			pendingSleep[e.Node] = false
			sleptAt[e.Node] = e.At
		case KindWake:
			if at, ok := sleptAt[e.Node]; ok {
				d := e.At - at
				if d < a.Params.TSleepMin || d > a.Params.TSleepMax {
					return fmt.Errorf("trace: event %d: node %d slept %v, outside [%v, %v]",
						i, e.Node, d, a.Params.TSleepMin, a.Params.TSleepMax)
				}
				delete(sleptAt, e.Node)
			} else if e.At > ws+a.Params.TSleepMax {
				// Even a sleep just before the window start must wake by
				// windowStart + TSleepMax.
				return fmt.Errorf("trace: event %d: wake of node %d at %v too late for any sleep before the window",
					i, e.Node, e.At)
			}
		}
	}
	for n, p := range pendingSleep {
		if p {
			return fmt.Errorf("trace: node %d fired without entering sleep", n)
		}
	}
	return nil
}

// AuditFireCounts checks that every correct forwarding node fired exactly
// `pulses` times and every correct source exactly `pulses` times.
func (a *Auditor) AuditFireCounts(r *Recorder, pulses int) error {
	counts := make([]int, a.G.NumNodes())
	for _, e := range r.Events {
		if e.Kind == KindFire {
			counts[e.Node]++
		}
	}
	for n, c := range counts {
		if a.Plan.IsFaulty(n) {
			if c != 0 {
				return fmt.Errorf("trace: faulty node %d fired %d times", n, c)
			}
			continue
		}
		if c != pulses {
			return fmt.Errorf("trace: node %d fired %d times, want %d", n, c, pulses)
		}
	}
	return nil
}
