package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// tracedRun executes a run with a Recorder attached and returns both.
func tracedRun(t *testing.T, h *grid.Hex, mod func(*core.Config)) (*Recorder, *core.Config) {
	t.Helper()
	rec := &Recorder{}
	cfg := core.Config{
		Graph:    h.Graph,
		Params:   core.DefaultParams(),
		Delay:    delay.Uniform{Bounds: delay.Paper},
		Faults:   fault.NewPlan(h.NumNodes()),
		Schedule: source.SinglePulse(make([]sim.Time, h.W)),
		Seed:     1,
		Trace:    rec,
	}
	if mod != nil {
		mod(&cfg)
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	return rec, &cfg
}

func auditor(cfg *core.Config) *Auditor {
	return &Auditor{G: cfg.Graph, Plan: cfg.Faults, Params: cfg.Params}
}

func TestAuditCleanRunPasses(t *testing.T) {
	h := grid.MustHex(12, 8)
	rec, cfg := tracedRun(t, h, nil)
	a := auditor(cfg)
	if err := a.AuditAll(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.AuditFireCounts(rec, 1); err != nil {
		t.Fatal(err)
	}
	// The trace actually contains substance.
	if rec.Count(KindFire) != h.NumNodes() {
		t.Errorf("fires = %d, want %d", rec.Count(KindFire), h.NumNodes())
	}
	if rec.Count(KindSend) == 0 || rec.Count(KindDeliver) == 0 {
		t.Error("no message traffic recorded")
	}
}

func TestAuditMultiPulseWithTimers(t *testing.T) {
	h := grid.MustHex(8, 6)
	b := delay.Paper
	sched := source.NewSchedule(source.UniformDPlus, h.W, 3, b, 300*sim.Nanosecond, sim.NewRNG(2))
	rec, cfg := tracedRun(t, h, func(c *core.Config) {
		c.Params = core.Params{
			Bounds:    b,
			TLinkMin:  30 * sim.Nanosecond,
			TLinkMax:  32 * sim.Nanosecond,
			TSleepMin: 80 * sim.Nanosecond,
			TSleepMax: 84 * sim.Nanosecond,
		}
		c.Schedule = sched
	})
	a := auditor(cfg)
	if err := a.AuditAll(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.AuditFireCounts(rec, 3); err != nil {
		t.Fatal(err)
	}
	if rec.Count(KindFlagExpire) == 0 {
		t.Error("link timers produced no expiries")
	}
	if rec.Count(KindWake) == 0 {
		t.Error("no wakes recorded")
	}
}

func TestAuditRunWithFaultsPasses(t *testing.T) {
	h := grid.MustHex(12, 10)
	rec, cfg := tracedRun(t, h, func(c *core.Config) {
		rng := sim.NewRNG(7)
		placed, err := fault.PlaceRandom(h.Graph, 3, nil, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range placed {
			c.Faults.SetBehavior(n, fault.Byzantine)
		}
		c.Faults.RandomizeByzantine(h.Graph, rng)
	})
	if err := auditor(cfg).AuditAll(rec); err != nil {
		t.Fatal(err)
	}
}

func TestAuditHexPlusRunPasses(t *testing.T) {
	h := grid.MustHexPlus(8, 8)
	rec, cfg := tracedRun(t, h, nil)
	if err := auditor(cfg).AuditAll(rec); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDetectsForgedDelivery(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	// Forge a delivery without a send.
	forged := append([]Event(nil), rec.Events...)
	forged = append(forged, Event{
		Kind: KindDeliver, At: 999 * sim.Nanosecond,
		Node: h.NodeID(3, 3), Peer: h.NodeID(3, 2), Accepted: false,
	})
	err := auditor(cfg).AuditMessages(&Recorder{Events: forged})
	if err == nil || !strings.Contains(err.Error(), "without matching send") {
		t.Errorf("forged delivery not detected: %v", err)
	}
}

func TestAuditDetectsOutOfBoundsDelay(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	bad := append([]Event(nil), rec.Events...)
	bad = append(bad, Event{
		Kind: KindSend, At: 0, Node: h.NodeID(0, 0), Peer: h.NodeID(1, 0),
		Arrival: delay.Paper.Max + 1,
	})
	err := auditor(cfg).AuditMessages(&Recorder{Events: bad})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-bounds delay not detected: %v", err)
	}
}

func TestAuditDetectsUnjustifiedFire(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	// Inject a fire of a node whose flags (after the run's final wakes…
	// with million-ns sleeps, flags are still set; use a fresh node early
	// instead): forge a fire at time 0 before any delivery.
	bad := append([]Event{{Kind: KindFire, At: 0, Node: h.NodeID(3, 3)}}, rec.Events...)
	err := auditor(cfg).AuditGuards(&Recorder{Events: bad})
	if err == nil || !strings.Contains(err.Error(), "unjustified fire") {
		t.Errorf("unjustified fire not detected: %v", err)
	}
}

func TestAuditDetectsDoubleSetFlag(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	// Find an accepted delivery and duplicate it immediately (before any
	// wake could legitimately clear the flag).
	idx := -1
	for i, e := range rec.Events {
		if e.Kind == KindDeliver && e.Accepted {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no accepted delivery in trace")
	}
	bad := append([]Event(nil), rec.Events[:idx+1]...)
	bad = append(bad, rec.Events[idx])
	bad = append(bad, rec.Events[idx+1:]...)
	err := auditor(cfg).AuditGuards(&Recorder{Events: bad})
	if err == nil || !strings.Contains(err.Error(), "already-set flag") {
		t.Errorf("double flag set not detected: %v", err)
	}
}

func TestAuditDetectsSleepViolation(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	n := h.NodeID(2, 2)
	bad := append([]Event(nil), rec.Events...)
	// Wake far too early.
	bad = append(bad, Event{Kind: KindWake, At: 1, Node: n})
	err := auditor(cfg).AuditSleepDiscipline(&Recorder{Events: bad})
	if err == nil {
		t.Error("sleep violation not detected")
	}
}

func TestAuditFireCountsDetectsExtra(t *testing.T) {
	h := grid.MustHex(6, 6)
	rec, cfg := tracedRun(t, h, nil)
	bad := append([]Event(nil), rec.Events...)
	bad = append(bad, Event{Kind: KindFire, At: 12345, Node: h.NodeID(1, 1)})
	if err := auditor(cfg).AuditFireCounts(&Recorder{Events: bad}, 1); err == nil {
		t.Error("extra fire not detected")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindSend: "send", KindDeliver: "deliver", KindFlagExpire: "flag-expire",
		KindFire: "fire", KindSleep: "sleep", KindWake: "wake",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

// TestAuditManySeeds fuzzes the auditor across seeds and fault counts — a
// strong end-to-end property: every run the engine produces must replay
// cleanly.
func TestAuditManySeeds(t *testing.T) {
	h := grid.MustHex(10, 8)
	for seed := uint64(0); seed < 15; seed++ {
		rec, cfg := tracedRun(t, h, func(c *core.Config) {
			c.Seed = seed
			rng := sim.NewRNG(seed)
			f := int(seed % 3)
			if f > 0 {
				placed, err := fault.PlaceRandom(h.Graph, f, nil, rng, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, n := range placed {
					c.Faults.SetBehavior(n, fault.Byzantine)
				}
				c.Faults.RandomizeByzantine(h.Graph, rng)
			}
		})
		if err := auditor(cfg).AuditAll(rec); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAuditAllReportsFirstFailure(t *testing.T) {
	h := grid.MustHex(5, 5)
	rec, cfg := tracedRun(t, h, nil)
	// Corrupt the message layer: AuditAll must catch it via AuditMessages.
	bad := append([]Event(nil), rec.Events...)
	bad = append(bad, Event{Kind: KindDeliver, At: 1, Node: h.NodeID(1, 1), Peer: h.NodeID(1, 0)})
	if err := auditor(cfg).AuditAll(&Recorder{Events: bad}); err == nil {
		t.Error("AuditAll missed a message violation")
	}
	// Corrupt the guard layer only: AuditAll must catch it via AuditGuards.
	bad2 := append([]Event{{Kind: KindFire, At: 0, Node: h.NodeID(2, 2)}}, rec.Events...)
	if err := auditor(cfg).AuditAll(&Recorder{Events: bad2}); err == nil {
		t.Error("AuditAll missed a guard violation")
	}
}

func TestAuditGuardAnyTwoMode(t *testing.T) {
	// The auditor replays the any-two ablation guard too.
	h := grid.MustHex(4, 5)
	rec, cfg := tracedRun(t, h, func(c *core.Config) {
		c.Params.Guard = core.GuardAnyTwo
	})
	if err := auditor(cfg).AuditAll(rec); err != nil {
		t.Fatal(err)
	}
}

func TestAuditFireCountsFaultyFired(t *testing.T) {
	h := grid.MustHex(4, 5)
	rec, cfg := tracedRun(t, h, func(c *core.Config) {
		c.Faults.SetBehavior(h.NodeID(2, 2), fault.FailSilent)
	})
	// Forge a fire by the faulty node.
	bad := append([]Event(nil), rec.Events...)
	bad = append(bad, Event{Kind: KindFire, At: 50, Node: h.NodeID(2, 2)})
	if err := auditor(cfg).AuditFireCounts(&Recorder{Events: bad}, 1); err == nil {
		t.Error("fire by faulty node not detected")
	}
}
