package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/source"
)

// multiPulseTrace produces a rich event stream — wakes, link-timer expiries,
// several sleep cycles — for the suffix-window tests.
func multiPulseTrace(t *testing.T) (*Recorder, *core.Config) {
	t.Helper()
	h := grid.MustHex(8, 6)
	b := delay.Paper
	return tracedRun(t, h, func(c *core.Config) {
		c.Params = core.Params{
			Bounds:    b,
			TLinkMin:  30 * sim.Nanosecond,
			TLinkMax:  32 * sim.Nanosecond,
			TSleepMin: 80 * sim.Nanosecond,
			TSleepMax: 84 * sim.Nanosecond,
		}
		c.Schedule = source.NewSchedule(source.UniformDPlus, h.W, 3, b, 300*sim.Nanosecond, sim.NewRNG(2))
	})
}

// TestAuditTailAcceptsSuffixWindows pins the flight-recorder contract: any
// contiguous suffix of a clean run's event stream passes the tail audit,
// whatever prefix the ring happened to drop.
func TestAuditTailAcceptsSuffixWindows(t *testing.T) {
	rec, cfg := multiPulseTrace(t)
	a := auditor(cfg)
	n := len(rec.Events)
	if n < 500 {
		t.Fatalf("trace too short for suffix tests: %d events", n)
	}
	for _, start := range []int{0, 1, 7, n / 4, n / 2, n - 100, n - 1, n} {
		win := &Recorder{Events: rec.Events[start:]}
		if err := a.AuditTail(win); err != nil {
			t.Errorf("suffix [%d:] rejected: %v", start, err)
		}
	}
}

func TestAuditTailDetectsBackwardsTime(t *testing.T) {
	h := grid.MustHex(6, 6)
	a := &Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: core.DefaultParams()}
	evs := []Event{
		{Kind: KindFire, At: 100 * sim.Nanosecond, Node: h.NodeID(0, 0), Source: true},
		{Kind: KindFire, At: 50 * sim.Nanosecond, Node: h.NodeID(0, 1), Source: true},
	}
	err := a.AuditTail(&Recorder{Events: evs})
	if err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Errorf("backwards time not detected: %v", err)
	}
}

func TestAuditTailDetectsBadDelay(t *testing.T) {
	h := grid.MustHex(6, 6)
	a := &Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: core.DefaultParams()}
	evs := []Event{{
		Kind: KindSend, At: 100 * sim.Nanosecond, Node: h.NodeID(1, 1), Peer: h.NodeID(2, 1),
		Arrival: 101 * sim.Nanosecond, // 1 ns, far below d−
	}}
	err := a.AuditTail(&Recorder{Events: evs})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-bounds delay not detected: %v", err)
	}
}

func TestAuditTailDeliveryMatching(t *testing.T) {
	h := grid.MustHex(6, 6)
	a := &Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: core.DefaultParams()}

	// A delivery whose matching send would predate the window (arrival − d+
	// before the window start) is tolerated: the ring may have dropped it.
	early := []Event{{Kind: KindDeliver, At: 5 * sim.Nanosecond, Node: h.NodeID(2, 1), Peer: h.NodeID(1, 1)}}
	if err := a.AuditTail(&Recorder{Events: early}); err != nil {
		t.Errorf("boundary orphan delivery rejected: %v", err)
	}

	// A delivery far enough into the window that its send must have been
	// recorded is an orphan.
	orphan := []Event{
		{Kind: KindFire, At: 0, Node: h.NodeID(0, 0), Source: true},
		{Kind: KindDeliver, At: 50 * sim.Nanosecond, Node: h.NodeID(2, 1), Peer: h.NodeID(1, 1)},
	}
	err := a.AuditTail(&Recorder{Events: orphan})
	if err == nil || !strings.Contains(err.Error(), "without matching send") {
		t.Errorf("orphan delivery not detected: %v", err)
	}

	// The same delivery with its send present passes.
	matched := []Event{
		{Kind: KindFire, At: 0, Node: h.NodeID(0, 0), Source: true},
		{Kind: KindSend, At: 42 * sim.Nanosecond, Node: h.NodeID(1, 1), Peer: h.NodeID(2, 1),
			Arrival: 50 * sim.Nanosecond},
		{Kind: KindDeliver, At: 50 * sim.Nanosecond, Node: h.NodeID(2, 1), Peer: h.NodeID(1, 1)},
	}
	if err := a.AuditTail(&Recorder{Events: matched}); err != nil {
		t.Errorf("matched delivery rejected: %v", err)
	}
}

func TestAuditTailSleepDiscipline(t *testing.T) {
	h := grid.MustHex(6, 6)
	p := core.DefaultParams()
	a := &Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: p}
	n := h.NodeID(2, 2)
	anchor := Event{Kind: KindFire, At: 0, Node: h.NodeID(0, 0), Source: true}

	cases := []struct {
		name string
		evs  []Event
		want string // "" = must pass
	}{
		{"fire-sleep-wake cycle", []Event{
			anchor,
			{Kind: KindFire, At: 10 * sim.Nanosecond, Node: n},
			{Kind: KindSleep, At: 10 * sim.Nanosecond, Node: n},
			{Kind: KindWake, At: 10*sim.Nanosecond + p.TSleepMin, Node: n},
		}, ""},
		{"boundary sleep lost its fire", []Event{
			{Kind: KindSleep, At: 77 * sim.Nanosecond, Node: n}, // first event: window boundary
		}, ""},
		{"mid-window sleep without fire", []Event{
			anchor,
			{Kind: KindSleep, At: 30 * sim.Nanosecond, Node: n},
		}, "without a preceding fire"},
		{"fire without sleep", []Event{
			anchor,
			{Kind: KindFire, At: 10 * sim.Nanosecond, Node: n},
			{Kind: KindFire, At: 20 * sim.Nanosecond, Node: n},
		}, "fired twice"},
		{"fire while sleeping", []Event{
			{Kind: KindSleep, At: 0, Node: n},
			{Kind: KindFire, At: 10 * sim.Nanosecond, Node: n},
		}, "while sleeping"},
		{"short sleep", []Event{
			anchor,
			{Kind: KindFire, At: 10 * sim.Nanosecond, Node: n},
			{Kind: KindSleep, At: 10 * sim.Nanosecond, Node: n},
			{Kind: KindWake, At: 11 * sim.Nanosecond, Node: n},
		}, "outside"},
		{"boundary wake in budget", []Event{
			anchor,
			{Kind: KindWake, At: p.TSleepMax / 2, Node: n},
		}, ""},
		{"wake too late for any sleep", []Event{
			anchor,
			{Kind: KindWake, At: p.TSleepMax + sim.Nanosecond, Node: n},
		}, "too late"},
		{"truncated fire still expects sleep", []Event{
			anchor,
			{Kind: KindFire, At: 10 * sim.Nanosecond, Node: n},
		}, "without entering sleep"},
	}
	for _, tc := range cases {
		err := a.AuditTail(&Recorder{Events: tc.evs})
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected failure: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestAuditTailDetectsFaultyFire(t *testing.T) {
	h := grid.MustHex(6, 6)
	plan := fault.NewPlan(h.NumNodes())
	bad := h.NodeID(2, 2)
	plan.SetBehavior(bad, fault.Byzantine)
	a := &Auditor{G: h.Graph, Plan: plan, Params: core.DefaultParams()}
	evs := []Event{{Kind: KindFire, At: 0, Node: bad}}
	err := a.AuditTail(&Recorder{Events: evs})
	if err == nil || !strings.Contains(err.Error(), "faulty") {
		t.Errorf("faulty fire not detected: %v", err)
	}
}

func TestAuditTailEmptyWindowPasses(t *testing.T) {
	h := grid.MustHex(4, 5)
	a := &Auditor{G: h.Graph, Plan: fault.NewPlan(h.NumNodes()), Params: core.DefaultParams()}
	if err := a.AuditTail(&Recorder{}); err != nil {
		t.Fatalf("empty window rejected: %v", err)
	}
}

// TestGoldenRunTracePasses traces the repository's golden configuration
// (the 50×20 grid, scenario (iii), seed 424242 pinned by golden_test.go at
// the repo root) and replays it through the full audit suite plus the tail
// audit on ring-sized suffixes — the exact windows a hexd flight recorder
// would capture.
func TestGoldenRunTracePasses(t *testing.T) {
	h := grid.MustHex(50, 20)
	rec, cfg := tracedRun(t, h, func(c *core.Config) {
		c.Seed = 424242
		c.Schedule = source.SinglePulse(source.Offsets(source.UniformDPlus, h.W,
			delay.Paper, sim.NewRNG(sim.DeriveSeed(424242, "offsets"))))
	})
	a := auditor(cfg)
	if err := a.AuditAll(rec); err != nil {
		t.Fatalf("golden run failed the full audit: %v", err)
	}
	if err := a.AuditFireCounts(rec, 1); err != nil {
		t.Fatalf("golden run failed fire counts: %v", err)
	}
	for _, window := range []int{256, 4096} {
		if window > len(rec.Events) {
			continue
		}
		win := &Recorder{Events: rec.Events[len(rec.Events)-window:]}
		if err := a.AuditTail(win); err != nil {
			t.Fatalf("golden run's last-%d window failed the tail audit: %v", window, err)
		}
	}
}
