// Package trace records the internal events of a HEX simulation (message
// sends and deliveries, memory-flag expiries, fires, sleep/wake
// transitions) and audits the recorded run against the semantics of
// Algorithm 1 *independently of the simulator's own state machine*: a
// replay reconstructs every node's memory flags purely from the event
// stream and verifies that each fire was justified by a satisfied guard,
// that every delivery matches a send with a delay inside [d−, d+], that
// the sleep discipline was respected, and that no correct node fired more
// often than the pulse count allows. This is the repository's deepest
// correctness check of the core engine.
package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Kind labels a recorded event.
type Kind uint8

const (
	KindSend Kind = iota
	KindDeliver
	KindFlagExpire
	KindFire
	KindSleep
	KindWake
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindFlagExpire:
		return "flag-expire"
	case KindFire:
		return "fire"
	case KindSleep:
		return "sleep"
	case KindWake:
		return "wake"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind inverts Kind.String, for deserializing exported traces.
func ParseKind(name string) (Kind, bool) {
	for k := KindSend; k <= KindWake; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Event is one recorded simulation event.
type Event struct {
	Kind Kind
	At   sim.Time
	// Node is the owning node: the sender for Send, the receiver for
	// Deliver, the flag/sleep owner otherwise.
	Node int
	// Peer is the other endpoint for Send/Deliver, or the input index for
	// FlagExpire; unused otherwise.
	Peer int
	// Arrival is the scheduled arrival time of a Send.
	Arrival sim.Time
	// Accepted reports whether a Deliver was memorized.
	Accepted bool
	// Source marks a layer-0 Fire.
	Source bool
}

// Recorder collects events; it implements core.Tracer.
type Recorder struct {
	Events []Event
}

var _ core.Tracer = (*Recorder)(nil)

// Send implements core.Tracer.
func (r *Recorder) Send(from, to int, at, arrival sim.Time) {
	r.Events = append(r.Events, Event{Kind: KindSend, At: at, Node: from, Peer: to, Arrival: arrival})
}

// Deliver implements core.Tracer.
func (r *Recorder) Deliver(from, to int, at sim.Time, accepted bool) {
	r.Events = append(r.Events, Event{Kind: KindDeliver, At: at, Node: to, Peer: from, Accepted: accepted})
}

// FlagExpire implements core.Tracer.
func (r *Recorder) FlagExpire(node, input int, at sim.Time) {
	r.Events = append(r.Events, Event{Kind: KindFlagExpire, At: at, Node: node, Peer: input})
}

// Fire implements core.Tracer.
func (r *Recorder) Fire(node int, at sim.Time, source bool) {
	r.Events = append(r.Events, Event{Kind: KindFire, At: at, Node: node, Source: source})
}

// Sleep implements core.Tracer.
func (r *Recorder) Sleep(node int, at sim.Time) {
	r.Events = append(r.Events, Event{Kind: KindSleep, At: at, Node: node})
}

// Wake implements core.Tracer.
func (r *Recorder) Wake(node int, at sim.Time) {
	r.Events = append(r.Events, Event{Kind: KindWake, At: at, Node: node})
}

// Count returns the number of events of the given kind.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
