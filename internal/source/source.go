// Package source generates layer-0 pulse schedules: the synchronized (but
// skewed) triggering times of the clock-source nodes at the bottom of the
// HEX grid, following the four skew scenarios of the paper's evaluation
// (Section 4.2) and the pulse-separation requirement of Condition 2.
package source

import (
	"fmt"
	"strings"

	"repro/internal/delay"
	"repro/internal/sim"
)

// Scenario selects the layer-0 skew pattern. The four values correspond to
// scenarios (i)–(iv) of Table 1.
type Scenario int

const (
	// Zero: all layer-0 nodes trigger simultaneously (σ0 = 0, Δ0 = 0).
	Zero Scenario = iota
	// UniformDMinus: offsets uniform in [0, d−] (σ0 ≈ d−, Δ0 = 0).
	UniformDMinus
	// UniformDPlus: offsets uniform in [0, d+] (σ0 ≈ d+, Δ0 ≈ ε); the
	// paper's model of an average-case layer-0 clock generation scheme.
	UniformDPlus
	// Ramp: offsets ramp up by d+ per column until W/2 and down after
	// (σ0 = d+, Δ0 ≈ Wε/2); the worst-case input of a layer-0 scheme
	// with neighbor skew bound d+.
	Ramp
)

// Scenarios lists all four scenarios in the paper's order.
var Scenarios = []Scenario{Zero, UniformDMinus, UniformDPlus, Ramp}

// String returns the paper's description of the scenario.
func (s Scenario) String() string {
	switch s {
	case Zero:
		return "0"
	case UniformDMinus:
		return "random in [0,d-]"
	case UniformDPlus:
		return "random in [0,d+]"
	case Ramp:
		return "ramp d+"
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Name returns a short machine-friendly name ("zero", "udminus", "udplus",
// "ramp").
func (s Scenario) Name() string {
	switch s {
	case Zero:
		return "zero"
	case UniformDMinus:
		return "udminus"
	case UniformDPlus:
		return "udplus"
	case Ramp:
		return "ramp"
	}
	return fmt.Sprintf("scenario%d", int(s))
}

// Parse converts a name accepted by Name (case-insensitive, also "i".."iv")
// back to a Scenario.
func Parse(name string) (Scenario, error) {
	switch strings.ToLower(name) {
	case "zero", "i", "0":
		return Zero, nil
	case "udminus", "ii":
		return UniformDMinus, nil
	case "udplus", "iii":
		return UniformDPlus, nil
	case "ramp", "iv":
		return Ramp, nil
	}
	return 0, fmt.Errorf("source: unknown scenario %q", name)
}

// Offsets returns the layer-0 triggering offsets t0,i, i ∈ [W], for one
// pulse of the given scenario. Random scenarios consume rng; deterministic
// ones ignore it (and accept rng == nil).
func Offsets(s Scenario, w int, b delay.Bounds, rng *sim.RNG) []sim.Time {
	t := make([]sim.Time, w)
	switch s {
	case Zero:
		// all zero
	case UniformDMinus:
		for i := range t {
			t[i] = rng.TimeIn(0, b.Min)
		}
	case UniformDPlus:
		for i := range t {
			t[i] = rng.TimeIn(0, b.Max)
		}
	case Ramp:
		// t0,i+1 = t0,i + d+ for 0 ≤ i < W/2 and t0,i+1 = t0,i − d+ for
		// W/2 ≤ i < W−1 (Section 4.2).
		for i := 1; i < w; i++ {
			if i <= w/2 {
				t[i] = t[i-1] + b.Max
			} else {
				t[i] = t[i-1] - b.Max
			}
		}
	default:
		panic(fmt.Sprintf("source: unknown scenario %d", int(s)))
	}
	return t
}

// Spread returns max(offsets) − min(offsets).
func Spread(offsets []sim.Time) sim.Time {
	if len(offsets) == 0 {
		return 0
	}
	lo, hi := offsets[0], offsets[0]
	for _, t := range offsets[1:] {
		lo, hi = sim.MinTime(lo, t), sim.MaxOf(hi, t)
	}
	return hi - lo
}

// Schedule is a complete multi-pulse layer-0 firing plan: Times[k][i] is the
// triggering time of the layer-0 node in column i for pulse k.
type Schedule struct {
	Times [][]sim.Time
}

// NewSchedule builds a schedule of `pulses` pulses with per-pulse offsets
// from the scenario, spaced so that consecutive pulses have separation time
// at least sep: t(k+1)min ≥ t(k)max + sep (Condition 2). Random scenarios
// redraw offsets each pulse.
func NewSchedule(s Scenario, w, pulses int, b delay.Bounds, sep sim.Time, rng *sim.RNG) *Schedule {
	sched := &Schedule{Times: make([][]sim.Time, pulses)}
	base := sim.Time(0)
	for k := 0; k < pulses; k++ {
		off := Offsets(s, w, b, rng)
		times := make([]sim.Time, w)
		var hi sim.Time
		for i, o := range off {
			times[i] = base + o
			if times[i] > hi {
				hi = times[i]
			}
		}
		sched.Times[k] = times
		base = hi + sep
	}
	return sched
}

// SinglePulse wraps one set of offsets as a one-pulse schedule.
func SinglePulse(offsets []sim.Time) *Schedule {
	return &Schedule{Times: [][]sim.Time{offsets}}
}

// Pulses returns the number of pulses in the schedule.
func (s *Schedule) Pulses() int { return len(s.Times) }

// PulseMin returns the minimum triggering time of pulse k over the given
// correct columns (all columns if correct == nil).
func (s *Schedule) PulseMin(k int, correct func(col int) bool) sim.Time {
	lo := sim.MaxTime
	for i, t := range s.Times[k] {
		if correct != nil && !correct(i) {
			continue
		}
		if t < lo {
			lo = t
		}
	}
	return lo
}

// PulseMax returns the maximum triggering time of pulse k over the given
// correct columns (all columns if correct == nil).
func (s *Schedule) PulseMax(k int, correct func(col int) bool) sim.Time {
	hi := sim.Time(-1 << 62)
	for i, t := range s.Times[k] {
		if correct != nil && !correct(i) {
			continue
		}
		if t > hi {
			hi = t
		}
	}
	return hi
}

// End returns the latest triggering time in the schedule.
func (s *Schedule) End() sim.Time {
	var hi sim.Time
	for k := range s.Times {
		if m := s.PulseMax(k, nil); m > hi {
			hi = m
		}
	}
	return hi
}
