package source

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/sim"
)

func TestZeroOffsets(t *testing.T) {
	off := Offsets(Zero, 20, delay.Paper, nil)
	if len(off) != 20 {
		t.Fatalf("len = %d", len(off))
	}
	for i, v := range off {
		if v != 0 {
			t.Errorf("offset[%d] = %v", i, v)
		}
	}
}

func TestUniformOffsetsBounds(t *testing.T) {
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		for _, v := range Offsets(UniformDMinus, 20, delay.Paper, rng) {
			if v < 0 || v > delay.Paper.Min {
				t.Fatalf("scenario (ii) offset %v out of [0, d−]", v)
			}
		}
		for _, v := range Offsets(UniformDPlus, 20, delay.Paper, rng) {
			if v < 0 || v > delay.Paper.Max {
				t.Fatalf("scenario (iii) offset %v out of [0, d+]", v)
			}
		}
	}
}

func TestRampOffsets(t *testing.T) {
	b := delay.Paper
	off := Offsets(Ramp, 20, b, nil)
	// Up by d+ for i ≤ W/2, then down by d+.
	for i := 1; i < 20; i++ {
		diff := off[i] - off[i-1]
		if i <= 10 {
			if diff != b.Max {
				t.Errorf("ramp up at %d: diff %v", i, diff)
			}
		} else if diff != -b.Max {
			t.Errorf("ramp down at %d: diff %v", i, diff)
		}
	}
	// Neighbor skew across the wrap (col 19 → col 0) must be ≤ d+ as well:
	// off[19] = d+ (one step above zero), so |off[19]−off[0]| = d+.
	if d := off[19] - off[0]; d != b.Max {
		t.Errorf("wrap skew = %v, want d+", d)
	}
	// Peak at W/2.
	if off[10] != 10*b.Max {
		t.Errorf("peak = %v", off[10])
	}
}

func TestSpread(t *testing.T) {
	if Spread(nil) != 0 {
		t.Error("empty spread")
	}
	if s := Spread([]sim.Time{5, 1, 9, 3}); s != 8 {
		t.Errorf("Spread = %v", s)
	}
	off := Offsets(Ramp, 20, delay.Paper, nil)
	if Spread(off) != 10*delay.Paper.Max {
		t.Errorf("ramp spread = %v", Spread(off))
	}
}

func TestScheduleSeparation(t *testing.T) {
	rng := sim.NewRNG(2)
	sep := sim.Time(264080)
	s := NewSchedule(UniformDPlus, 20, 10, delay.Paper, sep, rng)
	if s.Pulses() != 10 {
		t.Fatalf("Pulses = %d", s.Pulses())
	}
	for k := 0; k < 9; k++ {
		gap := s.PulseMin(k+1, nil) - s.PulseMax(k, nil)
		if gap < sep {
			t.Errorf("pulse %d→%d separation %v < %v", k, k+1, gap, sep)
		}
	}
}

func TestScheduleEnd(t *testing.T) {
	s := NewSchedule(Zero, 5, 3, delay.Paper, 100, nil)
	if s.End() != s.PulseMax(2, nil) {
		t.Errorf("End = %v", s.End())
	}
}

func TestSinglePulse(t *testing.T) {
	s := SinglePulse([]sim.Time{1, 2, 3})
	if s.Pulses() != 1 || s.PulseMin(0, nil) != 1 || s.PulseMax(0, nil) != 3 {
		t.Error("SinglePulse wrapping broken")
	}
}

func TestPulseMinMaxWithFaultFilter(t *testing.T) {
	s := SinglePulse([]sim.Time{10, 1, 20})
	correct := func(c int) bool { return c != 1 } // exclude the early column
	if m := s.PulseMin(0, correct); m != 10 {
		t.Errorf("filtered min = %v", m)
	}
	if m := s.PulseMax(0, correct); m != 20 {
		t.Errorf("filtered max = %v", m)
	}
}

func TestParseNames(t *testing.T) {
	for _, sc := range Scenarios {
		got, err := Parse(sc.Name())
		if err != nil || got != sc {
			t.Errorf("Parse(Name(%v)) = %v, %v", sc, got, err)
		}
	}
	for in, want := range map[string]Scenario{"i": Zero, "ii": UniformDMinus, "iii": UniformDPlus, "iv": Ramp} {
		got, err := Parse(in)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse accepted garbage")
	}
}

func TestScheduleRedrawsRandomOffsets(t *testing.T) {
	rng := sim.NewRNG(8)
	s := NewSchedule(UniformDPlus, 10, 2, delay.Paper, 1000, rng)
	// The two pulses should not have identical offset patterns.
	base0 := s.PulseMin(0, nil)
	base1 := s.PulseMin(1, nil)
	same := true
	for i := range s.Times[0] {
		if s.Times[0][i]-base0 != s.Times[1][i]-base1 {
			same = false
			break
		}
	}
	if same {
		t.Error("random scenario reused the same offsets for both pulses")
	}
}
