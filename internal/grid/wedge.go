package grid

import "fmt"

// WedgeCut partitions a column-structured graph into P wedges of contiguous,
// balanced column ranges for the conservative parallel engine. On the
// cylindric grids a wedge is literally a wedge of the cylinder: all layers of
// a contiguous arc of columns.
//
// The cut makes no adjacency assumption beyond column structure: Pairs lists
// every directed wedge pair connected by at least one cross-wedge link (for
// plain HEX that is the left/right wedge ring; HEX+'s two-column link span
// or any future topology just yields more pairs), so the engine wires
// exactly the rings the topology needs.
type WedgeCut struct {
	P       int
	WedgeOf []int16 // node id -> owning wedge
	Pairs   []WedgePair
	// CrossLinks is the total number of directed links crossing any wedge
	// boundary; the ratio against total links is the communication cost of
	// the cut.
	CrossLinks int
}

// WedgePair is one directed wedge adjacency: Links cross-wedge links run
// from a node in Src to a node in Dst.
type WedgePair struct {
	Src, Dst int
	Links    int
}

// CutWedges cuts g into p contiguous column-range wedges. It requires
// column metadata (Columns ok) and 2 ≤ p ≤ numCols; callers wanting p
// outside that range should clamp or fall back to serial execution first.
func CutWedges(g *Graph, p int) (*WedgeCut, error) {
	colOf, numCols, ok := g.Columns()
	if !ok {
		return nil, fmt.Errorf("grid: topology has no column structure to cut")
	}
	if p < 2 || p > numCols {
		return nil, fmt.Errorf("grid: wedge count %d outside [2, %d columns]", p, numCols)
	}
	c := &WedgeCut{P: p, WedgeOf: make([]int16, g.NumNodes())}
	// Column c maps to wedge c*p/numCols: contiguous ranges whose sizes
	// differ by at most one column, with no fencepost drift for any p.
	for n := range c.WedgeOf {
		c.WedgeOf[n] = int16(int(colOf[n]) * p / numCols)
	}
	counts := make([]int, p*p)
	for n := 0; n < g.NumNodes(); n++ {
		src := c.WedgeOf[n]
		for _, l := range g.Out(n) {
			if dst := c.WedgeOf[l.To]; dst != src {
				counts[int(src)*p+int(dst)]++
				c.CrossLinks++
			}
		}
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if k := counts[s*p+d]; k > 0 {
				c.Pairs = append(c.Pairs, WedgePair{Src: s, Dst: d, Links: k})
			}
		}
	}
	return c, nil
}
