package grid

import "fmt"

// Doubling is the alternative circular topology sketched in Section 5 of the
// paper (Fig. 21): layers are arranged in concentric rings around a small
// layer-0 core, and dedicated "doubling layers" duplicate the nodes of the
// layer below so the ring circumference can grow without stretching links.
//
// The paper gives the idea pictorially only; we formalize it as follows.
// Layer ℓ has width w(ℓ). A normal layer keeps the width of the layer below
// and wires exactly like the HEX grid. A doubling layer has width
// 2·w(ℓ−1); its node (ℓ, j) takes (ℓ−1, ⌊j/2⌋) as lower-left and
// (ℓ−1, ⌊j/2⌋+1 mod w(ℓ−1)) as lower-right neighbor, so each lower node
// feeds the two "copies" that replace it plus their right neighbors, and
// every node keeps the full HEX guard structure (left, lower-left,
// lower-right, right). Section 3's analysis carries over because every node
// still has two adjacent lower in-neighbors and two intra-layer neighbors.
type Doubling struct {
	*Graph
	// Widths[l] is the number of columns of layer l.
	Widths []int
}

// NewDoubling builds a doubling topology with the given layer-0 width and
// one entry of doubling[] per forwarding layer: true makes that layer a
// doubling layer. initialW must be ≥ 3 and len(doubling) ≥ 1.
func NewDoubling(initialW int, doubling []bool) (*Doubling, error) {
	if initialW < 3 {
		return nil, fmt.Errorf("grid: initial width must be at least 3, got %d", initialW)
	}
	if len(doubling) < 1 {
		return nil, fmt.Errorf("grid: need at least one forwarding layer")
	}
	widths := make([]int, len(doubling)+1)
	widths[0] = initialW
	for l, dbl := range doubling {
		if dbl {
			widths[l+1] = 2 * widths[l]
		} else {
			widths[l+1] = widths[l]
		}
	}

	b := newBuilder()
	ids := make([][]int, len(widths))
	for l, w := range widths {
		ids[l] = make([]int, w)
		for i := 0; i < w; i++ {
			ids[l][i] = b.addNode(l)
		}
	}
	for l := 1; l < len(widths); l++ {
		w := widths[l]
		wBelow := widths[l-1]
		for j := 0; j < w; j++ {
			n := ids[l][j]
			b.addLink(ids[l][mod(j-1, w)], n, RoleLeft)
			var ll, lr int
			if w == wBelow {
				ll, lr = j, mod(j+1, wBelow)
			} else { // doubling layer
				ll = j / 2
				lr = mod(j/2+1, wBelow)
			}
			b.addLink(ids[l-1][ll], n, RoleLowerLeft)
			b.addLink(ids[l-1][lr], n, RoleLowerRight)
			b.addLink(ids[l][mod(j+1, w)], n, RoleRight)
		}
	}
	return &Doubling{Graph: b.build(), Widths: widths}, nil
}

// NodeID returns the id of node (layer, col); the column is taken modulo
// the layer's width.
func (d *Doubling) NodeID(layer, col int) int {
	if layer < 0 || layer >= len(d.Widths) {
		panic(fmt.Sprintf("grid: layer %d out of range [0,%d]", layer, len(d.Widths)-1))
	}
	base := 0
	for l := 0; l < layer; l++ {
		base += d.Widths[l]
	}
	return base + mod(col, d.Widths[layer])
}

// GeometricDoubling returns a doubling schedule for n forwarding layers in
// which doubling layers become less frequent with increasing distance from
// the center, as in Fig. 21: layers 1, 2, 4, 8, … are doubling layers.
func GeometricDoubling(layers int) []bool {
	sched := make([]bool, layers)
	for p := 1; p <= layers; p *= 2 {
		sched[p-1] = true
	}
	return sched
}
