package grid

import "testing"

func TestNewDoublingValidation(t *testing.T) {
	if _, err := NewDoubling(2, []bool{true}); err == nil {
		t.Error("initial width 2 accepted")
	}
	if _, err := NewDoubling(4, nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestDoublingWidths(t *testing.T) {
	d, err := NewDoubling(4, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 8, 16, 16}
	for l, w := range want {
		if d.Widths[l] != w {
			t.Errorf("width[%d] = %d, want %d", l, d.Widths[l], w)
		}
		if len(d.Layer(l)) != w {
			t.Errorf("layer %d has %d nodes, want %d", l, len(d.Layer(l)), w)
		}
	}
	if d.NumNodes() != 4+8+8+16+16 {
		t.Errorf("NumNodes = %d", d.NumNodes())
	}
}

func TestDoublingInDegrees(t *testing.T) {
	d, err := NewDoubling(4, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < d.NumNodes(); n++ {
		in := d.In(n)
		if d.LayerOf(n) == 0 {
			if len(in) != 0 {
				t.Fatalf("layer-0 node %d has in-links", n)
			}
			continue
		}
		if len(in) != 4 {
			t.Fatalf("node %d has %d in-links, want 4", n, len(in))
		}
		roles := map[Role]int{}
		for _, l := range in {
			roles[l.Role]++
		}
		for _, r := range []Role{RoleLeft, RoleLowerLeft, RoleLowerRight, RoleRight} {
			if roles[r] != 1 {
				t.Fatalf("node %d has %d links with role %v", n, roles[r], r)
			}
		}
	}
}

func TestDoublingLowerNeighborsAdjacent(t *testing.T) {
	// In a doubling layer the two lower neighbors of every node must be
	// adjacent in the layer below (the HEX guard's central pair must make
	// geometric sense).
	d, err := NewDoubling(6, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l < d.NumLayers(); l++ {
		wBelow := d.Widths[l-1]
		for _, n := range d.Layer(l) {
			ll, ok1 := d.LowerLeftNeighbor(n)
			lr, ok2 := d.LowerRightNeighbor(n)
			if !ok1 || !ok2 {
				t.Fatalf("node %d missing lower neighbors", n)
			}
			// Positions within the lower layer.
			var pll, plr int
			for i, id := range d.Layer(l - 1) {
				if id == ll {
					pll = i
				}
				if id == lr {
					plr = i
				}
			}
			if (pll+1)%wBelow != plr {
				t.Fatalf("lower neighbors of node %d not adjacent: %d, %d (w=%d)", n, pll, plr, wBelow)
			}
		}
	}
}

func TestDoublingEveryLowerNodeFeedsUpward(t *testing.T) {
	// No node in a non-top layer may be disconnected from the layer above.
	d, err := NewDoubling(4, []bool{true, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < d.NumLayers()-1; l++ {
		for _, n := range d.Layer(l) {
			up := 0
			for _, out := range d.Out(n) {
				if d.LayerOf(out.To) == l+1 {
					up++
				}
			}
			if up == 0 {
				t.Fatalf("node %d in layer %d feeds no upper node", n, l)
			}
		}
	}
}

func TestGeometricDoubling(t *testing.T) {
	sched := GeometricDoubling(12)
	wantTrue := map[int]bool{0: true, 1: true, 3: true, 7: true}
	for i, v := range sched {
		if v != wantTrue[i] {
			t.Errorf("GeometricDoubling(12)[%d] = %v", i, v)
		}
	}
}

func TestDoublingNodeID(t *testing.T) {
	d, err := NewDoubling(4, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if d.NodeID(0, 0) != 0 {
		t.Error("NodeID(0,0) != 0")
	}
	if d.NodeID(1, 0) != 4 {
		t.Errorf("NodeID(1,0) = %d, want 4", d.NodeID(1, 0))
	}
	if d.NodeID(1, 8) != d.NodeID(1, 0) {
		t.Error("NodeID column wrap broken")
	}
}
