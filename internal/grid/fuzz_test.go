package grid

import "testing"

// FuzzCyclicDistance checks the metric invariants of |i−j|_W over
// arbitrary inputs, including hostile widths.
func FuzzCyclicDistance(f *testing.F) {
	f.Add(0, 1, 20)
	f.Add(19, 0, 20)
	f.Add(5, 15, 20)
	f.Add(-3, 100, 7)
	f.Fuzz(func(t *testing.T, i, j, w int) {
		if w < 1 || w > 1<<20 {
			t.Skip()
		}
		i, j = mod(i, w), mod(j, w)
		d := CyclicDistance(i, j, w)
		if d < 0 || d > w/2 {
			t.Fatalf("CyclicDistance(%d,%d,%d) = %d out of [0, %d]", i, j, w, d, w/2)
		}
		if d != CyclicDistance(j, i, w) {
			t.Fatal("asymmetric")
		}
		if i == j && d != 0 {
			t.Fatal("nonzero self distance")
		}
	})
}
