package grid

import (
	"reflect"
	"sync"
	"testing"
)

func TestCacheMemoizesByShape(t *testing.T) {
	c := NewCache(8)
	a, err := c.Hex(5, 6)
	if err != nil {
		t.Fatalf("Hex(5,6): %v", err)
	}
	b, err := c.Hex(5, 6)
	if err != nil {
		t.Fatalf("Hex(5,6) again: %v", err)
	}
	if a != b {
		t.Fatalf("same shape returned distinct grids: %p vs %p", a, b)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// Distinct shapes and distinct topologies get distinct entries.
	p, err := c.HexPlus(5, 6)
	if err != nil {
		t.Fatalf("HexPlus(5,6): %v", err)
	}
	if p == a {
		t.Fatal("HexPlus shares the plain-HEX entry")
	}
	d, err := c.Hex(5, 7)
	if err != nil {
		t.Fatalf("Hex(5,7): %v", err)
	}
	if d == a {
		t.Fatal("Hex(5,7) shares the Hex(5,6) entry")
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestCacheDifferentialFreshBuild pins that a cached grid is structurally
// identical to a freshly constructed one: same dimensions, layers, link
// sets, roles, and guard pairs. Together with Graph immutability this is
// what makes cache sharing invisible to simulation results.
func TestCacheDifferentialFreshBuild(t *testing.T) {
	for _, plus := range []bool{false, true} {
		cached, err := Shared.Build(7, 9, plus)
		if err != nil {
			t.Fatalf("cached build (plus=%t): %v", plus, err)
		}
		fresh, err := func() (*Hex, error) {
			if plus {
				return NewHexPlus(7, 9)
			}
			return NewHex(7, 9)
		}()
		if err != nil {
			t.Fatalf("fresh build (plus=%t): %v", plus, err)
		}
		if cached.L != fresh.L || cached.W != fresh.W {
			t.Fatalf("plus=%t: dims (%d,%d) != fresh (%d,%d)",
				plus, cached.L, cached.W, fresh.L, fresh.W)
		}
		if cached.NumNodes() != fresh.NumNodes() || cached.NumLayers() != fresh.NumLayers() {
			t.Fatalf("plus=%t: node/layer counts differ", plus)
		}
		for n := 0; n < fresh.NumNodes(); n++ {
			if !reflect.DeepEqual(cached.In(n), fresh.In(n)) {
				t.Fatalf("plus=%t: In(%d) differs", plus, n)
			}
			if !reflect.DeepEqual(cached.Out(n), fresh.Out(n)) {
				t.Fatalf("plus=%t: Out(%d) differs", plus, n)
			}
		}
		if !reflect.DeepEqual(cached.GuardPairs(), fresh.GuardPairs()) {
			t.Fatalf("plus=%t: guard pairs differ", plus)
		}
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Hex(0, 20); err == nil {
		t.Fatal("Hex(0,20) succeeded, want error")
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("failed build left %d cache entries", got)
	}
	// A failed shape can be retried (here still invalid, but the path is
	// a fresh build, not a cached error).
	if _, err := c.Hex(0, 20); err == nil {
		t.Fatal("retry of invalid shape succeeded")
	}
}

func TestCacheEvictionBound(t *testing.T) {
	c := NewCache(2)
	for w := 3; w <= 6; w++ {
		if _, err := c.Hex(2, w); err != nil {
			t.Fatalf("Hex(2,%d): %v", w, err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d after churn, want bound 2", got)
	}
	// The most recent shapes survive; re-requesting one is a hit.
	before, _ := c.Stats()
	if _, err := c.Hex(2, 6); err != nil {
		t.Fatalf("Hex(2,6): %v", err)
	}
	if after, _ := c.Stats(); after != before+1 {
		t.Fatalf("most-recent shape was evicted (hits %d → %d)", before, after)
	}
}

// TestCacheConcurrentSingleflight hammers one shape from many goroutines:
// everyone must get the same pointer, and the build must happen once
// (misses == 1). Run under -race this also proves lookups and builds
// don't trample each other.
func TestCacheConcurrentSingleflight(t *testing.T) {
	c := NewCache(8)
	const goroutines = 32
	grids := make([]*Hex, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Hex(10, 8)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			grids[i] = h
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if grids[i] != grids[0] {
			t.Fatalf("goroutine %d got a different grid pointer", i)
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 build", misses)
	}
}
