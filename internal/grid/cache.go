package grid

import (
	"container/list"
	"sync"
)

// Cache memoizes constructed grids by content key (topology, L, W).
//
// A Graph is immutable after construction — every accessor documents that
// its return value must not be modified — which PR 2 already exploits to
// share one grid across all workers of a sweep. The cache extends that
// guarantee process-wide: service requests, sweep units, and router-fanned
// units that agree on (topology, L, W) all receive the *same* *Hex, built
// exactly once. Sharing the pointer is not just an allocation win: the
// arena pool re-slices its storage whenever the topology pointer changes
// (core.Arena keys reuse on pointer identity), so a process-wide grid
// keeps pooled arenas hot across requests, not only within one sweep.
//
// The cache is bounded by entry count with LRU eviction — grids range from
// a few KB (L20_W12) to hundreds of MB (L1000_W500), so campaigns cycling
// through many shapes cannot pin unbounded memory. Eviction only drops the
// cache's reference; in-flight runs keep theirs alive.
//
// Construction is single-flighted: concurrent first requests for one shape
// block on a single build instead of duplicating it. Errors are returned
// to every waiter but never cached (invalid dimensions are rejected by
// validation long before reaching the cache in normal operation).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used

	hits, misses uint64
}

// cacheKey is the content identity of a grid: everything NewHex/NewHexPlus
// read when constructing it.
type cacheKey struct {
	plus bool
	l, w int
}

// cacheSlot is one cache entry. done is closed when the build finishes;
// waiters joining an in-flight build block on it outside the cache lock.
type cacheSlot struct {
	key  cacheKey
	done chan struct{}
	h    *Hex
	err  error
}

// NewCache returns a cache bounded to max completed grids (max <= 0 means
// unbounded).
func NewCache(max int) *Cache {
	return &Cache{
		max:     max,
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// Hex returns the memoized cylindric HEX grid for (L, W), building it on
// first use.
func (c *Cache) Hex(L, W int) (*Hex, error) { return c.get(cacheKey{false, L, W}) }

// HexPlus returns the memoized Section-5 augmented grid for (L, W),
// building it on first use.
func (c *Cache) HexPlus(L, W int) (*Hex, error) { return c.get(cacheKey{true, L, W}) }

// Build returns the memoized grid for the given topology selector; it is
// the common entry point for callers that carry "plus" as a flag.
func (c *Cache) Build(L, W int, plus bool) (*Hex, error) {
	return c.get(cacheKey{plus, L, W})
}

// Len returns the number of cached (completed or in-flight) grids.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit/miss counters since construction. A join of an
// in-flight build counts as a hit: the caller did not pay for a build.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *Cache) get(k cacheKey) (*Hex, error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.hits++
		c.order.MoveToFront(el)
		slot := el.Value.(*cacheSlot)
		c.mu.Unlock()
		<-slot.done
		return slot.h, slot.err
	}
	c.misses++
	slot := &cacheSlot{key: k, done: make(chan struct{})}
	el := c.order.PushFront(slot)
	c.entries[k] = el
	c.mu.Unlock()

	// Build outside the lock: a 500k-node build must not stall lookups of
	// unrelated shapes.
	slot.h, slot.err = construct(k)
	close(slot.done)

	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[k]; ok && cur == el {
		if slot.err != nil {
			// Failed builds are not worth a slot; the error already reached
			// every waiter via the closed channel.
			c.order.Remove(el)
			delete(c.entries, k)
		} else {
			c.evictLocked()
		}
	}
	return slot.h, slot.err
}

// evictLocked drops least-recently-used *completed* entries until the
// count bound holds. In-flight builds are skipped: evicting one would
// strand waiters and rebuild work already underway.
func (c *Cache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && len(c.entries) > c.max; {
		slot := el.Value.(*cacheSlot)
		prev := el.Prev()
		select {
		case <-slot.done:
			c.order.Remove(el)
			delete(c.entries, slot.key)
		default:
		}
		el = prev
	}
}

func construct(k cacheKey) (*Hex, error) {
	if k.plus {
		return NewHexPlus(k.l, k.w)
	}
	return NewHex(k.l, k.w)
}

// Shared is the process-wide grid cache used by the service and experiment
// layers. 32 shapes is generous for real workloads (campaigns sweep seeds
// and faults far more than grid shapes) while bounding worst-case memory
// to a few large grids.
var Shared = NewCache(32)
