package grid

import "testing"

func TestNewHexPlusValidation(t *testing.T) {
	if _, err := NewHexPlus(0, 8); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := NewHexPlus(5, 4); err == nil {
		t.Error("W=4 accepted (in-neighbors would collide)")
	}
	if _, err := NewHexPlus(5, 5); err != nil {
		t.Errorf("minimal HEX+ rejected: %v", err)
	}
}

func TestHexPlusInDegrees(t *testing.T) {
	h := MustHexPlus(4, 7)
	want := []Role{RoleLeft, RoleLowerLeftOuter, RoleLowerLeft, RoleLowerRight, RoleLowerRightOuter, RoleRight}
	for n := 0; n < h.NumNodes(); n++ {
		in := h.In(n)
		if h.LayerOf(n) == 0 {
			if len(in) != 0 {
				t.Fatalf("layer-0 node %d has in-links", n)
			}
			continue
		}
		if len(in) != 6 {
			t.Fatalf("node %d has %d in-links, want 6", n, len(in))
		}
		for i, l := range in {
			if l.Role != want[i] {
				t.Fatalf("node %d in-link %d role %v, want %v", n, i, l.Role, want[i])
			}
		}
	}
}

func TestHexPlusWiring(t *testing.T) {
	h := MustHexPlus(3, 8)
	n := h.NodeID(2, 3)
	wantFrom := map[Role]int{
		RoleLeft:            h.NodeID(2, 2),
		RoleLowerLeftOuter:  h.NodeID(1, 2),
		RoleLowerLeft:       h.NodeID(1, 3),
		RoleLowerRight:      h.NodeID(1, 4),
		RoleLowerRightOuter: h.NodeID(1, 5),
		RoleRight:           h.NodeID(2, 4),
	}
	for _, l := range h.In(n) {
		if wantFrom[l.Role] != l.From {
			t.Errorf("role %v from node %d, want %d", l.Role, l.From, wantFrom[l.Role])
		}
	}
}

func TestHexPlusDistinctInNeighbors(t *testing.T) {
	h := MustHexPlus(2, 5) // minimal width
	for n := 0; n < h.NumNodes(); n++ {
		if h.LayerOf(n) == 0 {
			continue
		}
		seen := map[int]bool{}
		for _, v := range h.InNeighborsOf(n) {
			if seen[v] {
				t.Fatalf("node %d has duplicate in-neighbor %d at W=5", n, v)
			}
			seen[v] = true
		}
	}
}

func TestHexPlusGuardPairsAssigned(t *testing.T) {
	h := MustHexPlus(2, 6)
	if len(h.GuardPairs()) != 5 {
		t.Fatalf("HEX+ guard has %d pairs, want 5", len(h.GuardPairs()))
	}
	plain := MustHex(2, 6)
	if len(plain.GuardPairs()) != 3 {
		t.Fatalf("HEX guard has %d pairs, want 3", len(plain.GuardPairs()))
	}
	d, err := NewDoubling(4, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.GuardPairs()) != 3 {
		t.Error("doubling topology should use the plain guard")
	}
	// Guard pairs are geometrically adjacent in role order.
	for _, p := range h.GuardPairs() {
		if p[1] != p[0]+1 {
			t.Errorf("guard pair %v not adjacent", p)
		}
	}
}

func TestHexPlusOutDegrees(t *testing.T) {
	h := MustHexPlus(4, 8)
	for n := 0; n < h.NumNodes(); n++ {
		out := h.Out(n)
		switch h.LayerOf(n) {
		case 0:
			if len(out) != 4 { // feeds four layer-1 nodes
				t.Fatalf("layer-0 node %d out-degree %d, want 4", n, len(out))
			}
		case 4:
			if len(out) != 2 { // intra-layer only
				t.Fatalf("top node %d out-degree %d, want 2", n, len(out))
			}
		default:
			if len(out) != 6 {
				t.Fatalf("node %d out-degree %d, want 6", n, len(out))
			}
		}
	}
}
