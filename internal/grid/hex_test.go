package grid

import (
	"testing"
	"testing/quick"
)

func TestNewHexValidation(t *testing.T) {
	if _, err := NewHex(0, 20); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := NewHex(5, 2); err == nil {
		t.Error("W=2 accepted")
	}
	if _, err := NewHex(1, 3); err != nil {
		t.Errorf("minimal grid rejected: %v", err)
	}
}

func TestHexCounts(t *testing.T) {
	h := MustHex(50, 20)
	if h.NumNodes() != 51*20 {
		t.Errorf("NumNodes = %d, want %d", h.NumNodes(), 51*20)
	}
	if h.NumLayers() != 51 {
		t.Errorf("NumLayers = %d, want 51", h.NumLayers())
	}
	for l := 0; l <= 50; l++ {
		if len(h.Layer(l)) != 20 {
			t.Fatalf("layer %d has %d nodes", l, len(h.Layer(l)))
		}
	}
}

func TestHexNodeIDCoordRoundTrip(t *testing.T) {
	h := MustHex(7, 9)
	for l := 0; l <= 7; l++ {
		for c := 0; c < 9; c++ {
			id := h.NodeID(l, c)
			gl, gc := h.Coord(id)
			if gl != l || gc != c {
				t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", l, c, id, gl, gc)
			}
			if h.LayerOf(id) != l {
				t.Fatalf("LayerOf(%d) = %d, want %d", id, h.LayerOf(id), l)
			}
		}
	}
}

func TestHexNodeIDWraps(t *testing.T) {
	h := MustHex(3, 5)
	if h.NodeID(1, -1) != h.NodeID(1, 4) {
		t.Error("negative column did not wrap")
	}
	if h.NodeID(1, 5) != h.NodeID(1, 0) {
		t.Error("column W did not wrap")
	}
	if h.NodeID(2, 12) != h.NodeID(2, 2) {
		t.Error("large column did not wrap")
	}
}

func TestHexInDegrees(t *testing.T) {
	h := MustHex(4, 6)
	for n := 0; n < h.NumNodes(); n++ {
		in := h.In(n)
		if h.LayerOf(n) == 0 {
			if len(in) != 0 {
				t.Fatalf("layer-0 node %d has %d in-links", n, len(in))
			}
			continue
		}
		if len(in) != 4 {
			t.Fatalf("node %d has %d in-links, want 4", n, len(in))
		}
		// Sorted by role and one link per HEX role.
		want := []Role{RoleLeft, RoleLowerLeft, RoleLowerRight, RoleRight}
		for i, l := range in {
			if l.Role != want[i] {
				t.Fatalf("node %d in-link %d has role %v, want %v", n, i, l.Role, want[i])
			}
		}
	}
}

func TestHexOutDegrees(t *testing.T) {
	h := MustHex(4, 6)
	for n := 0; n < h.NumNodes(); n++ {
		out := h.Out(n)
		switch h.LayerOf(n) {
		case 0:
			// Sources feed only their two layer-1 neighbors.
			if len(out) != 2 {
				t.Fatalf("layer-0 node %d has %d out-links, want 2", n, len(out))
			}
		case 4: // top layer: only intra-layer links
			if len(out) != 2 {
				t.Fatalf("top node %d has %d out-links, want 2", n, len(out))
			}
		default:
			if len(out) != 4 {
				t.Fatalf("node %d has %d out-links, want 4", n, len(out))
			}
		}
	}
}

func TestHexNeighborGeometry(t *testing.T) {
	h := MustHex(5, 7)
	// Pick an interior node and verify the paper's Fig. 1 wiring.
	n := h.NodeID(2, 3)
	if l, ok := h.LeftNeighbor(n); !ok || l != h.NodeID(2, 2) {
		t.Errorf("left neighbor of (2,3) wrong")
	}
	if r, ok := h.RightNeighbor(n); !ok || r != h.NodeID(2, 4) {
		t.Errorf("right neighbor of (2,3) wrong")
	}
	if ll, ok := h.LowerLeftNeighbor(n); !ok || ll != h.NodeID(1, 3) {
		t.Errorf("lower-left neighbor of (2,3) wrong")
	}
	if lr, ok := h.LowerRightNeighbor(n); !ok || lr != h.NodeID(1, 4) {
		t.Errorf("lower-right neighbor of (2,3) wrong")
	}
}

func TestHexUpperLowerConsistency(t *testing.T) {
	// (ℓ,i) must be the lower-left neighbor of (ℓ+1,i) and the lower-right
	// neighbor of (ℓ+1,i−1).
	h := MustHex(6, 8)
	for l := 0; l < 6; l++ {
		for c := 0; c < 8; c++ {
			n := h.NodeID(l, c)
			ur := h.NodeID(l+1, c)
			if ll, ok := h.LowerLeftNeighbor(ur); !ok || ll != n {
				t.Fatalf("(%d,%d) is not lower-left of its upper-right", l, c)
			}
			ul := h.NodeID(l+1, c-1)
			if lr, ok := h.LowerRightNeighbor(ul); !ok || lr != n {
				t.Fatalf("(%d,%d) is not lower-right of its upper-left", l, c)
			}
		}
	}
}

func TestHexIntraLayerSymmetry(t *testing.T) {
	// Left/right neighbor relations are mutual.
	h := MustHex(3, 9)
	for l := 1; l <= 3; l++ {
		for _, n := range h.Layer(l) {
			r, ok := h.RightNeighbor(n)
			if !ok {
				t.Fatalf("node %d has no right neighbor", n)
			}
			back, ok := h.LeftNeighbor(r)
			if !ok || back != n {
				t.Fatalf("right/left neighbor asymmetry at %d", n)
			}
		}
	}
}

func TestHexOutMirrorsIn(t *testing.T) {
	h := MustHex(4, 5)
	// Every in-link must appear as the matching out-link of its source.
	for n := 0; n < h.NumNodes(); n++ {
		for _, in := range h.In(n) {
			found := false
			for _, out := range h.Out(in.From) {
				if out.To == n && out.Role == in.Role {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("in-link %v of node %d missing from out-links of %d", in, n, in.From)
			}
		}
	}
}

func TestCyclicDistance(t *testing.T) {
	cases := []struct{ i, j, w, want int }{
		{0, 0, 20, 0},
		{0, 1, 20, 1},
		{1, 0, 20, 1},
		{0, 10, 20, 10},
		{0, 11, 20, 9},
		{19, 0, 20, 1},
		{5, 15, 20, 10},
		{2, 17, 20, 5},
	}
	for _, c := range cases {
		if got := CyclicDistance(c.i, c.j, c.w); got != c.want {
			t.Errorf("CyclicDistance(%d,%d,%d) = %d, want %d", c.i, c.j, c.w, got, c.want)
		}
	}
}

// TestCyclicDistanceMetric checks the metric axioms of |i−j|_W.
func TestCyclicDistanceMetric(t *testing.T) {
	const w = 17
	norm := func(i int16) int { return mod(int(i), w) }
	symmetry := func(a, b int16) bool {
		i, j := norm(a), norm(b)
		return CyclicDistance(i, j, w) == CyclicDistance(j, i, w)
	}
	if err := quick.Check(symmetry, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a int16) bool {
		i := norm(a)
		return CyclicDistance(i, i, w) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	triangle := func(a, b, c int16) bool {
		i, j, k := norm(a), norm(b), norm(c)
		return CyclicDistance(i, k, w) <= CyclicDistance(i, j, w)+CyclicDistance(j, k, w)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error("triangle:", err)
	}
	bounded := func(a, b int16) bool {
		return CyclicDistance(norm(a), norm(b), w) <= w/2
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error("bound:", err)
	}
}

func TestHexDiameter(t *testing.T) {
	h := MustHex(50, 20)
	if d := h.Diameter(); d != 60 {
		t.Errorf("Diameter = %d, want 60", d)
	}
}

func TestNodeIDPanicsOnBadLayer(t *testing.T) {
	h := MustHex(3, 5)
	defer func() {
		if recover() == nil {
			t.Error("NodeID with layer out of range did not panic")
		}
	}()
	h.NodeID(4, 0)
}

func TestInNeighborsDistinct(t *testing.T) {
	// With W ≥ 3 every forwarding node has 4 distinct in-neighbors.
	h := MustHex(3, 3)
	for n := 0; n < h.NumNodes(); n++ {
		if h.LayerOf(n) == 0 {
			continue
		}
		seen := map[int]bool{}
		for _, v := range h.InNeighborsOf(n) {
			if seen[v] {
				t.Fatalf("node %d has duplicate in-neighbor %d (W=3)", n, v)
			}
			seen[v] = true
		}
	}
}

func TestRoleStrings(t *testing.T) {
	names := map[Role]string{
		RoleLeft: "left", RoleLowerLeftOuter: "lower-left-outer",
		RoleLowerLeft: "lower-left", RoleLowerRight: "lower-right",
		RoleLowerRightOuter: "lower-right-outer", RoleRight: "right",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestHexCyclicDistanceMethod(t *testing.T) {
	h := MustHex(3, 20)
	if h.CyclicDistance(2, 17) != 5 {
		t.Errorf("CyclicDistance(2,17) = %d", h.CyclicDistance(2, 17))
	}
	if h.CyclicDistance(0, 10) != 10 {
		t.Error("antipodal distance wrong")
	}
}

func TestOutNeighborsOf(t *testing.T) {
	h := MustHex(3, 5)
	n := h.NodeID(1, 2)
	outs := h.OutNeighborsOf(n)
	want := map[int]bool{
		h.NodeID(1, 1): true, h.NodeID(1, 3): true, // left, right
		h.NodeID(2, 1): true, h.NodeID(2, 2): true, // upper-left, upper-right
	}
	if len(outs) != 4 {
		t.Fatalf("out-neighbors = %v", outs)
	}
	for _, m := range outs {
		if !want[m] {
			t.Errorf("unexpected out-neighbor %d", m)
		}
	}
}

func TestMustHexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHex(0, 0) did not panic")
		}
	}()
	MustHex(0, 0)
}

func TestMustHexPlusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHexPlus(0, 0) did not panic")
		}
	}()
	MustHexPlus(0, 0)
}
