package grid

import "fmt"

// NewHexPlus constructs the augmented grid suggested in Section 5 of the
// paper ("Decreasing skews further"): every node of the cylindric HEX grid
// additionally receives from two more neighbors in the previous layer,
// (ℓ−1, i−1) and (ℓ−1, i+2), giving six geometrically ordered inputs
//
//	left, lower-left-outer, lower-left, lower-right, lower-right-outer, right
//
// and the five adjacent-pair guards of HexPlusGuardPairs. The motivation in
// the paper: with only two lower in-neighbors, a faulty lower neighbor
// forces a node to wait for intra-layer "help", costing an extra hop of
// delay; the extra lower in-neighbors remove that detour, reducing the
// fault-induced skew increase (and, via clock multiplication, stabilization
// time).
//
// The returned value reuses the Hex coordinate accessors; W must be ≥ 5 so
// that all six in-neighbors are distinct.
func NewHexPlus(L, W int) (*Hex, error) {
	if L < 1 {
		return nil, fmt.Errorf("grid: length L must be at least 1, got %d", L)
	}
	if W < 5 {
		return nil, fmt.Errorf("grid: HEX+ width W must be at least 5, got %d", W)
	}
	b := newBuilder()
	b.g.guardPairs = HexPlusGuardPairs
	for l := 0; l <= L; l++ {
		for i := 0; i < W; i++ {
			b.addNode(l)
		}
	}
	id := func(l, i int) int { return l*W + mod(i, W) }
	for l := 1; l <= L; l++ {
		for i := 0; i < W; i++ {
			n := id(l, i)
			b.addLink(id(l, i-1), n, RoleLeft)
			b.addLink(id(l-1, i-1), n, RoleLowerLeftOuter)
			b.addLink(id(l-1, i), n, RoleLowerLeft)
			b.addLink(id(l-1, i+1), n, RoleLowerRight)
			b.addLink(id(l-1, i+2), n, RoleLowerRightOuter)
			b.addLink(id(l, i+1), n, RoleRight)
		}
	}
	b.setColumns(W)
	return &Hex{Graph: b.build(), L: L, W: W}, nil
}

// MustHexPlus is NewHexPlus that panics on invalid parameters.
func MustHexPlus(L, W int) *Hex {
	h, err := NewHexPlus(L, W)
	if err != nil {
		panic(err)
	}
	return h
}
